package mrcprm_test

import (
	"testing"

	"mrcprm"
)

// Heterogeneity integration tests, exercised through the public API: the
// feature-off path must be bit-identical no matter how "uniform" is
// spelled, and the feature-on path must beat speed-blind planning.

// explicitSpeeds returns the same cluster with an explicit all-1.0 speed
// vector — semantically identical to the nil (uniform) representation.
func explicitSpeeds(c mrcprm.Cluster) mrcprm.Cluster {
	c.Speed = make([]float64, c.NumResources)
	for i := range c.Speed {
		c.Speed[i] = 1.0
	}
	return c
}

// deterministicMRCP builds the pinned-fingerprint MRCP-RM configuration
// with the incremental machinery (warm starts, solve cache) switched on,
// so the invariance holds on the richest code path.
func deterministicMRCP(cfg mrcprm.Config) mrcprm.Config {
	cfg.Workers = 1
	cfg.SolveTimeLimit = 0
	cfg.WarmStart = true
	cfg.SolveCache = true
	return cfg
}

// Every registered policy, fault-free and under a fault plan, must produce
// a bit-identical run whether the uniform cluster carries a nil speed
// vector or an explicit all-1.0 one — the refactor's feature-off
// invariance, for every manager at once.
func TestUniformSpeedRepresentationInvariance(t *testing.T) {
	jobs, cluster := faultTestWorkload(t)
	plan, err := mrcprm.NewFaultPlan(mrcprm.FaultConfig{
		TaskFailureProb: 0.05,
		StragglerProb:   0.05,
		Seed1:           23, Seed2: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range mrcprm.PolicyNames() {
		for _, faulted := range []bool{false, true} {
			name := policy + "/plain"
			inj := mrcprm.FaultInjector(nil)
			if faulted {
				name = policy + "/faults"
				inj = plan
			}
			t.Run(name, func(t *testing.T) {
				run := func(c mrcprm.Cluster) uint64 {
					opts := mrcprm.PolicyOptions{}
					if policy == "mrcp" {
						opts.Extra = deterministicMRCP(mrcprm.DefaultConfig())
					}
					rm, err := mrcprm.NewPolicy(policy, c, opts)
					if err != nil {
						t.Fatal(err)
					}
					m, err := mrcprm.SimulateWithFaults(c, rm, jobs, inj)
					if err != nil {
						t.Fatal(err)
					}
					return m.Fingerprint()
				}
				nilSpeed := run(cluster)
				explicit := run(explicitSpeeds(cluster))
				if nilSpeed != explicit {
					t.Fatalf("fingerprint changed with the speed representation: nil %#x vs all-1.0 %#x",
						nilSpeed, explicit)
				}
			})
		}
	}
}

// On a uniform cluster, speed-blind planning strips a speed vector that is
// all 1.0 anyway: same plan, same run, same fingerprint.
func TestUniformSpeedBlindInvariance(t *testing.T) {
	jobs, cluster := faultTestWorkload(t)
	run := func(c mrcprm.Cluster, blind bool) uint64 {
		cfg := deterministicMRCP(mrcprm.DefaultConfig())
		cfg.SpeedBlind = blind
		m, err := mrcprm.Simulate(c, mrcprm.NewManager(c, cfg), jobs)
		if err != nil {
			t.Fatal(err)
		}
		return m.Fingerprint()
	}
	base := run(cluster, false)
	for _, c := range []mrcprm.Cluster{cluster, explicitSpeeds(cluster)} {
		if got := run(c, true); got != base {
			t.Fatalf("speed-blind uniform run fingerprint %#x, want %#x", got, base)
		}
	}
}

// The sharded router must also be representation-blind: partitioning a
// uniform cluster with an explicit all-1.0 speed vector slices that vector
// per shard, and every per-shard run (and the combined fingerprint) stays
// bit-identical to the nil-speed partition.
func TestUniformShardRouterInvariance(t *testing.T) {
	wl := mrcprm.DefaultSyntheticWorkload()
	wl.NumResources = 3 // one shard's slice of the 6-resource cluster below
	wl.NumMapHi = 8
	wl.NumReduceHi = 4
	jobs, err := wl.Generate(12, mrcprm.NewStream(41, 0xfeed))
	if err != nil {
		t.Fatal(err)
	}
	run := func(c mrcprm.Cluster) uint64 {
		cfg := mrcprm.ShardConfig{
			Base: mrcprm.ServiceConfig{
				Cluster: c,
				Manager: mrcprm.DeterministicConfig(),
			},
			Shards: 2,
			Seed:   7,
		}
		r, err := mrcprm.NewShardRouter(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range jobs {
			if _, err := r.Submit(mrcprm.JobSpecOf(j)); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.Start(); err != nil {
			t.Fatal(err)
		}
		r.CloseIntake()
		if err := r.Wait(); err != nil {
			t.Fatal(err)
		}
		fps := make([]uint64, r.Shards())
		for s := range fps {
			m, err := r.Engine(s).Result()
			if err != nil {
				t.Fatal(err)
			}
			fps[s] = m.Fingerprint()
		}
		return mrcprm.CombineShardFingerprints(fps)
	}
	cluster := mrcprm.Cluster{NumResources: 6, MapSlots: 2, ReduceSlots: 2}
	nilSpeed := run(cluster)
	explicit := run(explicitSpeeds(cluster))
	if nilSpeed != explicit {
		t.Fatalf("sharded fingerprint changed with the speed representation: nil %#x vs all-1.0 %#x",
			nilSpeed, explicit)
	}
}

// On a two-class cluster, planning with the true machine speeds must beat
// planning speed-blind: no more late jobs at any spread, strictly fewer at
// a 2x spread. This is the acceptance experiment of the refactor in
// miniature (cmd/benchhetero sweeps the full grid).
func TestSpeedAwareBeatsSpeedBlind(t *testing.T) {
	wl := mrcprm.DefaultSyntheticWorkload()
	wl.NumResources = 10
	wl.NumMapHi = 20
	wl.NumReduceHi = 10
	wl.EmaxSec = 30
	wl.DeadlineUL = 2
	wl.Lambda = 0.02
	gen := func() []*mrcprm.Job {
		jobs, err := wl.Generate(40, mrcprm.NewStream(1, 0xbe7e))
		if err != nil {
			t.Fatal(err)
		}
		return jobs
	}
	run := func(spread float64, blind bool) *mrcprm.Metrics {
		spec := mrcprm.TwoClassCluster(wl.NumResources, wl.MapSlotsPerResource,
			wl.ReduceSlotsPerResource, spread)
		cluster, err := spec.Cluster()
		if err != nil {
			t.Fatal(err)
		}
		cfg := mrcprm.DeterministicConfig()
		cfg.SpeedBlind = blind
		m, err := mrcprm.Simulate(cluster, mrcprm.NewManager(cluster, cfg), gen())
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	for _, spread := range []float64{2, 4} {
		aware := run(spread, false)
		blind := run(spread, true)
		if aware.LateJobs > blind.LateJobs {
			t.Errorf("spread %g: speed-aware %d late vs speed-blind %d — awareness made it worse",
				spread, aware.LateJobs, blind.LateJobs)
		}
		if aware.LateJobs >= blind.LateJobs {
			t.Errorf("spread %g: speed-aware %d late vs speed-blind %d, want strictly fewer",
				spread, aware.LateJobs, blind.LateJobs)
		}
		t.Logf("spread %g: aware late=%d T=%.1fs | blind late=%d T=%.1fs",
			spread, aware.LateJobs, aware.T(), blind.LateJobs, blind.T())
	}
	// spread 1 through the same builder is the uniform cluster: aware and
	// blind are the same planner and must agree bit for bit.
	if a, b := run(1, false), run(1, true); a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("uniform spread-1 runs differ: %#x vs %#x", a.Fingerprint(), b.Fingerprint())
	}
}
