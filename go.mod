module mrcprm

go 1.22
