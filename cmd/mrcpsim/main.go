// Command mrcpsim runs one open-system simulation: a workload (Table 3
// synthetic or Table 4 Facebook) against a cluster under any registered
// resource-management policy, and prints the paper's metrics.
//
// Usage:
//
//	mrcpsim                              # Table 3 defaults under MRCP-RM
//	mrcpsim -rm minedf                   # same workload, baseline manager
//	mrcpsim -rm edf                      # greedy deadline-ordered baseline
//	mrcpsim -workload facebook -fbjobs 200 -lambda 0.0003
//	mrcpsim -emax 100 -dul 2 -jobs 500 -v
//	mrcpsim -failrate 0.05 -straggler 0.02 -mtbf 20000 -mttr 120
//	mrcpsim -hetero 2                    # half the machines at half speed
//	mrcpsim -hetero 2 -speedblind        # same cluster, speed-unaware planning
//	mrcpsim -memcap 64 -memlo 1 -memhi 16  # memory as a second dimension
//	mrcpsim -telemetry run.jsonl          # stream telemetry events, then: obsreport run.jsonl
//	mrcpsim -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"mrcprm"
	"mrcprm/internal/cli"
)

func main() {
	common := cli.New(cli.WithSeed(1), cli.WithWorkers(), cli.WithTelemetry(), cli.WithProfiling())
	var (
		rmName = flag.String("rm", "mrcp",
			"resource manager: "+strings.Join(mrcprm.PolicyNames(), ", "))
		wl       = flag.String("workload", "synthetic", "workload: synthetic or facebook")
		jobs     = flag.Int("jobs", 300, "number of jobs (synthetic)")
		fbjobs   = flag.Int("fbjobs", 300, "number of jobs (facebook)")
		emax     = flag.Int64("emax", 50, "synthetic: max map task execution time (s)")
		p        = flag.Float64("p", 0.5, "synthetic: probability of a future earliest start time")
		smax     = flag.Int64("smax", 50000, "synthetic: max earliest start offset (s)")
		dul      = flag.Float64("dul", 0, "deadline multiplier upper bound (0 = workload default: 5 synthetic, 2 facebook)")
		lambda   = flag.Float64("lambda", 0, "arrival rate jobs/s (0 = workload default)")
		m        = flag.Int("m", 0, "number of resources (0 = workload default)")
		cmp      = flag.Int64("cmp", 2, "map slots per resource (synthetic)")
		crd      = flag.Int64("crd", 2, "reduce slots per resource (synthetic)")
		verb     = flag.Bool("v", false, "print per-job outcomes")
		traceOut = flag.String("trace", "", "write the executed schedule to this file (.csv or .json)")
		gantt    = flag.Bool("gantt", false, "print an ASCII gantt of the executed schedule")

		failRate  = flag.Float64("failrate", 0, "probability a task attempt fails mid-execution")
		straggler = flag.Float64("straggler", 0, "probability a task attempt runs 1.5-3x slow")
		mtbf      = flag.Float64("mtbf", 0, "mean time between resource outages (s, 0 = no outages)")
		mttr      = flag.Float64("mttr", 60, "mean time to repair a down resource (s)")
		faultSeed = flag.Uint64("faultseed", 0, "fault plan seed (0 = derive from -seed)")

		horizon    = flag.Duration("horizon", 0, "mrcp: park jobs whose latest feasible start is further away than this (0 = off)")
		warmStart  = flag.Bool("warmstart", false, "mrcp: seed each reschedule from the installed timetable")
		solveCache = flag.Bool("solvecache", false, "mrcp: memoize solve results keyed by the full reschedule input")

		hetero     = flag.Float64("hetero", 1, "speed spread: second half of the machines run at 1/spread speed (1 = uniform)")
		speedBlind = flag.Bool("speedblind", false, "mrcp: plan as if every machine ran at speed 1.0 (ablation baseline)")
		memCap     = flag.Int64("memcap", 0, "per-machine memory capacity (0 = memory dimension off)")
		taskMemLo  = flag.Int64("memlo", 0, "synthetic: per-task memory demand lower bound (needs -memcap)")
		taskMemHi  = flag.Int64("memhi", 0, "synthetic: per-task memory demand upper bound (needs -memcap)")
	)
	common.Parse()
	defer common.Close()

	rng := mrcprm.NewStream(common.Seed, 0xfeed)
	var jl []*mrcprm.Job
	var cluster mrcprm.Cluster
	var err error

	switch *wl {
	case "synthetic":
		cfg := mrcprm.DefaultSyntheticWorkload()
		cfg.EmaxSec = *emax
		cfg.P = *p
		cfg.SmaxSec = *smax
		if *dul > 0 {
			cfg.DeadlineUL = *dul
		}
		if *lambda > 0 {
			cfg.Lambda = *lambda
		}
		if *m > 0 {
			cfg.NumResources = *m
		}
		cfg.MapSlotsPerResource = *cmp
		cfg.ReduceSlotsPerResource = *crd
		cfg.TaskMemLo = *taskMemLo
		cfg.TaskMemHi = *taskMemHi
		cluster = mrcprm.Cluster{NumResources: cfg.NumResources,
			MapSlots: cfg.MapSlotsPerResource, ReduceSlots: cfg.ReduceSlotsPerResource}
		jl, err = cfg.Generate(*jobs, rng)
	case "facebook":
		cfg := mrcprm.DefaultFacebookWorkload()
		cfg.NumJobs = *fbjobs
		if *dul > 0 {
			cfg.DeadlineUL = *dul
		}
		if *lambda > 0 {
			cfg.Lambda = *lambda
		}
		if *m > 0 {
			cfg.NumResources = *m
		}
		cluster = mrcprm.Cluster{NumResources: cfg.NumResources, MapSlots: 1, ReduceSlots: 1}
		jl, err = cfg.Generate(rng)
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// -hetero/-memcap rebuild the same-shaped cluster through the
	// declarative spec: a two-class speed profile and/or a memory dimension.
	if *hetero > 1 || *memCap > 0 {
		spec := mrcprm.TwoClassCluster(cluster.NumResources, cluster.MapSlots, cluster.ReduceSlots, *hetero)
		spec.MemCapacity = *memCap
		cluster, err = spec.Cluster()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	// Policies come from the registry; -rm selects by name. MRCP-RM's
	// policy-specific config rides along in Extra (other factories ignore it).
	popts := mrcprm.PolicyOptions{}
	if *rmName == "mrcp" {
		mcfg := mrcprm.DefaultConfig()
		mcfg.Workers = common.Workers
		mcfg.HorizonWindow = *horizon
		mcfg.WarmStart = *warmStart
		mcfg.SolveCache = *solveCache
		mcfg.SpeedBlind = *speedBlind
		popts.Extra = mcfg
	}
	rm, err := mrcprm.NewPolicy(*rmName, cluster, popts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var injector mrcprm.FaultInjector
	faulty := *failRate > 0 || *straggler > 0 || *mtbf > 0
	if faulty {
		fseed := *faultSeed
		if fseed == 0 {
			fseed = common.Seed ^ 0xfa170000
		}
		fcfg := mrcprm.FaultConfig{
			TaskFailureProb: *failRate,
			StragglerProb:   *straggler,
			Seed1:           fseed,
			Seed2:           0xfa17,
		}
		if *mtbf > 0 {
			// Cover the whole run: outages can strike until well past the
			// last deadline in the workload.
			var horizon int64
			for _, j := range jl {
				if j.Deadline > horizon {
					horizon = j.Deadline
				}
			}
			fcfg.MTBFMs = *mtbf * 1000
			fcfg.MTTRMs = *mttr * 1000
			fcfg.OutageHorizonMs = 2 * horizon
			fcfg.NumResources = cluster.NumResources
		}
		injector, err = mrcprm.NewFaultPlan(fcfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	metrics, rec, err := mrcprm.SimulateInstrumented(cluster, rm, jl, injector,
		common.Telemetry(), common.TelemetrySampleMS)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("manager    : %s\n", rm.Name())
	fmt.Printf("workload   : %s (%d jobs)\n", *wl, len(jl))
	fmt.Printf("cluster    : m=%d, %d map + %d reduce slots each\n",
		cluster.NumResources, cluster.MapSlots, cluster.ReduceSlots)
	if cluster.Heterogeneous() || cluster.MemCapacity > 0 {
		fmt.Printf("hetero     : speeds %.3g..%.3g, mem capacity %d\n",
			cluster.MinSpeed(), cluster.MaxSpeed(), cluster.MemCapacity)
	}
	fmt.Printf("N (late)   : %d\n", metrics.N())
	fmt.Printf("P          : %.2f%%\n", 100*metrics.P())
	fmt.Printf("T          : %.1f s\n", metrics.T())
	fmt.Printf("O          : %.4f s/job (%d scheduling rounds)\n", metrics.O(), metrics.Invocations)
	fmt.Printf("makespan   : %.1f s\n", float64(metrics.MakespanMS)/1000)

	if faulty {
		fmt.Printf("faults     : %d failed, %d killed, %d retried, %d jobs abandoned\n",
			metrics.TasksFailed, metrics.TasksKilled, metrics.TasksRetried, metrics.JobsAbandoned)
		fmt.Printf("outages    : %d (%.1f s downtime), %.1f slot-s wasted\n",
			metrics.Outages, float64(metrics.DowntimeMS)/1000, float64(metrics.WastedSlotMS)/1000)
	}

	if mgr, ok := rm.(*mrcprm.Manager); ok {
		st := mgr.Stats()
		fmt.Printf("mrcp-rm    : %d solves, %d nodes, %d deferred, %d slips (%.1fs total slip)\n",
			st.Rounds, st.SolverNodes, st.Deferred, st.Slips, float64(st.SlipMS)/1000)
		if faulty {
			fmt.Printf("recovery   : %d fallback rounds, %d task retries, %d jobs abandoned\n",
				st.FallbackRounds, st.TaskRetries, st.JobsAbandoned)
		}
	}

	fmt.Printf("map util   : %.1f%%  reduce util: %.1f%%  active: %.1f resource-hours\n",
		100*metrics.MapUtilization(cluster), 100*metrics.ReduceUtilization(cluster),
		float64(metrics.ResourceActiveMS)/3_600_000)

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if strings.HasSuffix(*traceOut, ".json") {
			err = rec.WriteJSON(f)
		} else {
			err = rec.WriteCSV(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("trace      : %d events -> %s\n", rec.Len(), *traceOut)
	}
	if *gantt {
		fmt.Println()
		for _, row := range rec.GanttRows(cluster, 100) {
			fmt.Println(row)
		}
	}

	if *verb {
		recs := append([]mrcprm.JobRecord(nil), metrics.Records...)
		sort.Slice(recs, func(i, j int) bool { return recs[i].Job.ID < recs[j].Job.ID })
		fmt.Printf("\n%6s %10s %10s %10s %10s %6s\n", "job", "arrival", "start", "deadline", "done", "late")
		for _, r := range recs {
			late := ""
			if r.Late() {
				late = "LATE"
			}
			fmt.Printf("%6d %10.1f %10.1f %10.1f %10.1f %6s\n",
				r.Job.ID, s(r.Job.Arrival), s(r.Job.EarliestStart), s(r.Job.Deadline), s(r.Completion), late)
		}
	}
}

func s(ms int64) float64 { return float64(ms) / 1000 }
