// Command obsreport digests a telemetry JSONL stream produced with
// -telemetry into a human-readable summary: solve-latency percentiles,
// fallback rate, objective convergence, and the sim time-series envelope.
//
// Usage:
//
//	obsreport run.jsonl
//	mrcpsim -telemetry /dev/stdout ... | obsreport
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mrcprm/internal/cli"
	"mrcprm/internal/obs"
)

func main() {
	common := cli.New()
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: obsreport [file.jsonl]  (reads stdin when no file is given)")
		flag.PrintDefaults()
	}
	common.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 1 {
		flag.Usage()
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "obsreport:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	if err := obs.WriteReport(in, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "obsreport:", err)
		os.Exit(1)
	}
}
