// Command solve maps and schedules a fixed batch of MapReduce jobs with
// SLAs in one shot — the closed-system scenario of the authors'
// preliminary work — and prints the schedule as a table and an ASCII Gantt
// chart.
//
// The problem is read as JSON from a file or stdin:
//
//	{
//	  "cluster": {"resources": 2, "mapSlots": 1, "reduceSlots": 1},
//	  "jobs": [
//	    {"id": 0, "earliestStart": 0, "deadline": 60,
//	     "mapTasks": [10, 12], "reduceTasks": [8]},
//	    {"id": 1, "earliestStart": 5, "deadline": 45,
//	     "mapTasks": [20], "reduceTasks": []}
//	  ]
//	}
//
// Times are seconds. Usage:
//
//	solve problem.json
//	solve -demo          # solve a built-in example problem
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mrcprm"
	"mrcprm/internal/cli"
)

type problemJSON struct {
	Cluster struct {
		Resources   int   `json:"resources"`
		MapSlots    int64 `json:"mapSlots"`
		ReduceSlots int64 `json:"reduceSlots"`
	} `json:"cluster"`
	Jobs []struct {
		ID            int       `json:"id"`
		EarliestStart float64   `json:"earliestStart"`
		Deadline      float64   `json:"deadline"`
		MapTasks      []float64 `json:"mapTasks"`
		ReduceTasks   []float64 `json:"reduceTasks"`
	} `json:"jobs"`
}

const demoProblem = `{
  "cluster": {"resources": 2, "mapSlots": 1, "reduceSlots": 1},
  "jobs": [
    {"id": 0, "earliestStart": 0, "deadline": 60, "mapTasks": [10, 12], "reduceTasks": [8]},
    {"id": 1, "earliestStart": 5, "deadline": 45, "mapTasks": [20], "reduceTasks": [6]},
    {"id": 2, "earliestStart": 0, "deadline": 30, "mapTasks": [8, 8], "reduceTasks": []}
  ]
}`

func main() {
	common := cli.New(cli.WithWorkers())
	demo := flag.Bool("demo", false, "solve a built-in example problem")
	direct := flag.Bool("direct", false, "use the direct (per-resource) CP formulation")
	opl := flag.Bool("opl", false, "print the CP model in OPL-like syntax before solving")
	common.Parse()

	var data []byte
	var err error
	switch {
	case *demo:
		data = []byte(demoProblem)
	case flag.NArg() == 1:
		data, err = os.ReadFile(flag.Arg(0))
	default:
		data, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fatal(err)
	}

	var prob problemJSON
	if err := json.Unmarshal(data, &prob); err != nil {
		fatal(fmt.Errorf("parsing problem: %w", err))
	}

	cluster := mrcprm.Cluster{
		NumResources: prob.Cluster.Resources,
		MapSlots:     prob.Cluster.MapSlots,
		ReduceSlots:  prob.Cluster.ReduceSlots,
	}
	var jobs []*mrcprm.Job
	for _, pj := range prob.Jobs {
		j := &mrcprm.Job{
			ID:            pj.ID,
			Arrival:       sec2ms(pj.EarliestStart),
			EarliestStart: sec2ms(pj.EarliestStart),
			Deadline:      sec2ms(pj.Deadline),
		}
		for i, e := range pj.MapTasks {
			j.MapTasks = append(j.MapTasks, &mrcprm.Task{
				ID: fmt.Sprintf("t%d_m%d", pj.ID, i+1), JobID: pj.ID,
				Type: mrcprm.MapTask, Exec: sec2ms(e), Req: 1})
		}
		for i, e := range pj.ReduceTasks {
			j.ReduceTasks = append(j.ReduceTasks, &mrcprm.Task{
				ID: fmt.Sprintf("t%d_r%d", pj.ID, i+1), JobID: pj.ID,
				Type: mrcprm.ReduceTask, Exec: sec2ms(e), Req: 1})
		}
		jobs = append(jobs, j)
	}

	cfg := mrcprm.DefaultConfig()
	cfg.Workers = common.Workers
	if *direct {
		cfg.Mode = mrcprm.ModeDirect
	}
	if *opl {
		if err := mrcprm.WriteBatchModelOPL(cluster, jobs, cfg, os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	sched, err := mrcprm.SolveBatch(cluster, jobs, cfg)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("solved in %v (%d nodes), %d late job(s)", sched.SolveTime.Round(1e5), sched.Nodes, len(sched.LateJobs))
	if sched.Optimal {
		fmt.Print(" [optimal]")
	}
	fmt.Println()
	fmt.Printf("search: %s\n", sched.Search.String())
	if len(sched.LateJobs) > 0 {
		fmt.Printf("late jobs: %v\n", sched.LateJobs)
	}
	fmt.Printf("\n%-8s %-6s %-4s %10s %10s\n", "task", "type", "res", "start(s)", "end(s)")
	for _, a := range sched.Assignments {
		fmt.Printf("%-8s %-6s r%-3d %10.1f %10.1f\n",
			a.Task.ID, a.Task.Type, a.Resource, ms2sec(a.Start), ms2sec(a.End()))
	}
	fmt.Println()
	fmt.Print(gantt(cluster, sched))
}

func sec2ms(s float64) int64  { return int64(s * 1000) }
func ms2sec(ms int64) float64 { return float64(ms) / 1000 }

// gantt renders one row per (resource, slot kind) with '0'..'9' marking
// which job occupies each time column.
func gantt(cluster mrcprm.Cluster, sched *mrcprm.Schedule) string {
	var maxEnd int64
	for _, a := range sched.Assignments {
		if a.End() > maxEnd {
			maxEnd = a.End()
		}
	}
	const width = 72
	if maxEnd == 0 {
		return ""
	}
	scale := float64(width) / float64(maxEnd)
	rows := map[string][]byte{}
	order := []string{}
	rowFor := func(kind string, res int) []byte {
		key := fmt.Sprintf("r%d/%s", res, kind)
		if _, ok := rows[key]; !ok {
			rows[key] = []byte(strings.Repeat(".", width))
			order = append(order, key)
		}
		return rows[key]
	}
	for r := 0; r < cluster.NumResources; r++ {
		if cluster.MapSlots > 0 {
			rowFor("map", r)
		}
		if cluster.ReduceSlots > 0 {
			rowFor("red", r)
		}
	}
	for _, a := range sched.Assignments {
		kind := "map"
		if a.Task.Type == mrcprm.ReduceTask {
			kind = "red"
		}
		row := rowFor(kind, a.Resource)
		from := int(float64(a.Start) * scale)
		to := int(float64(a.End()) * scale)
		if to <= from {
			to = from + 1
		}
		mark := byte('0' + a.Task.JobID%10)
		for x := from; x < to && x < width; x++ {
			row[x] = mark
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "gantt (0..%.0fs, one char ≈ %.1fs; digit = job id mod 10)\n",
		ms2sec(maxEnd), float64(maxEnd)/1000/width)
	for _, key := range order {
		fmt.Fprintf(&b, "%-10s %s\n", key, rows[key])
	}
	return b.String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
