// Command benchparallel measures the CP portfolio search against the
// single-threaded baseline and writes a machine-readable report
// (BENCH_parallel.json at the repository root is a committed snapshot).
//
// Both configurations run with the same fixed per-worker node budget, so
// the comparison is deterministic and machine-independent: a K-worker
// portfolio explores up to K times the nodes and must reach an equal or
// lower late-job objective than the sequential run (worker 0 of the
// portfolio IS the sequential run). Wall-clock micro numbers (ns/op,
// allocs/op) are also recorded but depend on the host.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	mrcprm "mrcprm"
	"mrcprm/internal/cli"
	"mrcprm/internal/workload"
)

type batchResult struct {
	Workers      int     `json:"workers"`
	Nodes        int64   `json:"nodes"`
	Objective    int     `json:"objective"`
	LateJobs     int     `json:"late_jobs"`
	Optimal      bool    `json:"optimal"`
	Winner       int     `json:"winner"`
	BoundImports int64   `json:"bound_imports"`
	SolveMS      float64 `json:"solve_ms"`
}

type microResult struct {
	Name     string  `json:"name"`
	Workers  int     `json:"workers"`
	NsOp     int64   `json:"ns_op"`
	AllocsOp int64   `json:"allocs_op"`
	BytesOp  int64   `json:"bytes_op"`
}

type report struct {
	GeneratedBy string        `json:"generated_by"`
	GoMaxProcs  int           `json:"gomaxprocs"`
	Jobs        int           `json:"jobs"`
	Resources   int           `json:"resources"`
	NodeLimit   int64         `json:"node_limit_per_worker"`
	Seed        uint64        `json:"seed"`
	Batch       []batchResult `json:"batch"`
	NodesRatio  float64       `json:"nodes_ratio"`
	Micro       []microResult `json:"micro"`
}

func main() {
	common := cli.New(cli.WithSeed(3))
	var (
		out       = flag.String("out", "BENCH_parallel.json", "output file (- for stdout)")
		jobs      = flag.Int("jobs", 14, "jobs in the Table 3 style batch")
		resources = flag.Int("m", 10, "number of resources")
		nodeLimit = flag.Int64("nodelimit", 2000, "per-worker node budget")
		workers   = flag.Int("workers", 4, "portfolio width to compare against workers=1")
		micro     = flag.Bool("micro", true, "also run wall-clock micro benchmarks")
	)
	common.Parse()

	cfg := workload.DefaultSynthetic()
	cfg.NumResources = *resources
	cfg.DeadlineUL = 2 // tight deadlines: a non-trivial late-job objective
	gen, err := cfg.Generate(*jobs, mrcprm.NewStream(common.Seed, 4))
	if err != nil {
		fatal(err)
	}
	cluster := mrcprm.Cluster{NumResources: *resources, MapSlots: 2, ReduceSlots: 2}
	mcfg := mrcprm.DefaultConfig()
	mcfg.SolveTimeLimit = 0 // node budget only: keeps runs deterministic
	mcfg.NodeLimit = *nodeLimit

	rep := report{
		GeneratedBy: "cmd/benchparallel",
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Jobs:        *jobs,
		Resources:   *resources,
		NodeLimit:   *nodeLimit,
		Seed:        common.Seed,
	}

	solve := func(w int) batchResult {
		c := mcfg
		c.Workers = w
		sched, err := mrcprm.SolveBatch(cluster, gen, c)
		if err != nil {
			fatal(fmt.Errorf("workers=%d: %w", w, err))
		}
		return batchResult{
			Workers:      sched.Search.Workers,
			Nodes:        sched.Search.Nodes,
			Objective:    sched.Objective,
			LateJobs:     len(sched.LateJobs),
			Optimal:      sched.Optimal,
			Winner:       sched.Search.Winner,
			BoundImports: sched.Search.BoundImports,
			SolveMS:      float64(sched.SolveTime.Microseconds()) / 1000,
		}
	}
	seq := solve(1)
	par := solve(*workers)
	rep.Batch = []batchResult{seq, par}
	if seq.Nodes > 0 {
		rep.NodesRatio = float64(par.Nodes) / float64(seq.Nodes)
	}
	if par.Objective > seq.Objective {
		fatal(fmt.Errorf("portfolio objective %d worse than sequential %d", par.Objective, seq.Objective))
	}

	if *micro {
		for _, w := range []int{1, *workers} {
			c := mcfg
			c.Workers = w
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := mrcprm.SolveBatch(cluster, gen, c); err != nil {
						b.Fatal(err)
					}
				}
			})
			rep.Micro = append(rep.Micro, microResult{
				Name:     "SolveBatch",
				Workers:  w,
				NsOp:     r.NsPerOp(),
				AllocsOp: r.AllocsPerOp(),
				BytesOp:  r.AllocedBytesPerOp(),
			})
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	// Atomic write: CI may read the bench JSON while a rerun is in flight;
	// a rename never exposes a torn document.
	if err := cli.WriteFileAtomic(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: workers=%d explored %.2fx the nodes of workers=1 (objective %d vs %d)\n",
		*out, *workers, rep.NodesRatio, par.Objective, seq.Objective)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
