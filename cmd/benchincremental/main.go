// Command benchincremental measures what the incremental-solving stack
// (warm-started reschedules plus the solve-result cache) buys on the
// reschedule path, and writes a machine-readable report
// (BENCH_incremental.json at the repository root is a committed snapshot).
//
// The scenario isolates exactly the cost the tentpole targets: a large
// standing backlog of tight-deadline jobs is admitted up front (coalesced
// into one batched solve), then a trickle of probe jobs arrives while the
// backlog is still pending. Every probe arrival forces a full Table-2
// reschedule over backlog+probe, so the probe-phase wall_reschedule_ms
// histogram measures how reschedule latency scales with backlog size. The
// cold configuration re-solves from scratch each time; the warm
// configuration seeds the solver from the installed timetable and consults
// the solve cache. Quantiles come from the histogram delta between the two
// probe-phase snapshots, so backlog-admission solves never pollute them.
//
// Numbers are wall-clock and therefore host-dependent; the committed
// snapshot documents magnitude (warm reschedules should be severalfold
// faster at large backlogs), not exact milliseconds.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"mrcprm/internal/cli"
	"mrcprm/internal/core"
	"mrcprm/internal/obs"
	"mrcprm/internal/sim"
	"mrcprm/internal/workload"
)

type runResult struct {
	Backlog       int     `json:"backlog"`
	Mode          string  `json:"mode"` // "cold" or "warm"
	Reschedules   int64   `json:"probe_reschedules"`
	P50MS         float64 `json:"p50_ms"`
	P99MS         float64 `json:"p99_ms"`
	MeanMS        float64 `json:"mean_ms"`
	ModelTasksP50 float64 `json:"model_tasks_p50"`
	WarmHinted    int64   `json:"warmstart_hinted"`
	WarmSeeded    int64   `json:"warmstart_seeded"`
	CacheHits     int64   `json:"solve_cache_hits"`
	CacheMisses   int64   `json:"solve_cache_misses"`
}

type comparison struct {
	Backlog    int     `json:"backlog"`
	ColdP50MS  float64 `json:"cold_p50_ms"`
	WarmP50MS  float64 `json:"warm_p50_ms"`
	SpeedupP50 float64 `json:"speedup_p50"`
	ColdP99MS  float64 `json:"cold_p99_ms"`
	WarmP99MS  float64 `json:"warm_p99_ms"`
	SpeedupP99 float64 `json:"speedup_p99"`
}

type report struct {
	GeneratedBy string       `json:"generated_by"`
	GoMaxProcs  int          `json:"gomaxprocs"`
	Resources   int          `json:"resources"`
	Probes      int          `json:"probes"`
	HorizonMS   int64        `json:"horizon_ms"`
	Runs        []runResult  `json:"runs"`
	Summary     []comparison `json:"summary"`
}

// Scenario shape. The backlog overloads the cluster, but deadlines are
// contested rather than uniformly hopeless: which jobs end up late depends
// on the ordering the solver finds, so a cold solve has a real
// optimality gap to close and pays its improvement/proof budget instead
// of exiting through a trivially tight bound. That is exactly the
// situation warm-starting short-circuits: the incumbent timetable is
// already the product of that paid-for search.
const (
	batchMS      = 5_000  // coalesces the backlog into one admission solve
	probeStartMS = 60_000 // first probe arrival; backlog admitted well before
	probeGapMS   = 15_000 // > batch window, so each probe solves alone
)

func mkJob(id int, arrival int64) *workload.Job {
	// Deterministic per-job variation (no RNG: the report should be
	// reproducible from the flags alone).
	mapExec := int64(30_000 + (id*13%5)*15_000)
	redExec := int64(15_000 + (id*7%3)*10_000)
	minExec := mapExec + redExec
	deadline := arrival + minExec + int64(id*37%11)*45_000
	j := &workload.Job{ID: id, Arrival: arrival, EarliestStart: arrival,
		Deadline: deadline}
	for i := 0; i < 2; i++ {
		j.MapTasks = append(j.MapTasks, &workload.Task{
			ID: "j" + strconv.Itoa(id) + "_m" + strconv.Itoa(i), JobID: id,
			Type: workload.MapTask, Exec: mapExec, Req: 1})
	}
	j.ReduceTasks = append(j.ReduceTasks, &workload.Task{
		ID: "j" + strconv.Itoa(id) + "_r0", JobID: id,
		Type: workload.ReduceTask, Exec: redExec, Req: 1})
	return j
}

func main() {
	common := cli.New()
	var (
		out      = flag.String("out", "BENCH_incremental.json", "output file (- for stdout)")
		backlogs = flag.String("backlogs", "50,200,800", "comma-separated backlog sizes")
		probes   = flag.Int("probes", 16, "probe jobs per run (reschedule samples)")
		m        = flag.Int("m", 10, "number of resources")
		horizon  = flag.Duration("horizon", 0, "HorizonWindow for the warm configuration (0 = off)")
	)
	common.Parse()
	defer common.Close()

	var sizes []int
	for _, f := range strings.Split(*backlogs, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			fatal(fmt.Errorf("bad -backlogs entry %q", f))
		}
		sizes = append(sizes, n)
	}

	rep := report{
		GeneratedBy: "cmd/benchincremental",
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Resources:   *m,
		Probes:      *probes,
		HorizonMS:   horizon.Milliseconds(),
	}

	for _, n := range sizes {
		cold := runOne(n, *probes, *m, false, 0)
		warm := runOne(n, *probes, *m, true, *horizon)
		rep.Runs = append(rep.Runs, cold, warm)
		c := comparison{Backlog: n,
			ColdP50MS: cold.P50MS, WarmP50MS: warm.P50MS,
			ColdP99MS: cold.P99MS, WarmP99MS: warm.P99MS}
		if warm.P50MS > 0 {
			c.SpeedupP50 = cold.P50MS / warm.P50MS
		}
		if warm.P99MS > 0 {
			c.SpeedupP99 = cold.P99MS / warm.P99MS
		}
		rep.Summary = append(rep.Summary, c)
		fmt.Printf("backlog=%d cold p50=%.1fms p99=%.1fms | warm p50=%.1fms p99=%.1fms | speedup p50=%.1fx (seeded %d/%d, cache %d/%d)\n",
			n, cold.P50MS, cold.P99MS, warm.P50MS, warm.P99MS, c.SpeedupP50,
			warm.WarmSeeded, warm.WarmHinted, warm.CacheHits, warm.CacheHits+warm.CacheMisses)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := cli.WriteFileAtomic(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchincremental: wrote %s\n", *out)
}

// runOne plays one backlog+probe scenario and returns probe-phase
// reschedule quantiles. The run is abandoned after the last probe solve:
// completions past that point trigger no reschedules, so stepping the
// backlog to its (hours-long) simulated completion adds nothing.
func runOne(backlog, probes, resources int, warm bool, horizon time.Duration) runResult {
	cluster := sim.Cluster{NumResources: resources, MapSlots: 2, ReduceSlots: 2}
	cfg := core.DefaultConfig()
	cfg.Workers = 1
	cfg.BatchWindow = batchMS * time.Millisecond
	if warm {
		cfg.WarmStart = true
		cfg.SolveCache = true
		cfg.HorizonWindow = horizon
	}

	var jobs []*workload.Job
	for i := 0; i < backlog; i++ {
		// Backlog arrivals spread over a few ms so they share one batch.
		jobs = append(jobs, mkJob(i, int64(i%batchMS)))
	}
	lastFlush := int64(0)
	for i := 0; i < probes; i++ {
		at := int64(probeStartMS + i*probeGapMS)
		jobs = append(jobs, mkJob(backlog+i, at))
		lastFlush = at + batchMS
	}

	tel := obs.New(obs.DiscardSink{})
	mgr := core.New(cluster, cfg)
	mgr.SetTelemetry(tel)
	s, err := sim.New(cluster, mgr, jobs)
	if err != nil {
		fatal(err)
	}

	stepUntil := func(limit int64) {
		for {
			at, ok := s.NextEventAt()
			if !ok || at > limit {
				return
			}
			if _, err := s.Step(); err != nil {
				fatal(err)
			}
		}
	}

	stepUntil(probeStartMS - 1)
	preWall := tel.Hist(obs.HistWallReschedule).Snapshot()
	preModel := tel.Hist(obs.HistSolveModelTasks).Snapshot()
	stepUntil(lastFlush + 1)
	wall := tel.Hist(obs.HistWallReschedule).Snapshot().Delta(preWall)
	model := tel.Hist(obs.HistSolveModelTasks).Snapshot().Delta(preModel)

	mode := "cold"
	if warm {
		mode = "warm"
	}
	return runResult{
		Backlog:       backlog,
		Mode:          mode,
		Reschedules:   wall.Count,
		P50MS:         wall.Quantile(0.5),
		P99MS:         wall.Quantile(0.99),
		MeanMS:        wall.Mean(),
		ModelTasksP50: model.Quantile(0.5),
		WarmHinted:    tel.Counter(obs.CounterWarmStartHinted),
		WarmSeeded:    tel.Counter(obs.CounterWarmStartSeeded),
		CacheHits:     tel.Counter(obs.CounterSolveCacheHits),
		CacheMisses:   tel.Counter(obs.CounterSolveCacheMisses),
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchincremental:", err)
	os.Exit(1)
}
