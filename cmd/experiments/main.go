// Command experiments regenerates the paper's evaluation figures (Figs
// 2-9) and the DESIGN.md ablations as text tables.
//
// Usage:
//
//	experiments -fig all                # every experiment at default size
//	experiments -fig 7                  # one figure
//	experiments -fig ablation-deferral  # one ablation
//	experiments -fig faults             # failure-rate robustness sweep
//	experiments -fig all -fast          # benchmark-sized quick pass
//	experiments -fig 2 -fbjobs 1000 -maxreps 10   # closer to paper scale
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mrcprm/internal/cli"
	"mrcprm/internal/experiment"
)

func main() {
	common := cli.New(cli.WithSeed(1), cli.WithWorkers(), cli.WithTelemetry(), cli.WithProfiling())
	var (
		fig     = flag.String("fig", "all", "experiment id: all, 2..9, fig2..fig9, ablation-*, faults, or hetero")
		fast    = flag.Bool("fast", false, "use benchmark-sized options")
		jobs    = flag.Int("jobs", 0, "jobs per replication for synthetic experiments (0 = default)")
		fbjobs  = flag.Int("fbjobs", 0, "jobs for the Facebook workload (1000 = paper scale; 0 = default)")
		minreps = flag.Int("minreps", 0, "minimum replications (0 = default)")
		maxreps = flag.Int("maxreps", 0, "maximum replications (0 = default)")
		csvDir  = flag.String("csv", "", "also write one CSV per experiment into this directory")

		repWorkers = flag.Int("repworkers", 0, "concurrent replications per cell (0 = min(CPUs, 4); 1 = sequential)")
	)
	common.Parse()
	defer common.Close()

	opts := experiment.DefaultOptions()
	if *fast {
		opts = experiment.FastOptions()
	}
	opts.Seed = common.Seed
	if *jobs > 0 {
		opts.Jobs = *jobs
	}
	if *fbjobs > 0 {
		opts.FacebookJobs = *fbjobs
	}
	if *minreps > 0 {
		opts.Policy.MinReps = *minreps
	}
	if *maxreps > 0 {
		opts.Policy.MaxReps = *maxreps
	}
	opts.ManagerConfig.Workers = common.Workers
	opts.ReplicationWorkers = *repWorkers
	opts.Telemetry = common.Telemetry()
	opts.TelemetrySampleMS = common.TelemetrySampleMS

	ids := resolveIDs(*fig)
	if len(ids) == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; known:", *fig)
		for _, s := range experiment.Registry {
			fmt.Fprintf(os.Stderr, " %s", s.ID)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}
	// fig2 and fig3 are two views of one Facebook sweep; run it once.
	aliases := map[string]string{"fig2": "fig3", "fig3": "fig2"}
	seen := map[string]bool{}
	for _, id := range ids {
		spec, _ := experiment.ByID(id)
		if seen[spec.ID] {
			continue
		}
		seen[spec.ID] = true
		if alias, ok := aliases[spec.ID]; ok {
			seen[alias] = true
		}
		fmt.Printf("running %s: %s ...\n", spec.ID, spec.Title)
		res, err := spec.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", spec.ID, err)
			os.Exit(1)
		}
		fmt.Println(res.Table())
		fmt.Printf("(elapsed %v)\n\n", res.Elapsed.Round(1e7))
		if *csvDir != "" {
			path := filepath.Join(*csvDir, spec.ID+".csv")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			err = res.WriteCSV(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
}

func resolveIDs(arg string) []string {
	if arg == "all" {
		seen := map[string]bool{}
		var ids []string
		for _, s := range experiment.Registry {
			if !seen[s.ID] {
				seen[s.ID] = true
				ids = append(ids, s.ID)
			}
		}
		return ids
	}
	var out []string
	for _, part := range strings.Split(arg, ",") {
		part = strings.TrimSpace(part)
		if _, ok := experiment.ByID(part); !ok &&
			!strings.HasPrefix(part, "fig") && !strings.HasPrefix(part, "ablation") {
			part = "fig" + part
		}
		if _, ok := experiment.ByID(part); ok {
			out = append(out, part)
		} else {
			return nil
		}
	}
	return out
}
