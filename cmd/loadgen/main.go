// Command loadgen replays a synthetic MapReduce job stream against a
// running mrcpd daemon and reports what happened to it.
//
// In -mode virtual it submits the whole stream up front (the daemon is
// expected to be in virtual-clock mode), triggers the run with
// POST /v1/admin/run {"close":true}, and polls until the run finishes. The
// submitted stream is exactly what `mrcpsim -n <jobs> -seed <seed>`
// generates, so the daemon's metrics are comparable to the offline
// simulator's.
//
// In -mode wall it replays the stream open-loop: each job is submitted
// when its generated arrival time comes up on the (speedup-scaled) wall
// clock, then intake is closed and the run polled to completion.
//
// Exit status is non-zero if any submission fails unexpectedly or if
// accepted != completed + abandoned, which makes the summary line a CI
// assertion:
//
//	loadgen: submitted=40 accepted=40 rejected=0 completed=40 late=2 abandoned=0 policy=mrcp
//
// Usage:
//
//	loadgen -addr http://localhost:8373 -jobs 40 -seed 3
//	loadgen -mode wall -speedup 60 -jobs 20
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"time"

	"mrcprm"
	"mrcprm/internal/cli"
)

func main() {
	common := cli.New(cli.WithSeed(1))
	var (
		addr    = flag.String("addr", "http://localhost:8373", "mrcpd base URL")
		jobs    = flag.Int("jobs", 20, "number of jobs to replay")
		lambda  = flag.Float64("lambda", 0, "arrival rate override in jobs/s (0 = workload default)")
		m       = flag.Int("m", 10, "cluster size assumed by the generator")
		mode    = flag.String("mode", "virtual", "replay mode: virtual or wall")
		speedup = flag.Float64("speedup", 1, "wall mode: simulated ms per wall ms (match the daemon)")
		timeout = flag.Duration("timeout", 5*time.Minute, "max time to wait for the run to finish")
	)
	common.Parse()

	wcfg := mrcprm.DefaultSyntheticWorkload()
	wcfg.NumResources = *m
	if *lambda > 0 {
		wcfg.Lambda = *lambda
	}
	stream, err := wcfg.Generate(*jobs, mrcprm.NewStream(common.Seed, 0xfeed))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	specs := make([]mrcprm.JobSpec, len(stream))
	for i, j := range stream {
		specs[i] = mrcprm.JobSpecOf(j)
	}
	sort.SliceStable(specs, func(i, k int) bool { return specs[i].ArrivalMS < specs[k].ArrivalMS })

	client := &http.Client{Timeout: 30 * time.Second}
	var submitted, accepted, rejected int
	start := time.Now()
	for _, spec := range specs {
		if *mode == "wall" {
			// Open-loop pacing: submit when the generated arrival comes up
			// on the speedup-scaled wall clock; the daemon restamps
			// arrivals at receipt.
			due := time.Duration(float64(spec.ArrivalMS) / *speedup * float64(time.Millisecond))
			if wait := due - time.Since(start); wait > 0 {
				time.Sleep(wait)
			}
		}
		submitted++
		status, body, err := postJSON(client, *addr+"/v1/jobs", spec)
		switch {
		case err != nil:
			fmt.Fprintf(os.Stderr, "submit: %v\n", err)
			os.Exit(1)
		case status == http.StatusAccepted:
			accepted++
		case status == http.StatusUnprocessableEntity:
			rejected++
		default:
			fmt.Fprintf(os.Stderr, "submit: unexpected %d: %s\n", status, body)
			os.Exit(1)
		}
	}

	run := map[string]bool{"close": true}
	if status, body, err := postJSON(client, *addr+"/v1/admin/run", run); err != nil || status != http.StatusOK {
		fmt.Fprintf(os.Stderr, "run: %d %s (%v)\n", status, body, err)
		os.Exit(1)
	}

	deadline := time.Now().Add(*timeout)
	var snap mrcprm.ServiceSnapshot
	for {
		if err := getJSON(client, *addr+"/v1/metrics", &snap); err != nil {
			fmt.Fprintf(os.Stderr, "metrics: %v\n", err)
			os.Exit(1)
		}
		if snap.Finished {
			break
		}
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "timed out after %v: %d/%d jobs completed\n",
				*timeout, snap.JobsCompleted, accepted)
			os.Exit(1)
		}
		time.Sleep(200 * time.Millisecond)
	}

	fmt.Printf("loadgen: submitted=%d accepted=%d rejected=%d completed=%d late=%d abandoned=%d policy=%s\n",
		submitted, accepted, rejected, snap.JobsCompleted, snap.LateJobs, snap.JobsAbandoned, snap.Policy)
	if accepted != snap.JobsCompleted+snap.JobsAbandoned {
		fmt.Fprintf(os.Stderr, "accounting mismatch: accepted %d but %d completed + %d abandoned\n",
			accepted, snap.JobsCompleted, snap.JobsAbandoned)
		os.Exit(1)
	}
}

func postJSON(client *http.Client, url string, body any) (int, []byte, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, out.Bytes(), nil
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
