// Command loadgen replays a synthetic MapReduce job stream against a
// running mrcpd daemon and reports what happened to it.
//
// In -mode virtual it submits the whole stream up front (the daemon is
// expected to be in virtual-clock mode), triggers the run with
// POST /v1/admin/run {"close":true}, and polls until the run finishes. The
// submitted stream is exactly what `mrcpsim -n <jobs> -seed <seed>`
// generates, so the daemon's metrics are comparable to the offline
// simulator's. With -verify the served final-metrics fingerprint is also
// checked against a local deterministic replay of the accepted stream —
// the daemon must then run with -deterministic and the same cluster shape.
//
// In -mode wall it replays the stream open-loop: each job is submitted
// when its generated arrival time comes up on the (speedup-scaled) wall
// clock, then intake is closed and the run polled to completion.
//
// In -mode stress it drives an open-loop arrival ramp (-rate0 to -rate1
// jobs/s over -duration) with heavy-tailed job sizes (bounded Pareto task
// multipliers) and periodic bursts against a wall-mode daemon, measuring
// the admission path: p50/p90/p95/p99 admission latency, shed (429)
// counts, the max sustainable rate (the highest 1-second offered rate the
// daemon absorbed with zero sheds and p99 under -p99cap), and end-to-end
// job-latency quantiles scraped from the daemon's Prometheus endpoint.
// -bench writes the report as JSON (the committed BENCH_service.json).
//
// Exit status is non-zero if any submission fails unexpectedly, if
// accepted != completed + abandoned, or if -verify finds a fingerprint
// divergence — which makes the summary line a CI assertion:
//
//	loadgen: submitted=40 accepted=40 rejected=0 completed=40 late=2 abandoned=0 policy=mrcp fingerprint=8be0...
//
// Usage:
//
//	loadgen -addr http://localhost:8373 -jobs 40 -seed 3
//	loadgen -mode wall -speedup 60 -jobs 20
//	loadgen -jobs 40 -seed 3 -verify          # daemon: -mode virtual -deterministic
//	loadgen -mode stress -rate0 5 -rate1 120 -duration 10s -bench BENCH_service.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"mrcprm"
	"mrcprm/internal/cli"
)

func main() {
	common := cli.New(cli.WithSeed(1))
	var (
		addr    = flag.String("addr", "http://localhost:8373", "mrcpd base URL")
		jobs    = flag.Int("jobs", 20, "number of jobs to replay")
		lambda  = flag.Float64("lambda", 0, "arrival rate override in jobs/s (0 = workload default)")
		m       = flag.Int("m", 10, "cluster size assumed by the generator")
		mode    = flag.String("mode", "virtual", "replay mode: virtual, wall, or stress")
		speedup = flag.Float64("speedup", 1, "wall mode: simulated ms per wall ms (match the daemon)")
		timeout = flag.Duration("timeout", 5*time.Minute, "max time to wait for the run to finish")
		verify  = flag.Bool("verify", false, "virtual mode: replay the accepted stream locally and require an identical metrics fingerprint (daemon must run -deterministic)")

		rate0      = flag.Float64("rate0", 5, "stress: initial arrival rate in jobs/s")
		rate1      = flag.Float64("rate1", 100, "stress: final arrival rate in jobs/s")
		duration   = flag.Duration("duration", 10*time.Second, "stress: ramp duration")
		burst      = flag.Int("burst", 10, "stress: jobs per burst (0 = no bursts)")
		burstEvery = flag.Duration("burstevery", 3*time.Second, "stress: interval between bursts")
		tailAlpha  = flag.Float64("tailalpha", 1.5, "stress: bounded-Pareto tail index for job-size multipliers")
		p99Cap     = flag.Duration("p99cap", 50*time.Millisecond, "stress: per-second p99 admission latency bound for the sustainable-rate estimate")
		bench      = flag.String("bench", "", "stress: write the report as JSON to this path")
	)
	common.Parse()

	if *mode == "stress" {
		os.Exit(stress(stressConfig{
			addr: *addr, m: *m, seed: common.Seed,
			rate0: *rate0, rate1: *rate1, duration: *duration,
			burst: *burst, burstEvery: *burstEvery,
			tailAlpha: *tailAlpha, p99Cap: *p99Cap, bench: *bench,
		}))
	}

	wcfg := mrcprm.DefaultSyntheticWorkload()
	wcfg.NumResources = *m
	if *lambda > 0 {
		wcfg.Lambda = *lambda
	}
	stream, err := wcfg.Generate(*jobs, mrcprm.NewStream(common.Seed, 0xfeed))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	specs := make([]mrcprm.JobSpec, len(stream))
	for i, j := range stream {
		specs[i] = mrcprm.JobSpecOf(j)
	}
	sort.SliceStable(specs, func(i, k int) bool { return specs[i].ArrivalMS < specs[k].ArrivalMS })

	client := &http.Client{Timeout: 30 * time.Second}
	var submitted, accepted, rejected int
	// acceptedJobs mirrors the daemon's admitted stream (spec + assigned ID)
	// for the -verify local replay.
	var acceptedJobs []acceptedJob
	start := time.Now()
	for _, spec := range specs {
		if *mode == "wall" {
			// Open-loop pacing: submit when the generated arrival comes up
			// on the speedup-scaled wall clock; the daemon restamps
			// arrivals at receipt.
			due := time.Duration(float64(spec.ArrivalMS) / *speedup * float64(time.Millisecond))
			if wait := due - time.Since(start); wait > 0 {
				time.Sleep(wait)
			}
		}
		submitted++
	resubmit:
		status, body, err := postJSON(client, *addr+"/v1/jobs", spec)
		switch {
		case err != nil:
			fmt.Fprintf(os.Stderr, "submit: %v\n", err)
			os.Exit(1)
		case status == http.StatusAccepted:
			accepted++
			var resp struct {
				ID int `json:"id"`
			}
			if err := json.Unmarshal(body, &resp); err != nil {
				fmt.Fprintf(os.Stderr, "submit: parsing accept body %q: %v\n", body, err)
				os.Exit(1)
			}
			acceptedJobs = append(acceptedJobs, acceptedJob{id: resp.ID, spec: spec})
		case status == http.StatusUnprocessableEntity:
			rejected++
		case status == http.StatusTooManyRequests && *mode == "wall":
			// Honor the backpressure hint: the daemon drains in wall time,
			// so waiting and retrying is meaningful (unlike virtual mode,
			// where nothing drains until /v1/admin/run).
			wait := retryAfter(body)
			if time.Since(start)+wait > *timeout {
				fmt.Fprintf(os.Stderr, "submit: still overloaded at timeout: %s\n", body)
				os.Exit(1)
			}
			time.Sleep(wait)
			goto resubmit
		default:
			fmt.Fprintf(os.Stderr, "submit: unexpected %d: %s\n", status, body)
			os.Exit(1)
		}
	}

	run := map[string]bool{"close": true}
	if status, body, err := postJSON(client, *addr+"/v1/admin/run", run); err != nil || status != http.StatusOK {
		fmt.Fprintf(os.Stderr, "run: %d %s (%v)\n", status, body, err)
		os.Exit(1)
	}

	deadline := time.Now().Add(*timeout)
	// ShardSnapshot embeds the flat single-engine snapshot, so decoding works
	// against both a plain mrcpd and a sharded one; Shards is empty when the
	// daemon runs a single engine.
	var snap mrcprm.ShardSnapshot
	for {
		if err := getJSON(client, *addr+"/v1/metrics", &snap); err != nil {
			fmt.Fprintf(os.Stderr, "metrics: %v\n", err)
			os.Exit(1)
		}
		if snap.Finished {
			break
		}
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "timed out after %v: %d/%d jobs completed\n",
				*timeout, snap.JobsCompleted, accepted)
			os.Exit(1)
		}
		time.Sleep(200 * time.Millisecond)
	}

	fmt.Printf("loadgen: submitted=%d accepted=%d rejected=%d completed=%d late=%d abandoned=%d policy=%s fingerprint=%s\n",
		submitted, accepted, rejected, snap.JobsCompleted, snap.LateJobs, snap.JobsAbandoned, snap.Policy, snap.Fingerprint)
	if accepted != snap.JobsCompleted+snap.JobsAbandoned {
		fmt.Fprintf(os.Stderr, "accounting mismatch: accepted %d but %d completed + %d abandoned\n",
			accepted, snap.JobsCompleted, snap.JobsAbandoned)
		os.Exit(1)
	}
	if *verify && len(snap.Shards) > 1 {
		// Sharded daemon: global IDs encode the placement (gid = local*N +
		// shard, see internal/shard), so the accepted stream partitions
		// exactly as the router placed it. Replay each shard's stream on its
		// slice of the cluster and require every per-shard fingerprint — and
		// their combination — to match what the daemon served.
		n := len(snap.Shards)
		byShard := make([][]acceptedJob, n)
		for _, a := range acceptedJobs {
			byShard[a.id%n] = append(byShard[a.id%n], a)
		}
		fps := make([]uint64, n)
		for s, view := range snap.Shards {
			cluster := mrcprm.Cluster{NumResources: view.Resources, MapSlots: 2, ReduceSlots: 2}
			fp, err := replayFingerprint(cluster, view.Policy, byShard[s], n)
			if err != nil {
				fmt.Fprintf(os.Stderr, "verify: shard %d: %v\n", s, err)
				os.Exit(1)
			}
			fps[s] = fp
			if want := fmt.Sprintf("%016x", fp); view.Fingerprint != want {
				fmt.Fprintf(os.Stderr, "verify: shard %d fingerprint %s diverges from local replay %s\n",
					s, view.Fingerprint, want)
				os.Exit(1)
			}
		}
		want := fmt.Sprintf("%016x", mrcprm.CombineShardFingerprints(fps))
		if snap.Fingerprint != want {
			fmt.Fprintf(os.Stderr, "verify: combined fingerprint %s diverges from local replay %s\n",
				snap.Fingerprint, want)
			os.Exit(1)
		}
		fmt.Printf("loadgen: verify ok (%d shards, combined fingerprint %s)\n", n, want)
	} else if *verify {
		cluster := mrcprm.Cluster{NumResources: *m, MapSlots: 2, ReduceSlots: 2}
		fp, err := replayFingerprint(cluster, snap.Policy, acceptedJobs, 1)
		if err != nil {
			fmt.Fprintf(os.Stderr, "verify: %v\n", err)
			os.Exit(1)
		}
		want := fmt.Sprintf("%016x", fp)
		if snap.Fingerprint != want {
			fmt.Fprintf(os.Stderr, "verify: served fingerprint %s diverges from local replay %s\n",
				snap.Fingerprint, want)
			os.Exit(1)
		}
		fmt.Printf("loadgen: verify ok (fingerprint %s)\n", want)
	}
}

// acceptedJob is one admitted submission (spec + daemon-assigned ID) kept
// for the -verify local replay.
type acceptedJob struct {
	id   int
	spec mrcprm.JobSpec
}

// replayFingerprint rebuilds the accepted stream as simulator jobs — with
// IDs mapped from global to engine-local space (gid/n; n=1 leaves them
// untouched) — runs it deterministically, and returns the metrics
// fingerprint for comparison with what the daemon served.
func replayFingerprint(cluster mrcprm.Cluster, policy string, accepted []acceptedJob, n int) (uint64, error) {
	opts := mrcprm.PolicyOptions{}
	if policy == "mrcp" {
		opts.Extra = mrcprm.DeterministicConfig()
	}
	rm, err := mrcprm.NewPolicy(policy, cluster, opts)
	if err != nil {
		return 0, err
	}
	ref := make([]*mrcprm.Job, 0, len(accepted))
	for _, a := range accepted {
		j, err := a.spec.Job(a.id / n)
		if err != nil {
			return 0, fmt.Errorf("rebuilding job %d: %w", a.id, err)
		}
		ref = append(ref, j)
	}
	metrics, err := mrcprm.Simulate(cluster, rm, ref)
	if err != nil {
		return 0, err
	}
	return metrics.Fingerprint(), nil
}

// retryAfter extracts the retry hint from a 429 body, falling back to 1s.
func retryAfter(body []byte) time.Duration {
	var resp struct {
		RetryAfterMS int64 `json:"retryAfterMs"`
	}
	if err := json.Unmarshal(body, &resp); err == nil && resp.RetryAfterMS > 0 {
		return time.Duration(resp.RetryAfterMS) * time.Millisecond
	}
	return time.Second
}

// --- Stress mode ---

type stressConfig struct {
	addr       string
	m          int
	seed       uint64
	rate0      float64
	rate1      float64
	duration   time.Duration
	burst      int
	burstEvery time.Duration
	tailAlpha  float64
	p99Cap     time.Duration
	bench      string
}

// stressSample is one submission's outcome.
type stressSample struct {
	at      time.Duration // scheduled offset into the ramp
	latency time.Duration
	status  int
	err     bool
}

// bucketReport is one second of the ramp in the bench JSON.
type bucketReport struct {
	Second   int     `json:"second"`
	Offered  int     `json:"offered"`
	Accepted int     `json:"accepted"`
	Shed     int     `json:"shed"`
	P99MS    float64 `json:"p99Ms"`
}

// benchReport is the committed BENCH_service.json shape.
type benchReport struct {
	Benchmark   string  `json:"benchmark"`
	Rate0       float64 `json:"rate0JobsPerSec"`
	Rate1       float64 `json:"rate1JobsPerSec"`
	DurationSec float64 `json:"durationSec"`
	TailAlpha   float64 `json:"tailAlpha"`
	Burst       int     `json:"burst"`
	Seed        uint64  `json:"seed"`

	Submitted int `json:"submitted"`
	Accepted  int `json:"accepted"`
	Rejected  int `json:"rejected"`
	Shed      int `json:"shed"`
	Errors    int `json:"errors"`

	LatencyP50MS float64 `json:"latencyP50Ms"`
	LatencyP90MS float64 `json:"latencyP90Ms"`
	LatencyP95MS float64 `json:"latencyP95Ms"`
	LatencyP99MS float64 `json:"latencyP99Ms"`
	LatencyMaxMS float64 `json:"latencyMaxMs"`

	// End-to-end job latency quantiles scraped from the daemon's
	// mrcp_job_e2e_ms histogram after the ramp; zero when nothing
	// completed by scrape time. Estimates carry the histogram's
	// one-bucket-width (factor sqrt 2) accuracy.
	E2EP50MS float64 `json:"e2eP50Ms,omitempty"`
	E2EP90MS float64 `json:"e2eP90Ms,omitempty"`
	E2EP95MS float64 `json:"e2eP95Ms,omitempty"`
	E2ECount int64   `json:"e2eCount,omitempty"`

	// MaxSustainableJobsPerSec is the highest 1-second offered rate the
	// daemon absorbed with zero sheds and bucket p99 within the cap.
	MaxSustainableJobsPerSec float64        `json:"maxSustainableJobsPerSec"`
	P99CapMS                 float64        `json:"p99CapMs"`
	Buckets                  []bucketReport `json:"buckets"`
}

// stress drives the open-loop ramp and returns the process exit code.
func stress(cfg stressConfig) int {
	// Size templates from the synthetic generator so exec times are
	// realistic; the ramp then scales task counts heavy-tailed.
	wcfg := mrcprm.DefaultSyntheticWorkload()
	wcfg.NumResources = cfg.m
	base, err := wcfg.Generate(50, mrcprm.NewStream(cfg.seed, 0xfeed))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	// Precompute the whole submission plan (times and specs) so the firing
	// loop does no random-number work: open-loop means send times must not
	// depend on responses.
	rng := mrcprm.NewStream(cfg.seed, 0x57e55)
	durS := cfg.duration.Seconds()
	var times []time.Duration
	for t := 0.0; t < durS; {
		r := cfg.rate0 + (cfg.rate1-cfg.rate0)*t/durS
		if r < 0.1 {
			r = 0.1
		}
		t += rng.ExpFloat64() / r
		if t < durS {
			times = append(times, time.Duration(t*float64(time.Second)))
		}
	}
	if cfg.burst > 0 && cfg.burstEvery > 0 {
		for bt := cfg.burstEvery; bt < cfg.duration; bt += cfg.burstEvery {
			for i := 0; i < cfg.burst; i++ {
				times = append(times, bt)
			}
		}
	}
	sort.Slice(times, func(i, k int) bool { return times[i] < times[k] })
	specs := make([]mrcprm.JobSpec, len(times))
	for i := range specs {
		specs[i] = stressSpec(base[rng.IntN(len(base))], rng.Float64(), cfg.tailAlpha)
	}

	client := &http.Client{Timeout: 10 * time.Second}
	samples := make([]stressSample, len(times))
	var wg sync.WaitGroup
	start := time.Now()
	for i, due := range times {
		if wait := due - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		wg.Add(1)
		go func(i int, due time.Duration) {
			defer wg.Done()
			t0 := time.Now()
			status, _, err := postJSON(client, cfg.addr+"/v1/jobs", specs[i])
			samples[i] = stressSample{at: due, latency: time.Since(t0), status: status, err: err != nil}
		}(i, due)
	}
	wg.Wait()

	rep := analyze(cfg, samples)
	scrapeE2E(client, cfg.addr, rep)
	fmt.Printf("loadgen stress: submitted=%d accepted=%d rejected=%d shed=%d errors=%d p50=%.1fms p90=%.1fms p95=%.1fms p99=%.1fms sustainable=%.0f jobs/s\n",
		rep.Submitted, rep.Accepted, rep.Rejected, rep.Shed, rep.Errors,
		rep.LatencyP50MS, rep.LatencyP90MS, rep.LatencyP95MS, rep.LatencyP99MS, rep.MaxSustainableJobsPerSec)
	if rep.E2ECount > 0 {
		fmt.Printf("loadgen stress: e2e (n=%d, scraped) p50=%.0fms p90=%.0fms p95=%.0fms\n",
			rep.E2ECount, rep.E2EP50MS, rep.E2EP90MS, rep.E2EP95MS)
	}
	if cfg.bench != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			// Atomic write: CI reads this file while stress runs may still
			// be in flight; a rename never exposes a torn JSON document.
			err = cli.WriteFileAtomic(cfg.bench, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			return 1
		}
		fmt.Printf("loadgen stress: wrote %s\n", cfg.bench)
	}
	if rep.Errors > 0 {
		fmt.Fprintf(os.Stderr, "stress: %d transport errors\n", rep.Errors)
		return 1
	}
	return 0
}

// stressSpec builds one heavy-tailed submission from a template job: the
// map phase is scaled by a bounded Pareto multiplier (tail index alpha,
// support [1, 16]) and the deadline stretched proportionally so the job
// stays individually feasible.
func stressSpec(template *mrcprm.Job, u, alpha float64) mrcprm.JobSpec {
	spec := mrcprm.JobSpecOf(template)
	spec.ArrivalMS = 0 // the wall-mode daemon restamps at receipt
	mult := math.Pow(1-u*(1-math.Pow(1.0/16, alpha)), -1/alpha)
	n := int(math.Ceil(float64(len(spec.MapExecMS)) * mult))
	if n > 64 {
		n = 64
	}
	maps := make([]int64, n)
	for i := range maps {
		maps[i] = spec.MapExecMS[i%len(spec.MapExecMS)]
	}
	spec.MapExecMS = maps
	window := spec.DeadlineMS - spec.ArrivalMS
	spec.DeadlineMS = spec.ArrivalMS + int64(float64(window)*mult)
	return spec
}

// analyze folds the samples into the bench report.
func analyze(cfg stressConfig, samples []stressSample) *benchReport {
	rep := &benchReport{
		Benchmark: "service-stress", Rate0: cfg.rate0, Rate1: cfg.rate1,
		DurationSec: cfg.duration.Seconds(), TailAlpha: cfg.tailAlpha,
		Burst: cfg.burst, Seed: cfg.seed,
		Submitted: len(samples),
		P99CapMS:  float64(cfg.p99Cap.Milliseconds()),
	}
	var lats []time.Duration
	nBuckets := int(cfg.duration.Seconds()) + 1
	type bucket struct {
		offered, accepted, shed int
		lats                    []time.Duration
	}
	buckets := make([]bucket, nBuckets)
	for _, s := range samples {
		b := int(s.at.Seconds())
		if b >= nBuckets {
			b = nBuckets - 1
		}
		buckets[b].offered++
		switch {
		case s.err:
			rep.Errors++
			continue
		case s.status == http.StatusAccepted:
			rep.Accepted++
			buckets[b].accepted++
		case s.status == http.StatusUnprocessableEntity:
			rep.Rejected++
		case s.status == http.StatusTooManyRequests:
			rep.Shed++
			buckets[b].shed++
		default:
			rep.Errors++
			continue
		}
		lats = append(lats, s.latency)
		buckets[b].lats = append(buckets[b].lats, s.latency)
	}
	sort.Slice(lats, func(i, k int) bool { return lats[i] < lats[k] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	if len(lats) > 0 {
		rep.LatencyP50MS = ms(percentile(lats, 0.50))
		rep.LatencyP90MS = ms(percentile(lats, 0.90))
		rep.LatencyP95MS = ms(percentile(lats, 0.95))
		rep.LatencyP99MS = ms(percentile(lats, 0.99))
		rep.LatencyMaxMS = ms(lats[len(lats)-1])
	}
	for i, b := range buckets {
		if b.offered == 0 {
			continue
		}
		sort.Slice(b.lats, func(x, y int) bool { return b.lats[x] < b.lats[y] })
		p99 := time.Duration(0)
		if len(b.lats) > 0 {
			p99 = percentile(b.lats, 0.99)
		}
		rep.Buckets = append(rep.Buckets, bucketReport{
			Second: i, Offered: b.offered, Accepted: b.accepted, Shed: b.shed, P99MS: ms(p99),
		})
		if b.shed == 0 && p99 <= cfg.p99Cap && float64(b.offered) > rep.MaxSustainableJobsPerSec {
			rep.MaxSustainableJobsPerSec = float64(b.offered)
		}
	}
	return rep
}

// scrapeE2E pulls the daemon's end-to-end job-latency histogram off the
// Prometheus endpoint and folds its quantiles into the report. Best
// effort: a daemon predating /metrics, a scrape failure, or an empty
// histogram (nothing completed yet) leaves the fields zero.
func scrapeE2E(client *http.Client, addr string, rep *benchReport) {
	resp, err := client.Get(addr + "/metrics")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	scrape, err := mrcprm.ParsePrometheus(resp.Body)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stress: bad /metrics exposition: %v\n", err)
		return
	}
	ph, ok := scrape.Hists["mrcp_job_e2e_ms"]
	if !ok || ph.Count == 0 {
		return
	}
	h, err := ph.Snapshot("job_e2e_ms")
	if err != nil {
		fmt.Fprintf(os.Stderr, "stress: e2e histogram: %v\n", err)
		return
	}
	rep.E2ECount = h.Count
	rep.E2EP50MS = h.Quantile(0.50)
	rep.E2EP90MS = h.Quantile(0.90)
	rep.E2EP95MS = h.Quantile(0.95)
}

// percentile returns the q-quantile of sorted durations (nearest rank).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func postJSON(client *http.Client, url string, body any) (int, []byte, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, out.Bytes(), nil
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
