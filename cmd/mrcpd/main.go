// Command mrcpd is the online scheduling daemon: it accepts MapReduce job
// submissions with SLAs over an HTTP/JSON API and schedules them with
// MRCP-RM (or a baseline manager) on a simulated cluster.
//
// Two clock modes:
//
//   - -mode wall (default): the daemon behaves like a live scheduler —
//     submissions are stamped with their wall-clock arrival (scaled by
//     -speedup) and the schedule executes in real time.
//   - -mode virtual: submissions accumulate until POST /v1/admin/run, then
//     the whole stream executes in virtual time. A virtual run over a
//     recorded stream is deterministic and byte-comparable to the offline
//     simulator (see cmd/loadgen).
//
// Durability: -journal appends every accepted submission, fault switch,
// and outage to a write-ahead journal before acknowledging it; after a
// crash, -recover replays the journal into a fresh engine and finishes the
// stream. With -deterministic (pinned solver settings) a recovered virtual
// run's final metrics fingerprint is bit-identical to the uninterrupted
// run's. -maxpending bounds the intake: excess submissions get 429 with a
// Retry-After derived from the recent drain rate.
//
// Observability: GET /metrics serves Prometheus text exposition (latency
// and end-to-end histograms, job-flow counters, SLO burn gauges) backed by
// an always-on in-process registry; -telemetry additionally streams JSONL
// events (digest with obsreport). GET /v1/jobs/{id}/trace replays one
// job's lifecycle timeline; /readyz flips to 503 "slo-burn" while the
// deadline-miss rate exceeds -missbudget over the -slowindow window.
//
// API: POST /v1/jobs, GET /v1/jobs[/{id}[/trace]], GET /v1/schedule,
// GET /v1/metrics, GET /metrics, POST /v1/admin/faults, POST /v1/admin/run,
// GET /healthz, GET /readyz.
//
// Usage:
//
//	mrcpd                                  # wall clock, :8373, 10 resources
//	mrcpd -mode virtual -addr :9000 -m 50
//	mrcpd -speedup 60 -batchwindow 5s -batchmax 20
//	mrcpd -rm minedf -admission=false
//	mrcpd -hetero 2 -memcap 64             # two speed classes + memory dimension
//	mrcpd -mode virtual -deterministic -journal run.wal   # durable
//	mrcpd -mode virtual -deterministic -journal run.wal -recover
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mrcprm"
	"mrcprm/internal/cli"
)

func main() {
	common := cli.New(cli.WithWorkers(), cli.WithTelemetry(), cli.WithProfiling())
	var (
		addr    = flag.String("addr", ":8373", "HTTP listen address")
		mode    = flag.String("mode", "wall", "clock mode: wall or virtual")
		speedup = flag.Float64("speedup", 1, "wall mode: simulated ms per wall ms")
		m       = flag.Int("m", 10, "number of resources")
		cmp     = flag.Int64("cmp", 2, "map slots per resource")
		crd     = flag.Int64("crd", 2, "reduce slots per resource")
		hetero  = flag.Float64("hetero", 1, "speed spread: second half of the machines run at 1/spread speed (1 = uniform)")
		memCap  = flag.Int64("memcap", 0, "per-machine memory capacity (0 = memory dimension off)")

		speedBlind = flag.Bool("speedblind", false, "mrcp: plan as if every machine ran at speed 1.0 (ablation baseline)")
		rmName     = flag.String("rm", "mrcp",
			"resource manager: "+strings.Join(mrcprm.PolicyNames(), ", "))
		listPolicies = flag.Bool("listpolicies", false, "print registered policy names and exit")

		admission    = flag.Bool("admission", true, "reject provably infeasible submissions")
		batchWindow  = flag.Duration("batchwindow", 0, "coalesce arrivals for this long before solving (0 = solve per arrival)")
		batchMax     = flag.Int("batchmax", 0, "flush the arrival batch at this many pending jobs (0 = no cap)")
		batchUrgency = flag.Duration("batchurgency", 0, "flush the batch when a job's latest feasible start is this close (0 = off)")
		deferral     = flag.Duration("deferral", 30*time.Second, "park jobs whose earliest start is further away than this (0 = off)")
		horizon      = flag.Duration("horizon", 0, "rolling horizon: park jobs whose latest feasible start is further away than this (0 = off)")
		warmStart    = flag.Bool("warmstart", false, "seed each reschedule from the installed timetable")
		solveCache   = flag.Bool("solvecache", false, "memoize solve results keyed by the full reschedule input")

		drainTimeout = flag.Duration("draintimeout", time.Minute, "max time to finish outstanding work on SIGTERM")

		journal     = flag.String("journal", "", "write-ahead journal path (empty = no durability)")
		journalSync = flag.String("journalsync", "always", "journal fsync policy: always, batch, or none")
		doRecover   = flag.Bool("recover", false, "replay the -journal into a fresh engine before serving")
		maxPending  = flag.Int("maxpending", 0, "shed submissions beyond this many accepted-but-unfinished jobs (0 = unbounded)")
		determin    = flag.Bool("deterministic", false, "pin solver settings (no time limit, node budget, one worker) for reproducible runs")

		missBudget = flag.Float64("missbudget", 0.1, "SLO miss budget: the deadline-miss rate that flips /readyz to slo-burn")
		sloWindow  = flag.Duration("slowindow", time.Minute, "simulated-time window for the SLO burn monitor")

		shards    = flag.Int("shards", 1, "partition the cluster into this many shards, each with its own engine, behind an admission router")
		routeSeed = flag.Uint64("routeseed", 1, "seed for the router's deterministic placement tie-break")
		rebalance = flag.Duration("rebalance", 0, "migrate still-queued jobs from hot to cold shards this often (0 = off)")
	)
	common.Parse()
	defer common.Close()

	if *listPolicies {
		fmt.Println(strings.Join(mrcprm.PolicyNames(), "\n"))
		return
	}

	cluster := mrcprm.Cluster{NumResources: *m, MapSlots: *cmp, ReduceSlots: *crd}
	if *hetero > 1 || *memCap > 0 {
		spec := mrcprm.TwoClassCluster(*m, *cmp, *crd, *hetero)
		spec.MemCapacity = *memCap
		var err error
		cluster, err = spec.Cluster()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	mcfg := mrcprm.DefaultConfig()
	mcfg.Workers = common.Workers
	if *determin {
		mcfg = mrcprm.DeterministicConfig()
	}
	mcfg.SpeedBlind = *speedBlind
	mcfg.BatchWindow = *batchWindow
	mcfg.BatchMaxPending = *batchMax
	mcfg.BatchUrgencyLead = *batchUrgency
	mcfg.DeferralLead = *deferral
	mcfg.HorizonWindow = *horizon
	mcfg.WarmStart = *warmStart
	mcfg.SolveCache = *solveCache

	// Without -telemetry the daemon still keeps a registry-only handle
	// (counters, gauges, histograms; no event stream) so GET /metrics has
	// real histograms to serve.
	tel := common.Telemetry()
	if tel == nil {
		tel = mrcprm.NewRegistryTelemetry()
	}
	cfg := mrcprm.ServiceConfig{
		Cluster:           cluster,
		Policy:            *rmName,
		Manager:           mcfg,
		Speedup:           *speedup,
		Admission:         *admission,
		Telemetry:         tel,
		TelemetrySampleMS: common.TelemetrySampleMS,
		JournalPath:       *journal,
		JournalSync:       *journalSync,
		MaxPending:        *maxPending,
		SLO:               mrcprm.SLOConfig{MissBudget: *missBudget, WindowMS: sloWindow.Milliseconds()},
	}
	switch *mode {
	case "wall":
		cfg.Mode = mrcprm.ServiceWall
	case "virtual":
		cfg.Mode = mrcprm.ServiceVirtual
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}

	// A single shard keeps the plain engine (same journal path, same
	// behavior as before); -shards N>1 fronts N engines with the router.
	var (
		engine  *mrcprm.ServiceEngine
		router  *mrcprm.ShardRouter
		run     runner
		handler http.Handler
		closed  bool // recovered-run intake state (virtual auto-resume)
		err     error
	)
	if *doRecover && *journal == "" {
		fmt.Fprintln(os.Stderr, "-recover needs -journal")
		os.Exit(2)
	}
	if *shards > 1 {
		if *maxPending > 0 {
			// Split a global bound evenly (rounding up) so N shards shed at
			// roughly the same total depth as one engine would.
			cfg.MaxPending = (*maxPending + *shards - 1) / *shards
		}
		scfg := mrcprm.ShardConfig{Base: cfg, Shards: *shards, Seed: *routeSeed, RebalanceEvery: *rebalance}
		if *doRecover {
			var info *mrcprm.ShardRecoveryInfo
			router, info, err = mrcprm.RecoverShardRouter(scfg)
			if err == nil {
				fmt.Printf("recovered  : %d shards, %d records (%d accepted, %d rejected, %d withdrawn, %d rehomed, closed=%v)\n",
					*shards, info.Records, info.Accepted, info.Rejected, info.Withdrawn, info.Rehomed, info.Closed)
				closed = info.Closed
			}
		} else {
			router, err = mrcprm.NewShardRouter(scfg)
		}
		if err == nil {
			run, handler = router, mrcprm.NewShardHandler(router)
		}
	} else {
		if *doRecover {
			var info *mrcprm.ServiceRecoveryInfo
			engine, info, err = mrcprm.RecoverServiceEngine(cfg)
			if err == nil {
				fmt.Printf("recovered  : %d records (%d accepted, %d rejected, %d fault switches, %d outages, closed=%v, torn=%dB)\n",
					info.Records, info.Accepted, info.Rejected, info.FaultSwitches, info.Outages, info.Closed, info.TornBytes)
				closed = info.Closed
			}
		} else {
			engine, err = mrcprm.NewServiceEngine(cfg)
		}
		if err == nil {
			run, handler = engine, mrcprm.NewServiceHandler(engine)
		}
	}
	if err != nil {
		// An unknown -rm name surfaces here, listing the registered policies.
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if cfg.Mode == mrcprm.ServiceWall {
		if err := run.Start(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else if *doRecover && closed {
		// A recovered virtual run whose intake was already closed is sealed:
		// finish the interrupted stream without waiting for a client to POST
		// /v1/admin/run again.
		if err := run.Start(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("recovered  : intake was closed; resuming the interrupted run")
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	httpErr := make(chan error, 1)
	go func() { httpErr <- srv.ListenAndServe() }()
	fmt.Printf("mrcpd      : %s\n", cli.Version())
	if *shards > 1 {
		fmt.Printf("listening  : %s (%s mode, %s, m=%d, %d shards)\n", *addr, *mode, *rmName, *m, *shards)
	} else {
		fmt.Printf("listening  : %s (%s mode, %s, m=%d)\n", *addr, *mode, *rmName, *m)
	}
	if cluster.Heterogeneous() || cluster.MemCapacity > 0 {
		fmt.Printf("hetero     : speeds %.3g..%.3g, mem capacity %d\n",
			cluster.MinSpeed(), cluster.MaxSpeed(), cluster.MemCapacity)
	}
	fmt.Printf("observe    : /metrics (prometheus), /v1/metrics (json + slo burn), /v1/jobs/{id}/trace; miss budget %.0f%% over %v\n",
		100**missBudget, *sloWindow)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)

	runDone := run.Done()
serve:
	for {
		select {
		case sig := <-sigs:
			fmt.Printf("signal     : %v, draining outstanding work (up to %v)\n", sig, *drainTimeout)
			run.CloseIntake()
			// A virtual-mode daemon that never received /v1/admin/run still
			// needs its loop to run the submitted work to completion.
			if err := run.Start(); err != nil && !errors.Is(err, mrcprm.ErrServiceRunning) {
				fmt.Fprintln(os.Stderr, err)
			}
			select {
			case <-run.Done():
			case <-time.After(*drainTimeout):
				fmt.Fprintln(os.Stderr, "drain timeout; aborting run")
				run.Stop()
				<-run.Done()
			case <-sigs:
				fmt.Fprintln(os.Stderr, "second signal; aborting run")
				run.Stop()
				<-run.Done()
			}
			break serve
		case <-runDone:
			// The run finished (run+close over the API); keep serving
			// queries — clients poll /v1/metrics for the outcome — and
			// exit on the next signal.
			fmt.Println("run        : finished; still serving queries (SIGTERM to exit)")
			runDone = nil
		case err := <-httpErr:
			fmt.Fprintln(os.Stderr, err)
			run.Stop()
			<-run.Done()
			os.Exit(1)
		}
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = srv.Shutdown(shutdownCtx)

	// Seal the telemetry stream before the deferred Close reports it: fold
	// the final counter/gauge/histogram state into summary events stamped
	// at the drained engine's clock, then flush. On the registry-only
	// handle the events go to a discard sink and this is a no-op.
	tel.EmitSummary(run.NowMS())
	tel.Flush()

	if engine != nil {
		metrics, runErr := engine.Result()
		if runErr != nil && !errors.Is(runErr, mrcprm.ErrServiceStopped) {
			fmt.Fprintln(os.Stderr, runErr)
			os.Exit(1)
		}
		if metrics != nil {
			fmt.Printf("jobs       : %d arrived, %d completed, %d late, %d abandoned\n",
				metrics.JobsArrived, metrics.JobsCompleted, metrics.LateJobs, metrics.JobsAbandoned)
			fmt.Printf("makespan   : %.1f s   P=%.2f%%   T=%.1f s\n",
				float64(metrics.MakespanMS)/1000, 100*metrics.P(), metrics.T())
		}
	} else {
		if runErr := router.Wait(); runErr != nil && !errors.Is(runErr, mrcprm.ErrServiceStopped) {
			fmt.Fprintln(os.Stderr, runErr)
			os.Exit(1)
		}
		snap := router.Metrics()
		fmt.Printf("jobs       : %d arrived, %d completed, %d late, %d abandoned (across %d shards)\n",
			snap.JobsArrived, snap.JobsCompleted, snap.LateJobs, snap.JobsAbandoned, *shards)
		if snap.Fingerprint != "" {
			fmt.Printf("fingerprint: %s\n", snap.Fingerprint)
		}
	}
}

// runner is the lifecycle surface shared by a single engine and the shard
// router; the serve loop drives whichever the flags built.
type runner interface {
	Start() error
	CloseIntake()
	Stop()
	Done() <-chan struct{}
	NowMS() int64
}
