// Command benchshard measures how the sharded admission front-end scales:
// it stands the scheduling service up in-process at 1, 2, ..., -shards
// shards (same total cluster, same total -maxpending budget), drives the
// SAME precomputed open-loop arrival ramp against each width over HTTP —
// loadgen's wall/stress-mode methodology: submission times never depend on
// responses and sizes are heavy-tailed — and writes the per-width results
// to -out (the committed BENCH_shard.json).
//
// The headline number per width is sustainedJobsPerSec: jobs the service
// admitted (and did not later shed) divided by the ramp duration. The ramp
// deliberately overdrives every width, so admissions are drain-limited and
// the sustained rate directly measures how fast the width's solvers clear
// pending work. loadgen's bucketed estimate (highest 1-second offered
// bucket absorbed with zero sheds and bucket p99 within -p99cap) is also
// reported as maxSustainableJobsPerSec, but on a saturated single box it
// is quantized to the offered curve and noisy between adjacent widths.
//
// The stream is generated for the SMALLEST shard's capacity (m / max
// shards), so every job is individually feasible at every width and the
// offered load is identical across configs; what changes with the shard
// count is how fast each engine's solver drains its slice of the pending
// queue, which is exactly the throughput lever sharding is supposed to
// pull.
//
// Usage:
//
//	benchshard                                  # 1, 2, 4 shards on m=12
//	benchshard -shards 4 -rate0 10 -rate1 300 -duration 12s
//	benchshard -out BENCH_shard.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"mrcprm"
	"mrcprm/internal/cli"
)

func main() {
	common := cli.New(cli.WithSeed(1))
	var (
		m          = flag.Int("m", 12, "total cluster size (partitioned across shards)")
		maxShards  = flag.Int("shards", 4, "largest shard count; widths double from 1 up to this")
		speedup    = flag.Float64("speedup", 300, "wall mode: simulated ms per wall ms")
		rate0      = flag.Float64("rate0", 10, "initial arrival rate in jobs/s")
		rate1      = flag.Float64("rate1", 300, "final arrival rate in jobs/s")
		duration   = flag.Duration("duration", 12*time.Second, "ramp duration per width")
		tailAlpha  = flag.Float64("tailalpha", 1.5, "bounded-Pareto tail index for job-size multipliers")
		maxPending = flag.Int("maxpending", 192, "TOTAL pending budget (split across shards)")
		p99Cap     = flag.Duration("p99cap", 250*time.Millisecond, "per-second p99 admission latency bound for the bucketed sustainable-rate estimate")
		out        = flag.String("out", "BENCH_shard.json", "output JSON path (- for stdout)")
	)
	common.Parse()

	plan, err := buildPlan(planConfig{
		shardM: *m / *maxShards, seed: common.Seed,
		rate0: *rate0, rate1: *rate1, duration: *duration, tailAlpha: *tailAlpha,
	})
	if err != nil {
		fatal(err)
	}

	rep := &report{
		Benchmark: "shard-scaling", M: *m, Speedup: *speedup,
		Rate0: *rate0, Rate1: *rate1, DurationSec: duration.Seconds(),
		TailAlpha: *tailAlpha, Seed: common.Seed,
		MaxPending: *maxPending, P99CapMS: float64(p99Cap.Milliseconds()),
		Submitted: len(plan.times),
	}
	for n := 1; n <= *maxShards; n *= 2 {
		cfg := widthConfig{
			shards: n, m: *m, speedup: *speedup,
			maxPending: *maxPending, p99Cap: *p99Cap,
		}
		res, err := runWidth(cfg, plan)
		if err != nil {
			fatal(fmt.Errorf("%d shards: %w", n, err))
		}
		rep.Configs = append(rep.Configs, *res)
		fmt.Printf("benchshard: shards=%d accepted=%d shed=%d rejected=%d p50=%.1fms p99=%.1fms sustained=%.1f jobs/s\n",
			n, res.Accepted, res.Shed, res.Rejected, res.LatencyP50MS, res.LatencyP99MS, res.SustainedJobsPerSec)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	// Atomic write: CI reads the committed bench JSON; a rename never
	// exposes a torn document.
	if err := cli.WriteFileAtomic(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	first, last := rep.Configs[0], rep.Configs[len(rep.Configs)-1]
	fmt.Printf("wrote %s: %d shards sustain %.1f jobs/s vs %.1f at 1 shard\n",
		*out, last.Shards, last.SustainedJobsPerSec, first.SustainedJobsPerSec)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// planConfig parameterizes the shared submission plan.
type planConfig struct {
	shardM    int
	seed      uint64
	rate0     float64
	rate1     float64
	duration  time.Duration
	tailAlpha float64
}

// plan is the precomputed open-loop stream: every width replays exactly
// these (time, spec) pairs.
type plan struct {
	times    []time.Duration
	specs    []mrcprm.JobSpec
	duration time.Duration
}

// buildPlan mirrors loadgen's stress-mode generator: an exponential
// arrival process ramping rate0 -> rate1, with sizes drawn from the
// synthetic workload (scaled for the smallest shard) under a bounded
// Pareto multiplier.
func buildPlan(cfg planConfig) (*plan, error) {
	wcfg := mrcprm.DefaultSyntheticWorkload()
	wcfg.NumResources = cfg.shardM
	// Shrink jobs relative to the offline defaults: the ramp offers tens of
	// jobs per second, so individual jobs must be small enough that the
	// cluster's speedup-scaled drain rate is in the same range — otherwise
	// every width just fills its pending budget and the comparison is noise.
	wcfg.NumMapLo, wcfg.NumMapHi = 1, 12
	wcfg.NumReduceLo, wcfg.NumReduceHi = 1, 4
	wcfg.EmaxSec = 10
	// No far-future earliest starts: a stress job parked 10^4 seconds out
	// would hold a pending slot for the whole bench without ever running.
	wcfg.P = 0
	base, err := wcfg.Generate(50, mrcprm.NewStream(cfg.seed, 0xfeed))
	if err != nil {
		return nil, err
	}
	rng := mrcprm.NewStream(cfg.seed, 0x57e55)
	durS := cfg.duration.Seconds()
	p := &plan{duration: cfg.duration}
	for t := 0.0; t < durS; {
		r := cfg.rate0 + (cfg.rate1-cfg.rate0)*t/durS
		if r < 0.1 {
			r = 0.1
		}
		t += rng.ExpFloat64() / r
		if t < durS {
			p.times = append(p.times, time.Duration(t*float64(time.Second)))
		}
	}
	sort.Slice(p.times, func(i, k int) bool { return p.times[i] < p.times[k] })
	p.specs = make([]mrcprm.JobSpec, len(p.times))
	for i := range p.specs {
		p.specs[i] = stressSpec(base[rng.IntN(len(base))], rng.Float64(), cfg.tailAlpha)
	}
	return p, nil
}

// stressSpec is loadgen's heavy-tailed scaling: the map phase grows by a
// bounded Pareto multiplier (support [1, 16]) and the deadline stretches
// proportionally so the job stays individually feasible. Unlike loadgen's
// variant, the SLA window is measured from the job's GENERATED arrival
// before rebasing to 0 — carrying the absolute deadline over would hand
// late-generated templates windows of thousands of sim-seconds, and the
// lateness-minimizing solver would happily park them that far out.
func stressSpec(template *mrcprm.Job, u, alpha float64) mrcprm.JobSpec {
	spec := mrcprm.JobSpecOf(template)
	window := spec.DeadlineMS - spec.ArrivalMS
	spec.ArrivalMS = 0 // the wall-mode service restamps at receipt
	spec.EarliestStartMS = 0
	mult := math.Pow(1-u*(1-math.Pow(1.0/16, alpha)), -1/alpha)
	n := int(math.Ceil(float64(len(spec.MapExecMS)) * mult))
	if n > 24 {
		n = 24
	}
	maps := make([]int64, n)
	for i := range maps {
		maps[i] = spec.MapExecMS[i%len(spec.MapExecMS)]
	}
	spec.MapExecMS = maps
	spec.DeadlineMS = int64(float64(window) * mult)
	return spec
}

// widthConfig parameterizes one shard-count run.
type widthConfig struct {
	shards     int
	m          int
	speedup    float64
	maxPending int
	p99Cap     time.Duration
}

// widthReport is one width's entry in the bench JSON.
type widthReport struct {
	Shards   int `json:"shards"`
	Accepted int `json:"accepted"`
	Shed     int `json:"shed"`
	Rejected int `json:"rejected"`
	Errors   int `json:"errors"`

	LatencyP50MS float64 `json:"latencyP50Ms"`
	LatencyP90MS float64 `json:"latencyP90Ms"`
	LatencyP99MS float64 `json:"latencyP99Ms"`

	// SustainedJobsPerSec is admitted jobs over the ramp duration — the
	// drain-limited throughput this width actually achieved under an
	// overdriven offered load. This is the headline scaling metric.
	SustainedJobsPerSec float64 `json:"sustainedJobsPerSec"`

	// MaxSustainableJobsPerSec is the highest 1-second offered rate this
	// width absorbed with zero sheds and bucket p99 within the cap
	// (loadgen's bucketed estimate; noisy on a saturated single box).
	MaxSustainableJobsPerSec float64 `json:"maxSustainableJobsPerSec"`
}

// report is the committed BENCH_shard.json shape.
type report struct {
	Benchmark   string  `json:"benchmark"`
	M           int     `json:"m"`
	Speedup     float64 `json:"speedup"`
	Rate0       float64 `json:"rate0JobsPerSec"`
	Rate1       float64 `json:"rate1JobsPerSec"`
	DurationSec float64 `json:"durationSec"`
	TailAlpha   float64 `json:"tailAlpha"`
	Seed        uint64  `json:"seed"`
	MaxPending  int     `json:"maxPending"`
	P99CapMS    float64 `json:"p99CapMs"`
	Submitted   int     `json:"submitted"`

	Configs []widthReport `json:"configs"`
}

// sample is one submission's outcome.
type sample struct {
	at      time.Duration
	latency time.Duration
	status  int
	err     bool
}

// runWidth stands up the service at one shard count, replays the plan over
// HTTP, and folds the outcomes into a width report.
func runWidth(cfg widthConfig, p *plan) (*widthReport, error) {
	scfg := mrcprm.ServiceConfig{
		Cluster:    mrcprm.Cluster{NumResources: cfg.m, MapSlots: 2, ReduceSlots: 2},
		Manager:    mrcprm.DefaultConfig(),
		Mode:       mrcprm.ServiceWall,
		Speedup:    cfg.speedup,
		Admission:  true,
		MaxPending: (cfg.maxPending + cfg.shards - 1) / cfg.shards,
	}
	scfg.Manager.Workers = 1

	var (
		run interface {
			Start() error
			Stop()
			Done() <-chan struct{}
		}
		handler http.Handler
	)
	if cfg.shards > 1 {
		router, err := mrcprm.NewShardRouter(mrcprm.ShardConfig{Base: scfg, Shards: cfg.shards, Seed: 1})
		if err != nil {
			return nil, err
		}
		run, handler = router, mrcprm.NewShardHandler(router)
	} else {
		engine, err := mrcprm.NewServiceEngine(scfg)
		if err != nil {
			return nil, err
		}
		run, handler = engine, mrcprm.NewServiceHandler(engine)
	}
	if err := run.Start(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: handler}
	go func() { _ = srv.Serve(ln) }()
	addr := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 10 * time.Second}

	samples := make([]sample, len(p.times))
	var wg sync.WaitGroup
	start := time.Now()
	for i, due := range p.times {
		if wait := due - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		wg.Add(1)
		go func(i int, due time.Duration) {
			defer wg.Done()
			t0 := time.Now()
			status, err := postJSON(client, addr+"/v1/jobs", p.specs[i])
			samples[i] = sample{at: due, latency: time.Since(t0), status: status, err: err != nil}
		}(i, due)
	}
	wg.Wait()
	_ = srv.Close()
	// Abort outstanding work: the bench measures the admission path, not
	// the drain.
	run.Stop()
	<-run.Done()

	return analyze(cfg, p, samples), nil
}

// analyze folds one width's samples into its report entry.
func analyze(cfg widthConfig, p *plan, samples []sample) *widthReport {
	rep := &widthReport{Shards: cfg.shards}
	var lats []time.Duration
	nBuckets := int(p.duration.Seconds()) + 1
	type bucket struct {
		offered, shed int
		lats          []time.Duration
	}
	buckets := make([]bucket, nBuckets)
	for _, s := range samples {
		b := int(s.at.Seconds())
		if b >= nBuckets {
			b = nBuckets - 1
		}
		buckets[b].offered++
		switch {
		case s.err:
			rep.Errors++
			continue
		case s.status == http.StatusAccepted:
			rep.Accepted++
		case s.status == http.StatusUnprocessableEntity:
			rep.Rejected++
		case s.status == http.StatusTooManyRequests:
			rep.Shed++
			buckets[b].shed++
		default:
			rep.Errors++
			continue
		}
		lats = append(lats, s.latency)
		buckets[b].lats = append(buckets[b].lats, s.latency)
	}
	sort.Slice(lats, func(i, k int) bool { return lats[i] < lats[k] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	if len(lats) > 0 {
		rep.LatencyP50MS = ms(percentile(lats, 0.50))
		rep.LatencyP90MS = ms(percentile(lats, 0.90))
		rep.LatencyP99MS = ms(percentile(lats, 0.99))
	}
	for _, b := range buckets {
		if b.offered == 0 {
			continue
		}
		sort.Slice(b.lats, func(x, y int) bool { return b.lats[x] < b.lats[y] })
		p99 := time.Duration(0)
		if len(b.lats) > 0 {
			p99 = percentile(b.lats, 0.99)
		}
		if b.shed == 0 && p99 <= cfg.p99Cap && float64(b.offered) > rep.MaxSustainableJobsPerSec {
			rep.MaxSustainableJobsPerSec = float64(b.offered)
		}
	}
	rep.SustainedJobsPerSec = float64(rep.Accepted) / p.duration.Seconds()
	return rep
}

// percentile returns the q-quantile of sorted durations (nearest rank).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func postJSON(client *http.Client, url string, body any) (int, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0, err
	}
	resp.Body.Close()
	return resp.StatusCode, nil
}
