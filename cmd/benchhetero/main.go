// Command benchhetero measures what speed-aware planning buys on a
// heterogeneous cluster, and writes a machine-readable report
// (BENCH_hetero.json at the repository root is a committed snapshot).
//
// The grid is speed spread x arrival rate: at each cell the identical
// Table 3 workload runs under MRCP-RM twice on the same two-class cluster
// (first half of the machines at speed 1.0, second half at 1/spread).
// The speed-aware configuration plans with per-(task,resource) durations;
// the speed-blind one plans as if every machine ran at full speed and
// discovers the slowdown only when tasks overrun in the simulator. Both
// use pinned deterministic solver settings and the same workload seed, so
// the report is a pure function of the flags: late-job counts and run
// fingerprints are byte-stable across hosts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mrcprm/internal/cli"
	"mrcprm/internal/core"
	"mrcprm/internal/sim"
	"mrcprm/internal/stats"
	"mrcprm/internal/workload"
)

type cell struct {
	Spread           float64 `json:"spread"`
	Lambda           float64 `json:"lambda"`
	AwareLate        int     `json:"aware_late"`
	BlindLate        int     `json:"blind_late"`
	AwareT           float64 `json:"aware_t_s"`
	BlindT           float64 `json:"blind_t_s"`
	AwareFingerprint string  `json:"aware_fingerprint"`
	BlindFingerprint string  `json:"blind_fingerprint"`
}

type report struct {
	GeneratedBy string    `json:"generated_by"`
	Seed        uint64    `json:"seed"`
	Jobs        int       `json:"jobs"`
	Resources   int       `json:"resources"`
	Spreads     []float64 `json:"spreads"`
	Lambdas     []float64 `json:"lambdas"`
	Cells       []cell    `json:"cells"`
}

func main() {
	common := cli.New(cli.WithSeed(1))
	var (
		out     = flag.String("out", "BENCH_hetero.json", "output file (- for stdout)")
		jobs    = flag.Int("jobs", 120, "jobs per run")
		m       = flag.Int("m", 20, "number of resources")
		spreads = flag.String("spreads", "1,2,4", "comma-separated speed spreads")
		lambdas = flag.String("lambdas", "0.01,0.02", "comma-separated arrival rates (jobs/s)")
	)
	common.Parse()
	defer common.Close()

	rep := report{
		GeneratedBy: "cmd/benchhetero",
		Seed:        common.Seed,
		Jobs:        *jobs,
		Resources:   *m,
		Spreads:     parseFloats(*spreads),
		Lambdas:     parseFloats(*lambdas),
	}

	for _, spread := range rep.Spreads {
		for _, lambda := range rep.Lambdas {
			c := cell{Spread: spread, Lambda: lambda}
			aware := runOne(common.Seed, *jobs, *m, spread, lambda, false)
			blind := runOne(common.Seed, *jobs, *m, spread, lambda, true)
			c.AwareLate, c.BlindLate = aware.N(), blind.N()
			c.AwareT, c.BlindT = aware.T(), blind.T()
			c.AwareFingerprint = fmt.Sprintf("%016x", aware.Fingerprint())
			c.BlindFingerprint = fmt.Sprintf("%016x", blind.Fingerprint())
			rep.Cells = append(rep.Cells, c)
			fmt.Printf("spread=%g lambda=%g  aware late=%d T=%.1fs | blind late=%d T=%.1fs\n",
				spread, lambda, c.AwareLate, c.AwareT, c.BlindLate, c.BlindT)
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := cli.WriteFileAtomic(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchhetero: wrote %s\n", *out)
}

// runOne plays one (spread, lambda) cell under pinned deterministic solver
// settings and returns the run metrics.
func runOne(seed uint64, jobs, m int, spread, lambda float64, blind bool) *sim.Metrics {
	// Table 3 shape scaled down (fewer tasks per job, shorter tasks, a
	// tighter deadline multiplier) so a full grid finishes in CI time and
	// deadlines are contested rather than uniformly loose — the regime
	// where planning with the wrong durations actually costs late jobs.
	wcfg := workload.DefaultSynthetic()
	wcfg.NumResources = m
	wcfg.NumMapHi = 20
	wcfg.NumReduceHi = 10
	wcfg.EmaxSec = 30
	wcfg.DeadlineUL = 2
	wcfg.Lambda = lambda
	jl, err := wcfg.Generate(jobs, stats.NewStream(seed, 0xbe7e))
	if err != nil {
		fatal(err)
	}
	cluster, err := core.TwoClassSpec(m, wcfg.MapSlotsPerResource,
		wcfg.ReduceSlotsPerResource, spread).Cluster()
	if err != nil {
		fatal(err)
	}
	cfg := core.DeterministicConfig()
	cfg.SpeedBlind = blind
	s, err := sim.New(cluster, core.New(cluster, cfg), jl)
	if err != nil {
		fatal(err)
	}
	metrics, err := s.Run()
	if err != nil {
		fatal(err)
	}
	return metrics
}

func parseFloats(s string) []float64 {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v <= 0 {
			fatal(fmt.Errorf("bad list entry %q", f))
		}
		out = append(out, v)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchhetero:", err)
	os.Exit(1)
}
