// Quickstart: generate a small Table 3 synthetic workload, run it through
// MRCP-RM on a simulated cluster, and print the paper's performance
// metrics (N, P, T, O).
package main

import (
	"fmt"
	"log"

	"mrcprm"
)

func main() {
	// The Table 3 workload at its default factors, scaled down to 100 jobs.
	wl := mrcprm.DefaultSyntheticWorkload()
	jobs, err := wl.Generate(100, mrcprm.NewStream(2026, 7))
	if err != nil {
		log.Fatal(err)
	}

	// The system component: m resources with per-resource map and reduce
	// task capacities (slots).
	cluster := mrcprm.Cluster{
		NumResources: wl.NumResources,
		MapSlots:     wl.MapSlotsPerResource,
		ReduceSlots:  wl.ReduceSlotsPerResource,
	}

	// MRCP-RM with the paper's configuration: combined-resource CP solve,
	// gap-based matchmaking, EDF ordering, far-future job deferral.
	manager := mrcprm.NewManager(cluster, mrcprm.DefaultConfig())

	metrics, err := mrcprm.Simulate(cluster, manager, jobs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("jobs completed      : %d\n", metrics.JobsCompleted)
	fmt.Printf("late jobs (N)       : %d\n", metrics.N())
	fmt.Printf("proportion late (P) : %.2f%%\n", 100*metrics.P())
	fmt.Printf("avg turnaround (T)  : %.1f s\n", metrics.T())
	fmt.Printf("avg sched time (O)  : %.4f s/job\n", metrics.O())

	st := manager.Stats()
	fmt.Printf("solver rounds       : %d (%d search nodes)\n", st.Rounds, st.SolverNodes)
	fmt.Printf("deferred AR jobs    : %d\n", st.Deferred)
}
