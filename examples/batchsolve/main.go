// Batch solve: the closed-system scenario of the authors' preliminary
// work — a fixed set of MapReduce jobs with SLAs, known ahead of time, is
// mapped and scheduled in a single CP solve that minimizes the number of
// late jobs. The example also shows the solver proving that one late job
// is unavoidable when the deadlines are tightened.
package main

import (
	"fmt"
	"log"

	"mrcprm"
)

func job(id int, earliest, deadline int64, mapSecs, redSecs []int64) *mrcprm.Job {
	j := &mrcprm.Job{
		ID:            id,
		Arrival:       earliest * 1000,
		EarliestStart: earliest * 1000,
		Deadline:      deadline * 1000,
	}
	for i, s := range mapSecs {
		j.MapTasks = append(j.MapTasks, &mrcprm.Task{
			ID: fmt.Sprintf("t%d_m%d", id, i+1), JobID: id,
			Type: mrcprm.MapTask, Exec: s * 1000, Req: 1})
	}
	for i, s := range redSecs {
		j.ReduceTasks = append(j.ReduceTasks, &mrcprm.Task{
			ID: fmt.Sprintf("t%d_r%d", id, i+1), JobID: id,
			Type: mrcprm.ReduceTask, Exec: s * 1000, Req: 1})
	}
	return j
}

func solveAndPrint(cluster mrcprm.Cluster, jobs []*mrcprm.Job, what string) {
	sched, err := mrcprm.SolveBatch(cluster, jobs, mrcprm.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	status := ""
	if sched.Optimal {
		status = " (proved optimal)"
	}
	fmt.Printf("%s: %d late job(s)%s, solved in %v over %d nodes\n",
		what, len(sched.LateJobs), status, sched.SolveTime.Round(1e5), sched.Nodes)
	for _, a := range sched.Assignments {
		fmt.Printf("  %-8s %-6s on r%d  [%6.1fs, %6.1fs)\n",
			a.Task.ID, a.Task.Type, a.Resource,
			float64(a.Start)/1000, float64(a.End())/1000)
	}
	if len(sched.LateJobs) > 0 {
		fmt.Printf("  late: jobs %v\n", sched.LateJobs)
	}
	fmt.Println()
}

func main() {
	cluster := mrcprm.Cluster{NumResources: 2, MapSlots: 1, ReduceSlots: 1}

	// Three jobs with comfortable deadlines: everything fits on time.
	jobs := []*mrcprm.Job{
		job(0, 0, 120, []int64{20, 25}, []int64{15}),
		job(1, 10, 100, []int64{30}, []int64{10}),
		job(2, 0, 60, []int64{15, 15}, nil),
	}
	solveAndPrint(cluster, jobs, "comfortable deadlines")

	// Tighten job 0 and job 1 so that they contend for the same window:
	// the CP objective picks the schedule that sacrifices only one job.
	tight := []*mrcprm.Job{
		job(0, 0, 50, []int64{20, 25}, []int64{15}),
		job(1, 0, 45, []int64{30}, []int64{10}),
		job(2, 0, 60, []int64{15, 15}, nil),
	}
	solveAndPrint(cluster, tight, "tight deadlines")
}
