// Facebook comparison: a scaled-down run of the paper's Figs 2 and 3 —
// MRCP-RM versus the MinEDF-WC baseline on the Table 4 workload derived
// from the October 2009 Facebook traces.
//
// The full-fidelity sweep (1000 jobs, replicated, all five arrival rates)
// is available via `go run ./cmd/experiments -fig 2 -fbjobs 1000`.
package main

import (
	"fmt"
	"log"

	"mrcprm"
)

func main() {
	const jobs = 300
	lambda := 0.0005 // the highest arrival rate the paper compares

	wl := mrcprm.DefaultFacebookWorkload()
	wl.NumJobs = jobs
	wl.Lambda = lambda
	cluster := mrcprm.Cluster{NumResources: wl.NumResources, MapSlots: 1, ReduceSlots: 1}

	fmt.Printf("Facebook workload: %d jobs, lambda=%g jobs/s, %d resources\n\n",
		jobs, lambda, wl.NumResources)
	fmt.Printf("%-10s %8s %8s %10s %12s\n", "manager", "N", "P", "T (s)", "O (s/job)")

	for _, name := range []string{"MRCP-RM", "MinEDF-WC"} {
		// Identical workload for both managers: same seed.
		jl, err := wl.Generate(mrcprm.NewStream(42, 1))
		if err != nil {
			log.Fatal(err)
		}
		var rm mrcprm.ResourceManager
		if name == "MRCP-RM" {
			rm = mrcprm.NewManager(cluster, mrcprm.DefaultConfig())
		} else {
			rm = mrcprm.NewMinEDF(cluster)
		}
		m, err := mrcprm.Simulate(cluster, rm, jl)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %8d %7.2f%% %10.1f %12.4f\n", name, m.N(), 100*m.P(), m.T(), m.O())
	}

	fmt.Println("\nThe paper reports MRCP-RM cutting the proportion of late jobs by")
	fmt.Println("70-93% versus MinEDF-WC across arrival rates 0.0001-0.0005 jobs/s,")
	fmt.Println("with up to ~7% lower average turnaround. Single runs at this scale")
	fmt.Println("are noisy; see cmd/experiments for the replicated sweep.")
}
