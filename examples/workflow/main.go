// Workflow example: the paper's future-work generalization — scheduling
// workflows with user-specified precedence relationships (arbitrary DAGs)
// under end-to-end SLAs.
//
// The scenario is a nightly ETL pipeline: an extract stage fans out into
// four parallel transforms, a join waits for all of them, and two loads
// publish the result. A second, tighter ad-hoc report workflow competes
// for the same cluster; the CP objective decides who yields.
package main

import (
	"fmt"
	"log"

	"mrcprm"
)

func main() {
	cluster := mrcprm.Cluster{NumResources: 2, MapSlots: 2, ReduceSlots: 1}

	// Workflow 0: the ETL pipeline (times in ms).
	etl := mrcprm.NewWorkflow(0, 0, 300_000)
	extract := etl.AddTask("extract", mrcprm.MapTask, 30_000)
	var transforms []*mrcprm.WorkflowTask
	for i := 0; i < 4; i++ {
		tr := etl.AddTask(fmt.Sprintf("transform%d", i+1), mrcprm.MapTask, 60_000)
		if err := etl.AddDep(extract, tr); err != nil {
			log.Fatal(err)
		}
		transforms = append(transforms, tr)
	}
	join := etl.AddTask("join", mrcprm.ReduceTask, 40_000)
	for _, tr := range transforms {
		if err := etl.AddDep(tr, join); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		load := etl.AddTask(fmt.Sprintf("load%d", i+1), mrcprm.ReduceTask, 20_000)
		if err := etl.AddDep(join, load); err != nil {
			log.Fatal(err)
		}
	}

	// Workflow 1: a small ad-hoc report with a tight deadline, arriving as
	// an advance reservation 20s out.
	report := mrcprm.NewWorkflow(1, 20_000, 150_000)
	fetch := report.AddTask("fetch", mrcprm.MapTask, 25_000)
	crunch := report.AddTask("crunch", mrcprm.MapTask, 45_000)
	render := report.AddTask("render", mrcprm.ReduceTask, 15_000)
	if err := report.Chain(fetch, crunch, render); err != nil {
		log.Fatal(err)
	}

	for _, w := range []*mrcprm.Workflow{etl, report} {
		fmt.Printf("workflow %d: %d tasks, critical path %.0fs, deadline %.0fs\n",
			w.ID, len(w.Tasks), float64(w.CriticalPath())/1000, float64(w.Deadline)/1000)
	}

	sched, err := mrcprm.SolveWorkflows(cluster, []*mrcprm.Workflow{etl, report}, mrcprm.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nschedule (%d late, solved in %v over %d nodes):\n",
		len(sched.LateWorkflows), sched.SolveTime.Round(1e5), sched.Nodes)
	fmt.Printf("%-4s %-12s %-6s %-4s %10s %10s\n", "wf", "task", "pool", "res", "start(s)", "end(s)")
	for _, a := range sched.Assignments {
		fmt.Printf("%-4d %-12s %-6s r%-3d %10.1f %10.1f\n",
			a.Workflow.ID, a.Task.ID, a.Task.Pool, a.Resource,
			float64(a.Start)/1000, float64(a.End())/1000)
	}
	if len(sched.LateWorkflows) > 0 {
		fmt.Printf("late workflows: %v\n", sched.LateWorkflows)
	} else {
		fmt.Println("both workflows meet their end-to-end deadlines.")
	}

	// Workflows also run through the open system: converted to
	// precedence-carrying jobs, they arrive as a stream and MRCP-RM
	// re-plans on every arrival exactly as it does for MapReduce jobs.
	etlJob, err := etl.ToJob(0)
	if err != nil {
		log.Fatal(err)
	}
	reportJob, err := report.ToJob(10_000) // arrives 10s in, reserved for 20s
	if err != nil {
		log.Fatal(err)
	}
	manager := mrcprm.NewManager(cluster, mrcprm.DefaultConfig())
	metrics, err := mrcprm.Simulate(cluster, manager, []*mrcprm.Job{etlJob, reportJob})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nopen-system run: %d workflows completed, %d late, T=%.1fs, %d solver rounds\n",
		metrics.JobsCompleted, metrics.N(), metrics.T(), manager.Stats().Rounds)
}
