// Advance reservations: jobs whose SLA carries an earliest start time s_j
// strictly after their arrival — the AR requests that distinguish this
// paper's SLAs from plain deadline scheduling.
//
// The example submits a mix of immediate and future-start jobs, shows that
// MRCP-RM starts every AR job exactly at (or after) its reserved time, and
// demonstrates the Section V.E optimization: far-future jobs are parked
// and only enter matchmaking when their start time approaches, keeping the
// CP models small.
package main

import (
	"fmt"
	"log"
	"time"

	"mrcprm"
)

func makeJob(id int, arrival, earliest, deadline int64, mapSecs []int64) *mrcprm.Job {
	j := &mrcprm.Job{
		ID:            id,
		Arrival:       arrival * 1000,
		EarliestStart: earliest * 1000,
		Deadline:      deadline * 1000,
	}
	for i, sec := range mapSecs {
		j.MapTasks = append(j.MapTasks, &mrcprm.Task{
			ID:    fmt.Sprintf("t%d_m%d", id, i+1),
			JobID: id, Type: mrcprm.MapTask, Exec: sec * 1000, Req: 1,
		})
	}
	return j
}

func main() {
	cluster := mrcprm.Cluster{NumResources: 2, MapSlots: 1, ReduceSlots: 1}

	jobs := []*mrcprm.Job{
		// Immediate job: runs right away.
		makeJob(0, 0, 0, 600, []int64{30, 30}),
		// Advance reservation 10 minutes out: deferred on arrival.
		makeJob(1, 5, 600, 1200, []int64{60}),
		// Advance reservation 2 hours out: deferred much longer.
		makeJob(2, 10, 7200, 9000, []int64{120, 120}),
		// Another immediate job that must coexist with the reservations.
		makeJob(3, 20, 20, 900, []int64{45, 45}),
	}

	cfg := mrcprm.DefaultConfig()
	cfg.DeferralLead = 60 * time.Second // schedule AR jobs 60s before s_j

	manager := mrcprm.NewManager(cluster, cfg)
	metrics, err := mrcprm.Simulate(cluster, manager, jobs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%4s %10s %12s %12s %12s %6s\n",
		"job", "arrival", "reserved s_j", "completed", "deadline", "late")
	for _, rec := range metrics.Records {
		late := "no"
		if rec.Late() {
			late = "YES"
		}
		fmt.Printf("%4d %9.0fs %11.0fs %11.1fs %11.0fs %6s\n",
			rec.Job.ID,
			float64(rec.Job.Arrival)/1000,
			float64(rec.Job.EarliestStart)/1000,
			float64(rec.Completion)/1000,
			float64(rec.Job.Deadline)/1000,
			late)
	}

	st := manager.Stats()
	fmt.Printf("\n%d of %d jobs were deferred on arrival (Section V.E):\n",
		st.Deferred, len(jobs))
	fmt.Println("they entered matchmaking only when their reserved start approached,")
	fmt.Printf("so each CP solve stayed small (%d scheduling rounds total).\n", st.Rounds)
}
