package workflow

import (
	"strings"
	"testing"
	"testing/quick"

	"mrcprm/internal/core"
	"mrcprm/internal/sim"
	"mrcprm/internal/stats"
	"mrcprm/internal/workload"
)

func cfg() core.Config {
	c := core.DefaultConfig()
	c.SolveTimeLimit = 0
	c.NodeLimit = 20_000
	return c
}

func oneCluster() sim.Cluster { return sim.Cluster{NumResources: 1, MapSlots: 1, ReduceSlots: 1} }

func TestChainSchedulesSequentially(t *testing.T) {
	w := New(0, 0, 100_000)
	a := w.AddTask("a", workload.MapTask, 10_000)
	b := w.AddTask("b", workload.MapTask, 20_000)
	c := w.AddTask("c", workload.ReduceTask, 5_000)
	if err := w.Chain(a, b, c); err != nil {
		t.Fatal(err)
	}
	cluster := sim.Cluster{NumResources: 4, MapSlots: 2, ReduceSlots: 2}
	sched, err := Solve(cluster, []*Workflow{w}, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(cluster); err != nil {
		t.Fatal(err)
	}
	starts := map[string]int64{}
	for _, asg := range sched.Assignments {
		starts[asg.Task.ID] = asg.Start
	}
	if starts["a"] != 0 || starts["b"] != 10_000 || starts["c"] != 30_000 {
		t.Fatalf("starts %v", starts)
	}
	if len(sched.LateWorkflows) != 0 {
		t.Fatal("late despite generous deadline")
	}
}

func TestDiamondRespectsJoin(t *testing.T) {
	w := New(0, 0, 1_000_000)
	src := w.AddTask("src", workload.MapTask, 5_000)
	l := w.AddTask("left", workload.MapTask, 20_000)
	r := w.AddTask("right", workload.MapTask, 30_000)
	join := w.AddTask("join", workload.ReduceTask, 10_000)
	for _, dep := range []struct{ p, s *Task }{{src, l}, {src, r}, {l, join}, {r, join}} {
		if err := w.AddDep(dep.p, dep.s); err != nil {
			t.Fatal(err)
		}
	}
	cluster := sim.Cluster{NumResources: 2, MapSlots: 1, ReduceSlots: 1}
	sched, err := Solve(cluster, []*Workflow{w}, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(cluster); err != nil {
		t.Fatal(err)
	}
	var joinStart int64
	for _, a := range sched.Assignments {
		if a.Task == join {
			joinStart = a.Start
		}
	}
	// src [0,5k), left/right in parallel, right ends 35k: join at 35k.
	if joinStart != 35_000 {
		t.Fatalf("join starts at %d, want 35000", joinStart)
	}
}

func TestCycleRejected(t *testing.T) {
	w := New(0, 0, 1000)
	a := w.AddTask("a", workload.MapTask, 10)
	b := w.AddTask("b", workload.MapTask, 10)
	if err := w.AddDep(a, b); err != nil {
		t.Fatal(err)
	}
	if err := w.AddDep(b, a); err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle not rejected: %v", err)
	}
}

func TestValidateCatchesBadWorkflows(t *testing.T) {
	w := New(0, 0, 1000)
	if err := w.Validate(); err == nil {
		t.Fatal("empty workflow accepted")
	}
	w.AddTask("a", workload.MapTask, 0)
	if err := w.Validate(); err == nil {
		t.Fatal("zero execution time accepted")
	}
	w2 := New(1, 0, 1000)
	w2.AddTask("x", workload.MapTask, 10)
	w2.AddTask("x", workload.MapTask, 10)
	if err := w2.Validate(); err == nil {
		t.Fatal("duplicate ids accepted")
	}
	w3 := New(2, 500, 100)
	w3.AddTask("a", workload.MapTask, 10)
	if err := w3.Validate(); err == nil {
		t.Fatal("deadline before earliest start accepted")
	}
	w4 := New(3, 0, 1000)
	a := w4.AddTask("a", workload.MapTask, 10)
	if err := w4.AddDep(a, a); err == nil {
		t.Fatal("self-dependency accepted")
	}
	w5 := New(4, 0, 1000)
	b := w5.AddTask("b", workload.MapTask, 10)
	if err := w4.AddDep(a, b); err == nil {
		t.Fatal("cross-workflow dependency accepted")
	}
}

func TestCriticalPathAndSinks(t *testing.T) {
	w := New(0, 0, 1_000_000)
	a := w.AddTask("a", workload.MapTask, 10)
	b := w.AddTask("b", workload.MapTask, 20)
	c := w.AddTask("c", workload.MapTask, 5)
	if err := w.AddDep(a, b); err != nil {
		t.Fatal(err)
	}
	if err := w.AddDep(a, c); err != nil {
		t.Fatal(err)
	}
	if got := w.CriticalPath(); got != 30 {
		t.Fatalf("critical path %d, want 30 (a->b)", got)
	}
	sinks := w.Sinks()
	if len(sinks) != 2 {
		t.Fatalf("%d sinks, want 2", len(sinks))
	}
	if got := w.TotalWork(); got != 35 {
		t.Fatalf("total work %d", got)
	}
}

func TestLatenessObjectiveAcrossWorkflows(t *testing.T) {
	// Two single-task workflows contend for one map slot; only one can
	// meet its deadline. The solver must sacrifice exactly one.
	mk := func(id int, deadline int64) *Workflow {
		w := New(id, 0, deadline)
		w.AddTask("t", workload.MapTask, 10_000)
		return w
	}
	sched, err := Solve(oneCluster(), []*Workflow{mk(0, 12_000), mk(1, 12_000)}, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.LateWorkflows) != 1 {
		t.Fatalf("late workflows %v, want one", sched.LateWorkflows)
	}
	if !sched.Optimal {
		t.Fatal("one-late should be proved optimal")
	}
}

func TestEarliestStartRespected(t *testing.T) {
	w := New(0, 50_000, 200_000)
	w.AddTask("t", workload.MapTask, 10_000)
	sched, err := Solve(oneCluster(), []*Workflow{w}, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if sched.Assignments[0].Start != 50_000 {
		t.Fatalf("start %d, want 50000", sched.Assignments[0].Start)
	}
}

// The MapReduce conversion must agree with core.SolveBatch on the same job.
func TestFromMapReduceJobEquivalence(t *testing.T) {
	gen := workload.DefaultSynthetic()
	gen.NumResources = 4
	gen.NumMapHi = 8
	gen.NumReduceHi = 4
	jobs, err := gen.Generate(4, stats.NewStream(61, 62))
	if err != nil {
		t.Fatal(err)
	}
	cluster := sim.Cluster{NumResources: 4, MapSlots: 2, ReduceSlots: 2}
	batch, err := core.SolveBatch(cluster, jobs, cfg())
	if err != nil {
		t.Fatal(err)
	}
	var wfs []*Workflow
	for _, j := range jobs {
		wf := FromMapReduceJob(j)
		if err := wf.Validate(); err != nil {
			t.Fatal(err)
		}
		wfs = append(wfs, wf)
	}
	sched, err := Solve(cluster, wfs, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(cluster); err != nil {
		t.Fatal(err)
	}
	if len(sched.LateWorkflows) != len(batch.LateJobs) {
		t.Fatalf("late count differs: workflow %v vs mapreduce %v",
			sched.LateWorkflows, batch.LateJobs)
	}
}

// Property: random DAGs solve to schedules that validate, and every sink
// of an on-time workflow completes by the deadline.
func TestQuickRandomDAGsValidate(t *testing.T) {
	rng := stats.NewStream(71, 72)
	f := func(seed uint16) bool {
		local := rng.Derive(uint64(seed))
		nWf := 1 + local.IntN(3)
		var wfs []*Workflow
		for id := 0; id < nWf; id++ {
			w := New(id, int64(local.IntN(1000)), 0)
			n := 2 + local.IntN(6)
			for i := 0; i < n; i++ {
				pool := workload.MapTask
				if local.IntN(2) == 1 {
					pool = workload.ReduceTask
				}
				w.AddTask(taskName(i), pool, int64(100+local.IntN(5000)))
			}
			// Random forward edges keep the graph acyclic.
			for i := 0; i < n; i++ {
				for k := i + 1; k < n; k++ {
					if local.IntN(3) == 0 {
						if err := w.AddDep(w.Tasks[i], w.Tasks[k]); err != nil {
							return false
						}
					}
				}
			}
			w.Deadline = w.EarliestStart + w.CriticalPath()*int64(1+local.IntN(3))
			if w.Validate() != nil {
				return false
			}
			wfs = append(wfs, w)
		}
		cluster := sim.Cluster{NumResources: 1 + local.IntN(3), MapSlots: 1 + int64(local.IntN(2)), ReduceSlots: 1 + int64(local.IntN(2))}
		sched, err := Solve(cluster, wfs, cfg())
		if err != nil {
			return false
		}
		return sched.Validate(cluster) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func taskName(i int) string { return string(rune('a' + i)) }
