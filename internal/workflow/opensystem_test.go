package workflow

import (
	"testing"

	"mrcprm/internal/core"
	"mrcprm/internal/sim"
	"mrcprm/internal/stats"
	"mrcprm/internal/workload"
)

// Open-system workflow scheduling: workflows converted to precedence jobs
// flow through the simulator under MRCP-RM like any other arrival; the
// simulator independently enforces every task-level precedence edge.

func runOpen(t *testing.T, cluster sim.Cluster, jobs []*workload.Job) *sim.Metrics {
	t.Helper()
	mgr := core.New(cluster, cfg())
	s, err := sim.New(cluster, mgr, jobs)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.JobsCompleted != len(jobs) {
		t.Fatalf("completed %d of %d", m.JobsCompleted, len(jobs))
	}
	return m
}

func TestToJobConversion(t *testing.T) {
	w := New(3, 1000, 500_000)
	a := w.AddTask("a", workload.MapTask, 10_000)
	b := w.AddTask("b", workload.ReduceTask, 5_000)
	if err := w.AddDep(a, b); err != nil {
		t.Fatal(err)
	}
	j, err := w.ToJob(500)
	if err != nil {
		t.Fatal(err)
	}
	if !j.TaskPrecedence || j.ID != 3 || j.Arrival != 500 || j.EarliestStart != 1000 {
		t.Fatalf("job %+v", j)
	}
	if len(j.MapTasks) != 1 || len(j.ReduceTasks) != 1 {
		t.Fatalf("pools %d/%d", len(j.MapTasks), len(j.ReduceTasks))
	}
	if len(j.ReduceTasks[0].Preds) != 1 || j.ReduceTasks[0].Preds[0] != j.MapTasks[0] {
		t.Fatal("precedence not converted")
	}
}

func TestToJobRejectsReduceOnly(t *testing.T) {
	w := New(0, 0, 1000)
	w.AddTask("r", workload.ReduceTask, 100)
	if _, err := w.ToJob(0); err == nil {
		t.Fatal("reduce-only workflow accepted as open-system job")
	}
}

func TestOpenSystemChainWorkflow(t *testing.T) {
	w := New(0, 0, 300_000)
	a := w.AddTask("a", workload.MapTask, 10_000)
	b := w.AddTask("b", workload.MapTask, 20_000)
	c := w.AddTask("c", workload.ReduceTask, 5_000)
	if err := w.Chain(a, b, c); err != nil {
		t.Fatal(err)
	}
	j, err := w.ToJob(0)
	if err != nil {
		t.Fatal(err)
	}
	cluster := sim.Cluster{NumResources: 4, MapSlots: 2, ReduceSlots: 2}
	m := runOpen(t, cluster, []*workload.Job{j})
	// Chain: 10 + 20 + 5 seconds.
	if m.MakespanMS != 35_000 {
		t.Fatalf("makespan %d, want 35000", m.MakespanMS)
	}
	if m.LateJobs != 0 {
		t.Fatal("late")
	}
}

func TestOpenSystemDiamondUnderContention(t *testing.T) {
	// Two diamond workflows arriving 5s apart on a small cluster.
	mkDiamond := func(id int, arrival int64) *workload.Job {
		w := New(id, arrival, arrival+400_000)
		src := w.AddTask("src", workload.MapTask, 5_000)
		l := w.AddTask("l", workload.MapTask, 20_000)
		r := w.AddTask("r", workload.MapTask, 30_000)
		join := w.AddTask("join", workload.ReduceTask, 10_000)
		for _, d := range []struct{ p, s *Task }{{src, l}, {src, r}, {l, join}, {r, join}} {
			if err := w.AddDep(d.p, d.s); err != nil {
				t.Fatal(err)
			}
		}
		j, err := w.ToJob(arrival)
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	cluster := sim.Cluster{NumResources: 2, MapSlots: 1, ReduceSlots: 1}
	m := runOpen(t, cluster, []*workload.Job{mkDiamond(0, 0), mkDiamond(1, 5_000)})
	if m.LateJobs != 0 {
		t.Fatalf("%d late despite generous deadlines", m.LateJobs)
	}
}

func TestOpenSystemMixedClassicAndWorkflowJobs(t *testing.T) {
	// A workflow job and classic MapReduce jobs share the cluster.
	w := New(100, 0, 500_000)
	a := w.AddTask("a", workload.MapTask, 8_000)
	b := w.AddTask("b", workload.ReduceTask, 4_000)
	if err := w.AddDep(a, b); err != nil {
		t.Fatal(err)
	}
	wfJob, err := w.ToJob(0)
	if err != nil {
		t.Fatal(err)
	}

	gen := workload.DefaultSynthetic()
	gen.NumResources = 4
	gen.NumMapHi = 6
	gen.NumReduceHi = 3
	gen.Lambda = 0.05
	classic, err := gen.Generate(8, stats.NewStream(81, 82))
	if err != nil {
		t.Fatal(err)
	}
	cluster := sim.Cluster{NumResources: 4, MapSlots: 2, ReduceSlots: 2}
	jobs := append([]*workload.Job{wfJob}, classic...)
	m := runOpen(t, cluster, jobs)
	if m.JobsCompleted != len(jobs) {
		t.Fatal("jobs lost")
	}
}

// Task-level precedence must also work under the direct (per-resource)
// formulation, where matchmaking lives inside the CP model.
func TestOpenSystemWorkflowDirectMode(t *testing.T) {
	w := New(0, 0, 300_000)
	a := w.AddTask("a", workload.MapTask, 10_000)
	b := w.AddTask("b", workload.MapTask, 20_000)
	c := w.AddTask("c", workload.ReduceTask, 5_000)
	if err := w.Chain(a, b, c); err != nil {
		t.Fatal(err)
	}
	j, err := w.ToJob(0)
	if err != nil {
		t.Fatal(err)
	}
	cluster := sim.Cluster{NumResources: 2, MapSlots: 1, ReduceSlots: 1}
	dcfg := cfg()
	dcfg.Mode = core.ModeDirect
	mgr := core.New(cluster, dcfg)
	s, err := sim.New(cluster, mgr, []*workload.Job{j})
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.MakespanMS != 35_000 || m.LateJobs != 0 {
		t.Fatalf("makespan %d late %d", m.MakespanMS, m.LateJobs)
	}
}

// The incremental path: a second workflow arrives while the first runs;
// started tasks freeze, pending ones re-plan, and the simulator verifies
// every precedence edge at execution time.
func TestOpenSystemIncrementalRescheduleWithPrecedence(t *testing.T) {
	mkChain := func(id int, arrival, deadline int64, execs ...int64) *workload.Job {
		w := New(id, arrival, deadline)
		var prev *Task
		for i, e := range execs {
			task := w.AddTask(taskName(i), workload.MapTask, e)
			if prev != nil {
				if err := w.AddDep(prev, task); err != nil {
					t.Fatal(err)
				}
			}
			prev = task
		}
		j, err := w.ToJob(arrival)
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	cluster := sim.Cluster{NumResources: 1, MapSlots: 1, ReduceSlots: 1}
	long := mkChain(0, 0, 1_000_000, 30_000, 30_000)
	tight := mkChain(1, 5_000, 45_000, 8_000) // must preempt the queue
	m := runOpen(t, cluster, []*workload.Job{long, tight})
	for _, r := range m.Records {
		if r.Job.ID == 1 && r.Late() {
			t.Fatalf("tight workflow completed at %d, deadline %d", r.Completion, r.Job.Deadline)
		}
	}
}
