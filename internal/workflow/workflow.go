// Package workflow generalizes the MapReduce model to workflows with
// user-specified precedence relationships — the extension the paper's
// conclusions single out as future work. A workflow is a DAG of tasks;
// each task occupies one slot of a pool (map-class or reduce-class) on the
// simulated cluster, and the workflow carries the same SLA as a MapReduce
// job: earliest start time, per-task execution times, and an end-to-end
// deadline.
//
// Solve maps and schedules a batch of workflows with the same CP machinery
// MRCP-RM uses — interval variables, phase precedences, cumulative
// capacities, reified lateness, min Σ late objective — followed by the
// gap-based matchmaking pass onto concrete resources.
package workflow

import (
	"fmt"
	"sort"

	"mrcprm/internal/workload"
)

// Task is one node of a workflow DAG.
type Task struct {
	ID   string
	Exec int64 // execution time, ms
	Req  int64 // slot demand (1 for ordinary tasks)
	// Pool selects which slot class of the cluster the task occupies:
	// workload.MapTask for map-class slots, workload.ReduceTask for
	// reduce-class slots.
	Pool workload.TaskType

	wf    *Workflow
	index int
	preds []*Task
	succs []*Task
}

// Preds returns the task's direct predecessors.
func (t *Task) Preds() []*Task { return t.preds }

// Succs returns the task's direct successors.
func (t *Task) Succs() []*Task { return t.succs }

// Workflow is a DAG of tasks with an end-to-end SLA.
type Workflow struct {
	ID            int
	EarliestStart int64
	Deadline      int64
	Tasks         []*Task
}

// New creates an empty workflow.
func New(id int, earliestStart, deadline int64) *Workflow {
	return &Workflow{ID: id, EarliestStart: earliestStart, Deadline: deadline}
}

// AddTask appends a task to the workflow.
func (w *Workflow) AddTask(id string, pool workload.TaskType, execMS int64) *Task {
	t := &Task{ID: id, Exec: execMS, Req: 1, Pool: pool, wf: w, index: len(w.Tasks)}
	w.Tasks = append(w.Tasks, t)
	return t
}

// AddDep declares that succ may start only after pred completes.
func (w *Workflow) AddDep(pred, succ *Task) error {
	if pred.wf != w || succ.wf != w {
		return fmt.Errorf("workflow: dependency across workflows (%s -> %s)", pred.ID, succ.ID)
	}
	if pred == succ {
		return fmt.Errorf("workflow: task %s cannot depend on itself", pred.ID)
	}
	succ.preds = append(succ.preds, pred)
	pred.succs = append(pred.succs, succ)
	return nil
}

// Chain is a convenience constructor: task i depends on task i-1.
func (w *Workflow) Chain(tasks ...*Task) error {
	for i := 1; i < len(tasks); i++ {
		if err := w.AddDep(tasks[i-1], tasks[i]); err != nil {
			return err
		}
	}
	return nil
}

// Validate checks the workflow: at least one task, positive execution
// times, unique task IDs, and an acyclic dependency graph.
func (w *Workflow) Validate() error {
	if len(w.Tasks) == 0 {
		return fmt.Errorf("workflow %d has no tasks", w.ID)
	}
	if w.Deadline < w.EarliestStart {
		return fmt.Errorf("workflow %d deadline %d before earliest start %d",
			w.ID, w.Deadline, w.EarliestStart)
	}
	ids := make(map[string]bool, len(w.Tasks))
	for _, t := range w.Tasks {
		if t.Exec <= 0 {
			return fmt.Errorf("workflow %d task %s has non-positive execution time", w.ID, t.ID)
		}
		if t.Req <= 0 {
			return fmt.Errorf("workflow %d task %s has non-positive demand", w.ID, t.ID)
		}
		if ids[t.ID] {
			return fmt.Errorf("workflow %d has duplicate task id %q", w.ID, t.ID)
		}
		ids[t.ID] = true
	}
	if _, err := w.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns the tasks in a topological order, or an error if the
// graph has a cycle.
func (w *Workflow) TopoOrder() ([]*Task, error) {
	indeg := make([]int, len(w.Tasks))
	for _, t := range w.Tasks {
		indeg[t.index] = len(t.preds)
	}
	var queue []*Task
	for _, t := range w.Tasks {
		if indeg[t.index] == 0 {
			queue = append(queue, t)
		}
	}
	var order []*Task
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		order = append(order, t)
		for _, s := range t.succs {
			indeg[s.index]--
			if indeg[s.index] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != len(w.Tasks) {
		return nil, fmt.Errorf("workflow %d has a dependency cycle", w.ID)
	}
	return order, nil
}

// Sinks returns the tasks with no successors — the workflow's terminal
// tasks, whose completion defines the end-to-end deadline.
func (w *Workflow) Sinks() []*Task {
	var out []*Task
	for _, t := range w.Tasks {
		if len(t.succs) == 0 {
			out = append(out, t)
		}
	}
	return out
}

// CriticalPath returns the length (ms) of the longest dependency chain — a
// lower bound on the workflow's makespan regardless of cluster size.
func (w *Workflow) CriticalPath() int64 {
	order, err := w.TopoOrder()
	if err != nil {
		return 0
	}
	finish := make([]int64, len(w.Tasks))
	var best int64
	for _, t := range order {
		var start int64
		for _, p := range t.preds {
			if finish[p.index] > start {
				start = finish[p.index]
			}
		}
		finish[t.index] = start + t.Exec
		if finish[t.index] > best {
			best = finish[t.index]
		}
	}
	return best
}

// TotalWork returns the sum of task execution times.
func (w *Workflow) TotalWork() int64 {
	var sum int64
	for _, t := range w.Tasks {
		sum += t.Exec
	}
	return sum
}

// FromMapReduceJob converts a classic two-phase MapReduce job into the
// equivalent workflow: every reduce task depends on every map task.
func FromMapReduceJob(j *workload.Job) *Workflow {
	w := New(j.ID, j.EarliestStart, j.Deadline)
	var maps []*Task
	for _, mt := range j.MapTasks {
		maps = append(maps, w.AddTask(mt.ID, workload.MapTask, mt.Exec))
	}
	for _, rt := range j.ReduceTasks {
		r := w.AddTask(rt.ID, workload.ReduceTask, rt.Exec)
		for _, mt := range maps {
			// Dependencies within one workflow never fail here.
			if err := w.AddDep(mt, r); err != nil {
				panic(err)
			}
		}
	}
	return w
}

// sortTasksByIndex orders tasks deterministically.
func sortTasksByIndex(ts []*Task) {
	sort.Slice(ts, func(a, b int) bool { return ts[a].index < ts[b].index })
}

// ToJob converts the workflow into a workload.Job with task-level
// precedence, which the open-system machinery (simulator + MRCP-RM)
// schedules directly: workflows can then arrive as a stream like any other
// job. arrival is the job's arrival time (>= 0, <= the workflow's earliest
// start unless the workflow starts immediately).
func (w *Workflow) ToJob(arrival int64) (*workload.Job, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	j := &workload.Job{
		ID:             w.ID,
		Arrival:        arrival,
		EarliestStart:  w.EarliestStart,
		Deadline:       w.Deadline,
		TaskPrecedence: true,
	}
	if j.EarliestStart < arrival {
		j.EarliestStart = arrival
	}
	conv := make(map[*Task]*workload.Task, len(w.Tasks))
	for _, t := range w.Tasks {
		wt := &workload.Task{ID: t.ID, JobID: w.ID, Type: t.Pool, Exec: t.Exec, Req: t.Req}
		conv[t] = wt
		if t.Pool == workload.MapTask {
			j.MapTasks = append(j.MapTasks, wt)
		} else {
			j.ReduceTasks = append(j.ReduceTasks, wt)
		}
	}
	for _, t := range w.Tasks {
		for _, p := range t.preds {
			conv[t].Preds = append(conv[t].Preds, conv[p])
		}
	}
	if len(j.MapTasks) == 0 {
		// workload.Job.Validate requires at least one map-pool task; a
		// reduce-only workflow cannot ride on the MapReduce job carrier.
		return nil, fmt.Errorf("workflow %d has no map-pool tasks; the open-system carrier requires one", w.ID)
	}
	if err := j.Validate(); err != nil {
		return nil, err
	}
	return j, nil
}
