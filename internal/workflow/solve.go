package workflow

import (
	"fmt"
	"sort"
	"time"

	"mrcprm/internal/core"
	"mrcprm/internal/cp"
	"mrcprm/internal/sim"
	"mrcprm/internal/workload"
)

// Assignment is one task's place in a solved workflow schedule.
type Assignment struct {
	Task     *Task
	Workflow *Workflow
	Resource int
	Start    int64
}

// End returns the task's completion time.
func (a Assignment) End() int64 { return a.Start + a.Task.Exec }

// Schedule is a solved batch of workflows.
type Schedule struct {
	Assignments []Assignment
	// LateWorkflows lists IDs of workflows whose sinks finish after their
	// deadlines.
	LateWorkflows []int
	Objective     int
	Optimal       bool
	SolveTime     time.Duration
	Nodes         int64
}

// Solve maps and schedules the workflows on the cluster, minimizing the
// number of workflows that miss their deadlines. It uses the combined-
// resource formulation plus gap-based matchmaking (the Section V.D scheme
// generalized to arbitrary precedence DAGs).
func Solve(cluster sim.Cluster, wfs []*Workflow, cfg core.Config) (*Schedule, error) {
	if err := cluster.Validate(); err != nil {
		return nil, err
	}
	for _, w := range wfs {
		if err := w.Validate(); err != nil {
			return nil, err
		}
	}

	// Horizon: everything serial after the latest release.
	horizon := int64(1)
	var total, maxDur int64
	for _, w := range wfs {
		if w.EarliestStart >= horizon {
			horizon = w.EarliestStart + 1
		}
		for _, t := range w.Tasks {
			total += t.Exec
			if t.Exec > maxDur {
				maxDur = t.Exec
			}
		}
	}
	horizon += total + maxDur + 1

	m := cp.NewModel(horizon)
	type taskIv struct {
		task *Task
		wf   *Workflow
		iv   *cp.Interval
	}
	var items []taskIv
	ivOf := make(map[*Task]*cp.Interval)
	var mapPool, redPool []*cp.Interval
	var lates []*cp.Bool

	for _, w := range wfs {
		for _, t := range w.Tasks {
			iv := m.NewInterval(t.ID, t.Exec)
			iv.Demand = t.Req
			iv.Due = w.Deadline
			iv.JobKey = w.ID
			m.SetStartBounds(iv, w.EarliestStart, horizon-t.Exec)
			ivOf[t] = iv
			items = append(items, taskIv{task: t, wf: w, iv: iv})
			if t.Pool == workload.MapTask {
				mapPool = append(mapPool, iv)
			} else {
				redPool = append(redPool, iv)
			}
		}
		// Precedence: group predecessors per successor (Constraint 3
		// generalized to arbitrary edges).
		for _, t := range w.Tasks {
			if len(t.preds) == 0 {
				continue
			}
			preds := make([]*cp.Interval, 0, len(t.preds))
			for _, p := range t.preds {
				preds = append(preds, ivOf[p])
			}
			m.AddMaxEndBeforeStart(preds, ivOf[t])
		}
		// Lateness on the sinks.
		sinks := w.Sinks()
		sortTasksByIndex(sinks)
		terms := make([]*cp.Interval, 0, len(sinks))
		for _, t := range sinks {
			terms = append(terms, ivOf[t])
		}
		late := m.NewBool(fmt.Sprintf("late_wf%d", w.ID))
		m.AddLateness(terms, w.Deadline, late)
		lates = append(lates, late)
	}
	if len(mapPool) > 0 {
		m.AddCumulative("map-pool", -1, cluster.TotalMapSlots(), mapPool)
	}
	if len(redPool) > 0 {
		m.AddCumulative("reduce-pool", -1, cluster.TotalReduceSlots(), redPool)
	}
	m.Minimize(lates)

	res := cp.NewSolver(m, cp.Params{
		TimeLimit:     cfg.SolveTimeLimit,
		NodeLimit:     cfg.NodeLimit,
		Ordering:      cfg.Ordering,
		Workers:       cfg.Workers,
		Opportunistic: cfg.OpportunisticSolve,
	}).Solve()
	if !res.HasSolution() {
		return nil, fmt.Errorf("workflow: solve failed with status %v", res.Status)
	}
	if err := m.VerifySolution(&res); err != nil {
		return nil, err
	}

	sched := &Schedule{
		Objective: res.Objective,
		Optimal:   res.Status == cp.StatusOptimal,
		SolveTime: res.SolveTime,
		Nodes:     res.Nodes,
	}

	// Matchmaking onto unit slots, processed in start order; dependent
	// tasks take the max of their CP start and their (possibly slipped)
	// predecessors' placed ends.
	placer := newPlacer(cluster)
	sort.SliceStable(items, func(a, b int) bool {
		sa, sb := res.Starts[items[a].iv.ID()], res.Starts[items[b].iv.ID()]
		if sa != sb {
			return sa < sb
		}
		if items[a].wf.ID != items[b].wf.ID {
			return items[a].wf.ID < items[b].wf.ID
		}
		return items[a].task.index < items[b].task.index
	})
	placedEnd := make(map[*Task]int64)
	for _, it := range items {
		start := res.Starts[it.iv.ID()]
		for _, p := range it.task.preds {
			if e := placedEnd[p]; e > start {
				start = e
			}
		}
		resIdx, actual := placer.place(it.task.Pool, it.task.Exec, start)
		placedEnd[it.task] = actual + it.task.Exec
		sched.Assignments = append(sched.Assignments, Assignment{
			Task: it.task, Workflow: it.wf, Resource: resIdx, Start: actual,
		})
	}
	sort.SliceStable(sched.Assignments, func(a, b int) bool {
		if sched.Assignments[a].Start != sched.Assignments[b].Start {
			return sched.Assignments[a].Start < sched.Assignments[b].Start
		}
		return sched.Assignments[a].Task.ID < sched.Assignments[b].Task.ID
	})

	// Lateness from the final placements.
	complete := map[*Workflow]int64{}
	byTask := map[*Task]int64{}
	for _, a := range sched.Assignments {
		byTask[a.Task] = a.End()
		if a.End() > complete[a.Workflow] {
			complete[a.Workflow] = a.End()
		}
	}
	for _, w := range wfs {
		if complete[w] > w.Deadline {
			sched.LateWorkflows = append(sched.LateWorkflows, w.ID)
		}
	}
	sort.Ints(sched.LateWorkflows)
	return sched, nil
}

// placer assigns tasks to unit slots, best-gap first with slip fallback —
// the workflow-generalized version of core's matchmaker.
type placer struct {
	mapSlots  []slotTimeline
	redSlots  []slotTimeline
	mapPerRes int64
	redPerRes int64
}

type slotTimeline struct{ busy []span }

type span struct{ from, to int64 }

func newPlacer(c sim.Cluster) *placer {
	return &placer{
		mapSlots:  make([]slotTimeline, c.TotalMapSlots()),
		redSlots:  make([]slotTimeline, c.TotalReduceSlots()),
		mapPerRes: c.MapSlots,
		redPerRes: c.ReduceSlots,
	}
}

func (s *slotTimeline) fits(from, to int64) bool {
	i := sort.Search(len(s.busy), func(i int) bool { return s.busy[i].to > from })
	return i == len(s.busy) || s.busy[i].from >= to
}

func (s *slotTimeline) gapBefore(from int64) int64 {
	i := sort.Search(len(s.busy), func(i int) bool { return s.busy[i].to > from })
	if i == 0 {
		return from
	}
	return from - s.busy[i-1].to
}

func (s *slotTimeline) earliestFitAfter(from, dur int64) int64 {
	st := from
	i := sort.Search(len(s.busy), func(i int) bool { return s.busy[i].to > st })
	for ; i < len(s.busy); i++ {
		if s.busy[i].from >= st+dur {
			break
		}
		st = s.busy[i].to
	}
	return st
}

func (s *slotTimeline) insert(from, to int64) {
	i := sort.Search(len(s.busy), func(i int) bool { return s.busy[i].from >= from })
	s.busy = append(s.busy, span{})
	copy(s.busy[i+1:], s.busy[i:])
	s.busy[i] = span{from, to}
}

// place commits the task to the best slot and returns (resource, start).
func (p *placer) place(pool workload.TaskType, dur, start int64) (int, int64) {
	slots := p.mapSlots
	perRes := p.mapPerRes
	if pool == workload.ReduceTask {
		slots = p.redSlots
		perRes = p.redPerRes
	}
	best := -1
	var bestGap int64
	for i := range slots {
		if !slots[i].fits(start, start+dur) {
			continue
		}
		gap := slots[i].gapBefore(start)
		if best < 0 || gap < bestGap {
			best, bestGap = i, gap
		}
	}
	actual := start
	if best < 0 {
		bestAt := int64(1<<63 - 1)
		for i := range slots {
			if at := slots[i].earliestFitAfter(start, dur); at < bestAt {
				bestAt, best = at, i
			}
		}
		actual = bestAt
	}
	slots[best].insert(actual, actual+dur)
	return int(int64(best) / perRes), actual
}

// ValidateSchedule checks a schedule against capacities, precedence, and
// earliest start times.
func (s *Schedule) Validate(cluster sim.Cluster) error {
	end := map[*Task]int64{}
	start := map[*Task]int64{}
	for _, a := range s.Assignments {
		start[a.Task] = a.Start
		end[a.Task] = a.End()
		if a.Start < a.Workflow.EarliestStart {
			return fmt.Errorf("workflow: task %s starts before its workflow's earliest start", a.Task.ID)
		}
	}
	type ev struct {
		at    int64
		delta int64
	}
	pools := map[workload.TaskType]map[int][]ev{
		workload.MapTask:    {},
		workload.ReduceTask: {},
	}
	for _, a := range s.Assignments {
		for _, p := range a.Task.preds {
			if start[a.Task] < end[p] {
				return fmt.Errorf("workflow: task %s starts before predecessor %s ends", a.Task.ID, p.ID)
			}
		}
		m := pools[a.Task.Pool]
		m[a.Resource] = append(m[a.Resource], ev{a.Start, a.Task.Req}, ev{a.End(), -a.Task.Req})
	}
	caps := map[workload.TaskType]int64{
		workload.MapTask:    cluster.MapSlots,
		workload.ReduceTask: cluster.ReduceSlots,
	}
	for pool, byRes := range pools {
		for r, evs := range byRes {
			sort.Slice(evs, func(i, j int) bool {
				if evs[i].at != evs[j].at {
					return evs[i].at < evs[j].at
				}
				return evs[i].delta < evs[j].delta
			})
			var load int64
			for _, e := range evs {
				load += e.delta
				if load > caps[pool] {
					return fmt.Errorf("workflow: %v capacity of resource %d exceeded", pool, r)
				}
			}
		}
	}
	return nil
}
