package rmkit

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"mrcprm/internal/sim"
)

// Options carries the policy-agnostic knobs a caller can set when
// constructing a manager by name. Policy-specific configuration travels in
// Extra; a factory ignores an Extra of a type it does not understand, so
// one Options value can be fanned out across every registered policy.
type Options struct {
	// Retry overrides the policy's default retry budgets when non-nil.
	Retry *RetryPolicy
	// Extra is policy-specific configuration (core.Config for "mrcp").
	Extra any
}

// Factory constructs one resource manager for a cluster.
type Factory func(cluster sim.Cluster, opts Options) (sim.ResourceManager, error)

var (
	regMu    sync.RWMutex
	registry = make(map[string]Factory)
)

// Register adds a policy under a selection name (the -rm value). Policies
// call it from an init function in their own package; importing the
// package — directly or via internal/policies — is all it takes to make
// the policy selectable everywhere. Registering a duplicate or empty name,
// or a nil factory, panics: both are programming errors.
func Register(name string, f Factory) {
	if name == "" || f == nil {
		panic("rmkit: Register requires a name and a factory")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("rmkit: policy %q registered twice", name))
	}
	registry[name] = f
}

// New constructs the named policy's manager for the cluster. An unknown
// name's error lists every registered policy.
func New(name string, cluster sim.Cluster, opts Options) (sim.ResourceManager, error) {
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("rmkit: unknown resource manager %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	return f(cluster, opts)
}

// Names returns every registered policy name, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
