// Package rmkit is the shared resource-manager kernel: the job-lifecycle
// machinery every matchmaking-and-scheduling policy needs (per-job
// tracking, retry budgets and abandonment, slot-availability mirrors, the
// reactive dispatch loop) plus the policy registry that lets binaries,
// experiments, and the online service select a manager by name.
//
// The paper's evaluation is a comparison of policies (MRCP-RM versus
// MinEDF-WC, Section VI); this package makes adding a new policy a
// one-file change: implement sim.ResourceManager — usually on top of
// Tracker/ListScheduler — and call Register in an init function. Every
// entry point (cmd/mrcpsim -rm, cmd/mrcpd -rm, the experiment harness, the
// public mrcprm facade) resolves policies through the registry.
package rmkit

// RetryPolicy is the canonical fault-recovery budget shared by every
// resource manager. A task attempt that fails (injected failure or outage
// kill) is charged against both budgets; exhausting either abandons the
// task's job.
type RetryPolicy struct {
	// MaxTaskRetries caps the failed execution attempts of a single task;
	// one more failure abandons the task's job. Zero means unlimited.
	MaxTaskRetries int
	// JobRetryBudget caps the total failed attempts across all tasks of one
	// job before the job is abandoned. Zero means unlimited.
	JobRetryBudget int
}

// DefaultRetryPolicy is the budget every built-in policy installs by
// default, so head-to-head comparisons under faults stay fair.
func DefaultRetryPolicy() RetryPolicy { return RetryPolicy{MaxTaskRetries: 4} }

// Exhausted reports whether a job is over budget after its latest failed
// attempt: taskAttempts is the failed-attempt count of the task that just
// failed (including the new failure), jobRetries the job-wide total.
func (p RetryPolicy) Exhausted(taskAttempts, jobRetries int) bool {
	return (p.MaxTaskRetries > 0 && taskAttempts > p.MaxTaskRetries) ||
		(p.JobRetryBudget > 0 && jobRetries > p.JobRetryBudget)
}
