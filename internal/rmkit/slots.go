package rmkit

import (
	"mrcprm/internal/sim"
	"mrcprm/internal/workload"
)

// SlotMirror is the per-resource slot-availability bookkeeping reactive
// schedulers keep in sync with their own dispatch decisions, so one
// manager invocation can fill several slots without waiting for simulator
// feedback. A down resource's counts are zeroed so dispatch skips it.
type SlotMirror struct {
	cluster sim.Cluster
	freeMap []int64
	freeRed []int64
}

// NewSlotMirror creates a mirror with every slot of the cluster free.
func NewSlotMirror(cluster sim.Cluster) *SlotMirror {
	s := &SlotMirror{
		cluster: cluster,
		freeMap: make([]int64, cluster.NumResources),
		freeRed: make([]int64, cluster.NumResources),
	}
	for r := 0; r < cluster.NumResources; r++ {
		s.freeMap[r] = cluster.MapSlots
		s.freeRed[r] = cluster.ReduceSlots
	}
	return s
}

func (s *SlotMirror) free(tt workload.TaskType) []int64 {
	if tt == workload.MapTask {
		return s.freeMap
	}
	return s.freeRed
}

// Take marks one slot of the task type busy on the resource.
func (s *SlotMirror) Take(tt workload.TaskType, res int) { s.free(tt)[res]-- }

// Release returns one slot of the task type on the resource.
func (s *SlotMirror) Release(tt workload.TaskType, res int) { s.free(tt)[res]++ }

// FirstFree returns the lowest-numbered resource with a free slot of the
// task type, or -1 when every slot is busy.
func (s *SlotMirror) FirstFree(tt workload.TaskType) int {
	for r, f := range s.free(tt) {
		if f > 0 {
			return r
		}
	}
	return -1
}

// Block zeroes the resource's mirrors so dispatch skips it (outage).
func (s *SlotMirror) Block(res int) {
	s.freeMap[res], s.freeRed[res] = 0, 0
}

// Restore resets the resource's mirrors to full capacity (repair; nothing
// survives an outage on the resource).
func (s *SlotMirror) Restore(res int) {
	s.freeMap[res] = s.cluster.MapSlots
	s.freeRed[res] = s.cluster.ReduceSlots
}
