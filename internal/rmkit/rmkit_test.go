package rmkit

import (
	"strings"
	"testing"

	"mrcprm/internal/sim"
	"mrcprm/internal/workload"
)

func mkJob(id int, arrival, deadline int64, nMaps, nReds int) *workload.Job {
	j := &workload.Job{ID: id, Arrival: arrival, EarliestStart: arrival, Deadline: deadline}
	for i := 0; i < nMaps; i++ {
		j.MapTasks = append(j.MapTasks, &workload.Task{
			ID: "m", JobID: id, Type: workload.MapTask, Exec: 1000, Req: 1})
	}
	for i := 0; i < nReds; i++ {
		j.ReduceTasks = append(j.ReduceTasks, &workload.Task{
			ID: "r", JobID: id, Type: workload.ReduceTask, Exec: 1000, Req: 1})
	}
	return j
}

func TestRetryPolicyExhausted(t *testing.T) {
	cases := []struct {
		p             RetryPolicy
		attempts, job int
		want          bool
	}{
		{RetryPolicy{}, 100, 100, false}, // both zero: unlimited
		{RetryPolicy{MaxTaskRetries: 4}, 4, 0, false},
		{RetryPolicy{MaxTaskRetries: 4}, 5, 0, true},
		{RetryPolicy{JobRetryBudget: 3}, 1, 3, false},
		{RetryPolicy{JobRetryBudget: 3}, 1, 4, true},
		{RetryPolicy{MaxTaskRetries: 4, JobRetryBudget: 3}, 2, 4, true},
	}
	for i, tc := range cases {
		if got := tc.p.Exhausted(tc.attempts, tc.job); got != tc.want {
			t.Errorf("case %d: Exhausted(%d, %d) with %+v = %v, want %v",
				i, tc.attempts, tc.job, tc.p, got, tc.want)
		}
	}
}

func TestTrackerAdmitOrderAndIndices(t *testing.T) {
	// Deadline-ordered tracker: equal keys keep insertion order, and every
	// index resolves.
	tr := NewTracker(func(a, b *JobState) bool { return a.Job.Deadline < b.Job.Deadline })
	tr.QueuePending = true
	j1 := mkJob(1, 0, 5000, 2, 1)
	j2 := mkJob(2, 10, 3000, 1, 0)
	j3 := mkJob(3, 20, 5000, 1, 1)
	for _, j := range []*workload.Job{j1, j2, j3} {
		tr.Admit(j)
	}
	var ids []int
	for _, js := range tr.Active() {
		ids = append(ids, js.Job.ID)
	}
	if len(ids) != 3 || ids[0] != 2 || ids[1] != 1 || ids[2] != 3 {
		t.Fatalf("active order %v, want [2 1 3] (EDF, ties in insertion order)", ids)
	}

	js, ok := tr.ByID(1)
	if !ok || js.Job != j1 {
		t.Fatal("ByID(1) did not resolve")
	}
	if js.TasksLeft != 3 || js.MapsLeft != 2 || len(js.PendingMaps) != 2 || len(js.PendingReds) != 1 {
		t.Fatalf("admitted state %+v", js)
	}
	if byTask, ok := tr.ByTask(j1.MapTasks[0]); !ok || byTask != js {
		t.Fatal("ByTask did not resolve to the owning job's state")
	}

	// Dequeue removes only the queue entry; Retire removes the indices too.
	tr.Dequeue(js)
	if tr.Len() != 2 {
		t.Fatalf("len after Dequeue = %d, want 2", tr.Len())
	}
	if _, ok := tr.ByID(1); !ok {
		t.Fatal("Dequeue must keep lookup indices")
	}
	tr.Retire(js)
	if _, ok := tr.ByID(1); ok {
		t.Fatal("Retire must drop lookup indices")
	}
	if _, ok := tr.ByTask(j1.MapTasks[0]); ok {
		t.Fatal("Retire must drop task indices")
	}
}

func TestTrackerNilComparatorKeepsAdmissionOrder(t *testing.T) {
	tr := NewTracker(nil)
	for _, id := range []int{3, 1, 2} {
		tr.Admit(mkJob(id, 0, int64(id), 1, 0))
	}
	var ids []int
	for _, js := range tr.Active() {
		ids = append(ids, js.Job.ID)
	}
	if ids[0] != 3 || ids[1] != 1 || ids[2] != 2 {
		t.Fatalf("active order %v, want admission order [3 1 2]", ids)
	}
}

func TestSlotMirror(t *testing.T) {
	cluster := sim.Cluster{NumResources: 3, MapSlots: 2, ReduceSlots: 1}
	s := NewSlotMirror(cluster)
	if r := s.FirstFree(workload.MapTask); r != 0 {
		t.Fatalf("FirstFree = %d, want 0", r)
	}
	s.Take(workload.MapTask, 0)
	s.Take(workload.MapTask, 0)
	if r := s.FirstFree(workload.MapTask); r != 1 {
		t.Fatalf("FirstFree after filling resource 0 = %d, want 1", r)
	}
	s.Release(workload.MapTask, 0)
	if r := s.FirstFree(workload.MapTask); r != 0 {
		t.Fatalf("FirstFree after release = %d, want 0", r)
	}

	s.Block(0)
	if r := s.FirstFree(workload.MapTask); r != 1 {
		t.Fatalf("FirstFree with resource 0 blocked = %d, want 1", r)
	}
	s.Restore(0)
	if r := s.FirstFree(workload.MapTask); r != 0 {
		t.Fatalf("FirstFree after restore = %d, want 0", r)
	}

	// Reduce slots are tracked independently.
	s.Take(workload.ReduceTask, 0)
	if r := s.FirstFree(workload.ReduceTask); r != 1 {
		t.Fatalf("reduce FirstFree = %d, want 1", r)
	}
	if r := s.FirstFree(workload.MapTask); r != 0 {
		t.Fatal("taking a reduce slot must not consume a map slot")
	}
}

func TestRegistryRoundTrip(t *testing.T) {
	name := "test-policy-roundtrip"
	called := false
	Register(name, func(cluster sim.Cluster, opts Options) (sim.ResourceManager, error) {
		called = true
		return nil, nil
	})
	found := false
	for _, n := range Names() {
		if n == name {
			found = true
		}
	}
	if !found {
		t.Fatalf("Names() = %v does not include %q", Names(), name)
	}
	if _, err := New(name, sim.Cluster{}, Options{}); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("factory was not invoked")
	}
}

func TestRegistryUnknownNameListsPolicies(t *testing.T) {
	_, err := New("no-such-policy", sim.Cluster{}, Options{})
	if err == nil {
		t.Fatal("expected an error for an unknown policy")
	}
	for _, n := range Names() {
		if !strings.Contains(err.Error(), n) {
			t.Errorf("error %q does not list registered policy %q", err, n)
		}
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	name := "test-policy-duplicate"
	f := func(sim.Cluster, Options) (sim.ResourceManager, error) { return nil, nil }
	Register(name, f)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(name, f)
}

func TestRegisterRejectsEmptyNameAndNilFactory(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    Factory
	}{
		{"", func(sim.Cluster, Options) (sim.ResourceManager, error) { return nil, nil }},
		{"test-policy-nil-factory", nil},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register(%q, %v) did not panic", tc.name, tc.f)
				}
			}()
			Register(tc.name, tc.f)
		}()
	}
}
