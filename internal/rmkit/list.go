package rmkit

import (
	"fmt"
	"time"

	"mrcprm/internal/sim"
	"mrcprm/internal/workload"
)

// ListScheduler is the shared reactive-manager kernel: the Hadoop-style
// slot-based schedulers (FIFO, EDF, MinEDF-WC) differ only in their queue
// discipline and dispatch policy, so this type owns everything else — the
// deferred-arrival queue, the job tracker, the slot mirrors, retry
// charging and abandonment, and every simulator callback. A policy embeds
// *ListScheduler, picks the queue order through NewListScheduler, and
// supplies Dispatch.
//
// Dispatch fills free slots from the active queue after every lifecycle
// event; DispatchJob is the standard per-job inner loop.
type ListScheduler struct {
	// Kind prefixes error messages ("fifo: completion for unknown task…").
	Kind string
	// Cluster is the simulated system shape.
	Cluster sim.Cluster
	// Retry is the fault-recovery budget; adjust before the run starts.
	Retry RetryPolicy
	// Tracker owns per-job lifecycle state; Slots mirrors free capacity.
	Tracker *Tracker
	Slots   *SlotMirror
	// Dispatch fills free slots after a lifecycle event; the policy must
	// set it before the simulation starts.
	Dispatch func(ctx sim.Context) error

	deferred []*workload.Job // arrived, earliest start in the future
}

// NewListScheduler assembles the kernel for a policy whose active queue is
// ordered by less (nil = admission order). The default retry budget is
// installed; tasks are queued on admission.
func NewListScheduler(kind string, cluster sim.Cluster, less func(a, b *JobState) bool) *ListScheduler {
	tr := NewTracker(less)
	tr.QueuePending = true
	return &ListScheduler{
		Kind:    kind,
		Cluster: cluster,
		Retry:   DefaultRetryPolicy(),
		Tracker: tr,
		Slots:   NewSlotMirror(cluster),
	}
}

// OnJobArrival implements sim.ResourceManager: jobs whose earliest start
// time is in the future are parked until a timer releases them.
func (ls *ListScheduler) OnJobArrival(ctx sim.Context, j *workload.Job) error {
	started := time.Now()
	if j.EarliestStart > ctx.Now() {
		ls.deferred = append(ls.deferred, j)
		ctx.SetTimer(j.EarliestStart)
	} else {
		ls.Tracker.Admit(j)
	}
	err := ls.Dispatch(ctx)
	ctx.AddOverhead(time.Since(started))
	return err
}

// OnTimer implements sim.ResourceManager: it admits deferred jobs whose
// earliest start time has arrived.
func (ls *ListScheduler) OnTimer(ctx sim.Context) error {
	started := time.Now()
	rest := ls.deferred[:0]
	for _, j := range ls.deferred {
		if j.EarliestStart <= ctx.Now() {
			ls.Tracker.Admit(j)
		} else {
			rest = append(rest, j)
		}
	}
	ls.deferred = rest
	err := ls.Dispatch(ctx)
	ctx.AddOverhead(time.Since(started))
	return err
}

// OnTaskComplete implements sim.ResourceManager. Completions of abandoned
// jobs' draining attempts still free their mirrored slots; their output is
// discarded.
func (ls *ListScheduler) OnTaskComplete(ctx sim.Context, t *workload.Task) error {
	started := time.Now()
	js, ok := ls.Tracker.ByTask(t)
	if !ok {
		return fmt.Errorf("%s: completion for unknown task %s", ls.Kind, t.ID)
	}
	res, _, _ := ctx.Placement(t)
	if t.Type == workload.MapTask {
		js.RunningMaps--
		js.MapsLeft--
	} else {
		js.RunningReds--
	}
	ls.Slots.Release(t.Type, res)
	if !js.Abandoned {
		js.TasksLeft--
		if js.TasksLeft == 0 {
			ls.Tracker.Retire(js)
		}
	}
	err := ls.Dispatch(ctx)
	ctx.AddOverhead(time.Since(started))
	return err
}

// OnTaskFailed implements sim.FaultHooks: the attempt's slot is freed in
// the mirrors and the task re-queued for another attempt (its job keeps
// its place in the active order). Exhausted retry budgets abandon the job.
func (ls *ListScheduler) OnTaskFailed(ctx sim.Context, t *workload.Task, res int) error {
	started := time.Now()
	js, ok := ls.Tracker.ByTask(t)
	if !ok {
		return fmt.Errorf("%s: failure for unknown task %s", ls.Kind, t.ID)
	}
	if t.Type == workload.MapTask {
		js.RunningMaps--
	} else {
		js.RunningReds--
	}
	ls.Slots.Release(t.Type, res)
	if !js.Abandoned {
		if err := ls.chargeRetry(ctx, js, t); err != nil {
			return err
		}
	}
	err := ls.Dispatch(ctx)
	ctx.AddOverhead(time.Since(started))
	return err
}

// OnResourceDown implements sim.FaultHooks: killed attempts are charged
// against retry budgets and re-queued, evacuated placements re-queued for
// free, and the down resource's slot mirrors zeroed so dispatch skips it.
func (ls *ListScheduler) OnResourceDown(ctx sim.Context, res int, killed, evacuated []*workload.Task) error {
	started := time.Now()
	for _, t := range killed {
		js, ok := ls.Tracker.ByTask(t)
		if !ok {
			return fmt.Errorf("%s: outage kill for unknown task %s", ls.Kind, t.ID)
		}
		if t.Type == workload.MapTask {
			js.RunningMaps--
		} else {
			js.RunningReds--
		}
		if js.Abandoned {
			continue
		}
		if err := ls.chargeRetry(ctx, js, t); err != nil {
			return err
		}
	}
	for _, t := range evacuated {
		js, ok := ls.Tracker.ByTask(t)
		if !ok {
			return fmt.Errorf("%s: evacuation of unknown task %s", ls.Kind, t.ID)
		}
		if t.Type == workload.MapTask {
			js.RunningMaps--
		} else {
			js.RunningReds--
		}
		if !js.Abandoned {
			js.Requeue(t)
		}
	}
	ls.Slots.Block(res)
	err := ls.Dispatch(ctx)
	ctx.AddOverhead(time.Since(started))
	return err
}

// OnResourceUp implements sim.FaultHooks: the repaired resource's slots
// become available again (nothing can be running there after an outage).
func (ls *ListScheduler) OnResourceUp(ctx sim.Context, res int) error {
	started := time.Now()
	ls.Slots.Restore(res)
	err := ls.Dispatch(ctx)
	ctx.AddOverhead(time.Since(started))
	return err
}

// OnTaskSlowdown implements sim.FaultHooks as a no-op: reactive schedulers
// dispatch tasks at the current instant and free slots on actual
// completion events, so an overrunning attempt cannot collide with
// pre-planned work.
func (ls *ListScheduler) OnTaskSlowdown(sim.Context, *workload.Task) error { return nil }

// chargeRetry books one failed attempt: the task is re-queued unless its
// job exhausted a retry budget, in which case the job is abandoned.
func (ls *ListScheduler) chargeRetry(ctx sim.Context, js *JobState, t *workload.Task) error {
	if !js.ChargeRetry(ls.Retry, ctx.Attempts(t)) {
		js.Requeue(t)
		return nil
	}
	return ls.Abandon(ctx, js)
}

// Abandon gives up on a job: dispatched-but-not-started placements are
// reconciled back into the slot mirrors, the simulator drops its pending
// work, and the job leaves the active queue while its last attempts drain
// (lookup indices stay live so their notifications resolve).
func (ls *ListScheduler) Abandon(ctx sim.Context, js *JobState) error {
	for _, t := range js.Job.Tasks() {
		if ctx.Started(t) || ctx.Completed(t) {
			continue
		}
		if res, _, ok := ctx.Placement(t); ok {
			if t.Type == workload.MapTask {
				js.RunningMaps--
			} else {
				js.RunningReds--
			}
			ls.Slots.Release(t.Type, res)
		}
	}
	if err := ctx.AbandonJob(js.Job); err != nil {
		return err
	}
	js.Abandoned = true
	js.PendingMaps, js.PendingReds = nil, nil
	ls.Tracker.Dequeue(js)
	return nil
}

// DispatchJob fills free slots with the job's pending tasks at the current
// instant. mapCap and redCap bound the job's concurrently running tasks
// per phase (an allocation-model policy's first pass); negative caps mean
// unbounded (work-conserving). Reduce tasks start only after all of the
// job's maps completed.
func (ls *ListScheduler) DispatchJob(ctx sim.Context, js *JobState, mapCap, redCap int64) error {
	for len(js.PendingMaps) > 0 {
		if mapCap >= 0 && js.RunningMaps >= mapCap {
			break
		}
		r := ls.Slots.FirstFree(workload.MapTask)
		if r < 0 {
			break
		}
		t := js.PendingMaps[0]
		js.PendingMaps = js.PendingMaps[1:]
		js.RunningMaps++
		ls.Slots.Take(workload.MapTask, r)
		if err := ctx.Schedule(t, r, ctx.Now()); err != nil {
			return err
		}
	}
	if js.MapsDone() {
		for len(js.PendingReds) > 0 {
			if redCap >= 0 && js.RunningReds >= redCap {
				break
			}
			r := ls.Slots.FirstFree(workload.ReduceTask)
			if r < 0 {
				break
			}
			t := js.PendingReds[0]
			js.PendingReds = js.PendingReds[1:]
			js.RunningReds++
			ls.Slots.Take(workload.ReduceTask, r)
			if err := ctx.Schedule(t, r, ctx.Now()); err != nil {
				return err
			}
		}
	}
	return nil
}
