package rmkit

import (
	"sort"

	"mrcprm/internal/sim"
	"mrcprm/internal/workload"
)

// JobState is the kernel's per-job lifecycle record. Every manager tracks
// the same core facts — remaining work, charged retries, abandonment —
// while policy-specific schedulers use the queue and allocation fields as
// they see fit (MRCP-RM regenerates its work set from the simulator each
// round and leaves the queues empty).
type JobState struct {
	Job *workload.Job

	// PendingMaps and PendingReds queue not-yet-dispatched tasks for
	// reactive (slot-mirror) schedulers; tasks dispatch from the front and
	// failed attempts re-queue at the back.
	PendingMaps []*workload.Task
	PendingReds []*workload.Task
	// RunningMaps and RunningReds count dispatched-but-unfinished tasks per
	// phase, mirrored synchronously by ListScheduler.
	RunningMaps int64
	RunningReds int64
	// MapsLeft counts running or pending map tasks (the reduce barrier);
	// TasksLeft counts all uncompleted tasks.
	MapsLeft  int
	TasksLeft int

	// AllocMap and AllocRed are the job's current slot allocation targets
	// for allocation-model policies (MinEDF-WC's ARIA minimum); zero
	// elsewhere.
	AllocMap int64
	AllocRed int64

	// Retries counts failed attempts charged against the job's budget;
	// Abandoned marks a job given up on (it stays tracked while attempts
	// are still draining on the cluster, so their capacity stays modeled).
	Retries   int
	Abandoned bool
}

// MapsDone reports whether every map task completed (the reduce barrier).
func (js *JobState) MapsDone() bool { return js.MapsLeft == 0 }

// Requeue returns a failed, killed, or evacuated task to its pending queue.
func (js *JobState) Requeue(t *workload.Task) {
	if t.Type == workload.MapTask {
		js.PendingMaps = append(js.PendingMaps, t)
	} else {
		js.PendingReds = append(js.PendingReds, t)
	}
}

// ChargeRetry books one failed attempt of a task with taskAttempts total
// failures against the job and reports whether the budgets are now
// exhausted — the caller must then abandon the job.
func (js *JobState) ChargeRetry(p RetryPolicy, taskAttempts int) bool {
	js.Retries++
	return p.Exhausted(taskAttempts, js.Retries)
}

// Tracker owns the per-job lifecycle state of one manager: an active queue
// in a policy-chosen order plus lookup indices by job pointer, job ID, and
// task pointer.
type Tracker struct {
	// QueuePending makes Admit pre-fill each job's pending task queues (in
	// natural task order, as Hadoop-style dispatchers expect). Managers
	// that re-derive their work set from the simulator leave it false.
	QueuePending bool

	less   func(a, b *JobState) bool
	byJob  map[*workload.Job]*JobState
	byID   map[int]*JobState
	byTask map[*workload.Task]*JobState
	order  []*JobState
}

// NewTracker creates an empty tracker. less defines the active-queue order
// (jobs are inserted before the first queued job strictly greater than
// them, so equal keys keep insertion order); nil appends in admission
// order.
func NewTracker(less func(a, b *JobState) bool) *Tracker {
	return &Tracker{
		less:   less,
		byJob:  make(map[*workload.Job]*JobState),
		byID:   make(map[int]*JobState),
		byTask: make(map[*workload.Task]*JobState),
	}
}

// Admit registers a job as active and returns its fresh state.
func (tr *Tracker) Admit(j *workload.Job) *JobState {
	js := &JobState{
		Job:       j,
		MapsLeft:  len(j.MapTasks),
		TasksLeft: j.NumTasks(),
	}
	if tr.QueuePending {
		js.PendingMaps = append([]*workload.Task(nil), j.MapTasks...)
		js.PendingReds = append([]*workload.Task(nil), j.ReduceTasks...)
	}
	tr.byJob[j] = js
	tr.byID[j.ID] = js
	for _, t := range j.Tasks() {
		tr.byTask[t] = js
	}
	if tr.less == nil {
		tr.order = append(tr.order, js)
		return js
	}
	pos := sort.Search(len(tr.order), func(i int) bool { return tr.less(js, tr.order[i]) })
	tr.order = append(tr.order, nil)
	copy(tr.order[pos+1:], tr.order[pos:])
	tr.order[pos] = js
	return js
}

// Active returns the active queue in tracker order. Callers must not
// mutate the slice; it is invalidated by Admit, Dequeue, and Retire.
func (tr *Tracker) Active() []*JobState { return tr.order }

// Len returns the active-queue length.
func (tr *Tracker) Len() int { return len(tr.order) }

// ByJob looks a job's state up by pointer; it resolves for retired jobs
// only until Retire is called.
func (tr *Tracker) ByJob(j *workload.Job) (*JobState, bool) {
	js, ok := tr.byJob[j]
	return js, ok
}

// ByID looks a job's state up by job ID.
func (tr *Tracker) ByID(id int) (*JobState, bool) {
	js, ok := tr.byID[id]
	return js, ok
}

// ByTask looks up the state of the job owning the task.
func (tr *Tracker) ByTask(t *workload.Task) (*JobState, bool) {
	js, ok := tr.byTask[t]
	return js, ok
}

// Dequeue removes the job from the active queue but keeps every lookup
// index, so late completion or failure notifications for still-draining
// attempts of an abandoned job resolve.
func (tr *Tracker) Dequeue(js *JobState) {
	for i, other := range tr.order {
		if other == js {
			tr.order = append(tr.order[:i], tr.order[i+1:]...)
			break
		}
	}
}

// Retire removes the job from the active queue and every index.
func (tr *Tracker) Retire(js *JobState) {
	tr.Dequeue(js)
	delete(tr.byJob, js.Job)
	delete(tr.byID, js.Job.ID)
	for _, t := range js.Job.Tasks() {
		delete(tr.byTask, t)
	}
}

// AnyRunning reports whether any of the job's tasks is mid-execution —
// the condition that keeps an abandoned job tracked as a capacity-holding
// ghost until its last attempts drain.
func AnyRunning(ctx sim.Context, j *workload.Job) bool {
	for _, t := range j.Tasks() {
		if ctx.Started(t) && !ctx.Completed(t) {
			return true
		}
	}
	return false
}
