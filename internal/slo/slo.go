// Package slo is the SLA observability plane's stateful half: per-job trace
// timelines, deadline-miss attribution, and a sliding-window miss-budget
// burn monitor. A Monitor attaches to a simulation as a lifecycle observer
// (sim.SetObserver, typically through sim.TeeObservers) and, for the MRCP-RM
// policy, to the manager's reschedule observer; the service engine feeds it
// the admission-side events the simulator cannot see. Everything it records
// is stamped with simulated time, so a deterministic run produces a
// deterministic trace and attribution stream.
package slo

import (
	"sync"

	"mrcprm/internal/obs"
	"mrcprm/internal/workload"
)

// Attribution classes: the dominant cause assigned to each job that misses
// its SLA (finishes late or is abandoned). Exactly one class per miss.
const (
	// ClassInfeasible marks jobs already infeasible when admitted: their
	// SLA lower bound exceeded the deadline, but intake accepted them
	// anyway (admission control disabled or overridden).
	ClassInfeasible = "infeasible_at_admission"
	// ClassFaultDelay marks jobs that suffered task failures, outage
	// kills, or straggler slowdowns before missing.
	ClassFaultDelay = "fault_delay"
	// ClassSolverDegraded marks jobs whose outstanding window overlapped
	// at least one solver-fallback round (greedy EDF degradation).
	ClassSolverDegraded = "solver_degraded"
	// ClassQueuedBacklog is the default: nothing went wrong with the job
	// itself — it queued behind too much other work.
	ClassQueuedBacklog = "queued_backlog"
)

// Classes lists every attribution class in reporting order.
func Classes() []string {
	return []string{ClassInfeasible, ClassFaultDelay, ClassSolverDegraded, ClassQueuedBacklog}
}

// CounterMiss is the obs counter-family prefix: one counter per class,
// e.g. "slo_miss_fault_delay".
const CounterMiss = "slo_miss_"

// TraceEvent is one entry of a job's timeline.
type TraceEvent struct {
	SimMS  int64  `json:"t"`
	Kind   string `json:"kind"`
	Detail string `json:"detail,omitempty"`
	// Count > 1 means consecutive identical events (same instant, kind,
	// and detail) were coalesced into this entry.
	Count int `json:"count,omitempty"`
}

// Trace event kinds, in rough lifecycle order.
const (
	KindSubmitted = "submitted"
	KindAdmitted  = "admitted"
	KindShed      = "shed"
	KindPlaced    = "placed"
	KindReplanned = "replanned"
	KindTaskFail  = "task_fail"
	KindTaskKill  = "task_kill"
	KindTaskRetry = "task_retry"
	KindStraggle  = "task_straggle"
	KindCompleted = "completed"
	KindAbandoned = "abandoned"
	KindWithdrawn = "withdrawn"
)

// Config tunes a Monitor. Zero values select the defaults.
type Config struct {
	// MissBudget is the tolerated fraction of SLA misses among finishes
	// inside the window. Default 0.1.
	MissBudget float64
	// WindowMS is the sliding-window length in simulated ms. Default
	// 60000.
	WindowMS int64
	// MinSample is the minimum number of finishes inside the window
	// before the burn alarm may trip (guards cold starts). Default 20.
	MinSample int
	// TraceCap bounds each job's timeline ring; older events are dropped
	// (and counted) beyond it. Default 64.
	TraceCap int
	// Telemetry receives slo_attribution events and the per-class miss
	// counter family; nil records traces and burn state only.
	Telemetry *obs.Telemetry
}

func (c Config) withDefaults() Config {
	if c.MissBudget <= 0 {
		c.MissBudget = 0.1
	}
	if c.WindowMS <= 0 {
		c.WindowMS = 60_000
	}
	if c.MinSample <= 0 {
		c.MinSample = 20
	}
	if c.TraceCap <= 0 {
		c.TraceCap = 64
	}
	return c
}

// Attribution is one finished miss with its assigned class.
type Attribution struct {
	JobID      int    `json:"job"`
	Class      string `json:"class"`
	Outcome    string `json:"outcome"` // "late" or "abandoned"
	LatenessMS int64  `json:"latenessMS"`
}

// Totals is the reconciliation view of everything attributed so far.
type Totals struct {
	// LateByClass counts late completions per class; its values sum to
	// the simulator's Metrics.LateJobs.
	LateByClass map[string]int64 `json:"lateByClass"`
	// AbandonedByClass counts abandonments per class; its values sum to
	// Metrics.JobsAbandoned.
	AbandonedByClass map[string]int64 `json:"abandonedByClass"`
}

// BurnInfo is a point-in-time view of the miss-budget burn monitor.
type BurnInfo struct {
	WindowMS   int64   `json:"windowMS"`
	MissBudget float64 `json:"missBudget"`
	MinSample  int     `json:"minSample"`
	// Finished and Missed count job finishes (completions plus
	// abandonments) and SLA misses inside the window ending now.
	Finished int     `json:"finished"`
	Missed   int     `json:"missed"`
	MissRate float64 `json:"missRate"`
	// BurnRate is MissRate/MissBudget: 1.0 means missing exactly at
	// budget; >1 means burning faster than the budget allows.
	BurnRate float64 `json:"burnRate"`
	// Burning is true when the window holds at least MinSample finishes
	// and the miss rate exceeds the budget.
	Burning bool `json:"burning"`
}

type jobState struct {
	id          int
	ring        []TraceEvent
	dropped     int
	infeasible  bool
	faultEvents int
	// fallbackBase is the monitor-wide fallback-round count when the job
	// was first seen; a higher count at finish means the job's window
	// overlapped solver degradation.
	fallbackBase int64
	placedOnce   bool
	failedTasks  map[string]bool
	done         bool
}

type finish struct {
	at   int64
	miss bool
}

// Monitor accumulates traces, attributions, and burn state. All methods are
// safe for concurrent use; a nil *Monitor is inert on every method, so
// callers thread it like a telemetry handle.
type Monitor struct {
	cfg Config

	mu        sync.Mutex
	jobs      map[int]*jobState
	fallbacks int64
	lateBy    map[string]int64
	abandBy   map[string]int64
	attrs     []Attribution
	window    []finish // finish instants, ascending
	lastNow   int64
}

// NewMonitor creates a monitor with the given configuration.
func NewMonitor(cfg Config) *Monitor {
	return &Monitor{
		cfg:     cfg.withDefaults(),
		jobs:    make(map[int]*jobState),
		lateBy:  make(map[string]int64),
		abandBy: make(map[string]int64),
	}
}

// state returns the job's record, creating it on first sight. Lazy creation
// lets the monitor attach to a plain simulation (no engine submissions):
// the first observer event adopts the job mid-flight.
func (m *Monitor) state(id int) *jobState {
	js := m.jobs[id]
	if js == nil {
		js = &jobState{id: id, fallbackBase: m.fallbacks}
		m.jobs[id] = js
	}
	return js
}

// record appends one trace event to the job's ring, coalescing consecutive
// identical events and dropping the oldest entry past the cap.
func (m *Monitor) record(js *jobState, at int64, kind, detail string) {
	if n := len(js.ring); n > 0 {
		last := &js.ring[n-1]
		if last.SimMS == at && last.Kind == kind && last.Detail == detail {
			if last.Count == 0 {
				last.Count = 1
			}
			last.Count++
			return
		}
	}
	if len(js.ring) >= m.cfg.TraceCap {
		copy(js.ring, js.ring[1:])
		js.ring = js.ring[:len(js.ring)-1]
		js.dropped++
	}
	js.ring = append(js.ring, TraceEvent{SimMS: at, Kind: kind, Detail: detail})
}

// --- Service-side (admission) events ---

// JobSubmitted records an intake submission. infeasible marks jobs whose
// SLA lower bound already exceeded the deadline at admission time.
func (m *Monitor) JobSubmitted(now int64, id int, infeasible bool) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	js := m.state(id)
	m.record(js, now, KindSubmitted, "")
	detail := ""
	if infeasible {
		js.infeasible = true
		detail = "infeasible"
	}
	m.record(js, now, KindAdmitted, detail)
}

// JobShed records a submission rejected at intake (admission check or
// backpressure); the reason lands in the trace so rejected IDs still
// explain themselves.
func (m *Monitor) JobShed(now int64, id int, reason string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	js := m.state(id)
	m.record(js, now, KindSubmitted, "")
	m.record(js, now, KindShed, reason)
	js.done = true
}

// JobWithdrawn records a queued submission pulled back out of the intake
// (a shard rebalancer migrating it elsewhere). Not an SLA miss: the job
// finishes on another shard, so no attribution is charged here.
func (m *Monitor) JobWithdrawn(now int64, id int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	js := m.state(id)
	m.record(js, now, KindWithdrawn, "")
	js.done = true
}

// OnReschedule is wired to core.Manager.SetRescheduleObserver: fallback
// rounds open a solver-degradation window covering every outstanding job.
func (m *Monitor) OnReschedule(now int64, reason string, fallback bool) {
	if m == nil || !fallback {
		return
	}
	m.mu.Lock()
	m.fallbacks++
	m.mu.Unlock()
}

// --- sim.Observer and extensions ---

// TaskStarted implements sim.Observer (no trace entry: start instants are
// recoverable from the placed events and would crowd the ring).
func (m *Monitor) TaskStarted(now int64, t *workload.Task, j *workload.Job, res int) {}

// TaskFinished implements sim.Observer.
func (m *Monitor) TaskFinished(now int64, t *workload.Task, j *workload.Job, res int) {}

// TaskScheduled implements sim.PlacementObserver.
func (m *Monitor) TaskScheduled(now int64, t *workload.Task, j *workload.Job, res int, start int64, replan bool) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	js := m.state(j.ID)
	switch {
	case js.failedTasks[t.ID]:
		delete(js.failedTasks, t.ID)
		m.record(js, now, KindTaskRetry, t.ID)
	case replan && js.placedOnce:
		m.record(js, now, KindReplanned, "")
	default:
		js.placedOnce = true
		m.record(js, now, KindPlaced, "")
	}
}

// TaskFailed implements sim.FaultObserver.
func (m *Monitor) TaskFailed(now int64, t *workload.Task, j *workload.Job, res int) {
	m.taskFault(now, t, j, KindTaskFail)
}

// TaskKilled implements sim.FaultObserver.
func (m *Monitor) TaskKilled(now int64, t *workload.Task, j *workload.Job, res int) {
	m.taskFault(now, t, j, KindTaskKill)
}

func (m *Monitor) taskFault(now int64, t *workload.Task, j *workload.Job, kind string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	js := m.state(j.ID)
	js.faultEvents++
	if js.failedTasks == nil {
		js.failedTasks = make(map[string]bool)
	}
	js.failedTasks[t.ID] = true
	m.record(js, now, kind, t.ID)
}

// ResourceDown implements sim.FaultObserver (cluster-level; no job trace).
func (m *Monitor) ResourceDown(now int64, res int) {}

// ResourceUp implements sim.FaultObserver.
func (m *Monitor) ResourceUp(now int64, res int) {}

// TaskSlowdown implements sim.SlowdownObserver.
func (m *Monitor) TaskSlowdown(now int64, t *workload.Task, j *workload.Job, res int, effExec, nominal int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	js := m.state(j.ID)
	js.faultEvents++
	m.record(js, now, KindStraggle, t.ID)
}

// JobCompleted implements sim.JobObserver: on-time completions close the
// trace; late ones are attributed and counted against the budget.
func (m *Monitor) JobCompleted(now int64, j *workload.Job, latenessMS int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	js := m.state(j.ID)
	js.done = true
	detail := "on_time"
	late := latenessMS > 0
	if late {
		detail = "late"
	}
	m.record(js, now, KindCompleted, detail)
	var attr Attribution
	if late {
		attr = Attribution{JobID: j.ID, Class: m.classify(js), Outcome: "late", LatenessMS: latenessMS}
		m.lateBy[attr.Class]++
		m.attrs = append(m.attrs, attr)
	}
	m.observeFinish(now, late)
	m.mu.Unlock()
	if late {
		m.emitAttribution(now, attr, now-j.Arrival)
	}
}

// JobAbandoned implements sim.JobObserver: every abandonment is an SLA miss.
func (m *Monitor) JobAbandoned(now int64, j *workload.Job) {
	if m == nil {
		return
	}
	m.mu.Lock()
	js := m.state(j.ID)
	js.done = true
	m.record(js, now, KindAbandoned, "")
	attr := Attribution{JobID: j.ID, Class: m.classify(js), Outcome: "abandoned", LatenessMS: now - j.Deadline}
	m.abandBy[attr.Class]++
	m.attrs = append(m.attrs, attr)
	m.observeFinish(now, true)
	m.mu.Unlock()
	m.emitAttribution(now, attr, now-j.Arrival)
}

// classify picks the dominant miss cause. Priority: a job that was doomed
// at admission blames admission regardless of later noise; fault damage
// outranks solver degradation (it delays the job directly); solver
// degradation outranks backlog (the schedule quality, not the load, is
// what slipped); backlog is the residual explanation. Callers hold mu.
func (m *Monitor) classify(js *jobState) string {
	switch {
	case js.infeasible:
		return ClassInfeasible
	case js.faultEvents > 0:
		return ClassFaultDelay
	case m.fallbacks > js.fallbackBase:
		return ClassSolverDegraded
	}
	return ClassQueuedBacklog
}

func (m *Monitor) emitAttribution(now int64, a Attribution, e2eMS int64) {
	tel := m.cfg.Telemetry
	if !tel.Enabled() {
		return
	}
	tel.Emit(now, "obs", "slo_attribution",
		obs.Int("job", a.JobID),
		obs.Str("class", a.Class),
		obs.Str("outcome", a.Outcome),
		obs.I64("lateness_ms", a.LatenessMS),
		obs.I64("e2e_ms", e2eMS),
	)
	tel.Add(CounterMiss+a.Class, 1)
	tel.Add("slo_miss_total", 1)
}

// observeFinish appends to the burn window and prunes it. Callers hold mu.
func (m *Monitor) observeFinish(now int64, miss bool) {
	m.window = append(m.window, finish{at: now, miss: miss})
	m.pruneLocked(now)
}

func (m *Monitor) pruneLocked(now int64) {
	if now > m.lastNow {
		m.lastNow = now
	}
	cut := m.lastNow - m.cfg.WindowMS
	i := 0
	for i < len(m.window) && m.window[i].at <= cut {
		i++
	}
	if i > 0 {
		m.window = append(m.window[:0], m.window[i:]...)
	}
}

// Burn returns the burn-monitor view as of simulated time now (pass the
// latest known sim time; it never moves the window backwards). Safe on nil.
func (m *Monitor) Burn(now int64) BurnInfo {
	if m == nil {
		return BurnInfo{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pruneLocked(now)
	info := BurnInfo{
		WindowMS:   m.cfg.WindowMS,
		MissBudget: m.cfg.MissBudget,
		MinSample:  m.cfg.MinSample,
		Finished:   len(m.window),
	}
	for _, f := range m.window {
		if f.miss {
			info.Missed++
		}
	}
	if info.Finished > 0 {
		info.MissRate = float64(info.Missed) / float64(info.Finished)
		info.BurnRate = info.MissRate / info.MissBudget
	}
	info.Burning = info.Finished >= info.MinSample && info.MissRate > info.MissBudget
	return info
}

// Trace returns a copy of the job's timeline plus how many older events
// were dropped past the ring cap. ok is false for unknown jobs. Safe on nil.
func (m *Monitor) Trace(jobID int) (events []TraceEvent, dropped int, ok bool) {
	if m == nil {
		return nil, 0, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	js := m.jobs[jobID]
	if js == nil {
		return nil, 0, false
	}
	return append([]TraceEvent(nil), js.ring...), js.dropped, true
}

// AttributionTotals returns copies of the per-class reconciliation maps.
// Safe on nil.
func (m *Monitor) AttributionTotals() Totals {
	t := Totals{LateByClass: map[string]int64{}, AbandonedByClass: map[string]int64{}}
	if m == nil {
		return t
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for k, v := range m.lateBy {
		t.LateByClass[k] = v
	}
	for k, v := range m.abandBy {
		t.AbandonedByClass[k] = v
	}
	return t
}

// Attributions returns every attribution recorded so far, in finish order.
// Safe on nil.
func (m *Monitor) Attributions() []Attribution {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Attribution(nil), m.attrs...)
}
