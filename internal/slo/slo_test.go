package slo

import (
	"fmt"
	"testing"

	"mrcprm/internal/core"
	"mrcprm/internal/faults"
	"mrcprm/internal/obs"
	"mrcprm/internal/sim"
	"mrcprm/internal/stats"
	"mrcprm/internal/workload"
)

func job(id int, arrival, deadline int64) *workload.Job {
	return &workload.Job{ID: id, Arrival: arrival, EarliestStart: arrival, Deadline: deadline}
}

func TestNilMonitorInert(t *testing.T) {
	var m *Monitor
	j := job(1, 0, 100)
	tk := &workload.Task{ID: "t"}
	m.JobSubmitted(0, 1, false)
	m.JobShed(0, 1, "x")
	m.OnReschedule(0, "arrival", true)
	m.TaskScheduled(0, tk, j, 0, 10, false)
	m.TaskFailed(5, tk, j, 0)
	m.TaskKilled(5, tk, j, 0)
	m.TaskSlowdown(5, tk, j, 0, 20, 10)
	m.JobCompleted(50, j, -50)
	m.JobAbandoned(60, j)
	if b := m.Burn(100); b.Burning {
		t.Fatal("nil monitor burning")
	}
	if _, _, ok := m.Trace(1); ok {
		t.Fatal("nil monitor returned a trace")
	}
	tot := m.AttributionTotals()
	if len(tot.LateByClass) != 0 || len(tot.AbandonedByClass) != 0 {
		t.Fatal("nil monitor has totals")
	}
	if a := m.Attributions(); a != nil {
		t.Fatal("nil monitor has attributions")
	}
}

func TestTraceLifecycleAndCoalescing(t *testing.T) {
	m := NewMonitor(Config{})
	j := job(7, 0, 1000)
	m.JobSubmitted(0, 7, false)
	tasks := []*workload.Task{{ID: "m0"}, {ID: "m1"}, {ID: "m2"}}
	for _, tk := range tasks {
		m.TaskScheduled(0, tk, j, 0, 10, false)
	}
	m.TaskScheduled(5, tasks[1], j, 1, 20, true)
	m.TaskFailed(30, tasks[2], j, 0)
	m.TaskScheduled(31, tasks[2], j, 1, 40, false)
	m.JobCompleted(900, j, -100)

	events, dropped, ok := m.Trace(7)
	if !ok {
		t.Fatal("trace missing")
	}
	if dropped != 0 {
		t.Fatalf("dropped = %d, want 0", dropped)
	}
	kinds := make([]string, len(events))
	for i, e := range events {
		kinds[i] = e.Kind
	}
	want := []string{KindSubmitted, KindAdmitted, KindPlaced, KindReplanned, KindTaskFail, KindTaskRetry, KindCompleted}
	if fmt.Sprint(kinds) != fmt.Sprint(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	// The three same-instant placements coalesced into one entry.
	if events[2].Count != 3 {
		t.Fatalf("placed count = %d, want 3", events[2].Count)
	}
	if events[6].Detail != "on_time" {
		t.Fatalf("completed detail = %q, want on_time", events[6].Detail)
	}
	// On-time completion must not be attributed.
	if n := len(m.Attributions()); n != 0 {
		t.Fatalf("on-time job attributed %d times", n)
	}
}

func TestTraceRingCap(t *testing.T) {
	m := NewMonitor(Config{TraceCap: 4})
	j := job(1, 0, 10)
	for i := 0; i < 10; i++ {
		m.TaskFailed(int64(i), &workload.Task{ID: fmt.Sprintf("t%d", i)}, j, 0)
	}
	events, dropped, _ := m.Trace(1)
	if len(events) != 4 {
		t.Fatalf("ring len = %d, want 4", len(events))
	}
	if dropped != 6 {
		t.Fatalf("dropped = %d, want 6", dropped)
	}
	if events[0].Detail != "t6" || events[3].Detail != "t9" {
		t.Fatalf("ring kept wrong tail: %v", events)
	}
}

func TestClassificationPriority(t *testing.T) {
	tk := &workload.Task{ID: "x"}
	cases := []struct {
		name  string
		setup func(m *Monitor, j *workload.Job)
		want  string
	}{
		{"backlog_default", func(m *Monitor, j *workload.Job) {}, ClassQueuedBacklog},
		{"solver_degraded", func(m *Monitor, j *workload.Job) {
			m.OnReschedule(10, "arrival", true)
		}, ClassSolverDegraded},
		{"fault_beats_solver", func(m *Monitor, j *workload.Job) {
			m.OnReschedule(10, "arrival", true)
			m.TaskFailed(20, tk, j, 0)
		}, ClassFaultDelay},
		{"straggle_is_fault", func(m *Monitor, j *workload.Job) {
			m.TaskSlowdown(20, tk, j, 0, 30, 10)
		}, ClassFaultDelay},
		{"infeasible_beats_all", func(m *Monitor, j *workload.Job) {
			m.TaskFailed(20, tk, j, 0)
			m.OnReschedule(10, "arrival", true)
		}, ClassInfeasible},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := NewMonitor(Config{})
			j := job(1, 0, 50)
			m.JobSubmitted(0, 1, tc.name == "infeasible_beats_all")
			tc.setup(m, j)
			m.JobCompleted(100, j, 50)
			attrs := m.Attributions()
			if len(attrs) != 1 {
				t.Fatalf("attributions = %d, want 1", len(attrs))
			}
			if attrs[0].Class != tc.want {
				t.Fatalf("class = %s, want %s", attrs[0].Class, tc.want)
			}
		})
	}
}

// TestFallbackBeforeFirstSightIsInvisible: a fallback round that ended
// before the job was first seen must not taint its classification.
func TestFallbackBeforeFirstSightIsInvisible(t *testing.T) {
	m := NewMonitor(Config{})
	m.OnReschedule(5, "arrival", true) // degradation before job 2 exists
	j := job(2, 10, 50)
	m.JobSubmitted(10, 2, false)
	m.JobCompleted(100, j, 50)
	attrs := m.Attributions()
	if len(attrs) != 1 || attrs[0].Class != ClassQueuedBacklog {
		t.Fatalf("attrs = %+v, want one queued_backlog", attrs)
	}
}

func TestBurnMonitorWindowAndGate(t *testing.T) {
	m := NewMonitor(Config{MissBudget: 0.2, WindowMS: 1000, MinSample: 5})
	// Four misses out of four finishes: rate 1.0 but below MinSample.
	for i := 0; i < 4; i++ {
		m.JobAbandoned(int64(i*10), job(i, 0, 1))
	}
	if b := m.Burn(40); b.Burning {
		t.Fatalf("burning below MinSample: %+v", b)
	}
	// Fifth finish (on time) crosses the gate: 4/5 misses > 0.2 budget.
	m.JobCompleted(50, job(10, 0, 1000), -950)
	b := m.Burn(50)
	if !b.Burning || b.Finished != 5 || b.Missed != 4 {
		t.Fatalf("expected burning 4/5: %+v", b)
	}
	if b.BurnRate < 3.9 || b.BurnRate > 4.1 {
		t.Fatalf("burn rate = %v, want 4.0", b.BurnRate)
	}
	// The window slides: after the misses age out, only recent on-time
	// finishes remain and the alarm clears.
	for i := 0; i < 6; i++ {
		m.JobCompleted(2000+int64(i), job(20+i, 0, 1e9), -1)
	}
	b = m.Burn(2010)
	if b.Burning {
		t.Fatalf("still burning after window slid: %+v", b)
	}
	if b.Missed != 0 || b.Finished != 6 {
		t.Fatalf("window contents = %+v, want 6 finishes 0 missed", b)
	}
	// Burn never moves backwards in time.
	if b2 := m.Burn(100); b2.Finished != b.Finished {
		t.Fatalf("Burn with stale now rewound the window: %+v", b2)
	}
}

func TestShedTrace(t *testing.T) {
	m := NewMonitor(Config{})
	m.JobShed(5, 3, "overloaded")
	events, _, ok := m.Trace(3)
	if !ok || len(events) != 2 || events[1].Kind != KindShed || events[1].Detail != "overloaded" {
		t.Fatalf("shed trace = %v ok=%v", events, ok)
	}
}

// TestFaultSweepReconciliation is the acceptance check: across a sweep of
// failure rates, every late completion and every abandonment carries
// exactly one attribution class, and the per-class totals reconcile with
// the simulator's own LateJobs / JobsAbandoned counters.
func TestFaultSweepReconciliation(t *testing.T) {
	cfg := workload.DefaultSynthetic()
	cluster := sim.Cluster{
		NumResources: cfg.NumResources,
		MapSlots:     cfg.MapSlotsPerResource,
		ReduceSlots:  cfg.ReduceSlotsPerResource,
	}
	classSet := map[string]bool{}
	for _, c := range Classes() {
		classSet[c] = true
	}
	for _, rate := range []float64{0, 0.05, 0.25} {
		rate := rate
		t.Run(fmt.Sprintf("failrate=%g", rate), func(t *testing.T) {
			jobs, err := cfg.Generate(30, stats.NewStream(7, 0xfeed))
			if err != nil {
				t.Fatal(err)
			}
			mcfg := core.DeterministicConfig()
			mcfg.NodeLimit = 3000
			rm := core.New(cluster, mcfg)
			s, err := sim.New(cluster, rm, jobs)
			if err != nil {
				t.Fatal(err)
			}
			if rate > 0 {
				plan, err := faults.New(faults.Config{
					TaskFailureProb: rate,
					StragglerProb:   rate / 2,
					Seed1:           7,
					Seed2:           0xfa1157,
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := s.SetFaultInjector(plan); err != nil {
					t.Fatal(err)
				}
			}
			tel := obs.New(&obs.MemorySink{})
			mon := NewMonitor(Config{Telemetry: tel})
			rm.SetRescheduleObserver(mon.OnReschedule)
			s.SetObserver(sim.TeeObservers(mon))
			metrics, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			attrs := mon.Attributions()
			var late, abandoned int
			seen := map[int]int{}
			for _, a := range attrs {
				if !classSet[a.Class] {
					t.Fatalf("unknown class %q on job %d", a.Class, a.JobID)
				}
				seen[a.JobID]++
				switch a.Outcome {
				case "late":
					late++
				case "abandoned":
					abandoned++
				default:
					t.Fatalf("unknown outcome %q", a.Outcome)
				}
			}
			for id, n := range seen {
				if n != 1 {
					t.Fatalf("job %d attributed %d times", id, n)
				}
			}
			if late != metrics.LateJobs {
				t.Fatalf("late attributions = %d, sim LateJobs = %d", late, metrics.LateJobs)
			}
			if abandoned != metrics.JobsAbandoned {
				t.Fatalf("abandoned attributions = %d, sim JobsAbandoned = %d", abandoned, metrics.JobsAbandoned)
			}
			tot := mon.AttributionTotals()
			var sumLate, sumAband int64
			for _, v := range tot.LateByClass {
				sumLate += v
			}
			for _, v := range tot.AbandonedByClass {
				sumAband += v
			}
			if sumLate != int64(metrics.LateJobs) || sumAband != int64(metrics.JobsAbandoned) {
				t.Fatalf("totals (%d late, %d abandoned) do not reconcile with metrics (%d, %d)",
					sumLate, sumAband, metrics.LateJobs, metrics.JobsAbandoned)
			}
			// The emitted counter family reconciles too.
			var counterSum int64
			for _, c := range Classes() {
				counterSum += tel.Counter(CounterMiss + c)
			}
			if counterSum != tel.Counter("slo_miss_total") {
				t.Fatalf("counter family sum %d != slo_miss_total %d",
					counterSum, tel.Counter("slo_miss_total"))
			}
			if counterSum != sumLate+sumAband {
				t.Fatalf("counters %d != attribution totals %d", counterSum, sumLate+sumAband)
			}
			// At positive fault rates with misses present, fault damage
			// must be visible in the attribution breakdown.
			if rate >= 0.25 && late+abandoned > 0 {
				if tot.LateByClass[ClassFaultDelay]+tot.AbandonedByClass[ClassFaultDelay] == 0 {
					t.Fatalf("no fault_delay attributions at failrate %g: %+v", rate, tot)
				}
			}
			t.Logf("failrate=%g: %d late, %d abandoned, totals=%+v",
				rate, metrics.LateJobs, metrics.JobsAbandoned, tot)
		})
	}
}
