package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"mrcprm/internal/core"
	"mrcprm/internal/sim"
	"mrcprm/internal/workload"
)

func runTraced(t *testing.T) (*Recorder, sim.Cluster) {
	t.Helper()
	cluster := sim.Cluster{NumResources: 2, MapSlots: 1, ReduceSlots: 1}
	j := &workload.Job{ID: 0, Arrival: 0, EarliestStart: 0, Deadline: 1_000_000}
	j.MapTasks = []*workload.Task{
		{ID: "t0_m1", JobID: 0, Type: workload.MapTask, Exec: 5000, Req: 1},
		{ID: "t0_m2", JobID: 0, Type: workload.MapTask, Exec: 7000, Req: 1},
	}
	j.ReduceTasks = []*workload.Task{
		{ID: "t0_r1", JobID: 0, Type: workload.ReduceTask, Exec: 3000, Req: 1},
	}
	cfg := core.DefaultConfig()
	cfg.SolveTimeLimit = 0
	s, err := sim.New(cluster, core.New(cluster, cfg), []*workload.Job{j})
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder()
	s.SetObserver(rec)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return rec, cluster
}

func TestRecorderCapturesLifecycle(t *testing.T) {
	rec, _ := runTraced(t)
	// 3 tasks × (start + finish).
	if rec.Len() != 6 {
		t.Fatalf("%d events, want 6", rec.Len())
	}
	starts, finishes := 0, 0
	for _, e := range rec.Events() {
		switch e.Kind {
		case TaskStart:
			starts++
		case TaskFinish:
			finishes++
		}
	}
	if starts != 3 || finishes != 3 {
		t.Fatalf("starts=%d finishes=%d", starts, finishes)
	}
}

func TestCSVExport(t *testing.T) {
	rec, _ := runTraced(t)
	var buf bytes.Buffer
	if err := rec.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 7 { // header + 6 events
		t.Fatalf("%d CSV lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "time_ms,kind,task") {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.Contains(buf.String(), "t0_r1") {
		t.Fatal("reduce task missing from CSV")
	}
}

func TestJSONExportRoundTrips(t *testing.T) {
	rec, _ := runTraced(t)
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var events []Event
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) != rec.Len() {
		t.Fatalf("round trip lost events: %d vs %d", len(events), rec.Len())
	}
}

func TestSlotProfile(t *testing.T) {
	rec, _ := runTraced(t)
	prof := rec.SlotProfile(workload.MapTask)
	// Two maps in parallel [0,5000) and [0,7000): busy 2 then 1.
	if len(prof) != 2 {
		t.Fatalf("profile %+v", prof)
	}
	if prof[0].Busy != 2 || prof[0].FromMS != 0 || prof[0].ToMS != 5000 {
		t.Fatalf("segment 0: %+v", prof[0])
	}
	if prof[1].Busy != 1 || prof[1].ToMS != 7000 {
		t.Fatalf("segment 1: %+v", prof[1])
	}
	if rec.PeakBusy(workload.MapTask) != 2 {
		t.Fatal("peak busy")
	}
	red := rec.SlotProfile(workload.ReduceTask)
	if len(red) != 1 || red[0].FromMS != 7000 || red[0].ToMS != 10_000 {
		t.Fatalf("reduce profile %+v", red)
	}
}

func TestGanttRows(t *testing.T) {
	rec, cluster := runTraced(t)
	rows := rec.GanttRows(cluster, 40)
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	joined := strings.Join(rows, "\n")
	if !strings.Contains(joined, "0") {
		t.Fatal("no occupancy marks in gantt")
	}
	if rec.GanttRows(cluster, 0) != nil {
		t.Fatal("zero width should return nil")
	}
	if NewRecorder().GanttRows(cluster, 40) != nil {
		t.Fatal("empty recorder should return nil")
	}
}
