// Package trace records the executed schedule of a simulation run — every
// task start and finish with its resource assignment — and exports it as
// CSV or JSON, or digests it into slot-occupancy profiles. It plugs into
// the simulator through sim.Simulator.SetObserver.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"mrcprm/internal/sim"
	"mrcprm/internal/workload"
)

// EventKind distinguishes task lifecycle and fault events.
type EventKind string

// Event kinds. The first two are the fault-free task lifecycle; the rest
// are the failure-path events introduced with the fault-injection layer.
const (
	TaskStart  EventKind = "start"
	TaskFinish EventKind = "finish"
	// TaskFail records a running attempt failing mid-execution; TaskKill a
	// running attempt killed by a resource outage.
	TaskFail EventKind = "fail"
	TaskKill EventKind = "kill"
	// ResourceDown / ResourceUp bracket a resource outage. They carry no
	// task: TaskID is empty and JobID is -1.
	ResourceDown EventKind = "down"
	ResourceUp   EventKind = "up"
)

// Event is one recorded schedule event. For resource outage events
// (ResourceDown/ResourceUp) the task fields are empty and JobID is -1.
type Event struct {
	TimeMS   int64     `json:"timeMs"`
	Kind     EventKind `json:"kind"`
	TaskID   string    `json:"taskId,omitempty"`
	JobID    int       `json:"jobId"`
	TaskType string    `json:"taskType,omitempty"`
	Resource int       `json:"resource"`
	ExecMS   int64     `json:"execMs"`
}

// Recorder implements sim.Observer and accumulates the run's events in
// order.
type Recorder struct {
	events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

var _ sim.FaultObserver = (*Recorder)(nil)

// TaskStarted implements sim.Observer.
func (r *Recorder) TaskStarted(now int64, t *workload.Task, j *workload.Job, res int) {
	r.events = append(r.events, Event{
		TimeMS: now, Kind: TaskStart, TaskID: t.ID, JobID: j.ID,
		TaskType: t.Type.String(), Resource: res, ExecMS: t.Exec,
	})
}

// TaskFinished implements sim.Observer.
func (r *Recorder) TaskFinished(now int64, t *workload.Task, j *workload.Job, res int) {
	r.events = append(r.events, Event{
		TimeMS: now, Kind: TaskFinish, TaskID: t.ID, JobID: j.ID,
		TaskType: t.Type.String(), Resource: res, ExecMS: t.Exec,
	})
}

// TaskFailed implements sim.FaultObserver: a running attempt failed
// mid-execution.
func (r *Recorder) TaskFailed(now int64, t *workload.Task, j *workload.Job, res int) {
	r.events = append(r.events, Event{
		TimeMS: now, Kind: TaskFail, TaskID: t.ID, JobID: j.ID,
		TaskType: t.Type.String(), Resource: res, ExecMS: t.Exec,
	})
}

// TaskKilled implements sim.FaultObserver: a resource outage killed a
// running attempt.
func (r *Recorder) TaskKilled(now int64, t *workload.Task, j *workload.Job, res int) {
	r.events = append(r.events, Event{
		TimeMS: now, Kind: TaskKill, TaskID: t.ID, JobID: j.ID,
		TaskType: t.Type.String(), Resource: res, ExecMS: t.Exec,
	})
}

// ResourceDown implements sim.FaultObserver: an outage began.
func (r *Recorder) ResourceDown(now int64, res int) {
	r.events = append(r.events, Event{TimeMS: now, Kind: ResourceDown, JobID: -1, Resource: res})
}

// ResourceUp implements sim.FaultObserver: an outage ended.
func (r *Recorder) ResourceUp(now int64, res int) {
	r.events = append(r.events, Event{TimeMS: now, Kind: ResourceUp, JobID: -1, Resource: res})
}

// Events returns the recorded events in simulation order.
func (r *Recorder) Events() []Event { return r.events }

// Len returns the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// WriteCSV exports the events with a header row.
func (r *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_ms", "kind", "task", "job", "type", "resource", "exec_ms"}); err != nil {
		return err
	}
	for _, e := range r.events {
		rec := []string{
			strconv.FormatInt(e.TimeMS, 10),
			string(e.Kind),
			e.TaskID,
			strconv.Itoa(e.JobID),
			e.TaskType,
			strconv.Itoa(e.Resource),
			strconv.FormatInt(e.ExecMS, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON exports the events as a JSON array.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.events)
}

// ProfilePoint is one step of a piecewise-constant occupancy profile:
// Busy slots of the given kind are in use during [FromMS, ToMS).
type ProfilePoint struct {
	FromMS int64
	ToMS   int64
	Busy   int64
}

// SlotProfile digests the events into the exact piecewise-constant number
// of busy slots of the given task type over time.
func (r *Recorder) SlotProfile(tt workload.TaskType) []ProfilePoint {
	type delta struct {
		at int64
		d  int64
	}
	var ds []delta
	for _, e := range r.events {
		if e.TaskType != tt.String() {
			continue
		}
		switch e.Kind {
		case TaskStart:
			ds = append(ds, delta{e.TimeMS, 1})
		case TaskFinish, TaskFail, TaskKill:
			// Failed and killed attempts stop occupying their slots too.
			ds = append(ds, delta{e.TimeMS, -1})
		}
	}
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].at != ds[j].at {
			return ds[i].at < ds[j].at
		}
		return ds[i].d < ds[j].d
	})
	var out []ProfilePoint
	var busy int64
	i := 0
	for i < len(ds) {
		at := ds[i].at
		for i < len(ds) && ds[i].at == at {
			busy += ds[i].d
			i++
		}
		if n := len(out); n > 0 {
			out[n-1].ToMS = at
		}
		if i < len(ds) {
			out = append(out, ProfilePoint{FromMS: at, Busy: busy})
		}
	}
	// Trim zero-occupancy tail segments.
	for len(out) > 0 && out[len(out)-1].Busy == 0 {
		out = out[:len(out)-1]
	}
	return out
}

// PeakBusy returns the maximum simultaneous busy slots of the given kind.
func (r *Recorder) PeakBusy(tt workload.TaskType) int64 {
	var peak int64
	for _, p := range r.SlotProfile(tt) {
		if p.Busy > peak {
			peak = p.Busy
		}
	}
	return peak
}

// GanttRows renders one text row per resource with job digits marking
// occupancy — a compact visual of the executed schedule for CLI output.
func (r *Recorder) GanttRows(cluster sim.Cluster, width int) []string {
	if width <= 0 || len(r.events) == 0 {
		return nil
	}
	var maxEnd int64
	type placed struct {
		from, to int64
		job      int
		res      int
	}
	open := map[string]Event{}
	var spans []placed
	for _, e := range r.events {
		switch e.Kind {
		case TaskStart:
			open[e.TaskID] = e
		case TaskFinish, TaskFail, TaskKill:
			if st, ok := open[e.TaskID]; ok {
				spans = append(spans, placed{st.TimeMS, e.TimeMS, e.JobID, e.Resource})
				delete(open, e.TaskID)
				if e.TimeMS > maxEnd {
					maxEnd = e.TimeMS
				}
			}
		}
	}
	if maxEnd == 0 {
		return nil
	}
	rows := make([][]byte, cluster.NumResources)
	for i := range rows {
		rows[i] = []byte(repeat('.', width))
	}
	scale := float64(width) / float64(maxEnd)
	for _, sp := range spans {
		from := int(float64(sp.from) * scale)
		to := int(float64(sp.to) * scale)
		if to <= from {
			to = from + 1
		}
		mark := byte('0' + sp.job%10)
		for x := from; x < to && x < width; x++ {
			rows[sp.res][x] = mark
		}
	}
	out := make([]string, len(rows))
	for i, row := range rows {
		out[i] = fmt.Sprintf("r%-3d %s", i, row)
	}
	return out
}

func repeat(b byte, n int) string {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = b
	}
	return string(buf)
}
