// Package minedf implements the MinEDF-WC baseline of Verma et al. that
// the paper compares MRCP-RM against (Section VI.B.1, reference [8]).
//
// MinEDF-WC is a slot-based Hadoop-style scheduler:
//
//   - Jobs are ordered by earliest deadline first (EDF).
//   - Each job receives the minimum number of map and reduce slots that its
//     ARIA performance model predicts it needs to finish by its deadline.
//   - Spare slots are allocated work-conservingly to active jobs in EDF
//     order, and are de-allocated (returned at the next task boundary) when
//     a newly arriving job needs them for its minimum allocation.
//
// The completion-time model is the ARIA bound pair: with n tasks of mean
// duration avg and maximum max on k slots, the phase duration lies between
// n*avg/k (lower) and (n-1)*avg/k + max (upper); the model uses the average
// of the bounds. The minimum allocation is the smallest (s_m, s_r) pair,
// by total slots, whose estimate meets the deadline.
package minedf

import (
	"fmt"
	"sort"
	"time"

	"mrcprm/internal/sim"
	"mrcprm/internal/workload"
)

// phaseProfile summarizes one phase (map or reduce) of a job.
type phaseProfile struct {
	n   int64 // remaining tasks
	avg float64
	max float64
}

// duration estimates the phase duration on k slots using the ARIA
// average-of-bounds model; k must be positive when n > 0.
func (p phaseProfile) duration(k int64) float64 {
	if p.n == 0 {
		return 0
	}
	lower := float64(p.n) * p.avg / float64(k)
	upper := float64(p.n-1)*p.avg/float64(k) + p.max
	return (lower + upper) / 2
}

func profileOf(tasks []*workload.Task) phaseProfile {
	p := phaseProfile{n: int64(len(tasks))}
	if p.n == 0 {
		return p
	}
	var sum int64
	for _, t := range tasks {
		sum += t.Exec
		if f := float64(t.Exec); f > p.max {
			p.max = f
		}
	}
	p.avg = float64(sum) / float64(p.n)
	return p
}

// DefaultMaxTaskRetries is the per-task retry cap installed by New; it
// matches core.DefaultConfig so the head-to-head comparison under faults
// stays fair.
const DefaultMaxTaskRetries = 4

// jobState tracks one active job.
type jobState struct {
	job *workload.Job

	pendingMaps []*workload.Task // not yet dispatched, longest first
	pendingReds []*workload.Task
	runningMaps int64
	runningReds int64
	mapsLeft    int // running or pending map tasks
	tasksLeft   int

	minMap int64 // current minimum slot allocation
	minRed int64

	// retries counts failed attempts charged against the job's budget;
	// abandoned marks a job given up on while its last attempts drain.
	retries   int
	abandoned bool
}

func (js *jobState) mapsDone() bool { return js.mapsLeft == 0 }

// Manager is the MinEDF-WC resource manager; it implements sim.ResourceManager.
type Manager struct {
	cluster  sim.Cluster
	active   []*jobState // EDF order maintained on insert
	byTask   map[*workload.Task]*jobState
	deferred []*workload.Job // arrived, earliest start in the future

	// Per-resource slot availability mirrors, maintained synchronously so
	// the dispatch loop can fill several slots in one invocation. A down
	// resource's mirrors are zeroed so dispatch skips it.
	freeMap []int64
	freeRed []int64

	// MaxTaskRetries caps failed attempts of one task, and JobRetryBudget
	// caps them across a whole job; exceeding either abandons the job.
	// Zero means unlimited. Adjust before the simulation starts.
	MaxTaskRetries int
	JobRetryBudget int
}

// New creates a MinEDF-WC manager for the given cluster.
func New(cluster sim.Cluster) *Manager {
	m := &Manager{
		cluster:        cluster,
		byTask:         make(map[*workload.Task]*jobState),
		freeMap:        make([]int64, cluster.NumResources),
		freeRed:        make([]int64, cluster.NumResources),
		MaxTaskRetries: DefaultMaxTaskRetries,
	}
	for r := 0; r < cluster.NumResources; r++ {
		m.freeMap[r] = cluster.MapSlots
		m.freeRed[r] = cluster.ReduceSlots
	}
	return m
}

// Name implements sim.ResourceManager.
func (m *Manager) Name() string { return "MinEDF-WC" }

// OnJobArrival implements sim.ResourceManager.
func (m *Manager) OnJobArrival(ctx sim.Context, j *workload.Job) error {
	started := time.Now()
	if j.EarliestStart > ctx.Now() {
		m.deferred = append(m.deferred, j)
		ctx.SetTimer(j.EarliestStart)
	} else {
		m.admit(j)
	}
	err := m.dispatch(ctx)
	ctx.AddOverhead(time.Since(started))
	return err
}

// OnTimer implements sim.ResourceManager: it admits deferred jobs whose
// earliest start time has arrived.
func (m *Manager) OnTimer(ctx sim.Context) error {
	started := time.Now()
	rest := m.deferred[:0]
	for _, j := range m.deferred {
		if j.EarliestStart <= ctx.Now() {
			m.admit(j)
		} else {
			rest = append(rest, j)
		}
	}
	m.deferred = rest
	err := m.dispatch(ctx)
	ctx.AddOverhead(time.Since(started))
	return err
}

// OnTaskComplete implements sim.ResourceManager. Completions of abandoned
// jobs' draining attempts still free their mirrored slots; their output is
// discarded.
func (m *Manager) OnTaskComplete(ctx sim.Context, t *workload.Task) error {
	started := time.Now()
	js, ok := m.byTask[t]
	if !ok {
		return fmt.Errorf("minedf: completion for unknown task %s", t.ID)
	}
	res, _, _ := ctx.Placement(t)
	if t.Type == workload.MapTask {
		js.runningMaps--
		js.mapsLeft--
		m.freeMap[res]++
	} else {
		js.runningReds--
		m.freeRed[res]++
	}
	if !js.abandoned {
		js.tasksLeft--
		if js.tasksLeft == 0 {
			m.remove(js)
		}
	}
	err := m.dispatch(ctx)
	ctx.AddOverhead(time.Since(started))
	return err
}

// OnTaskFailed implements sim.FaultHooks: the attempt's slot is freed in
// the mirrors and the task re-queued for another attempt, in EDF position
// automatically (its job keeps its place in the active order). Exhausted
// retry budgets abandon the job.
func (m *Manager) OnTaskFailed(ctx sim.Context, t *workload.Task, res int) error {
	started := time.Now()
	js, ok := m.byTask[t]
	if !ok {
		return fmt.Errorf("minedf: failure for unknown task %s", t.ID)
	}
	if t.Type == workload.MapTask {
		js.runningMaps--
		m.freeMap[res]++
	} else {
		js.runningReds--
		m.freeRed[res]++
	}
	if !js.abandoned {
		if err := m.chargeRetry(ctx, js, t); err != nil {
			return err
		}
	}
	err := m.dispatch(ctx)
	ctx.AddOverhead(time.Since(started))
	return err
}

// OnResourceDown implements sim.FaultHooks: killed attempts are charged
// against retry budgets and re-queued, evacuated placements re-queued for
// free, and the down resource's slot mirrors zeroed so dispatch skips it.
func (m *Manager) OnResourceDown(ctx sim.Context, res int, killed, evacuated []*workload.Task) error {
	started := time.Now()
	for _, t := range killed {
		js, ok := m.byTask[t]
		if !ok {
			return fmt.Errorf("minedf: outage kill for unknown task %s", t.ID)
		}
		if t.Type == workload.MapTask {
			js.runningMaps--
		} else {
			js.runningReds--
		}
		if js.abandoned {
			continue
		}
		if err := m.chargeRetry(ctx, js, t); err != nil {
			return err
		}
	}
	for _, t := range evacuated {
		js, ok := m.byTask[t]
		if !ok {
			return fmt.Errorf("minedf: evacuation of unknown task %s", t.ID)
		}
		if t.Type == workload.MapTask {
			js.runningMaps--
		} else {
			js.runningReds--
		}
		if !js.abandoned {
			m.requeue(js, t)
		}
	}
	m.freeMap[res], m.freeRed[res] = 0, 0
	err := m.dispatch(ctx)
	ctx.AddOverhead(time.Since(started))
	return err
}

// OnResourceUp implements sim.FaultHooks: the repaired resource's slots
// become available again (nothing can be running there after an outage).
func (m *Manager) OnResourceUp(ctx sim.Context, res int) error {
	started := time.Now()
	m.freeMap[res] = m.cluster.MapSlots
	m.freeRed[res] = m.cluster.ReduceSlots
	err := m.dispatch(ctx)
	ctx.AddOverhead(time.Since(started))
	return err
}

// OnTaskSlowdown implements sim.FaultHooks as a no-op: MinEDF-WC dispatches
// purely reactively (tasks start at the current instant and slots free on
// actual completion events), so an overrunning attempt cannot collide with
// pre-planned work. Only the ARIA estimate degrades, which MinEDF-WC
// cannot act on anyway.
func (m *Manager) OnTaskSlowdown(sim.Context, *workload.Task) error { return nil }

// chargeRetry books one failed attempt: the task is re-queued unless its
// job exhausted a retry budget, in which case the job is abandoned.
func (m *Manager) chargeRetry(ctx sim.Context, js *jobState, t *workload.Task) error {
	js.retries++
	over := (m.MaxTaskRetries > 0 && ctx.Attempts(t) > m.MaxTaskRetries) ||
		(m.JobRetryBudget > 0 && js.retries > m.JobRetryBudget)
	if !over {
		m.requeue(js, t)
		return nil
	}
	return m.abandon(ctx, js)
}

// requeue returns a failed/killed/evacuated task to its pending queue.
func (m *Manager) requeue(js *jobState, t *workload.Task) {
	if t.Type == workload.MapTask {
		js.pendingMaps = append(js.pendingMaps, t)
	} else {
		js.pendingReds = append(js.pendingReds, t)
	}
}

// abandon gives up on a job: dispatched-but-not-started placements are
// reconciled back into the slot mirrors, the simulator drops its pending
// work, and the job leaves the EDF order. Still-running attempts drain
// through OnTaskComplete/OnTaskFailed with their output discarded.
func (m *Manager) abandon(ctx sim.Context, js *jobState) error {
	for _, t := range js.job.Tasks() {
		if ctx.Started(t) || ctx.Completed(t) {
			continue
		}
		if res, _, ok := ctx.Placement(t); ok {
			if t.Type == workload.MapTask {
				js.runningMaps--
				m.freeMap[res]++
			} else {
				js.runningReds--
				m.freeRed[res]++
			}
		}
	}
	if err := ctx.AbandonJob(js.job); err != nil {
		return err
	}
	js.abandoned = true
	js.pendingMaps, js.pendingReds = nil, nil
	for i, other := range m.active {
		if other == js {
			m.active = append(m.active[:i], m.active[i+1:]...)
			break
		}
	}
	// byTask entries stay: late fail/kill notifications for this job's
	// draining attempts must still resolve. Entries for tasks that never
	// run again are reclaimed when the simulation ends with the manager.
	return nil
}

// admit registers a job as active, in EDF position.
func (m *Manager) admit(j *workload.Job) {
	js := &jobState{
		job:         j,
		pendingMaps: append([]*workload.Task(nil), j.MapTasks...),
		pendingReds: append([]*workload.Task(nil), j.ReduceTasks...),
		mapsLeft:    len(j.MapTasks),
		tasksLeft:   j.NumTasks(),
	}
	// Tasks dispatch in their natural order: like Hadoop, MinEDF-WC does
	// not know task durations at dispatch time (the ARIA profile only
	// feeds the allocation model), so it cannot run longest-first.
	for _, t := range j.Tasks() {
		m.byTask[t] = js
	}
	pos := sort.Search(len(m.active), func(i int) bool {
		return m.active[i].job.Deadline > j.Deadline
	})
	m.active = append(m.active, nil)
	copy(m.active[pos+1:], m.active[pos:])
	m.active[pos] = js
}

func (m *Manager) remove(js *jobState) {
	for i, other := range m.active {
		if other == js {
			m.active = append(m.active[:i], m.active[i+1:]...)
			break
		}
	}
	for _, t := range js.job.Tasks() {
		delete(m.byTask, t)
	}
}

// updateAllocations recomputes each active job's minimum slot allocation
// from its remaining work and time to deadline.
func (m *Manager) updateAllocations(now int64) {
	for _, js := range m.active {
		js.minMap, js.minRed = m.minAllocation(js, now)
	}
}

// minAllocation finds the smallest (s_m, s_r) meeting the deadline under
// the ARIA model; if the deadline is unreachable even with the whole
// cluster, it returns the maximum allocation (the job is served best
// effort, matching MinEDF-WC's behavior for infeasible jobs).
func (m *Manager) minAllocation(js *jobState, now int64) (int64, int64) {
	mapsP := profileOf(js.pendingMaps)
	redsP := profileOf(js.pendingReds)
	totalMap := m.cluster.TotalMapSlots()
	totalRed := m.cluster.TotalReduceSlots()
	budget := float64(js.job.Deadline - now)
	if js.mapsLeft > 0 && len(js.pendingMaps) < js.mapsLeft {
		// Maps still running contribute to the barrier; approximate their
		// remainder with one average map duration.
		budget -= mapsP.avg
	}

	bestM, bestR := int64(-1), int64(-1)
	bestTotal := int64(1<<63 - 1)
	maxM := min64(totalMap, max64(mapsP.n, 1))
	for sm := int64(1); sm <= maxM; sm++ {
		remain := budget - mapsP.duration(sm)
		if remain < 0 {
			continue
		}
		var sr int64
		if redsP.n > 0 {
			sr = -1
			maxR := min64(totalRed, redsP.n)
			for k := int64(1); k <= maxR; k++ {
				if redsP.duration(k) <= remain {
					sr = k
					break
				}
			}
			if sr < 0 {
				continue
			}
		}
		if sm+sr < bestTotal {
			bestM, bestR, bestTotal = sm, sr, sm+sr
		}
	}
	if bestM < 0 {
		// Infeasible: run wide open.
		bestM = min64(totalMap, max64(mapsP.n, 1))
		bestR = min64(totalRed, redsP.n)
	}
	return bestM, bestR
}

// dispatch fills free slots: a first pass honors minimum allocations in
// EDF order, a second pass is work-conserving.
func (m *Manager) dispatch(ctx sim.Context) error {
	now := ctx.Now()
	m.updateAllocations(now)
	for _, workConserving := range []bool{false, true} {
		for _, js := range m.active {
			if err := m.dispatchJob(ctx, js, workConserving); err != nil {
				return err
			}
		}
	}
	return nil
}

func (m *Manager) dispatchJob(ctx sim.Context, js *jobState, wc bool) error {
	// Map tasks.
	for len(js.pendingMaps) > 0 {
		if !wc && js.runningMaps >= js.minMap {
			break
		}
		r := firstFree(m.freeMap)
		if r < 0 {
			break
		}
		t := js.pendingMaps[0]
		js.pendingMaps = js.pendingMaps[1:]
		js.runningMaps++
		m.freeMap[r]--
		if err := ctx.Schedule(t, r, ctx.Now()); err != nil {
			return err
		}
	}
	// Reduce tasks start only after all of the job's maps completed.
	if js.mapsDone() {
		for len(js.pendingReds) > 0 {
			if !wc && js.runningReds >= js.minRed {
				break
			}
			r := firstFree(m.freeRed)
			if r < 0 {
				break
			}
			t := js.pendingReds[0]
			js.pendingReds = js.pendingReds[1:]
			js.runningReds++
			m.freeRed[r]--
			if err := ctx.Schedule(t, r, ctx.Now()); err != nil {
				return err
			}
		}
	}
	return nil
}

func firstFree(free []int64) int {
	for r, f := range free {
		if f > 0 {
			return r
		}
	}
	return -1
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
