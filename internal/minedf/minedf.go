// Package minedf implements the MinEDF-WC baseline of Verma et al. that
// the paper compares MRCP-RM against (Section VI.B.1, reference [8]).
//
// MinEDF-WC is a slot-based Hadoop-style scheduler:
//
//   - Jobs are ordered by earliest deadline first (EDF).
//   - Each job receives the minimum number of map and reduce slots that its
//     ARIA performance model predicts it needs to finish by its deadline.
//   - Spare slots are allocated work-conservingly to active jobs in EDF
//     order, and are de-allocated (returned at the next task boundary) when
//     a newly arriving job needs them for its minimum allocation.
//
// The completion-time model is the ARIA bound pair: with n tasks of mean
// duration avg and maximum max on k slots, the phase duration lies between
// n*avg/k (lower) and (n-1)*avg/k + max (upper); the model uses the average
// of the bounds. The minimum allocation is the smallest (s_m, s_r) pair,
// by total slots, whose estimate meets the deadline.
//
// All job-lifecycle machinery (deferral, retry budgets, abandonment, slot
// mirrors) comes from the shared rmkit kernel; this package supplies the
// EDF queue discipline, the ARIA allocation model, and the two-pass
// dispatch.
package minedf

import (
	"mrcprm/internal/rmkit"
	"mrcprm/internal/sim"
	"mrcprm/internal/workload"
)

func init() {
	rmkit.Register("minedf", func(cluster sim.Cluster, opts rmkit.Options) (sim.ResourceManager, error) {
		m := New(cluster)
		if opts.Retry != nil {
			m.Retry = *opts.Retry
		}
		return m, nil
	})
}

// phaseProfile summarizes one phase (map or reduce) of a job.
type phaseProfile struct {
	n   int64 // remaining tasks
	avg float64
	max float64
}

// duration estimates the phase duration on k slots using the ARIA
// average-of-bounds model; k must be positive when n > 0.
func (p phaseProfile) duration(k int64) float64 {
	if p.n == 0 {
		return 0
	}
	lower := float64(p.n) * p.avg / float64(k)
	upper := float64(p.n-1)*p.avg/float64(k) + p.max
	return (lower + upper) / 2
}

func profileOf(tasks []*workload.Task) phaseProfile {
	p := phaseProfile{n: int64(len(tasks))}
	if p.n == 0 {
		return p
	}
	var sum int64
	for _, t := range tasks {
		sum += t.Exec
		if f := float64(t.Exec); f > p.max {
			p.max = f
		}
	}
	p.avg = float64(sum) / float64(p.n)
	return p
}

// Manager is the MinEDF-WC resource manager; it implements
// sim.ResourceManager. Tune the embedded Retry policy before the
// simulation starts.
type Manager struct {
	*rmkit.ListScheduler
}

// New creates a MinEDF-WC manager for the given cluster.
func New(cluster sim.Cluster) *Manager {
	m := &Manager{rmkit.NewListScheduler("minedf", cluster, func(a, b *rmkit.JobState) bool {
		return a.Job.Deadline < b.Job.Deadline
	})}
	m.Dispatch = m.dispatch
	return m
}

// Name implements sim.ResourceManager.
func (m *Manager) Name() string { return "MinEDF-WC" }

// updateAllocations recomputes each active job's minimum slot allocation
// from its remaining work and time to deadline.
func (m *Manager) updateAllocations(now int64) {
	for _, js := range m.Tracker.Active() {
		js.AllocMap, js.AllocRed = m.minAllocation(js, now)
	}
}

// minAllocation finds the smallest (s_m, s_r) meeting the deadline under
// the ARIA model; if the deadline is unreachable even with the whole
// cluster, it returns the maximum allocation (the job is served best
// effort, matching MinEDF-WC's behavior for infeasible jobs).
func (m *Manager) minAllocation(js *rmkit.JobState, now int64) (int64, int64) {
	mapsP := profileOf(js.PendingMaps)
	redsP := profileOf(js.PendingReds)
	totalMap := m.Cluster.TotalMapSlots()
	totalRed := m.Cluster.TotalReduceSlots()
	budget := float64(js.Job.Deadline - now)
	if js.MapsLeft > 0 && len(js.PendingMaps) < js.MapsLeft {
		// Maps still running contribute to the barrier; approximate their
		// remainder with one average map duration.
		budget -= mapsP.avg
	}

	bestM, bestR := int64(-1), int64(-1)
	bestTotal := int64(1<<63 - 1)
	maxM := min64(totalMap, max64(mapsP.n, 1))
	for sm := int64(1); sm <= maxM; sm++ {
		remain := budget - mapsP.duration(sm)
		if remain < 0 {
			continue
		}
		var sr int64
		if redsP.n > 0 {
			sr = -1
			maxR := min64(totalRed, redsP.n)
			for k := int64(1); k <= maxR; k++ {
				if redsP.duration(k) <= remain {
					sr = k
					break
				}
			}
			if sr < 0 {
				continue
			}
		}
		if sm+sr < bestTotal {
			bestM, bestR, bestTotal = sm, sr, sm+sr
		}
	}
	if bestM < 0 {
		// Infeasible: run wide open.
		bestM = min64(totalMap, max64(mapsP.n, 1))
		bestR = min64(totalRed, redsP.n)
	}
	return bestM, bestR
}

// dispatch fills free slots: a first pass honors minimum allocations in
// EDF order, a second pass is work-conserving.
func (m *Manager) dispatch(ctx sim.Context) error {
	m.updateAllocations(ctx.Now())
	for _, workConserving := range []bool{false, true} {
		for _, js := range m.Tracker.Active() {
			mapCap, redCap := js.AllocMap, js.AllocRed
			if workConserving {
				mapCap, redCap = -1, -1
			}
			if err := m.DispatchJob(ctx, js, mapCap, redCap); err != nil {
				return err
			}
		}
	}
	return nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
