package minedf

import (
	"testing"

	"mrcprm/internal/rmkit"
	"mrcprm/internal/sim"
	"mrcprm/internal/stats"
	"mrcprm/internal/workload"
)

func mkJob(id int, arrival, earliest, deadline int64, mapExec, redExec []int64) *workload.Job {
	j := &workload.Job{ID: id, Arrival: arrival, EarliestStart: earliest, Deadline: deadline}
	for i, e := range mapExec {
		j.MapTasks = append(j.MapTasks, &workload.Task{
			ID: "m", JobID: id, Type: workload.MapTask, Exec: e, Req: 1})
		_ = i
	}
	for _, e := range redExec {
		j.ReduceTasks = append(j.ReduceTasks, &workload.Task{
			ID: "r", JobID: id, Type: workload.ReduceTask, Exec: e, Req: 1})
	}
	return j
}

func run(t *testing.T, cluster sim.Cluster, jobs []*workload.Job) *sim.Metrics {
	t.Helper()
	s, err := sim.New(cluster, New(cluster), jobs)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.JobsCompleted != len(jobs) {
		t.Fatalf("completed %d of %d jobs", m.JobsCompleted, len(jobs))
	}
	return m
}

func TestPhaseProfile(t *testing.T) {
	j := mkJob(0, 0, 0, 1000, []int64{10, 20, 30}, nil)
	p := profileOf(j.MapTasks)
	if p.n != 3 || p.avg != 20 || p.max != 30 {
		t.Fatalf("profile %+v", p)
	}
	// ARIA bounds on 2 slots: lower 3*20/2 = 30, upper 2*20/2 + 30 = 50; avg 40.
	if got := p.duration(2); got != 40 {
		t.Fatalf("duration(2) = %g, want 40", got)
	}
	if profileOf(nil).duration(5) != 0 {
		t.Fatal("empty phase should have zero duration")
	}
}

func TestSingleJobRunsToCompletion(t *testing.T) {
	cluster := sim.Cluster{NumResources: 2, MapSlots: 1, ReduceSlots: 1}
	j := mkJob(0, 0, 0, 1_000_000, []int64{5000, 5000}, []int64{4000})
	m := run(t, cluster, []*workload.Job{j})
	if m.LateJobs != 0 {
		t.Fatal("job late despite generous deadline")
	}
	// Two map slots: maps in parallel [0,5000), reduce [5000,9000).
	if m.MakespanMS != 9000 {
		t.Fatalf("makespan %d, want 9000", m.MakespanMS)
	}
}

func TestEDFPriorityUnderContention(t *testing.T) {
	// One map slot, two jobs. The later-arriving job has the tighter
	// deadline and must preempt the queue (not the running task).
	cluster := sim.Cluster{NumResources: 1, MapSlots: 1, ReduceSlots: 1}
	loose := mkJob(0, 0, 0, 100_000, []int64{2000, 2000, 2000}, nil)
	tight := mkJob(1, 100, 100, 6000, []int64{2000}, nil)
	m := run(t, cluster, []*workload.Job{loose, tight})
	var tightRec, looseRec sim.JobRecord
	for _, r := range m.Records {
		if r.Job.ID == 1 {
			tightRec = r
		} else {
			looseRec = r
		}
	}
	// tight's task should run right after the first task of loose finishes:
	// completes at 4000 <= 6000.
	if tightRec.Late() {
		t.Fatalf("tight job completed at %d, deadline %d", tightRec.Completion, tightRec.Job.Deadline)
	}
	if looseRec.Late() {
		t.Fatal("loose job should still meet its generous deadline")
	}
}

func TestWorkConservingUsesSpareSlots(t *testing.T) {
	// A job with 4 map tasks and a distant deadline needs only 1 slot by
	// the model, but with 4 free slots and work conservation it should
	// still finish in one wave.
	cluster := sim.Cluster{NumResources: 4, MapSlots: 1, ReduceSlots: 1}
	j := mkJob(0, 0, 0, 10_000_000, []int64{3000, 3000, 3000, 3000}, nil)
	m := run(t, cluster, []*workload.Job{j})
	if m.MakespanMS != 3000 {
		t.Fatalf("makespan %d, want 3000 (all four maps in parallel)", m.MakespanMS)
	}
}

func TestReduceWaitsForMaps(t *testing.T) {
	cluster := sim.Cluster{NumResources: 2, MapSlots: 1, ReduceSlots: 1}
	j := mkJob(0, 0, 0, 1_000_000, []int64{1000, 9000}, []int64{1000})
	m := run(t, cluster, []*workload.Job{j})
	// Reduce can only start at 9000 (after the long map).
	if m.MakespanMS != 10000 {
		t.Fatalf("makespan %d, want 10000", m.MakespanMS)
	}
}

func TestEarliestStartDeferral(t *testing.T) {
	cluster := sim.Cluster{NumResources: 1, MapSlots: 1, ReduceSlots: 1}
	j := mkJob(0, 0, 7000, 1_000_000, []int64{1000}, nil) // AR request
	m := run(t, cluster, []*workload.Job{j})
	if m.MakespanMS != 8000 {
		t.Fatalf("makespan %d, want 8000 (start at s_j = 7000)", m.MakespanMS)
	}
}

func TestMinAllocationModel(t *testing.T) {
	cluster := sim.Cluster{NumResources: 10, MapSlots: 1, ReduceSlots: 1}
	mgr := New(cluster)
	// 10 maps of 10s each; deadline in 25s. One slot: est 100s. Five
	// slots: lower 20, upper 28, avg 24 <= 25. Four slots: lower 25,
	// upper 32.5, avg 28.75 > 25.
	j := mkJob(0, 0, 0, 25_000, repeat(10_000, 10), nil)
	js := &rmkit.JobState{Job: j, PendingMaps: j.MapTasks, MapsLeft: 10, TasksLeft: 10}
	sm, sr := mgr.minAllocation(js, 0)
	if sm != 5 || sr != 0 {
		t.Fatalf("allocation (%d,%d), want (5,0)", sm, sr)
	}
	// Impossible deadline: wide open.
	js2 := &rmkit.JobState{Job: mkJob(1, 0, 0, 1_000, repeat(10_000, 10), nil)}
	js2.PendingMaps = js2.Job.MapTasks
	js2.MapsLeft = 10
	sm, _ = mgr.minAllocation(js2, 0)
	if sm != 10 {
		t.Fatalf("infeasible job should get max allocation, got %d", sm)
	}
}

func repeat(v int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestManyJobsComplete(t *testing.T) {
	cfg := workload.DefaultSynthetic()
	cfg.NumResources = 10
	cfg.Lambda = 0.02
	cfg.NumMapHi = 20
	cfg.NumReduceHi = 10
	jobs, err := cfg.Generate(40, stats.NewStream(7, 8))
	if err != nil {
		t.Fatal(err)
	}
	cluster := sim.Cluster{NumResources: cfg.NumResources,
		MapSlots: cfg.MapSlotsPerResource, ReduceSlots: cfg.ReduceSlotsPerResource}
	m := run(t, cluster, jobs)
	if m.Invocations == 0 || m.O() < 0 {
		t.Fatal("overhead accounting broken")
	}
}
