package faults

import (
	"sync/atomic"

	"mrcprm/internal/sim"
)

// Switch is a runtime-swappable fault injector for long-running services:
// it implements sim.FaultInjector by delegating to whatever plan is
// currently installed, and Set may be called concurrently with a simulation
// consulting Attempt (the service's POST /v1/admin/faults endpoint swaps
// plans while the engine is stepping).
//
// Only per-attempt fates (failures, stragglers) are swappable: the
// simulator reads PlannedOutages once at run start, so outage windows added
// later must go through sim.Simulator.InjectOutage instead. Switch
// therefore always reports the planned outages of the *initial* plan.
type Switch struct {
	initial sim.FaultInjector
	current atomic.Pointer[injectorBox]
}

// injectorBox wraps the interface value so atomic.Pointer can hold it.
type injectorBox struct{ fi sim.FaultInjector }

// NewSwitch returns a Switch initially delegating to fi; a nil fi injects
// nothing until Set installs a plan.
func NewSwitch(fi sim.FaultInjector) *Switch {
	s := &Switch{initial: fi}
	s.current.Store(&injectorBox{fi: fi})
	return s
}

// Set atomically replaces the active plan; a nil plan disables per-attempt
// faults. Attempts already under way are unaffected.
func (s *Switch) Set(fi sim.FaultInjector) {
	s.current.Store(&injectorBox{fi: fi})
}

// Attempt implements sim.FaultInjector via the currently installed plan.
func (s *Switch) Attempt(taskID string, attempt int) sim.AttemptFault {
	if fi := s.current.Load().fi; fi != nil {
		return fi.Attempt(taskID, attempt)
	}
	return sim.AttemptFault{}
}

// PlannedOutages implements sim.FaultInjector: the initial plan's windows
// (the simulator reads them only once, at run start).
func (s *Switch) PlannedOutages() []sim.Outage {
	if s.initial != nil {
		return s.initial.PlannedOutages()
	}
	return nil
}
