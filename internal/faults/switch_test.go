package faults

import (
	"sync"
	"testing"

	"mrcprm/internal/sim"
)

func TestSwitchDelegatesAndSwaps(t *testing.T) {
	always, err := New(Config{TaskFailureProb: 0.999, Seed1: 1, Seed2: 2})
	if err != nil {
		t.Fatal(err)
	}
	sw := NewSwitch(nil)
	if f := sw.Attempt("t0_m1", 0); f.Fails || f.Factor > 1 {
		t.Fatalf("empty switch injected %+v", f)
	}
	sw.Set(always)
	fails := 0
	for i := 0; i < 100; i++ {
		if sw.Attempt("t0_m1", i).Fails {
			fails++
		}
	}
	if fails < 90 {
		t.Fatalf("only %d/100 attempts failed after installing a 0.999 plan", fails)
	}
	sw.Set(nil)
	if sw.Attempt("t0_m1", 0).Fails {
		t.Fatal("cleared switch still injecting")
	}
}

func TestSwitchInitialOutagesOnly(t *testing.T) {
	planned, err := New(Config{
		MTBFMs: 10_000, MTTRMs: 1_000, OutageHorizonMs: 100_000,
		NumResources: 4, Seed1: 3, Seed2: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	sw := NewSwitch(planned)
	want := len(planned.PlannedOutages())
	if want == 0 {
		t.Fatal("test plan generated no outages")
	}
	other, err := New(Config{
		MTBFMs: 1_000, MTTRMs: 1_000, OutageHorizonMs: 100_000,
		NumResources: 4, Seed1: 5, Seed2: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	sw.Set(other)
	if got := len(sw.PlannedOutages()); got != want {
		t.Fatalf("planned outages changed after swap: %d vs %d", got, want)
	}
}

func TestSwitchConcurrentSetAndAttempt(t *testing.T) {
	plan, err := New(Config{TaskFailureProb: 0.5, Seed1: 7, Seed2: 8})
	if err != nil {
		t.Fatal(err)
	}
	sw := NewSwitch(nil)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				sw.Set(plan)
			} else {
				sw.Set(nil)
			}
		}
	}()
	for i := 0; i < 10_000; i++ {
		sw.Attempt("t1_r1", i)
	}
	close(stop)
	wg.Wait()
	var _ sim.FaultInjector = sw
}
