// Package faults generates deterministic, seeded fault-injection plans for
// the simulator: per-attempt task failures, straggler slowdowns, and
// resource outage windows. A Plan implements sim.FaultInjector.
//
// Determinism across managers is the design center. MRCP-RM and MinEDF-WC
// place the same task at different times and on different resources, so a
// fault plan keyed by absolute time or placement would give the two
// managers different fault sequences and bias the head-to-head comparison.
// Instead each attempt's fate is a pure function of (seed, task ID, attempt
// number): both managers see task j5-m3 succeed slowly on attempt 0 and
// fail at 40% on attempt 1, wherever and whenever they run it. Outages are
// absolute-time windows per resource, independent of the schedule, so they
// too are identical across managers.
package faults

import (
	"fmt"
	"hash/fnv"
	"math"

	"mrcprm/internal/sim"
	"mrcprm/internal/stats"
)

// Config parameterizes a fault plan. The zero value injects nothing: a
// plan built from it leaves every simulation bit-identical to a fault-free
// run.
type Config struct {
	// TaskFailureProb is the per-attempt probability that a task attempt
	// fails before completing, in [0, 1).
	TaskFailureProb float64
	// FailPointLo/Hi bound the uniform fraction of the attempt's effective
	// execution time at which a failure strikes. Zero values default to
	// [0.05, 0.95].
	FailPointLo, FailPointHi float64

	// StragglerProb is the per-attempt probability of a straggler slowdown,
	// in [0, 1).
	StragglerProb float64
	// StragglerFactorLo/Hi bound the uniform execution-time multiplier of a
	// straggler attempt. Zero values default to [1.5, 3.0].
	StragglerFactorLo, StragglerFactorHi float64

	// MTBFMs is the mean operating time (ms) between outages of one
	// resource; 0 disables outages. MTTRMs is the mean repair time (ms).
	// Both are exponentially distributed.
	MTBFMs float64
	MTTRMs float64
	// OutageHorizonMs bounds outage generation: no outage begins at or
	// after this instant. Required when MTBFMs > 0.
	OutageHorizonMs int64
	// NumResources is the cluster size outages are generated for. Required
	// when MTBFMs > 0.
	NumResources int

	// Seed1, Seed2 seed the plan's RNG streams.
	Seed1, Seed2 uint64
}

// Enabled reports whether the configuration injects any fault at all.
func (c Config) Enabled() bool {
	return c.TaskFailureProb > 0 || c.StragglerProb > 0 || c.MTBFMs > 0
}

// Validate checks parameter ranges.
func (c Config) Validate() error {
	if c.TaskFailureProb < 0 || c.TaskFailureProb >= 1 {
		return fmt.Errorf("faults: task failure probability %g outside [0,1)", c.TaskFailureProb)
	}
	if c.StragglerProb < 0 || c.StragglerProb >= 1 {
		return fmt.Errorf("faults: straggler probability %g outside [0,1)", c.StragglerProb)
	}
	if c.TaskFailureProb+c.StragglerProb >= 1 {
		return fmt.Errorf("faults: failure + straggler probability %g reaches 1",
			c.TaskFailureProb+c.StragglerProb)
	}
	lo, hi := c.failPointRange()
	if lo <= 0 || hi > 1 || hi < lo {
		return fmt.Errorf("faults: fail point range [%g,%g] outside (0,1]", lo, hi)
	}
	lo, hi = c.stragglerRange()
	if lo < 1 || hi < lo {
		return fmt.Errorf("faults: straggler factor range [%g,%g] invalid (need 1 <= lo <= hi)", lo, hi)
	}
	if c.MTBFMs < 0 || c.MTTRMs < 0 {
		return fmt.Errorf("faults: negative MTBF/MTTR")
	}
	if c.MTBFMs > 0 {
		if c.MTTRMs <= 0 {
			return fmt.Errorf("faults: outages enabled (MTBF %g ms) but MTTR is %g ms", c.MTBFMs, c.MTTRMs)
		}
		if c.OutageHorizonMs <= 0 {
			return fmt.Errorf("faults: outages enabled but no outage horizon")
		}
		if c.NumResources <= 0 {
			return fmt.Errorf("faults: outages enabled but NumResources is %d", c.NumResources)
		}
	}
	return nil
}

func (c Config) failPointRange() (float64, float64) {
	lo, hi := c.FailPointLo, c.FailPointHi
	if lo == 0 && hi == 0 {
		lo, hi = 0.05, 0.95
	}
	return lo, hi
}

func (c Config) stragglerRange() (float64, float64) {
	lo, hi := c.StragglerFactorLo, c.StragglerFactorHi
	if lo == 0 && hi == 0 {
		lo, hi = 1.5, 3.0
	}
	return lo, hi
}

// Plan is a realized fault-injection plan. It is stateless per query —
// Attempt builds a fresh RNG stream purely from the plan seeds and the
// (task, attempt) identity — so call order does not matter and the same
// plan can drive many simulations. (Stream.Derive is NOT used here: it
// advances the parent stream, which would make fates call-order-dependent
// and give each manager under test a different fault sequence.)
type Plan struct {
	cfg     Config
	outages []sim.Outage
}

// New builds a plan from the configuration, pre-generating the outage
// windows.
func New(c Config) (*Plan, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	p := &Plan{cfg: c}
	if c.MTBFMs > 0 {
		p.outages = p.generateOutages()
	}
	return p, nil
}

// stream builds an independent RNG stream keyed by the plan seeds and two
// tag words, with splitmix64 finalizers separating nearby tags.
func (p *Plan) stream(tag1, tag2 uint64) *stats.Stream {
	a := mix64(p.cfg.Seed1 ^ mix64(tag1))
	b := mix64(p.cfg.Seed2 ^ mix64(tag2) ^ 0x9e3779b97f4a7c15)
	return stats.NewStream(a, b)
}

func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Attempt implements sim.FaultInjector: the fate of one execution attempt,
// a pure function of the plan seed, the task ID, and the attempt number.
func (p *Plan) Attempt(taskID string, attempt int) sim.AttemptFault {
	var f sim.AttemptFault
	if p.cfg.TaskFailureProb == 0 && p.cfg.StragglerProb == 0 {
		return f
	}
	h := fnv.New64a()
	h.Write([]byte(taskID))
	s := p.stream(h.Sum64(), h.Sum64()+uint64(attempt)+1)
	u := s.Float64()
	switch {
	case u < p.cfg.TaskFailureProb:
		lo, hi := p.cfg.failPointRange()
		f.Fails = true
		f.FailPoint = lo + (hi-lo)*s.Float64()
	case u < p.cfg.TaskFailureProb+p.cfg.StragglerProb:
		lo, hi := p.cfg.stragglerRange()
		f.Factor = lo + (hi-lo)*s.Float64()
	}
	return f
}

// PlannedOutages implements sim.FaultInjector.
func (p *Plan) PlannedOutages() []sim.Outage {
	return append([]sim.Outage(nil), p.outages...)
}

// generateOutages renews an alternating up/down process per resource:
// exponential operating intervals (mean MTBF) separate exponential repair
// intervals (mean MTTR), truncated at the horizon.
func (p *Plan) generateOutages() []sim.Outage {
	var out []sim.Outage
	for r := 0; r < p.cfg.NumResources; r++ {
		s := p.stream(0x6f757461676573, uint64(r)+1) // "outages"
		now := int64(0)
		for {
			up := durationMS(p.cfg.MTBFMs, s)
			downAt := now + up
			if downAt >= p.cfg.OutageHorizonMs {
				break
			}
			repair := durationMS(p.cfg.MTTRMs, s)
			out = append(out, sim.Outage{Resource: r, DownAt: downAt, UpAt: downAt + repair})
			now = downAt + repair
		}
	}
	return out
}

// durationMS samples an exponential duration with the given mean, floored
// at 1 ms.
func durationMS(meanMS float64, s *stats.Stream) int64 {
	d := int64(math.Ceil(meanMS * s.ExpFloat64()))
	if d < 1 {
		d = 1
	}
	return d
}
