package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"mrcprm/internal/core"
	"mrcprm/internal/slo"
	"mrcprm/internal/workload"
)

// NewHandler exposes the engine over HTTP/JSON:
//
//	POST /v1/jobs          submit a workload.JobSpec; 202 {"id":N}
//	GET  /v1/jobs          every submission's status (no placements)
//	GET  /v1/jobs/{id}     one submission, with placements and predicted
//	                       lateness
//	GET  /v1/jobs/{id}/trace  one submission's lifecycle timeline
//	GET  /v1/schedule      the current placement plan
//	GET  /v1/metrics       engine + manager + telemetry counters + SLO burn
//	GET  /metrics          Prometheus text exposition (format 0.0.4)
//	POST /v1/admin/faults  swap the fault plan or inject an outage
//	POST /v1/admin/run     start the run loop (virtual mode);
//	                       {"close":true} also closes the intake
//	GET  /healthz          liveness + run state
//	GET  /readyz           readiness: 503 while draining or shedding
//
// Error bodies are {"error":"..."}: 400 malformed, 404 unknown job, 409
// double start, 422 admission rejection, 429 shed by backpressure (with a
// Retry-After header), 500 journal write failure, 503 intake closed.
func NewHandler(e *Engine) http.Handler {
	s := &server{e: e}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.healthz)
	mux.HandleFunc("GET /readyz", s.readyz)
	mux.HandleFunc("POST /v1/jobs", s.submit)
	mux.HandleFunc("GET /v1/jobs", s.listJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.getJob)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.trace)
	mux.HandleFunc("GET /v1/schedule", s.schedule)
	mux.HandleFunc("GET /v1/metrics", s.metrics)
	mux.HandleFunc("GET /metrics", s.prom)
	mux.HandleFunc("POST /v1/admin/faults", s.faults)
	mux.HandleFunc("POST /v1/admin/run", s.run)
	return mux
}

type server struct{ e *Engine }

// maxBodyBytes caps POST bodies: a job spec or fault request is a few KB at
// most, so anything near the cap is malformed or hostile.
const maxBodyBytes = 1 << 20

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *server) healthz(w http.ResponseWriter, r *http.Request) {
	snap := s.e.Metrics()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"mode":     snap.Mode,
		"running":  snap.Running,
		"finished": snap.Finished,
		"closed":   snap.Closed,
	})
}

// readyz is the orchestrator-facing readiness probe: 200 while the engine
// should receive traffic, 503 (with the reason) once it is finished,
// draining after CloseIntake, or shedding at the MaxPending bound.
func (s *server) readyz(w http.ResponseWriter, r *http.Request) {
	if ok, reason := s.e.Ready(); !ok {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reason": reason})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true})
}

func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	var spec workload.JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parsing job spec: %w", err))
		return
	}
	id, err := s.e.Submit(spec)
	var oe *OverloadError
	switch {
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.As(err, &oe):
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(oe.RetryAfter)))
		writeJSON(w, http.StatusTooManyRequests, map[string]any{
			"error": err.Error(), "pending": oe.Pending, "maxPending": oe.Max,
			"retryAfterMs": oe.RetryAfter.Milliseconds(),
		})
	case errors.Is(err, ErrJournal):
		writeError(w, http.StatusInternalServerError, err)
	case err != nil:
		var ae *core.AdmissionError
		if errors.As(err, &ae) {
			writeJSON(w, http.StatusUnprocessableEntity,
				map[string]any{"id": id, "state": StateRejected, "error": err.Error()})
			return
		}
		writeError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusAccepted, map[string]any{"id": id, "state": StateQueued})
	}
}

// retryAfterSeconds renders a backoff as whole seconds for the Retry-After
// header, rounding up so clients never retry early.
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func (s *server) listJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.e.Jobs())
}

func (s *server) getJob(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad job id %q", r.PathValue("id")))
		return
	}
	st, ok := s.e.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %d", id))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *server) schedule(w http.ResponseWriter, r *http.Request) {
	ps := s.e.Schedule()
	if ps == nil {
		ps = []TaskPlacement{}
	}
	writeJSON(w, http.StatusOK, ps)
}

func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.e.Metrics())
}

// prom serves the Prometheus scrape endpoint. The exposition is rendered
// into a buffer first so a mid-write failure cannot leave a scraper with a
// truncated 200 response.
func (s *server) prom(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	if err := s.e.WriteProm(&buf); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = buf.WriteTo(w)
}

// trace serves one job's lifecycle timeline from the SLO monitor's bounded
// per-job event ring.
func (s *server) trace(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad job id %q", r.PathValue("id")))
		return
	}
	events, dropped, ok := s.e.Trace(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no trace for job %d", id))
		return
	}
	if events == nil {
		events = []slo.TraceEvent{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"jobId": id, "dropped": dropped, "events": events,
	})
}

// faultRequest is the body of POST /v1/admin/faults. With DurationMS > 0 it
// injects one outage window; otherwise it swaps the per-attempt fault plan
// (all-zero probabilities disable injection).
type faultRequest struct {
	// Per-attempt plan.
	FailRate      float64 `json:"failRate"`
	StragglerProb float64 `json:"stragglerProb"`
	Seed          uint64  `json:"seed"`
	// Outage window.
	Resource   int   `json:"resource"`
	DelayMS    int64 `json:"delayMs"`
	DurationMS int64 `json:"durationMs"`
}

func (s *server) faults(w http.ResponseWriter, r *http.Request) {
	var req faultRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parsing fault request: %w", err))
		return
	}
	if req.DurationMS > 0 {
		at := s.e.NowMS() + req.DelayMS
		if err := s.e.InjectOutage(req.Resource, at, at+req.DurationMS); err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, ErrJournal) {
				status = http.StatusInternalServerError
			}
			writeError(w, status, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"injected": "outage", "resource": req.Resource,
			"downAtMs": at, "upAtMs": at + req.DurationMS,
		})
		return
	}
	// Per-attempt plans go through ApplyFaults so the switch is journaled
	// and replays at the same simulated instant on recovery.
	spec := FaultSpec{FailRate: req.FailRate, StragglerProb: req.StragglerProb, Seed: req.Seed}
	if err := s.e.ApplyFaults(spec); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrJournal) {
			status = http.StatusInternalServerError
		}
		writeError(w, status, err)
		return
	}
	if !spec.enabled() {
		writeJSON(w, http.StatusOK, map[string]any{"injected": "none"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"injected": "attempts", "failRate": req.FailRate, "stragglerProb": req.StragglerProb,
	})
}

// runRequest is the body of POST /v1/admin/run.
type runRequest struct {
	// Close also closes the intake, so the run ends once the submitted
	// stream completes (the loadgen virtual-replay flow).
	Close bool `json:"close"`
}

func (s *server) run(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	if r.ContentLength != 0 {
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("parsing run request: %w", err))
			return
		}
	}
	err := s.e.Start()
	if err != nil && !req.Close {
		writeError(w, http.StatusConflict, err)
		return
	}
	if req.Close {
		s.e.CloseIntake()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"started": err == nil, "closed": req.Close,
	})
}
