// Package service is the online scheduling engine behind cmd/mrcpd: it
// accepts an open stream of MapReduce job submissions with SLAs, drives a
// resource manager (MRCP-RM by default) over the discrete-event simulator,
// and answers status, schedule, and metrics queries while the run is in
// flight.
//
// The engine owns the simulator's pacing through the Step/Finish clock
// abstraction and runs in one of two modes:
//
//   - Virtual: events are processed as fast as possible. A run whose jobs
//     are all submitted before Start is byte-identical to a plain
//     sim.New+Run over the same job list — the golden determinism contract
//     the service tests pin down.
//   - Wall: each event waits until its simulated timestamp is due on the
//     wall clock (scaled by Config.Speedup), so the daemon behaves like a
//     live scheduler.
//
// Submissions never block on an in-flight solve: they land in an intake
// queue under their own lock and are injected between simulator steps.
// Arrival batching (coalesce window, max-pending and urgency flushes) is
// the manager's job — see core.Config.BatchWindow and friends — and the
// engine merely passes the configuration through.
package service

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mrcprm/internal/core"
	"mrcprm/internal/faults"
	"mrcprm/internal/obs"
	_ "mrcprm/internal/policies" // register every built-in policy
	"mrcprm/internal/rmkit"
	"mrcprm/internal/sim"
	"mrcprm/internal/slo"
	"mrcprm/internal/wal"
	"mrcprm/internal/workload"
)

// Mode selects how the engine paces the simulation clock.
type Mode int

const (
	// Virtual processes events immediately; runs are deterministic.
	Virtual Mode = iota
	// Wall sleeps until each event is due in scaled wall-clock time.
	Wall
)

func (m Mode) String() string {
	if m == Wall {
		return "wall"
	}
	return "virtual"
}

// Config assembles an engine.
type Config struct {
	// Cluster is the simulated system shape.
	Cluster sim.Cluster
	// Policy selects a registered resource-management policy by name
	// ("mrcp", "minedf", "fifo", "edf", ...); empty means "mrcp". Ignored
	// when RM is set.
	Policy string
	// Manager tunes the default MRCP-RM manager; ignored unless the engine
	// runs the "mrcp" policy.
	Manager core.Config
	// RM overrides the resource manager with a pre-built instance,
	// bypassing the registry.
	RM sim.ResourceManager
	// Mode selects virtual or wall pacing.
	Mode Mode
	// Speedup scales wall-clock pacing: simulated ms per wall ms (<=0 means
	// 1). Ignored in Virtual mode.
	Speedup float64
	// Admission enables the fast lower-bound infeasibility check: a job
	// whose execution-time lower bound provably overshoots its deadline is
	// rejected at submission instead of entering the system.
	Admission bool
	// Faults is the initial fault plan; the engine wraps it in a
	// faults.Switch so SetFaults can swap per-attempt fates at runtime.
	Faults sim.FaultInjector
	// Telemetry and TelemetrySampleMS attach a telemetry stream to the
	// simulator and (when supported) the manager.
	Telemetry         *obs.Telemetry
	TelemetrySampleMS int64
	// Observer receives task lifecycle notifications (e.g. a
	// trace.Recorder for the determinism golden test).
	Observer sim.Observer

	// JournalPath enables the write-ahead journal: accepted submissions,
	// runtime fault switches, injected outages, intake close, and
	// installed-timetable audit snapshots are appended to this file before
	// they take effect, so a crashed daemon can be rebuilt with Recover.
	// New refuses a non-empty journal (pass it to Recover instead).
	JournalPath string
	// JournalSync selects the fsync policy: "always" (default; every
	// record hits stable storage before the submission is acknowledged),
	// "batch" (fsync every 64 appends), or "none".
	JournalSync string
	// JournalTimetableEvery appends an installed-timetable audit record
	// every N simulator steps (0 = only when the intake closes). Timetable
	// records are forensic: replay re-derives placements deterministically
	// and ignores them.
	JournalTimetableEvery int

	// MaxPending bounds the number of accepted-but-unfinished jobs
	// (intake queue + outstanding work). Submissions beyond the bound are
	// shed with ErrOverloaded instead of growing the queue without bound;
	// the HTTP layer surfaces that as 429 with a Retry-After derived from
	// the recent drain rate. 0 means unbounded.
	MaxPending int

	// SLO tunes the deadline-miss attribution and burn monitor (miss
	// budget, window, trace ring size). Zero values select the slo
	// package defaults; the Telemetry field is overridden with the
	// engine's own handle. The monitor always runs — traces and burn
	// state are available even without a telemetry sink.
	SLO slo.Config
}

// Sentinel errors surfaced to the HTTP layer.
var (
	// ErrClosed rejects submissions after the intake is closed.
	ErrClosed = errors.New("service: intake closed")
	// ErrRunning rejects a second Start.
	ErrRunning = errors.New("service: engine already started")
	// ErrStopped is the run error after a hard Stop.
	ErrStopped = errors.New("service: engine stopped")
	// ErrOverloaded rejects submissions shed by the MaxPending bound;
	// errors returned by Submit match it via errors.Is and carry the queue
	// state as an *OverloadError.
	ErrOverloaded = errors.New("service: intake overloaded")
	// ErrJournal wraps a write-ahead-journal append failure: the
	// submission was NOT accepted (nothing unjournaled takes effect).
	ErrJournal = errors.New("service: journal write failed")
	// ErrNotQueued rejects a Withdraw of a job that is not sitting in the
	// intake queue: unknown, rejected, already withdrawn, or already
	// drained into the simulator.
	ErrNotQueued = errors.New("service: job is not queued in intake")
)

// OverloadError reports a shed submission: the intake was at Max pending
// jobs and the caller should retry after RetryAfter, which is derived from
// the overshoot and the recently observed drain rate.
type OverloadError struct {
	Pending    int
	Max        int
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("service: intake overloaded (%d pending, max %d); retry after %s",
		e.Pending, e.Max, e.RetryAfter)
}

// Is matches ErrOverloaded so callers can use errors.Is without the type.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }

// jobEntry is the engine's record of one submission. The immutable fields
// are set at Submit; injectErr is written by the run loop under mu.
type jobEntry struct {
	id  int
	job *workload.Job // nil when the submission was rejected
	// rejectReason is non-empty for admission rejections (kept as a plain
	// string so journal replay can restore it without re-deriving the
	// typed error); rejectDeadline preserves the reported deadline.
	rejectReason   string
	rejectDeadline int64
	// injectErr records a (should-not-happen) AddJob failure so the job
	// does not silently vanish.
	injectErr error
	// withdrawn marks a submission pulled back out of the intake by
	// Withdraw (shard migration); the entry stays registered so the ID
	// remains queryable.
	withdrawn bool
	// tag carries an external identity (the shard router's original
	// global ID) for jobs resubmitted here by a migration; tagged
	// distinguishes tag 0 from "no tag".
	tag    int64
	tagged bool
}

// Engine is the embeddable online resource-manager engine.
type Engine struct {
	cfg    Config
	rm     sim.ResourceManager
	policy string // registry name, or the manager's display name for RM overrides
	sw     *faults.Switch
	mon    *slo.Monitor

	// intakeMu guards submissions and the job registry; it is never held
	// across a simulator step, so Submit cannot block on a solve.
	intakeMu sync.Mutex
	nextID   int
	intake   []*workload.Job
	entries  map[int]*jobEntry
	order    []int
	closed   bool
	started  bool
	rejects  int
	accepted int
	shed     int
	// closeLogged dedups the journal's close record (CloseIntake is
	// idempotent; replay must see at most one).
	closeLogged bool

	// journal is the write-ahead journal (nil when durability is off).
	// Appends happen under intakeMu on the submission path and from the
	// run loop for timetable audits; wal.Journal serializes internally.
	journal *wal.Journal
	// scheduledFaults replays journaled mid-run fault switches: the run
	// loop installs each spec once the simulation clock reaches its
	// recorded instant. Owned by the loop goroutine after Start; populated
	// only by Recover before it.
	scheduledFaults []scheduledFault

	// finished counts completed + abandoned jobs (updated by the run loop
	// after every step); accepted - finished is the backpressure depth.
	finished atomic.Int64
	rate     rateTracker

	// mu guards the simulator (and through it the manager) — stepping,
	// injection, and every state query.
	mu      sync.Mutex
	sim     *sim.Simulator
	metrics *sim.Metrics
	runErr  error

	simNow    atomic.Int64
	wallStart time.Time

	wake chan struct{}
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// New assembles an engine; no goroutine runs until Start.
func New(cfg Config) (*Engine, error) {
	rm, policy := cfg.RM, cfg.Policy
	if rm == nil {
		if policy == "" {
			policy = "mrcp"
		}
		popts := rmkit.Options{}
		if policy == "mrcp" {
			popts.Extra = cfg.Manager
		}
		var err error
		if rm, err = rmkit.New(policy, cfg.Cluster, popts); err != nil {
			return nil, err
		}
	} else if policy == "" {
		policy = rm.Name()
	}
	s, err := sim.New(cfg.Cluster, rm, nil)
	if err != nil {
		return nil, err
	}
	sw := faults.NewSwitch(cfg.Faults)
	if err := s.SetFaultInjector(sw); err != nil {
		return nil, err
	}
	if cfg.Telemetry.Enabled() {
		s.SetTelemetry(cfg.Telemetry, cfg.TelemetrySampleMS)
		if im, ok := rm.(interface{ SetTelemetry(*obs.Telemetry) }); ok {
			im.SetTelemetry(cfg.Telemetry)
		}
	}
	sloCfg := cfg.SLO
	sloCfg.Telemetry = cfg.Telemetry
	mon := slo.NewMonitor(sloCfg)
	s.SetObserver(sim.TeeObservers(cfg.Observer, mon))
	if rs, ok := rm.(interface {
		SetRescheduleObserver(func(now int64, reason string, fallback bool))
	}); ok {
		rs.SetRescheduleObserver(mon.OnReschedule)
	}
	if cfg.Speedup <= 0 {
		cfg.Speedup = 1
	}
	e := &Engine{
		cfg:     cfg,
		rm:      rm,
		policy:  policy,
		sw:      sw,
		mon:     mon,
		sim:     s,
		entries: make(map[int]*jobEntry),
		wake:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if cfg.JournalPath != "" {
		pol, err := wal.ParseSyncPolicy(cfg.JournalSync)
		if err != nil {
			return nil, err
		}
		j, recs, err := wal.Open(cfg.JournalPath, wal.Options{Sync: pol})
		if err != nil {
			return nil, err
		}
		if len(recs) > 0 {
			j.Close()
			return nil, fmt.Errorf("service: journal %s already holds %d records; replay it with Recover or remove the file",
				cfg.JournalPath, len(recs))
		}
		e.journal = j
		if err := e.journalAppend(e.metaRecord()); err != nil {
			j.Close()
			return nil, err
		}
	}
	return e, nil
}

// NowMS returns the engine's current simulated time: the simulator clock in
// Virtual mode, scaled elapsed wall time in Wall mode.
func (e *Engine) NowMS() int64 {
	if e.cfg.Mode == Wall {
		e.intakeMu.Lock()
		started, at := e.started, e.wallStart
		e.intakeMu.Unlock()
		if !started {
			return 0
		}
		return int64(float64(time.Since(at).Milliseconds()) * e.cfg.Speedup)
	}
	return e.simNow.Load()
}

// Submit accepts one job submission and returns its assigned ID. In Wall
// mode the spec's arrival time is replaced with the submission instant; in
// Virtual mode it is honored, clamped up to the current simulation clock.
// A non-nil *core.AdmissionError return still carries a valid ID: the
// rejection is recorded and queryable.
//
// When MaxPending is set and the intake is full the submission is shed
// with an *OverloadError (no ID is consumed); when a journal is attached
// the accepted submission is appended — and fsynced per the sync policy —
// before Submit returns, so an acknowledged job survives a crash.
func (e *Engine) Submit(spec workload.JobSpec) (int, error) {
	return e.submit(spec, 0, false)
}

// SubmitTagged is Submit with an external identity attached: the tag is
// journaled with the submission and surfaced through recovery, so a shard
// router can migrate a job between engines (Withdraw + SubmitTagged) while
// keeping its original global ID traceable across journal segments.
func (e *Engine) SubmitTagged(spec workload.JobSpec, tag int64) (int, error) {
	return e.submit(spec, tag, true)
}

func (e *Engine) submit(spec workload.JobSpec, tag int64, tagged bool) (int, error) {
	if e.cfg.Telemetry.Enabled() {
		defer func(start time.Time) {
			e.cfg.Telemetry.Observe(obs.HistWallAdmission, float64(time.Since(start).Nanoseconds())/1e6)
		}(time.Now())
	}
	now := e.NowMS()
	e.intakeMu.Lock()
	defer e.intakeMu.Unlock()
	if e.closed {
		return 0, ErrClosed
	}
	if max := e.cfg.MaxPending; max > 0 {
		if depth := e.accepted - int(e.finished.Load()); depth >= max {
			e.shed++
			e.cfg.Telemetry.Add(obs.CounterServiceShed, 1)
			return 0, &OverloadError{Pending: depth, Max: max, RetryAfter: e.retryAfter(depth - max + 1)}
		}
	}
	if e.cfg.Mode == Wall {
		// Restamp the arrival to the wall clock and shift the SLA window
		// with it, so client-supplied earliest starts and deadlines keep
		// their meaning relative to submission time.
		shift := now - spec.ArrivalMS
		spec.ArrivalMS = now
		if spec.EarliestStartMS > 0 {
			spec.EarliestStartMS += shift
		}
		spec.DeadlineMS += shift
	} else if spec.ArrivalMS < now {
		// Clamp stale virtual arrivals at submission so the journaled spec
		// is exactly the job the run admits (injection re-clamps only if
		// the clock advanced in between, which replay does not reproduce).
		spec.ArrivalMS = now
	}
	j, err := spec.Job(e.nextID)
	if err != nil {
		return 0, err
	}
	id := e.nextID
	e.nextID++
	entry := &jobEntry{id: id, job: j, tag: tag, tagged: tagged}
	e.entries[id] = entry
	e.order = append(e.order, id)
	var recTag *int64
	if tagged {
		recTag = &tag
	}
	// The admission lower bound doubles as the SLO monitor's
	// infeasible-at-admission signal: with admission enforcement on, a
	// failing job is rejected (and its trace records the shed); with it
	// off, the job enters the system flagged so a later deadline miss is
	// attributed to infeasibility rather than backlog or faults.
	at := now
	if j.Arrival > at {
		at = j.Arrival
	}
	aerr := core.CheckAdmission(e.cfg.Cluster, j, at)
	if e.cfg.Admission && aerr != nil {
		var ae *core.AdmissionError
		errors.As(aerr, &ae)
		entry.rejectReason = ae.Error()
		entry.rejectDeadline = ae.Deadline
		entry.job = nil
		e.rejects++
		if jerr := e.journalAppend(&journalRecord{
			Kind: recSubmit, SimMS: now, ID: id, Spec: &spec, Rejected: entry.rejectReason, Tag: recTag,
		}); jerr != nil {
			e.rollbackSubmit(id)
			return 0, jerr
		}
		e.mon.JobShed(now, id, "infeasible")
		return id, aerr
	}
	if jerr := e.journalAppend(&journalRecord{Kind: recSubmit, SimMS: now, ID: id, Spec: &spec, Tag: recTag}); jerr != nil {
		e.rollbackSubmit(id)
		return 0, jerr
	}
	e.accepted++
	e.intake = append(e.intake, j)
	e.mon.JobSubmitted(now, id, aerr != nil)
	e.signal()
	return id, nil
}

// rollbackSubmit undoes the registry effects of a submission whose journal
// append failed; called under intakeMu.
func (e *Engine) rollbackSubmit(id int) {
	if e.entries[id] != nil && e.entries[id].rejectReason != "" {
		e.rejects--
	}
	delete(e.entries, id)
	e.order = e.order[:len(e.order)-1]
	e.nextID--
}

// Withdraw pulls a still-queued submission back out of the intake so a
// shard router can migrate it to another engine through the same journaled
// path (Withdraw here, SubmitTagged there). Only jobs that have not yet
// been drained into the simulator can be withdrawn; anything else fails
// with ErrNotQueued, which a rebalancer treats as "too late, skip". The
// withdrawal is journaled before it takes effect, the entry stays
// registered as StateWithdrawn, and the returned spec (plus the original
// tag, if the job was itself migrated in) is what the caller resubmits.
func (e *Engine) Withdraw(id int) (spec workload.JobSpec, tag int64, tagged bool, err error) {
	e.intakeMu.Lock()
	defer e.intakeMu.Unlock()
	entry, ok := e.entries[id]
	if !ok || entry.job == nil || entry.withdrawn {
		return workload.JobSpec{}, 0, false, ErrNotQueued
	}
	idx := -1
	for i, j := range e.intake {
		if j.ID == id {
			idx = i
			break
		}
	}
	if idx < 0 {
		return workload.JobSpec{}, 0, false, ErrNotQueued
	}
	if jerr := e.journalAppend(&journalRecord{Kind: recWithdraw, SimMS: e.simNow.Load(), ID: id}); jerr != nil {
		return workload.JobSpec{}, 0, false, jerr
	}
	spec = workload.SpecOf(entry.job)
	e.intake = append(e.intake[:idx], e.intake[idx+1:]...)
	entry.withdrawn = true
	e.accepted--
	e.mon.JobWithdrawn(e.simNow.Load(), id)
	return spec, entry.tag, entry.tagged, nil
}

// QueuedIDs returns the IDs of accepted submissions still sitting in the
// intake queue (not yet drained into the simulator), in queue order — the
// set Withdraw can still act on.
func (e *Engine) QueuedIDs() []int {
	e.intakeMu.Lock()
	defer e.intakeMu.Unlock()
	ids := make([]int, len(e.intake))
	for i, j := range e.intake {
		ids[i] = j.ID
	}
	return ids
}

// QueuedSpec returns the spec of a still-queued submission without
// withdrawing it, so a rebalancer can test feasibility on the target shard
// before committing to the migration.
func (e *Engine) QueuedSpec(id int) (workload.JobSpec, bool) {
	e.intakeMu.Lock()
	defer e.intakeMu.Unlock()
	for _, j := range e.intake {
		if j.ID == id {
			return workload.SpecOf(j), true
		}
	}
	return workload.JobSpec{}, false
}

// WithdrawnJob is one withdrawn entry's identity and spec, as surfaced by
// WithdrawnJobs for shard.Recover's orphan re-homing.
type WithdrawnJob struct {
	LocalID int
	Spec    workload.JobSpec
	Tag     int64
	Tagged  bool
}

// WithdrawnJobs returns every withdrawn entry in submission order. A shard
// recovery uses this to find migrations whose tagged resubmit never made
// it to the target segment before a crash.
func (e *Engine) WithdrawnJobs() []WithdrawnJob {
	e.intakeMu.Lock()
	defer e.intakeMu.Unlock()
	var out []WithdrawnJob
	for _, id := range e.order {
		entry := e.entries[id]
		if entry == nil || !entry.withdrawn || entry.job == nil {
			continue
		}
		out = append(out, WithdrawnJob{
			LocalID: id, Spec: workload.SpecOf(entry.job), Tag: entry.tag, Tagged: entry.tagged,
		})
	}
	return out
}

// AcceptedWorkMS returns the total execution-time work (sum of task exec
// times) of every accepted, not-withdrawn submission. On a not-yet-started
// engine — the state shard.Recover sees — this equals the pending work the
// router's load accounting tracks, since nothing has completed yet.
func (e *Engine) AcceptedWorkMS() int64 {
	e.intakeMu.Lock()
	defer e.intakeMu.Unlock()
	var w int64
	for _, entry := range e.entries {
		if entry.job != nil && !entry.withdrawn {
			w += entry.job.TotalWork()
		}
	}
	return w
}

// Start launches the run loop. In Virtual mode submissions made before
// Start form the initial arrival-ordered job list.
func (e *Engine) Start() error {
	e.intakeMu.Lock()
	defer e.intakeMu.Unlock()
	if e.started {
		return ErrRunning
	}
	e.started = true
	e.wallStart = time.Now()
	go e.loop()
	return nil
}

// CloseIntake stops accepting submissions; the run finishes outstanding
// work (force-draining parked jobs if needed) and then ends. Safe to call
// more than once and before Start.
func (e *Engine) CloseIntake() {
	e.intakeMu.Lock()
	logClose := !e.closed && !e.closeLogged
	e.closed = true
	if logClose {
		e.closeLogged = true
		// Best-effort: a failed append means recovery replays an open
		// intake, which is safe (the operator re-closes it).
		_ = e.journalAppend(&journalRecord{Kind: recClose, SimMS: e.simNow.Load()})
	}
	e.intakeMu.Unlock()
	e.signal()
}

// Stop aborts the run without finishing outstanding work. Wait returns
// ErrStopped unless the run already ended.
func (e *Engine) Stop() {
	e.once.Do(func() { close(e.stop) })
	e.signal()
}

// Done closes when the run loop has exited.
func (e *Engine) Done() <-chan struct{} { return e.done }

// Wait blocks until the run ends and returns its error, if any.
func (e *Engine) Wait() error {
	<-e.done
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.runErr
}

// Result returns the final metrics; valid only after Done.
func (e *Engine) Result() (*sim.Metrics, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.metrics, e.runErr
}

// SetFaults swaps the per-attempt fault plan (failures, stragglers) at
// runtime; nil disables injection. Outage windows go through InjectOutage.
func (e *Engine) SetFaults(fi sim.FaultInjector) { e.sw.Set(fi) }

// InjectOutage schedules a resource outage window starting no earlier than
// the current simulated time.
func (e *Engine) InjectOutage(res int, downAt, upAt int64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.sim.Now()
	if downAt < now {
		upAt += now - downAt
		downAt = now
	}
	// Journal the clamped window before injecting (WAL discipline: nothing
	// unjournaled takes effect) so replay schedules the exact same events.
	if err := e.journalAppend(&journalRecord{
		Kind: recOutage, SimMS: now,
		Outage: &outageRecord{Resource: res, DownMS: downAt, UpMS: upAt},
	}); err != nil {
		return err
	}
	if err := e.sim.InjectOutage(res, downAt, upAt); err != nil {
		return err
	}
	e.signal()
	return nil
}

// signal nudges the run loop without blocking.
func (e *Engine) signal() {
	select {
	case e.wake <- struct{}{}:
	default:
	}
}

// loop is the run loop: inject intake, step the simulator, pace against
// the wall clock when configured, drain and finish once the intake closes.
func (e *Engine) loop() {
	defer close(e.done)
	defer e.closeJournal()
	drained := false
	steps := 0
	ttLogged := false // final timetable audit written after intake close
	for {
		select {
		case <-e.stop:
			e.end(nil, ErrStopped)
			return
		default:
		}
		e.applyScheduledFaults()
		e.drainIntake()
		next, pending := e.peek()
		if !pending {
			if e.intakePending() {
				continue // raced: a submission landed after drainIntake
			}
			if e.intakeClosed() {
				if !ttLogged {
					ttLogged = true
					e.journalTimetable()
				}
				if !drained && e.drainManager() {
					drained = true
					continue
				}
				e.finish()
				return
			}
			e.sleep(0)
			continue
		}
		if e.cfg.Mode == Wall {
			if now := e.NowMS(); next > now {
				d := time.Duration(float64(next-now) / e.cfg.Speedup * float64(time.Millisecond))
				if d < time.Millisecond {
					d = time.Millisecond // sleep(<=0) would wait indefinitely
				}
				e.sleep(d)
				continue
			}
		}
		e.mu.Lock()
		_, err := e.sim.Step()
		m := e.sim.CurrentMetrics()
		e.simNow.Store(e.sim.Now())
		e.mu.Unlock()
		if err != nil {
			e.end(nil, err)
			return
		}
		e.observeProgress(&m)
		steps++
		if every := e.cfg.JournalTimetableEvery; every > 0 && steps%every == 0 {
			e.journalTimetable()
		}
	}
}

// observeProgress folds one step's metrics into the backpressure state:
// the finished count, the drain-rate window, and the queue-depth gauge.
func (e *Engine) observeProgress(m *sim.Metrics) {
	fin := int64(m.JobsCompleted + m.JobsAbandoned)
	e.finished.Store(fin)
	e.rate.observe(time.Now(), fin)
	if e.cfg.Telemetry.Enabled() {
		e.intakeMu.Lock()
		depth := e.accepted - int(fin)
		e.intakeMu.Unlock()
		e.cfg.Telemetry.SetGauge(obs.GaugeServicePending, int64(depth))
	}
}

// applyScheduledFaults installs journaled mid-run fault switches once the
// simulation clock reaches their recorded instants. Only the run loop
// touches the slice after Start.
func (e *Engine) applyScheduledFaults() {
	now := e.simNow.Load()
	for len(e.scheduledFaults) > 0 && e.scheduledFaults[0].at <= now {
		spec := e.scheduledFaults[0].spec
		e.scheduledFaults = e.scheduledFaults[1:]
		plan, err := spec.plan()
		if err != nil {
			continue // the original run validated it; be lenient on replay
		}
		e.sw.Set(plan)
	}
}

// drainIntake moves queued submissions into the simulator. The batch is
// stable-sorted by effective arrival so a pre-Start submission stream
// reproduces sim.New's arrival ordering exactly.
func (e *Engine) drainIntake() {
	e.intakeMu.Lock()
	batch := e.intake
	e.intake = nil
	e.intakeMu.Unlock()
	if len(batch) == 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.sim.Now()
	for _, j := range batch {
		if j.Arrival < now {
			j.Arrival = now
			if j.EarliestStart < now {
				j.EarliestStart = now
			}
		}
	}
	sort.SliceStable(batch, func(a, b int) bool { return batch[a].Arrival < batch[b].Arrival })
	for _, j := range batch {
		if err := e.sim.AddJob(j); err != nil {
			e.intakeMu.Lock()
			if entry, ok := e.entries[j.ID]; ok {
				entry.injectErr = err
			}
			e.intakeMu.Unlock()
		}
	}
}

// peek reports the next event's timestamp under the simulator lock.
func (e *Engine) peek() (int64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.sim.NextEventAt()
}

func (e *Engine) intakePending() bool {
	e.intakeMu.Lock()
	defer e.intakeMu.Unlock()
	return len(e.intake) > 0
}

func (e *Engine) intakeClosed() bool {
	e.intakeMu.Lock()
	defer e.intakeMu.Unlock()
	return e.closed
}

// drainManager force-admits jobs the manager still holds parked (deferred
// or batched) after the event queue ran dry; it reports whether a drain
// was actually needed so the loop retries stepping once. In practice
// parked jobs keep timers queued, so this is a shutdown safety net.
func (e *Engine) drainManager() bool {
	type drainer interface {
		Drain(sim.Context) error
		Outstanding() int
	}
	d, ok := e.rm.(drainer)
	if !ok {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if d.Outstanding() == 0 {
		return false
	}
	if err := d.Drain(e.sim); err != nil {
		e.runErr = err
		return false
	}
	return true
}

// sleep waits for a wake-up, a stop, or (when d > 0) the timeout.
func (e *Engine) sleep(d time.Duration) {
	if d <= 0 {
		select {
		case <-e.wake:
		case <-e.stop:
		}
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-e.wake:
	case <-e.stop:
	case <-t.C:
	}
}

func (e *Engine) finish() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.runErr != nil {
		return // a drain error already ended the run
	}
	m, err := e.sim.Finish()
	e.metrics, e.runErr = m, err
	if m != nil {
		e.finished.Store(int64(m.JobsCompleted + m.JobsAbandoned))
	}
}

// retryAfter derives a backoff hint for one shed submission: how long the
// overshoot should take to drain at the recently observed completion rate,
// clamped to [1s, 60s]. Called under intakeMu.
func (e *Engine) retryAfter(excess int) time.Duration {
	if excess < 1 {
		excess = 1
	}
	d := time.Second
	if r := e.rate.perSec(); r > 0 {
		d = time.Duration(float64(excess) / r * float64(time.Second))
	}
	if d < time.Second {
		d = time.Second
	}
	if d > time.Minute {
		d = time.Minute
	}
	return d
}

// Ready reports whether the engine should receive traffic: false (with a
// reason) once the run finished, while the intake is draining after
// CloseIntake, while the MaxPending bound is shedding load, or while the
// deadline-miss rate is burning through the SLO budget. Backing for the
// HTTP /readyz endpoint, so orchestrators stop routing before hard
// failure.
func (e *Engine) Ready() (bool, string) {
	select {
	case <-e.done:
		return false, "finished"
	default:
	}
	e.intakeMu.Lock()
	closed, depth := e.closed, e.accepted-int(e.finished.Load())
	e.intakeMu.Unlock()
	switch {
	case closed:
		return false, "draining"
	case e.cfg.MaxPending > 0 && depth >= e.cfg.MaxPending:
		return false, "overloaded"
	case e.mon.Burn(e.NowMS()).Burning:
		return false, "slo-burn"
	}
	return true, ""
}

// scheduledFault is one journaled mid-run fault switch awaiting replay.
type scheduledFault struct {
	at   int64
	spec FaultSpec
}

// rateTracker keeps a short window of (wall time, finished jobs) samples
// so shed responses can estimate the current drain rate.
type rateTracker struct {
	mu  sync.Mutex
	pts []ratePoint
}

type ratePoint struct {
	at  time.Time
	fin int64
}

// rateWindow bounds how far back the drain-rate estimate looks.
const rateWindow = 10 * time.Second

func (t *rateTracker) observe(at time.Time, fin int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.pts)
	if n > 0 && t.pts[n-1].fin == fin && at.Sub(t.pts[n-1].at) < 250*time.Millisecond {
		return
	}
	t.pts = append(t.pts, ratePoint{at: at, fin: fin})
	// Drop samples older than the window, always keeping two.
	cut := 0
	for cut < len(t.pts)-2 && at.Sub(t.pts[cut].at) > rateWindow {
		cut++
	}
	t.pts = t.pts[cut:]
}

// perSec returns the drain rate in jobs per wall second over the sample
// window, or 0 when unknown.
func (t *rateTracker) perSec() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.pts)
	if n < 2 {
		return 0
	}
	dt := t.pts[n-1].at.Sub(t.pts[0].at).Seconds()
	df := float64(t.pts[n-1].fin - t.pts[0].fin)
	if dt <= 0 || df <= 0 {
		return 0
	}
	return df / dt
}

func (e *Engine) end(m *sim.Metrics, err error) {
	e.mu.Lock()
	e.metrics, e.runErr = m, err
	e.mu.Unlock()
}

// --- Queries ---

// JobState is the lifecycle state reported for a submission.
type JobState string

const (
	StateRejected  JobState = "rejected"
	StateQueued    JobState = "queued"
	StateScheduled JobState = "scheduled"
	StateRunning   JobState = "running"
	StateCompleted JobState = "completed"
	StateAbandoned JobState = "abandoned"
	// StateWithdrawn marks a submission pulled back out of this engine's
	// intake by a shard rebalancer; the job lives on — under its original
	// global ID — in the shard it migrated to.
	StateWithdrawn JobState = "withdrawn"
)

// TaskPlacement is one task's planned or actual placement.
type TaskPlacement struct {
	Task     string `json:"task"`
	JobID    int    `json:"jobId"`
	Type     string `json:"type"`
	Resource int    `json:"resource"`
	StartMS  int64  `json:"startMs"`
	EndMS    int64  `json:"endMs"`
	Started  bool   `json:"started"`
	Done     bool   `json:"done"`
}

// JobStatus is the queryable view of one submission.
type JobStatus struct {
	ID    int      `json:"id"`
	State JobState `json:"state"`
	// Reason explains a rejection (admission check or injection failure).
	Reason          string `json:"reason,omitempty"`
	ArrivalMS       int64  `json:"arrivalMs"`
	EarliestStartMS int64  `json:"earliestStartMs"`
	DeadlineMS      int64  `json:"deadlineMs"`
	MapTasks        int    `json:"mapTasks"`
	ReduceTasks     int    `json:"reduceTasks"`
	CompletedTasks  int    `json:"completedTasks"`
	// CompletionMS is set once the job finished; Late reports whether it
	// missed its deadline.
	CompletionMS int64 `json:"completionMs,omitempty"`
	Late         bool  `json:"late"`
	// PredictedEndMS is the latest end over the job's current placements
	// (0 while any task is unplaced); PredictedLateMS is how far that
	// overshoots the deadline (0 when on time or unknown).
	PredictedEndMS  int64           `json:"predictedEndMs,omitempty"`
	PredictedLateMS int64           `json:"predictedLateMs,omitempty"`
	Placements      []TaskPlacement `json:"placements,omitempty"`
}

// Job returns the status of one submission, with per-task placements.
func (e *Engine) Job(id int) (JobStatus, bool) {
	e.intakeMu.Lock()
	entry, ok := e.entries[id]
	e.intakeMu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	return e.status(entry, true), true
}

// Jobs returns the status of every submission in ID order, without
// placements.
func (e *Engine) Jobs() []JobStatus {
	e.intakeMu.Lock()
	ids := append([]int(nil), e.order...)
	entries := make([]*jobEntry, len(ids))
	for i, id := range ids {
		entries[i] = e.entries[id]
	}
	e.intakeMu.Unlock()
	out := make([]JobStatus, len(entries))
	for i, entry := range entries {
		out[i] = e.status(entry, false)
	}
	return out
}

func (e *Engine) status(entry *jobEntry, withPlacements bool) JobStatus {
	if entry.rejectReason != "" {
		return JobStatus{ID: entry.id, State: StateRejected, Reason: entry.rejectReason,
			DeadlineMS: entry.rejectDeadline}
	}
	if entry.withdrawn {
		j := entry.job
		return JobStatus{ID: entry.id, State: StateWithdrawn,
			ArrivalMS: j.Arrival, EarliestStartMS: j.EarliestStart, DeadlineMS: j.Deadline,
			MapTasks: len(j.MapTasks), ReduceTasks: len(j.ReduceTasks)}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	j := entry.job
	st := JobStatus{
		ID:              entry.id,
		ArrivalMS:       j.Arrival,
		EarliestStartMS: j.EarliestStart,
		DeadlineMS:      j.Deadline,
		MapTasks:        len(j.MapTasks),
		ReduceTasks:     len(j.ReduceTasks),
	}
	if entry.injectErr != nil {
		st.State = StateRejected
		st.Reason = entry.injectErr.Error()
		return st
	}
	var (
		anyStarted bool
		allPlaced  = true
		end        int64
	)
	for _, t := range j.Tasks() {
		res, start, placed := e.sim.Placement(t)
		switch {
		case e.sim.Completed(t):
			st.CompletedTasks++
		case e.sim.Started(t):
			anyStarted = true
		}
		if !placed {
			allPlaced = false
		} else if tEnd := start + e.sim.RunningExec(t); tEnd > end {
			end = tEnd
		}
		if withPlacements && placed {
			st.Placements = append(st.Placements, TaskPlacement{
				Task: t.ID, JobID: j.ID, Type: t.Type.String(), Resource: res,
				StartMS: start, EndMS: start + e.sim.RunningExec(t),
				Started: e.sim.Started(t), Done: e.sim.Completed(t),
			})
		}
	}
	switch {
	case e.sim.Abandoned(j):
		st.State = StateAbandoned
	default:
		if at, done := e.sim.JobDone(j); done {
			st.State = StateCompleted
			st.CompletionMS = at
			st.Late = at > j.Deadline
			return st
		}
		switch {
		case anyStarted || st.CompletedTasks > 0:
			st.State = StateRunning
		case allPlaced:
			st.State = StateScheduled
		default:
			st.State = StateQueued
		}
		if allPlaced {
			st.PredictedEndMS = end
			if end > j.Deadline {
				st.PredictedLateMS = end - j.Deadline
			}
		}
	}
	return st
}

// Schedule returns the current placement plan: every placed, not-yet-
// completed task, ordered by start time then task ID.
func (e *Engine) Schedule() []TaskPlacement {
	e.intakeMu.Lock()
	entries := make([]*jobEntry, 0, len(e.order))
	for _, id := range e.order {
		entries = append(entries, e.entries[id])
	}
	e.intakeMu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []TaskPlacement
	for _, entry := range entries {
		if entry.job == nil {
			continue
		}
		for _, t := range entry.job.Tasks() {
			res, start, placed := e.sim.Placement(t)
			if !placed || e.sim.Completed(t) {
				continue
			}
			out = append(out, TaskPlacement{
				Task: t.ID, JobID: entry.job.ID, Type: t.Type.String(), Resource: res,
				StartMS: start, EndMS: start + e.sim.RunningExec(t),
				Started: e.sim.Started(t),
			})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].StartMS != out[b].StartMS {
			return out[a].StartMS < out[b].StartMS
		}
		return out[a].Task < out[b].Task
	})
	return out
}

// Snapshot is the engine-wide metrics view behind GET /v1/metrics.
type Snapshot struct {
	Mode      string `json:"mode"`
	Policy    string `json:"policy"`
	SimTimeMS int64  `json:"simTimeMs"`
	Running   bool   `json:"running"`
	Finished  bool   `json:"finished"`
	Closed    bool   `json:"closed"`

	Submitted int `json:"submitted"`
	Rejected  int `json:"rejected"`
	// Shed counts submissions bounced by the MaxPending backpressure
	// bound; Pending is the current accepted-but-unfinished depth that
	// bound applies to.
	Shed       int `json:"shed"`
	Pending    int `json:"pending"`
	MaxPending int `json:"maxPending,omitempty"`
	// Journal is the write-ahead journal path when durability is on.
	Journal string `json:"journal,omitempty"`
	// Fingerprint is the final metrics fingerprint (16 hex digits), set
	// once the run finished; loadgen -verify compares it against an
	// offline replay of the same stream.
	Fingerprint string `json:"fingerprint,omitempty"`

	JobsArrived   int `json:"jobsArrived"`
	JobsCompleted int `json:"jobsCompleted"`
	LateJobs      int `json:"lateJobs"`
	JobsAbandoned int `json:"jobsAbandoned"`
	Outstanding   int `json:"outstanding"`

	TasksFailed int `json:"tasksFailed,omitempty"`
	TasksKilled int `json:"tasksKilled,omitempty"`
	Outages     int `json:"outages,omitempty"`

	Manager *core.Stats `json:"manager,omitempty"`

	Counters map[string]int64 `json:"counters,omitempty"`
	Gauges   map[string]int64 `json:"gauges,omitempty"`

	// SLO is the sliding-window deadline-miss burn state; the readiness
	// probe reports "slo-burn" while SLO.Burning is set.
	SLO *slo.BurnInfo `json:"slo,omitempty"`
	// MissByClass counts attributed deadline misses (late completions plus
	// abandonments) per attribution class; the values sum to
	// LateJobs + JobsAbandoned once the run drains.
	MissByClass map[string]int64 `json:"missByClass,omitempty"`
}

// Metrics returns the current engine-wide snapshot; safe mid-run.
func (e *Engine) Metrics() Snapshot {
	e.intakeMu.Lock()
	snap := Snapshot{
		Mode:       e.cfg.Mode.String(),
		Policy:     e.policy,
		Submitted:  e.nextID,
		Rejected:   e.rejects,
		Shed:       e.shed,
		Pending:    e.accepted - int(e.finished.Load()),
		MaxPending: e.cfg.MaxPending,
		Journal:    e.cfg.JournalPath,
		Running:    e.started,
		Closed:     e.closed,
	}
	e.intakeMu.Unlock()
	select {
	case <-e.done:
		snap.Finished = true
		snap.Running = false
	default:
	}
	e.mu.Lock()
	if snap.Finished && e.metrics != nil {
		snap.Fingerprint = fmt.Sprintf("%016x", e.metrics.Fingerprint())
	}
	m := e.sim.CurrentMetrics()
	snap.SimTimeMS = e.sim.Now()
	snap.Outstanding = e.sim.OutstandingJobs()
	if st, ok := e.rm.(interface{ Stats() core.Stats }); ok {
		stats := st.Stats()
		snap.Manager = &stats
	}
	e.mu.Unlock()
	snap.JobsArrived = m.JobsArrived
	snap.JobsCompleted = m.JobsCompleted
	snap.LateJobs = m.LateJobs
	snap.JobsAbandoned = m.JobsAbandoned
	snap.TasksFailed = m.TasksFailed
	snap.TasksKilled = m.TasksKilled
	snap.Outages = m.Outages
	snap.Counters, snap.Gauges = e.cfg.Telemetry.Snapshot()
	burn := e.mon.Burn(snap.SimTimeMS)
	snap.SLO = &burn
	if by := missByClass(e.mon.AttributionTotals()); len(by) > 0 {
		snap.MissByClass = by
	}
	return snap
}

// missByClass folds a monitor's attribution totals into one miss count per
// class, dropping empty classes.
func missByClass(tot slo.Totals) map[string]int64 {
	var by map[string]int64
	for _, class := range slo.Classes() {
		if n := tot.LateByClass[class] + tot.AbandonedByClass[class]; n > 0 {
			if by == nil {
				by = make(map[string]int64)
			}
			by[class] = n
		}
	}
	return by
}

// Trace returns one job's recorded lifecycle timeline plus how many early
// events the bounded ring dropped; ok is false for unknown IDs.
func (e *Engine) Trace(id int) (events []slo.TraceEvent, dropped int, ok bool) {
	return e.mon.Trace(id)
}

// Burn returns the current SLO burn state at the engine's clock.
func (e *Engine) Burn() slo.BurnInfo { return e.mon.Burn(e.NowMS()) }

// PromData is the raw material of one engine's Prometheus exposition:
// counter and gauge maps (telemetry registries plus the engine-derived
// families), histogram snapshots, and the two non-integer SLO burn ratios.
// The maps and snapshots are mergeable across engines — counters and most
// gauges sum, histograms merge bucket-wise — which is how the shard
// front-end renders one exposition for N engines.
type PromData struct {
	Counters map[string]int64
	Gauges   map[string]int64
	Hists    []obs.HistSnapshot
	MissRate float64
	BurnRate float64
}

// PromData collects the engine's current exposition data; see WriteProm
// for the families it carries.
func (e *Engine) PromData() PromData {
	counters, gauges := e.cfg.Telemetry.Snapshot()
	if counters == nil {
		counters = make(map[string]int64)
	}
	if gauges == nil {
		gauges = make(map[string]int64)
	}
	e.intakeMu.Lock()
	counters["jobs_submitted_total"] = int64(e.nextID)
	counters["jobs_rejected_total"] = int64(e.rejects)
	counters["jobs_shed_total"] = int64(e.shed)
	gauges["pending_jobs"] = int64(e.accepted - int(e.finished.Load()))
	e.intakeMu.Unlock()
	e.mu.Lock()
	m := e.sim.CurrentMetrics()
	now := e.sim.Now()
	outstanding := e.sim.OutstandingJobs()
	e.mu.Unlock()
	counters["jobs_arrived_total"] = int64(m.JobsArrived)
	counters["jobs_completed_total"] = int64(m.JobsCompleted)
	counters["jobs_late_total"] = int64(m.LateJobs)
	counters["jobs_abandoned_total"] = int64(m.JobsAbandoned)
	if m.TasksFailed > 0 {
		counters["tasks_failed_total"] = int64(m.TasksFailed)
	}
	if m.TasksKilled > 0 {
		counters["tasks_killed_total"] = int64(m.TasksKilled)
	}
	gauges["sim_time_ms"] = now
	gauges["outstanding_jobs"] = int64(outstanding)
	// Attribution counters are re-derived from the monitor (rather than
	// read back from telemetry) so they are exposed even sink-less; when a
	// sink is attached the telemetry registry holds identical values.
	var missTotal int64
	for class, n := range missByClass(e.mon.AttributionTotals()) {
		counters[slo.CounterMiss+class] = n
		missTotal += n
	}
	if missTotal > 0 {
		counters["slo_miss_total"] = missTotal
	}
	b := e.mon.Burn(e.NowMS())
	gauges["slo_window_finished"] = int64(b.Finished)
	gauges["slo_window_missed"] = int64(b.Missed)
	var burning int64
	if b.Burning {
		burning = 1
	}
	gauges["slo_burning"] = burning
	return PromData{Counters: counters, Gauges: gauges,
		Hists: e.cfg.Telemetry.HistSnapshots(), MissRate: b.MissRate, BurnRate: b.BurnRate}
}

// WriteProm renders the engine's state as Prometheus text exposition
// (format 0.0.4) under the mrcp_ namespace: every telemetry counter,
// gauge, and histogram, plus engine-derived job-flow counters, queue
// gauges, attribution counters, and the SLO burn gauges. The derived
// families are present even when no telemetry sink is attached.
func (e *Engine) WriteProm(w io.Writer) error {
	d := e.PromData()
	if err := obs.WritePrometheus(w, "mrcp_", d.Counters, d.Gauges, d.Hists); err != nil {
		return err
	}
	return WriteBurnGauges(w, d.MissRate, d.BurnRate)
}

// WriteBurnGauges renders the two non-integer SLO burn scalars by hand in
// the same format the exposition writer uses; shared with the shard
// front-end's merged exposition.
func WriteBurnGauges(w io.Writer, missRate, burnRate float64) error {
	_, err := fmt.Fprintf(w,
		"# TYPE mrcp_slo_miss_rate gauge\nmrcp_slo_miss_rate %s\n"+
			"# TYPE mrcp_slo_burn_rate gauge\nmrcp_slo_burn_rate %s\n",
		strconv.FormatFloat(missRate, 'g', -1, 64),
		strconv.FormatFloat(burnRate, 'g', -1, 64))
	return err
}

// String implements fmt.Stringer for logs.
func (e *Engine) String() string {
	return fmt.Sprintf("service.Engine(%s, %s)", e.rm.Name(), e.cfg.Mode)
}
