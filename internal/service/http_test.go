package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mrcprm/internal/sim"
	"mrcprm/internal/stats"
	"mrcprm/internal/workload"
)

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestHTTPEndToEnd(t *testing.T) {
	cluster := sim.Cluster{NumResources: 4, MapSlots: 2, ReduceSlots: 2}
	e, err := New(Config{Cluster: cluster, Manager: deterministicCfg(), Admission: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(e))
	defer ts.Close()

	var health map[string]any
	if resp := getJSON(t, ts.URL+"/healthz", &health); resp.StatusCode != 200 {
		t.Fatalf("healthz %d", resp.StatusCode)
	}
	if health["mode"] != "virtual" || health["running"] != false {
		t.Fatalf("healthz %+v", health)
	}

	wcfg := workload.DefaultSynthetic()
	wcfg.NumResources = 4
	jobs, err := wcfg.Generate(5, stats.NewStream(9, 10))
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		resp, body := postJSON(t, ts.URL+"/v1/jobs", workload.SpecOf(j))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: %d %s", resp.StatusCode, body)
		}
	}

	// Malformed JSON and unknown fields are 400s.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed submit: %d", resp.StatusCode)
	}

	// A provably infeasible job is a 422 and stays queryable as rejected.
	resp, body := postJSON(t, ts.URL+"/v1/jobs",
		workload.JobSpec{DeadlineMS: 10, MapExecMS: []int64{500_000_000}})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("infeasible submit: %d %s", resp.StatusCode, body)
	}
	var rej struct {
		ID int `json:"id"`
	}
	if err := json.Unmarshal(body, &rej); err != nil {
		t.Fatal(err)
	}

	var list []JobStatus
	getJSON(t, ts.URL+"/v1/jobs", &list)
	if len(list) != len(jobs)+1 {
		t.Fatalf("listed %d jobs, want %d", len(list), len(jobs)+1)
	}

	if resp := getJSON(t, ts.URL+"/v1/schedule", &[]TaskPlacement{}); resp.StatusCode != 200 {
		t.Fatalf("schedule %d", resp.StatusCode)
	}

	resp, body = postJSON(t, ts.URL+"/v1/admin/run", map[string]bool{"close": true})
	if resp.StatusCode != 200 {
		t.Fatalf("run: %d %s", resp.StatusCode, body)
	}
	select {
	case <-e.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("run did not finish")
	}
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}

	var st JobStatus
	getJSON(t, fmt.Sprintf("%s/v1/jobs/%d", ts.URL, jobs[0].ID), &st)
	if st.State != StateCompleted {
		t.Fatalf("job 0 state %s", st.State)
	}
	if len(st.Placements) != jobs[0].NumTasks() {
		t.Fatalf("job 0 has %d placements, want %d", len(st.Placements), jobs[0].NumTasks())
	}
	var rejSt JobStatus
	getJSON(t, fmt.Sprintf("%s/v1/jobs/%d", ts.URL, rej.ID), &rejSt)
	if rejSt.State != StateRejected {
		t.Fatalf("rejected job state %s", rejSt.State)
	}

	var snap Snapshot
	getJSON(t, ts.URL+"/v1/metrics", &snap)
	if snap.JobsCompleted != len(jobs) || snap.Rejected != 1 || !snap.Finished {
		t.Fatalf("metrics %+v", snap)
	}
	if snap.Manager == nil || snap.Manager.Rounds == 0 {
		t.Fatalf("manager stats missing: %+v", snap.Manager)
	}

	// Closed intake rejects further submissions with 503.
	resp, _ = postJSON(t, ts.URL+"/v1/jobs", workload.SpecOf(jobs[0]))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after close: %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/jobs/999", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d", resp.StatusCode)
	}
}

func TestHTTPFaultInjection(t *testing.T) {
	cluster := sim.Cluster{NumResources: 4, MapSlots: 2, ReduceSlots: 2}
	e, err := New(Config{Cluster: cluster, Manager: deterministicCfg()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(e))
	defer ts.Close()

	// Outage window on resource 0, starting immediately.
	resp, body := postJSON(t, ts.URL+"/v1/admin/faults",
		map[string]any{"resource": 0, "durationMs": 5000})
	if resp.StatusCode != 200 {
		t.Fatalf("outage: %d %s", resp.StatusCode, body)
	}
	// Swap in a straggler-only plan over the API.
	resp, body = postJSON(t, ts.URL+"/v1/admin/faults",
		map[string]any{"stragglerProb": 0.2, "seed": 7})
	if resp.StatusCode != 200 {
		t.Fatalf("plan: %d %s", resp.StatusCode, body)
	}
	// An invalid outage (unknown resource) is a 400.
	resp, _ = postJSON(t, ts.URL+"/v1/admin/faults",
		map[string]any{"resource": 99, "durationMs": 1000})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad outage: %d", resp.StatusCode)
	}

	for i := 0; i < 4; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/jobs", workload.JobSpec{
			DeadlineMS: 3_600_000, MapExecMS: []int64{2000, 2000}, ReduceExecMS: []int64{1000}})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: %d %s", resp.StatusCode, body)
		}
	}
	postJSON(t, ts.URL+"/v1/admin/run", map[string]bool{"close": true})
	select {
	case <-e.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("run did not finish")
	}
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	getJSON(t, ts.URL+"/v1/metrics", &snap)
	if snap.Outages < 1 {
		t.Fatalf("no outage recorded: %+v", snap)
	}
	if snap.JobsCompleted != 4 {
		t.Fatalf("completed %d, want 4", snap.JobsCompleted)
	}
}
