package service

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"mrcprm/internal/core"
	"mrcprm/internal/sim"
	"mrcprm/internal/stats"
	"mrcprm/internal/trace"
	"mrcprm/internal/workload"
)

// deterministicCfg disables the wall-clock solve budget so runs are a pure
// function of the seed (same settings as the core and sim determinism
// tests).
func deterministicCfg() core.Config { return core.DeterministicConfig() }

// TestVirtualRunMatchesSim is the golden determinism contract: a
// virtual-clock engine run over a submitted job stream produces a
// byte-identical executed schedule — and identical metrics fingerprints —
// to a plain sim.New+Run over the same jobs.
func TestVirtualRunMatchesSim(t *testing.T) {
	wcfg := workload.DefaultSynthetic()
	wcfg.NumResources = 10
	jobs, err := wcfg.Generate(20, stats.NewStream(5, 6))
	if err != nil {
		t.Fatal(err)
	}
	cluster := sim.Cluster{NumResources: 10, MapSlots: 2, ReduceSlots: 2}

	ref := trace.NewRecorder()
	s, err := sim.New(cluster, core.New(cluster, deterministicCfg()), jobs)
	if err != nil {
		t.Fatal(err)
	}
	s.SetObserver(ref)
	refM, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}

	rec := trace.NewRecorder()
	e, err := New(Config{Cluster: cluster, Manager: deterministicCfg(), Observer: rec})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		id, err := e.Submit(workload.SpecOf(j))
		if err != nil {
			t.Fatal(err)
		}
		if id != j.ID {
			t.Fatalf("engine assigned id %d to job %d", id, j.ID)
		}
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	e.CloseIntake()
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	m, _ := e.Result()

	var want, got bytes.Buffer
	if err := ref.WriteCSV(&want); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteCSV(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("executed schedules differ: %d vs %d trace bytes", want.Len(), got.Len())
	}
	if m.LateJobs != refM.LateJobs {
		t.Fatalf("late jobs %d, want %d", m.LateJobs, refM.LateJobs)
	}
	if m.Fingerprint() != refM.Fingerprint() {
		t.Fatalf("metrics fingerprints differ: %x vs %x", m.Fingerprint(), refM.Fingerprint())
	}
}

// TestConcurrentSubmissions exercises the intake path under the race
// detector: submissions and status queries land from several goroutines
// while the run loop is stepping (and solving) concurrently.
func TestConcurrentSubmissions(t *testing.T) {
	cluster := sim.Cluster{NumResources: 4, MapSlots: 2, ReduceSlots: 2}
	cfg := deterministicCfg()
	cfg.BatchWindow = 2 * time.Second
	cfg.BatchMaxPending = 8
	e, err := New(Config{Cluster: cluster, Manager: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	const goroutines, perG = 4, 10
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				spec := workload.JobSpec{
					DeadlineMS:   3_600_000,
					MapExecMS:    []int64{1000, 2000},
					ReduceExecMS: []int64{1500},
				}
				if _, err := e.Submit(spec); err != nil {
					t.Error(err)
					return
				}
				if i%3 == 0 {
					e.Metrics()
					e.Jobs()
					e.Schedule()
				}
			}
		}(g)
	}
	wg.Wait()
	e.CloseIntake()
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	m, _ := e.Result()
	total := goroutines * perG
	if m.JobsArrived != total || m.JobsCompleted != total {
		t.Fatalf("arrived %d completed %d, want %d both", m.JobsArrived, m.JobsCompleted, total)
	}
	for _, st := range e.Jobs() {
		if st.State != StateCompleted {
			t.Fatalf("job %d ended in state %s", st.ID, st.State)
		}
	}
}

func TestAdmissionControl(t *testing.T) {
	cluster := sim.Cluster{NumResources: 1, MapSlots: 1, ReduceSlots: 1}
	e, err := New(Config{Cluster: cluster, Manager: deterministicCfg(), Admission: true})
	if err != nil {
		t.Fatal(err)
	}
	id, err := e.Submit(workload.JobSpec{DeadlineMS: 1000, MapExecMS: []int64{5000}})
	var ae *core.AdmissionError
	if !errors.As(err, &ae) {
		t.Fatalf("infeasible job accepted (err %v)", err)
	}
	st, ok := e.Job(id)
	if !ok || st.State != StateRejected || st.Reason == "" {
		t.Fatalf("rejected job status %+v", st)
	}
	id2, err := e.Submit(workload.JobSpec{DeadlineMS: 60_000, MapExecMS: []int64{5000}})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	e.CloseIntake()
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	st2, _ := e.Job(id2)
	if st2.State != StateCompleted || st2.Late {
		t.Fatalf("feasible job ended %+v", st2)
	}
	snap := e.Metrics()
	if snap.Submitted != 2 || snap.Rejected != 1 || snap.JobsCompleted != 1 {
		t.Fatalf("snapshot %+v", snap)
	}
}

// TestWallClockMode runs a tiny stream against the wall clock at high
// speedup; the daemon path must complete it and stamp submission-time
// arrivals.
func TestWallClockMode(t *testing.T) {
	cluster := sim.Cluster{NumResources: 2, MapSlots: 2, ReduceSlots: 2}
	e, err := New(Config{Cluster: cluster, Manager: deterministicCfg(), Mode: Wall, Speedup: 500})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		// The client-supplied arrival must be replaced with the submission
		// time, and the SLA window (here 1h after arrival) shifted with it.
		spec := workload.JobSpec{
			ArrivalMS:    999_999_999,
			DeadlineMS:   999_999_999 + 3_600_000,
			MapExecMS:    []int64{400, 400},
			ReduceExecMS: []int64{200},
		}
		if _, err := e.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	e.CloseIntake()
	select {
	case <-e.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("wall-clock run did not finish")
	}
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	m, _ := e.Result()
	if m.JobsCompleted != 3 {
		t.Fatalf("completed %d jobs, want 3", m.JobsCompleted)
	}
	for _, st := range e.Jobs() {
		if st.ArrivalMS >= 999_999_999 {
			t.Fatalf("job %d kept its client-supplied arrival %d", st.ID, st.ArrivalMS)
		}
		if got := st.DeadlineMS - st.ArrivalMS; got != 3_600_000 {
			t.Fatalf("job %d SLA window %dms after restamp, want 3600000", st.ID, got)
		}
	}
}

func TestStopAborts(t *testing.T) {
	cluster := sim.Cluster{NumResources: 2, MapSlots: 2, ReduceSlots: 2}
	e, err := New(Config{Cluster: cluster, Manager: deterministicCfg(), Mode: Wall, Speedup: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	// At speedup 1 this job takes minutes of wall time; Stop must abort it.
	if _, err := e.Submit(workload.JobSpec{DeadlineMS: 3_600_000, MapExecMS: []int64{600_000}}); err != nil {
		t.Fatal(err)
	}
	e.Stop()
	select {
	case <-e.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("Stop did not end the run")
	}
	if err := e.Wait(); !errors.Is(err, ErrStopped) {
		t.Fatalf("run error %v, want ErrStopped", err)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	cluster := sim.Cluster{NumResources: 1, MapSlots: 1, ReduceSlots: 1}
	e, err := New(Config{Cluster: cluster, Manager: deterministicCfg()})
	if err != nil {
		t.Fatal(err)
	}
	e.CloseIntake()
	if _, err := e.Submit(workload.JobSpec{DeadlineMS: 10_000, MapExecMS: []int64{100}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close returned %v, want ErrClosed", err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleStart(t *testing.T) {
	cluster := sim.Cluster{NumResources: 1, MapSlots: 1, ReduceSlots: 1}
	e, err := New(Config{Cluster: cluster, Manager: deterministicCfg()})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); !errors.Is(err, ErrRunning) {
		t.Fatalf("second Start returned %v, want ErrRunning", err)
	}
	e.CloseIntake()
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
}
