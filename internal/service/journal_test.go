package service

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mrcprm/internal/core"
	"mrcprm/internal/sim"
	"mrcprm/internal/stats"
	"mrcprm/internal/workload"
)

// testStream generates a deterministic job stream sized for fast runs.
func testStream(t *testing.T, n int) ([]*workload.Job, sim.Cluster) {
	t.Helper()
	wcfg := workload.DefaultSynthetic()
	wcfg.NumResources = 10
	jobs, err := wcfg.Generate(n, stats.NewStream(5, 6))
	if err != nil {
		t.Fatal(err)
	}
	return jobs, sim.Cluster{NumResources: 10, MapSlots: 2, ReduceSlots: 2}
}

// refFingerprint runs the stream through a plain simulator — the golden
// equivalent of an uninterrupted deterministic engine run.
func refFingerprint(t *testing.T, cluster sim.Cluster, jobs []*workload.Job) uint64 {
	t.Helper()
	s, err := sim.New(cluster, core.New(cluster, deterministicCfg()), jobs)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return m.Fingerprint()
}

// submitAll pushes the whole stream into the engine pre-Start.
func submitAll(t *testing.T, e *Engine, jobs []*workload.Job) {
	t.Helper()
	for _, j := range jobs {
		if _, err := e.Submit(workload.SpecOf(j)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestKillRecoverEquivalence is the acceptance criterion for the journal: a
// virtual-mode run interrupted at an arbitrary point and recovered from its
// journal produces a metrics fingerprint byte-identical to the
// uninterrupted run's.
func TestKillRecoverEquivalence(t *testing.T) {
	jobs, cluster := testStream(t, 20)
	want := refFingerprint(t, cluster, jobs)

	// The interruption instant is wall-clock arbitrary by construction:
	// each subtest stops the engine at a different point in its run
	// (including possibly before the first step and after the last).
	for _, after := range []time.Duration{0, 2 * time.Millisecond, 20 * time.Millisecond} {
		t.Run(after.String(), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "run.wal")
			cfg := Config{Cluster: cluster, Manager: deterministicCfg(),
				JournalPath: path, JournalSync: "none"}
			e, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			submitAll(t, e, jobs)
			e.CloseIntake()
			if err := e.Start(); err != nil {
				t.Fatal(err)
			}
			time.Sleep(after)
			e.Stop()
			<-e.Done()

			r, info, err := Recover(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if info.Accepted != len(jobs) || !info.Closed {
				t.Fatalf("recovered %d accepted (want %d), closed=%v", info.Accepted, len(jobs), info.Closed)
			}
			if err := r.Start(); err != nil {
				t.Fatal(err)
			}
			if err := r.Wait(); err != nil {
				t.Fatal(err)
			}
			m, _ := r.Result()
			if m.Fingerprint() != want {
				t.Fatalf("recovered fingerprint %016x, uninterrupted %016x", m.Fingerprint(), want)
			}
		})
	}
}

// TestRecoverReplaysFaultSwitch covers the recFaults path: a fault plan
// installed through ApplyFaults before Start replays into an identical
// recovered run (fault injection is seeded, hence deterministic).
func TestRecoverReplaysFaultSwitch(t *testing.T) {
	jobs, cluster := testStream(t, 5)
	path := filepath.Join(t.TempDir(), "run.wal")
	cfg := Config{Cluster: cluster, Manager: deterministicCfg(),
		JournalPath: path, JournalSync: "none"}
	spec := FaultSpec{FailRate: 0.05, StragglerProb: 0, Seed: 7}

	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ApplyFaults(spec); err != nil {
		t.Fatal(err)
	}
	submitAll(t, e, jobs)
	e.CloseIntake()
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	m, _ := e.Result()
	if m.TasksFailed == 0 {
		t.Fatal("fault plan injected no failures; test is vacuous")
	}

	r, info, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if info.FaultSwitches != 1 {
		t.Fatalf("recovered %d fault switches, want 1", info.FaultSwitches)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	if err := r.Wait(); err != nil {
		t.Fatal(err)
	}
	rm, _ := r.Result()
	if rm.Fingerprint() != m.Fingerprint() {
		t.Fatalf("recovered fingerprint %016x, original %016x", rm.Fingerprint(), m.Fingerprint())
	}
}

// frameOffsets returns the byte offset just past each record of a journal
// file, so tests can truncate at exact record boundaries.
func frameOffsets(t *testing.T, path string) []int64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var offs []int64
	off := int64(0)
	for off+8 <= int64(len(data)) {
		n := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		off += 8 + n
		offs = append(offs, off)
	}
	return offs
}

// TestRecoverTornTail journals a full run, truncates the file mid-record
// and at a record boundary, and asserts the recovered engine reproduces the
// fingerprint of the surviving submission prefix.
func TestRecoverTornTail(t *testing.T) {
	jobs, cluster := testStream(t, 12)
	dir := t.TempDir()
	path := filepath.Join(dir, "run.wal")
	cfg := Config{Cluster: cluster, Manager: deterministicCfg(),
		JournalPath: path, JournalSync: "none"}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	submitAll(t, e, jobs)
	// No close: the journal ends with the last submit record, so truncation
	// points map cleanly onto the submission prefix.
	e.Stop()
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	<-e.Done()

	offs := frameOffsets(t, path)
	// Records: 1 meta + len(jobs) submits.
	if len(offs) != 1+len(jobs) {
		t.Fatalf("journal has %d records, want %d", len(offs), 1+len(jobs))
	}
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name   string
		size   int64
		prefix int // surviving submissions
	}{
		// Cut 5 bytes into the last submit record's payload.
		{"mid-record", offs[len(offs)-1] - 5, len(jobs) - 1},
		// Cut exactly at the boundary after the 8th submit record.
		{"boundary", offs[8], 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			torn := filepath.Join(dir, tc.name+".wal")
			if err := os.WriteFile(torn, pristine[:tc.size], 0o644); err != nil {
				t.Fatal(err)
			}
			tcfg := cfg
			tcfg.JournalPath = torn
			r, info, err := Recover(tcfg)
			if err != nil {
				t.Fatal(err)
			}
			if info.Accepted != tc.prefix {
				t.Fatalf("recovered %d submissions, want %d", info.Accepted, tc.prefix)
			}
			if tc.name == "mid-record" && info.TornBytes == 0 {
				t.Fatal("mid-record truncation not reported as torn")
			}
			r.CloseIntake()
			if err := r.Start(); err != nil {
				t.Fatal(err)
			}
			if err := r.Wait(); err != nil {
				t.Fatal(err)
			}
			m, _ := r.Result()
			want := refFingerprint(t, cluster, jobs[:tc.prefix])
			if m.Fingerprint() != want {
				t.Fatalf("prefix fingerprint %016x, want %016x", m.Fingerprint(), want)
			}
		})
	}
}

// TestNewRefusesDirtyJournal pins the guard against silently appending a
// second run to an existing journal.
func TestNewRefusesDirtyJournal(t *testing.T) {
	jobs, cluster := testStream(t, 3)
	path := filepath.Join(t.TempDir(), "run.wal")
	cfg := Config{Cluster: cluster, Manager: deterministicCfg(),
		JournalPath: path, JournalSync: "none"}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	submitAll(t, e, jobs)
	e.Stop()
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	<-e.Done()

	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "Recover") {
		t.Fatalf("New on a dirty journal: %v, want a pointer to Recover", err)
	}
}

// TestRecoverRejectsMismatchedConfig pins the meta-record guard: a journal
// must not replay into an engine with a different policy or cluster.
func TestRecoverRejectsMismatchedConfig(t *testing.T) {
	jobs, cluster := testStream(t, 3)
	path := filepath.Join(t.TempDir(), "run.wal")
	cfg := Config{Cluster: cluster, Manager: deterministicCfg(),
		JournalPath: path, JournalSync: "none"}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	submitAll(t, e, jobs)
	e.Stop()
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	<-e.Done()

	bad := cfg
	bad.Policy = "minedf"
	if _, _, err := Recover(bad); err == nil {
		t.Fatal("Recover accepted a journal written by another policy")
	}
	bad = cfg
	bad.Cluster.NumResources = 5
	if _, _, err := Recover(bad); err == nil {
		t.Fatal("Recover accepted a journal written for another cluster")
	}
}

// TestBackpressureSheds covers the MaxPending bound: excess submissions are
// shed with a typed, retry-hinted error and counted in the snapshot.
func TestBackpressureSheds(t *testing.T) {
	jobs, cluster := testStream(t, 6)
	e, err := New(Config{Cluster: cluster, Manager: deterministicCfg(), MaxPending: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs[:4] {
		if _, err := e.Submit(workload.SpecOf(j)); err != nil {
			t.Fatal(err)
		}
	}
	_, err = e.Submit(workload.SpecOf(jobs[4]))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("5th submission: %v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("5th submission error %T carries no *OverloadError", err)
	}
	if oe.Pending != 4 || oe.Max != 4 || oe.RetryAfter < time.Second {
		t.Fatalf("overload detail %+v", oe)
	}
	if ok, reason := e.Ready(); ok || reason != "overloaded" {
		t.Fatalf("Ready() = %v, %q during overload", ok, reason)
	}
	snap := e.Metrics()
	if snap.Shed != 1 || snap.Pending != 4 || snap.MaxPending != 4 {
		t.Fatalf("snapshot shed=%d pending=%d max=%d", snap.Shed, snap.Pending, snap.MaxPending)
	}

	// Finishing the run drains the depth; the shed count is cumulative.
	e.CloseIntake()
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	snap = e.Metrics()
	if snap.Pending != 0 || snap.Shed != 1 {
		t.Fatalf("post-run shed=%d pending=%d", snap.Shed, snap.Pending)
	}
}

// TestReadyLifecycle pins the readiness reasons over an engine's life.
func TestReadyLifecycle(t *testing.T) {
	jobs, cluster := testStream(t, 2)
	e, err := New(Config{Cluster: cluster, Manager: deterministicCfg()})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := e.Ready(); !ok {
		t.Fatal("fresh engine not ready")
	}
	submitAll(t, e, jobs)
	e.CloseIntake()
	if ok, reason := e.Ready(); ok || reason != "draining" {
		t.Fatalf("Ready() = %v, %q after CloseIntake", ok, reason)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	if ok, reason := e.Ready(); ok || reason != "finished" {
		t.Fatalf("Ready() = %v, %q after the run", ok, reason)
	}
}

// TestHTTPBackpressureAndReadyz covers the HTTP surface of overload:
// /readyz flips to 503 and submissions get 429 with a Retry-After header.
func TestHTTPBackpressureAndReadyz(t *testing.T) {
	jobs, cluster := testStream(t, 4)
	e, err := New(Config{Cluster: cluster, Manager: deterministicCfg(), MaxPending: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	if got := getStatus(t, srv.URL+"/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz before load: %d", got)
	}
	for _, j := range jobs[:2] {
		resp := postSpec(t, srv.URL, workload.SpecOf(j))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: %d", resp.StatusCode)
		}
	}
	resp := postSpec(t, srv.URL, workload.SpecOf(jobs[2]))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded submit: %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After header")
	}
	if got := getStatus(t, srv.URL+"/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during overload: %d, want 503", got)
	}
}

func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestHTTPBodyCap pins the MaxBytesReader guard: an oversized submission
// body is rejected as malformed rather than read unboundedly.
func TestHTTPBodyCap(t *testing.T) {
	_, cluster := testStream(t, 1)
	e, err := New(Config{Cluster: cluster, Manager: deterministicCfg()})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	huge := fmt.Sprintf(`{"arrivalMs":0,"deadlineMs":1,"mapExecMs":[1%s]}`,
		strings.Repeat(",1", maxBodyBytes/2))
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized body: %d, want 400", resp.StatusCode)
	}
}

func postSpec(t *testing.T, base string, spec workload.JobSpec) *http.Response {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", specReader(t, spec))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func specReader(t *testing.T, spec workload.JobSpec) *strings.Reader {
	t.Helper()
	return strings.NewReader(fmt.Sprintf(
		`{"arrivalMs":%d,"earliestStartMs":%d,"deadlineMs":%d,"mapExecMs":[%s]}`,
		spec.ArrivalMS, spec.EarliestStartMS, spec.DeadlineMS, joinInt64(spec.MapExecMS)))
}

func joinInt64(xs []int64) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprint(x)
	}
	return strings.Join(parts, ",")
}
