package service

// Durability layer: the engine's write-ahead journal and crash recovery.
//
// The journal (internal/wal) is a log of *inputs and decisions*, not of
// simulator state: accepted and rejected submissions, runtime fault
// switches, injected outages, and the intake close. Because a virtual-mode
// run is a deterministic function of exactly those inputs (the golden
// contract pinned by TestVirtualRunMatchesSim), recovery does not need
// checkpoints — Recover rebuilds a fresh engine, replays the journaled
// inputs, and re-runs; the result is bit-identical to the uninterrupted
// run, fingerprint and all. Timetable records are the one exception: they
// are forensic audit snapshots of the installed schedule (what was
// promised to clients at crash time) and are ignored by replay.
//
// The bit-exactness guarantee targets the virtual-clock regime in which
// submissions precede Start (the loadgen / CI replay flow) under
// deterministic solver settings (core.DeterministicConfig). Mid-run
// submissions and fault switches are replayed at their recorded simulated
// instants, which reproduces the original run up to the clock position of
// the racing intake drain; wall-mode journals recover every accepted job
// but re-execute the stream on the recovered engine's own clock.

import (
	"encoding/json"
	"fmt"

	"mrcprm/internal/core"
	"mrcprm/internal/faults"
	"mrcprm/internal/sim"
	"mrcprm/internal/wal"
	"mrcprm/internal/workload"
)

// Journal record kinds.
const (
	recMeta      = "meta"
	recSubmit    = "submit"
	recFaults    = "faults"
	recOutage    = "outage"
	recClose     = "close"
	recTimetable = "timetable"
	recWithdraw  = "withdraw"
)

// journalRecord is the one-line JSON payload of every WAL record; Kind
// selects which optional fields are meaningful.
type journalRecord struct {
	Kind  string `json:"kind"`
	SimMS int64  `json:"simMs"`

	// meta (first record of every journal).
	Policy  string       `json:"policy,omitempty"`
	Mode    string       `json:"mode,omitempty"`
	Cluster *sim.Cluster `json:"cluster,omitempty"`

	// submit (ID is also the target of a withdraw record).
	ID       int               `json:"id"`
	Spec     *workload.JobSpec `json:"spec,omitempty"`
	Rejected string            `json:"rejected,omitempty"`
	// Tag is the external identity a shard router attached via
	// SubmitTagged (the job's original global ID after a migration); nil
	// for plain submissions.
	Tag *int64 `json:"tag,omitempty"`

	// faults.
	Faults *FaultSpec `json:"faults,omitempty"`

	// outage.
	Outage *outageRecord `json:"outage,omitempty"`

	// timetable (audit only; replay ignores it).
	Placements []TaskPlacement `json:"placements,omitempty"`
}

// outageRecord is the journaled form of one injected outage window, with
// the clamping already applied.
type outageRecord struct {
	Resource int   `json:"resource"`
	DownMS   int64 `json:"downMs"`
	UpMS     int64 `json:"upMs"`
}

// FaultSpec is the serializable per-attempt fault plan installed through
// ApplyFaults (and POST /v1/admin/faults): the same knobs as the HTTP
// body, journaled verbatim so recovery can rebuild the identical seeded
// plan. The zero value disables injection.
type FaultSpec struct {
	FailRate      float64 `json:"failRate"`
	StragglerProb float64 `json:"stragglerProb"`
	Seed          uint64  `json:"seed,omitempty"`
}

func (s FaultSpec) enabled() bool { return s.FailRate > 0 || s.StragglerProb > 0 }

// plan builds the seeded injector; nil for a disabled spec.
func (s FaultSpec) plan() (sim.FaultInjector, error) {
	if !s.enabled() {
		return nil, nil
	}
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	return faults.New(faults.Config{
		TaskFailureProb: s.FailRate,
		StragglerProb:   s.StragglerProb,
		Seed1:           seed,
		Seed2:           0xfa17,
	})
}

// ApplyFaults journals and installs the per-attempt fault plan described
// by spec; an all-zero spec disables injection. Unlike SetFaults (which
// accepts an arbitrary injector and therefore cannot be journaled), plans
// installed through ApplyFaults are replayed on recovery at the simulated
// instant of the switch.
func (e *Engine) ApplyFaults(spec FaultSpec) error {
	plan, err := spec.plan()
	if err != nil {
		return err
	}
	if err := e.journalAppend(&journalRecord{
		Kind: recFaults, SimMS: e.simNow.Load(), Faults: &spec,
	}); err != nil {
		return err
	}
	e.sw.Set(plan)
	return nil
}

// metaRecord describes the engine shape; Recover refuses to replay a
// journal into a mismatched configuration.
func (e *Engine) metaRecord() *journalRecord {
	cluster := e.cfg.Cluster
	return &journalRecord{
		Kind:    recMeta,
		Policy:  e.policy,
		Mode:    e.cfg.Mode.String(),
		Cluster: &cluster,
	}
}

// journalAppend marshals and appends one record; a nil journal is a no-op.
// Append failures are wrapped in ErrJournal so the HTTP layer can map them
// to a server-side 500 rather than a client error.
func (e *Engine) journalAppend(rec *journalRecord) error {
	if e.journal == nil {
		return nil
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("%w: marshal %s record: %v", ErrJournal, rec.Kind, err)
	}
	if err := e.journal.Append(b); err != nil {
		return fmt.Errorf("%w: %v", ErrJournal, err)
	}
	return nil
}

// journalTimetable appends an installed-timetable audit snapshot (every
// placed, not-yet-completed task). Called from the run loop, which holds
// neither engine lock at that point.
func (e *Engine) journalTimetable() {
	if e.journal == nil {
		return
	}
	_ = e.journalAppend(&journalRecord{
		Kind: recTimetable, SimMS: e.simNow.Load(), Placements: e.Schedule(),
	})
}

// closeJournal syncs and closes the journal when the run loop exits; every
// record that matters is already on disk by then.
func (e *Engine) closeJournal() {
	if e.journal != nil {
		_ = e.journal.Close()
	}
}

// RecoveryInfo summarizes what Recover replayed from a journal.
type RecoveryInfo struct {
	// Records is the total number of intact journal records replayed;
	// TornBytes is the size of the discarded torn tail (0 for a clean
	// journal).
	Records   int
	TornBytes int64
	// Accepted and Rejected count replayed submissions by their journaled
	// admission outcome.
	Accepted int
	Rejected int
	// FaultSwitches and Outages count replayed runtime fault records;
	// Timetables counts the audit snapshots that were skipped.
	FaultSwitches int
	Outages       int
	Timetables    int
	// Closed reports whether the journaled run had closed its intake: a
	// recovered virtual engine can then simply be Started to finish the
	// interrupted stream.
	Closed bool
	// Withdrawn counts submissions later pulled back out of the intake by
	// a shard rebalancer (they do not run on this engine).
	Withdrawn int
	// Tagged maps local submission IDs to the external tag their submit
	// records carried (migrated-in jobs); shard.Recover rebuilds the
	// router's global-ID overlay from it. Nil when no record was tagged.
	Tagged map[int]int64
}

// Recover rebuilds an engine from the write-ahead journal at
// cfg.JournalPath: it opens the journal (truncating any torn tail),
// replays every journaled submission, fault switch, outage, and intake
// close into a fresh engine built from cfg, and leaves the journal
// attached so the recovered engine keeps appending where the crashed one
// stopped. Start the returned engine to run the recovered stream; in
// virtual mode with deterministic solver settings the finished metrics
// fingerprint is bit-identical to the uninterrupted run's.
func Recover(cfg Config) (*Engine, *RecoveryInfo, error) {
	if cfg.JournalPath == "" {
		return nil, nil, fmt.Errorf("service: Recover needs Config.JournalPath")
	}
	pol, err := wal.ParseSyncPolicy(cfg.JournalSync)
	if err != nil {
		return nil, nil, err
	}
	j, payloads, err := wal.Open(cfg.JournalPath, wal.Options{Sync: pol})
	if err != nil {
		return nil, nil, err
	}
	fresh := cfg
	fresh.JournalPath = "" // New must not reopen (or refuse) the journal
	e, err := New(fresh)
	if err != nil {
		j.Close()
		return nil, nil, err
	}
	e.cfg.JournalPath = cfg.JournalPath // restore for Snapshot.Journal
	info := &RecoveryInfo{TornBytes: j.Torn()}
	for i, payload := range payloads {
		var rec journalRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			j.Close()
			return nil, nil, fmt.Errorf("service: journal record %d: %w", i, err)
		}
		if err := e.replay(&rec, info); err != nil {
			j.Close()
			return nil, nil, fmt.Errorf("service: journal record %d (%s): %w", i, rec.Kind, err)
		}
		info.Records++
	}
	if len(payloads) == 0 {
		// An empty (or fully torn) journal recovers to a blank engine; it
		// still needs the meta header for the next recovery.
		e.journal = j
		if err := e.journalAppend(e.metaRecord()); err != nil {
			j.Close()
			return nil, nil, err
		}
		return e, info, nil
	}
	e.journal = j
	return e, info, nil
}

// replay applies one journal record to a not-yet-started engine.
func (e *Engine) replay(rec *journalRecord, info *RecoveryInfo) error {
	switch rec.Kind {
	case recMeta:
		if rec.Policy != e.policy {
			return fmt.Errorf("journal was written by policy %q, engine runs %q", rec.Policy, e.policy)
		}
		if rec.Mode != e.cfg.Mode.String() {
			return fmt.Errorf("journal was written in %s mode, engine runs %s", rec.Mode, e.cfg.Mode)
		}
		if rec.Cluster != nil && !rec.Cluster.Equal(e.cfg.Cluster) {
			return fmt.Errorf("journal cluster %+v does not match engine cluster %+v", *rec.Cluster, e.cfg.Cluster)
		}
		return nil
	case recSubmit:
		return e.replaySubmit(rec, info)
	case recFaults:
		if rec.Faults == nil {
			return fmt.Errorf("faults record without a spec")
		}
		info.FaultSwitches++
		if rec.SimMS <= 0 {
			plan, err := rec.Faults.plan()
			if err != nil {
				return err
			}
			e.sw.Set(plan)
			return nil
		}
		e.scheduledFaults = append(e.scheduledFaults, scheduledFault{at: rec.SimMS, spec: *rec.Faults})
		return nil
	case recOutage:
		if rec.Outage == nil {
			return fmt.Errorf("outage record without a window")
		}
		info.Outages++
		e.mu.Lock()
		defer e.mu.Unlock()
		// The original run validated the window; a rejection here (e.g. an
		// overlap the original also rejected after journaling) is skipped
		// rather than fatal so recovery reproduces the effective state.
		_ = e.sim.InjectOutage(rec.Outage.Resource, rec.Outage.DownMS, rec.Outage.UpMS)
		return nil
	case recClose:
		info.Closed = true
		e.intakeMu.Lock()
		e.closed = true
		e.closeLogged = true
		e.intakeMu.Unlock()
		return nil
	case recTimetable:
		info.Timetables++ // audit only: replay re-derives placements
		return nil
	case recWithdraw:
		return e.replayWithdraw(rec, info)
	}
	return fmt.Errorf("unknown record kind %q", rec.Kind)
}

// replaySubmit restores one journaled submission, preserving its assigned
// ID and admission outcome.
func (e *Engine) replaySubmit(rec *journalRecord, info *RecoveryInfo) error {
	if rec.Spec == nil {
		return fmt.Errorf("submit record without a spec")
	}
	e.intakeMu.Lock()
	defer e.intakeMu.Unlock()
	if rec.ID != e.nextID {
		return fmt.Errorf("submission id %d out of order (expected %d)", rec.ID, e.nextID)
	}
	e.nextID++
	entry := &jobEntry{id: rec.ID}
	e.entries[rec.ID] = entry
	e.order = append(e.order, rec.ID)
	if rec.Rejected != "" {
		entry.rejectReason = rec.Rejected
		entry.rejectDeadline = rec.Spec.DeadlineMS
		e.rejects++
		info.Rejected++
		e.mon.JobShed(rec.SimMS, rec.ID, "infeasible")
		return nil
	}
	j, err := rec.Spec.Job(rec.ID)
	if err != nil {
		return err
	}
	entry.job = j
	e.accepted++
	e.intake = append(e.intake, j)
	info.Accepted++
	if rec.Tag != nil {
		entry.tag = *rec.Tag
		entry.tagged = true
		if info.Tagged == nil {
			info.Tagged = make(map[int]int64)
		}
		info.Tagged[rec.ID] = *rec.Tag
	}
	// Re-derive the infeasibility flag the original Submit computed so the
	// recovered monitor attributes identically.
	at := rec.SimMS
	if j.Arrival > at {
		at = j.Arrival
	}
	e.mon.JobSubmitted(rec.SimMS, rec.ID, core.CheckAdmission(e.cfg.Cluster, j, at) != nil)
	return nil
}

// replayWithdraw re-applies a journaled rebalancer withdrawal: the job
// leaves the intake and never runs on this engine.
func (e *Engine) replayWithdraw(rec *journalRecord, info *RecoveryInfo) error {
	e.intakeMu.Lock()
	defer e.intakeMu.Unlock()
	entry, ok := e.entries[rec.ID]
	if !ok || entry.job == nil || entry.withdrawn {
		return fmt.Errorf("withdraw of id %d which is not queued", rec.ID)
	}
	idx := -1
	for i, j := range e.intake {
		if j.ID == rec.ID {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("withdraw of id %d which is not in the intake", rec.ID)
	}
	e.intake = append(e.intake[:idx], e.intake[idx+1:]...)
	entry.withdrawn = true
	e.accepted--
	info.Withdrawn++
	if info.Tagged != nil {
		delete(info.Tagged, rec.ID)
	}
	e.mon.JobWithdrawn(rec.SimMS, rec.ID)
	return nil
}
