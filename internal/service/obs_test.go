package service

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mrcprm/internal/obs"
	"mrcprm/internal/sim"
	"mrcprm/internal/slo"
	"mrcprm/internal/stats"
	"mrcprm/internal/workload"
)

// TestHTTPObservability drives a full virtual run with a live telemetry
// registry and checks the observability surface: the Prometheus scrape is
// well-formed and carries the expected histograms, per-job traces replay
// the lifecycle, and the JSON snapshot exposes the SLO burn state.
func TestHTTPObservability(t *testing.T) {
	cluster := sim.Cluster{NumResources: 4, MapSlots: 2, ReduceSlots: 2}
	tel := obs.New(obs.DiscardSink{})
	e, err := New(Config{Cluster: cluster, Manager: deterministicCfg(), Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(e))
	defer ts.Close()

	wcfg := workload.DefaultSynthetic()
	wcfg.NumResources = 4
	jobs, err := wcfg.Generate(6, stats.NewStream(3, 77))
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		resp, body := postJSON(t, ts.URL+"/v1/jobs", workload.SpecOf(j))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: %d %s", resp.StatusCode, body)
		}
	}
	if resp, body := postJSON(t, ts.URL+"/v1/admin/run", map[string]bool{"close": true}); resp.StatusCode != 200 {
		t.Fatalf("run: %d %s", resp.StatusCode, body)
	}
	select {
	case <-e.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("run did not finish")
	}
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}

	// The scrape must parse under the strict reader and agree with the run.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	scrape, err := obs.ParsePrometheus(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if got := scrape.Values["mrcp_jobs_completed_total"]; got != float64(len(jobs)) {
		t.Fatalf("mrcp_jobs_completed_total = %v, want %d", got, len(jobs))
	}
	adm, ok := scrape.Hists["mrcp_wall_admission_ms"]
	if !ok {
		t.Fatalf("scrape lacks mrcp_wall_admission_ms; hists: %v", histNames(scrape))
	}
	if int(adm.Count) != len(jobs) {
		t.Fatalf("admission hist count %v, want %d", adm.Count, len(jobs))
	}
	e2e, ok := scrape.Hists["mrcp_job_e2e_ms"]
	if !ok {
		t.Fatalf("scrape lacks mrcp_job_e2e_ms; hists: %v", histNames(scrape))
	}
	if int(e2e.Count) != len(jobs) {
		t.Fatalf("e2e hist count %v, want %d", e2e.Count, len(jobs))
	}
	// The scraped e2e histogram must reconstruct into a snapshot whose
	// quantiles obey the one-bucket-width contract against the live one.
	snapHist, err := e2e.Snapshot("job_e2e_ms")
	if err != nil {
		t.Fatal(err)
	}
	var live obs.HistSnapshot
	for _, h := range tel.HistSnapshots() {
		if h.Name == obs.HistJobE2E {
			live = h
		}
	}
	if live.Count != snapHist.Count {
		t.Fatalf("scraped count %d != live count %d", snapHist.Count, live.Count)
	}
	for _, q := range []float64{0.5, 0.95} {
		lo, hi := live.Quantile(q)/sqrt2, live.Quantile(q)*sqrt2
		if got := snapHist.Quantile(q); got < lo-1e-9 || got > hi+1e-9 {
			t.Fatalf("scraped p%v = %v outside [%v, %v]", q*100, got, lo, hi)
		}
	}

	// Traces: job 0 must have walked the submitted → placed → completed arc.
	var tr struct {
		JobID   int              `json:"jobId"`
		Dropped int              `json:"dropped"`
		Events  []slo.TraceEvent `json:"events"`
	}
	if resp := getJSON(t, fmt.Sprintf("%s/v1/jobs/%d/trace", ts.URL, jobs[0].ID), &tr); resp.StatusCode != 200 {
		t.Fatalf("trace status %d", resp.StatusCode)
	}
	kinds := map[string]bool{}
	for _, ev := range tr.Events {
		kinds[ev.Kind] = true
	}
	for _, want := range []string{slo.KindSubmitted, slo.KindAdmitted, slo.KindPlaced, slo.KindCompleted} {
		if !kinds[want] {
			t.Fatalf("trace lacks %q: %+v", want, tr.Events)
		}
	}
	if resp := getJSON(t, ts.URL+"/v1/jobs/999/trace", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace: %d", resp.StatusCode)
	}

	// The JSON snapshot carries the burn block.
	var snap Snapshot
	getJSON(t, ts.URL+"/v1/metrics", &snap)
	if snap.SLO == nil || snap.SLO.WindowMS == 0 {
		t.Fatalf("snapshot lacks SLO burn state: %+v", snap.SLO)
	}
}

const sqrt2 = 1.4142135623730951

func histNames(s *obs.PromScrape) []string {
	var names []string
	for n := range s.Hists {
		names = append(names, n)
	}
	return names
}

// TestPromWithoutTelemetry checks the engine-derived exposition families
// are served even when no telemetry registry is attached.
func TestPromWithoutTelemetry(t *testing.T) {
	cluster := sim.Cluster{NumResources: 2, MapSlots: 2, ReduceSlots: 2}
	e, err := New(Config{Cluster: cluster, Manager: deterministicCfg()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	scrape, err := obs.ParsePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	for _, want := range []string{"mrcp_jobs_submitted_total", "mrcp_sim_time_ms", "mrcp_slo_burning", "mrcp_slo_burn_rate"} {
		if _, ok := scrape.Values[want]; !ok {
			t.Fatalf("exposition lacks %s:\n%s", want, buf.String())
		}
	}
}

// TestReadyzSLOBurnFlip runs every job past an impossible deadline under a
// tight miss budget with the intake left open, so the burn monitor trips
// and stays tripped: /readyz must flip to 503 with the "slo-burn" reason,
// every miss must carry the infeasible-at-admission class, and the
// exposition must report the burning gauge.
func TestReadyzSLOBurnFlip(t *testing.T) {
	cluster := sim.Cluster{NumResources: 2, MapSlots: 2, ReduceSlots: 2}
	e, err := New(Config{
		Cluster: cluster,
		Manager: deterministicCfg(),
		SLO:     slo.Config{MissBudget: 0.05, WindowMS: 1 << 40, MinSample: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(e))
	defer ts.Close()

	const n = 3
	for i := 0; i < n; i++ {
		spec := workload.JobSpec{
			ArrivalMS:  int64(i * 10),
			DeadlineMS: int64(i*10) + 1, // unmeetable: the map alone runs 500ms
			MapExecMS:  []int64{500},
		}
		resp, body := postJSON(t, ts.URL+"/v1/jobs", spec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: %d %s", resp.StatusCode, body)
		}
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	// Intake stays open: the run loop idles after the stream drains, so the
	// burning state is stable to observe.
	deadline := time.Now().Add(30 * time.Second)
	for {
		snap := e.Metrics()
		if snap.JobsCompleted+snap.JobsAbandoned >= n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs did not finish: %+v", snap)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if ok, reason := e.Ready(); ok || reason != "slo-burn" {
		t.Fatalf("Ready() = %v %q, want false slo-burn", ok, reason)
	}
	var body map[string]any
	if resp := getJSON(t, ts.URL+"/readyz", &body); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz %d %v", resp.StatusCode, body)
	} else if body["reason"] != "slo-burn" {
		t.Fatalf("readyz reason %v", body["reason"])
	}

	var snap Snapshot
	getJSON(t, ts.URL+"/v1/metrics", &snap)
	if snap.SLO == nil || !snap.SLO.Burning || snap.SLO.Missed < n {
		t.Fatalf("snapshot burn state %+v", snap.SLO)
	}
	var missed int64
	for class, cnt := range snap.MissByClass {
		if class != slo.ClassInfeasible {
			t.Fatalf("unexpected miss class %q in %v", class, snap.MissByClass)
		}
		missed += cnt
	}
	if missed != n {
		t.Fatalf("attributed %d misses, want %d (%v)", missed, n, snap.MissByClass)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	scrape, err := obs.ParsePrometheus(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if scrape.Values["mrcp_slo_burning"] != 1 {
		t.Fatalf("mrcp_slo_burning = %v", scrape.Values["mrcp_slo_burning"])
	}
	if scrape.Values["mrcp_slo_miss_"+slo.ClassInfeasible] != n {
		t.Fatalf("miss counter = %v", scrape.Values["mrcp_slo_miss_"+slo.ClassInfeasible])
	}

	e.CloseIntake()
	select {
	case <-e.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("run did not finish after close")
	}
}
