// Package edf implements a plain earliest-deadline-first resource manager:
// jobs are served in deadline order, work-conservingly, with no allocation
// model at all. It sits between the two existing baselines — deadline-aware
// like MinEDF-WC but model-free like FIFO — so comparing the three isolates
// how much of MinEDF-WC's SLA performance comes from deadline ordering
// alone versus from its ARIA minimum-allocation model.
//
// The package is also the registry's proof of seam: it was added without
// editing any other package (the kernel supplies the whole job lifecycle,
// and init registers the policy by name).
package edf

import (
	"mrcprm/internal/rmkit"
	"mrcprm/internal/sim"
)

func init() {
	rmkit.Register("edf", func(cluster sim.Cluster, opts rmkit.Options) (sim.ResourceManager, error) {
		m := New(cluster)
		if opts.Retry != nil {
			m.Retry = *opts.Retry
		}
		return m, nil
	})
}

// Manager is the greedy EDF scheduler; it implements sim.ResourceManager.
// Tune the embedded Retry policy before the simulation starts.
type Manager struct {
	*rmkit.ListScheduler
}

// New creates an EDF manager for the cluster.
func New(cluster sim.Cluster) *Manager {
	m := &Manager{rmkit.NewListScheduler("edf", cluster, func(a, b *rmkit.JobState) bool {
		return a.Job.Deadline < b.Job.Deadline
	})}
	m.Dispatch = m.dispatch
	return m
}

// Name implements sim.ResourceManager.
func (m *Manager) Name() string { return "EDF" }

// dispatch fills free slots in strict deadline order.
func (m *Manager) dispatch(ctx sim.Context) error {
	for _, js := range m.Tracker.Active() {
		if err := m.DispatchJob(ctx, js, -1, -1); err != nil {
			return err
		}
	}
	return nil
}
