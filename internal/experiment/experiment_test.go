package experiment

import (
	"bytes"
	"strings"
	"testing"

	"mrcprm/internal/stats"
)

// tinyOptions keeps harness tests fast: these tests validate wiring and
// qualitative shape, not statistical precision.
func tinyOptions() Options {
	o := FastOptions()
	o.Jobs = 25
	o.FacebookJobs = 25
	o.Policy = stats.ReplicationPolicy{MinReps: 1, MaxReps: 1, Level: 0.95, RelTol: 1}
	return o
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"ablation-matchmaking", "ablation-deferral", "ablation-ordering"}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if _, ok := ByID("fig99"); ok {
		t.Error("unknown id resolved")
	}
}

func TestFig7DeadlineSweepShape(t *testing.T) {
	spec, _ := ByID("fig7")
	r, err := spec.Run(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 3 {
		t.Fatalf("%d points, want 3", len(r.Points))
	}
	// Looser deadlines can only help: P(dUL=10) <= P(dUL=2) (weak check on
	// one small replication).
	if r.Points[2].P.Mean > r.Points[0].P.Mean {
		t.Errorf("P rose with looser deadlines: %v vs %v", r.Points[2].P.Mean, r.Points[0].P.Mean)
	}
	table := r.Table()
	if !strings.Contains(table, "dUL=2") || !strings.Contains(table, "MRCP-RM") {
		t.Errorf("table rendering incomplete:\n%s", table)
	}
}

func TestFig9ResourceSweepShape(t *testing.T) {
	spec, _ := ByID("fig9")
	r, err := spec.Run(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	// More resources => lower (or equal) turnaround.
	if r.Points[2].T.Mean > r.Points[0].T.Mean*1.05 {
		t.Errorf("T did not fall with more resources: m=25 %.1fs vs m=100 %.1fs",
			r.Points[0].T.Mean, r.Points[2].T.Mean)
	}
}

func TestFacebookComparisonRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("facebook comparison is slow")
	}
	opts := tinyOptions()
	r, err := runFacebookComparison(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2*len(FacebookRates) {
		t.Fatalf("%d points, want %d", len(r.Points), 2*len(FacebookRates))
	}
	// Aggregate check across rates: MRCP-RM should not lose to MinEDF-WC
	// on late jobs overall (the paper's headline result).
	var mrcp, minedf float64
	for _, p := range r.Points {
		if p.Manager == "MRCP-RM" {
			mrcp += p.P.Mean
		} else {
			minedf += p.P.Mean
		}
	}
	if mrcp > minedf {
		t.Errorf("MRCP-RM aggregate P %.3f worse than MinEDF-WC %.3f", mrcp, minedf)
	}
}

func TestAblationDeferralRuns(t *testing.T) {
	spec, _ := ByID("ablation-deferral")
	r, err := spec.Run(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2 {
		t.Fatalf("%d points", len(r.Points))
	}
}

func TestAblationMatchmakingRuns(t *testing.T) {
	spec, _ := ByID("ablation-matchmaking")
	r, err := spec.Run(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2 {
		t.Fatalf("%d points", len(r.Points))
	}
	if r.Points[0].Factor != "mode=combined" || r.Points[1].Factor != "mode=direct" {
		t.Fatalf("unexpected factors %q/%q", r.Points[0].Factor, r.Points[1].Factor)
	}
}

func TestAblationOrderingRuns(t *testing.T) {
	spec, _ := ByID("ablation-ordering")
	r, err := spec.Run(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 3 {
		t.Fatalf("%d points", len(r.Points))
	}
}

// TestParallelReplicationsMatchSequential checks that the replication
// fan-out is invisible in the results: every simulation-derived metric is a
// pure function of the replication seed, so workers=3 must reproduce
// workers=1 exactly (O is wall-clock-derived and excluded).
func TestParallelReplicationsMatchSequential(t *testing.T) {
	opts := tinyOptions()
	opts.Jobs = 20
	opts.Policy = stats.ReplicationPolicy{MinReps: 3, MaxReps: 3, Level: 0.95, RelTol: 1}
	spec, _ := ByID("fig7")

	opts.ReplicationWorkers = 1
	seq, err := spec.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.ReplicationWorkers = 3
	par, err := spec.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Points) != len(par.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(seq.Points), len(par.Points))
	}
	for i := range seq.Points {
		s, p := seq.Points[i], par.Points[i]
		if s.Reps != p.Reps {
			t.Errorf("point %d: reps %d vs %d", i, s.Reps, p.Reps)
		}
		if s.T != p.T || s.P != p.P || s.N != p.N || s.Failed != p.Failed || s.Abandoned != p.Abandoned {
			t.Errorf("point %d: parallel metrics diverge from sequential:\n  seq=%+v\n  par=%+v", i, s, p)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	d := DefaultOptions()
	if d.Jobs <= 0 || d.FacebookJobs <= 0 || d.Policy.MaxReps < d.Policy.MinReps {
		t.Fatalf("bad defaults %+v", d)
	}
	f := FastOptions()
	if f.Jobs >= d.Jobs {
		t.Fatal("fast options should be smaller")
	}
}

func TestResultWriteCSV(t *testing.T) {
	spec, _ := ByID("fig7")
	r, err := spec.Run(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(r.Points) {
		t.Fatalf("%d CSV lines for %d points", len(lines), len(r.Points))
	}
	if !strings.HasPrefix(lines[0], "experiment,factor,factor_value,manager") {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.Contains(lines[1], "fig7,dUL=2") {
		t.Fatalf("row %q", lines[1])
	}
}
