package experiment

import (
	"fmt"
	"time"

	"mrcprm/internal/sim"
	"mrcprm/internal/stats"
	"mrcprm/internal/workload"
)

// FacebookRates are the arrival rates compared in Figs 2 and 3.
var FacebookRates = []float64{0.0001, 0.0002, 0.0003, 0.0004, 0.0005}

// runFacebookComparison regenerates Figs 2 and 3 in one sweep: every
// compared policy (MRCP-RM vs MinEDF-WC by default) over the Table 4
// workload at each arrival rate. Fig 2 reads the P column, Fig 3 the T
// column.
func runFacebookComparison(opts Options) (Result, error) {
	started := time.Now()
	r := Result{ID: "fig2+fig3", Title: "MRCP-RM vs MinEDF-WC on the Facebook workload"}
	for _, lambda := range FacebookRates {
		fb := workload.FacebookConfig{
			NumJobs:      opts.FacebookJobs,
			Lambda:       lambda,
			DeadlineUL:   2,
			NumResources: 64,
		}
		cluster := sim.Cluster{NumResources: fb.NumResources, MapSlots: 1, ReduceSlots: 1}
		for _, policy := range opts.comparePolicies() {
			probe, err := opts.newManager(policy, cluster)
			if err != nil {
				return r, err
			}
			point, err := runReplications(opts, func(rep int, rng *stats.Stream) (*sim.Metrics, error) {
				jobs, err := fb.Generate(rng)
				if err != nil {
					return nil, err
				}
				rm, err := opts.newManager(policy, cluster)
				if err != nil {
					return nil, err
				}
				s, err := sim.New(cluster, rm, jobs)
				if err != nil {
					return nil, err
				}
				opts.instrument(s, rm)
				return s.Run()
			})
			if err != nil {
				return r, err
			}
			point.Factor = fmt.Sprintf("lambda=%g", lambda)
			point.FactorValue = lambda
			point.Manager = probe.Name()
			r.Points = append(r.Points, point)
		}
	}
	r.Elapsed = time.Since(started)
	return r, nil
}
