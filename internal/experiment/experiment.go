// Package experiment regenerates every figure of the paper's evaluation
// (Section VI) plus the ablations called out in DESIGN.md. Each experiment
// is a registered Spec; cmd/experiments and the repository benchmarks are
// thin wrappers over this package.
//
// Absolute numbers (especially the scheduling overhead O, which is real
// wall-clock time of this repository's CP solver) differ from the paper's
// CPLEX-on-a-2013-PC measurements; the quantities to compare are the
// trends across factor values and the relative standing of MRCP-RM versus
// MinEDF-WC. EXPERIMENTS.md records paper-versus-measured for each figure.
package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"sync"
	"time"

	"mrcprm/internal/core"
	"mrcprm/internal/obs"
	_ "mrcprm/internal/policies" // register every built-in policy
	"mrcprm/internal/rmkit"
	"mrcprm/internal/sim"
	"mrcprm/internal/stats"
	"mrcprm/internal/workload"
)

// Options sizes an experiment run.
type Options struct {
	// Seed is the master seed; every replication derives from it.
	Seed uint64
	// Jobs is the number of jobs per replication for the Table 3 synthetic
	// experiments.
	Jobs int
	// FacebookJobs scales the Table 4 workload (1000 reproduces the paper).
	FacebookJobs int
	// Policy is the replication stopping rule.
	Policy stats.ReplicationPolicy
	// ManagerConfig configures MRCP-RM.
	ManagerConfig core.Config
	// ComparePolicies lists the registry names of the policies the
	// comparison experiments (fig2/fig3, faults) run side by side; empty
	// reproduces the paper's MRCP-RM vs MinEDF-WC pairing.
	ComparePolicies []string
	// Telemetry, when non-nil, streams solver/manager/sim events from every
	// replication into one JSONL sink. Events from different replications
	// interleave; the per-replication "run_end" events delimit them.
	Telemetry *obs.Telemetry
	// TelemetrySampleMS is the sim time-series cadence (<=0 = 5 s default).
	TelemetrySampleMS int64
	// ReplicationWorkers bounds how many replications of one cell run
	// concurrently. 0 picks min(GOMAXPROCS, 4); 1 forces sequential runs.
	// Replications are independently seeded, so results are identical to a
	// sequential run — except the O metric, which measures real scheduling
	// wall time and can inflate under CPU contention; use 1 worker (or
	// compare only trends) when absolute O values matter. Telemetry runs
	// force a single worker so the event stream stays ordered.
	ReplicationWorkers int
}

// replicationWorkers resolves the effective replication fan-out width.
func (o Options) replicationWorkers() int {
	if o.Telemetry.Enabled() {
		return 1
	}
	if o.ReplicationWorkers > 0 {
		return o.ReplicationWorkers
	}
	w := runtime.GOMAXPROCS(0)
	if w > 4 {
		w = 4
	}
	if w < 1 {
		w = 1
	}
	return w
}

// comparePolicies resolves which policies the comparison experiments run.
func (o Options) comparePolicies() []string {
	if len(o.ComparePolicies) > 0 {
		return o.ComparePolicies
	}
	return []string{"mrcp", "minedf"}
}

// newManager constructs a registered policy's manager, forwarding the
// MRCP-RM configuration when it applies.
func (o Options) newManager(policy string, cluster sim.Cluster) (sim.ResourceManager, error) {
	popts := rmkit.Options{}
	if policy == "mrcp" {
		popts.Extra = o.ManagerConfig
	}
	return rmkit.New(policy, cluster, popts)
}

// instrument attaches the run's telemetry stream (if any) to a freshly
// built simulator and its resource manager before Run.
func (o Options) instrument(s *sim.Simulator, rm sim.ResourceManager) {
	if !o.Telemetry.Enabled() {
		return
	}
	s.SetTelemetry(o.Telemetry, o.TelemetrySampleMS)
	if im, ok := rm.(interface{ SetTelemetry(*obs.Telemetry) }); ok {
		im.SetTelemetry(o.Telemetry)
	}
}

// DefaultOptions is sized to finish a full figure in minutes on a laptop
// while keeping confidence intervals meaningful.
func DefaultOptions() Options {
	return Options{
		Seed:          1,
		Jobs:          300,
		FacebookJobs:  300,
		Policy:        stats.ReplicationPolicy{MinReps: 3, MaxReps: 6, Level: 0.95, RelTol: 0.02},
		ManagerConfig: core.DefaultConfig(),
	}
}

// FastOptions is sized for the benchmark suite and CI.
func FastOptions() Options {
	o := DefaultOptions()
	o.Jobs = 60
	o.FacebookJobs = 60
	o.Policy = stats.ReplicationPolicy{MinReps: 2, MaxReps: 2, Level: 0.95, RelTol: 0.05}
	return o
}

// Point is one (factor value, manager) cell of a figure.
type Point struct {
	Factor      string
	FactorValue float64
	Manager     string
	Reps        int
	O           stats.Summary // average scheduling time per job, seconds
	T           stats.Summary // average turnaround, seconds
	P           stats.Summary // proportion of late jobs, 0..1
	N           stats.Summary // number of late jobs
	Failed      stats.Summary // failed task attempts (injected failures + outage kills)
	Abandoned   stats.Summary // jobs abandoned after exhausting retry budgets
}

// Result is a regenerated figure.
type Result struct {
	ID     string
	Title  string
	Points []Point
	// Elapsed is the harness wall time.
	Elapsed time.Duration
}

// Table renders the result in the shape of the paper's figures: one row
// per (factor, manager) with the three metrics and 95% confidence
// half-widths.
func (r Result) Table() string {
	out := fmt.Sprintf("%s — %s\n", r.ID, r.Title)
	withFaults := false
	for _, p := range r.Points {
		if p.Failed.Mean > 0 || p.Abandoned.Mean > 0 {
			withFaults = true
			break
		}
	}
	out += fmt.Sprintf("%-16s %-10s %5s  %-22s %-22s %-18s %s\n",
		"factor", "manager", "reps", "O (s/job)", "T (s)", "P (%)", "N")
	for _, p := range r.Points {
		out += fmt.Sprintf("%-16s %-10s %5d  %-22s %-22s %-18s %.1f",
			p.Factor, p.Manager, p.Reps,
			fmtCI(p.O.Mean, p.O.CI(0.95), 4),
			fmtCI(p.T.Mean, p.T.CI(0.95), 1),
			fmtCI(p.P.Mean*100, p.P.CI(0.95)*100, 2),
			p.N.Mean)
		if withFaults {
			out += fmt.Sprintf("  failed=%.1f abandoned=%.1f", p.Failed.Mean, p.Abandoned.Mean)
		}
		out += "\n"
	}
	return out
}

func fmtCI(mean, ci float64, prec int) string {
	return fmt.Sprintf("%.*f ±%.*f", prec, mean, prec, ci)
}

// WriteCSV exports the figure's data points for plotting: one row per
// (factor, manager) with means and 95% confidence half-widths.
func (r Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"experiment", "factor", "factor_value", "manager", "reps",
		"O_mean_s", "O_ci95", "T_mean_s", "T_ci95", "P_mean", "P_ci95", "N_mean",
		"tasks_failed_mean", "jobs_abandoned_mean"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, p := range r.Points {
		row := []string{
			r.ID,
			p.Factor,
			strconv.FormatFloat(p.FactorValue, 'g', -1, 64),
			p.Manager,
			strconv.Itoa(p.Reps),
			strconv.FormatFloat(p.O.Mean, 'g', 8, 64),
			strconv.FormatFloat(p.O.CI(0.95), 'g', 8, 64),
			strconv.FormatFloat(p.T.Mean, 'g', 8, 64),
			strconv.FormatFloat(p.T.CI(0.95), 'g', 8, 64),
			strconv.FormatFloat(p.P.Mean, 'g', 8, 64),
			strconv.FormatFloat(p.P.CI(0.95), 'g', 8, 64),
			strconv.FormatFloat(p.N.Mean, 'g', 8, 64),
			strconv.FormatFloat(p.Failed.Mean, 'g', 8, 64),
			strconv.FormatFloat(p.Abandoned.Mean, 'g', 8, 64),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Spec is a runnable experiment.
type Spec struct {
	ID    string
	Title string
	Run   func(Options) (Result, error)
}

// Registry lists every experiment in paper order.
var Registry = []Spec{
	{"fig2", "MRCP-RM vs MinEDF-WC: proportion of late jobs (Facebook workload)", runFacebookComparison},
	{"fig3", "MRCP-RM vs MinEDF-WC: average job turnaround time (Facebook workload)", runFacebookComparison},
	{"fig4", "Effect of task execution time (emax)", runFig4},
	{"fig5", "Effect of earliest start time (smax)", runFig5},
	{"fig6", "Effect of earliest start time probability (p)", runFig6},
	{"fig7", "Effect of deadline multiplier (dUL)", runFig7},
	{"fig8", "Effect of job arrival rate (lambda)", runFig8},
	{"fig9", "Effect of the number of resources (m)", runFig9},
	{"ablation-matchmaking", "Combined-resource + matchmaking vs direct CP matchmaking (Section V.D)", runAblationMatchmaking},
	{"ablation-deferral", "Deferral of far-future jobs on vs off (Section V.E)", runAblationDeferral},
	{"ablation-ordering", "Job ordering strategies: EDF vs job-id vs least laxity (Section VI.B)", runAblationOrdering},
	{"ablation-batching", "Arrival batching window at high lambda (future work)", runAblationBatching},
	{"faults", "Effect of task failure rate: MRCP-RM vs MinEDF-WC (robustness)", runFaultSweep},
	{"hetero", "Effect of machine speed heterogeneity: speed-aware vs speed-blind planning", runHeteroSweep},
}

// ByID looks up a Spec.
func ByID(id string) (Spec, bool) {
	for _, s := range Registry {
		if s.ID == id {
			return s, true
		}
	}
	return Spec{}, false
}

// runReplications drives one (factor value, manager) cell: body builds and
// runs a fresh simulation per replication and returns its metrics. Up to
// Options.ReplicationWorkers replications run concurrently; each derives
// its own stream from (Seed, rep), so the collected sample is identical to
// a sequential run.
func runReplications(opts Options, body func(rep int, rng *stats.Stream) (*sim.Metrics, error)) (Point, error) {
	var p Point
	var mu sync.Mutex
	byRep := make(map[int]*sim.Metrics)
	var firstErr error
	primary := opts.Policy.RunParallel(opts.replicationWorkers(), func(rep int) float64 {
		rng := stats.NewStream(opts.Seed, uint64(rep)*0x9e3779b97f4a7c15+uint64(rep)+1)
		m, err := body(rep, rng)
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("replication %d: %w", rep, err)
			}
			return 0
		}
		byRep[rep] = m
		return m.T() // the paper's CI criterion is on T
	})
	if firstErr != nil {
		return p, firstErr
	}
	var os, ts, ps, ns, fs, as []float64
	for rep := 0; rep < len(primary); rep++ {
		m := byRep[rep]
		os = append(os, m.O())
		ts = append(ts, m.T())
		ps = append(ps, m.P())
		ns = append(ns, float64(m.N()))
		fs = append(fs, float64(m.TasksFailed+m.TasksKilled))
		as = append(as, float64(m.JobsAbandoned))
	}
	p.Reps = len(ts)
	p.O = stats.Summarize(os)
	p.T = stats.Summarize(ts)
	p.P = stats.Summarize(ps)
	p.N = stats.Summarize(ns)
	p.Failed = stats.Summarize(fs)
	p.Abandoned = stats.Summarize(as)
	return p, nil
}

// runSyntheticCell runs MRCP-RM over a Table 3 configuration.
func runSyntheticCell(opts Options, cfg workload.SyntheticConfig, factor string, value float64) (Point, error) {
	cluster := sim.Cluster{
		NumResources: cfg.NumResources,
		MapSlots:     cfg.MapSlotsPerResource,
		ReduceSlots:  cfg.ReduceSlotsPerResource,
	}
	point, err := runReplications(opts, func(rep int, rng *stats.Stream) (*sim.Metrics, error) {
		jobs, err := cfg.Generate(opts.Jobs, rng)
		if err != nil {
			return nil, err
		}
		mgr, err := opts.newManager("mrcp", cluster)
		if err != nil {
			return nil, err
		}
		s, err := sim.New(cluster, mgr, jobs)
		if err != nil {
			return nil, err
		}
		opts.instrument(s, mgr)
		return s.Run()
	})
	if err != nil {
		return point, err
	}
	point.Factor = factor
	point.FactorValue = value
	point.Manager = "MRCP-RM"
	return point, nil
}

// sweepSynthetic runs a factor-at-a-time sweep (Figs 4-9).
func sweepSynthetic(id, title, factorName string, values []float64,
	apply func(*workload.SyntheticConfig, float64)) func(Options) (Result, error) {
	return func(opts Options) (Result, error) {
		started := time.Now()
		r := Result{ID: id, Title: title}
		for _, v := range values {
			cfg := workload.DefaultSynthetic()
			apply(&cfg, v)
			point, err := runSyntheticCell(opts, cfg, fmt.Sprintf("%s=%g", factorName, v), v)
			if err != nil {
				return r, err
			}
			r.Points = append(r.Points, point)
		}
		r.Elapsed = time.Since(started)
		return r, nil
	}
}

var (
	runFig4 = sweepSynthetic("fig4", "Effect of task execution time", "emax",
		[]float64{10, 50, 100},
		func(c *workload.SyntheticConfig, v float64) { c.EmaxSec = int64(v) })
	runFig5 = sweepSynthetic("fig5", "Effect of earliest start time", "smax",
		[]float64{10000, 50000, 250000},
		func(c *workload.SyntheticConfig, v float64) { c.SmaxSec = int64(v) })
	runFig6 = sweepSynthetic("fig6", "Effect of earliest start time probability", "p",
		[]float64{0.1, 0.5, 0.9},
		func(c *workload.SyntheticConfig, v float64) { c.P = v })
	runFig7 = sweepSynthetic("fig7", "Effect of deadline multiplier", "dUL",
		[]float64{2, 5, 10},
		func(c *workload.SyntheticConfig, v float64) { c.DeadlineUL = v })
	runFig8 = sweepSynthetic("fig8", "Effect of job arrival rate", "lambda",
		[]float64{0.001, 0.01, 0.015, 0.02},
		func(c *workload.SyntheticConfig, v float64) { c.Lambda = v })
	runFig9 = sweepSynthetic("fig9", "Effect of the number of resources", "m",
		[]float64{25, 50, 100},
		func(c *workload.SyntheticConfig, v float64) { c.NumResources = int(v) })
)
