package experiment

import (
	"fmt"
	"time"

	"mrcprm/internal/core"
	"mrcprm/internal/cp"
	"mrcprm/internal/sim"
	"mrcprm/internal/stats"
	"mrcprm/internal/workload"
)

// runAblationMatchmaking quantifies the Section V.D claim: solving on a
// single combined resource followed by gap-based matchmaking is much
// cheaper than modelling matchmaking inside the CP program. Run on a small
// system so the direct mode stays tractable.
func runAblationMatchmaking(opts Options) (Result, error) {
	started := time.Now()
	r := Result{ID: "ablation-matchmaking", Title: "Combined + matchmaking vs direct CP matchmaking"}
	cfg := workload.DefaultSynthetic()
	cfg.NumResources = 8
	cfg.NumMapHi = 20
	cfg.NumReduceHi = 10
	cfg.Lambda = 0.02
	cluster := sim.Cluster{NumResources: cfg.NumResources,
		MapSlots: cfg.MapSlotsPerResource, ReduceSlots: cfg.ReduceSlotsPerResource}

	jobsPerRep := min(opts.Jobs, 60) // direct mode is the expensive arm
	for _, mode := range []core.SolveMode{core.ModeCombined, core.ModeDirect} {
		mcfg := opts.ManagerConfig
		mcfg.Mode = mode
		point, err := runReplications(opts, func(rep int, rng *stats.Stream) (*sim.Metrics, error) {
			jobs, err := cfg.Generate(jobsPerRep, rng)
			if err != nil {
				return nil, err
			}
			mgr := core.New(cluster, mcfg)
			s, err := sim.New(cluster, mgr, jobs)
			if err != nil {
				return nil, err
			}
			opts.instrument(s, mgr)
			return s.Run()
		})
		if err != nil {
			return r, err
		}
		point.Factor = "mode=" + mode.String()
		point.Manager = "MRCP-RM"
		r.Points = append(r.Points, point)
	}
	r.Elapsed = time.Since(started)
	return r, nil
}

// runAblationDeferral quantifies the Section V.E claim: with many
// far-future advance reservations (high p, large smax), deferring jobs
// until their earliest start time approaches reduces the model size and
// hence the overhead O.
func runAblationDeferral(opts Options) (Result, error) {
	started := time.Now()
	r := Result{ID: "ablation-deferral", Title: "Far-future job deferral on vs off"}
	cfg := workload.DefaultSynthetic()
	cfg.P = 0.9
	cfg.SmaxSec = 250000
	cluster := sim.Cluster{NumResources: cfg.NumResources,
		MapSlots: cfg.MapSlotsPerResource, ReduceSlots: cfg.ReduceSlotsPerResource}

	// The no-deferral arm re-schedules every parked job on every solve —
	// the very overhead this ablation measures — so its cost grows
	// superlinearly in the job count; cap the replication size.
	jobsPerRep := min(opts.Jobs, 100)
	for _, deferral := range []bool{true, false} {
		mcfg := opts.ManagerConfig
		if !deferral {
			mcfg.DeferralLead = 0
		}
		point, err := runReplications(opts, func(rep int, rng *stats.Stream) (*sim.Metrics, error) {
			jobs, err := cfg.Generate(jobsPerRep, rng)
			if err != nil {
				return nil, err
			}
			mgr := core.New(cluster, mcfg)
			s, err := sim.New(cluster, mgr, jobs)
			if err != nil {
				return nil, err
			}
			opts.instrument(s, mgr)
			return s.Run()
		})
		if err != nil {
			return r, err
		}
		point.Factor = fmt.Sprintf("deferral=%v", deferral)
		point.Manager = "MRCP-RM"
		r.Points = append(r.Points, point)
	}
	r.Elapsed = time.Since(started)
	return r, nil
}

// runAblationBatching quantifies the paper's future-work direction for
// high arrival rates: accumulating arrivals for a small window and solving
// once per batch cuts the number of solves (and hence O) at the price of a
// small scheduling latency.
func runAblationBatching(opts Options) (Result, error) {
	started := time.Now()
	r := Result{ID: "ablation-batching", Title: "Arrival batching window at high lambda"}
	cfg := workload.DefaultSynthetic()
	cfg.Lambda = 0.02 // the paper's highest rate
	cluster := sim.Cluster{NumResources: cfg.NumResources,
		MapSlots: cfg.MapSlotsPerResource, ReduceSlots: cfg.ReduceSlotsPerResource}

	for _, window := range []time.Duration{0, 10 * time.Second, 60 * time.Second} {
		mcfg := opts.ManagerConfig
		mcfg.BatchWindow = window
		point, err := runReplications(opts, func(rep int, rng *stats.Stream) (*sim.Metrics, error) {
			jobs, err := cfg.Generate(opts.Jobs, rng)
			if err != nil {
				return nil, err
			}
			mgr := core.New(cluster, mcfg)
			s, err := sim.New(cluster, mgr, jobs)
			if err != nil {
				return nil, err
			}
			opts.instrument(s, mgr)
			return s.Run()
		})
		if err != nil {
			return r, err
		}
		point.Factor = fmt.Sprintf("window=%gs", window.Seconds())
		point.Manager = "MRCP-RM"
		r.Points = append(r.Points, point)
	}
	r.Elapsed = time.Since(started)
	return r, nil
}

// runAblationOrdering compares the three job ordering strategies of
// Section VI.B under the tight-deadline configuration (dUL = 2) where
// ordering matters most. The paper reports no significant difference.
func runAblationOrdering(opts Options) (Result, error) {
	started := time.Now()
	r := Result{ID: "ablation-ordering", Title: "Job ordering strategies under tight deadlines"}
	cfg := workload.DefaultSynthetic()
	cfg.DeadlineUL = 2
	cluster := sim.Cluster{NumResources: cfg.NumResources,
		MapSlots: cfg.MapSlotsPerResource, ReduceSlots: cfg.ReduceSlotsPerResource}

	orderings := []struct {
		name string
		ord  cp.OrderingStrategy
	}{
		{"edf", cp.OrderEDF},
		{"job-id", cp.OrderJobID},
		{"least-laxity", cp.OrderLeastLaxity},
	}
	for _, o := range orderings {
		mcfg := opts.ManagerConfig
		mcfg.Ordering = o.ord
		point, err := runReplications(opts, func(rep int, rng *stats.Stream) (*sim.Metrics, error) {
			jobs, err := cfg.Generate(opts.Jobs, rng)
			if err != nil {
				return nil, err
			}
			mgr := core.New(cluster, mcfg)
			s, err := sim.New(cluster, mgr, jobs)
			if err != nil {
				return nil, err
			}
			opts.instrument(s, mgr)
			return s.Run()
		})
		if err != nil {
			return r, err
		}
		point.Factor = "ordering=" + o.name
		point.Manager = "MRCP-RM"
		r.Points = append(r.Points, point)
	}
	r.Elapsed = time.Since(started)
	return r, nil
}
