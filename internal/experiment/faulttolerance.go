package experiment

import (
	"fmt"
	"time"

	"mrcprm/internal/faults"
	"mrcprm/internal/sim"
	"mrcprm/internal/stats"
	"mrcprm/internal/workload"
)

// FailureRates are the injected per-attempt task failure probabilities
// swept by the robustness experiment (0% is the fault-free control, run
// through the same injector code path).
var FailureRates = []float64{0, 0.02, 0.05, 0.10}

// runFaultSweep compares the configured policies (MRCP-RM vs MinEDF-WC by
// default) on the default Table 3 workload while a seeded injector fails a
// growing fraction of task attempts. Every policy faces the identical fault
// plan at each (rate, replication) cell: attempt fates are a pure function
// of (seed, task ID, attempt), so the comparison isolates the recovery
// policies.
func runFaultSweep(opts Options) (Result, error) {
	started := time.Now()
	r := Result{ID: "faults", Title: "Effect of task failure rate: MRCP-RM vs MinEDF-WC"}
	cfg := workload.DefaultSynthetic()
	cluster := sim.Cluster{
		NumResources: cfg.NumResources,
		MapSlots:     cfg.MapSlotsPerResource,
		ReduceSlots:  cfg.ReduceSlotsPerResource,
	}
	for _, rate := range FailureRates {
		for _, policy := range opts.comparePolicies() {
			probe, err := opts.newManager(policy, cluster)
			if err != nil {
				return r, err
			}
			point, err := runReplications(opts, func(rep int, rng *stats.Stream) (*sim.Metrics, error) {
				jobs, err := cfg.Generate(opts.Jobs, rng)
				if err != nil {
					return nil, err
				}
				rm, err := opts.newManager(policy, cluster)
				if err != nil {
					return nil, err
				}
				s, err := sim.New(cluster, rm, jobs)
				if err != nil {
					return nil, err
				}
				// Seeded per (master seed, replication) only, so every
				// policy draws the same fault plan.
				plan, err := faults.New(faults.Config{
					TaskFailureProb: rate,
					Seed1:           opts.Seed,
					Seed2:           0xfa1157 + uint64(rep),
				})
				if err != nil {
					return nil, err
				}
				if err := s.SetFaultInjector(plan); err != nil {
					return nil, err
				}
				opts.instrument(s, rm)
				return s.Run()
			})
			if err != nil {
				return r, err
			}
			point.Factor = fmt.Sprintf("failrate=%g", rate)
			point.FactorValue = rate
			point.Manager = probe.Name()
			r.Points = append(r.Points, point)
		}
	}
	r.Elapsed = time.Since(started)
	return r, nil
}
