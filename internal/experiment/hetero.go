package experiment

import (
	"fmt"
	"time"

	"mrcprm/internal/core"
	"mrcprm/internal/sim"
	"mrcprm/internal/stats"
	"mrcprm/internal/workload"
)

// heteroCluster materializes the workload's cluster shape as a two-class
// speed profile.
func heteroCluster(cfg workload.SyntheticConfig, spread float64) (sim.Cluster, error) {
	return core.TwoClassSpec(cfg.NumResources, cfg.MapSlotsPerResource,
		cfg.ReduceSlotsPerResource, spread).Cluster()
}

// SpeedSpreads are the machine speed spreads swept by the heterogeneity
// experiment: the cluster's second half runs at 1/spread speed. 1 is the
// uniform control, run through the same two-class builder.
var SpeedSpreads = []float64{1, 2, 4}

// runHeteroSweep measures what speed-aware planning buys on a two-class
// cluster. At each spread the identical workload runs under MRCP-RM twice:
// once planning with the true per-machine speeds (per-(task,resource)
// durations in the CP model) and once speed-blind — the solver assumes
// every machine runs at full speed, exactly the uniform-slot model the
// paper's Section IV uses, and discovers the slowdown only when tasks
// overrun on the simulated cluster. The gap in late jobs is the value of
// the heterogeneous model; at spread 1 the two configurations are the same
// planner and must produce identical points.
func runHeteroSweep(opts Options) (Result, error) {
	started := time.Now()
	r := Result{ID: "hetero", Title: "Effect of machine speed heterogeneity: speed-aware vs speed-blind planning"}
	cfg := workload.DefaultSynthetic()
	for _, spread := range SpeedSpreads {
		cluster, err := heteroCluster(cfg, spread)
		if err != nil {
			return r, err
		}
		for _, blind := range []bool{false, true} {
			cellOpts := opts
			cellOpts.ManagerConfig.SpeedBlind = blind
			point, err := runReplications(cellOpts, func(rep int, rng *stats.Stream) (*sim.Metrics, error) {
				jobs, err := cfg.Generate(cellOpts.Jobs, rng)
				if err != nil {
					return nil, err
				}
				rm, err := cellOpts.newManager("mrcp", cluster)
				if err != nil {
					return nil, err
				}
				s, err := sim.New(cluster, rm, jobs)
				if err != nil {
					return nil, err
				}
				cellOpts.instrument(s, rm)
				return s.Run()
			})
			if err != nil {
				return r, err
			}
			point.Factor = fmt.Sprintf("spread=%g", spread)
			point.FactorValue = spread
			point.Manager = "MRCP-RM"
			if blind {
				point.Manager = "speed-blind"
			}
			r.Points = append(r.Points, point)
		}
	}
	r.Elapsed = time.Since(started)
	return r, nil
}
