// Package policies links every built-in resource-management policy into a
// binary: blank-importing it runs each policy package's init, which
// registers the policy with the rmkit registry. Entry points that construct
// managers by name (cmd/mrcpsim, cmd/mrcpd, the experiment harness, the
// public facade) import it once; adding a policy means adding one line
// here and nothing anywhere else.
package policies

import (
	_ "mrcprm/internal/core"   // mrcp: the paper's CP-based manager
	_ "mrcprm/internal/edf"    // edf: greedy earliest-deadline-first baseline
	_ "mrcprm/internal/fifo"   // fifo: deadline-blind best-effort baseline
	_ "mrcprm/internal/minedf" // minedf: MinEDF-WC baseline (Verma et al.)
)
