package shard

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mrcprm/internal/core"
	"mrcprm/internal/obs"
	"mrcprm/internal/service"
	"mrcprm/internal/sim"
	"mrcprm/internal/stats"
	"mrcprm/internal/workload"
)

// testCluster is the full cluster the router partitions; shardStream
// generates jobs sized for ONE SHARD's slice (NumResources/n) so every job
// stays individually feasible after partitioning.
func testCluster() sim.Cluster {
	return sim.Cluster{NumResources: 6, MapSlots: 2, ReduceSlots: 2}
}

func shardStream(t *testing.T, n int) []*workload.Job {
	t.Helper()
	wcfg := workload.DefaultSynthetic()
	wcfg.NumResources = 3 // one shard's slice of testCluster over 2 shards
	jobs, err := wcfg.Generate(n, stats.NewStream(5, 6))
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

func testShardConfig() Config {
	return Config{
		Base:   service.Config{Cluster: testCluster(), Manager: core.DeterministicConfig()},
		Shards: 2,
		Seed:   7,
	}
}

func TestPartition(t *testing.T) {
	parts, err := Partition(sim.Cluster{NumResources: 10, MapSlots: 2, ReduceSlots: 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{3, 3, 2, 2}
	total := 0
	for i, p := range parts {
		if p.NumResources != sizes[i] {
			t.Fatalf("shard %d got %d resources, want %d", i, p.NumResources, sizes[i])
		}
		if p.MapSlots != 2 || p.ReduceSlots != 3 {
			t.Fatalf("shard %d slot shape changed: %+v", i, p)
		}
		total += p.NumResources
	}
	if total != 10 {
		t.Fatalf("partition covers %d resources, want 10", total)
	}
	if _, err := Partition(sim.Cluster{NumResources: 2}, 3); err == nil {
		t.Fatal("3 shards over 2 resources must fail")
	}
	if _, err := Partition(sim.Cluster{NumResources: 2}, 0); err == nil {
		t.Fatal("0 shards must fail")
	}
}

// Partitioning a heterogeneous cluster must slice the speed vector
// positionally (shard i gets the speeds of exactly its resources) and copy
// the memory capacity to every shard.
func TestPartitionHetero(t *testing.T) {
	full := sim.Cluster{NumResources: 5, MapSlots: 2, ReduceSlots: 1,
		Speed:       []float64{1, 1, 0.5, 0.5, 0.25},
		MemCapacity: 16,
	}
	parts, err := Partition(full, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantSpeeds := [][]float64{{1, 1, 0.5}, {0.5, 0.25}}
	for i, p := range parts {
		if len(p.Speed) != len(wantSpeeds[i]) {
			t.Fatalf("shard %d speed slice %v, want %v", i, p.Speed, wantSpeeds[i])
		}
		for r, s := range wantSpeeds[i] {
			if p.Speed[r] != s {
				t.Fatalf("shard %d speed slice %v, want %v", i, p.Speed, wantSpeeds[i])
			}
		}
		if p.MemCapacity != 16 {
			t.Fatalf("shard %d memory capacity %d, want 16", i, p.MemCapacity)
		}
	}
	// The slices must be copies: mutating a shard cannot corrupt the parent.
	parts[0].Speed[0] = 99
	if full.Speed[0] != 1 {
		t.Fatal("shard speed slice aliases the parent cluster's vector")
	}
	// A uniform (nil-speed) cluster partitions to nil-speed shards.
	uparts, err := Partition(sim.Cluster{NumResources: 4, MapSlots: 1, ReduceSlots: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range uparts {
		if p.Speed != nil {
			t.Fatalf("uniform shard %d grew a speed vector %v", i, p.Speed)
		}
	}
}

// routeOnce builds a fresh router, submits the stream, runs it to
// completion, and returns the assignment vector (gid per submission, in
// submission order) and the per-shard fingerprints.
func routeOnce(t *testing.T, jobs []*workload.Job, seed uint64) ([]int64, []uint64) {
	t.Helper()
	cfg := testShardConfig()
	cfg.Seed = seed
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gids := make([]int64, 0, len(jobs))
	for _, j := range jobs {
		gid, err := r.Submit(workload.SpecOf(j))
		if err != nil {
			t.Fatal(err)
		}
		gids = append(gids, gid)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	r.CloseIntake()
	if err := r.Wait(); err != nil {
		t.Fatal(err)
	}
	fps := make([]uint64, r.Shards())
	for s := 0; s < r.Shards(); s++ {
		m, err := r.Engine(s).Result()
		if err != nil {
			t.Fatal(err)
		}
		fps[s] = m.Fingerprint()
	}
	return gids, fps
}

// TestRouterDeterminism is the replay contract: the same seed and
// submission stream must produce identical shard assignments and
// bit-identical per-shard (and combined) fingerprints on every run.
func TestRouterDeterminism(t *testing.T) {
	jobs := shardStream(t, 16)
	gids1, fps1 := routeOnce(t, jobs, 7)
	gids2, fps2 := routeOnce(t, jobs, 7)
	for i := range gids1 {
		if gids1[i] != gids2[i] {
			t.Fatalf("submission %d routed to gid %d then gid %d with the same seed", i, gids1[i], gids2[i])
		}
	}
	for s := range fps1 {
		if fps1[s] != fps2[s] {
			t.Fatalf("shard %d fingerprint %016x then %016x with the same seed", s, fps1[s], fps2[s])
		}
	}
	if CombineFingerprints(fps1) != CombineFingerprints(fps2) {
		t.Fatal("combined fingerprints diverge")
	}
	// Both shards must actually receive work (the stream is feasible on
	// either, so load balancing has to spread it).
	perShard := map[int64]int{}
	for _, gid := range gids1 {
		perShard[gid%2]++
	}
	if perShard[0] == 0 || perShard[1] == 0 {
		t.Fatalf("placement collapsed onto one shard: %v", perShard)
	}
}

// TestAggregateMetrics checks the fan-in snapshot: flat fields carry fleet
// sums in the single-engine shape and the per-shard breakdown is attached.
func TestAggregateMetrics(t *testing.T) {
	jobs := shardStream(t, 12)
	cfg := testShardConfig()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if _, err := r.Submit(workload.SpecOf(j)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	r.CloseIntake()
	if err := r.Wait(); err != nil {
		t.Fatal(err)
	}
	snap := r.Metrics()
	if len(snap.Shards) != 2 {
		t.Fatalf("snapshot has %d shard views, want 2", len(snap.Shards))
	}
	var completed int
	for _, v := range snap.Shards {
		completed += v.JobsCompleted
	}
	if snap.JobsCompleted != completed || completed != len(jobs) {
		t.Fatalf("aggregate completed %d, shard sum %d, want %d", snap.JobsCompleted, completed, len(jobs))
	}
	if !snap.Finished || snap.Fingerprint == "" {
		t.Fatalf("finished=%v fingerprint=%q, want finished with a combined fingerprint", snap.Finished, snap.Fingerprint)
	}
	fps := make([]uint64, 2)
	for s := 0; s < 2; s++ {
		m, err := r.Engine(s).Result()
		if err != nil {
			t.Fatal(err)
		}
		fps[s] = m.Fingerprint()
		if want := fmt.Sprintf("%016x", fps[s]); snap.Shards[s].Fingerprint != want {
			t.Fatalf("shard %d view fingerprint %q, want %q", s, snap.Shards[s].Fingerprint, want)
		}
	}
	if want := fmt.Sprintf("%016x", CombineFingerprints(fps)); snap.Fingerprint != want {
		t.Fatalf("combined fingerprint %q, want %q", snap.Fingerprint, want)
	}
	// Every job resolves under its global ID from the aggregate view.
	for _, st := range r.Jobs() {
		got, ok := r.Job(int64(st.ID))
		if !ok || got.State != service.StateCompleted {
			t.Fatalf("job %d: ok=%v state=%v, want completed", st.ID, ok, got.State)
		}
	}
}

// TestRebalanceMigratesQueuedJobs drives one migration round by hand: a hot
// shard with queued work, a drained cold shard, and an explicit Rebalance
// call. The migrated job must keep its global ID and the run must still
// complete every job.
func TestRebalanceMigratesQueuedJobs(t *testing.T) {
	cfg := testShardConfig()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.JobSpec{
		DeadlineMS:   3_600_000,
		MapExecMS:    []int64{10_000, 10_000},
		ReduceExecMS: []int64{5_000},
	}
	var gids []int64
	for i := 0; i < 6; i++ {
		gid, err := r.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		gids = append(gids, gid)
	}
	probe, err := spec.Job(0)
	if err != nil {
		t.Fatal(err)
	}
	w := probe.TotalWork()
	// Identical jobs alternate, so each shard holds 3. Pretend shard 1
	// drained its pending work (the load estimate empties on completion
	// even though migration sees the router-side counters only): shard 0
	// is now hot at 3w against a cold shard at 0.
	for _, gid := range gids {
		if gid%2 == 1 {
			r.noteDone(1, w)
		}
	}
	moved := r.Rebalance()
	// 3w vs 0 → one job moves (2w vs w); a second would overshoot.
	if moved != 1 {
		t.Fatalf("rebalance moved %d jobs, want 1", moved)
	}
	r.mu.Lock()
	if len(r.overlay) != 1 {
		r.mu.Unlock()
		t.Fatalf("overlay tracks %d migrations, want 1", len(r.overlay))
	}
	var migrated int64
	for gid := range r.overlay {
		migrated = gid
	}
	home := r.overlay[migrated]
	r.mu.Unlock()
	if migrated%2 != 0 || home.shard != 1 {
		t.Fatalf("migrated gid %d now on shard %d, want a shard-0 job on shard 1", migrated, home.shard)
	}
	st, ok := r.Job(migrated)
	if !ok || st.State != service.StateQueued || st.ID != int(migrated) {
		t.Fatalf("migrated job status %+v ok=%v, want queued under gid %d", st, ok, migrated)
	}
	// The listing still shows each submission exactly once, under its
	// original global ID.
	listed := map[int]bool{}
	for _, js := range r.Jobs() {
		listed[js.ID] = true
	}
	if len(listed) != len(gids) {
		t.Fatalf("listing has %d jobs, want %d", len(listed), len(gids))
	}
	for _, gid := range gids {
		if !listed[int(gid)] {
			t.Fatalf("gid %d missing from the listing after migration", gid)
		}
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	r.CloseIntake()
	if err := r.Wait(); err != nil {
		t.Fatal(err)
	}
	for _, gid := range gids {
		st, ok := r.Job(gid)
		if !ok || st.State != service.StateCompleted {
			t.Fatalf("job %d ended %+v ok=%v, want completed", gid, st, ok)
		}
	}
}

// TestShardHTTPEndToEnd drives the sharded front-end over HTTP exactly the
// way loadgen does: submit, run+close, poll the aggregate metrics, then
// check per-job lookups and the merged Prometheus exposition.
func TestShardHTTPEndToEnd(t *testing.T) {
	jobs := shardStream(t, 10)
	cfg := testShardConfig()
	cfg.Base.Telemetry = obs.New(obs.DiscardSink{})
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(r))
	defer srv.Close()
	client := srv.Client()

	var ids []int64
	for _, j := range jobs {
		buf, _ := json.Marshal(workload.SpecOf(j))
		resp, err := client.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			ID int64 `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit returned %d", resp.StatusCode)
		}
		ids = append(ids, body.ID)
	}

	resp, err := client.Post(srv.URL+"/v1/admin/run", "application/json", strings.NewReader(`{"close":true}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run returned %d", resp.StatusCode)
	}

	// Generous: the race detector on a loaded single-core host slows the
	// deterministic solves by an order of magnitude.
	deadline := time.Now().Add(120 * time.Second)
	var snap Snapshot
	for {
		resp, err := client.Get(srv.URL + "/v1/metrics")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if snap.Finished {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run did not finish: %d/%d completed", snap.JobsCompleted, len(jobs))
		}
		time.Sleep(20 * time.Millisecond)
	}
	if snap.JobsCompleted != len(jobs) || len(snap.Shards) != 2 || snap.Fingerprint == "" {
		t.Fatalf("final snapshot completed=%d shards=%d fingerprint=%q", snap.JobsCompleted, len(snap.Shards), snap.Fingerprint)
	}

	for _, id := range ids {
		resp, err := client.Get(fmt.Sprintf("%s/v1/jobs/%d", srv.URL, id))
		if err != nil {
			t.Fatal(err)
		}
		var st service.JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || st.ID != int(id) || st.State != service.StateCompleted {
			t.Fatalf("job %d: status %d state %v id %d", id, resp.StatusCode, st.State, st.ID)
		}
	}

	resp, err = client.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var prom bytes.Buffer
	if _, err := prom.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	text := prom.String()
	for _, want := range []string{"mrcp_shard_routed 10", "mrcp_jobs_completed_total 10", "mrcp_slo_miss_rate"} {
		if !strings.Contains(text, want) {
			t.Fatalf("merged exposition is missing %q:\n%s", want, text)
		}
	}
}

// TestRouterRejectsInfeasible: a job no shard can fit must come back as the
// same typed admission error the single-engine service returns, consuming a
// global ID.
func TestRouterRejectsInfeasible(t *testing.T) {
	cfg := testShardConfig()
	cfg.Base.Admission = true
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gid, err := r.Submit(workload.JobSpec{DeadlineMS: 1_000, MapExecMS: []int64{500_000}})
	var ae *core.AdmissionError
	if !errors.As(err, &ae) {
		t.Fatalf("infeasible submission returned %v, want *core.AdmissionError", err)
	}
	if ae.JobID != int(gid) {
		t.Fatalf("rejection carries id %d, want global id %d", ae.JobID, gid)
	}
	st, ok := r.Job(gid)
	if !ok || st.State != service.StateRejected {
		t.Fatalf("rejected job resolves to %+v ok=%v", st, ok)
	}
}
