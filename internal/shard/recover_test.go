package shard

import (
	"path/filepath"
	"testing"
	"time"

	"mrcprm/internal/service"
	"mrcprm/internal/workload"
)

func journaledConfig(t *testing.T) Config {
	t.Helper()
	cfg := testShardConfig()
	cfg.Base.JournalPath = filepath.Join(t.TempDir(), "run.wal")
	cfg.Base.JournalSync = "none"
	return cfg
}

// TestShardRecoveryEquivalence is the sharded durability contract: a run
// interrupted at an arbitrary point and recovered from its N journal
// segments finishes with the same per-shard — and therefore the same
// aggregate — fingerprint as the uninterrupted sharded run.
func TestShardRecoveryEquivalence(t *testing.T) {
	jobs := shardStream(t, 16)

	// Uninterrupted reference run (no journal; routing does not depend on it).
	_, wantFPs := routeOnce(t, jobs, 7)
	want := CombineFingerprints(wantFPs)

	for _, after := range []time.Duration{0, 2 * time.Millisecond, 20 * time.Millisecond} {
		t.Run(after.String(), func(t *testing.T) {
			cfg := journaledConfig(t)
			r, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, j := range jobs {
				if _, err := r.Submit(workload.SpecOf(j)); err != nil {
					t.Fatal(err)
				}
			}
			r.CloseIntake()
			if err := r.Start(); err != nil {
				t.Fatal(err)
			}
			time.Sleep(after)
			r.Stop()
			<-r.Done()

			r2, info, err := Recover(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if info.Accepted != len(jobs) || !info.Closed {
				t.Fatalf("recovered %d accepted (want %d), closed=%v", info.Accepted, len(jobs), info.Closed)
			}
			if len(info.Shards) != 2 {
				t.Fatalf("recovered %d segments, want 2", len(info.Shards))
			}
			if err := r2.Start(); err != nil {
				t.Fatal(err)
			}
			if err := r2.Wait(); err != nil {
				t.Fatal(err)
			}
			fps := make([]uint64, r2.Shards())
			for s := range fps {
				m, err := r2.Engine(s).Result()
				if err != nil {
					t.Fatal(err)
				}
				fps[s] = m.Fingerprint()
				if fps[s] != wantFPs[s] {
					t.Fatalf("shard %d recovered fingerprint %016x, uninterrupted %016x", s, fps[s], wantFPs[s])
				}
			}
			if got := CombineFingerprints(fps); got != want {
				t.Fatalf("recovered aggregate fingerprint %016x, uninterrupted %016x", got, want)
			}
		})
	}
}

// TestRecoverRestoresMigration: a job migrated before the crash must come
// back on its new shard, still resolvable under its original global ID.
func TestRecoverRestoresMigration(t *testing.T) {
	cfg := journaledConfig(t)
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.JobSpec{
		DeadlineMS:   3_600_000,
		MapExecMS:    []int64{10_000, 10_000},
		ReduceExecMS: []int64{5_000},
	}
	var gids []int64
	for i := 0; i < 6; i++ {
		gid, err := r.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		gids = append(gids, gid)
	}
	probe, _ := spec.Job(0)
	w := probe.TotalWork()
	for _, gid := range gids {
		if gid%2 == 1 {
			r.noteDone(1, w)
		}
	}
	if moved := r.Rebalance(); moved != 1 {
		t.Fatalf("rebalance moved %d jobs, want 1", moved)
	}
	r.mu.Lock()
	var migrated int64
	for gid := range r.overlay {
		migrated = gid
	}
	r.mu.Unlock()

	// Crash before the run: the journals hold 6 submits, 1 withdraw, and 1
	// tagged resubmit across the two segments.
	r2, info, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if info.Withdrawn != 1 || info.Rehomed != 0 {
		t.Fatalf("recovered withdrawn=%d rehomed=%d, want 1 and 0", info.Withdrawn, info.Rehomed)
	}
	r2.mu.Lock()
	home, ok := r2.overlay[migrated]
	r2.mu.Unlock()
	if !ok || home.shard != 1 {
		t.Fatalf("migrated job %d recovered on %+v ok=%v, want shard 1", migrated, home, ok)
	}
	if err := r2.Start(); err != nil {
		t.Fatal(err)
	}
	r2.CloseIntake()
	if err := r2.Wait(); err != nil {
		t.Fatal(err)
	}
	for _, gid := range gids {
		st, ok := r2.Job(gid)
		if !ok || st.State != service.StateCompleted {
			t.Fatalf("job %d recovered to %+v ok=%v, want completed", gid, st, ok)
		}
	}
}

// TestRecoverRehomesOrphan covers the crash window between a migration's
// two journal records: the withdraw hit the hot segment but the tagged
// resubmit never hit the cold one. Recovery must re-place the job through
// the routing path instead of losing it.
func TestRecoverRehomesOrphan(t *testing.T) {
	cfg := journaledConfig(t)
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.JobSpec{
		DeadlineMS:   3_600_000,
		MapExecMS:    []int64{10_000},
		ReduceExecMS: []int64{5_000},
	}
	var gids []int64
	for i := 0; i < 4; i++ {
		gid, err := r.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		gids = append(gids, gid)
	}
	// Simulate the torn migration: journal the withdraw on the job's home
	// shard and crash before any resubmit.
	victim := gids[0]
	if _, _, _, err := r.Engine(int(victim % 2)).Withdraw(int(victim / 2)); err != nil {
		t.Fatal(err)
	}

	r2, info, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if info.Withdrawn != 1 || info.Rehomed != 1 {
		t.Fatalf("recovered withdrawn=%d rehomed=%d, want 1 and 1", info.Withdrawn, info.Rehomed)
	}
	st, ok := r2.Job(victim)
	if !ok || st.State != service.StateQueued {
		t.Fatalf("orphaned job %d recovered to %+v ok=%v, want queued", victim, st, ok)
	}
	if err := r2.Start(); err != nil {
		t.Fatal(err)
	}
	r2.CloseIntake()
	if err := r2.Wait(); err != nil {
		t.Fatal(err)
	}
	for _, gid := range gids {
		st, ok := r2.Job(gid)
		if !ok || st.State != service.StateCompleted {
			t.Fatalf("job %d ended %+v ok=%v, want completed", gid, st, ok)
		}
	}
}
