package shard

import (
	"fmt"

	"mrcprm/internal/service"
)

// RecoveryInfo aggregates what Recover replayed across all segments.
type RecoveryInfo struct {
	// Shards holds each segment's per-engine replay summary, in shard
	// order.
	Shards []*service.RecoveryInfo
	// Records, Accepted, Rejected, and Withdrawn are fleet totals.
	Records   int
	Accepted  int
	Rejected  int
	Withdrawn int
	// Rehomed counts orphaned migrations (a journaled withdraw whose
	// tagged resubmit never hit disk before the crash) that were re-placed
	// through the normal routing path.
	Rehomed int
	// Closed reports whether every segment had journaled an intake close.
	Closed bool
}

// Recover rebuilds a sharded router from its N journal segments
// (SegmentPath(Base.JournalPath, 0..N-1)): each segment replays into its
// shard's engine, the router's load estimates and migration overlay are
// reconstructed from the replayed state, and orphaned migrations are
// re-placed. Start the returned router to run the recovered streams; in
// virtual mode with deterministic solver settings the aggregate
// fingerprint is bit-identical to the uninterrupted sharded run's.
func Recover(cfg Config) (*Router, *RecoveryInfo, error) {
	if cfg.Base.JournalPath == "" {
		return nil, nil, fmt.Errorf("shard: Recover needs Base.JournalPath")
	}
	r, parts, err := newRouter(cfg)
	if err != nil {
		return nil, nil, err
	}
	agg := &RecoveryInfo{Shards: make([]*service.RecoveryInfo, len(parts)), Closed: true}
	for s := range parts {
		e, info, err := service.Recover(r.shardEngineConfig(s))
		if err != nil {
			return nil, nil, fmt.Errorf("shard %d: %w", s, err)
		}
		r.engines[s] = e
		agg.Shards[s] = info
		agg.Records += info.Records
		agg.Accepted += info.Accepted
		agg.Rejected += info.Rejected
		agg.Withdrawn += info.Withdrawn
		agg.Closed = agg.Closed && info.Closed
		r.work[s] = e.AcceptedWorkMS()
		r.seq += uint64(info.Accepted + info.Rejected)
		for local, gid := range info.Tagged {
			r.overlay[gid] = ref{shard: s, local: local}
			r.moved[ref{shard: s, local: local}] = gid
		}
	}
	r.closed = agg.Closed
	if err := r.rehomeOrphans(agg); err != nil {
		return nil, nil, err
	}
	return r, agg, nil
}

// rehomeOrphans re-places every withdrawn job whose tagged resubmit is on
// no segment (the crash hit between the migration's two journal records):
// its spec still lives in its withdraw-side submit record, so it goes back
// through SubmitTagged on the least-loaded feasible shard.
func (r *Router) rehomeOrphans(agg *RecoveryInfo) error {
	for s := range r.engines {
		for _, wj := range r.engines[s].WithdrawnJobs() {
			gid := int64(wj.LocalID)*int64(r.n) + int64(s)
			if wj.Tagged {
				gid = wj.Tag
			}
			if _, ok := r.overlay[gid]; ok {
				continue // the migration completed; the tag found its home
			}
			probe, err := wj.Spec.Job(0)
			if err != nil {
				return fmt.Errorf("shard %d: orphaned job %d: %w", s, gid, err)
			}
			best := -1
			for t := range r.engines {
				if !feasibleOn(r.parts[t], probe) {
					continue
				}
				if best < 0 || r.work[t] < r.work[best] {
					best = t
				}
			}
			if best < 0 {
				best = s // infeasible everywhere: keep it home, let the engine reject
			}
			local, err := r.engines[best].SubmitTagged(wj.Spec, gid)
			if err != nil {
				return fmt.Errorf("shard %d: re-homing orphaned job %d: %w", best, gid, err)
			}
			r.overlay[gid] = ref{shard: best, local: local}
			r.moved[ref{shard: best, local: local}] = gid
			r.work[best] += probe.TotalWork()
			agg.Rehomed++
		}
	}
	return nil
}
