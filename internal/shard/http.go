package shard

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"mrcprm/internal/core"
	"mrcprm/internal/service"
	"mrcprm/internal/slo"
	"mrcprm/internal/workload"
)

// NewHandler exposes the sharded router over the SAME HTTP surface as the
// single-engine service (route table, status codes, and body shapes are
// identical), so loadgen and existing scrapers work against either:
//
//	POST /v1/jobs          route a submission; 202 {"id":<global id>}
//	GET  /v1/jobs          every submission, global IDs, across shards
//	GET  /v1/jobs/{id}     one submission, routed by the job→shard index
//	GET  /v1/jobs/{id}/trace  lifecycle timeline from the job's shard
//	GET  /v1/schedule      merged placement plan (global resource indices)
//	GET  /v1/metrics       aggregate snapshot + per-shard breakdown
//	GET  /metrics          ONE merged Prometheus exposition for the fleet
//	POST /v1/admin/faults  fan a fault plan out / route an outage by
//	                       global resource index
//	POST /v1/admin/run     start every shard; {"close":true} closes all
//	GET  /healthz          aggregate liveness
//	GET  /readyz           503 unless EVERY shard is ready
func NewHandler(r *Router) http.Handler {
	s := &server{r: r}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.healthz)
	mux.HandleFunc("GET /readyz", s.readyz)
	mux.HandleFunc("POST /v1/jobs", s.submit)
	mux.HandleFunc("GET /v1/jobs", s.listJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.getJob)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.trace)
	mux.HandleFunc("GET /v1/schedule", s.schedule)
	mux.HandleFunc("GET /v1/metrics", s.metrics)
	mux.HandleFunc("GET /metrics", s.prom)
	mux.HandleFunc("POST /v1/admin/faults", s.faults)
	mux.HandleFunc("POST /v1/admin/run", s.run)
	return mux
}

type server struct{ r *Router }

// maxBodyBytes mirrors the service handler's POST body cap.
const maxBodyBytes = 1 << 20

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *server) healthz(w http.ResponseWriter, r *http.Request) {
	snap := s.r.Metrics()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"mode":     snap.Mode,
		"shards":   s.r.Shards(),
		"running":  snap.Running,
		"finished": snap.Finished,
		"closed":   snap.Closed,
	})
}

func (s *server) readyz(w http.ResponseWriter, r *http.Request) {
	if ok, reason := s.r.Ready(); !ok {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reason": reason})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true, "shards": s.r.Shards()})
}

func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	var spec workload.JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parsing job spec: %w", err))
		return
	}
	gid, err := s.r.Submit(spec)
	var oe *service.OverloadError
	switch {
	case errors.Is(err, service.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.As(err, &oe):
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(oe.RetryAfter)))
		writeJSON(w, http.StatusTooManyRequests, map[string]any{
			"error": err.Error(), "pending": oe.Pending, "maxPending": oe.Max,
			"retryAfterMs": oe.RetryAfter.Milliseconds(),
		})
	case errors.Is(err, service.ErrJournal):
		writeError(w, http.StatusInternalServerError, err)
	case err != nil:
		var ae *core.AdmissionError
		if errors.As(err, &ae) {
			writeJSON(w, http.StatusUnprocessableEntity,
				map[string]any{"id": gid, "state": service.StateRejected, "error": err.Error()})
			return
		}
		writeError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusAccepted, map[string]any{"id": gid, "state": service.StateQueued})
	}
}

// retryAfterSeconds mirrors the service handler: whole seconds, rounded up.
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func (s *server) listJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.r.Jobs()
	if jobs == nil {
		jobs = []service.JobStatus{}
	}
	writeJSON(w, http.StatusOK, jobs)
}

func (s *server) getJob(w http.ResponseWriter, r *http.Request) {
	gid, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad job id %q", r.PathValue("id")))
		return
	}
	st, ok := s.r.Job(gid)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %d", gid))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *server) trace(w http.ResponseWriter, r *http.Request) {
	gid, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad job id %q", r.PathValue("id")))
		return
	}
	events, dropped, ok := s.r.Trace(gid)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no trace for job %d", gid))
		return
	}
	if events == nil {
		events = []slo.TraceEvent{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"jobId": gid, "dropped": dropped, "events": events,
	})
}

func (s *server) schedule(w http.ResponseWriter, r *http.Request) {
	ps := s.r.Schedule()
	if ps == nil {
		ps = []service.TaskPlacement{}
	}
	writeJSON(w, http.StatusOK, ps)
}

func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.r.Metrics())
}

func (s *server) prom(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	if err := s.r.WriteProm(&buf); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = buf.WriteTo(w)
}

// faultRequest mirrors the service handler's body; Resource is a GLOBAL
// resource index for outages.
type faultRequest struct {
	FailRate      float64 `json:"failRate"`
	StragglerProb float64 `json:"stragglerProb"`
	Seed          uint64  `json:"seed"`
	Resource      int     `json:"resource"`
	DelayMS       int64   `json:"delayMs"`
	DurationMS    int64   `json:"durationMs"`
}

func (s *server) faults(w http.ResponseWriter, r *http.Request) {
	var req faultRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parsing fault request: %w", err))
		return
	}
	if req.DurationMS > 0 {
		at := s.r.NowMS() + req.DelayMS
		if err := s.r.InjectOutage(req.Resource, at, at+req.DurationMS); err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, service.ErrJournal) {
				status = http.StatusInternalServerError
			}
			writeError(w, status, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"injected": "outage", "resource": req.Resource,
			"downAtMs": at, "upAtMs": at + req.DurationMS,
		})
		return
	}
	spec := service.FaultSpec{FailRate: req.FailRate, StragglerProb: req.StragglerProb, Seed: req.Seed}
	if err := s.r.ApplyFaults(spec); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, service.ErrJournal) {
			status = http.StatusInternalServerError
		}
		writeError(w, status, err)
		return
	}
	if req.FailRate <= 0 && req.StragglerProb <= 0 {
		writeJSON(w, http.StatusOK, map[string]any{"injected": "none"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"injected": "attempts", "failRate": req.FailRate, "stragglerProb": req.StragglerProb,
	})
}

type runRequest struct {
	Close bool `json:"close"`
}

func (s *server) run(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	if r.ContentLength != 0 {
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("parsing run request: %w", err))
			return
		}
	}
	err := s.r.Start()
	if err != nil && !req.Close {
		writeError(w, http.StatusConflict, err)
		return
	}
	if req.Close {
		s.r.CloseIntake()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"started": err == nil, "closed": req.Close, "shards": s.r.Shards(),
	})
}
