// Package shard scales the online scheduling service horizontally: it
// partitions the cluster into N disjoint shards, runs one full
// service.Engine per shard (each with its own journal segment, telemetry
// registry, and SLO monitor), and fronts them with a deterministic
// admission router.
//
// Placement is feasibility-then-load: a submission is offered only to
// shards whose capacity can fit its SLA window (core.SLALowerBound against
// the shard's partition), and among those the least-loaded shard — by the
// router's running estimate of pending work ms — wins, with a seeded hash
// breaking ties so the same seed and submission stream always produce the
// same shard assignments (the loadgen replay contract, now per shard).
// Only when every feasible shard sheds does the router reject with the
// same typed overload error the single-engine service uses.
//
// Job IDs are global: a job accepted by shard s with engine-local ID l is
// externally job l*N + s, so gid%N locates the home shard without any
// shared state. A rebalancer migration moves a still-queued job to another
// shard through the journaled Withdraw/SubmitTagged path; the original
// global ID rides along as the submission tag and an overlay index keeps
// it resolvable, so clients never observe an ID change.
package shard

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"

	"mrcprm/internal/core"
	"mrcprm/internal/obs"
	"mrcprm/internal/service"
	"mrcprm/internal/sim"
	"mrcprm/internal/slo"
	"mrcprm/internal/workload"
)

// Config assembles a sharded router.
type Config struct {
	// Base is the per-shard engine template. Cluster is the FULL cluster
	// (Partition splits it); JournalPath is the base path (each shard
	// appends to JournalPath+".shard<i>"); MaxPending applies per shard
	// (split a global bound before constructing the Config). Telemetry is
	// the ROUTER's handle — routing events, shard counters, and the
	// per-shard pending-work gauges land there, while each engine gets its
	// own private registry-only handle so merged expositions never double
	// count.
	Base service.Config
	// Shards is the partition count N (>= 1; at most Cluster.NumResources).
	Shards int
	// Seed feeds the deterministic placement tie-break.
	Seed uint64
	// RebalanceEvery enables the periodic rebalancer (0 = off, keeping the
	// routed stream a pure function of the submissions — the CI replay
	// setting). Rebalance can always be invoked manually.
	RebalanceEvery time.Duration
	// RebalanceRatio is the hot/cold pending-work ratio that triggers a
	// migration round (default 2).
	RebalanceRatio float64
}

// SegmentPath names shard i's journal segment under a base path.
func SegmentPath(base string, i int) string {
	return fmt.Sprintf("%s.shard%d", base, i)
}

// Partition splits a cluster into n disjoint shards: each gets
// NumResources/n resources (the first NumResources%n shards get one
// extra), with the per-resource slot shape unchanged. Heterogeneous
// clusters partition positionally — shard i owns the speed factors of its
// contiguous resource range — and the memory capacity carries over to
// every shard.
func Partition(c sim.Cluster, n int) ([]sim.Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: need at least 1 shard, got %d", n)
	}
	if n > c.NumResources {
		return nil, fmt.Errorf("shard: %d shards over %d resources leaves empty shards", n, c.NumResources)
	}
	parts := make([]sim.Cluster, n)
	base, rem := c.NumResources/n, c.NumResources%n
	off := 0
	for i := range parts {
		size := base
		if i < rem {
			size++
		}
		parts[i] = sim.Cluster{
			NumResources: size,
			MapSlots:     c.MapSlots,
			ReduceSlots:  c.ReduceSlots,
			MemCapacity:  c.MemCapacity,
		}
		if len(c.Speed) > 0 {
			parts[i].Speed = append([]float64(nil), c.Speed[off:off+size]...)
		}
		off += size
	}
	return parts, nil
}

// ref locates a job on its current shard by engine-local ID.
type ref struct {
	shard int
	local int
}

// Router fronts N per-shard engines with deterministic admission routing.
type Router struct {
	cfg     Config
	n       int
	parts   []sim.Cluster
	offsets []int // global index of each shard's first resource
	engines []*service.Engine
	tel     *obs.Telemetry

	// mu guards the routing state. Lock order: an engine's run loop may
	// call the shard observer (engine mu -> router mu), and routing calls
	// engine intake methods (router mu -> engine intakeMu); never call an
	// engine method that takes the engine's sim lock while holding mu.
	mu sync.Mutex
	// seq numbers Submit calls for the placement tie-break.
	seq uint64
	// work estimates each shard's pending work: total task exec ms routed
	// there minus completions and abandonments.
	work []int64
	// overlay maps the global ID of every MIGRATED job to its current
	// home; jobs that never moved resolve by gid%N alone. moved is the
	// reverse index (current ref -> gid) for listings.
	overlay map[int64]ref
	moved   map[ref]int64
	closed  bool

	rebalStop chan struct{}
	rebalOnce sync.Once

	done    chan struct{}
	started bool
}

// shardObserver keeps the router's pending-work estimate in sync with one
// engine's job lifecycle (completions and abandonments drain work).
type shardObserver struct {
	r *Router
	s int
}

func (o *shardObserver) TaskStarted(now int64, tk *workload.Task, j *workload.Job, res int)  {}
func (o *shardObserver) TaskFinished(now int64, tk *workload.Task, j *workload.Job, res int) {}

func (o *shardObserver) JobCompleted(now int64, j *workload.Job, latenessMS int64) {
	o.r.noteDone(o.s, o.r.effectiveWork(o.s, j))
}

func (o *shardObserver) JobAbandoned(now int64, j *workload.Job) {
	o.r.noteDone(o.s, o.r.effectiveWork(o.s, j))
}

// effectiveWork estimates the wall-clock slot time job j will consume on
// shard s: its total nominal work divided by the shard's mean speed. On a
// uniform shard this is exactly TotalWork (no float round-trip), so
// homogeneous routing is bit-identical to the historical estimate; on a
// slow shard the same nominal work counts for more pending load, which
// keeps the least-loaded routing comparison honest across speed classes.
// Submit's load accrual and the completion observer use the same formula,
// so the estimate drains to zero either way.
func (r *Router) effectiveWork(s int, j *workload.Job) int64 {
	w := j.TotalWork()
	part := r.parts[s]
	if !part.Heterogeneous() {
		return w
	}
	var mean float64
	for rr := 0; rr < part.NumResources; rr++ {
		mean += part.SpeedOf(rr)
	}
	mean /= float64(part.NumResources)
	if mean <= 0 {
		return w
	}
	return int64(float64(w) / mean)
}

// New partitions the cluster and builds one engine per shard; no goroutine
// runs until Start.
func New(cfg Config) (*Router, error) {
	r, parts, err := newRouter(cfg)
	if err != nil {
		return nil, err
	}
	for s := range parts {
		e, err := service.New(r.shardEngineConfig(s))
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		r.engines[s] = e
	}
	return r, nil
}

// newRouter builds the engine-less router skeleton shared by New and
// Recover.
func newRouter(cfg Config) (*Router, []sim.Cluster, error) {
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.RebalanceRatio <= 1 {
		cfg.RebalanceRatio = 2
	}
	parts, err := Partition(cfg.Base.Cluster, cfg.Shards)
	if err != nil {
		return nil, nil, err
	}
	offsets := make([]int, len(parts))
	for i := 1; i < len(parts); i++ {
		offsets[i] = offsets[i-1] + parts[i-1].NumResources
	}
	r := &Router{
		cfg:       cfg,
		n:         cfg.Shards,
		parts:     parts,
		offsets:   offsets,
		engines:   make([]*service.Engine, cfg.Shards),
		tel:       cfg.Base.Telemetry,
		work:      make([]int64, cfg.Shards),
		overlay:   make(map[int64]ref),
		moved:     make(map[ref]int64),
		rebalStop: make(chan struct{}),
		done:      make(chan struct{}),
	}
	return r, parts, nil
}

// shardEngineConfig derives shard s's engine config from the base: its
// partition of the cluster, its journal segment, a private registry-only
// telemetry handle, and the router's load observer teed with any caller
// observer.
func (r *Router) shardEngineConfig(s int) service.Config {
	sc := r.cfg.Base
	sc.Cluster = r.parts[s]
	sc.Telemetry = obs.New(obs.DiscardSink{})
	sc.Observer = sim.TeeObservers(r.cfg.Base.Observer, &shardObserver{r: r, s: s})
	if base := r.cfg.Base.JournalPath; base != "" {
		sc.JournalPath = SegmentPath(base, s)
	}
	return sc
}

// Shards returns the partition count.
func (r *Router) Shards() int { return r.n }

// Engine exposes shard s's engine (tests and recovery inspection).
func (r *Router) Engine(s int) *service.Engine { return r.engines[s] }

// noteDone drains w ms of pending work from shard s's load estimate.
func (r *Router) noteDone(s int, w int64) {
	r.mu.Lock()
	r.work[s] -= w
	if r.work[s] < 0 {
		r.work[s] = 0
	}
	left := r.work[s]
	r.mu.Unlock()
	r.tel.SetGauge(obs.GaugeShardPendingWorkPrefix+strconv.Itoa(s), left)
}

// mix is a splitmix64-style hash of (seed, submission sequence, shard):
// the placement tie-break. Any fixed bijective mixer works; it only has to
// be deterministic and spread ties evenly across shards.
func mix(seed, seq uint64, s int) uint64 {
	x := seed ^ (seq+1)*0x9e3779b97f4a7c15 ^ uint64(s+1)*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// feasibleOn reports whether the spec's SLA window can fit on cluster c
// with nothing else running. Deliberately clock-free — the window length
// DeadlineMS - max(ArrivalMS, EarliestStartMS) is invariant under the wall
// mode restamp — so routing is a pure function of (seed, stream).
func feasibleOn(c sim.Cluster, j *workload.Job) bool {
	start := j.Arrival
	if j.EarliestStart > start {
		start = j.EarliestStart
	}
	return start+core.SLALowerBound(c, j) <= j.Deadline
}

// Submit routes one submission: feasibility-filter the shards, offer the
// job to candidates in (pending work, seeded tie-break) order, and return
// the job's global ID. Shard-level sheds fall through to the next
// candidate; only when every candidate sheds does Submit return one
// aggregated *service.OverloadError. A typed admission rejection
// (*core.AdmissionError) ends routing immediately — it is deterministic,
// so every other shard of equal capacity would reject too.
func (r *Router) Submit(spec workload.JobSpec) (int64, error) {
	if r.tel.Enabled() {
		defer func(start time.Time) {
			r.tel.Observe(obs.HistWallRoute, float64(time.Since(start).Nanoseconds())/1e6)
		}(time.Now())
	}
	probe, err := spec.Job(0)
	if err != nil {
		return 0, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0, service.ErrClosed
	}
	seq := r.seq
	r.seq++
	type cand struct {
		s    int
		work int64
		tie  uint64
	}
	cands := make([]cand, 0, r.n)
	for s := 0; s < r.n; s++ {
		if feasibleOn(r.parts[s], probe) {
			cands = append(cands, cand{s: s, work: r.work[s], tie: mix(r.cfg.Seed, seq, s)})
		}
	}
	feasible := len(cands)
	if feasible == 0 {
		// No shard can fit the window: route to every shard anyway so the
		// least-loaded one produces the typed 422 (consuming a global ID,
		// like the single-engine service would).
		for s := 0; s < r.n; s++ {
			cands = append(cands, cand{s: s, work: r.work[s], tie: mix(r.cfg.Seed, seq, s)})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].work != cands[b].work {
			return cands[a].work < cands[b].work
		}
		if cands[a].tie != cands[b].tie {
			return cands[a].tie < cands[b].tie
		}
		return cands[a].s < cands[b].s
	})
	var (
		sheds      []*service.OverloadError
		lastClosed error
	)
	for _, c := range cands {
		id, err := r.engines[c.s].Submit(spec)
		var oe *service.OverloadError
		switch {
		case err == nil:
			gid := int64(id)*int64(r.n) + int64(c.s)
			w := r.effectiveWork(c.s, probe)
			r.work[c.s] += w
			r.tel.Add(obs.CounterShardRouted, 1)
			r.tel.SetGauge(obs.GaugeShardPendingWorkPrefix+strconv.Itoa(c.s), r.work[c.s])
			r.tel.Emit(r.engines[c.s].NowMS(), obs.LayerShard, "route",
				obs.I64("job", gid), obs.I64("shard", int64(c.s)),
				obs.I64("feasible", int64(feasible)), obs.I64("workMs", r.work[c.s]))
			return gid, nil
		case errors.As(err, &oe):
			sheds = append(sheds, oe)
		case errors.Is(err, service.ErrClosed):
			lastClosed = err
		default:
			gid := int64(id)*int64(r.n) + int64(c.s)
			var ae *core.AdmissionError
			if errors.As(err, &ae) {
				// The engine minted a fresh error for this submission;
				// surface the global ID in it.
				ae.JobID = int(gid)
				r.tel.Add(obs.CounterShardRejected, 1)
				r.tel.Emit(r.engines[c.s].NowMS(), obs.LayerShard, "reject",
					obs.I64("job", gid), obs.I64("shard", int64(c.s)))
				return gid, err
			}
			return 0, err // journal failure or malformed spec: not retryable elsewhere
		}
	}
	if len(sheds) > 0 {
		agg := &service.OverloadError{RetryAfter: sheds[0].RetryAfter}
		for _, oe := range sheds {
			agg.Pending += oe.Pending
			agg.Max += oe.Max
			if oe.RetryAfter < agg.RetryAfter {
				agg.RetryAfter = oe.RetryAfter
			}
		}
		r.tel.Add(obs.CounterShardRejected, 1)
		return 0, agg
	}
	if lastClosed != nil {
		return 0, lastClosed
	}
	return 0, service.ErrClosed
}

// locate resolves a global ID to its current (shard, local) home: the
// migration overlay first, the gid%N encoding otherwise. Callers must not
// hold mu.
func (r *Router) locate(gid int64) (ref, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ref, ok := r.overlay[gid]; ok {
		return ref, true
	}
	if gid < 0 {
		return ref{}, false
	}
	return ref{shard: int(gid % int64(r.n)), local: int(gid / int64(r.n))}, true
}

// gidOf reports the global ID a (shard, local) entry is published under.
// Callers must not hold mu.
func (r *Router) gidOf(s, local int) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if gid, ok := r.moved[ref{shard: s, local: local}]; ok {
		return gid
	}
	return int64(local)*int64(r.n) + int64(s)
}

// Job returns one submission's status under its global ID.
func (r *Router) Job(gid int64) (service.JobStatus, bool) {
	loc, ok := r.locate(gid)
	if !ok || loc.shard >= r.n {
		return service.JobStatus{}, false
	}
	st, ok := r.engines[loc.shard].Job(loc.local)
	if !ok {
		return service.JobStatus{}, false
	}
	st.ID = int(gid)
	return st, true
}

// Trace returns one job's lifecycle timeline from its CURRENT shard's
// monitor (a migrated job's pre-migration events live on the old shard,
// which recorded the withdrawal).
func (r *Router) Trace(gid int64) (events []slo.TraceEvent, dropped int, ok bool) {
	loc, okLoc := r.locate(gid)
	if !okLoc || loc.shard >= r.n {
		return nil, 0, false
	}
	return r.engines[loc.shard].Trace(loc.local)
}

// Jobs lists every submission across all shards in global-ID order.
// Withdrawn entries are skipped: the migrated job is listed once, from its
// current shard, under its original global ID.
func (r *Router) Jobs() []service.JobStatus {
	var out []service.JobStatus
	for s := 0; s < r.n; s++ {
		for _, st := range r.engines[s].Jobs() {
			if st.State == service.StateWithdrawn {
				continue
			}
			st.ID = int(r.gidOf(s, st.ID))
			out = append(out, st)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Schedule merges every shard's placement plan into one global view: job
// IDs become global and resource indices are offset to the full cluster's
// numbering.
func (r *Router) Schedule() []service.TaskPlacement {
	var out []service.TaskPlacement
	for s := 0; s < r.n; s++ {
		off := r.offsets[s]
		for _, p := range r.engines[s].Schedule() {
			p.JobID = int(r.gidOf(s, p.JobID))
			p.Resource += off
			out = append(out, p)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].StartMS != out[b].StartMS {
			return out[a].StartMS < out[b].StartMS
		}
		if out[a].JobID != out[b].JobID {
			return out[a].JobID < out[b].JobID
		}
		return out[a].Task < out[b].Task
	})
	return out
}

// Start launches every shard's run loop, the rebalancer when configured,
// and the completion watcher behind Done.
func (r *Router) Start() error {
	r.mu.Lock()
	if r.started {
		r.mu.Unlock()
		return service.ErrRunning
	}
	r.started = true
	r.mu.Unlock()
	for s, e := range r.engines {
		if err := e.Start(); err != nil {
			return fmt.Errorf("shard %d: %w", s, err)
		}
	}
	if r.cfg.RebalanceEvery > 0 {
		go r.rebalanceLoop()
	}
	go func() {
		for _, e := range r.engines {
			<-e.Done()
		}
		r.stopRebalance()
		close(r.done)
	}()
	return nil
}

// CloseIntake stops accepting submissions on every shard; the rebalancer
// stops first so no migration can race the close and strand a withdrawn
// job.
func (r *Router) CloseIntake() {
	r.stopRebalance()
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	for _, e := range r.engines {
		e.CloseIntake()
	}
}

// Stop aborts every shard without finishing outstanding work.
func (r *Router) Stop() {
	r.stopRebalance()
	for _, e := range r.engines {
		e.Stop()
	}
}

// Done closes once every shard's run loop has exited (after Start).
func (r *Router) Done() <-chan struct{} { return r.done }

// Wait blocks until every shard's run ends and returns the first error.
func (r *Router) Wait() error {
	var first error
	for _, e := range r.engines {
		if err := e.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// NowMS returns the most advanced shard clock.
func (r *Router) NowMS() int64 {
	var now int64
	for _, e := range r.engines {
		if t := e.NowMS(); t > now {
			now = t
		}
	}
	return now
}

// Ready reports whether every shard should receive traffic; the reason
// names the first shard that is not.
func (r *Router) Ready() (bool, string) {
	for s, e := range r.engines {
		if ok, reason := e.Ready(); !ok {
			return false, fmt.Sprintf("shard %d: %s", s, reason)
		}
	}
	return true, ""
}

// ApplyFaults installs the same journaled per-attempt fault plan on every
// shard (each segment journals its own copy).
func (r *Router) ApplyFaults(spec service.FaultSpec) error {
	for s, e := range r.engines {
		if err := e.ApplyFaults(spec); err != nil {
			return fmt.Errorf("shard %d: %w", s, err)
		}
	}
	return nil
}

// InjectOutage schedules an outage for a GLOBAL resource index on the
// shard that owns it.
func (r *Router) InjectOutage(res int, downAt, upAt int64) error {
	for s := r.n - 1; s >= 0; s-- {
		if res >= r.offsets[s] {
			if res >= r.offsets[s]+r.parts[s].NumResources {
				break
			}
			return r.engines[s].InjectOutage(res-r.offsets[s], downAt, upAt)
		}
	}
	return fmt.Errorf("shard: resource %d out of range", res)
}

// ShardView is one shard's slice of the aggregated metrics snapshot: the
// shard's full engine snapshot plus its partition shape and the router's
// pending-work estimate.
type ShardView struct {
	Shard         int   `json:"shard"`
	Resources     int   `json:"resources"`
	FirstResource int   `json:"firstResource"`
	PendingWorkMS int64 `json:"pendingWorkMs"`
	service.Snapshot
}

// Snapshot is the sharded /v1/metrics payload: the embedded flat fields
// carry AGGREGATE values in the exact single-engine shape (sums for flows
// and queue depths, max for the clock, all-finished/all-closed for the
// booleans, a combined fingerprint) so existing scrapers and loadgen keep
// working unchanged, and Shards adds the per-shard breakdown.
type Snapshot struct {
	service.Snapshot
	Shards []ShardView `json:"shards,omitempty"`
}

// fnv1aOffset/fnv1aPrime are the 64-bit FNV-1a parameters used to combine
// per-shard fingerprints into the aggregate one.
const (
	fnv1aOffset = 1469598103934665603
	fnv1aPrime  = 1099511628211
)

// CombineFingerprints folds per-shard fingerprints (in shard order) into
// one aggregate fingerprint: FNV-1a over their little-endian bytes.
// Exported so loadgen -verify can recompute it from an offline replay.
func CombineFingerprints(fps []uint64) uint64 {
	h := uint64(fnv1aOffset)
	for _, fp := range fps {
		for i := 0; i < 8; i++ {
			h ^= (fp >> (8 * i)) & 0xff
			h *= fnv1aPrime
		}
	}
	return h
}

// gaugeTakesMax lists merged-exposition gauges where summing across shards
// is wrong: clocks align (take the max) and level-triggered booleans OR.
func gaugeTakesMax(name string) bool {
	return name == "sim_time_ms" || name == "slo_burning"
}

// Metrics returns the aggregated snapshot with the per-shard breakdown.
func (r *Router) Metrics() Snapshot {
	r.mu.Lock()
	work := append([]int64(nil), r.work...)
	r.mu.Unlock()
	views := make([]ShardView, r.n)
	var burns []slo.BurnInfo
	agg := Snapshot{}
	for s := 0; s < r.n; s++ {
		snap := r.engines[s].Metrics()
		views[s] = ShardView{
			Shard:         s,
			Resources:     r.parts[s].NumResources,
			FirstResource: r.offsets[s],
			PendingWorkMS: work[s],
			Snapshot:      snap,
		}
		if s == 0 {
			agg.Mode, agg.Policy = snap.Mode, snap.Policy
			agg.Running, agg.Finished, agg.Closed = snap.Running, snap.Finished, snap.Closed
		} else {
			agg.Running = agg.Running || snap.Running
			agg.Finished = agg.Finished && snap.Finished
			agg.Closed = agg.Closed && snap.Closed
		}
		if snap.SimTimeMS > agg.SimTimeMS {
			agg.SimTimeMS = snap.SimTimeMS
		}
		agg.Submitted += snap.Submitted
		agg.Rejected += snap.Rejected
		agg.Shed += snap.Shed
		agg.Pending += snap.Pending
		agg.MaxPending += snap.MaxPending
		agg.JobsArrived += snap.JobsArrived
		agg.JobsCompleted += snap.JobsCompleted
		agg.LateJobs += snap.LateJobs
		agg.JobsAbandoned += snap.JobsAbandoned
		agg.Outstanding += snap.Outstanding
		agg.TasksFailed += snap.TasksFailed
		agg.TasksKilled += snap.TasksKilled
		agg.Outages += snap.Outages
		agg.Counters = mergeScalars(agg.Counters, snap.Counters, false)
		agg.Gauges = mergeScalars(agg.Gauges, snap.Gauges, true)
		for class, v := range snap.MissByClass {
			if agg.MissByClass == nil {
				agg.MissByClass = make(map[string]int64)
			}
			agg.MissByClass[class] += v
		}
		if snap.SLO != nil {
			burns = append(burns, *snap.SLO)
		}
	}
	rc, rg := r.tel.Snapshot()
	agg.Counters = mergeScalars(agg.Counters, rc, false)
	agg.Gauges = mergeScalars(agg.Gauges, rg, true)
	agg.Journal = r.cfg.Base.JournalPath
	if agg.Finished {
		fps := make([]uint64, r.n)
		for s := 0; s < r.n; s++ {
			if m, err := r.engines[s].Result(); err == nil && m != nil {
				fps[s] = m.Fingerprint()
			}
		}
		agg.Fingerprint = fmt.Sprintf("%016x", CombineFingerprints(fps))
	}
	if len(burns) > 0 {
		b := mergeBurn(burns)
		agg.SLO = &b
	}
	agg.Shards = views
	return agg
}

// mergeScalars folds src into dst (allocating dst on first use); gauges
// with align-not-sum semantics take the max instead.
func mergeScalars(dst, src map[string]int64, gauges bool) map[string]int64 {
	if len(src) == 0 {
		return dst
	}
	if dst == nil {
		dst = make(map[string]int64, len(src))
	}
	for k, v := range src {
		if gauges && gaugeTakesMax(k) {
			if v > dst[k] {
				dst[k] = v
			}
			continue
		}
		dst[k] += v
	}
	return dst
}

// mergeBurn aggregates per-shard burn windows: finishes and misses sum,
// the rate is recomputed, and the alarm trips on the aggregate rate or any
// single burning shard (a hot shard is a problem even when the fleet
// average looks fine).
func mergeBurn(burns []slo.BurnInfo) slo.BurnInfo {
	out := burns[0]
	out.Finished, out.Missed = 0, 0
	anyBurning := false
	for _, b := range burns {
		out.Finished += b.Finished
		out.Missed += b.Missed
		anyBurning = anyBurning || b.Burning
	}
	out.MissRate, out.BurnRate = 0, 0
	if out.Finished > 0 {
		out.MissRate = float64(out.Missed) / float64(out.Finished)
		if out.MissBudget > 0 {
			out.BurnRate = out.MissRate / out.MissBudget
		}
	}
	out.Burning = anyBurning || (out.Finished >= out.MinSample && out.MissRate > out.MissBudget)
	return out
}

// WriteProm renders ONE Prometheus exposition for the whole fleet:
// counters sum, align-gauges take the max, histograms merge bucket-wise
// (the mergeable-snapshot property), and the SLO burn scalars are
// recomputed from the aggregated windows. The router's own families
// (shard_routed, wall_route_ms, pending-work gauges) ride along.
func (r *Router) WriteProm(w io.Writer) error {
	counters := map[string]int64{}
	gauges := map[string]int64{}
	histsByName := map[string]*obs.HistSnapshot{}
	var histNames []string
	mergeHists := func(hs []obs.HistSnapshot) error {
		for _, h := range hs {
			cur, ok := histsByName[h.Name]
			if !ok {
				cp := h
				histsByName[h.Name] = &cp
				histNames = append(histNames, h.Name)
				continue
			}
			if err := cur.Merge(h); err != nil {
				return err
			}
		}
		return nil
	}
	var burns []slo.BurnInfo
	for s := 0; s < r.n; s++ {
		d := r.engines[s].PromData()
		counters = mergeScalars(counters, d.Counters, false)
		gauges = mergeScalars(gauges, d.Gauges, true)
		if err := mergeHists(d.Hists); err != nil {
			return err
		}
		burns = append(burns, r.engines[s].Burn())
	}
	rc, rg := r.tel.Snapshot()
	counters = mergeScalars(counters, rc, false)
	gauges = mergeScalars(gauges, rg, true)
	if err := mergeHists(r.tel.HistSnapshots()); err != nil {
		return err
	}
	hists := make([]obs.HistSnapshot, 0, len(histNames))
	sort.Strings(histNames)
	for _, name := range histNames {
		hists = append(hists, *histsByName[name])
	}
	if err := obs.WritePrometheus(w, "mrcp_", counters, gauges, hists); err != nil {
		return err
	}
	b := mergeBurn(burns)
	return service.WriteBurnGauges(w, b.MissRate, b.BurnRate)
}

// String implements fmt.Stringer for logs.
func (r *Router) String() string {
	return fmt.Sprintf("shard.Router(%d shards over %d resources)", r.n, r.cfg.Base.Cluster.NumResources)
}
