package shard

import (
	"errors"
	"strconv"
	"time"

	"mrcprm/internal/obs"
	"mrcprm/internal/service"
)

// Rebalancer invariants (see DESIGN §8):
//
//   - Only still-QUEUED jobs move. A job the hot shard's run loop already
//     drained into its simulator cannot be withdrawn (ErrNotQueued) and is
//     simply skipped — migration never preempts running work.
//   - A migration is journaled on both sides: a withdraw record on the hot
//     segment, then a tagged submit on the cold one carrying the job's
//     original global ID. Recovery rebuilds the overlay from the tags, and
//     a crash between the two records leaves an orphan that shard.Recover
//     re-places through the normal routing path (no job is lost).
//   - The whole migration runs under the router lock, and CloseIntake
//     takes that lock after stopping the rebalancer, so a close can never
//     interleave with a half-done migration and strand a withdrawn job.
//   - The rebalancer only moves jobs that are feasible on the target
//     partition; an infeasible candidate stays hot rather than trading a
//     queued job for a certain rejection.

// rebalanceLoop runs Rebalance every cfg.RebalanceEvery until stop.
func (r *Router) rebalanceLoop() {
	t := time.NewTicker(r.cfg.RebalanceEvery)
	defer t.Stop()
	for {
		select {
		case <-r.rebalStop:
			return
		case <-t.C:
			r.Rebalance()
		}
	}
}

// stopRebalance halts the periodic rebalancer (idempotent).
func (r *Router) stopRebalance() {
	r.rebalOnce.Do(func() { close(r.rebalStop) })
}

// Rebalance runs one rebalancing round: while the hottest shard holds more
// than RebalanceRatio times the coldest shard's pending work, migrate the
// newest still-queued, target-feasible job from hot to cold. Returns how
// many jobs moved.
func (r *Router) Rebalance() int {
	moved := 0
	for r.rebalanceOnce() {
		moved++
	}
	return moved
}

// rebalanceOnce migrates at most one job, reporting whether it did (and
// therefore whether another round might help).
func (r *Router) rebalanceOnce() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return false
	}
	hot, cold := 0, 0
	for s := 1; s < r.n; s++ {
		if r.work[s] > r.work[hot] {
			hot = s
		}
		if r.work[s] < r.work[cold] {
			cold = s
		}
	}
	if hot == cold || float64(r.work[hot]) < r.cfg.RebalanceRatio*float64(r.work[cold]+1) {
		return false
	}
	// Newest queued first: the oldest jobs are closest to being drained
	// (and to their deadlines), so they stay put.
	ids := r.engines[hot].QueuedIDs()
	for i := len(ids) - 1; i >= 0; i-- {
		id := ids[i]
		spec, ok := r.engines[hot].QueuedSpec(id)
		if !ok {
			continue // drained since QueuedIDs
		}
		probe, err := spec.Job(0)
		if err != nil || !feasibleOn(r.parts[cold], probe) {
			continue
		}
		w := probe.TotalWork()
		// Don't overshoot: moving w must not make cold hotter than hot.
		if r.work[cold]+w > r.work[hot]-w {
			continue
		}
		spec, tag, tagged, err := r.engines[hot].Withdraw(id)
		if errors.Is(err, service.ErrNotQueued) {
			continue // drained in the window; too late, skip
		}
		if err != nil {
			return false // journal failure: stop rebalancing, nothing moved
		}
		gid := int64(id)*int64(r.n) + int64(hot)
		if tagged {
			gid = tag // migrating again: keep the original identity
		}
		newLocal, serr := r.engines[cold].SubmitTagged(spec, gid)
		if serr != nil {
			// The withdraw is already journaled; re-home the job rather
			// than lose it — back to hot first, then anywhere.
			if newLocal, serr = r.engines[hot].SubmitTagged(spec, gid); serr != nil {
				for s := 0; s < r.n && serr != nil; s++ {
					cold = s
					newLocal, serr = r.engines[s].SubmitTagged(spec, gid)
				}
				if serr != nil {
					return false // every shard refused; the orphan is recovered from the journal
				}
			} else {
				cold = hot
			}
		}
		delete(r.moved, ref{shard: hot, local: id})
		r.overlay[gid] = ref{shard: cold, local: newLocal}
		r.moved[ref{shard: cold, local: newLocal}] = gid
		if cold != hot {
			r.work[hot] -= w
			if r.work[hot] < 0 {
				r.work[hot] = 0
			}
			r.work[cold] += w
			r.tel.Add(obs.CounterShardMigrated, 1)
			r.tel.SetGauge(obs.GaugeShardPendingWorkPrefix+strconv.Itoa(hot), r.work[hot])
			r.tel.SetGauge(obs.GaugeShardPendingWorkPrefix+strconv.Itoa(cold), r.work[cold])
			r.tel.Emit(r.engines[cold].NowMS(), obs.LayerShard, "migrate",
				obs.I64("job", gid), obs.I64("from", int64(hot)), obs.I64("to", int64(cold)),
				obs.I64("workMs", w))
			return true
		}
		return false // bounced back to hot: no balance change, stop
	}
	return false
}
