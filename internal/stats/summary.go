package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds sample statistics for one performance metric collected
// across simulation replications.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes sample statistics. It returns a zero Summary for an
// empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// CI returns the half-width of the confidence interval around the mean at
// the given confidence level (e.g. 0.95), using the Student-t distribution
// with N-1 degrees of freedom. It returns +Inf for samples of size < 2.
func (s Summary) CI(level float64) float64 {
	if s.N < 2 {
		return math.Inf(1)
	}
	t := tQuantile(1-(1-level)/2, s.N-1)
	return t * s.StdDev / math.Sqrt(float64(s.N))
}

// RelCI returns CI(level)/|mean|, the relative confidence half-width used by
// the paper's stopping rule (±1% of the average for T at 95% confidence).
// It returns +Inf when the mean is zero or the sample is too small.
func (s Summary) RelCI(level float64) float64 {
	if s.Mean == 0 {
		return math.Inf(1)
	}
	return s.CI(level) / math.Abs(s.Mean)
}

// String formats the summary as "mean ± ci95 (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean, s.CI(0.95), s.N)
}

// tQuantile returns the q-quantile of the Student-t distribution with df
// degrees of freedom. It inverts the CDF by bisection on top of a series
// implementation of the regularized incomplete beta function; the accuracy
// is far beyond what the replication stopping rule needs.
func tQuantile(q float64, df int) float64 {
	if df < 1 {
		panic("stats: tQuantile needs df >= 1")
	}
	if q <= 0 || q >= 1 {
		panic(fmt.Sprintf("stats: tQuantile quantile %g out of (0,1)", q))
	}
	if q == 0.5 {
		return 0
	}
	// t CDF is monotone; bracket then bisect.
	lo, hi := -1e3, 1e3
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if tCDF(mid, float64(df)) < q {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// tCDF is the CDF of the Student-t distribution with df degrees of freedom.
func tCDF(t, df float64) float64 {
	if t == 0 {
		return 0.5
	}
	x := df / (df + t*t)
	p := 0.5 * regIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes betacf).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(math.Log(x)*a+math.Log(1-x)*b+lbeta) / a
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x)
	}
	// Symmetry relation.
	lbetaSwap := math.Exp(math.Log(1-x)*b+math.Log(x)*a+lbeta) / b
	return 1 - lbetaSwap*betacf(b, a, 1-x)
}

func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		aa := float64(m) * (b - float64(m)) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// Percentile returns the p-quantile (0 <= p <= 1) of the sample using linear
// interpolation between order statistics. The input is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(sorted) {
		return sorted[i]
	}
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}
