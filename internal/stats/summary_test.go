package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Fatalf("N = %d", s.N)
	}
	if s.Mean != 5 {
		t.Fatalf("Mean = %g, want 5", s.Mean)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("Min/Max = %g/%g", s.Min, s.Max)
	}
	// Sample stddev with n-1 denominator: sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); math.Abs(s.StdDev-want) > 1e-12 {
		t.Fatalf("StdDev = %g, want %g", s.StdDev, want)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatal("empty summary should have N=0")
	}
	s := Summarize([]float64{3})
	if s.Mean != 3 || s.StdDev != 0 {
		t.Fatalf("single-sample summary wrong: %+v", s)
	}
	if !math.IsInf(s.CI(0.95), 1) {
		t.Fatal("CI of single sample should be +Inf")
	}
}

// Known two-sided 97.5% t quantiles.
func TestTQuantileKnownValues(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{
		{1, 12.706}, {2, 4.303}, {4, 2.776}, {10, 2.228}, {30, 2.042}, {100, 1.984},
	}
	for _, c := range cases {
		got := tQuantile(0.975, c.df)
		if math.Abs(got-c.want) > 0.01 {
			t.Errorf("t_{0.975,%d} = %g, want %g", c.df, got, c.want)
		}
	}
}

func TestTQuantileSymmetry(t *testing.T) {
	for _, df := range []int{1, 5, 20} {
		up := tQuantile(0.9, df)
		dn := tQuantile(0.1, df)
		if math.Abs(up+dn) > 1e-6 {
			t.Errorf("df=%d: quantiles not symmetric: %g vs %g", df, up, dn)
		}
	}
	if tQuantile(0.5, 7) != 0 {
		t.Error("median of t distribution should be 0")
	}
}

func TestCIMatchesHandComputation(t *testing.T) {
	xs := []float64{10, 12, 9, 11, 10, 12, 11, 9, 10, 11}
	s := Summarize(xs)
	want := tQuantile(0.975, 9) * s.StdDev / math.Sqrt(10)
	if got := s.CI(0.95); math.Abs(got-want) > 1e-12 {
		t.Fatalf("CI = %g, want %g", got, want)
	}
	if rel := s.RelCI(0.95); math.Abs(rel-want/s.Mean) > 1e-12 {
		t.Fatalf("RelCI = %g", rel)
	}
}

func TestRelCIZeroMean(t *testing.T) {
	s := Summarize([]float64{-1, 1})
	if !math.IsInf(s.RelCI(0.95), 1) {
		t.Fatal("RelCI with zero mean should be +Inf")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if p := Percentile(xs, 0); p != 1 {
		t.Fatalf("p0 = %g", p)
	}
	if p := Percentile(xs, 1); p != 5 {
		t.Fatalf("p100 = %g", p)
	}
	if p := Percentile(xs, 0.5); p != 3 {
		t.Fatalf("p50 = %g", p)
	}
	if p := Percentile(xs, 0.25); p != 2 {
		t.Fatalf("p25 = %g", p)
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Fatal("percentile of empty sample should be NaN")
	}
	// Input must not be reordered.
	if xs[0] != 5 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestReplicationPolicyStopsOnTightCI(t *testing.T) {
	p := ReplicationPolicy{MinReps: 3, MaxReps: 100, Level: 0.95, RelTol: 0.05}
	// Nearly constant metric: should stop at MinReps.
	got := p.Run(func(rep int) float64 { return 100 + float64(rep%2)*0.01 })
	if len(got) != 3 {
		t.Fatalf("ran %d reps, want 3", len(got))
	}
}

func TestReplicationPolicyHitsCap(t *testing.T) {
	p := ReplicationPolicy{MinReps: 2, MaxReps: 7, Level: 0.95, RelTol: 1e-9}
	s := testStream()
	got := p.Run(func(rep int) float64 { return s.Float64() })
	if len(got) != 7 {
		t.Fatalf("ran %d reps, want cap 7", len(got))
	}
}

func TestDefaultReplicationPolicy(t *testing.T) {
	p := DefaultReplicationPolicy()
	if p.Level != 0.95 || p.RelTol != 0.01 || p.MinReps < 2 {
		t.Fatalf("unexpected default policy %+v", p)
	}
}

// Property: mean lies within [min, max] and stddev is non-negative.
func TestQuickSummaryInvariants(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 && s.StdDev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: regularized incomplete beta is a CDF in x: monotone, 0 at 0, 1 at 1.
func TestQuickRegIncBetaMonotone(t *testing.T) {
	f := func(aSeed, bSeed uint8) bool {
		a := 0.5 + float64(aSeed)/16
		b := 0.5 + float64(bSeed)/16
		prev := 0.0
		for i := 0; i <= 20; i++ {
			x := float64(i) / 20
			v := regIncBeta(a, b, x)
			if v < prev-1e-9 || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return math.Abs(regIncBeta(a, b, 1)-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
