package stats

import "math"

// ReplicationPolicy implements the paper's stopping rule for simulation
// replications (Section VI.A): repeat each experiment until the 95%
// confidence interval of the primary metric is within a relative tolerance
// of its mean, bounded by a minimum and maximum number of replications.
type ReplicationPolicy struct {
	// MinReps is the minimum number of replications to run before the
	// stopping rule is evaluated. Must be at least 2 for a CI to exist.
	MinReps int
	// MaxReps caps the number of replications regardless of CI width.
	MaxReps int
	// Level is the confidence level, e.g. 0.95.
	Level float64
	// RelTol is the target relative half-width, e.g. 0.01 for ±1%.
	RelTol float64
}

// DefaultReplicationPolicy mirrors the paper: 95% confidence, ±1% relative
// half-width on the primary metric.
func DefaultReplicationPolicy() ReplicationPolicy {
	return ReplicationPolicy{MinReps: 5, MaxReps: 50, Level: 0.95, RelTol: 0.01}
}

// Done reports whether the sample collected so far satisfies the policy.
func (p ReplicationPolicy) Done(primary []float64) bool {
	n := len(primary)
	if n >= p.MaxReps {
		return true
	}
	if n < p.MinReps || n < 2 {
		return false
	}
	s := Summarize(primary)
	rel := s.RelCI(p.Level)
	return !math.IsInf(rel, 1) && rel <= p.RelTol
}

// Run drives replications of a simulation. The body callback receives the
// replication index and returns the primary metric value for that run; Run
// stops according to the policy and returns all collected values.
func (p ReplicationPolicy) Run(body func(rep int) float64) []float64 {
	var primary []float64
	for rep := 0; ; rep++ {
		primary = append(primary, body(rep))
		if p.Done(primary) {
			return primary
		}
	}
}

// RunParallel is Run with up to workers replications in flight at once. It
// returns exactly the values Run would: bodies must be independent per
// replication (each seeds its own stream from the index), and the stopping
// rule is evaluated on ordered prefixes only — replication r counts toward
// stopping only once replications 0..r-1 have all finished. Speculative
// replications past the stopping point are discarded, so the returned
// sample is identical to the sequential one. workers <= 1 (or a policy
// without a MaxReps bound) falls back to Run.
func (p ReplicationPolicy) RunParallel(workers int, body func(rep int) float64) []float64 {
	if workers <= 1 || p.MaxReps <= 0 {
		return p.Run(body)
	}
	max := p.MaxReps
	if max < p.MinReps {
		max = p.MinReps
	}
	results := make([]float64, max)
	done := make([]bool, max)
	type reply struct {
		rep int
		val float64
	}
	ch := make(chan reply)
	next := 0     // next replication index to launch
	inflight := 0 // launched but not yet received
	launch := func() {
		rep := next
		next++
		inflight++
		go func() { ch <- reply{rep, body(rep)} }()
	}
	for inflight < workers && next < max {
		launch()
	}
	ready := 0 // length of the finished prefix
	var primary []float64
	for inflight > 0 {
		r := <-ch
		inflight--
		results[r.rep], done[r.rep] = r.val, true
		stopped := false
		for ready < max && done[ready] {
			primary = append(primary, results[ready])
			ready++
			if p.Done(primary) {
				stopped = true
				break
			}
		}
		if stopped {
			// Drain in-flight speculative replications and discard them.
			for inflight > 0 {
				<-ch
				inflight--
			}
			return primary
		}
		if next < max {
			launch()
		}
	}
	return primary
}
