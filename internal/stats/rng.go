// Package stats provides the stochastic substrate used by the workload
// generators, the simulator, and the experiment harness: seeded random
// number streams, the probability distributions named in Table 3 and
// Section VI.B.1 of the paper, sample statistics, and Student-t confidence
// intervals for the replication stopping rule.
//
// Everything in this package is deterministic given a seed, which makes
// every simulation run in the repository reproducible.
package stats

import "math/rand/v2"

// Stream is a deterministic pseudo-random number stream. It wraps the
// standard library's PCG generator so that independent model components
// (arrivals, task counts, execution times, ...) can draw from independent
// streams derived from a single experiment seed.
type Stream struct {
	rng *rand.Rand
}

// NewStream returns a stream seeded with the two words of seed material.
func NewStream(seed1, seed2 uint64) *Stream {
	return &Stream{rng: rand.New(rand.NewPCG(seed1, seed2))}
}

// Derive returns a new independent stream deterministically derived from
// this one and the given tag. Streams derived with distinct tags are
// statistically independent for practical purposes.
func (s *Stream) Derive(tag uint64) *Stream {
	// splitmix64 finalizer over (draw, tag) gives well-separated seeds.
	a := mix(s.rng.Uint64() ^ tag)
	b := mix(a ^ 0x9e3779b97f4a7c15)
	return NewStream(a, b)
}

func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Stream) Float64() float64 { return s.rng.Float64() }

// IntN returns a uniform int in [0, n). It panics if n <= 0.
func (s *Stream) IntN(n int) int { return s.rng.IntN(n) }

// Int64N returns a uniform int64 in [0, n). It panics if n <= 0.
func (s *Stream) Int64N(n int64) int64 { return s.rng.Int64N(n) }

// NormFloat64 returns a standard normal variate.
func (s *Stream) NormFloat64() float64 { return s.rng.NormFloat64() }

// ExpFloat64 returns an exponential variate with rate 1.
func (s *Stream) ExpFloat64() float64 { return s.rng.ExpFloat64() }

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int { return s.rng.Perm(n) }

// Shuffle randomizes the order of n elements using the provided swap.
func (s *Stream) Shuffle(n int, swap func(i, j int)) { s.rng.Shuffle(n, swap) }
