package stats

import (
	"fmt"
	"math"
)

// Dist is a real-valued distribution that can be sampled from a Stream.
type Dist interface {
	// Sample draws one variate.
	Sample(s *Stream) float64
	// Mean returns the distribution's theoretical mean.
	Mean() float64
	// String describes the distribution in the paper's notation.
	String() string
}

// DiscreteUniform is the DU[lo, hi] distribution of Table 3: integers drawn
// uniformly from the closed range [lo, hi].
type DiscreteUniform struct {
	Lo, Hi int64
}

// Sample draws an integer-valued variate as a float64.
func (d DiscreteUniform) Sample(s *Stream) float64 {
	if d.Hi < d.Lo {
		panic(fmt.Sprintf("stats: DU[%d,%d] has empty range", d.Lo, d.Hi))
	}
	return float64(d.Lo + s.Int64N(d.Hi-d.Lo+1))
}

// SampleInt draws an integer variate directly.
func (d DiscreteUniform) SampleInt(s *Stream) int64 {
	return int64(d.Sample(s))
}

// Mean returns (lo+hi)/2.
func (d DiscreteUniform) Mean() float64 { return float64(d.Lo+d.Hi) / 2 }

func (d DiscreteUniform) String() string { return fmt.Sprintf("DU[%d,%d]", d.Lo, d.Hi) }

// Uniform is the continuous U[lo, hi] distribution used for the deadline
// multiplier in Table 3.
type Uniform struct {
	Lo, Hi float64
}

// Sample draws a variate uniformly from [lo, hi).
func (d Uniform) Sample(s *Stream) float64 {
	if d.Hi < d.Lo {
		panic(fmt.Sprintf("stats: U[%g,%g] has empty range", d.Lo, d.Hi))
	}
	return d.Lo + s.Float64()*(d.Hi-d.Lo)
}

// Mean returns (lo+hi)/2.
func (d Uniform) Mean() float64 { return (d.Lo + d.Hi) / 2 }

func (d Uniform) String() string { return fmt.Sprintf("U[%g,%g]", d.Lo, d.Hi) }

// Bernoulli models the x ~ Bernoulli(p) indicator deciding whether a job's
// earliest start time lies strictly after its arrival time.
type Bernoulli struct {
	P float64
}

// Sample returns 1 with probability P and 0 otherwise.
func (d Bernoulli) Sample(s *Stream) float64 {
	if d.P < 0 || d.P > 1 {
		panic(fmt.Sprintf("stats: Bernoulli(%g) probability out of range", d.P))
	}
	if s.Float64() < d.P {
		return 1
	}
	return 0
}

// SampleBool draws a boolean variate.
func (d Bernoulli) SampleBool(s *Stream) bool { return d.Sample(s) == 1 }

// Mean returns P.
func (d Bernoulli) Mean() float64 { return d.P }

func (d Bernoulli) String() string { return fmt.Sprintf("Bernoulli(%g)", d.P) }

// Exponential is the exponential distribution with the given rate, used for
// Poisson-process inter-arrival times (Table 3's arrival row).
type Exponential struct {
	Rate float64
}

// Sample draws an exponential variate.
func (d Exponential) Sample(s *Stream) float64 {
	if d.Rate <= 0 {
		panic(fmt.Sprintf("stats: Exponential rate %g must be positive", d.Rate))
	}
	return s.ExpFloat64() / d.Rate
}

// Mean returns 1/rate.
func (d Exponential) Mean() float64 { return 1 / d.Rate }

func (d Exponential) String() string { return fmt.Sprintf("Exp(rate=%g)", d.Rate) }

// LogNormal is the LN(mu, sigma2) distribution of Section VI.B.1, with mu and
// sigma2 the mean and variance of the underlying normal (the parameterization
// used by Verma et al. for the Facebook task execution times).
type LogNormal struct {
	Mu     float64
	Sigma2 float64
}

// Sample draws a log-normal variate.
func (d LogNormal) Sample(s *Stream) float64 {
	if d.Sigma2 < 0 {
		panic(fmt.Sprintf("stats: LN variance %g must be non-negative", d.Sigma2))
	}
	return math.Exp(d.Mu + math.Sqrt(d.Sigma2)*s.NormFloat64())
}

// Mean returns exp(mu + sigma2/2).
func (d LogNormal) Mean() float64 { return math.Exp(d.Mu + d.Sigma2/2) }

func (d LogNormal) String() string { return fmt.Sprintf("LN(%g,%g)", d.Mu, d.Sigma2) }

// Constant is a degenerate distribution, convenient for tests and for
// pinning a workload parameter.
type Constant struct {
	Value float64
}

// Sample returns Value.
func (d Constant) Sample(*Stream) float64 { return d.Value }

// Mean returns Value.
func (d Constant) Mean() float64 { return d.Value }

func (d Constant) String() string { return fmt.Sprintf("Const(%g)", d.Value) }

// PoissonProcess generates arrival instants with exponentially distributed
// inter-arrival times at the configured rate (events per second).
type PoissonProcess struct {
	Rate float64
}

// NextAfter returns the arrival instant following now, in seconds.
func (p PoissonProcess) NextAfter(now float64, s *Stream) float64 {
	return now + Exponential{Rate: p.Rate}.Sample(s)
}

// ArrivalsUntil returns all arrival instants in (0, horizon], in seconds.
func (p PoissonProcess) ArrivalsUntil(horizon float64, s *Stream) []float64 {
	var out []float64
	t := p.NextAfter(0, s)
	for t <= horizon {
		out = append(out, t)
		t = p.NextAfter(t, s)
	}
	return out
}

// Arrivals returns the first n arrival instants of the process, in seconds.
func (p PoissonProcess) Arrivals(n int, s *Stream) []float64 {
	out := make([]float64, 0, n)
	t := 0.0
	for len(out) < n {
		t = p.NextAfter(t, s)
		out = append(out, t)
	}
	return out
}
