package stats

import (
	"reflect"
	"sync/atomic"
	"testing"
)

// repBody returns a deterministic per-replication metric: a decaying noise
// around 100 so adaptive policies stop after a data-dependent rep count.
func repBody(rep int) float64 {
	return 100 + float64((rep*7919)%13)/float64(rep+1)
}

func TestRunParallelMatchesRun(t *testing.T) {
	policies := []ReplicationPolicy{
		{MinReps: 3, MaxReps: 40, Level: 0.95, RelTol: 0.02},  // adaptive stop
		{MinReps: 2, MaxReps: 7, Level: 0.95, RelTol: 1e-12},  // cap-bound
		{MinReps: 5, MaxReps: 5, Level: 0.95, RelTol: 0.05},   // fixed count
		{MinReps: 2, MaxReps: 100, Level: 0.95, RelTol: 0.25}, // stops early
	}
	for pi, p := range policies {
		want := p.Run(repBody)
		for _, workers := range []int{1, 2, 3, 8, 64} {
			got := p.RunParallel(workers, repBody)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("policy %d workers=%d: got %v, want %v", pi, workers, got, want)
			}
		}
	}
}

func TestRunParallelBoundsConcurrency(t *testing.T) {
	p := ReplicationPolicy{MinReps: 4, MaxReps: 20, Level: 0.95, RelTol: 1e-12}
	const workers = 3
	var cur, peak atomic.Int64
	p.RunParallel(workers, func(rep int) float64 {
		n := cur.Add(1)
		for {
			pk := peak.Load()
			if n <= pk || peak.CompareAndSwap(pk, n) {
				break
			}
		}
		defer cur.Add(-1)
		return repBody(rep)
	})
	if pk := peak.Load(); pk > workers {
		t.Fatalf("observed %d concurrent replications, want <= %d", pk, workers)
	}
}

func TestRunParallelFallsBackWithoutCap(t *testing.T) {
	// MaxReps 0 means Done fires immediately; both paths must agree.
	p := ReplicationPolicy{MinReps: 0, MaxReps: 0}
	if got, want := p.RunParallel(4, repBody), p.Run(repBody); !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}
