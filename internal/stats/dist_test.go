package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func testStream() *Stream { return NewStream(42, 4242) }

func TestStreamDeterminism(t *testing.T) {
	a, b := NewStream(1, 2), NewStream(1, 2)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestStreamDeriveIndependence(t *testing.T) {
	base := NewStream(7, 7)
	d1 := base.Derive(1)
	d2 := base.Derive(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if d1.Float64() == d2.Float64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("derived streams produced %d identical draws out of 1000", same)
	}
}

func TestDiscreteUniformRange(t *testing.T) {
	s := testStream()
	d := DiscreteUniform{Lo: 1, Hi: 100}
	seen := map[int64]bool{}
	for i := 0; i < 20000; i++ {
		v := d.SampleInt(s)
		if v < 1 || v > 100 {
			t.Fatalf("DU[1,100] produced %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 100 {
		t.Fatalf("DU[1,100] hit %d distinct values in 20000 draws, want 100", len(seen))
	}
}

func TestDiscreteUniformDegenerate(t *testing.T) {
	s := testStream()
	d := DiscreteUniform{Lo: 5, Hi: 5}
	for i := 0; i < 10; i++ {
		if v := d.SampleInt(s); v != 5 {
			t.Fatalf("DU[5,5] produced %d", v)
		}
	}
}

func TestDiscreteUniformEmptyRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DU with hi < lo did not panic")
		}
	}()
	DiscreteUniform{Lo: 2, Hi: 1}.Sample(testStream())
}

func TestUniformRangeAndMean(t *testing.T) {
	s := testStream()
	d := Uniform{Lo: 1, Hi: 5}
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		v := d.Sample(s)
		if v < 1 || v >= 5 {
			t.Fatalf("U[1,5) produced %g", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-3) > 0.05 {
		t.Fatalf("U[1,5] sample mean %g, want ~3", mean)
	}
}

func TestBernoulli(t *testing.T) {
	s := testStream()
	d := Bernoulli{P: 0.3}
	ones := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if d.SampleBool(s) {
			ones++
		}
	}
	if frac := float64(ones) / n; math.Abs(frac-0.3) > 0.02 {
		t.Fatalf("Bernoulli(0.3) sample frequency %g", frac)
	}
}

func TestBernoulliEdges(t *testing.T) {
	s := testStream()
	for i := 0; i < 100; i++ {
		if (Bernoulli{P: 0}).SampleBool(s) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !(Bernoulli{P: 1}).SampleBool(s) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestExponentialMean(t *testing.T) {
	s := testStream()
	d := Exponential{Rate: 0.01}
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := d.Sample(s)
		if v < 0 {
			t.Fatalf("Exponential produced negative %g", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-100)/100 > 0.03 {
		t.Fatalf("Exp(0.01) sample mean %g, want ~100", mean)
	}
}

func TestLogNormalMean(t *testing.T) {
	s := testStream()
	// Facebook map-task distribution from the paper (ms).
	d := LogNormal{Mu: 9.9511, Sigma2: 1.6764}
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := d.Sample(s)
		if v <= 0 {
			t.Fatalf("LogNormal produced non-positive %g", v)
		}
		sum += v
	}
	want := d.Mean()
	if mean := sum / n; math.Abs(mean-want)/want > 0.05 {
		t.Fatalf("LN sample mean %g, want ~%g", mean, want)
	}
}

func TestPoissonProcessRate(t *testing.T) {
	s := testStream()
	p := PoissonProcess{Rate: 0.01}
	arr := p.ArrivalsUntil(1e6, s)
	// Expect ~10000 arrivals.
	if n := len(arr); math.Abs(float64(n)-10000) > 400 {
		t.Fatalf("Poisson(0.01) produced %d arrivals over 1e6 s, want ~10000", n)
	}
	for i := 1; i < len(arr); i++ {
		if arr[i] <= arr[i-1] {
			t.Fatalf("arrivals not strictly increasing at %d", i)
		}
	}
}

func TestPoissonProcessArrivalsN(t *testing.T) {
	s := testStream()
	p := PoissonProcess{Rate: 0.5}
	arr := p.Arrivals(100, s)
	if len(arr) != 100 {
		t.Fatalf("Arrivals(100) returned %d instants", len(arr))
	}
	if arr[0] <= 0 {
		t.Fatalf("first arrival %g not positive", arr[0])
	}
}

func TestConstant(t *testing.T) {
	d := Constant{Value: 17}
	if d.Sample(nil) != 17 || d.Mean() != 17 {
		t.Fatal("Constant distribution broken")
	}
}

func TestDistStrings(t *testing.T) {
	cases := []struct {
		d    Dist
		want string
	}{
		{DiscreteUniform{1, 100}, "DU[1,100]"},
		{Uniform{1, 5}, "U[1,5]"},
		{Bernoulli{0.5}, "Bernoulli(0.5)"},
		{Exponential{0.01}, "Exp(rate=0.01)"},
		{LogNormal{9.9511, 1.6764}, "LN(9.9511,1.6764)"},
		{Constant{3}, "Const(3)"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

// Property: DU samples always fall inside the closed range, for arbitrary
// valid ranges.
func TestQuickDiscreteUniformInRange(t *testing.T) {
	s := testStream()
	f := func(lo int16, span uint8) bool {
		d := DiscreteUniform{Lo: int64(lo), Hi: int64(lo) + int64(span)}
		v := d.SampleInt(s)
		return v >= d.Lo && v <= d.Hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: exponential and log-normal variates are always positive.
func TestQuickPositiveVariates(t *testing.T) {
	s := testStream()
	f := func(rateSeed uint8) bool {
		rate := 0.001 + float64(rateSeed)/10
		if (Exponential{Rate: rate}).Sample(s) < 0 {
			return false
		}
		return (LogNormal{Mu: float64(rateSeed) / 32, Sigma2: 1}).Sample(s) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
