package sim

import (
	"fmt"
	"math"

	"mrcprm/internal/workload"
)

// Cluster describes the simulated system component (Section III.A): m
// resources, each with a map task capacity c^mp and a reduce task capacity
// c^rd. Two optional extensions generalize the paper's uniform cluster:
//
//   - Speed gives each resource a relative speed factor. A task with
//     nominal execution time e runs for ScaledExec(e, Speed[r]) on
//     resource r. Nil (the zero value) means every resource has speed 1.0,
//     which is bit-identical to the historical uniform behaviour.
//   - MemCapacity adds a second, machine-wide resource dimension: the sum
//     of Mem demands of all tasks running on a resource (map and reduce
//     alike — memory is a node resource, not a slot-type resource) must
//     stay within MemCapacity. Zero disables the dimension.
type Cluster struct {
	NumResources int
	MapSlots     int64 // c^mp per resource
	ReduceSlots  int64 // c^rd per resource

	// Speed holds one relative speed factor per resource (nil = all 1.0).
	// Factors must be > 0; 0.5 means a task takes twice its nominal time.
	Speed []float64
	// MemCapacity is the per-resource memory capacity shared by map and
	// reduce tasks; 0 turns the memory dimension off entirely.
	MemCapacity int64
}

// TotalMapSlots returns m * c^mp.
func (c Cluster) TotalMapSlots() int64 { return int64(c.NumResources) * c.MapSlots }

// TotalReduceSlots returns m * c^rd.
func (c Cluster) TotalReduceSlots() int64 { return int64(c.NumResources) * c.ReduceSlots }

// SpeedOf returns the speed factor of resource r (1.0 when Speed is nil or
// r is out of range).
func (c Cluster) SpeedOf(r int) float64 {
	if r < 0 || r >= len(c.Speed) {
		return 1.0
	}
	return c.Speed[r]
}

// Heterogeneous reports whether any resource deviates from speed 1.0.
func (c Cluster) Heterogeneous() bool {
	for _, s := range c.Speed {
		if s != 1.0 {
			return true
		}
	}
	return false
}

// MaxSpeed returns the fastest resource's speed factor (1.0 when uniform).
func (c Cluster) MaxSpeed() float64 {
	best := 1.0
	if len(c.Speed) > 0 {
		best = c.Speed[0]
		for _, s := range c.Speed[1:] {
			if s > best {
				best = s
			}
		}
	}
	return best
}

// MinSpeed returns the slowest resource's speed factor (1.0 when uniform).
func (c Cluster) MinSpeed() float64 {
	worst := 1.0
	if len(c.Speed) > 0 {
		worst = c.Speed[0]
		for _, s := range c.Speed[1:] {
			if s < worst {
				worst = s
			}
		}
	}
	return worst
}

// ScaledExec returns the wall-clock execution time of a task with nominal
// execution time exec on a resource with the given speed factor. Speed
// exactly 1.0 returns exec unchanged (no float round-trip), preserving
// bit-identical behaviour on uniform clusters; other speeds round up and
// never go below 1ms.
func ScaledExec(exec int64, speed float64) int64 {
	if speed == 1.0 || exec <= 0 {
		return exec
	}
	scaled := int64(math.Ceil(float64(exec) / speed))
	if scaled < 1 {
		scaled = 1
	}
	return scaled
}

// Equal reports whether two clusters describe the same system, treating a
// nil Speed slice and an all-1.0 one as equivalent.
func (c Cluster) Equal(o Cluster) bool {
	if c.NumResources != o.NumResources || c.MapSlots != o.MapSlots ||
		c.ReduceSlots != o.ReduceSlots || c.MemCapacity != o.MemCapacity {
		return false
	}
	for r := 0; r < c.NumResources; r++ {
		if c.SpeedOf(r) != o.SpeedOf(r) {
			return false
		}
	}
	return true
}

// Validate checks the cluster shape.
func (c Cluster) Validate() error {
	if c.NumResources < 1 || c.MapSlots < 0 || c.ReduceSlots < 0 ||
		c.MapSlots+c.ReduceSlots == 0 {
		return fmt.Errorf("sim: bad cluster shape m=%d c_mp=%d c_rd=%d",
			c.NumResources, c.MapSlots, c.ReduceSlots)
	}
	if len(c.Speed) != 0 && len(c.Speed) != c.NumResources {
		return fmt.Errorf("sim: cluster has %d speed factors for %d resources",
			len(c.Speed), c.NumResources)
	}
	for r, s := range c.Speed {
		if !(s > 0) || math.IsInf(s, 0) {
			return fmt.Errorf("sim: resource %d has invalid speed factor %v", r, s)
		}
	}
	if c.MemCapacity < 0 {
		return fmt.Errorf("sim: negative memory capacity %d", c.MemCapacity)
	}
	return nil
}

// slotLedger tracks per-resource slot (and, when enabled, memory)
// occupancy and enforces capacities.
type slotLedger struct {
	cluster Cluster
	mapUse  []int64
	redUse  []int64
	memUse  []int64 // nil unless the cluster has a memory dimension
}

func newSlotLedger(c Cluster) *slotLedger {
	l := &slotLedger{
		cluster: c,
		mapUse:  make([]int64, c.NumResources),
		redUse:  make([]int64, c.NumResources),
	}
	if c.MemCapacity > 0 {
		l.memUse = make([]int64, c.NumResources)
	}
	return l
}

func (l *slotLedger) acquire(res int, t *workload.Task) error {
	if res < 0 || res >= l.cluster.NumResources {
		return fmt.Errorf("sim: task %s assigned to invalid resource %d", t.ID, res)
	}
	if l.memUse != nil && t.Mem > 0 && l.memUse[res]+t.Mem > l.cluster.MemCapacity {
		return fmt.Errorf("sim: memory capacity of resource %d exceeded by task %s", res, t.ID)
	}
	if t.Type == workload.MapTask {
		if l.mapUse[res]+t.Req > l.cluster.MapSlots {
			return fmt.Errorf("sim: map capacity of resource %d exceeded by task %s", res, t.ID)
		}
		l.mapUse[res] += t.Req
	} else {
		if l.redUse[res]+t.Req > l.cluster.ReduceSlots {
			return fmt.Errorf("sim: reduce capacity of resource %d exceeded by task %s", res, t.ID)
		}
		l.redUse[res] += t.Req
	}
	if l.memUse != nil {
		l.memUse[res] += t.Mem
	}
	return nil
}

func (l *slotLedger) release(res int, t *workload.Task) {
	if t.Type == workload.MapTask {
		l.mapUse[res] -= t.Req
		if l.mapUse[res] < 0 {
			panic("sim: map slot ledger went negative")
		}
	} else {
		l.redUse[res] -= t.Req
		if l.redUse[res] < 0 {
			panic("sim: reduce slot ledger went negative")
		}
	}
	if l.memUse != nil {
		l.memUse[res] -= t.Mem
		if l.memUse[res] < 0 {
			panic("sim: memory ledger went negative")
		}
	}
}

// freeMapSlots returns the number of idle map slots on the resource.
func (l *slotLedger) freeMapSlots(res int) int64 { return l.cluster.MapSlots - l.mapUse[res] }

// freeReduceSlots returns the number of idle reduce slots on the resource.
func (l *slotLedger) freeReduceSlots(res int) int64 { return l.cluster.ReduceSlots - l.redUse[res] }
