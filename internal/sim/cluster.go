package sim

import (
	"fmt"

	"mrcprm/internal/workload"
)

// Cluster describes the simulated system component (Section III.A): m
// resources, each with a map task capacity c^mp and a reduce task capacity
// c^rd.
type Cluster struct {
	NumResources int
	MapSlots     int64 // c^mp per resource
	ReduceSlots  int64 // c^rd per resource
}

// TotalMapSlots returns m * c^mp.
func (c Cluster) TotalMapSlots() int64 { return int64(c.NumResources) * c.MapSlots }

// TotalReduceSlots returns m * c^rd.
func (c Cluster) TotalReduceSlots() int64 { return int64(c.NumResources) * c.ReduceSlots }

// Validate checks the cluster shape.
func (c Cluster) Validate() error {
	if c.NumResources < 1 || c.MapSlots < 0 || c.ReduceSlots < 0 ||
		c.MapSlots+c.ReduceSlots == 0 {
		return fmt.Errorf("sim: bad cluster shape m=%d c_mp=%d c_rd=%d",
			c.NumResources, c.MapSlots, c.ReduceSlots)
	}
	return nil
}

// slotLedger tracks per-resource slot occupancy and enforces capacities.
type slotLedger struct {
	cluster Cluster
	mapUse  []int64
	redUse  []int64
}

func newSlotLedger(c Cluster) *slotLedger {
	return &slotLedger{
		cluster: c,
		mapUse:  make([]int64, c.NumResources),
		redUse:  make([]int64, c.NumResources),
	}
}

func (l *slotLedger) acquire(res int, t *workload.Task) error {
	if res < 0 || res >= l.cluster.NumResources {
		return fmt.Errorf("sim: task %s assigned to invalid resource %d", t.ID, res)
	}
	if t.Type == workload.MapTask {
		if l.mapUse[res]+t.Req > l.cluster.MapSlots {
			return fmt.Errorf("sim: map capacity of resource %d exceeded by task %s", res, t.ID)
		}
		l.mapUse[res] += t.Req
		return nil
	}
	if l.redUse[res]+t.Req > l.cluster.ReduceSlots {
		return fmt.Errorf("sim: reduce capacity of resource %d exceeded by task %s", res, t.ID)
	}
	l.redUse[res] += t.Req
	return nil
}

func (l *slotLedger) release(res int, t *workload.Task) {
	if t.Type == workload.MapTask {
		l.mapUse[res] -= t.Req
		if l.mapUse[res] < 0 {
			panic("sim: map slot ledger went negative")
		}
		return
	}
	l.redUse[res] -= t.Req
	if l.redUse[res] < 0 {
		panic("sim: reduce slot ledger went negative")
	}
}

// freeMapSlots returns the number of idle map slots on the resource.
func (l *slotLedger) freeMapSlots(res int) int64 { return l.cluster.MapSlots - l.mapUse[res] }

// freeReduceSlots returns the number of idle reduce slots on the resource.
func (l *slotLedger) freeReduceSlots(res int) int64 { return l.cluster.ReduceSlots - l.redUse[res] }
