package sim

import (
	"testing"

	"mrcprm/internal/workload"
)

// TestStepDrivenRunMatchesRun drives a simulation one event at a time and
// checks the outcome is identical to the one-shot Run loop.
func TestStepDrivenRunMatchesRun(t *testing.T) {
	gen := func() []*workload.Job {
		return []*workload.Job{
			makeJob(0, 0, 0, 30_000, []int64{2000, 2000}, []int64{3000}),
			makeJob(1, 500, 500, 40_000, []int64{4000}, []int64{1000}),
			makeJob(2, 900, 900, 50_000, []int64{1000}, nil),
		}
	}
	cluster := Cluster{NumResources: 2, MapSlots: 1, ReduceSlots: 1}

	sRun, err := New(cluster, newFifoRM(cluster), gen())
	if err != nil {
		t.Fatal(err)
	}
	mRun, err := sRun.Run()
	if err != nil {
		t.Fatal(err)
	}

	sStep, err := New(cluster, newFifoRM(cluster), gen())
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for {
		if at, ok := sStep.NextEventAt(); ok && at < sStep.Now() {
			t.Fatalf("next event %d behind clock %d", at, sStep.Now())
		}
		more, err := sStep.Step()
		if err != nil {
			t.Fatal(err)
		}
		steps++
		if !more {
			break
		}
	}
	mStep, err := sStep.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if steps < 3 {
		t.Fatalf("only %d steps processed", steps)
	}
	if mRun.JobsCompleted != mStep.JobsCompleted || mRun.LateJobs != mStep.LateJobs ||
		mRun.MakespanMS != mStep.MakespanMS || mRun.BusyMapSlotMS != mStep.BusyMapSlotMS {
		t.Fatalf("step-driven run diverged: %+v vs %+v", mStep, mRun)
	}
}

// TestAddJobMatchesPreloaded checks that adding jobs online (before the
// first step, in arrival order) reproduces a pre-loaded run exactly.
func TestAddJobMatchesPreloaded(t *testing.T) {
	gen := func() []*workload.Job {
		return []*workload.Job{
			makeJob(0, 0, 0, 30_000, []int64{2000}, []int64{3000}),
			makeJob(1, 700, 700, 40_000, []int64{4000}, nil),
		}
	}
	cluster := Cluster{NumResources: 1, MapSlots: 2, ReduceSlots: 1}

	sPre, err := New(cluster, newFifoRM(cluster), gen())
	if err != nil {
		t.Fatal(err)
	}
	mPre, err := sPre.Run()
	if err != nil {
		t.Fatal(err)
	}

	sAdd, err := New(cluster, newFifoRM(cluster), nil)
	if err != nil {
		t.Fatal(err)
	}
	jobs := gen()
	for _, j := range jobs {
		if err := sAdd.AddJob(j); err != nil {
			t.Fatal(err)
		}
	}
	if got := sAdd.OutstandingJobs(); got != len(jobs) {
		t.Fatalf("outstanding = %d, want %d", got, len(jobs))
	}
	mAdd, err := sAdd.Run()
	if err != nil {
		t.Fatal(err)
	}
	if mPre.JobsCompleted != mAdd.JobsCompleted || mPre.MakespanMS != mAdd.MakespanMS ||
		mPre.LateJobs != mAdd.LateJobs {
		t.Fatalf("online-added run diverged: %+v vs %+v", mAdd, mPre)
	}
	if sAdd.OutstandingJobs() != 0 {
		t.Fatalf("outstanding = %d after completion", sAdd.OutstandingJobs())
	}
	for _, j := range jobs {
		if _, ok := sAdd.JobDone(j); !ok {
			t.Fatalf("job %d not recorded as done", j.ID)
		}
	}
}

// TestAddJobMidRun injects a job while the simulation is already executing.
func TestAddJobMidRun(t *testing.T) {
	cluster := oneSlotCluster()
	s, err := New(cluster, newFifoRM(cluster), []*workload.Job{
		makeJob(0, 0, 0, 30_000, []int64{2000}, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Process the arrival, then add a second job due later.
	if _, err := s.Step(); err != nil {
		t.Fatal(err)
	}
	late := makeJob(1, 5000, 5000, 60_000, []int64{1000}, nil)
	if err := s.AddJob(late); err != nil {
		t.Fatal(err)
	}
	if err := s.AddJob(makeJob(3, 0, 0, 60_000, []int64{1000}, nil)); err != nil {
		t.Fatal(err) // clock is still 0 after the first arrival event
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.JobsCompleted != 3 {
		t.Fatalf("completed %d jobs, want 3", m.JobsCompleted)
	}
	if err := s.AddJob(makeJob(4, 0, 0, 60_000, []int64{1000}, nil)); err == nil {
		t.Fatal("arrival in the past accepted")
	}
}

// TestInjectOutage checks runtime outage injection and its overlap guard.
func TestInjectOutage(t *testing.T) {
	cluster := Cluster{NumResources: 2, MapSlots: 1, ReduceSlots: 1}
	s, err := New(cluster, noopRM{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.InjectOutage(1, 1000, 4000); err != nil {
		t.Fatal(err)
	}
	if err := s.InjectOutage(1, 2000, 3000); err == nil {
		t.Fatal("overlapping outage accepted")
	}
	if err := s.InjectOutage(1, 4500, 5500); err != nil {
		t.Fatalf("disjoint follow-up outage rejected: %v", err)
	}
	if err := s.InjectOutage(5, 1000, 2000); err == nil {
		t.Fatal("invalid resource accepted")
	}
	if err := s.InjectOutage(0, 1000, 500); err == nil {
		t.Fatal("inverted window accepted")
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Outages != 2 || m.DowntimeMS != 4000 {
		t.Fatalf("outages=%d downtime=%d, want 2/4000", m.Outages, m.DowntimeMS)
	}
}
