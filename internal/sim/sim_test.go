package sim

import (
	"strings"
	"testing"
	"time"

	"mrcprm/internal/workload"
)

// fifoRM is a deliberately simple manager used to exercise the engine: it
// keeps its own per-slot availability timelines and packs each arriving
// job's tasks first-fit, never rescheduling.
type fifoRM struct {
	NoFaults
	mapFree []int64
	redFree []int64
	slotsMp int64
	slotsRd int64
}

func newFifoRM(c Cluster) *fifoRM {
	return &fifoRM{
		mapFree: make([]int64, c.TotalMapSlots()),
		redFree: make([]int64, c.TotalReduceSlots()),
		slotsMp: c.MapSlots,
		slotsRd: c.ReduceSlots,
	}
}

func (f *fifoRM) Name() string { return "fifo-test" }

func (f *fifoRM) OnJobArrival(ctx Context, j *workload.Job) error {
	var lastMapEnd int64
	for _, t := range j.MapTasks {
		slot := earliestSlot(f.mapFree)
		start := max64(max64(ctx.Now(), j.EarliestStart), f.mapFree[slot])
		f.mapFree[slot] = start + t.Exec
		if end := start + t.Exec; end > lastMapEnd {
			lastMapEnd = end
		}
		if err := ctx.Schedule(t, int(int64(slot)/f.slotsMp), start); err != nil {
			return err
		}
	}
	for _, t := range j.ReduceTasks {
		slot := earliestSlot(f.redFree)
		start := max64(lastMapEnd, f.redFree[slot])
		f.redFree[slot] = start + t.Exec
		if err := ctx.Schedule(t, int(int64(slot)/f.slotsRd), start); err != nil {
			return err
		}
	}
	return nil
}

func (f *fifoRM) OnTaskComplete(Context, *workload.Task) error { return nil }
func (f *fifoRM) OnTimer(Context) error                        { return nil }

func earliestSlot(free []int64) int {
	best := 0
	for i := range free {
		if free[i] < free[best] {
			best = i
		}
	}
	return best
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// makeJob builds a job with the given map/reduce execution times (ms).
func makeJob(id int, arrival, earliest, deadline int64, mapExec, redExec []int64) *workload.Job {
	j := &workload.Job{ID: id, Arrival: arrival, EarliestStart: earliest, Deadline: deadline}
	for i, e := range mapExec {
		j.MapTasks = append(j.MapTasks, &workload.Task{
			ID: "m", JobID: id, Type: workload.MapTask, Exec: e, Req: 1})
		_ = i
	}
	for range redExec {
		j.ReduceTasks = append(j.ReduceTasks, &workload.Task{
			ID: "r", JobID: id, Type: workload.ReduceTask, Exec: redExec[0], Req: 1})
	}
	return j
}

func oneSlotCluster() Cluster { return Cluster{NumResources: 1, MapSlots: 1, ReduceSlots: 1} }

func TestSimSingleJob(t *testing.T) {
	j := makeJob(0, 1000, 1000, 10000, []int64{2000}, []int64{3000})
	s, err := New(oneSlotCluster(), newFifoRM(oneSlotCluster()), []*workload.Job{j})
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.JobsArrived != 1 || m.JobsCompleted != 1 || m.LateJobs != 0 {
		t.Fatalf("metrics %+v", m)
	}
	// Map runs [1000,3000), reduce [3000,6000): completion 6000, turnaround 5000ms.
	if m.MakespanMS != 6000 {
		t.Fatalf("makespan %d, want 6000", m.MakespanMS)
	}
	if m.T() != 5.0 {
		t.Fatalf("T = %g s, want 5", m.T())
	}
}

func TestSimLateJobDetection(t *testing.T) {
	j := makeJob(0, 0, 0, 4999, []int64{2000}, []int64{3000}) // completes at 5000 > 4999
	s, _ := New(oneSlotCluster(), newFifoRM(oneSlotCluster()), []*workload.Job{j})
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.LateJobs != 1 || m.P() != 1 {
		t.Fatalf("late=%d P=%g", m.LateJobs, m.P())
	}
	if !m.Records[0].Late() {
		t.Fatal("record not marked late")
	}
}

func TestSimSerializesOnCapacity(t *testing.T) {
	j1 := makeJob(0, 0, 0, 1e9, []int64{5000}, nil)
	j2 := makeJob(1, 100, 100, 1e9, []int64{5000}, nil)
	s, _ := New(oneSlotCluster(), newFifoRM(oneSlotCluster()), []*workload.Job{j1, j2})
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// j1 [0,5000), j2 [5000,10000).
	if m.MakespanMS != 10000 {
		t.Fatalf("makespan %d, want 10000", m.MakespanMS)
	}
	// T = (5000 + 9900)/2 ms.
	if got := m.T(); got != 7.45 {
		t.Fatalf("T = %g s, want 7.45", got)
	}
}

// badReduceRM schedules the reduce task at time 0, before the map completes.
type badReduceRM struct{ fifoRM }

func (b *badReduceRM) OnJobArrival(ctx Context, j *workload.Job) error {
	if err := ctx.Schedule(j.MapTasks[0], 0, ctx.Now()); err != nil {
		return err
	}
	return ctx.Schedule(j.ReduceTasks[0], 0, ctx.Now())
}

func TestSimRejectsReduceBeforeMaps(t *testing.T) {
	j := makeJob(0, 0, 0, 1e9, []int64{1000}, []int64{1000})
	s, _ := New(oneSlotCluster(), &badReduceRM{}, []*workload.Job{j})
	_, err := s.Run()
	if err == nil || !strings.Contains(err.Error(), "before map task") {
		t.Fatalf("expected reduce-before-map error, got %v", err)
	}
}

// overloadRM schedules two map tasks concurrently on a 1-slot resource.
type overloadRM struct{ fifoRM }

func (b *overloadRM) OnJobArrival(ctx Context, j *workload.Job) error {
	for _, t := range j.MapTasks {
		if err := ctx.Schedule(t, 0, ctx.Now()); err != nil {
			return err
		}
	}
	return nil
}

func TestSimRejectsCapacityViolation(t *testing.T) {
	j := makeJob(0, 0, 0, 1e9, []int64{1000, 1000}, nil)
	s, _ := New(oneSlotCluster(), &overloadRM{}, []*workload.Job{j})
	_, err := s.Run()
	if err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Fatalf("expected capacity error, got %v", err)
	}
}

// earlyRM starts the task before the job's earliest start time.
type earlyRM struct{ fifoRM }

func (b *earlyRM) OnJobArrival(ctx Context, j *workload.Job) error {
	return ctx.Schedule(j.MapTasks[0], 0, ctx.Now())
}

func TestSimRejectsStartBeforeEarliestStart(t *testing.T) {
	j := makeJob(0, 0, 5000, 1e9, []int64{1000}, nil) // arrives 0, s_j = 5000
	s, _ := New(oneSlotCluster(), &earlyRM{}, []*workload.Job{j})
	_, err := s.Run()
	if err == nil || !strings.Contains(err.Error(), "earliest start") {
		t.Fatalf("expected earliest-start error, got %v", err)
	}
}

// rescheduleRM places job 0's task far out, then pulls it in when job 1
// arrives, exercising stale-event invalidation.
type rescheduleRM struct {
	NoFaults
	moved bool
	j0    *workload.Job
}

func (r *rescheduleRM) Name() string { return "resched-test" }

func (r *rescheduleRM) OnJobArrival(ctx Context, j *workload.Job) error {
	switch j.ID {
	case 0:
		r.j0 = j
		return ctx.Schedule(j.MapTasks[0], 0, 10000)
	default:
		r.moved = true
		// Move job 0's task earlier and put job 1's task after it.
		if err := ctx.Schedule(r.j0.MapTasks[0], 0, ctx.Now()); err != nil {
			return err
		}
		return ctx.Schedule(j.MapTasks[0], 0, ctx.Now()+1000)
	}
}

func (r *rescheduleRM) OnTaskComplete(Context, *workload.Task) error { return nil }
func (r *rescheduleRM) OnTimer(Context) error                        { return nil }

func TestSimReschedulingInvalidatesOldStart(t *testing.T) {
	j0 := makeJob(0, 0, 0, 1e9, []int64{1000}, nil)
	j1 := makeJob(1, 500, 500, 1e9, []int64{1000}, nil)
	s, _ := New(oneSlotCluster(), &rescheduleRM{}, []*workload.Job{j0, j1})
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// j0 now runs [500,1500), j1 [1500,2500): if the stale event at 10000
	// were honored the ledger would double-start the task.
	if m.MakespanMS != 2500 {
		t.Fatalf("makespan %d, want 2500", m.MakespanMS)
	}
}

// timerRM defers all scheduling to a timer.
type timerRM struct {
	NoFaults
	fired int
	jobs  []*workload.Job
}

func (r *timerRM) Name() string { return "timer-test" }

func (r *timerRM) OnJobArrival(ctx Context, j *workload.Job) error {
	r.jobs = append(r.jobs, j)
	ctx.SetTimer(ctx.Now() + 2000)
	ctx.SetTimer(ctx.Now() + 2000) // coalesces
	return nil
}

func (r *timerRM) OnTaskComplete(Context, *workload.Task) error { return nil }

func (r *timerRM) OnTimer(ctx Context) error {
	r.fired++
	for _, j := range r.jobs {
		if !ctx.Started(j.MapTasks[0]) {
			if err := ctx.Schedule(j.MapTasks[0], 0, ctx.Now()); err != nil {
				return err
			}
		}
	}
	r.jobs = nil
	return nil
}

func TestSimTimers(t *testing.T) {
	j := makeJob(0, 0, 0, 1e9, []int64{1000}, nil)
	rm := &timerRM{}
	s, _ := New(oneSlotCluster(), rm, []*workload.Job{j})
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rm.fired != 1 {
		t.Fatalf("timer fired %d times, want 1 (coalesced)", rm.fired)
	}
	if m.MakespanMS != 3000 {
		t.Fatalf("makespan %d, want 3000 (start at timer 2000)", m.MakespanMS)
	}
}

func TestSimRejectsPastSchedule(t *testing.T) {
	j := makeJob(0, 1000, 1000, 1e9, []int64{1000}, nil)
	s, _ := New(oneSlotCluster(), newFifoRM(oneSlotCluster()), []*workload.Job{j})
	// Drive manually: scheduling in the past must fail immediately.
	if err := s.Schedule(j.MapTasks[0], 0, -5); err == nil {
		t.Fatal("schedule in the past accepted")
	}
}

func TestSimUnscheduledTaskFailsRun(t *testing.T) {
	// An RM that never schedules anything leaves the job incomplete.
	j := makeJob(0, 0, 0, 1e9, []int64{1000}, nil)
	s, _ := New(oneSlotCluster(), &noopRM{}, []*workload.Job{j})
	_, err := s.Run()
	if err == nil || !strings.Contains(err.Error(), "incomplete") {
		t.Fatalf("expected incomplete-job error, got %v", err)
	}
}

type noopRM struct{ NoFaults }

func (noopRM) Name() string                                 { return "noop" }
func (noopRM) OnJobArrival(Context, *workload.Job) error    { return nil }
func (noopRM) OnTaskComplete(Context, *workload.Task) error { return nil }
func (noopRM) OnTimer(Context) error                        { return nil }

func TestSimOverheadAccounting(t *testing.T) {
	j := makeJob(0, 0, 0, 1e9, []int64{1000}, nil)
	s, _ := New(oneSlotCluster(), newFifoRM(oneSlotCluster()), []*workload.Job{j})
	s.AddOverhead(30 * time.Millisecond)
	s.AddOverhead(70 * time.Millisecond)
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Invocations != 2 {
		t.Fatalf("invocations %d", m.Invocations)
	}
	if got := m.O(); got != 0.1 {
		t.Fatalf("O = %g s, want 0.1 (100ms over 1 job)", got)
	}
}

func TestSimClusterValidation(t *testing.T) {
	if _, err := New(Cluster{}, &noopRM{}, nil); err == nil {
		t.Fatal("zero cluster accepted")
	}
	// Task demand larger than per-resource capacity is rejected upfront.
	j := makeJob(0, 0, 0, 1e9, []int64{1000}, nil)
	j.MapTasks[0].Req = 5
	if _, err := New(oneSlotCluster(), &noopRM{}, []*workload.Job{j}); err == nil {
		t.Fatal("oversized task demand accepted")
	}
}

func TestSimPlacementQueries(t *testing.T) {
	j := makeJob(0, 0, 0, 1e9, []int64{1000}, nil)
	s, _ := New(oneSlotCluster(), &noopRM{}, []*workload.Job{j})
	task := j.MapTasks[0]
	if _, _, ok := s.Placement(task); ok {
		t.Fatal("unscheduled task has a placement")
	}
	if err := s.Schedule(task, 0, 500); err != nil {
		t.Fatal(err)
	}
	res, start, ok := s.Placement(task)
	if !ok || res != 0 || start != 500 {
		t.Fatalf("placement %d/%d/%v", res, start, ok)
	}
	if err := s.Unschedule(task); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Placement(task); ok {
		t.Fatal("unscheduled placement still visible")
	}
}
