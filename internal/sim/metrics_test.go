package sim

import (
	"math"
	"testing"

	"mrcprm/internal/workload"
)

func TestUtilizationSingleTask(t *testing.T) {
	c := oneSlotCluster()
	j := makeJob(0, 0, 0, 1e9, []int64{4000}, nil)
	s, _ := New(c, newFifoRM(c), []*workload.Job{j})
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.BusyMapSlotMS != 4000 || m.BusyReduceSlotMS != 0 {
		t.Fatalf("busy %d/%d", m.BusyMapSlotMS, m.BusyReduceSlotMS)
	}
	// One map slot busy 4000ms of a 4000ms makespan: map utilization 1.
	if u := m.MapUtilization(c); u != 1 {
		t.Fatalf("map utilization %g", u)
	}
	if u := m.ReduceUtilization(c); u != 0 {
		t.Fatalf("reduce utilization %g", u)
	}
	if m.ResourceActiveMS != 4000 {
		t.Fatalf("active %d", m.ResourceActiveMS)
	}
}

func TestResourceActiveMergesOverlap(t *testing.T) {
	// Map [0,4s) and reduce [4s,6s) on one resource: active 6s, not 6s+4s.
	c := oneSlotCluster()
	j := makeJob(0, 0, 0, 1e9, []int64{4000}, []int64{2000})
	s, _ := New(c, newFifoRM(c), []*workload.Job{j})
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.ResourceActiveMS != 6000 {
		t.Fatalf("active %d, want 6000", m.ResourceActiveMS)
	}
}

func TestResourceActiveCountsGapsSeparately(t *testing.T) {
	c := oneSlotCluster()
	j0 := makeJob(0, 0, 0, 1e9, []int64{2000}, nil)
	j1 := makeJob(1, 10_000, 10_000, 1e9, []int64{3000}, nil)
	s, _ := New(c, newFifoRM(c), []*workload.Job{j0, j1})
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Busy [0,2s) and [10s,13s): 5s active, not 13s.
	if m.ResourceActiveMS != 5000 {
		t.Fatalf("active %d, want 5000", m.ResourceActiveMS)
	}
}

func TestCostConversion(t *testing.T) {
	m := &Metrics{ResourceActiveMS: 3_600_000} // one resource-hour
	if got := m.Cost(2.5); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("cost %g, want 2.5", got)
	}
	if got := (&Metrics{}).Cost(10); got != 0 {
		t.Fatalf("zero activity cost %g", got)
	}
}

func TestUtilizationZeroMakespan(t *testing.T) {
	m := &Metrics{}
	if m.MapUtilization(oneSlotCluster()) != 0 || m.ReduceUtilization(oneSlotCluster()) != 0 {
		t.Fatal("zero makespan should yield zero utilization")
	}
}
