// Package sim is the discrete event simulation engine used for the paper's
// performance evaluation (Section VI). It executes a finite stream of
// MapReduce jobs against a simulated cluster under a pluggable resource
// manager, enforcing the problem's validity rules (slot capacities, earliest
// start times, reduce-after-map precedence) and collecting the paper's
// performance metrics O, N, T, and P.
//
// Simulated time is int64 milliseconds. Solver wall-clock time is recorded
// as the overhead metric O but does not advance simulated time, matching
// the paper's setup where MRCP-RM runs on a dedicated CPU and O/T stays
// below 0.1%.
package sim

import "container/heap"

type eventKind int

// Priorities at equal timestamps: finishes and failures free slots first,
// then resource state flips (so a manager invoked at T sees current
// availability), then the resource manager reacts (timers, arrivals), and
// only then do new tasks start, so a manager invoked at time T can still
// reschedule a task that was planned to start at T.
const (
	evTaskFinish eventKind = iota
	evTaskFail
	evResourceDown
	evResourceUp
	evTimer
	evJobArrival
	evTaskStart
)

type event struct {
	at      int64
	kind    eventKind
	seq     int64 // tie-break for determinism
	jobIdx  int   // evJobArrival
	taskKey int   // evTaskFinish / evTaskFail / evTaskStart
	version int64 // evTaskStart / evTaskFinish / evTaskFail: stale-event detection
	res     int   // evResourceDown / evResourceUp
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

type eventQueue struct {
	h   eventHeap
	seq int64
}

func (q *eventQueue) push(e event) {
	q.seq++
	e.seq = q.seq
	heap.Push(&q.h, e)
}

func (q *eventQueue) pop() (event, bool) {
	if len(q.h) == 0 {
		return event{}, false
	}
	return heap.Pop(&q.h).(event), true
}

func (q *eventQueue) empty() bool { return len(q.h) == 0 }
