package sim

import "mrcprm/internal/workload"

// This file defines the simulator side of the fault-injection layer: the
// injector interface the engine consumes (implemented by internal/faults),
// the extra lifecycle hooks fault-aware resource managers implement, and
// the embeddable no-op implementation for managers that predate faults.
//
// Fault semantics:
//
//   - A task-attempt failure releases the task's slots at the failure
//     instant; the work done so far is lost (WastedSlotMS) and the task
//     becomes schedulable again. The manager is told via OnTaskFailed and
//     must eventually re-place the task (or abandon the job).
//   - A resource outage kills every task running on the resource (each kill
//     counts as a failed attempt) and evacuates every pending placement on
//     it; the manager is told once via OnResourceDown with both lists.
//     While down, the resource accepts no placements.
//   - A repair makes the resource usable again; OnResourceUp lets the
//     manager re-expand onto it.
//
// With no injector installed the engine behaves bit-identically to the
// fault-free simulator.

// AttemptFault is the injected fate of one execution attempt of a task.
type AttemptFault struct {
	// Factor is the execution-time multiplier (straggler slowdown); values
	// below 1 are treated as 1.
	Factor float64
	// Fails reports whether this attempt fails before completing.
	Fails bool
	// FailPoint is the fraction of the attempt's effective execution time
	// at which the failure occurs, in (0, 1].
	FailPoint float64
}

// Outage is one planned resource outage window.
type Outage struct {
	Resource int
	// DownAt and UpAt are the absolute simulated times (ms) the resource
	// goes down and comes back; UpAt must be greater than DownAt.
	DownAt int64
	UpAt   int64
}

// FaultInjector supplies a deterministic fault plan to the simulator.
// internal/faults.Plan is the standard implementation; tests may supply
// their own.
type FaultInjector interface {
	// Attempt returns the fate of the given execution attempt (0-based
	// count of prior failures) of the task.
	Attempt(taskID string, attempt int) AttemptFault
	// PlannedOutages lists every resource outage window, in any order.
	PlannedOutages() []Outage
}

// FaultHooks is the failure-recovery part of ResourceManager. Managers that
// cannot recover may embed NoFaults, but a simulation with an injector
// installed will then end with incomplete jobs.
type FaultHooks interface {
	// OnTaskFailed fires when a running task's attempt fails (not for
	// outage kills, which arrive batched through OnResourceDown). The
	// task's slots on resource res have been released and it is
	// schedulable again. Fires for abandoned jobs' draining attempts too,
	// so managers mirroring slot state stay coherent.
	OnTaskFailed(ctx Context, t *workload.Task, res int) error
	// OnResourceDown fires when a resource goes down, after the simulator
	// killed the tasks running on it (killed, each counted as a failed
	// attempt) and removed the pending placements on it (evacuated).
	OnResourceDown(ctx Context, res int, killed, evacuated []*workload.Task) error
	// OnResourceUp fires when a resource comes back from an outage.
	OnResourceUp(ctx Context, res int) error
	// OnTaskSlowdown fires when a task starts an attempt whose effective
	// execution time exceeds the nominal t.Exec (a straggler). Managers
	// that pre-plan future starts must replan around the overrun —
	// ctx.RunningExec reports the attempt's true duration — or later start
	// events may find their slots still occupied. Purely reactive managers
	// can ignore it.
	OnTaskSlowdown(ctx Context, t *workload.Task) error
}

// NoFaults is an embeddable no-op FaultHooks implementation for resource
// managers that do not handle failures.
type NoFaults struct{}

// OnTaskFailed implements FaultHooks as a no-op.
func (NoFaults) OnTaskFailed(Context, *workload.Task, int) error { return nil }

// OnResourceDown implements FaultHooks as a no-op.
func (NoFaults) OnResourceDown(Context, int, []*workload.Task, []*workload.Task) error { return nil }

// OnResourceUp implements FaultHooks as a no-op.
func (NoFaults) OnResourceUp(Context, int) error { return nil }

// OnTaskSlowdown implements FaultHooks as a no-op.
func (NoFaults) OnTaskSlowdown(Context, *workload.Task) error { return nil }
