package sim

import (
	"testing"

	"mrcprm/internal/workload"
)

// Regression test: Unschedule must clear the placement fields, not just the
// scheduled flag. A stale res/start pair would later leak into outage
// evacuation lists and fault hooks as a phantom placement.
func TestUnscheduleClearsStalePlacement(t *testing.T) {
	j := makeJob(0, 0, 0, 100_000, []int64{2000}, nil)
	cluster := Cluster{NumResources: 3, MapSlots: 1, ReduceSlots: 1}
	s, err := New(cluster, noopRM{}, []*workload.Job{j})
	if err != nil {
		t.Fatal(err)
	}
	task := j.MapTasks[0]
	if err := s.Schedule(task, 2, 5000); err != nil {
		t.Fatal(err)
	}
	st := s.tasks[task]
	if st.res != 2 || st.start != 5000 || !st.scheduled {
		t.Fatalf("placement not recorded: res=%d start=%d scheduled=%v", st.res, st.start, st.scheduled)
	}
	v := st.version
	if err := s.Unschedule(task); err != nil {
		t.Fatal(err)
	}
	if st.scheduled {
		t.Fatal("still scheduled after Unschedule")
	}
	if st.res != -1 || st.start != 0 {
		t.Fatalf("stale placement survives Unschedule: res=%d start=%d", st.res, st.start)
	}
	if st.version == v {
		t.Fatal("version not bumped; queued start event would not be invalidated")
	}
	if _, _, ok := s.Placement(task); ok {
		t.Fatal("Placement still reports the removed placement")
	}
}
