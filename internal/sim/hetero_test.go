package sim

import (
	"strings"
	"testing"

	"mrcprm/internal/workload"
)

func TestScaledExec(t *testing.T) {
	cases := []struct {
		exec  int64
		speed float64
		want  int64
	}{
		{4000, 1.0, 4000}, // speed 1.0 is the exact identity, no float round-trip
		{4000, 0.5, 8000}, // half speed doubles
		{4000, 2.0, 2000}, // double speed halves
		{1000, 0.3, 3334}, // ceiling, not truncation
		{1, 1000, 1},      // never below 1 ms
		{0, 0.5, 0},       // non-positive exec passes through
		{-5, 0.5, -5},
	}
	for _, c := range cases {
		if got := ScaledExec(c.exec, c.speed); got != c.want {
			t.Errorf("ScaledExec(%d, %g) = %d, want %d", c.exec, c.speed, got, c.want)
		}
	}
}

func TestClusterSpeedAccessors(t *testing.T) {
	uniform := Cluster{NumResources: 3, MapSlots: 1, ReduceSlots: 1}
	if uniform.Heterogeneous() || uniform.SpeedOf(0) != 1.0 || uniform.SpeedOf(99) != 1.0 {
		t.Fatal("nil speed vector must read as uniform 1.0 everywhere")
	}
	if uniform.MaxSpeed() != 1.0 || uniform.MinSpeed() != 1.0 {
		t.Fatal("uniform extremes must be 1.0")
	}
	hetero := Cluster{NumResources: 3, MapSlots: 1, ReduceSlots: 1, Speed: []float64{1, 0.5, 2}}
	if !hetero.Heterogeneous() || hetero.SpeedOf(1) != 0.5 {
		t.Fatal("speed vector not read back")
	}
	if hetero.MaxSpeed() != 2 || hetero.MinSpeed() != 0.5 {
		t.Fatalf("extremes %g..%g, want 0.5..2", hetero.MinSpeed(), hetero.MaxSpeed())
	}
	allOnes := uniform
	allOnes.Speed = []float64{1, 1, 1}
	if !allOnes.Heterogeneous() == false || !uniform.Equal(allOnes) {
		t.Fatal("an explicit all-1.0 vector must compare equal to nil")
	}
	if uniform.Equal(hetero) {
		t.Fatal("different speeds must not compare equal")
	}
	withMem := uniform
	withMem.MemCapacity = 8
	if uniform.Equal(withMem) {
		t.Fatal("memory capacity must participate in equality")
	}
}

func TestClusterValidateHetero(t *testing.T) {
	bad := []Cluster{
		{NumResources: 2, MapSlots: 1, ReduceSlots: 1, Speed: []float64{1}},     // wrong length
		{NumResources: 2, MapSlots: 1, ReduceSlots: 1, Speed: []float64{1, 0}},  // non-positive
		{NumResources: 2, MapSlots: 1, ReduceSlots: 1, Speed: []float64{1, -2}}, // negative
		{NumResources: 2, MapSlots: 1, ReduceSlots: 1, MemCapacity: -1},         // negative mem
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid cluster %+v passed validation", i, c)
		}
	}
	ok := Cluster{NumResources: 2, MapSlots: 1, ReduceSlots: 1,
		Speed: []float64{1, 0.25}, MemCapacity: 16}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
}

// pinRM schedules every task at a fixed, pre-declared placement.
type pinRM struct {
	NoFaults
	place map[string][2]int64 // task ID -> {resource, start}
}

func (p *pinRM) Name() string { return "pin-test" }
func (p *pinRM) OnJobArrival(ctx Context, j *workload.Job) error {
	for _, t := range j.Tasks() {
		pl, ok := p.place[t.ID]
		if !ok {
			continue
		}
		if err := ctx.Schedule(t, int(pl[0]), pl[1]); err != nil {
			return err
		}
	}
	return nil
}
func (p *pinRM) OnTaskComplete(Context, *workload.Task) error { return nil }
func (p *pinRM) OnTimer(Context) error                        { return nil }

// A task on a slow machine must run for its machine-scaled duration: the
// engine applies ScaledExec at attempt start, not the nominal Exec.
func TestHeteroExecutionScaling(t *testing.T) {
	cluster := Cluster{NumResources: 2, MapSlots: 1, ReduceSlots: 1,
		Speed: []float64{1.0, 0.25}}
	j := &workload.Job{ID: 0, Deadline: 100_000}
	j.MapTasks = []*workload.Task{
		{ID: "m0", JobID: 0, Type: workload.MapTask, Exec: 4000, Req: 1},
		{ID: "m1", JobID: 0, Type: workload.MapTask, Exec: 4000, Req: 1},
	}
	rm := &pinRM{place: map[string][2]int64{"m0": {0, 0}, "m1": {1, 0}}}
	s, err := New(cluster, rm, []*workload.Job{j})
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// m0 finishes at 4000 on the full-speed machine; m1 at 16000 on the
	// quarter-speed one, so the job (and makespan) completes at 16000.
	if m.MakespanMS != 16_000 {
		t.Fatalf("makespan %d, want 16000 (4000 ms task at 1/4 speed)", m.MakespanMS)
	}
}

// The memory ledger must reject a placement whose concurrent memory demand
// exceeds the capacity even when slots are free, and must admit the same
// tasks when they do not overlap.
func TestMemoryLedgerEnforcesCapacity(t *testing.T) {
	cluster := Cluster{NumResources: 1, MapSlots: 2, ReduceSlots: 1, MemCapacity: 4}
	mk := func() *workload.Job {
		j := &workload.Job{ID: 0, Deadline: 100_000}
		j.MapTasks = []*workload.Task{
			{ID: "m0", JobID: 0, Type: workload.MapTask, Exec: 1000, Req: 1, Mem: 3},
			{ID: "m1", JobID: 0, Type: workload.MapTask, Exec: 1000, Req: 1, Mem: 3},
		}
		return j
	}
	// Overlapping: 3+3 > 4 despite two free map slots.
	rm := &pinRM{place: map[string][2]int64{"m0": {0, 0}, "m1": {0, 0}}}
	s, err := New(cluster, rm, []*workload.Job{mk()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil || !strings.Contains(err.Error(), "memory capacity") {
		t.Fatalf("overlapping over-memory run error = %v, want memory capacity violation", err)
	}
	// Disjoint in time: fits.
	rm = &pinRM{place: map[string][2]int64{"m0": {0, 0}, "m1": {0, 1000}}}
	s, err = New(cluster, rm, []*workload.Job{mk()})
	if err != nil {
		t.Fatal(err)
	}
	if m, err := s.Run(); err != nil || m.MakespanMS != 2000 {
		t.Fatalf("sequential run: metrics %v err %v, want makespan 2000", m, err)
	}
}

// A task whose memory demand can never fit must be rejected up front.
func TestMemoryValidationRejectsOversizedTask(t *testing.T) {
	cluster := Cluster{NumResources: 1, MapSlots: 1, ReduceSlots: 1, MemCapacity: 4}
	j := &workload.Job{ID: 0, Deadline: 100_000}
	j.MapTasks = []*workload.Task{
		{ID: "m0", JobID: 0, Type: workload.MapTask, Exec: 1000, Req: 1, Mem: 5},
	}
	if _, err := New(cluster, &pinRM{}, []*workload.Job{j}); err == nil {
		t.Fatal("task with Mem > MemCapacity must be rejected at construction")
	}
}
