package sim

import "mrcprm/internal/workload"

// TeeObservers fans lifecycle notifications out to several observers. The
// simulator accepts exactly one Observer; the tee implements every optional
// extension interface (FaultObserver, PlacementObserver, SlowdownObserver,
// JobObserver) and forwards each event only to the sub-observers that
// implement it, so attaching a tee never widens or narrows what any single
// sub-observer would have seen on its own. Nil sub-observers are skipped;
// a tee of zero or one live observers collapses to nil or that observer.
func TeeObservers(obs ...Observer) Observer {
	t := &tee{}
	for _, o := range obs {
		if o == nil {
			continue
		}
		t.all = append(t.all, o)
		if fo, ok := o.(FaultObserver); ok {
			t.faults = append(t.faults, fo)
		}
		if po, ok := o.(PlacementObserver); ok {
			t.places = append(t.places, po)
		}
		if so, ok := o.(SlowdownObserver); ok {
			t.slows = append(t.slows, so)
		}
		if jo, ok := o.(JobObserver); ok {
			t.jobs = append(t.jobs, jo)
		}
	}
	switch len(t.all) {
	case 0:
		return nil
	case 1:
		return t.all[0]
	}
	return t
}

type tee struct {
	all    []Observer
	faults []FaultObserver
	places []PlacementObserver
	slows  []SlowdownObserver
	jobs   []JobObserver
}

func (t *tee) TaskStarted(now int64, tk *workload.Task, j *workload.Job, res int) {
	for _, o := range t.all {
		o.TaskStarted(now, tk, j, res)
	}
}

func (t *tee) TaskFinished(now int64, tk *workload.Task, j *workload.Job, res int) {
	for _, o := range t.all {
		o.TaskFinished(now, tk, j, res)
	}
}

func (t *tee) TaskFailed(now int64, tk *workload.Task, j *workload.Job, res int) {
	for _, o := range t.faults {
		o.TaskFailed(now, tk, j, res)
	}
}

func (t *tee) TaskKilled(now int64, tk *workload.Task, j *workload.Job, res int) {
	for _, o := range t.faults {
		o.TaskKilled(now, tk, j, res)
	}
}

func (t *tee) ResourceDown(now int64, res int) {
	for _, o := range t.faults {
		o.ResourceDown(now, res)
	}
}

func (t *tee) ResourceUp(now int64, res int) {
	for _, o := range t.faults {
		o.ResourceUp(now, res)
	}
}

func (t *tee) TaskScheduled(now int64, tk *workload.Task, j *workload.Job, res int, start int64, replan bool) {
	for _, o := range t.places {
		o.TaskScheduled(now, tk, j, res, start, replan)
	}
}

func (t *tee) TaskSlowdown(now int64, tk *workload.Task, j *workload.Job, res int, effExec, nominal int64) {
	for _, o := range t.slows {
		o.TaskSlowdown(now, tk, j, res, effExec, nominal)
	}
}

func (t *tee) JobCompleted(now int64, j *workload.Job, latenessMS int64) {
	for _, o := range t.jobs {
		o.JobCompleted(now, j, latenessMS)
	}
}

func (t *tee) JobAbandoned(now int64, j *workload.Job) {
	for _, o := range t.jobs {
		o.JobAbandoned(now, j)
	}
}
