package sim

import (
	"encoding/binary"
	"hash/fnv"
	"time"

	"mrcprm/internal/workload"
)

// JobRecord is the per-job outcome of a simulation run.
type JobRecord struct {
	Job        *workload.Job
	Completion int64 // completion time CT_j (ms); 0 until completed
	Done       bool
}

// Late reports whether the job finished after its deadline.
func (r JobRecord) Late() bool { return r.Done && r.Completion > r.Job.Deadline }

// TurnaroundMS returns CT_j - s_j, the paper's per-job turnaround.
func (r JobRecord) TurnaroundMS() int64 { return r.Completion - r.Job.EarliestStart }

// Metrics aggregates the paper's performance metrics over one run.
type Metrics struct {
	JobsArrived   int
	JobsCompleted int
	// N: number of jobs that missed their deadlines.
	LateJobs int
	// Sum of CT_j - s_j over completed jobs, for T.
	totalTurnaroundMS int64
	// Total matchmaking and scheduling wall time, for O.
	totalOverhead time.Duration
	// Invocations counts resource manager scheduling rounds.
	Invocations int
	// MakespanMS is the completion time of the last job.
	MakespanMS int64
	// BusySlotMS accumulates slot-milliseconds of executed work, split by
	// slot kind; together with MakespanMS it yields utilization figures.
	BusyMapSlotMS    int64
	BusyReduceSlotMS int64
	// ResourceActiveMS accumulates resource-milliseconds during which a
	// resource had at least one task running — the quantity a pay-per-use
	// cloud bills for (the paper's future-work cost direction).
	ResourceActiveMS int64
	// TotalLatenessMS and MaxLatenessMS quantify how badly the late jobs
	// missed (the paper's N counts them; these add magnitude).
	TotalLatenessMS int64
	MaxLatenessMS   int64

	// Failure accounting (all zero on fault-free runs).
	//
	// TasksFailed counts attempts that failed mid-execution; TasksKilled
	// counts attempts killed by a resource outage; TasksRetried counts
	// re-executions started after a failed or killed attempt. JobsAbandoned
	// counts jobs given up by the manager (each counts against the SLA in
	// P). Outages counts resource down events, DowntimeMS their summed
	// durations, and WastedSlotMS the slot-milliseconds of work lost to
	// failed and killed attempts.
	TasksFailed   int
	TasksKilled   int
	TasksRetried  int
	JobsAbandoned int
	Outages       int
	DowntimeMS    int64
	WastedSlotMS  int64

	Records []JobRecord
}

// MeanLatenessSec returns the average lateness among late jobs in seconds
// (0 when no job is late).
func (m *Metrics) MeanLatenessSec() float64 {
	if m.LateJobs == 0 {
		return 0
	}
	return float64(m.TotalLatenessMS) / float64(m.LateJobs) / 1000
}

// MapUtilization returns the fraction of map slot capacity used over the
// run's makespan, in [0, 1].
func (m *Metrics) MapUtilization(cluster Cluster) float64 {
	den := float64(cluster.TotalMapSlots()) * float64(m.MakespanMS)
	if den == 0 {
		return 0
	}
	return float64(m.BusyMapSlotMS) / den
}

// ReduceUtilization returns the fraction of reduce slot capacity used over
// the run's makespan, in [0, 1].
func (m *Metrics) ReduceUtilization(cluster Cluster) float64 {
	den := float64(cluster.TotalReduceSlots()) * float64(m.MakespanMS)
	if den == 0 {
		return 0
	}
	return float64(m.BusyReduceSlotMS) / den
}

// Cost converts resource-active time into money at the given price per
// resource-hour.
func (m *Metrics) Cost(pricePerResourceHour float64) float64 {
	return float64(m.ResourceActiveMS) / 3_600_000 * pricePerResourceHour
}

// P returns the proportion of jobs that violated their SLA — late or
// abandoned — over the jobs that arrived, in [0, 1].
func (m *Metrics) P() float64 {
	if m.JobsArrived == 0 {
		return 0
	}
	return float64(m.LateJobs+m.JobsAbandoned) / float64(m.JobsArrived)
}

// T returns the average job turnaround time in seconds.
func (m *Metrics) T() float64 {
	if m.JobsCompleted == 0 {
		return 0
	}
	return float64(m.totalTurnaroundMS) / float64(m.JobsCompleted) / 1000
}

// O returns the average matchmaking and scheduling time per job in seconds
// (total overhead divided by the number of jobs mapped and scheduled).
func (m *Metrics) O() float64 {
	if m.JobsCompleted == 0 {
		return 0
	}
	return m.totalOverhead.Seconds() / float64(m.JobsCompleted)
}

// N returns the number of late jobs.
func (m *Metrics) N() int { return m.LateJobs }

// TotalOverhead returns the accumulated scheduling wall time.
func (m *Metrics) TotalOverhead() time.Duration { return m.totalOverhead }

// Fingerprint hashes every simulated-time-derived field of the metrics,
// including the per-job records, into one value. Two runs of the same
// workload, manager, and fault plan must produce equal fingerprints; the
// wall-clock overhead metric O is deliberately excluded because it varies
// run to run.
func (m *Metrics) Fingerprint() uint64 {
	h := fnv.New64a()
	w := func(vs ...int64) {
		var buf [8]byte
		for _, v := range vs {
			binary.LittleEndian.PutUint64(buf[:], uint64(v))
			h.Write(buf[:])
		}
	}
	w(int64(m.JobsArrived), int64(m.JobsCompleted), int64(m.LateJobs),
		m.totalTurnaroundMS, int64(m.Invocations), m.MakespanMS,
		m.BusyMapSlotMS, m.BusyReduceSlotMS, m.ResourceActiveMS,
		m.TotalLatenessMS, m.MaxLatenessMS,
		int64(m.TasksFailed), int64(m.TasksKilled), int64(m.TasksRetried),
		int64(m.JobsAbandoned), int64(m.Outages), m.DowntimeMS, m.WastedSlotMS)
	for _, r := range m.Records {
		done := int64(0)
		if r.Done {
			done = 1
		}
		w(int64(r.Job.ID), r.Completion, done)
	}
	return h.Sum64()
}
