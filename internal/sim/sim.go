package sim

import (
	"fmt"
	"sort"
	"time"

	"mrcprm/internal/obs"
	"mrcprm/internal/workload"
)

// ResourceManager is the pluggable matchmaking-and-scheduling policy. Both
// MRCP-RM (internal/core) and the MinEDF-WC baseline (internal/minedf)
// implement it. Callbacks receive the simulation Context through which the
// manager inspects state and installs placements.
type ResourceManager interface {
	// Name identifies the manager in reports.
	Name() string
	// OnJobArrival fires when a job enters the system at ctx.Now().
	OnJobArrival(ctx Context, j *workload.Job) error
	// OnTaskComplete fires when a running task finishes.
	OnTaskComplete(ctx Context, t *workload.Task) error
	// OnTimer fires when a timer set through ctx.SetTimer expires.
	OnTimer(ctx Context) error
	// FaultHooks delivers failure-recovery callbacks; managers that do not
	// recover from faults may embed NoFaults.
	FaultHooks
}

// Context is the view of the simulation a resource manager operates
// through.
type Context interface {
	// Now returns the current simulated time (ms).
	Now() int64
	// Cluster returns the simulated system shape.
	Cluster() Cluster
	// Schedule installs (or replaces) the placement of a not-yet-started
	// task: it will start on resource res at time start >= Now().
	Schedule(t *workload.Task, res int, start int64) error
	// Unschedule removes a pending placement. It is an error to unschedule
	// a started task.
	Unschedule(t *workload.Task) error
	// Placement returns a task's planned or actual placement.
	Placement(t *workload.Task) (res int, start int64, ok bool)
	// Started reports whether the task has begun executing.
	Started(t *workload.Task) bool
	// Completed reports whether the task has finished.
	Completed(t *workload.Task) bool
	// FreeMapSlots and FreeReduceSlots report instantaneous idle capacity.
	FreeMapSlots(res int) int64
	FreeReduceSlots(res int) int64
	// SetTimer schedules an OnTimer callback at the given time (> Now).
	SetTimer(at int64)
	// AddOverhead accrues matchmaking-and-scheduling wall time into the O
	// metric and counts one invocation.
	AddOverhead(d time.Duration)
	// ResourceDown reports whether the resource is currently in an outage;
	// down resources accept no placements.
	ResourceDown(res int) bool
	// Attempts returns the number of failed execution attempts of the task
	// so far (0 when it has never failed).
	Attempts(t *workload.Task) int
	// RunningExec returns the effective execution time (after straggler
	// slowdown) of the task's in-flight attempt, or the nominal t.Exec when
	// the task is not running. Managers use it to model the true finish
	// time of started work.
	RunningExec(t *workload.Task) int64
	// AbandonJob gives up on a job (typically after exhausting its retry
	// budget): pending placements are removed, the job counts as an SLA
	// violation, and the run may end without completing it. In-flight
	// attempts run to completion and their output is discarded.
	AbandonJob(j *workload.Job) error
}

type taskState struct {
	task      *workload.Task
	job       *workload.Job
	key       int // index into Simulator.byKey, used by events
	res       int
	start     int64
	version   int64
	scheduled bool
	started   bool
	completed bool
	// attempt counts failed execution attempts; effExec is the effective
	// (slowdown-adjusted) duration of the in-flight attempt.
	attempt int
	effExec int64
}

// Simulator drives one run: a fixed job list (with arrival times) against a
// cluster under a resource manager.
type Simulator struct {
	cluster Cluster
	rm      ResourceManager
	jobs    []*workload.Job

	queue   eventQueue
	clock   int64
	ledger  *slotLedger
	tasks   map[*workload.Task]*taskState
	byKey   []*taskState
	pending map[*workload.Job]int // uncompleted task count
	metrics Metrics
	timers  map[int64]bool
	// activeSince[r] is the instant resource r last became non-idle, or -1.
	activeSince []int64
	observer    Observer
	faultObs    FaultObserver
	placeObs    PlacementObserver
	slowObs     SlowdownObserver
	jobObs      JobObserver

	// Telemetry sampling state; inert when tel is nil.
	tel        *obs.Telemetry
	sampleMS   int64
	nextSample int64

	// Fault-injection state; all nil/empty without an injector.
	injector  FaultInjector
	down      []bool
	downSince []int64
	abandoned map[*workload.Job]bool

	// Stepped-execution state (the clock abstraction used by the online
	// service): started flips on the first Step, completedAt records job
	// completion instants for mid-run status queries, and outageUntil[r]
	// tracks the latest known outage end so runtime injection can reject
	// overlapping windows.
	started     bool
	completedAt map[*workload.Job]int64
	outageUntil []int64
}

// Observer receives task lifecycle notifications; see internal/trace for a
// ready-made recorder. Nil observers are fine.
type Observer interface {
	// TaskStarted fires when a task begins executing.
	TaskStarted(now int64, t *workload.Task, j *workload.Job, res int)
	// TaskFinished fires when a task completes.
	TaskFinished(now int64, t *workload.Task, j *workload.Job, res int)
}

// FaultObserver extends Observer with the failure-path notifications added
// by the fault-injection layer. Observers that implement it also see task
// failures, outage kills, and resource down/up transitions; plain Observers
// silently miss them.
type FaultObserver interface {
	Observer
	// TaskFailed fires when a running attempt fails mid-execution.
	TaskFailed(now int64, t *workload.Task, j *workload.Job, res int)
	// TaskKilled fires when a resource outage kills a running attempt.
	TaskKilled(now int64, t *workload.Task, j *workload.Job, res int)
	// ResourceDown fires when a resource outage begins.
	ResourceDown(now int64, res int)
	// ResourceUp fires when a resource outage ends.
	ResourceUp(now int64, res int)
}

// PlacementObserver extends Observer with placement decisions: observers
// that implement it see every Schedule call the manager makes, including
// replacements of an existing plan (replan=true).
type PlacementObserver interface {
	Observer
	// TaskScheduled fires when a placement is installed. replan is true
	// when the task already had a pending placement that this one replaces.
	TaskScheduled(now int64, t *workload.Task, j *workload.Job, res int, start int64, replan bool)
}

// SlowdownObserver extends Observer with straggler detection: it fires when
// a just-started attempt is discovered to run slower than nominal.
type SlowdownObserver interface {
	Observer
	// TaskSlowdown fires when an attempt starts with effective duration
	// effExec stretched beyond the nominal exec time.
	TaskSlowdown(now int64, t *workload.Task, j *workload.Job, res int, effExec, nominal int64)
}

// JobObserver extends Observer with job-level terminal events.
type JobObserver interface {
	Observer
	// JobCompleted fires when the last task of a job finishes. latenessMS
	// is completion minus deadline (negative when the job met its SLA).
	JobCompleted(now int64, j *workload.Job, latenessMS int64)
	// JobAbandoned fires when a job is given up on.
	JobAbandoned(now int64, j *workload.Job)
}

// SetObserver attaches a lifecycle observer; call before Run. Observers
// that also implement FaultObserver, PlacementObserver, SlowdownObserver,
// or JobObserver receive the corresponding extended events. Use
// TeeObservers to attach more than one.
func (s *Simulator) SetObserver(o Observer) {
	s.observer = o
	s.faultObs, _ = o.(FaultObserver)
	s.placeObs, _ = o.(PlacementObserver)
	s.slowObs, _ = o.(SlowdownObserver)
	s.jobObs, _ = o.(JobObserver)
}

// SetTelemetry attaches a telemetry core; call before Run. The simulator
// emits a sampled time-series of slot occupancy, task queue depths, and
// outstanding jobs: whenever event processing crosses a multiple of
// sampleEveryMS in simulated time, one "sample" event is recorded at that
// boundary (so long idle gaps produce one sample, not thousands).
// sampleEveryMS <= 0 selects the default of 5000 ms. A nil tel detaches.
func (s *Simulator) SetTelemetry(tel *obs.Telemetry, sampleEveryMS int64) {
	if sampleEveryMS <= 0 {
		sampleEveryMS = 5000
	}
	s.tel = tel
	s.sampleMS = sampleEveryMS
	s.nextSample = sampleEveryMS
}

// SetFaultInjector installs a fault plan; call before Run. Planned outages
// outside the cluster's resource range are rejected. A nil injector leaves
// the simulator fault-free.
func (s *Simulator) SetFaultInjector(fi FaultInjector) error {
	if fi == nil {
		s.injector = nil
		return nil
	}
	perRes := make(map[int][]Outage)
	for _, o := range fi.PlannedOutages() {
		if o.Resource < 0 || o.Resource >= s.cluster.NumResources {
			return fmt.Errorf("sim: outage on invalid resource %d", o.Resource)
		}
		if o.UpAt <= o.DownAt || o.DownAt < 0 {
			return fmt.Errorf("sim: outage window [%d,%d) on resource %d is invalid",
				o.DownAt, o.UpAt, o.Resource)
		}
		perRes[o.Resource] = append(perRes[o.Resource], o)
	}
	for r, os := range perRes {
		sort.Slice(os, func(i, j int) bool { return os[i].DownAt < os[j].DownAt })
		for i := 1; i < len(os); i++ {
			if os[i].DownAt < os[i-1].UpAt {
				return fmt.Errorf("sim: overlapping outages on resource %d", r)
			}
		}
	}
	s.injector = fi
	return nil
}

// New prepares a simulation of the given jobs. The job list is sorted by
// arrival time internally; it is not modified.
func New(cluster Cluster, rm ResourceManager, jobs []*workload.Job) (*Simulator, error) {
	if err := cluster.Validate(); err != nil {
		return nil, err
	}
	sorted := append([]*workload.Job(nil), jobs...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Arrival < sorted[j].Arrival })
	s := &Simulator{
		cluster:     cluster,
		rm:          rm,
		jobs:        sorted,
		ledger:      newSlotLedger(cluster),
		tasks:       make(map[*workload.Task]*taskState),
		pending:     make(map[*workload.Job]int),
		timers:      make(map[int64]bool),
		activeSince: make([]int64, cluster.NumResources),
		down:        make([]bool, cluster.NumResources),
		downSince:   make([]int64, cluster.NumResources),
		abandoned:   make(map[*workload.Job]bool),
		completedAt: make(map[*workload.Job]int64),
		outageUntil: make([]int64, cluster.NumResources),
	}
	for r := range s.activeSince {
		s.activeSince[r] = -1
	}
	for idx, j := range sorted {
		if err := j.Validate(); err != nil {
			return nil, err
		}
		for _, t := range j.Tasks() {
			if t.Type == workload.MapTask && t.Req > cluster.MapSlots {
				return nil, fmt.Errorf("sim: task %s demand %d exceeds per-resource map capacity %d",
					t.ID, t.Req, cluster.MapSlots)
			}
			if t.Type == workload.ReduceTask && t.Req > cluster.ReduceSlots {
				return nil, fmt.Errorf("sim: task %s demand %d exceeds per-resource reduce capacity %d",
					t.ID, t.Req, cluster.ReduceSlots)
			}
			if cluster.MemCapacity > 0 && t.Mem > cluster.MemCapacity {
				return nil, fmt.Errorf("sim: task %s memory demand %d exceeds per-resource capacity %d",
					t.ID, t.Mem, cluster.MemCapacity)
			}
			st := &taskState{task: t, job: j, key: len(s.byKey), res: -1}
			s.tasks[t] = st
			s.byKey = append(s.byKey, st)
		}
		s.pending[j] = j.NumTasks()
		s.queue.push(event{at: j.Arrival, kind: evJobArrival, jobIdx: idx})
	}
	return s, nil
}

// Run executes the simulation to completion and returns the metrics. It is
// equivalent to draining Step and calling Finish; external drivers (the
// online service) use those directly and own the pacing.
func (s *Simulator) Run() (*Metrics, error) {
	for {
		more, err := s.Step()
		if err != nil {
			return nil, err
		}
		if !more {
			break
		}
	}
	return s.Finish()
}

// start performs the once-per-run setup deferred until the first event is
// processed: planned outage windows enter the event queue here so jobs added
// online (AddJob) before execution begins keep the same queue ordering as a
// pre-loaded run.
func (s *Simulator) start() {
	s.started = true
	if s.injector == nil {
		return
	}
	for _, o := range s.injector.PlannedOutages() {
		s.queue.push(event{at: o.DownAt, kind: evResourceDown, res: o.Resource})
		s.queue.push(event{at: o.UpAt, kind: evResourceUp, res: o.Resource})
		if o.UpAt > s.outageUntil[o.Resource] {
			s.outageUntil[o.Resource] = o.UpAt
		}
	}
}

// Step processes the next pending event and reports whether any events
// remain. It is the unit of the clock abstraction: Run calls it in a tight
// loop (virtual time), while the online service paces calls against a wall
// clock and interleaves job injection between them.
func (s *Simulator) Step() (bool, error) {
	if !s.started {
		s.start()
	}
	ev, ok := s.queue.pop()
	if !ok {
		return false, nil
	}
	if ev.at < s.clock {
		return false, fmt.Errorf("sim: time ran backwards (%d -> %d)", s.clock, ev.at)
	}
	if s.tel.Enabled() && ev.at >= s.nextSample {
		// One sample per crossing, stamped at the first crossed
		// boundary; long idle gaps yield one sample, not thousands.
		s.emitSample(s.nextSample)
		s.nextSample += s.sampleMS * ((ev.at-s.nextSample)/s.sampleMS + 1)
	}
	s.clock = ev.at
	var err error
	switch ev.kind {
	case evJobArrival:
		j := s.jobs[ev.jobIdx]
		s.metrics.JobsArrived++
		err = s.rm.OnJobArrival(s, j)
	case evTimer:
		if s.timers[ev.at] {
			delete(s.timers, ev.at)
			err = s.rm.OnTimer(s)
		}
	case evTaskStart:
		err = s.handleTaskStart(ev)
	case evTaskFinish:
		err = s.handleTaskFinish(ev)
	case evTaskFail:
		err = s.handleTaskFail(ev)
	case evResourceDown:
		err = s.handleResourceDown(ev)
	case evResourceUp:
		err = s.handleResourceUp(ev)
	}
	if err != nil {
		return false, err
	}
	return !s.queue.empty(), nil
}

// NextEventAt returns the timestamp of the next pending event, or false when
// the queue is empty. Wall-clock drivers use it to sleep until the event is
// due.
func (s *Simulator) NextEventAt() (int64, bool) {
	if s.queue.empty() {
		return 0, false
	}
	return s.queue.h[0].at, true
}

// Finish validates that every job completed (or was abandoned), emits the
// final telemetry, and returns the metrics. Call it once, after Step reports
// no events remain.
func (s *Simulator) Finish() (*Metrics, error) {
	for j, n := range s.pending {
		if n > 0 && !s.abandoned[j] {
			return nil, fmt.Errorf("sim: run ended with job %d incomplete (%d tasks left)", j.ID, n)
		}
	}
	if s.tel.Enabled() {
		s.emitSample(s.clock)
		s.tel.Emit(s.clock, obs.LayerSim, "run_end",
			obs.Int("jobs_arrived", s.metrics.JobsArrived),
			obs.Int("jobs_completed", s.metrics.JobsCompleted),
			obs.Int("late_jobs", s.metrics.LateJobs),
			obs.Int("jobs_abandoned", s.metrics.JobsAbandoned),
			obs.I64("makespan_ms", s.metrics.MakespanMS),
		)
	}
	return &s.metrics, nil
}

// AddJob injects a job into a running (or not-yet-started) simulation; its
// arrival event fires at j.Arrival, which must not lie in the past. This is
// the online-submission hook: a pre-loaded run and a run whose jobs are
// added in the same (arrival-sorted) order before the first Step process
// identical event sequences.
func (s *Simulator) AddJob(j *workload.Job) error {
	if err := j.Validate(); err != nil {
		return err
	}
	if j.Arrival < s.clock {
		return fmt.Errorf("sim: job %d arrival %d lies in the past (now %d)", j.ID, j.Arrival, s.clock)
	}
	for _, t := range j.Tasks() {
		if _, dup := s.tasks[t]; dup {
			return fmt.Errorf("sim: task %s already registered", t.ID)
		}
		if t.Type == workload.MapTask && t.Req > s.cluster.MapSlots {
			return fmt.Errorf("sim: task %s demand %d exceeds per-resource map capacity %d",
				t.ID, t.Req, s.cluster.MapSlots)
		}
		if t.Type == workload.ReduceTask && t.Req > s.cluster.ReduceSlots {
			return fmt.Errorf("sim: task %s demand %d exceeds per-resource reduce capacity %d",
				t.ID, t.Req, s.cluster.ReduceSlots)
		}
		if s.cluster.MemCapacity > 0 && t.Mem > s.cluster.MemCapacity {
			return fmt.Errorf("sim: task %s memory demand %d exceeds per-resource capacity %d",
				t.ID, t.Mem, s.cluster.MemCapacity)
		}
	}
	s.jobs = append(s.jobs, j)
	for _, t := range j.Tasks() {
		st := &taskState{task: t, job: j, key: len(s.byKey), res: -1}
		s.tasks[t] = st
		s.byKey = append(s.byKey, st)
	}
	s.pending[j] = j.NumTasks()
	s.queue.push(event{at: j.Arrival, kind: evJobArrival, jobIdx: len(s.jobs) - 1})
	return nil
}

// InjectOutage schedules a resource outage window at runtime (the service's
// fault-injection endpoint). The window must start now or later and must not
// overlap any planned or previously injected outage on the resource.
func (s *Simulator) InjectOutage(res int, downAt, upAt int64) error {
	if res < 0 || res >= s.cluster.NumResources {
		return fmt.Errorf("sim: outage on invalid resource %d", res)
	}
	if downAt < s.clock || upAt <= downAt {
		return fmt.Errorf("sim: outage window [%d,%d) on resource %d is invalid at time %d",
			downAt, upAt, res, s.clock)
	}
	if !s.started {
		s.start() // materialize planned outages so overlap checks see them
	}
	if s.down[res] || downAt < s.outageUntil[res] {
		return fmt.Errorf("sim: outage window [%d,%d) overlaps an existing outage on resource %d",
			downAt, upAt, res)
	}
	s.outageUntil[res] = upAt
	s.queue.push(event{at: downAt, kind: evResourceDown, res: res})
	s.queue.push(event{at: upAt, kind: evResourceUp, res: res})
	return nil
}

// JobDone returns the completion instant of a job, or false while it is
// still outstanding (or was abandoned).
func (s *Simulator) JobDone(j *workload.Job) (int64, bool) {
	at, ok := s.completedAt[j]
	return at, ok
}

// Abandoned reports whether the job was given up on.
func (s *Simulator) Abandoned(j *workload.Job) bool { return s.abandoned[j] }

// OutstandingJobs counts arrived jobs that are neither completed nor
// abandoned plus jobs whose arrival events are still queued.
func (s *Simulator) OutstandingJobs() int {
	n := 0
	for j, left := range s.pending {
		if left > 0 && !s.abandoned[j] {
			n++
		}
	}
	return n
}

// CurrentMetrics returns a snapshot of the metrics accumulated so far;
// unlike Finish it may be called mid-run and performs no validation.
func (s *Simulator) CurrentMetrics() Metrics { return s.metrics }

// emitSample records one point of the sim time-series at simulated time at.
// The scan over task states is O(tasks) but runs only once per sample
// boundary, never per event.
func (s *Simulator) emitSample(at int64) {
	var busyMap, busyRed int64
	for r := 0; r < s.cluster.NumResources; r++ {
		busyMap += s.ledger.mapUse[r]
		busyRed += s.ledger.redUse[r]
	}
	var waitMap, waitRed, running int
	for _, st := range s.byKey {
		switch {
		case st.completed:
		case st.started:
			running++
		case st.scheduled:
			if st.task.Type == workload.MapTask {
				waitMap++
			} else {
				waitRed++
			}
		}
	}
	outstanding := s.metrics.JobsArrived - s.metrics.JobsCompleted - s.metrics.JobsAbandoned
	downN := 0
	for _, d := range s.down {
		if d {
			downN++
		}
	}
	s.tel.Emit(at, obs.LayerSim, "sample",
		obs.I64("busy_map_slots", busyMap),
		obs.I64("busy_reduce_slots", busyRed),
		obs.Int("waiting_map_tasks", waitMap),
		obs.Int("waiting_reduce_tasks", waitRed),
		obs.Int("running_tasks", running),
		obs.Int("outstanding_jobs", outstanding),
		obs.Int("down_resources", downN),
	)
}

func (s *Simulator) stateOf(t *workload.Task) (*taskState, error) {
	st, ok := s.tasks[t]
	if !ok {
		return nil, fmt.Errorf("sim: unknown task %s", t.ID)
	}
	return st, nil
}

func (s *Simulator) handleTaskStart(ev event) error {
	// Locate by key: the event stores the task through its state pointer
	// index; we keep it simple by embedding the pointer lookup in version
	// checks below.
	st := s.byKey[ev.taskKey]
	if st.version != ev.version || st.started || !st.scheduled {
		return nil // superseded by a reschedule
	}
	t, j := st.task, st.job
	if st.start != s.clock {
		return fmt.Errorf("sim: task %s start event at %d but placement says %d", t.ID, s.clock, st.start)
	}
	if s.clock < j.EarliestStart {
		return fmt.Errorf("sim: task %s of job %d started at %d before earliest start %d",
			t.ID, j.ID, s.clock, j.EarliestStart)
	}
	if j.TaskPrecedence {
		for _, p := range t.Preds {
			if !s.tasks[p].completed {
				return fmt.Errorf("sim: task %s started before predecessor %s completed", t.ID, p.ID)
			}
		}
	} else if t.Type == workload.ReduceTask {
		for _, mt := range j.MapTasks {
			if !s.tasks[mt].completed {
				return fmt.Errorf("sim: reduce task %s started before map task %s completed", t.ID, mt.ID)
			}
		}
	}
	if s.down[st.res] {
		return fmt.Errorf("sim: task %s started on down resource %d", t.ID, st.res)
	}
	if err := s.ledger.acquire(st.res, t); err != nil {
		return err
	}
	if s.activeSince[st.res] < 0 {
		s.activeSince[st.res] = s.clock
	}
	st.started = true
	if st.attempt > 0 {
		s.metrics.TasksRetried++
	}
	if s.observer != nil {
		s.observer.TaskStarted(s.clock, t, j, st.res)
	}
	// The machine's speed factor scales the nominal execution time first
	// (exactly the identity on uniform clusters); straggler fault factors
	// then stretch the machine-adjusted duration.
	scaled := ScaledExec(t.Exec, s.cluster.SpeedOf(st.res))
	st.effExec = scaled
	var fault AttemptFault
	if s.injector != nil {
		fault = s.injector.Attempt(t.ID, st.attempt)
		if fault.Factor > 1 {
			st.effExec = int64(float64(scaled) * fault.Factor)
			if st.effExec < scaled {
				st.effExec = scaled
			}
		}
	}
	if fault.Fails {
		failAt := int64(fault.FailPoint * float64(st.effExec))
		if failAt < 1 {
			failAt = 1
		}
		if failAt > st.effExec {
			failAt = st.effExec
		}
		s.queue.push(event{at: s.clock + failAt, kind: evTaskFail, taskKey: ev.taskKey, version: st.version})
	} else {
		s.queue.push(event{at: s.clock + st.effExec, kind: evTaskFinish, taskKey: ev.taskKey, version: st.version})
	}
	if st.effExec > scaled || st.effExec > t.Exec {
		if s.slowObs != nil && st.effExec > scaled {
			// Genuine straggler: the attempt overruns even the
			// machine-adjusted expectation.
			s.slowObs.TaskSlowdown(s.clock, t, j, st.res, st.effExec, scaled)
		}
		// The attempt may overrun the window some planner assumed for it —
		// either the machine-adjusted one (straggler) or the nominal one (a
		// speed-blind plan on a slow machine). Let the manager decide whether
		// its plan is affected and replan before later starts collide with it.
		return s.rm.OnTaskSlowdown(s, t)
	}
	return nil
}

func (s *Simulator) handleTaskFinish(ev event) error {
	st := s.byKey[ev.taskKey]
	if st.version != ev.version || !st.started || st.completed {
		return nil // superseded: the attempt was killed by an outage
	}
	t, j := st.task, st.job
	s.ledger.release(st.res, t)
	if t.Type == workload.MapTask {
		s.metrics.BusyMapSlotMS += st.effExec * t.Req
	} else {
		s.metrics.BusyReduceSlotMS += st.effExec * t.Req
	}
	s.closeActiveWindow(st.res)
	st.completed = true
	if s.observer != nil {
		s.observer.TaskFinished(s.clock, t, j, st.res)
	}
	s.pending[j]--
	if s.pending[j] == 0 && !s.abandoned[j] {
		s.completeJob(j)
	}
	return s.rm.OnTaskComplete(s, t)
}

// handleTaskFail ends a running attempt in failure: the slots are released,
// the work done so far is wasted, and the task becomes schedulable again.
func (s *Simulator) handleTaskFail(ev event) error {
	st := s.byKey[ev.taskKey]
	if st.version != ev.version || !st.started || st.completed {
		return nil // superseded: the attempt was killed by an outage
	}
	t := st.task
	res := st.res
	s.ledger.release(res, t)
	s.metrics.WastedSlotMS += (s.clock - st.start) * t.Req
	s.metrics.TasksFailed++
	s.closeActiveWindow(res)
	s.resetAttempt(st)
	if s.faultObs != nil {
		s.faultObs.TaskFailed(s.clock, t, st.job, res)
	}
	return s.rm.OnTaskFailed(s, t, res)
}

// handleResourceDown starts an outage: tasks running on the resource are
// killed (counting as failed attempts), pending placements on it are
// evacuated, and the manager is notified once with both lists.
func (s *Simulator) handleResourceDown(ev event) error {
	r := ev.res
	s.down[r] = true
	s.downSince[r] = s.clock
	s.metrics.Outages++
	var killed, evacuated []*workload.Task
	for _, st := range s.byKey {
		if st.res != r || st.completed {
			continue
		}
		switch {
		case st.started:
			s.ledger.release(r, st.task)
			s.metrics.WastedSlotMS += (s.clock - st.start) * st.task.Req
			s.metrics.TasksKilled++
			s.resetAttempt(st)
			if s.faultObs != nil {
				s.faultObs.TaskKilled(s.clock, st.task, st.job, r)
			}
			killed = append(killed, st.task)
		case st.scheduled:
			st.scheduled = false
			st.res, st.start = -1, 0
			st.version++
			evacuated = append(evacuated, st.task)
		}
	}
	s.closeActiveWindow(r)
	if s.faultObs != nil {
		s.faultObs.ResourceDown(s.clock, r)
	}
	return s.rm.OnResourceDown(s, r, killed, evacuated)
}

// handleResourceUp ends an outage.
func (s *Simulator) handleResourceUp(ev event) error {
	r := ev.res
	s.down[r] = false
	s.metrics.DowntimeMS += s.clock - s.downSince[r]
	if s.faultObs != nil {
		s.faultObs.ResourceUp(s.clock, r)
	}
	return s.rm.OnResourceUp(s, r)
}

// resetAttempt returns a task to the schedulable state after a failed or
// killed attempt.
func (s *Simulator) resetAttempt(st *taskState) {
	st.started = false
	st.scheduled = false
	st.res, st.start = -1, 0
	st.effExec = 0
	st.attempt++
	st.version++ // any queued finish/fail/start events become stale
}

// closeActiveWindow ends the resource's pay-per-use active window if it
// just went idle.
func (s *Simulator) closeActiveWindow(res int) {
	if s.activeSince[res] >= 0 && s.ledger.mapUse[res] == 0 && s.ledger.redUse[res] == 0 {
		s.metrics.ResourceActiveMS += s.clock - s.activeSince[res]
		s.activeSince[res] = -1
	}
}

func (s *Simulator) completeJob(j *workload.Job) {
	s.completedAt[j] = s.clock
	s.metrics.JobsCompleted++
	rec := JobRecord{Job: j, Completion: s.clock, Done: true}
	if rec.Late() {
		s.metrics.LateJobs++
		lateBy := s.clock - j.Deadline
		s.metrics.TotalLatenessMS += lateBy
		if lateBy > s.metrics.MaxLatenessMS {
			s.metrics.MaxLatenessMS = lateBy
		}
	}
	s.metrics.totalTurnaroundMS += rec.TurnaroundMS()
	if s.clock > s.metrics.MakespanMS {
		s.metrics.MakespanMS = s.clock
	}
	s.metrics.Records = append(s.metrics.Records, rec)
	if s.tel.Enabled() {
		// Both values are pure sim time, so these histograms are
		// deterministic run to run.
		s.tel.Observe(obs.HistJobE2E, float64(s.clock-j.Arrival))
		s.tel.Observe(obs.HistJobLateness, float64(s.clock-j.Deadline))
	}
	if s.jobObs != nil {
		s.jobObs.JobCompleted(s.clock, j, s.clock-j.Deadline)
	}
}

// --- Context implementation ---

// Now returns the current simulated time.
func (s *Simulator) Now() int64 { return s.clock }

// Cluster returns the simulated cluster shape.
func (s *Simulator) Cluster() Cluster { return s.cluster }

// Schedule installs or replaces the placement of a not-yet-started task.
func (s *Simulator) Schedule(t *workload.Task, res int, start int64) error {
	st, err := s.stateOf(t)
	if err != nil {
		return err
	}
	if st.started {
		return fmt.Errorf("sim: cannot reschedule started task %s", t.ID)
	}
	if start < s.clock {
		return fmt.Errorf("sim: task %s scheduled in the past (%d < %d)", t.ID, start, s.clock)
	}
	if res < 0 || res >= s.cluster.NumResources {
		return fmt.Errorf("sim: task %s scheduled on invalid resource %d", t.ID, res)
	}
	replan := st.scheduled
	st.res, st.start = res, start
	st.scheduled = true
	st.version++
	s.queue.push(event{at: start, kind: evTaskStart, taskKey: st.key, version: st.version})
	if s.placeObs != nil {
		s.placeObs.TaskScheduled(s.clock, t, st.job, res, start, replan)
	}
	return nil
}

// Unschedule removes a pending placement.
func (s *Simulator) Unschedule(t *workload.Task) error {
	st, err := s.stateOf(t)
	if err != nil {
		return err
	}
	if st.started {
		return fmt.Errorf("sim: cannot unschedule started task %s", t.ID)
	}
	st.scheduled = false
	st.res, st.start = -1, 0 // never leave a stale placement behind
	st.version++             // existing start events become stale
	return nil
}

// Placement returns the planned or actual placement of the task.
func (s *Simulator) Placement(t *workload.Task) (int, int64, bool) {
	st, ok := s.tasks[t]
	if !ok || !st.scheduled {
		return -1, 0, false
	}
	return st.res, st.start, true
}

// Started reports whether the task has begun executing.
func (s *Simulator) Started(t *workload.Task) bool {
	st, ok := s.tasks[t]
	return ok && st.started
}

// Completed reports whether the task has finished.
func (s *Simulator) Completed(t *workload.Task) bool {
	st, ok := s.tasks[t]
	return ok && st.completed
}

// FreeMapSlots returns idle map slots on the resource.
func (s *Simulator) FreeMapSlots(res int) int64 { return s.ledger.freeMapSlots(res) }

// FreeReduceSlots returns idle reduce slots on the resource.
func (s *Simulator) FreeReduceSlots(res int) int64 { return s.ledger.freeReduceSlots(res) }

// SetTimer schedules an OnTimer callback; duplicate timers at the same
// instant coalesce and timers in the past are ignored.
func (s *Simulator) SetTimer(at int64) {
	if at < s.clock || s.timers[at] {
		return
	}
	s.timers[at] = true
	s.queue.push(event{at: at, kind: evTimer})
}

// AddOverhead accrues scheduling wall time into the O metric.
func (s *Simulator) AddOverhead(d time.Duration) {
	s.metrics.totalOverhead += d
	s.metrics.Invocations++
}

// ResourceDown reports whether the resource is currently in an outage.
func (s *Simulator) ResourceDown(res int) bool {
	return res >= 0 && res < len(s.down) && s.down[res]
}

// Attempts returns the task's failed execution attempts so far.
func (s *Simulator) Attempts(t *workload.Task) int {
	st, ok := s.tasks[t]
	if !ok {
		return 0
	}
	return st.attempt
}

// RunningExec returns the effective duration of the task's in-flight
// attempt, or its nominal execution time when not running.
func (s *Simulator) RunningExec(t *workload.Task) int64 {
	st, ok := s.tasks[t]
	if !ok || !st.started || st.completed {
		return t.Exec
	}
	return st.effExec
}

// AbandonJob implements Context: the job's pending placements are removed
// and the run may end without completing it.
func (s *Simulator) AbandonJob(j *workload.Job) error {
	n, known := s.pending[j]
	if !known {
		return fmt.Errorf("sim: cannot abandon unknown job %d", j.ID)
	}
	if n == 0 {
		return fmt.Errorf("sim: cannot abandon completed job %d", j.ID)
	}
	if s.abandoned[j] {
		return fmt.Errorf("sim: job %d abandoned twice", j.ID)
	}
	s.abandoned[j] = true
	s.metrics.JobsAbandoned++
	if s.jobObs != nil {
		s.jobObs.JobAbandoned(s.clock, j)
	}
	for _, t := range j.Tasks() {
		st := s.tasks[t]
		if st.scheduled && !st.started {
			st.scheduled = false
			st.res, st.start = -1, 0
			st.version++
		}
	}
	return nil
}
