package sim

import (
	"fmt"
	"sort"
	"time"

	"mrcprm/internal/workload"
)

// ResourceManager is the pluggable matchmaking-and-scheduling policy. Both
// MRCP-RM (internal/core) and the MinEDF-WC baseline (internal/minedf)
// implement it. Callbacks receive the simulation Context through which the
// manager inspects state and installs placements.
type ResourceManager interface {
	// Name identifies the manager in reports.
	Name() string
	// OnJobArrival fires when a job enters the system at ctx.Now().
	OnJobArrival(ctx Context, j *workload.Job) error
	// OnTaskComplete fires when a running task finishes.
	OnTaskComplete(ctx Context, t *workload.Task) error
	// OnTimer fires when a timer set through ctx.SetTimer expires.
	OnTimer(ctx Context) error
}

// Context is the view of the simulation a resource manager operates
// through.
type Context interface {
	// Now returns the current simulated time (ms).
	Now() int64
	// Cluster returns the simulated system shape.
	Cluster() Cluster
	// Schedule installs (or replaces) the placement of a not-yet-started
	// task: it will start on resource res at time start >= Now().
	Schedule(t *workload.Task, res int, start int64) error
	// Unschedule removes a pending placement. It is an error to unschedule
	// a started task.
	Unschedule(t *workload.Task) error
	// Placement returns a task's planned or actual placement.
	Placement(t *workload.Task) (res int, start int64, ok bool)
	// Started reports whether the task has begun executing.
	Started(t *workload.Task) bool
	// Completed reports whether the task has finished.
	Completed(t *workload.Task) bool
	// FreeMapSlots and FreeReduceSlots report instantaneous idle capacity.
	FreeMapSlots(res int) int64
	FreeReduceSlots(res int) int64
	// SetTimer schedules an OnTimer callback at the given time (> Now).
	SetTimer(at int64)
	// AddOverhead accrues matchmaking-and-scheduling wall time into the O
	// metric and counts one invocation.
	AddOverhead(d time.Duration)
}

type taskState struct {
	task      *workload.Task
	job       *workload.Job
	key       int // index into Simulator.byKey, used by events
	res       int
	start     int64
	version   int64
	scheduled bool
	started   bool
	completed bool
}

// Simulator drives one run: a fixed job list (with arrival times) against a
// cluster under a resource manager.
type Simulator struct {
	cluster Cluster
	rm      ResourceManager
	jobs    []*workload.Job

	queue   eventQueue
	clock   int64
	ledger  *slotLedger
	tasks   map[*workload.Task]*taskState
	byKey   []*taskState
	pending map[*workload.Job]int // uncompleted task count
	metrics Metrics
	timers  map[int64]bool
	// activeSince[r] is the instant resource r last became non-idle, or -1.
	activeSince []int64
	observer    Observer
}

// Observer receives task lifecycle notifications; see internal/trace for a
// ready-made recorder. Nil observers are fine.
type Observer interface {
	// TaskStarted fires when a task begins executing.
	TaskStarted(now int64, t *workload.Task, j *workload.Job, res int)
	// TaskFinished fires when a task completes.
	TaskFinished(now int64, t *workload.Task, j *workload.Job, res int)
}

// SetObserver attaches a lifecycle observer; call before Run.
func (s *Simulator) SetObserver(o Observer) { s.observer = o }

// New prepares a simulation of the given jobs. The job list is sorted by
// arrival time internally; it is not modified.
func New(cluster Cluster, rm ResourceManager, jobs []*workload.Job) (*Simulator, error) {
	if err := cluster.Validate(); err != nil {
		return nil, err
	}
	sorted := append([]*workload.Job(nil), jobs...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Arrival < sorted[j].Arrival })
	s := &Simulator{
		cluster:     cluster,
		rm:          rm,
		jobs:        sorted,
		ledger:      newSlotLedger(cluster),
		tasks:       make(map[*workload.Task]*taskState),
		pending:     make(map[*workload.Job]int),
		timers:      make(map[int64]bool),
		activeSince: make([]int64, cluster.NumResources),
	}
	for r := range s.activeSince {
		s.activeSince[r] = -1
	}
	for idx, j := range sorted {
		if err := j.Validate(); err != nil {
			return nil, err
		}
		for _, t := range j.Tasks() {
			if t.Type == workload.MapTask && t.Req > cluster.MapSlots {
				return nil, fmt.Errorf("sim: task %s demand %d exceeds per-resource map capacity %d",
					t.ID, t.Req, cluster.MapSlots)
			}
			if t.Type == workload.ReduceTask && t.Req > cluster.ReduceSlots {
				return nil, fmt.Errorf("sim: task %s demand %d exceeds per-resource reduce capacity %d",
					t.ID, t.Req, cluster.ReduceSlots)
			}
			st := &taskState{task: t, job: j, key: len(s.byKey), res: -1}
			s.tasks[t] = st
			s.byKey = append(s.byKey, st)
		}
		s.pending[j] = j.NumTasks()
		s.queue.push(event{at: j.Arrival, kind: evJobArrival, jobIdx: idx})
	}
	return s, nil
}

// Run executes the simulation to completion and returns the metrics.
func (s *Simulator) Run() (*Metrics, error) {
	for {
		ev, ok := s.queue.pop()
		if !ok {
			break
		}
		if ev.at < s.clock {
			return nil, fmt.Errorf("sim: time ran backwards (%d -> %d)", s.clock, ev.at)
		}
		s.clock = ev.at
		var err error
		switch ev.kind {
		case evJobArrival:
			j := s.jobs[ev.jobIdx]
			s.metrics.JobsArrived++
			err = s.rm.OnJobArrival(s, j)
		case evTimer:
			if s.timers[ev.at] {
				delete(s.timers, ev.at)
				err = s.rm.OnTimer(s)
			}
		case evTaskStart:
			err = s.handleTaskStart(ev)
		case evTaskFinish:
			err = s.handleTaskFinish(ev)
		}
		if err != nil {
			return nil, err
		}
	}
	for j, n := range s.pending {
		if n > 0 {
			return nil, fmt.Errorf("sim: run ended with job %d incomplete (%d tasks left)", j.ID, n)
		}
	}
	return &s.metrics, nil
}

func (s *Simulator) stateOf(t *workload.Task) (*taskState, error) {
	st, ok := s.tasks[t]
	if !ok {
		return nil, fmt.Errorf("sim: unknown task %s", t.ID)
	}
	return st, nil
}

func (s *Simulator) handleTaskStart(ev event) error {
	// Locate by key: the event stores the task through its state pointer
	// index; we keep it simple by embedding the pointer lookup in version
	// checks below.
	st := s.byKey[ev.taskKey]
	if st.version != ev.version || st.started || !st.scheduled {
		return nil // superseded by a reschedule
	}
	t, j := st.task, st.job
	if st.start != s.clock {
		return fmt.Errorf("sim: task %s start event at %d but placement says %d", t.ID, s.clock, st.start)
	}
	if s.clock < j.EarliestStart {
		return fmt.Errorf("sim: task %s of job %d started at %d before earliest start %d",
			t.ID, j.ID, s.clock, j.EarliestStart)
	}
	if j.TaskPrecedence {
		for _, p := range t.Preds {
			if !s.tasks[p].completed {
				return fmt.Errorf("sim: task %s started before predecessor %s completed", t.ID, p.ID)
			}
		}
	} else if t.Type == workload.ReduceTask {
		for _, mt := range j.MapTasks {
			if !s.tasks[mt].completed {
				return fmt.Errorf("sim: reduce task %s started before map task %s completed", t.ID, mt.ID)
			}
		}
	}
	if err := s.ledger.acquire(st.res, t); err != nil {
		return err
	}
	if s.activeSince[st.res] < 0 {
		s.activeSince[st.res] = s.clock
	}
	st.started = true
	if s.observer != nil {
		s.observer.TaskStarted(s.clock, t, j, st.res)
	}
	s.queue.push(event{at: s.clock + t.Exec, kind: evTaskFinish, taskKey: ev.taskKey})
	return nil
}

func (s *Simulator) handleTaskFinish(ev event) error {
	st := s.byKey[ev.taskKey]
	t, j := st.task, st.job
	s.ledger.release(st.res, t)
	if t.Type == workload.MapTask {
		s.metrics.BusyMapSlotMS += t.Exec * t.Req
	} else {
		s.metrics.BusyReduceSlotMS += t.Exec * t.Req
	}
	if s.ledger.mapUse[st.res] == 0 && s.ledger.redUse[st.res] == 0 {
		s.metrics.ResourceActiveMS += s.clock - s.activeSince[st.res]
		s.activeSince[st.res] = -1
	}
	st.completed = true
	if s.observer != nil {
		s.observer.TaskFinished(s.clock, t, j, st.res)
	}
	s.pending[j]--
	if s.pending[j] == 0 {
		s.completeJob(j)
	}
	return s.rm.OnTaskComplete(s, t)
}

func (s *Simulator) completeJob(j *workload.Job) {
	s.metrics.JobsCompleted++
	rec := JobRecord{Job: j, Completion: s.clock, Done: true}
	if rec.Late() {
		s.metrics.LateJobs++
		lateBy := s.clock - j.Deadline
		s.metrics.TotalLatenessMS += lateBy
		if lateBy > s.metrics.MaxLatenessMS {
			s.metrics.MaxLatenessMS = lateBy
		}
	}
	s.metrics.totalTurnaroundMS += rec.TurnaroundMS()
	if s.clock > s.metrics.MakespanMS {
		s.metrics.MakespanMS = s.clock
	}
	s.metrics.Records = append(s.metrics.Records, rec)
}

// --- Context implementation ---

// Now returns the current simulated time.
func (s *Simulator) Now() int64 { return s.clock }

// Cluster returns the simulated cluster shape.
func (s *Simulator) Cluster() Cluster { return s.cluster }

// Schedule installs or replaces the placement of a not-yet-started task.
func (s *Simulator) Schedule(t *workload.Task, res int, start int64) error {
	st, err := s.stateOf(t)
	if err != nil {
		return err
	}
	if st.started {
		return fmt.Errorf("sim: cannot reschedule started task %s", t.ID)
	}
	if start < s.clock {
		return fmt.Errorf("sim: task %s scheduled in the past (%d < %d)", t.ID, start, s.clock)
	}
	if res < 0 || res >= s.cluster.NumResources {
		return fmt.Errorf("sim: task %s scheduled on invalid resource %d", t.ID, res)
	}
	st.res, st.start = res, start
	st.scheduled = true
	st.version++
	s.queue.push(event{at: start, kind: evTaskStart, taskKey: st.key, version: st.version})
	return nil
}

// Unschedule removes a pending placement.
func (s *Simulator) Unschedule(t *workload.Task) error {
	st, err := s.stateOf(t)
	if err != nil {
		return err
	}
	if st.started {
		return fmt.Errorf("sim: cannot unschedule started task %s", t.ID)
	}
	st.scheduled = false
	st.version++ // existing start events become stale
	return nil
}

// Placement returns the planned or actual placement of the task.
func (s *Simulator) Placement(t *workload.Task) (int, int64, bool) {
	st, ok := s.tasks[t]
	if !ok || !st.scheduled {
		return -1, 0, false
	}
	return st.res, st.start, true
}

// Started reports whether the task has begun executing.
func (s *Simulator) Started(t *workload.Task) bool {
	st, ok := s.tasks[t]
	return ok && st.started
}

// Completed reports whether the task has finished.
func (s *Simulator) Completed(t *workload.Task) bool {
	st, ok := s.tasks[t]
	return ok && st.completed
}

// FreeMapSlots returns idle map slots on the resource.
func (s *Simulator) FreeMapSlots(res int) int64 { return s.ledger.freeMapSlots(res) }

// FreeReduceSlots returns idle reduce slots on the resource.
func (s *Simulator) FreeReduceSlots(res int) int64 { return s.ledger.freeReduceSlots(res) }

// SetTimer schedules an OnTimer callback; duplicate timers at the same
// instant coalesce and timers in the past are ignored.
func (s *Simulator) SetTimer(at int64) {
	if at < s.clock || s.timers[at] {
		return
	}
	s.timers[at] = true
	s.queue.push(event{at: at, kind: evTimer})
}

// AddOverhead accrues scheduling wall time into the O metric.
func (s *Simulator) AddOverhead(d time.Duration) {
	s.metrics.totalOverhead += d
	s.metrics.Invocations++
}
