package sim

import "testing"

func TestEventQueueTimeOrder(t *testing.T) {
	var q eventQueue
	q.push(event{at: 30, kind: evJobArrival})
	q.push(event{at: 10, kind: evJobArrival})
	q.push(event{at: 20, kind: evJobArrival})
	var got []int64
	for {
		e, ok := q.pop()
		if !ok {
			break
		}
		got = append(got, e.at)
	}
	want := []int64{10, 20, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v", got)
		}
	}
}

func TestEventQueueKindPriorityAtSameTime(t *testing.T) {
	var q eventQueue
	// Insert in the wrong order; pops must honor the kind priority:
	// finish < timer < arrival < start.
	q.push(event{at: 5, kind: evTaskStart})
	q.push(event{at: 5, kind: evJobArrival})
	q.push(event{at: 5, kind: evTimer})
	q.push(event{at: 5, kind: evTaskFinish})
	want := []eventKind{evTaskFinish, evTimer, evJobArrival, evTaskStart}
	for i, k := range want {
		e, ok := q.pop()
		if !ok || e.kind != k {
			t.Fatalf("pop %d: kind %v, want %v", i, e.kind, k)
		}
	}
}

func TestEventQueueStableWithinKind(t *testing.T) {
	var q eventQueue
	for i := 0; i < 5; i++ {
		q.push(event{at: 7, kind: evTaskFinish, taskKey: i})
	}
	for i := 0; i < 5; i++ {
		e, _ := q.pop()
		if e.taskKey != i {
			t.Fatalf("insertion order not preserved: got key %d at pop %d", e.taskKey, i)
		}
	}
}

func TestEventQueueEmpty(t *testing.T) {
	var q eventQueue
	if !q.empty() {
		t.Fatal("fresh queue not empty")
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop on empty queue succeeded")
	}
	q.push(event{at: 1})
	if q.empty() {
		t.Fatal("queue with one event reports empty")
	}
}
