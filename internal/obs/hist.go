package obs

import (
	"fmt"
	"math"
	"sync"
)

// Streaming histograms share one fixed log-scale bucket scheme so snapshots
// from different runs (or different shards) are always mergeable. Bucket i
// covers (bounds[i-1], bounds[i]] with bounds[k] = 2^(k/2): half-power-of-two
// resolution from 1 ms up to ~2^31 ms (~25 days), plus an overflow bucket.
// A quantile estimate is therefore never off by more than one bucket width
// (a factor of sqrt(2) ≈ 1.41 of the true value).
//
// Histograms follow the package's two core rules: a nil *Histogram is inert
// (every method returns immediately), and histograms fed simulated-time
// quantities are deterministic run to run. Wall-clock-derived histograms are
// registered under names with the "wall_" prefix so determinism-aware
// consumers can strip them, exactly like wall_ event fields.

// numHistBounds finite bucket upper bounds; one more bucket holds overflow.
const numHistBounds = 63

// numHistBuckets is the total bucket count including the overflow bucket.
const numHistBuckets = numHistBounds + 1

var histBounds = makeHistBounds()

func makeHistBounds() [numHistBounds]float64 {
	var b [numHistBounds]float64
	for i := range b {
		b[i] = math.Pow(2, float64(i)/2)
	}
	return b
}

// HistBounds returns the shared bucket upper bounds (ascending, without the
// implicit +Inf overflow bucket). The slice is a copy.
func HistBounds() []float64 {
	out := make([]float64, numHistBounds)
	copy(out[:], histBounds[:])
	return out
}

// histBucket returns the bucket index for a value: the first bucket whose
// upper bound is >= v, or the overflow bucket. Negative values clamp into
// bucket 0 alongside zero.
func histBucket(v float64) int {
	if v <= histBounds[0] {
		return 0
	}
	if v > histBounds[numHistBounds-1] {
		return numHistBounds // overflow
	}
	lo, hi := 1, numHistBounds-1
	for lo < hi {
		mid := (lo + hi) / 2
		if histBounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Histogram is a mutex-guarded streaming histogram over the shared
// log-scale buckets. The zero value is ready to use; a nil *Histogram is
// inert. Observe and Snapshot are safe to call concurrently.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     float64
	min     float64
	max     float64
	buckets [numHistBuckets]int64
}

// Observe records one value. Safe on a nil receiver and under concurrency.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[histBucket(v)]++
	h.mu.Unlock()
}

// Snapshot returns a consistent copy of the histogram state. Safe on a nil
// receiver (it returns a zero snapshot) and under concurrent Observe calls.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max,
		Buckets: make([]int64, numHistBuckets)}
	copy(s.Buckets, h.buckets[:])
	return s
}

// HistSnapshot is a point-in-time copy of one histogram: per-bucket counts
// over the shared bounds plus count/sum/min/max. Snapshots from any two
// histograms merge because the bucket scheme is fixed.
type HistSnapshot struct {
	Name    string
	Count   int64
	Sum     float64
	Min     float64
	Max     float64
	Buckets []int64 // len numHistBuckets; Buckets[last] is overflow
}

// Merge folds another snapshot into this one. Snapshots with mismatched
// bucket layouts (from a future scheme change) are rejected.
func (s *HistSnapshot) Merge(o HistSnapshot) error {
	if o.Count == 0 {
		return nil
	}
	if len(o.Buckets) != numHistBuckets {
		return fmt.Errorf("obs: cannot merge histogram snapshot with %d buckets (want %d)",
			len(o.Buckets), numHistBuckets)
	}
	if s.Buckets == nil {
		s.Buckets = make([]int64, numHistBuckets)
	}
	if len(s.Buckets) != numHistBuckets {
		return fmt.Errorf("obs: cannot merge into histogram snapshot with %d buckets (want %d)",
			len(s.Buckets), numHistBuckets)
	}
	if s.Count == 0 || o.Min < s.Min {
		s.Min = o.Min
	}
	if s.Count == 0 || o.Max > s.Max {
		s.Max = o.Max
	}
	s.Count += o.Count
	s.Sum += o.Sum
	for i, c := range o.Buckets {
		s.Buckets[i] += c
	}
	return nil
}

// Delta returns the observations recorded between prev and s (both
// snapshots of the same histogram, prev taken earlier): bucket counts,
// Count, and Sum subtract element-wise. Min/Max cannot be recovered for
// the window, so the result conservatively keeps s's observed range —
// quantiles stay correct because the window's values lie inside it,
// merely losing the single-bucket clamping tightness. The phase-windowed
// benchmarks use this to isolate one measurement phase from warm-up.
func (s HistSnapshot) Delta(prev HistSnapshot) HistSnapshot {
	if prev.Count == 0 {
		return s
	}
	d := HistSnapshot{Name: s.Name, Count: s.Count - prev.Count, Sum: s.Sum - prev.Sum,
		Min: s.Min, Max: s.Max, Buckets: make([]int64, len(s.Buckets))}
	for i := range s.Buckets {
		d.Buckets[i] = s.Buckets[i]
		if i < len(prev.Buckets) {
			d.Buckets[i] -= prev.Buckets[i]
		}
	}
	return d
}

// Quantile estimates the q-quantile (0..1) by nearest rank over the bucket
// counts with linear interpolation inside the bucket. The estimate is exact
// to within one bucket width; the overflow bucket reports the observed max.
func (s *HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum int64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		if rank > cum+c {
			cum += c
			continue
		}
		if i >= numHistBounds {
			return s.Max // overflow bucket: best available point estimate
		}
		lo := 0.0
		if i > 0 {
			lo = histBounds[i-1]
		} else if s.Min < 0 {
			// Bucket 0 is the catch-all for everything <= bounds[0],
			// including negative values (lateness of early jobs); anchor
			// it at the observed minimum instead of zero.
			lo = s.Min
		}
		hi := histBounds[i]
		// Clamp the bucket to the observed range so single-bucket
		// histograms report tight estimates.
		if s.Min > lo && s.Min <= hi {
			lo = s.Min
		}
		if s.Max < hi && s.Max >= lo {
			hi = s.Max
		}
		frac := float64(rank-cum) / float64(c)
		return lo + frac*(hi-lo)
	}
	return s.Max
}

// Mean returns the arithmetic mean of the observed values (0 when empty).
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}
