package obs

import (
	"bufio"
	"io"
	"sync"
)

// JSONLWriter is a Sink that writes one JSON object per line to an
// io.Writer through an internal buffer. It records the first write error;
// later Emits become no-ops and Flush returns the error.
type JSONLWriter struct {
	mu  sync.Mutex
	w   *bufio.Writer
	buf []byte
	err error
	n   int64
}

// NewJSONLWriter wraps the writer in a buffered JSONL sink.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{w: bufio.NewWriterSize(w, 64<<10)}
}

// Emit implements Sink.
func (s *JSONLWriter) Emit(e *Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.buf = e.AppendJSON(s.buf[:0])
	s.buf = append(s.buf, '\n')
	if _, err := s.w.Write(s.buf); err != nil {
		s.err = err
		return
	}
	s.n++
}

// Flush writes buffered output through and returns the first error seen.
func (s *JSONLWriter) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	s.err = s.w.Flush()
	return s.err
}

// Count returns the number of events written so far.
func (s *JSONLWriter) Count() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// DiscardSink drops every event. Pair it with New to obtain a live
// Telemetry whose counter/gauge/histogram registries work (for live
// metrics exposition) without writing an event stream anywhere.
type DiscardSink struct{}

// Emit implements Sink.
func (DiscardSink) Emit(*Event) {}

// MemorySink is a Sink that keeps events in memory, for tests and for the
// in-process report path.
type MemorySink struct {
	mu     sync.Mutex
	events []Event
}

// Emit implements Sink; the event is copied.
func (s *MemorySink) Emit(e *Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ev := *e
	ev.Fields = append([]Field(nil), e.Fields...)
	s.events = append(s.events, ev)
}

// Events returns the recorded events in emission order.
func (s *MemorySink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// Len returns the number of recorded events.
func (s *MemorySink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}
