package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Report is the digest of one telemetry JSONL stream: solve-latency
// percentiles, fallback rate, objective convergence, and the sim
// time-series envelope. Build one with ReadReport, render it with Write.
type Report struct {
	Events     int
	BadLines   int
	KindCounts map[string]int // "layer/kind" -> count

	// Manager invocation digest.
	Reschedules   int
	Fallbacks     int
	LimitHits     int
	StatusCounts  map[string]int
	ReasonCounts  map[string]int
	InvokeWallMS  []float64 // reschedule span durations
	PredictedLate []float64

	// Solver digest.
	Solves        int
	SolveWallMS   []float64
	FirstWallMS   []float64
	SolveNodes    []float64
	Backtracks    []float64
	Propagations  []float64
	FirstObj      []float64
	FinalObj      []float64
	ImprovePasses int
	ImproveOK     int
	NodeLimitHits int
	TimeLimitHits int

	// Incremental-solving digest: CP model sizes (tasks per solve), the
	// warm-start funnel (hinted solves and how many of their hints seeded
	// the incumbent), and the final counter summary ("obs/counters"
	// event), which carries the solve-cache hit/miss totals.
	ModelTasks []float64
	WarmSolves int
	WarmSeeded int
	Counters   map[string]float64

	// Sim time-series envelope.
	Samples     int
	BusyMap     series
	BusyReduce  series
	WaitingMap  series
	WaitingRed  series
	Outstanding series

	// Streaming-histogram summaries ("obs/hist" events), keyed by
	// histogram name. Wall-clock histograms carry wall_-prefixed value
	// keys in the stream; the digest normalizes them away.
	Hists map[string]HistDigest

	// Admission-router digest ("shard/route" and "shard/migrate" events
	// plus the shard_* counters from the final counter summary).
	Routed       int
	RouteByShard map[string]int
	Migrations   int

	// Deadline-miss attribution digest ("obs/slo_attribution" events).
	Attributions  int
	AttrByClass   map[string]int
	AttrByOutcome map[string]int
	AttrLateness  []float64

	// Final run_end event, if present.
	RunEnd map[string]float64
}

// HistDigest is one histogram's summary-event quantile table.
type HistDigest struct {
	Count              float64
	Sum, Min, Max      float64
	P50, P90, P95, P99 float64
}

type series struct {
	n    int
	sum  float64
	peak float64
}

func (s *series) add(v float64) {
	s.n++
	s.sum += v
	if v > s.peak {
		s.peak = v
	}
}

func (s *series) mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// ReadReport parses a telemetry JSONL stream into a Report. Unparseable
// lines are counted, not fatal, so a truncated file still digests.
func ReadReport(r io.Reader) (*Report, error) {
	rep := &Report{
		KindCounts:    make(map[string]int),
		StatusCounts:  make(map[string]int),
		ReasonCounts:  make(map[string]int),
		Hists:         make(map[string]HistDigest),
		AttrByClass:   make(map[string]int),
		AttrByOutcome: make(map[string]int),
		Counters:      make(map[string]float64),
		RouteByShard:  make(map[string]int),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev map[string]any
		if err := json.Unmarshal(line, &ev); err != nil {
			rep.BadLines++
			continue
		}
		rep.ingest(ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

func (rep *Report) ingest(ev map[string]any) {
	rep.Events++
	layer, _ := ev["layer"].(string)
	kind, _ := ev["kind"].(string)
	rep.KindCounts[layer+"/"+kind]++
	num := func(key string) (float64, bool) {
		v, ok := ev[key].(float64)
		return v, ok
	}
	switch layer + "/" + kind {
	case "manager/reschedule":
		rep.Reschedules++
		if st, ok := ev["status"].(string); ok {
			rep.StatusCounts[st]++
		}
		if rs, ok := ev["reason"].(string); ok {
			rep.ReasonCounts[rs]++
		}
		if fb, ok := ev["fallback"].(bool); ok && fb {
			rep.Fallbacks++
		}
		if lh, ok := ev["limit_hit"].(bool); ok && lh {
			rep.LimitHits++
		}
		if v, ok := num("wall_ms"); ok {
			rep.InvokeWallMS = append(rep.InvokeWallMS, v)
		}
		if v, ok := num("predicted_late"); ok && v >= 0 {
			rep.PredictedLate = append(rep.PredictedLate, v)
		}
	case "solver/solve":
		rep.Solves++
		if v, ok := num("wall_solve"); ok {
			rep.SolveWallMS = append(rep.SolveWallMS, v)
		}
		if v, ok := num("wall_first_solution"); ok {
			rep.FirstWallMS = append(rep.FirstWallMS, v)
		}
		if v, ok := num("nodes"); ok {
			rep.SolveNodes = append(rep.SolveNodes, v)
		}
		if v, ok := num("backtracks"); ok {
			rep.Backtracks = append(rep.Backtracks, v)
		}
		if v, ok := num("propagations"); ok {
			rep.Propagations = append(rep.Propagations, v)
		}
		if v, ok := num("first_objective"); ok && v >= 0 {
			rep.FirstObj = append(rep.FirstObj, v)
		}
		if v, ok := num("objective"); ok && v >= 0 {
			rep.FinalObj = append(rep.FinalObj, v)
		}
		if v, ok := num("improve_passes"); ok {
			rep.ImprovePasses += int(v)
		}
		if v, ok := num("improve_accepts"); ok {
			rep.ImproveOK += int(v)
		}
		if b, ok := ev["node_limit_hit"].(bool); ok && b {
			rep.NodeLimitHits++
		}
		if b, ok := ev["time_limit_hit"].(bool); ok && b {
			rep.TimeLimitHits++
		}
		if v, ok := num("model_tasks"); ok {
			rep.ModelTasks = append(rep.ModelTasks, v)
		}
		if b, ok := ev["warmstart"].(bool); ok && b {
			rep.WarmSolves++
		}
		if b, ok := ev["hint_seeded"].(bool); ok && b {
			rep.WarmSeeded++
		}
	case "obs/counters":
		for k, v := range ev {
			if f, ok := v.(float64); ok {
				rep.Counters[k] = f
			}
		}
	case "sim/sample":
		rep.Samples++
		if v, ok := num("busy_map_slots"); ok {
			rep.BusyMap.add(v)
		}
		if v, ok := num("busy_reduce_slots"); ok {
			rep.BusyReduce.add(v)
		}
		if v, ok := num("waiting_map_tasks"); ok {
			rep.WaitingMap.add(v)
		}
		if v, ok := num("waiting_reduce_tasks"); ok {
			rep.WaitingRed.add(v)
		}
		if v, ok := num("outstanding_jobs"); ok {
			rep.Outstanding.add(v)
		}
	case "obs/hist":
		name, _ := ev["name"].(string)
		if name == "" {
			return
		}
		// Wall-clock histograms prefix their value keys with wall_ so the
		// determinism tests can strip them; accept either spelling.
		val := func(key string) float64 {
			if v, ok := num(key); ok {
				return v
			}
			v, _ := num("wall_" + key)
			return v
		}
		d := HistDigest{Sum: val("sum"), Min: val("min"), Max: val("max"),
			P50: val("p50"), P90: val("p90"), P95: val("p95"), P99: val("p99")}
		d.Count, _ = num("count")
		rep.Hists[name] = d
	case "shard/route":
		rep.Routed++
		if v, ok := num("shard"); ok {
			rep.RouteByShard[fmt.Sprintf("%.0f", v)]++
		}
	case "shard/migrate":
		rep.Migrations++
	case "obs/slo_attribution":
		rep.Attributions++
		if class, ok := ev["class"].(string); ok {
			rep.AttrByClass[class]++
		}
		if outcome, ok := ev["outcome"].(string); ok {
			rep.AttrByOutcome[outcome]++
		}
		if v, ok := num("lateness_ms"); ok {
			rep.AttrLateness = append(rep.AttrLateness, v)
		}
	case "sim/run_end":
		rep.RunEnd = make(map[string]float64)
		for k, v := range ev {
			if f, ok := v.(float64); ok {
				rep.RunEnd[k] = f
			}
		}
	}
}

// percentile returns the q-quantile (0..1) of the values by the
// nearest-rank method; 0 on an empty slice.
func percentile(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	rank := int(math.Ceil(q*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}

func mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

func maxOf(vals []float64) float64 {
	var m float64
	for _, v := range vals {
		if v > m {
			m = v
		}
	}
	return m
}

// Write renders the report as a human-readable table.
func (rep *Report) Write(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "telemetry report — %d events", rep.Events)
	if rep.BadLines > 0 {
		fmt.Fprintf(&b, " (%d unparseable lines skipped)", rep.BadLines)
	}
	b.WriteString("\n\n")

	b.WriteString("events by kind\n")
	keys := make([]string, 0, len(rep.KindCounts))
	for k := range rep.KindCounts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "  %-24s %8d\n", k, rep.KindCounts[k])
	}

	if rep.Reschedules > 0 {
		b.WriteString("\nmanager invocations\n")
		fmt.Fprintf(&b, "  reschedules            %8d\n", rep.Reschedules)
		fmt.Fprintf(&b, "  fallback rate          %7.1f%%  (%d rounds)\n",
			100*float64(rep.Fallbacks)/float64(rep.Reschedules), rep.Fallbacks)
		fmt.Fprintf(&b, "  solve-limit hit rate   %7.1f%%  (%d rounds)\n",
			100*float64(rep.LimitHits)/float64(rep.Reschedules), rep.LimitHits)
		for _, k := range sortedKeys(rep.StatusCounts) {
			fmt.Fprintf(&b, "  status %-16s %8d\n", k, rep.StatusCounts[k])
		}
		for _, k := range sortedKeys(rep.ReasonCounts) {
			fmt.Fprintf(&b, "  trigger %-15s %8d\n", k, rep.ReasonCounts[k])
		}
		if len(rep.InvokeWallMS) > 0 {
			fmt.Fprintf(&b, "  invocation latency ms  p50=%.2f p90=%.2f p99=%.2f max=%.2f\n",
				percentile(rep.InvokeWallMS, 0.50), percentile(rep.InvokeWallMS, 0.90),
				percentile(rep.InvokeWallMS, 0.99), maxOf(rep.InvokeWallMS))
		}
		if len(rep.PredictedLate) > 0 {
			fmt.Fprintf(&b, "  predicted late jobs    mean=%.2f peak=%.0f\n",
				mean(rep.PredictedLate), maxOf(rep.PredictedLate))
		}
	}

	if rep.Solves > 0 {
		b.WriteString("\nsolver search\n")
		fmt.Fprintf(&b, "  solves                 %8d\n", rep.Solves)
		if len(rep.SolveWallMS) > 0 {
			fmt.Fprintf(&b, "  solve latency ms       p50=%.2f p90=%.2f p99=%.2f max=%.2f\n",
				percentile(rep.SolveWallMS, 0.50), percentile(rep.SolveWallMS, 0.90),
				percentile(rep.SolveWallMS, 0.99), maxOf(rep.SolveWallMS))
		}
		if len(rep.FirstWallMS) > 0 {
			fmt.Fprintf(&b, "  time-to-first ms       p50=%.2f p90=%.2f max=%.2f\n",
				percentile(rep.FirstWallMS, 0.50), percentile(rep.FirstWallMS, 0.90),
				maxOf(rep.FirstWallMS))
		}
		fmt.Fprintf(&b, "  nodes per solve        mean=%.1f max=%.0f\n",
			mean(rep.SolveNodes), maxOf(rep.SolveNodes))
		fmt.Fprintf(&b, "  backtracks per solve   mean=%.1f max=%.0f\n",
			mean(rep.Backtracks), maxOf(rep.Backtracks))
		fmt.Fprintf(&b, "  propagations per solve mean=%.1f max=%.0f\n",
			mean(rep.Propagations), maxOf(rep.Propagations))
		fmt.Fprintf(&b, "  limit hits             node=%d time=%d\n",
			rep.NodeLimitHits, rep.TimeLimitHits)
		if rep.ImprovePasses > 0 {
			fmt.Fprintf(&b, "  improvement passes     %d accepted of %d (%.1f%%)\n",
				rep.ImproveOK, rep.ImprovePasses,
				100*float64(rep.ImproveOK)/float64(rep.ImprovePasses))
		}
		if len(rep.FirstObj) > 0 {
			fmt.Fprintf(&b, "  objective convergence  first mean=%.2f -> final mean=%.2f (Δ=%.2f)\n",
				mean(rep.FirstObj), mean(rep.FinalObj), mean(rep.FirstObj)-mean(rep.FinalObj))
		}
		if len(rep.ModelTasks) > 0 {
			fmt.Fprintf(&b, "  model size tasks       p50=%.0f p90=%.0f p99=%.0f max=%.0f\n",
				percentile(rep.ModelTasks, 0.50), percentile(rep.ModelTasks, 0.90),
				percentile(rep.ModelTasks, 0.99), maxOf(rep.ModelTasks))
		}
		if rep.WarmSolves > 0 {
			fmt.Fprintf(&b, "  warm-start hit rate    %7.1f%%  (%d seeded of %d hinted solves)\n",
				100*float64(rep.WarmSeeded)/float64(rep.WarmSolves), rep.WarmSeeded, rep.WarmSolves)
		}
		cacheHits := rep.StatusCounts["cache_hit"]
		if ch := rep.Counters["solve_cache_hits"]; int(ch) > cacheHits {
			cacheHits = int(ch)
		}
		if lookups := cacheHits + int(rep.Counters["solve_cache_misses"]); lookups > 0 {
			fmt.Fprintf(&b, "  solve cache hit rate   %7.1f%%  (%d of %d lookups)\n",
				100*float64(cacheHits)/float64(lookups), cacheHits, lookups)
		}
	}

	if rep.Samples > 0 {
		b.WriteString("\nsim time-series\n")
		fmt.Fprintf(&b, "  samples                %8d\n", rep.Samples)
		fmt.Fprintf(&b, "  busy map slots         mean=%.1f peak=%.0f\n", rep.BusyMap.mean(), rep.BusyMap.peak)
		fmt.Fprintf(&b, "  busy reduce slots      mean=%.1f peak=%.0f\n", rep.BusyReduce.mean(), rep.BusyReduce.peak)
		fmt.Fprintf(&b, "  waiting map tasks      mean=%.1f peak=%.0f\n", rep.WaitingMap.mean(), rep.WaitingMap.peak)
		fmt.Fprintf(&b, "  waiting reduce tasks   mean=%.1f peak=%.0f\n", rep.WaitingRed.mean(), rep.WaitingRed.peak)
		fmt.Fprintf(&b, "  outstanding jobs       mean=%.1f peak=%.0f\n", rep.Outstanding.mean(), rep.Outstanding.peak)
	}

	if len(rep.Hists) > 0 {
		b.WriteString("\nhistograms\n")
		for _, name := range sortedKeysH(rep.Hists) {
			h := rep.Hists[name]
			mean := 0.0
			if h.Count > 0 {
				mean = h.Sum / h.Count
			}
			fmt.Fprintf(&b, "  %-22s n=%.0f mean=%.2f p50=%.2f p90=%.2f p95=%.2f p99=%.2f max=%.2f\n",
				name, h.Count, mean, h.P50, h.P90, h.P95, h.P99, h.Max)
		}
	}

	routed := rep.Routed
	if c := int(rep.Counters[CounterShardRouted]); c > routed {
		routed = c
	}
	if routed > 0 {
		b.WriteString("\nadmission routing\n")
		fmt.Fprintf(&b, "  jobs routed            %8d\n", routed)
		for _, k := range sortedKeys(rep.RouteByShard) {
			n := rep.RouteByShard[k]
			fmt.Fprintf(&b, "  shard %-17s %8d  (%.1f%%)\n", k, n,
				100*float64(n)/float64(rep.Routed))
		}
		if rejected := int(rep.Counters[CounterShardRejected]); rejected > 0 {
			fmt.Fprintf(&b, "  rejected               %8d\n", rejected)
		}
		migrated := rep.Migrations
		if c := int(rep.Counters[CounterShardMigrated]); c > migrated {
			migrated = c
		}
		if migrated > 0 {
			fmt.Fprintf(&b, "  migrated               %8d\n", migrated)
		}
	}

	if rep.Attributions > 0 {
		b.WriteString("\ndeadline-miss attribution\n")
		fmt.Fprintf(&b, "  attributed misses      %8d\n", rep.Attributions)
		for _, k := range sortedKeys(rep.AttrByClass) {
			n := rep.AttrByClass[k]
			fmt.Fprintf(&b, "  class %-17s %8d  (%.1f%%)\n", k, n,
				100*float64(n)/float64(rep.Attributions))
		}
		for _, k := range sortedKeys(rep.AttrByOutcome) {
			fmt.Fprintf(&b, "  outcome %-15s %8d\n", k, rep.AttrByOutcome[k])
		}
		if len(rep.AttrLateness) > 0 {
			fmt.Fprintf(&b, "  lateness ms            p50=%.0f p90=%.0f max=%.0f\n",
				percentile(rep.AttrLateness, 0.50), percentile(rep.AttrLateness, 0.90),
				maxOf(rep.AttrLateness))
		}
	}

	if rep.RunEnd != nil {
		b.WriteString("\nrun end\n")
		for _, k := range sortedKeysF(rep.RunEnd) {
			if k == "t" {
				continue
			}
			fmt.Fprintf(&b, "  %-22s %8.0f\n", k, rep.RunEnd[k])
		}
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// WriteReport digests a telemetry JSONL stream from r and renders the
// report to w — the one-call form used by cmd/obsreport.
func WriteReport(r io.Reader, w io.Writer) error {
	rep, err := ReadReport(r)
	if err != nil {
		return err
	}
	return rep.Write(w)
}

func sortedKeys(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func sortedKeysH(m map[string]HistDigest) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func sortedKeysF(m map[string]float64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
