package obs

import (
	"math"
	"sync"
	"testing"
)

func TestHistBoundsShape(t *testing.T) {
	b := HistBounds()
	if len(b) != numHistBounds {
		t.Fatalf("bounds len = %d, want %d", len(b), numHistBounds)
	}
	if b[0] != 1 {
		t.Fatalf("bounds[0] = %v, want 1", b[0])
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not ascending at %d: %v <= %v", i, b[i], b[i-1])
		}
		ratio := b[i] / b[i-1]
		if math.Abs(ratio-math.Sqrt2) > 1e-9 {
			t.Fatalf("bucket ratio at %d = %v, want sqrt(2)", i, ratio)
		}
	}
	if b[len(b)-1] < 2e9 {
		t.Fatalf("top bound %v does not cover ~2^31 ms", b[len(b)-1])
	}
}

func TestHistBucketPlacement(t *testing.T) {
	b := HistBounds()
	// Every bound value must land in its own bucket (bounds are inclusive
	// upper edges), and a value just above must land in the next one.
	for i, ub := range b {
		if got := histBucket(ub); got != i {
			t.Fatalf("histBucket(%v) = %d, want %d", ub, got, i)
		}
		if i+1 < numHistBuckets {
			if got := histBucket(ub * 1.0001); got != i+1 {
				t.Fatalf("histBucket(%v) = %d, want %d", ub*1.0001, got, i+1)
			}
		}
	}
	if got := histBucket(-5); got != 0 {
		t.Fatalf("negative value bucket = %d, want 0", got)
	}
	if got := histBucket(0); got != 0 {
		t.Fatalf("zero bucket = %d, want 0", got)
	}
	if got := histBucket(math.MaxFloat64); got != numHistBounds {
		t.Fatalf("overflow bucket = %d, want %d", got, numHistBounds)
	}
}

func TestHistogramNilInert(t *testing.T) {
	var h *Histogram
	h.Observe(42) // must not panic
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || len(s.Buckets) != 0 {
		t.Fatalf("nil histogram snapshot not zero: %+v", s)
	}
	if q := s.Quantile(0.99); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
}

func TestHistogramBasicStats(t *testing.T) {
	var h Histogram
	for _, v := range []float64{1, 2, 4, 8, 16} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if s.Sum != 31 {
		t.Fatalf("sum = %v, want 31", s.Sum)
	}
	if s.Min != 1 || s.Max != 16 {
		t.Fatalf("min/max = %v/%v, want 1/16", s.Min, s.Max)
	}
	if m := s.Mean(); math.Abs(m-6.2) > 1e-12 {
		t.Fatalf("mean = %v, want 6.2", m)
	}
}

// TestQuantileWithinBucketWidth checks the advertised accuracy contract:
// an estimated quantile is never off from the exact sample quantile by
// more than one bucket (a factor of sqrt(2)).
func TestQuantileWithinBucketWidth(t *testing.T) {
	var h Histogram
	var vals []float64
	// Log-uniform spread over three decades plus a heavy cluster.
	for i := 0; i < 1000; i++ {
		v := math.Pow(10, 3*float64(i)/999)
		vals = append(vals, v)
		h.Observe(v)
	}
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		exact := vals[int(math.Ceil(q*float64(len(vals))))-1]
		got := s.Quantile(q)
		lo, hi := exact/math.Sqrt2, exact*math.Sqrt2
		if got < lo-1e-9 || got > hi+1e-9 {
			t.Fatalf("q=%v: estimate %v outside [%v, %v] around exact %v",
				q, got, lo, hi, exact)
		}
	}
}

func TestQuantileSingleValue(t *testing.T) {
	var h Histogram
	h.Observe(100)
	s := h.Snapshot()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 100 {
			t.Fatalf("q=%v of single value = %v, want 100", q, got)
		}
	}
}

func TestQuantileNegativeValues(t *testing.T) {
	// Lateness histograms observe negative values (early jobs); they all
	// land in bucket 0, whose lower edge must anchor at the observed min,
	// not at zero.
	var h Histogram
	h.Observe(-5000)
	h.Observe(-3000)
	h.Observe(-100)
	s := h.Snapshot()
	for _, q := range []float64{0.01, 0.5, 0.99} {
		got := s.Quantile(q)
		if got < -5000 || got > -100 {
			t.Fatalf("q=%v of all-negative histogram = %v, want within [-5000,-100]", q, got)
		}
	}
	if p1, p99 := s.Quantile(0.01), s.Quantile(0.99); p1 > p99 {
		t.Fatalf("quantiles not monotone: p1=%v > p99=%v", p1, p99)
	}
}

func TestQuantileOverflowBucket(t *testing.T) {
	var h Histogram
	big := 1e12
	h.Observe(big)
	h.Observe(big * 2)
	s := h.Snapshot()
	if got := s.Quantile(0.99); got != big*2 {
		t.Fatalf("overflow quantile = %v, want max %v", got, big*2)
	}
}

func TestHistSnapshotMerge(t *testing.T) {
	var a, b Histogram
	for _, v := range []float64{1, 3, 9} {
		a.Observe(v)
	}
	for _, v := range []float64{27, 81} {
		b.Observe(v)
	}
	var all Histogram
	for _, v := range []float64{1, 3, 9, 27, 81} {
		all.Observe(v)
	}
	m := a.Snapshot()
	if err := m.Merge(b.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := all.Snapshot()
	if m.Count != want.Count || m.Sum != want.Sum || m.Min != want.Min || m.Max != want.Max {
		t.Fatalf("merge stats = %+v, want %+v", m, want)
	}
	for i := range m.Buckets {
		if m.Buckets[i] != want.Buckets[i] {
			t.Fatalf("merge bucket %d = %d, want %d", i, m.Buckets[i], want.Buckets[i])
		}
	}
	// Merging an empty snapshot is a no-op; mismatched layouts are rejected.
	if err := m.Merge(HistSnapshot{}); err != nil {
		t.Fatalf("empty merge: %v", err)
	}
	if err := m.Merge(HistSnapshot{Count: 1, Buckets: make([]int64, 3)}); err == nil {
		t.Fatal("mismatched-layout merge did not error")
	}
	// Merge into a zero snapshot adopts the source wholesale.
	var zero HistSnapshot
	if err := zero.Merge(want); err != nil {
		t.Fatal(err)
	}
	if zero.Count != want.Count || zero.Min != want.Min || zero.Max != want.Max {
		t.Fatalf("merge into zero = %+v, want %+v", zero, want)
	}
}

func TestHistogramConcurrentObserveSnapshot(t *testing.T) {
	var h Histogram
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(g*perG+i) / 10)
				if i%64 == 0 {
					_ = h.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*perG)
	}
	var bucketSum int64
	for _, c := range s.Buckets {
		bucketSum += c
	}
	if bucketSum != s.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, s.Count)
	}
}

func TestTelemetryObserveRegistry(t *testing.T) {
	tel := New(&MemorySink{})
	tel.Observe("solve_ms", 5)
	tel.Observe("solve_ms", 50)
	tel.Observe("e2e_ms", 500)
	snaps := tel.HistSnapshots()
	if len(snaps) != 2 {
		t.Fatalf("got %d histograms, want 2", len(snaps))
	}
	if snaps[0].Name != "e2e_ms" || snaps[1].Name != "solve_ms" {
		t.Fatalf("names not sorted: %q, %q", snaps[0].Name, snaps[1].Name)
	}
	if snaps[1].Count != 2 || snaps[0].Count != 1 {
		t.Fatalf("counts = %d/%d, want 2/1", snaps[1].Count, snaps[0].Count)
	}
	// Cached-pointer path observes the same underlying histogram.
	h := tel.Hist("solve_ms")
	h.Observe(7)
	if got := tel.Hist("solve_ms").Snapshot().Count; got != 3 {
		t.Fatalf("count after cached observe = %d, want 3", got)
	}
}

func TestNilTelemetryObserveInert(t *testing.T) {
	var tel *Telemetry
	tel.Observe("x", 1) // must not panic
	if h := tel.Hist("x"); h != nil {
		t.Fatal("nil telemetry returned a live histogram")
	}
	if s := tel.HistSnapshots(); s != nil {
		t.Fatalf("nil telemetry snapshots = %v, want nil", s)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		tel.Observe("x", 1)
	})
	if allocs != 0 {
		t.Fatalf("disabled Observe allocates %v per call, want 0", allocs)
	}
}

func TestEmitSummaryHistEvents(t *testing.T) {
	sink := &MemorySink{}
	tel := New(sink)
	tel.Observe("e2e_ms", 10)
	tel.Observe("e2e_ms", 20)
	tel.Observe("wall_solve_ms", 3.5)
	tel.EmitSummary(1234)
	var simHist, wallHist *Event
	for i, e := range sink.Events() {
		if e.Layer == "obs" && e.Kind == "hist" {
			ev := sink.Events()[i]
			switch ev.Fields[0].s {
			case "e2e_ms":
				simHist = &ev
			case "wall_solve_ms":
				wallHist = &ev
			}
		}
	}
	if simHist == nil || wallHist == nil {
		t.Fatalf("missing hist summary events (sim=%v wall=%v)", simHist != nil, wallHist != nil)
	}
	// Sim-time histogram: plain keys. Wall histogram: value keys carry the
	// wall_ prefix so the determinism-stripping regex removes them.
	keyset := func(e *Event) map[string]bool {
		m := map[string]bool{}
		for _, f := range e.Fields {
			m[f.Key] = true
		}
		return m
	}
	sk := keyset(simHist)
	for _, k := range []string{"name", "count", "sum", "min", "max", "p50", "p90", "p95", "p99"} {
		if !sk[k] {
			t.Fatalf("sim hist event missing key %q (have %v)", k, sk)
		}
	}
	wk := keyset(wallHist)
	for _, k := range []string{"name", "count", "wall_sum", "wall_min", "wall_max", "wall_p50", "wall_p90", "wall_p95", "wall_p99"} {
		if !wk[k] {
			t.Fatalf("wall hist event missing key %q (have %v)", k, wk)
		}
	}
	if wk["sum"] || wk["p99"] {
		t.Fatalf("wall hist event leaked unprefixed value keys: %v", wk)
	}
}
