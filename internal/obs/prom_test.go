package obs

import (
	"math"
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"solve_ms":       "solve_ms",
		"mrcp_total":     "mrcp_total",
		"9lives":         "_lives",
		"a-b.c":          "a_b_c",
		"":               "_",
		"ok:colon_name2": "ok:colon_name2",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestPromRoundTrip renders a live registry, parses the exposition back,
// and checks every counter, gauge, and histogram bucket value survives.
func TestPromRoundTrip(t *testing.T) {
	tel := New(&MemorySink{})
	tel.Add("jobs_total", 42)
	tel.Add("shed_total", 3)
	tel.SetGauge("pending", 7)
	for _, v := range []float64{0.5, 1, 2, 3, 5, 8, 13, 21, 500, 9000} {
		tel.Observe("solve_ms", v)
	}
	tel.Observe("wall_e2e_ms", 123.25)

	var sb strings.Builder
	if err := tel.WritePrometheus(&sb, "mrcp_"); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.HasSuffix(text, "\n") {
		t.Fatal("exposition does not end with a newline")
	}

	scrape, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse back: %v\n%s", err, text)
	}
	if got := scrape.Values["mrcp_jobs_total"]; got != 42 {
		t.Fatalf("jobs_total = %v, want 42", got)
	}
	if got := scrape.Values["mrcp_shed_total"]; got != 3 {
		t.Fatalf("shed_total = %v, want 3", got)
	}
	if got := scrape.Values["mrcp_pending"]; got != 7 {
		t.Fatalf("pending = %v, want 7", got)
	}
	if scrape.Types["mrcp_jobs_total"] != "counter" || scrape.Types["mrcp_pending"] != "gauge" {
		t.Fatalf("types = %v", scrape.Types)
	}

	ph := scrape.Hists["mrcp_solve_ms"]
	if ph == nil {
		t.Fatalf("no mrcp_solve_ms histogram in scrape; hists = %v", scrape.Hists)
	}
	if ph.Count != 10 {
		t.Fatalf("scraped count = %v, want 10", ph.Count)
	}
	want := tel.Hist("solve_ms").Snapshot()
	if math.Abs(ph.Sum-want.Sum) > 1e-9 {
		t.Fatalf("scraped sum = %v, want %v", ph.Sum, want.Sum)
	}
	got, err := ph.Snapshot("solve_ms")
	if err != nil {
		t.Fatal(err)
	}
	if got.Count != want.Count {
		t.Fatalf("roundtrip count = %d, want %d", got.Count, want.Count)
	}
	for i := range want.Buckets {
		if got.Buckets[i] != want.Buckets[i] {
			t.Fatalf("roundtrip bucket %d = %d, want %d", i, got.Buckets[i], want.Buckets[i])
		}
	}
	// Quantiles recovered from the scrape stay within one bucket width of
	// the registry's own estimates.
	for _, q := range []float64{0.5, 0.95, 0.99} {
		a, b := got.Quantile(q), want.Quantile(q)
		if a < b/math.Sqrt2-1e-9 || a > b*math.Sqrt2+1e-9 {
			t.Fatalf("q=%v: scraped %v vs registry %v beyond one bucket", q, a, b)
		}
	}

	if _, ok := scrape.Hists["mrcp_wall_e2e_ms"]; !ok {
		t.Fatal("wall histogram missing from scrape")
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	c := map[string]int64{"b_total": 2, "a_total": 1}
	g := map[string]int64{"z": 9, "m": 4}
	var h Histogram
	h.Observe(3)
	hs := []HistSnapshot{func() HistSnapshot { s := h.Snapshot(); s.Name = "lat_ms"; return s }()}
	var s1, s2 strings.Builder
	if err := WritePrometheus(&s1, "", c, g, hs); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&s2, "", c, g, hs); err != nil {
		t.Fatal(err)
	}
	if s1.String() != s2.String() {
		t.Fatal("exposition output not deterministic")
	}
	out := s1.String()
	if strings.Index(out, "a_total") > strings.Index(out, "b_total") {
		t.Fatal("families not sorted")
	}
	if !strings.Contains(out, `lat_ms_bucket{le="+Inf"} 1`) {
		t.Fatalf("missing +Inf bucket:\n%s", out)
	}
}

func TestParsePrometheusRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"not a metric line at all!{",
		"name{le=\"1\" 3",        // unterminated label set
		"x_bucket{} nope\n# TYPE x histogram", // bad value
	} {
		if _, err := ParsePrometheus(strings.NewReader(bad)); err == nil {
			t.Errorf("ParsePrometheus(%q) accepted garbage", bad)
		}
	}
	// Non-monotone cumulative buckets are rejected.
	in := "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n"
	if _, err := ParsePrometheus(strings.NewReader(in)); err == nil {
		t.Error("non-monotone histogram accepted")
	}
}

func TestNilTelemetryWritePrometheus(t *testing.T) {
	var tel *Telemetry
	var sb strings.Builder
	if err := tel.WritePrometheus(&sb, "x_"); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Fatalf("nil telemetry wrote %q", sb.String())
	}
}
