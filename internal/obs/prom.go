package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format 0.0.4), zero-dependency. Counters and
// gauges render as single samples; histograms render as the conventional
// cumulative _bucket{le=...} series plus _sum and _count. Families are
// emitted in sorted name order so output is deterministic for a given
// registry state. The matching parser below exists for round-trip tests
// and for clients (loadgen) that recover quantile estimates from a scrape.

// promName sanitizes a registry name into a legal Prometheus metric name:
// [a-zA-Z_:][a-zA-Z0-9_:]*, with every illegal byte mapped to '_'.
func promName(s string) string {
	if s == "" {
		return "_"
	}
	legal := func(c byte, first bool) bool {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			return true
		case c >= '0' && c <= '9':
			return !first
		}
		return false
	}
	ok := true
	for i := 0; i < len(s); i++ {
		if !legal(s[i], i == 0) {
			ok = false
			break
		}
	}
	if ok {
		return s
	}
	b := []byte(s)
	for i := range b {
		if !legal(b[i], i == 0) {
			b[i] = '_'
		}
	}
	return string(b)
}

func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the given registries in Prometheus text format
// 0.0.4. ns is an optional namespace prefix (e.g. "mrcp_") applied to every
// family name. Counter names keep their conventional "_total" suffix if
// they already carry one; no suffix is invented.
func WritePrometheus(w io.Writer, ns string, counters, gauges map[string]int64, hists []HistSnapshot) error {
	bw := bufio.NewWriter(w)
	writeScalar := func(m map[string]int64, typ string) {
		names := make([]string, 0, len(m))
		for n := range m {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fam := promName(ns + n)
			fmt.Fprintf(bw, "# TYPE %s %s\n", fam, typ)
			fmt.Fprintf(bw, "%s %d\n", fam, m[n])
		}
	}
	writeScalar(counters, "counter")
	writeScalar(gauges, "gauge")
	for _, h := range hists {
		fam := promName(ns + h.Name)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", fam)
		var cum int64
		for i, c := range h.Buckets {
			cum += c
			if i < numHistBounds {
				fmt.Fprintf(bw, "%s_bucket{le=\"%s\"} %d\n", fam, promFloat(histBounds[i]), cum)
			}
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", fam, h.Count)
		fmt.Fprintf(bw, "%s_sum %s\n", fam, promFloat(h.Sum))
		fmt.Fprintf(bw, "%s_count %d\n", fam, h.Count)
	}
	return bw.Flush()
}

// WritePrometheus renders the telemetry's live counter, gauge, and
// histogram registries as Prometheus text exposition. A nil receiver
// renders nothing (and returns nil).
func (t *Telemetry) WritePrometheus(w io.Writer, ns string) error {
	if !t.Enabled() {
		return nil
	}
	counters, gauges := t.Snapshot()
	return WritePrometheus(w, ns, counters, gauges, t.HistSnapshots())
}

// PromBucket is one cumulative histogram bucket from a scrape.
type PromBucket struct {
	LE  float64 // inclusive upper bound; +Inf for the terminal bucket
	Cum float64 // cumulative observation count
}

// PromHist is a scraped histogram family.
type PromHist struct {
	Buckets []PromBucket // ascending by LE, +Inf last
	Sum     float64
	Count   float64
}

// Snapshot converts a scraped histogram back into a mergeable HistSnapshot,
// provided its finite bucket bounds are exactly this package's shared
// layout. Min is unknown from a scrape (reported as 0) and Max is
// approximated by the upper bound of the highest occupied bucket, so
// quantile estimates remain within the one-bucket-width contract.
func (ph *PromHist) Snapshot(name string) (HistSnapshot, error) {
	finite := 0
	for _, b := range ph.Buckets {
		if !math.IsInf(b.LE, 1) {
			finite++
		}
	}
	if finite != numHistBounds {
		return HistSnapshot{}, fmt.Errorf("obs: scraped histogram %s has %d finite buckets (want %d)",
			name, finite, numHistBounds)
	}
	s := HistSnapshot{Name: name, Count: int64(ph.Count), Sum: ph.Sum,
		Buckets: make([]int64, numHistBuckets)}
	var prev float64
	i := 0
	for _, b := range ph.Buckets {
		if math.IsInf(b.LE, 1) {
			continue
		}
		if b.LE != histBounds[i] {
			return HistSnapshot{}, fmt.Errorf("obs: scraped histogram %s bucket %d bound %v != %v",
				name, i, b.LE, histBounds[i])
		}
		s.Buckets[i] = int64(b.Cum - prev)
		prev = b.Cum
		i++
	}
	s.Buckets[numHistBounds] = s.Count - int64(prev)
	for i, c := range s.Buckets {
		if c < 0 {
			return HistSnapshot{}, fmt.Errorf("obs: scraped histogram %s bucket %d count %d < 0 (non-monotone cumulative series)",
				name, i, c)
		}
		if c > 0 {
			if i < numHistBounds {
				s.Max = histBounds[i]
			} else if s.Count > 0 {
				s.Max = ph.Sum / ph.Count // overflow only: best available guess
			}
		}
	}
	return s, nil
}

// PromScrape is the parsed content of one exposition payload.
type PromScrape struct {
	// Values holds every non-histogram sample (counters and gauges) by
	// full metric name.
	Values map[string]float64
	// Hists holds histogram families by base name (without _bucket/_sum/
	// _count suffixes).
	Hists map[string]*PromHist
	// Types records each family's declared TYPE.
	Types map[string]string
}

// ParsePrometheus parses text exposition format 0.0.4. It is strict enough
// to serve as a well-formedness check in CI: any line that is neither a
// comment, blank, nor a valid sample is an error, histogram series must
// belong to a family declared "# TYPE ... histogram", and bucket series
// must carry a parseable le label.
func ParsePrometheus(r io.Reader) (*PromScrape, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	out := &PromScrape{
		Values: map[string]float64{},
		Hists:  map[string]*PromHist{},
		Types:  map[string]string{},
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.Fields(line)
			if len(parts) >= 4 && parts[1] == "TYPE" {
				out.Types[parts[2]] = parts[3]
			}
			continue
		}
		name, labels, valStr, err := splitPromSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		val, err := parsePromValue(valStr)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad value %q: %v", lineNo, valStr, err)
		}
		base, series := histSeries(name, out.Types)
		if base == "" {
			out.Values[name] = val
			continue
		}
		h := out.Hists[base]
		if h == nil {
			h = &PromHist{}
			out.Hists[base] = h
		}
		switch series {
		case "bucket":
			leStr, ok := labels["le"]
			if !ok {
				return nil, fmt.Errorf("line %d: %s_bucket without le label", lineNo, base)
			}
			le, err := parsePromValue(leStr)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad le %q: %v", lineNo, leStr, err)
			}
			h.Buckets = append(h.Buckets, PromBucket{LE: le, Cum: val})
		case "sum":
			h.Sum = val
		case "count":
			h.Count = val
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for base, h := range out.Hists {
		sort.Slice(h.Buckets, func(i, j int) bool { return h.Buckets[i].LE < h.Buckets[j].LE })
		for i := 1; i < len(h.Buckets); i++ {
			if h.Buckets[i].Cum < h.Buckets[i-1].Cum {
				return nil, fmt.Errorf("histogram %s: cumulative bucket counts not monotone", base)
			}
		}
	}
	return out, nil
}

// histSeries classifies a sample name against the declared histogram
// families: it returns the family base name and which series (bucket, sum,
// count) the sample belongs to, or "" when the sample is a plain scalar.
func histSeries(name string, types map[string]string) (base, series string) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			b := strings.TrimSuffix(name, suf)
			if types[b] == "histogram" {
				return b, suf[1:]
			}
		}
	}
	return "", ""
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// splitPromSample splits `name{labels} value [timestamp]` into parts. The
// label parser handles quoted values with \" and \\ escapes, which is all
// this repository emits.
func splitPromSample(line string) (name string, labels map[string]string, value string, err error) {
	i := strings.IndexAny(line, "{ \t")
	if i < 0 {
		return "", nil, "", fmt.Errorf("malformed sample %q", line)
	}
	name = line[:i]
	if name == "" {
		return "", nil, "", fmt.Errorf("malformed sample %q", line)
	}
	rest := line[i:]
	if rest[0] == '{' {
		end := -1
		inQuote := false
		for j := 1; j < len(rest); j++ {
			switch {
			case inQuote && rest[j] == '\\':
				j++
			case rest[j] == '"':
				inQuote = !inQuote
			case !inQuote && rest[j] == '}':
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return "", nil, "", fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err = parsePromLabels(rest[1:end])
		if err != nil {
			return "", nil, "", err
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, "", fmt.Errorf("malformed sample %q", line)
	}
	return name, labels, fields[0], nil
}

func parsePromLabels(s string) (map[string]string, error) {
	labels := map[string]string{}
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("malformed labels %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("unquoted label value for %q", key)
		}
		var b strings.Builder
		j := 1
		for ; j < len(s); j++ {
			if s[j] == '\\' && j+1 < len(s) {
				j++
				switch s[j] {
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(s[j])
				}
				continue
			}
			if s[j] == '"' {
				break
			}
			b.WriteByte(s[j])
		}
		if j >= len(s) {
			return nil, fmt.Errorf("unterminated label value for %q", key)
		}
		labels[key] = b.String()
		s = strings.TrimPrefix(strings.TrimSpace(s[j+1:]), ",")
		s = strings.TrimSpace(s)
	}
	return labels, nil
}
