package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestReportGolden(t *testing.T) {
	in, err := os.Open(filepath.Join("testdata", "sample.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()

	var got bytes.Buffer
	if err := WriteReport(in, &got); err != nil {
		t.Fatalf("WriteReport: %v", err)
	}

	goldenPath := filepath.Join("testdata", "sample.golden")
	if *update {
		if err := os.WriteFile(goldenPath, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("report differs from golden file (run `go test ./internal/obs -run Golden -update` after intentional changes)\n--- got ---\n%s\n--- want ---\n%s", got.Bytes(), want)
	}
}

func TestReportContents(t *testing.T) {
	in, err := os.Open(filepath.Join("testdata", "sample.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()

	rep, err := ReadReport(in)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BadLines != 1 {
		t.Errorf("BadLines = %d, want 1", rep.BadLines)
	}
	if rep.Reschedules != 4 || rep.Fallbacks != 1 {
		t.Errorf("reschedules/fallbacks = %d/%d, want 4/1", rep.Reschedules, rep.Fallbacks)
	}
	if rep.Solves != 2 {
		t.Errorf("Solves = %d, want 2", rep.Solves)
	}
	if rep.StatusCounts["cache_hit"] != 1 {
		t.Errorf("cache_hit reschedules = %d, want 1", rep.StatusCounts["cache_hit"])
	}
	if len(rep.ModelTasks) != 2 || rep.ModelTasks[0] != 22 || rep.ModelTasks[1] != 36 {
		t.Errorf("ModelTasks = %v, want [22 36]", rep.ModelTasks)
	}
	if rep.WarmSolves != 1 || rep.WarmSeeded != 1 {
		t.Errorf("warm solves/seeded = %d/%d, want 1/1", rep.WarmSolves, rep.WarmSeeded)
	}
	if rep.Counters["solve_cache_hits"] != 1 || rep.Counters["solve_cache_misses"] != 3 {
		t.Errorf("cache counters = %v/%v, want 1/3",
			rep.Counters["solve_cache_hits"], rep.Counters["solve_cache_misses"])
	}
	if rep.Samples != 4 {
		t.Errorf("Samples = %d, want 4", rep.Samples)
	}
	if rep.Outstanding.peak != 6 {
		t.Errorf("outstanding peak = %v, want 6", rep.Outstanding.peak)
	}
	if rep.RunEnd == nil || rep.RunEnd["late_jobs"] != 1 {
		t.Errorf("run_end late_jobs = %v, want 1", rep.RunEnd)
	}
	// p50 of solve latencies {11.9, 204} by nearest rank is 11.9.
	if got := percentile(rep.SolveWallMS, 0.50); got != 11.9 {
		t.Errorf("p50 solve latency = %v, want 11.9", got)
	}
	if got := percentile(rep.SolveWallMS, 0.99); got != 204 {
		t.Errorf("p99 solve latency = %v, want 204", got)
	}
	if len(rep.Hists) != 3 {
		t.Errorf("Hists = %d entries, want 3: %v", len(rep.Hists), rep.Hists)
	}
	if h := rep.Hists["job_e2e_ms"]; h.Count != 6 || h.P50 != 9051 {
		t.Errorf("job_e2e_ms digest = %+v, want count 6 p50 9051", h)
	}
	// The wall_ histogram's value keys are wall_-prefixed in the stream;
	// the digest must normalize them.
	if h := rep.Hists["wall_solve_ms"]; h.Count != 2 || h.P90 != 204 {
		t.Errorf("wall_solve_ms digest = %+v, want count 2 p90 204", h)
	}
	if rep.Attributions != 1 || rep.AttrByClass["fault_delay"] != 1 || rep.AttrByOutcome["late"] != 1 {
		t.Errorf("attribution digest = %d %v %v, want 1 fault_delay late",
			rep.Attributions, rep.AttrByClass, rep.AttrByOutcome)
	}
}

func TestReportEmptyStream(t *testing.T) {
	var out bytes.Buffer
	if err := WriteReport(strings.NewReader(""), &out); err != nil {
		t.Fatalf("WriteReport on empty input: %v", err)
	}
	if !strings.Contains(out.String(), "0 events") {
		t.Errorf("empty-stream report missing event count: %q", out.String())
	}
}
