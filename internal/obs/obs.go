// Package obs is the zero-dependency telemetry core of this repository:
// structured events, counters, gauges, and wall-clock spans, funneled into a
// pluggable Sink (typically the JSONL writer in sink.go).
//
// Design rules:
//
//   - Every event is stamped with *simulated* time, so two seeded runs of
//     the same workload emit identical event streams. Wall-clock-derived
//     quantities (solve latency, span durations) are carried in fields whose
//     keys start with "wall_"; consumers that need byte-for-byte determinism
//     strip exactly those fields.
//   - A nil *Telemetry is a valid, fully inert instance: every method is
//     nil-receiver safe and returns immediately. Instrumented hot paths
//     guard field construction behind Enabled() so a run without a sink
//     pays only a nil check.
//   - Field order inside an event is the order the instrumentation wrote
//     them; the JSONL encoder never reorders, so output is reproducible.
package obs

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Layer names used across the repository.
const (
	LayerSolver  = "solver"
	LayerManager = "manager"
	LayerSim     = "sim"
	LayerService = "service"
	LayerShard   = "shard"
)

// Well-known counter and gauge names shared between the service engine and
// its metrics consumers (/v1/metrics readers, smoke scripts).
const (
	// CounterServiceShed counts submissions rejected by the bounded-intake
	// backpressure (Config.MaxPending).
	CounterServiceShed = "service_shed_total"
	// GaugeServicePending tracks the engine's current intake depth:
	// accepted submissions not yet completed or abandoned.
	GaugeServicePending = "service_pending_jobs"
	// CounterShardRouted / CounterShardRejected count admission-router
	// placements and every-shard-shed rejections; CounterShardMigrated
	// counts still-queued jobs the rebalancer moved between shards.
	CounterShardRouted   = "shard_routed"
	CounterShardRejected = "shard_rejected"
	CounterShardMigrated = "shard_migrated"
	// GaugeShardPendingWorkPrefix + shard index is the router's running
	// estimate of each shard's pending work (sum of queued task exec ms).
	GaugeShardPendingWorkPrefix = "shard_pending_work_ms_"
	// HistWallRoute is the wall-clock latency of one router admission
	// decision (placement + shard Submit), in ms; kept distinct from
	// HistWallAdmission so a merged exposition does not double-count.
	HistWallRoute = "wall_route_ms"
	// CounterSolveCacheHits / CounterSolveCacheMisses count solve-result
	// cache lookups in the manager's reschedule path (core.Config.SolveCache).
	CounterSolveCacheHits   = "solve_cache_hits"
	CounterSolveCacheMisses = "solve_cache_misses"
	// CounterWarmStartHinted counts solves entered with a warm-start hint;
	// CounterWarmStartSeeded counts those whose hint repair produced the
	// first incumbent (the warm-start hit rate's numerator).
	CounterWarmStartHinted = "warmstart_hinted"
	CounterWarmStartSeeded = "warmstart_seeded"
)

// Well-known histogram names. Names without the "wall_" prefix hold pure
// simulated-time quantities and are deterministic run to run; "wall_" names
// hold wall-clock latencies that vary.
const (
	// HistJobE2E is per-job end-to-end latency: completion minus arrival,
	// in simulated ms.
	HistJobE2E = "job_e2e_ms"
	// HistJobLateness is per-job completion minus deadline in simulated
	// ms; negative values (early finishes) land in the lowest bucket but
	// keep the true Min/Sum.
	HistJobLateness = "job_lateness_ms"
	// HistWallAdmission is the wall-clock latency of one service
	// admission decision (Submit), in ms.
	HistWallAdmission = "wall_admission_ms"
	// HistWallSolve is the wall-clock latency of one CP solve, in ms.
	HistWallSolve = "wall_solve_ms"
	// HistWallReschedule is the wall-clock duration of one full manager
	// reschedule (model build + solve + install), in ms.
	HistWallReschedule = "wall_reschedule_ms"
	// HistSolveModelTasks is the size of each reschedule's CP model in
	// tasks (frozen + schedulable) — a pure simulated-state quantity, and
	// the number the rolling horizon window is meant to bound.
	HistSolveModelTasks = "solve_model_tasks"
)

type fieldKind uint8

const (
	kindInt fieldKind = iota
	kindFloat
	kindStr
	kindBool
)

// Field is one typed key-value pair of an event. Keys starting with "wall_"
// mark wall-clock-derived values that vary run to run; everything else must
// be a pure function of the simulated execution.
type Field struct {
	Key  string
	kind fieldKind
	i    int64
	f    float64
	s    string
	b    bool
}

// I64 makes an integer field.
func I64(key string, v int64) Field { return Field{Key: key, kind: kindInt, i: v} }

// Int makes an integer field from an int.
func Int(key string, v int) Field { return I64(key, int64(v)) }

// F64 makes a float field.
func F64(key string, v float64) Field { return Field{Key: key, kind: kindFloat, f: v} }

// Str makes a string field.
func Str(key, v string) Field { return Field{Key: key, kind: kindStr, s: v} }

// Bool makes a boolean field.
func Bool(key string, v bool) Field { return Field{Key: key, kind: kindBool, b: v} }

// Wall makes a wall-clock duration field in milliseconds; the "wall_" key
// prefix is added so determinism-aware consumers can strip it.
func Wall(key string, d time.Duration) Field {
	return F64("wall_"+key, float64(d.Nanoseconds())/1e6)
}

// Event is one telemetry record: a simulated timestamp, the emitting layer,
// an event kind, and ordered fields.
type Event struct {
	SimMS  int64
	Layer  string
	Kind   string
	Fields []Field
}

// AppendJSON renders the event as a single-line JSON object with
// deterministic key order: t, layer, kind, then the fields in order.
func (e *Event) AppendJSON(buf []byte) []byte {
	buf = append(buf, `{"t":`...)
	buf = strconv.AppendInt(buf, e.SimMS, 10)
	buf = append(buf, `,"layer":`...)
	buf = appendJSONString(buf, e.Layer)
	buf = append(buf, `,"kind":`...)
	buf = appendJSONString(buf, e.Kind)
	for i := range e.Fields {
		f := &e.Fields[i]
		buf = append(buf, ',')
		buf = appendJSONString(buf, f.Key)
		buf = append(buf, ':')
		switch f.kind {
		case kindInt:
			buf = strconv.AppendInt(buf, f.i, 10)
		case kindFloat:
			buf = appendJSONFloat(buf, f.f)
		case kindStr:
			buf = appendJSONString(buf, f.s)
		case kindBool:
			buf = strconv.AppendBool(buf, f.b)
		}
	}
	return append(buf, '}')
}

func appendJSONFloat(buf []byte, v float64) []byte {
	// JSON has no NaN/Inf; clamp to null to keep every line parseable.
	if v != v || v > 1.7e308 || v < -1.7e308 {
		return append(buf, "null"...)
	}
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			buf = append(buf, '\\', c)
		case c < 0x20:
			buf = append(buf, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		default:
			buf = append(buf, c)
		}
	}
	return append(buf, '"')
}

const hexDigits = "0123456789abcdef"

// Sink receives emitted events. Implementations must tolerate concurrent
// Emit calls.
type Sink interface {
	Emit(e *Event)
}

// Flusher is implemented by sinks with buffered output.
type Flusher interface {
	Flush() error
}

// Telemetry is the instrumentation handle threaded through the solver,
// manager, and simulator layers. A nil *Telemetry is inert; obtain a live
// one with New.
type Telemetry struct {
	sink Sink

	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]int64
	hists    map[string]*Histogram
}

// New returns a telemetry core writing to the sink, or nil (the inert
// instance) when sink is nil.
func New(sink Sink) *Telemetry {
	if sink == nil {
		return nil
	}
	return &Telemetry{
		sink:     sink,
		counters: make(map[string]int64),
		gauges:   make(map[string]int64),
		hists:    make(map[string]*Histogram),
	}
}

// Enabled reports whether events will actually be recorded. Hot paths guard
// field construction behind it.
func (t *Telemetry) Enabled() bool { return t != nil && t.sink != nil }

// Emit records one event. Safe on a nil receiver.
func (t *Telemetry) Emit(simMS int64, layer, kind string, fields ...Field) {
	if !t.Enabled() {
		return
	}
	t.sink.Emit(&Event{SimMS: simMS, Layer: layer, Kind: kind, Fields: fields})
}

// Add accumulates a named counter. Safe on a nil receiver.
func (t *Telemetry) Add(name string, delta int64) {
	if !t.Enabled() {
		return
	}
	t.mu.Lock()
	t.counters[name] += delta
	t.mu.Unlock()
}

// SetGauge records the latest value of a named gauge. Safe on a nil
// receiver.
func (t *Telemetry) SetGauge(name string, v int64) {
	if !t.Enabled() {
		return
	}
	t.mu.Lock()
	t.gauges[name] = v
	t.mu.Unlock()
}

// Snapshot returns copies of the counter and gauge registries, for metrics
// exposition endpoints. Both maps are nil when telemetry is disabled. Safe
// on a nil receiver and under concurrent Add/SetGauge calls.
func (t *Telemetry) Snapshot() (counters, gauges map[string]int64) {
	if !t.Enabled() {
		return nil, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	counters = make(map[string]int64, len(t.counters))
	for k, v := range t.counters {
		counters[k] = v
	}
	gauges = make(map[string]int64, len(t.gauges))
	for k, v := range t.gauges {
		gauges[k] = v
	}
	return counters, gauges
}

// Counter returns the current value of a counter (0 when disabled).
func (t *Telemetry) Counter(name string) int64 {
	if !t.Enabled() {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counters[name]
}

// Observe records one value into the named streaming histogram, creating it
// on first use. Histogram names follow the field-key convention: names
// starting with "wall_" hold wall-clock-derived values that vary run to
// run; all other histograms must be pure functions of the simulated
// execution. Safe on a nil receiver (the guard path allocates nothing).
func (t *Telemetry) Observe(name string, v float64) {
	if !t.Enabled() {
		return
	}
	t.Hist(name).Observe(v)
}

// Hist returns the named histogram, creating it on first use, or nil (the
// inert histogram) when telemetry is disabled. Hot paths may cache the
// returned pointer; Observe on it stays safe either way.
func (t *Telemetry) Hist(name string) *Histogram {
	if !t.Enabled() {
		return nil
	}
	t.mu.Lock()
	h := t.hists[name]
	if h == nil {
		h = &Histogram{}
		t.hists[name] = h
	}
	t.mu.Unlock()
	return h
}

// HistSnapshots returns snapshots of every registered histogram, sorted by
// name (set on each snapshot). Nil when telemetry is disabled.
func (t *Telemetry) HistSnapshots() []HistSnapshot {
	if !t.Enabled() {
		return nil
	}
	t.mu.Lock()
	names := make([]string, 0, len(t.hists))
	hs := make([]*Histogram, 0, len(t.hists))
	for n := range t.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		hs = append(hs, t.hists[n])
	}
	t.mu.Unlock()
	out := make([]HistSnapshot, len(hs))
	for i, h := range hs {
		out[i] = h.Snapshot()
		out[i].Name = names[i]
	}
	return out
}

// EmitSummary emits one "summary" event per registry (counters, gauges)
// with the names in sorted order, plus one "hist" event per histogram
// carrying its count and quantile estimates. Typically called once at the
// end of a run with the final simulated time. For histograms named with
// the "wall_" prefix, every value-derived key is itself "wall_"-prefixed
// so determinism-aware consumers strip them like any wall field.
func (t *Telemetry) EmitSummary(simMS int64) {
	if !t.Enabled() {
		return
	}
	t.mu.Lock()
	cf := sortedFields(t.counters)
	gf := sortedFields(t.gauges)
	t.mu.Unlock()
	if len(cf) > 0 {
		t.Emit(simMS, "obs", "counters", cf...)
	}
	if len(gf) > 0 {
		t.Emit(simMS, "obs", "gauges", gf...)
	}
	for _, s := range t.HistSnapshots() {
		if s.Count == 0 {
			continue
		}
		pfx := ""
		if strings.HasPrefix(s.Name, "wall_") {
			pfx = "wall_"
		}
		t.Emit(simMS, "obs", "hist",
			Str("name", s.Name),
			I64("count", s.Count),
			F64(pfx+"sum", s.Sum),
			F64(pfx+"min", s.Min),
			F64(pfx+"max", s.Max),
			F64(pfx+"p50", s.Quantile(0.50)),
			F64(pfx+"p90", s.Quantile(0.90)),
			F64(pfx+"p95", s.Quantile(0.95)),
			F64(pfx+"p99", s.Quantile(0.99)),
		)
	}
}

func sortedFields(m map[string]int64) []Field {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	fs := make([]Field, len(names))
	for i, n := range names {
		fs[i] = I64(n, m[n])
	}
	return fs
}

// Flush forces buffered sink output to its writer. Safe on a nil receiver.
func (t *Telemetry) Flush() error {
	if !t.Enabled() {
		return nil
	}
	if f, ok := t.sink.(Flusher); ok {
		return f.Flush()
	}
	return nil
}

// Span measures the wall-clock duration of one operation at a fixed
// simulated instant. A nil *Span (from a disabled Telemetry) is inert.
type Span struct {
	t         *Telemetry
	simMS     int64
	layer     string
	kind      string
	wallStart time.Time
	fields    []Field
}

// StartSpan opens a span; End emits the event with a wall_ms field
// appended. Returns nil when telemetry is disabled.
func (t *Telemetry) StartSpan(simMS int64, layer, kind string, fields ...Field) *Span {
	if !t.Enabled() {
		return nil
	}
	return &Span{t: t, simMS: simMS, layer: layer, kind: kind,
		wallStart: time.Now(), fields: fields}
}

// Annotate appends fields to the span before it ends. Safe on nil.
func (sp *Span) Annotate(fields ...Field) {
	if sp == nil {
		return
	}
	sp.fields = append(sp.fields, fields...)
}

// End emits the span's event, appending its wall-clock duration. Safe on
// nil.
func (sp *Span) End(fields ...Field) {
	if sp == nil {
		return
	}
	fs := append(sp.fields, fields...)
	fs = append(fs, Wall("ms", time.Since(sp.wallStart)))
	sp.t.Emit(sp.simMS, sp.layer, sp.kind, fs...)
}
