package cli

import (
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path via a temporary file in the same
// directory followed by a rename, so readers never observe a truncated or
// half-written file. Benchmark JSON artifacts are consumed by CI scripts
// while runs may still be in flight, which makes the plain
// os.WriteFile-in-place pattern a torn-read hazard.
//
// On any error the temporary file is removed and the original path is left
// untouched.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Chmod(tmpName, perm); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}
