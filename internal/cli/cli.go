// Package cli factors the flag plumbing shared by every command in this
// repository: the deterministic -seed, the CP portfolio -workers, the
// -telemetry stream, the profiling trio (-cpuprofile, -memprofile, -pprof),
// and the -version build-info stamp.
//
// Usage pattern:
//
//	c := cli.New(cli.WithSeed(1), cli.WithWorkers(), cli.WithTelemetry(), cli.WithProfiling())
//	flag.String(...) // command-specific flags
//	c.Parse()        // flag.Parse + -version handling + profile/pprof startup
//	defer c.Close()  // stop profiles, flush telemetry, print the telemetry summary
//
// Every command gets -version for free; the other flags appear only when
// the corresponding option is passed.
package cli

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"

	"mrcprm/internal/obs"
)

// Common holds the values of the shared flags after Parse.
type Common struct {
	// Seed is the master random seed (WithSeed).
	Seed uint64
	// Workers is the CP solver portfolio width (WithWorkers).
	Workers int
	// TelemetryPath and TelemetrySampleMS configure the JSONL telemetry
	// stream (WithTelemetry); open it with Telemetry().
	TelemetryPath     string
	TelemetrySampleMS int64
	// CPUProfile, MemProfile, PprofAddr are the profiling flags
	// (WithProfiling).
	CPUProfile string
	MemProfile string
	PprofAddr  string

	version bool
	cpuFile *os.File
	telFile *os.File
	telSink *obs.JSONLWriter
	tel     *obs.Telemetry
}

// Option registers one group of shared flags.
type Option func(*Common, *flag.FlagSet)

// WithSeed registers -seed with the given default.
func WithSeed(def uint64) Option {
	return func(c *Common, fs *flag.FlagSet) {
		fs.Uint64Var(&c.Seed, "seed", def, "random seed")
	}
}

// WithWorkers registers -workers (CP portfolio width).
func WithWorkers() Option {
	return func(c *Common, fs *flag.FlagSet) {
		fs.IntVar(&c.Workers, "workers", 0,
			"CP solver portfolio width (0 = one per CPU, max 8; 1 = single-threaded)")
	}
}

// WithTelemetry registers -telemetry and -telemetrysample.
func WithTelemetry() Option {
	return func(c *Common, fs *flag.FlagSet) {
		fs.StringVar(&c.TelemetryPath, "telemetry", "",
			"stream telemetry events to this JSONL file (digest with obsreport)")
		fs.Int64Var(&c.TelemetrySampleMS, "telemetrysample", 0,
			"sim time-series sample period in ms (0 = 5000)")
	}
}

// WithProfiling registers -cpuprofile, -memprofile, and -pprof.
func WithProfiling() Option {
	return func(c *Common, fs *flag.FlagSet) {
		fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
		fs.StringVar(&c.MemProfile, "memprofile", "", "write a heap profile to this file at exit")
		fs.StringVar(&c.PprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	}
}

// New registers the selected shared flags (plus -version, always) on the
// default flag set.
func New(opts ...Option) *Common {
	c := &Common{}
	fs := flag.CommandLine
	fs.BoolVar(&c.version, "version", false, "print version and build information, then exit")
	for _, o := range opts {
		o(c, fs)
	}
	return c
}

// Parse runs flag.Parse, handles -version, and starts the CPU profile and
// pprof server when requested. Fatal problems (unwritable profile path)
// exit the process.
func (c *Common) Parse() {
	flag.Parse()
	if c.version {
		fmt.Println(Version())
		os.Exit(0)
	}
	if c.PprofAddr != "" {
		addr := c.PprofAddr
		go func() {
			if err := http.ListenAndServe(addr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pprof server:", err)
			}
		}()
		fmt.Printf("pprof      : http://%s/debug/pprof/\n", addr)
	}
	if c.CPUProfile != "" {
		f, err := os.Create(c.CPUProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		c.cpuFile = f
	}
}

// Telemetry lazily opens the -telemetry sink and returns the handle; it
// returns nil (the inert instance) when the flag was not set. Close flushes
// and reports the stream.
func (c *Common) Telemetry() *obs.Telemetry {
	if c.TelemetryPath == "" || c.tel != nil {
		return c.tel
	}
	f, err := os.Create(c.TelemetryPath)
	if err != nil {
		fatal(err)
	}
	c.telFile = f
	c.telSink = obs.NewJSONLWriter(f)
	c.tel = obs.New(c.telSink)
	return c.tel
}

// Close stops the CPU profile, writes the heap profile, and flushes the
// telemetry stream. Call it via defer after Parse.
func (c *Common) Close() {
	if c.cpuFile != nil {
		pprof.StopCPUProfile()
		c.cpuFile.Close()
		c.cpuFile = nil
	}
	if c.MemProfile != "" {
		f, err := os.Create(c.MemProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
		} else {
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			f.Close()
		}
		c.MemProfile = ""
	}
	if c.tel != nil {
		c.tel.Flush()
		if err := c.telFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		} else {
			fmt.Printf("telemetry  : %d events -> %s (digest with obsreport)\n",
				c.telSink.Count(), c.TelemetryPath)
		}
		c.tel = nil
	}
}

// Version renders the build-info stamp: module version plus the VCS
// revision and time when the binary was built from a checkout.
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "mrcprm (no build info)"
	}
	ver := bi.Main.Version
	if ver == "" || ver == "(devel)" {
		ver = "devel"
	}
	var rev, dirty, when string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		case "vcs.time":
			when = s.Value
		}
	}
	out := fmt.Sprintf("mrcprm %s", ver)
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		out += fmt.Sprintf(" (%s%s", rev, dirty)
		if when != "" {
			out += " " + when
		}
		out += ")"
	}
	return out + " " + bi.GoVersion
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
