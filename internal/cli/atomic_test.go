package cli

import (
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")

	if err := WriteFileAtomic(path, []byte("{\"a\":1}\n"), 0o644); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if string(got) != "{\"a\":1}\n" {
		t.Fatalf("content = %q", got)
	}

	// Overwrite replaces the content wholesale.
	if err := WriteFileAtomic(path, []byte("second"), 0o644); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "second" {
		t.Fatalf("after overwrite content = %q", got)
	}

	// No temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "bench.json" {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("leftover files: %v", names)
	}

	// Failure (missing directory) must not create the target.
	bad := filepath.Join(dir, "nosuch", "x.json")
	if err := WriteFileAtomic(bad, []byte("x"), 0o644); err == nil {
		t.Fatal("expected error writing into missing directory")
	}
	if _, err := os.Stat(bad); !os.IsNotExist(err) {
		t.Fatalf("target should not exist, stat err = %v", err)
	}
}
