package cli

import (
	"flag"
	"strings"
	"testing"
)

func TestOptionsRegisterFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := &Common{}
	for _, o := range []Option{WithSeed(7), WithWorkers(), WithTelemetry(), WithProfiling()} {
		o(c, fs)
	}
	if err := fs.Parse([]string{"-seed", "42", "-workers", "3", "-telemetry", "t.jsonl"}); err != nil {
		t.Fatal(err)
	}
	if c.Seed != 42 || c.Workers != 3 || c.TelemetryPath != "t.jsonl" {
		t.Fatalf("parsed %+v", c)
	}
	for _, name := range []string{"seed", "workers", "telemetry", "telemetrysample",
		"cpuprofile", "memprofile", "pprof"} {
		if fs.Lookup(name) == nil {
			t.Fatalf("flag -%s not registered", name)
		}
	}
}

func TestSeedDefault(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := &Common{}
	WithSeed(7)(c, fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if c.Seed != 7 {
		t.Fatalf("seed default %d, want 7", c.Seed)
	}
}

func TestVersionString(t *testing.T) {
	v := Version()
	if !strings.HasPrefix(v, "mrcprm ") {
		t.Fatalf("version %q lacks the module prefix", v)
	}
	if !strings.Contains(v, "go1") && !strings.Contains(v, "no build info") {
		t.Fatalf("version %q lacks the Go toolchain stamp", v)
	}
}
