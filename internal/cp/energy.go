package cp

import "sort"

// Energetic overload check for the cumulative constraint.
//
// Timetable propagation only sees mandatory parts; three tasks of duration
// 10 that must all run inside a window of length 25 on one slot have no
// mandatory parts at all, yet 30 > 25 units of work make the window
// provably infeasible. The energetic check catches this: for window
// candidates [a, b) built from the tasks' earliest starts and latest ends,
// the total duration of tasks fully confined to the window must not exceed
// capacity * (b - a).
//
// This is the classic O(n^2) energetic overload test restricted to
// (startMin, endMax) pairs. It runs on full passes only (root propagation
// and after backtracks — the branch-and-bound hot path, where deadline
// windows are tight) and is skipped for very large task sets, where its
// cost would dwarf its pruning value.

// energyCheckMaxTasks bounds the task count for which the O(n^2) check runs.
const energyCheckMaxTasks = 512

// energyItem is one task's contribution to the energetic check.
type energyItem struct {
	release int64 // startMin
	due     int64 // endMax
	energy  int64 // dur * demand
}

// sortEnergyByDue orders items by ascending due date. Binary-insertion sort
// keeps the check allocation-free (sort.Slice's reflection swapper was the
// solver's dominant allocation source); the check is O(n^2) anyway, so the
// worst-case move count stays within its complexity budget.
func sortEnergyByDue(s []energyItem) {
	for i := 1; i < len(s); i++ {
		it := s[i]
		j := sort.Search(i, func(k int) bool { return s[k].due > it.due })
		copy(s[j+1:i+1], s[j:i])
		s[j] = it
	}
}

// insertByReleaseDesc inserts it into s keeping releases in descending
// order, reusing s's backing array.
func insertByReleaseDesc(s []energyItem, it energyItem) []energyItem {
	j := sort.Search(len(s), func(k int) bool { return s[k].release < it.release })
	s = append(s, energyItem{})
	copy(s[j+1:], s[j:])
	s[j] = it
	return s
}

// energyCheck returns errFail if some window is energetically overloaded.
func (c *cumulative) energyCheck(m *Model) error {
	n := 0
	for _, t := range c.tasks {
		if c.onRes(m, t) == onResYes {
			n++
		}
	}
	if n < 2 || n > energyCheckMaxTasks {
		return nil
	}
	c.eItems = c.eItems[:0]
	for pos, t := range c.tasks {
		if c.onRes(m, t) != onResYes {
			continue
		}
		// onResYes pins the task to this resource, so its duration here and
		// its demand on this dimension are exact.
		dur := c.durOf(t)
		c.eItems = append(c.eItems, energyItem{
			release: m.StartMin(t),
			due:     m.StartMax(t) + dur,
			energy:  dur * c.demandAt(pos),
		})
	}
	// Sort by due; sweep windows ending at each distinct due.
	sortEnergyByDue(c.eItems)

	// For each window end b (a distinct due), consider the tasks with
	// due <= b; among those, for every candidate window start a (a distinct
	// release), the energy of tasks with release >= a must fit in
	// capacity * (b - a). The confined set grows incrementally and is kept
	// sorted by descending release, so each b-iteration is a linear sweep
	// with a running suffix sum.
	c.eConfined = c.eConfined[:0]
	i := 0
	for i < len(c.eItems) {
		b := c.eItems[i].due
		for i < len(c.eItems) && c.eItems[i].due == b {
			c.eConfined = insertByReleaseDesc(c.eConfined, c.eItems[i])
			i++
		}
		var energy int64
		k := 0
		for k < len(c.eConfined) {
			a := c.eConfined[k].release
			for k < len(c.eConfined) && c.eConfined[k].release == a {
				energy += c.eConfined[k].energy
				k++
			}
			if a >= b {
				// Degenerate window; such a task would already have failed
				// bounds checks elsewhere.
				continue
			}
			if energy > c.capacity*(b-a) {
				return errFail
			}
		}
	}
	return nil
}
