package cp

import "sort"

// Energetic overload check for the cumulative constraint.
//
// Timetable propagation only sees mandatory parts; three tasks of duration
// 10 that must all run inside a window of length 25 on one slot have no
// mandatory parts at all, yet 30 > 25 units of work make the window
// provably infeasible. The energetic check catches this: for window
// candidates [a, b) built from the tasks' earliest starts and latest ends,
// the total duration of tasks fully confined to the window must not exceed
// capacity * (b - a).
//
// This is the classic O(n^2) energetic overload test restricted to
// (startMin, endMax) pairs. It runs on full passes only (root propagation
// and after backtracks — the branch-and-bound hot path, where deadline
// windows are tight) and is skipped for very large task sets, where its
// cost would dwarf its pruning value.

// energyCheckMaxTasks bounds the task count for which the O(n^2) check runs.
const energyCheckMaxTasks = 512

// energyCheck returns errFail if some window is energetically overloaded.
func (c *cumulative) energyCheck(m *Model) error {
	n := 0
	for _, t := range c.tasks {
		if c.onRes(m, t) == onResYes {
			n++
		}
	}
	if n < 2 || n > energyCheckMaxTasks {
		return nil
	}
	type item struct {
		release int64 // startMin
		due     int64 // endMax
		energy  int64 // dur * demand
	}
	items := make([]item, 0, n)
	for _, t := range c.tasks {
		if c.onRes(m, t) != onResYes {
			continue
		}
		items = append(items, item{
			release: m.StartMin(t),
			due:     m.EndMax(t),
			energy:  t.Dur * t.Demand,
		})
	}
	// Sort by due; sweep windows ending at each distinct due.
	sort.Slice(items, func(i, j int) bool { return items[i].due < items[j].due })

	// For each window end b (a distinct due), consider the tasks with
	// due <= b; among those, for every candidate window start a (a distinct
	// release), the energy of tasks with release >= a must fit in
	// capacity * (b - a). Scanning releases in descending order with a
	// running suffix sum makes each b-iteration O(k log k).
	var confined []item // tasks with due <= current b, gathered incrementally
	i := 0
	for i < len(items) {
		b := items[i].due
		for i < len(items) && items[i].due == b {
			confined = append(confined, items[i])
			i++
		}
		// Releases descending.
		sorted := append([]item(nil), confined...)
		sort.Slice(sorted, func(x, y int) bool { return sorted[x].release > sorted[y].release })
		var energy int64
		k := 0
		for k < len(sorted) {
			a := sorted[k].release
			for k < len(sorted) && sorted[k].release == a {
				energy += sorted[k].energy
				k++
			}
			if a >= b {
				// Degenerate window; such a task would already have failed
				// bounds checks elsewhere.
				continue
			}
			if energy > c.capacity*(b-a) {
				return errFail
			}
		}
	}
	return nil
}
