package cp

import (
	"fmt"
	"testing"
)

// hintTestModel builds a contested combined-mode model: eight tasks on a
// capacity-2 resource with staggered deadlines, so which jobs end up late
// depends on the ordering and the objective is neither zero nor trivially
// tight. Each call returns a fresh, identical model.
func hintTestModel() (*Model, []*Interval) {
	m := NewModel(10_000)
	var ivs []*Interval
	var lates []*Bool
	for i := 0; i < 8; i++ {
		iv := m.NewInterval(fmt.Sprintf("t%d", i), 10+int64(i%3)*5)
		m.SetStartBounds(iv, 0, 9_000)
		ivs = append(ivs, iv)
		late := m.NewBool(fmt.Sprintf("l%d", i))
		m.AddLateness([]*Interval{iv}, int64(12+5*i), late)
		lates = append(lates, late)
	}
	m.AddCumulative("r", -1, 2, ivs)
	m.Minimize(lates)
	return m, ivs
}

// A nil hint and a hint that does not cover the model must leave the solve
// bit-identical to a hint-unaware one: same assignment, same objective,
// same node count.
func TestHintNilOrShortIsIdenticalToCold(t *testing.T) {
	m1, _ := hintTestModel()
	cold := solveOK(t, m1, Params{})

	for name, h := range map[string]*Hint{
		"nil":   nil,
		"short": {Starts: []int64{5}}, // covers 1 of 8 intervals
		"empty": {},
	} {
		m2, _ := hintTestModel()
		r := solveOK(t, m2, Params{Hint: h})
		if r.Search.HintSeeded {
			t.Fatalf("%s hint: HintSeeded = true, want cold solve", name)
		}
		if r.Objective != cold.Objective || r.Nodes != cold.Nodes || r.Status != cold.Status {
			t.Fatalf("%s hint diverged: obj %d/%d nodes %d/%d status %v/%v",
				name, r.Objective, cold.Objective, r.Nodes, cold.Nodes, r.Status, cold.Status)
		}
		for i := range cold.Starts {
			if r.Starts[i] != cold.Starts[i] {
				t.Fatalf("%s hint: start[%d] = %d, want %d", name, i, r.Starts[i], cold.Starts[i])
			}
		}
	}
}

// Seeding a solve with a prior solution must be accepted (HintSeeded), must
// reproduce that solution's objective or better, and must skip the proof
// phase: a hinted solve over a nonzero objective reports StatusFeasible.
func TestHintFromPriorSolutionSeeds(t *testing.T) {
	m1, _ := hintTestModel()
	cold := solveOK(t, m1, Params{})
	if cold.Objective == 0 {
		t.Fatal("test model not contested: cold objective is 0")
	}

	m2, _ := hintTestModel()
	r := solveOK(t, m2, Params{Hint: &Hint{Starts: cold.Starts}})
	if !r.Search.HintSeeded {
		t.Fatal("hint covering the model was not seeded")
	}
	if r.Objective > cold.Objective {
		t.Fatalf("hinted objective %d worse than the hint's %d", r.Objective, cold.Objective)
	}
	if r.Search.HintObjective != r.Objective {
		t.Fatalf("HintObjective = %d, want repair objective %d", r.Search.HintObjective, r.Objective)
	}
	if r.Status != StatusFeasible {
		t.Fatalf("status = %v, want Feasible (hinted solves carry no proof)", r.Status)
	}
	for i := range cold.Starts {
		if r.Starts[i] != cold.Starts[i] {
			t.Fatalf("repair moved start[%d] to %d, hint said %d", i, r.Starts[i], cold.Starts[i])
		}
	}
}

// A hinted solve must also be internally deterministic: the same model and
// hint give the same result every time, including through the portfolio.
func TestHintDeterministicAcrossRunsAndWorkers(t *testing.T) {
	m0, _ := hintTestModel()
	cold := solveOK(t, m0, Params{})
	hint := &Hint{Starts: cold.Starts}

	var ref Result
	for run := 0; run < 2; run++ {
		for _, workers := range []int{1, 4} {
			m, _ := hintTestModel()
			r := solveOK(t, m, Params{Hint: hint, Workers: workers})
			if run == 0 && workers == 1 {
				ref = r
				continue
			}
			if r.Objective != ref.Objective {
				t.Fatalf("run %d workers %d: objective %d, want %d", run, workers, r.Objective, ref.Objective)
			}
			for i := range ref.Starts {
				if r.Starts[i] != ref.Starts[i] {
					t.Fatalf("run %d workers %d: start[%d] = %d, want %d",
						run, workers, i, r.Starts[i], ref.Starts[i])
				}
			}
		}
	}
}

// Garbage hints — starts beyond the window, negative, or misaligned with
// precedence — must never crash or produce an invalid solution; at worst
// the repair fails and the cold descent runs.
func TestHintGarbageIsHarmless(t *testing.T) {
	cases := map[string]func(n int) *Hint{
		"beyond-horizon": func(n int) *Hint {
			h := &Hint{Starts: make([]int64, n)}
			for i := range h.Starts {
				h.Starts[i] = 999_999
			}
			return h
		},
		"negative": func(n int) *Hint {
			h := &Hint{Starts: make([]int64, n), Res: make([]int, n)}
			for i := range h.Starts {
				h.Starts[i] = -500
				h.Res[i] = 97 // out-of-range resource
			}
			return h
		},
		"all-colliding": func(n int) *Hint {
			return &Hint{Starts: make([]int64, n)} // every task at t=0
		},
	}
	for name, mk := range cases {
		m, ivs := hintTestModel()
		r := solveOK(t, m, Params{Hint: mk(len(ivs))})
		if err := m.VerifySolution(&r); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
