package cp

import (
	"math"
	"sort"
)

// cumulative implements Constraints 5/6 via timetable propagation: the
// profile of mandatory parts of tasks known to run on the resource must
// never exceed capacity, and task start windows are pruned so that each
// task fits somewhere on the residual profile. Tasks whose matchmaking
// variable still allows several resources contribute no mandatory part but
// lose this resource from their domain if they can no longer fit on it.
//
// For performance on models with thousands of tasks, the propagator keeps
// its event list incrementally sorted and refilters only tasks that need
// it: those whose own variables changed since the last run ("self
// pending") and those whose windows intersect the region of the profile
// that changed ("dirty region"). During forward search mandatory parts
// only grow, so incremental maintenance is exact; any backtrack (detected
// through the store's pop counter) invalidates the cache and forces a full
// rebuild. Lazy filtering is sound: every decided start contributes a
// mandatory part that the overload check validates, so no infeasible
// assignment can survive to a solution.
type cumulative struct {
	name     string
	resIndex int
	capacity int64
	tasks    []*Interval
	// demands, when non-nil, is the per-task demand vector of this
	// dimension (demands[i] for tasks[i]); nil uses each task's Demand.
	demands []int64

	taskPos map[int]int // interval ID -> position in tasks

	// Incremental caches.
	cacheValid bool
	cachePops  int64
	lastMA     []int64 // last contributed mandatory part per task position
	lastMB     []int64 // (lastMA >= lastMB means no contribution)
	events     []ttEvent
	segs       []ttSeg

	changed   []int  // positions with unprocessed variable changes
	changedFl []bool //
	self      []int  // positions awaiting a refilter
	selfFl    []bool //
	rawSpans  []span // profile regions that gained load since the last pass
	fullDirty bool   // everything needs refiltering (after a rebuild)
	minDemand int64  // smallest task demand, for the saturation test

	// Scratch buffers for the energetic check, reused across passes so the
	// branch-and-bound hot path stays allocation-free.
	eItems    []energyItem
	eConfined []energyItem
}

type ttEvent struct {
	at    int64
	delta int64
}

// ttSeg is a maximal constant-load segment [from, to) of the profile.
// Outside all segments the load is zero.
type ttSeg struct {
	from, to int64
	load     int64
}

type onResState int

const (
	onResNo onResState = iota
	onResMaybe
	onResYes
)

func newCumulative(name string, resIndex int, capacity int64, tasks []*Interval, demands []int64) *cumulative {
	c := &cumulative{
		name:      name,
		resIndex:  resIndex,
		capacity:  capacity,
		tasks:     tasks,
		demands:   demands,
		taskPos:   make(map[int]int, len(tasks)),
		lastMA:    make([]int64, len(tasks)),
		lastMB:    make([]int64, len(tasks)),
		changedFl: make([]bool, len(tasks)),
		selfFl:    make([]bool, len(tasks)),
	}
	for i, t := range tasks {
		c.taskPos[t.id] = i
	}
	return c
}

// demandAt returns the demand tasks[pos] places on this dimension.
func (c *cumulative) demandAt(pos int) int64 {
	if c.demands != nil {
		return c.demands[pos]
	}
	return c.tasks[pos].Demand
}

// demandOf is demandAt keyed by the task.
func (c *cumulative) demandOf(t *Interval) int64 {
	if c.demands == nil {
		return t.Demand
	}
	return c.demands[c.taskPos[t.id]]
}

// durOf returns the time t occupies this cumulative when running on it:
// its duration on the cumulative's resource for heterogeneous intervals,
// its uniform duration otherwise.
func (c *cumulative) durOf(t *Interval) int64 {
	return t.DurOn(c.resIndex)
}

func (c *cumulative) onRes(m *Model, t *Interval) onResState {
	if t.resVar == nil || c.resIndex < 0 {
		return onResYes
	}
	if !m.ResAllowed(t.resVar, c.resIndex) {
		return onResNo
	}
	if m.ResDomainSize(t.resVar) == 1 {
		return onResYes
	}
	return onResMaybe
}

// mandatoryOf returns the task's mandatory part on this resource; a >= b
// means none.
func (c *cumulative) mandatoryOf(m *Model, t *Interval) (int64, int64) {
	if c.onRes(m, t) != onResYes {
		return 0, 0
	}
	return m.StartMax(t), m.StartMin(t) + c.durOf(t)
}

// noteChange records that a watched task's bounds or matchmaking domain
// changed; the engine calls this on every wake.
func (c *cumulative) noteChange(iv *Interval) {
	pos, ok := c.taskPos[iv.id]
	if !ok {
		return
	}
	if !c.changedFl[pos] {
		c.changedFl[pos] = true
		c.changed = append(c.changed, pos)
	}
}

func (c *cumulative) markRaw(lo, hi int64) {
	if lo < hi {
		c.rawSpans = append(c.rawSpans, span{lo, hi})
	}
}

// saturatedDirty reduces the raw changed spans to the bounding box of the
// sub-regions where the profile now blocks at least one task (load plus the
// smallest demand exceeds capacity). Only such regions can move any task's
// feasible window; mere load increases below saturation cannot.
func (c *cumulative) saturatedDirty() (int64, int64) {
	lo, hi := int64(math.MaxInt64), int64(math.MinInt64)
	for _, sp := range c.rawSpans {
		i := sort.Search(len(c.segs), func(i int) bool { return c.segs[i].to > sp.from })
		for ; i < len(c.segs) && c.segs[i].from < sp.to; i++ {
			seg := c.segs[i]
			if seg.load+c.minDemand <= c.capacity {
				continue
			}
			if f := max64(seg.from, sp.from); f < lo {
				lo = f
			}
			if t := min64(seg.to, sp.to); t > hi {
				hi = t
			}
		}
	}
	c.rawSpans = c.rawSpans[:0]
	return lo, hi
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// sortEventsByAt orders events by ascending time via binary-insertion sort;
// sort.Slice here allocated a reflection swapper on every post-backtrack
// rebuild, which made it a measurable slice of the search's allocations.
func sortEventsByAt(s []ttEvent) {
	for i := 1; i < len(s); i++ {
		ev := s[i]
		j := sort.Search(i, func(k int) bool { return s[k].at > ev.at })
		copy(s[j+1:i+1], s[j:i])
		s[j] = ev
	}
}

func (c *cumulative) insertEvent(ev ttEvent) {
	i := sort.Search(len(c.events), func(i int) bool { return c.events[i].at >= ev.at })
	c.events = append(c.events, ttEvent{})
	copy(c.events[i+1:], c.events[i:])
	c.events[i] = ev
}

func (c *cumulative) removeEvent(ev ttEvent) {
	i := sort.Search(len(c.events), func(i int) bool { return c.events[i].at >= ev.at })
	for ; i < len(c.events) && c.events[i].at == ev.at; i++ {
		if c.events[i].delta == ev.delta {
			c.events = append(c.events[:i], c.events[i+1:]...)
			return
		}
	}
	// The event must exist; reaching here means cache corruption.
	panic("cp: cumulative cache lost an event")
}

// rebuildFull recomputes every contribution from scratch and marks
// everything for refiltering.
func (c *cumulative) rebuildFull(m *Model) {
	c.events = c.events[:0]
	c.minDemand = math.MaxInt64
	for i, t := range c.tasks {
		a, b := c.mandatoryOf(m, t)
		c.lastMA[i], c.lastMB[i] = a, b
		dem := c.demandAt(i)
		if a < b {
			c.events = append(c.events, ttEvent{a, dem}, ttEvent{b, -dem})
		}
		if dem < c.minDemand {
			c.minDemand = dem
		}
		c.changedFl[i] = false
		c.selfFl[i] = false
	}
	c.changed = c.changed[:0]
	c.self = c.self[:0]
	c.rawSpans = c.rawSpans[:0]
	sortEventsByAt(c.events)
	c.fullDirty = true
	c.cacheValid = true
	c.cachePops = m.store.pops
}

// applyIncremental folds the pending per-task changes into the sorted
// event list, extends the dirty region, and moves the tasks onto the
// self-refilter list.
func (c *cumulative) applyIncremental(m *Model) {
	for _, pos := range c.changed {
		c.changedFl[pos] = false
		if !c.selfFl[pos] {
			c.selfFl[pos] = true
			c.self = append(c.self, pos)
		}
		t := c.tasks[pos]
		oldA, oldB := c.lastMA[pos], c.lastMB[pos]
		newA, newB := c.mandatoryOf(m, t)
		if oldA == newA && oldB == newB {
			continue
		}
		dem := c.demandAt(pos)
		if oldA < oldB {
			c.removeEvent(ttEvent{oldA, dem})
			c.removeEvent(ttEvent{oldB, -dem})
			c.markRaw(oldA, oldB)
		}
		if newA < newB {
			c.insertEvent(ttEvent{newA, dem})
			c.insertEvent(ttEvent{newB, -dem})
			c.markRaw(newA, newB)
		}
		c.lastMA[pos], c.lastMB[pos] = newA, newB
	}
	c.changed = c.changed[:0]
}

// buildSegs derives the constant-load segments from the sorted event list
// and returns errFail if the profile exceeds capacity anywhere.
func (c *cumulative) buildSegs() error {
	c.segs = c.segs[:0]
	var load int64
	i := 0
	for i < len(c.events) {
		at := c.events[i].at
		for i < len(c.events) && c.events[i].at == at {
			load += c.events[i].delta
			i++
		}
		if load > c.capacity {
			return errFail
		}
		if n := len(c.segs); n > 0 {
			c.segs[n-1].to = at
		}
		if i < len(c.events) {
			c.segs = append(c.segs, ttSeg{from: at, load: load})
		}
	}
	for len(c.segs) > 0 && c.segs[len(c.segs)-1].load == 0 {
		c.segs = c.segs[:len(c.segs)-1]
	}
	return nil
}

// refresh brings the profile up to date with the store, returning errFail
// on capacity overload.
func (c *cumulative) refresh(m *Model) error {
	if !c.cacheValid || c.cachePops != m.store.pops {
		c.rebuildFull(m)
	} else {
		c.applyIncremental(m)
	}
	return c.buildSegs()
}

// earliestFit returns the smallest start >= from at which a window of the
// task's duration on this resource, at the task's demand on this
// dimension, fits under capacity on the current profile. When withOwn is
// true, t's own mandatory part [mA, mB) is discounted from the profile.
func (c *cumulative) earliestFit(m *Model, t *Interval, from int64, withOwn bool) int64 {
	dur, dem := c.durOf(t), c.demandOf(t)
	var mA, mB int64
	if withOwn {
		mA, mB = m.StartMax(t), m.StartMin(t)+dur
	}
	st := from
	first := sort.Search(len(c.segs), func(i int) bool { return c.segs[i].to > st })
	for i := first; i < len(c.segs); i++ {
		seg := c.segs[i]
		if seg.to <= st {
			continue
		}
		if seg.from >= st+dur {
			break
		}
		if seg.load+dem <= c.capacity {
			continue
		}
		// The segment conflicts except where t's own mandatory part covers
		// it: the remainder is at most two spans, scanned here in increasing
		// order without materializing them (this is the search's hottest
		// loop; the old subtract() allocation dominated the solve profile).
		lo1, hi1 := seg.from, seg.to
		var lo2, hi2 int64
		if mA < mB && mA < seg.to && mB > seg.from {
			hi1 = min64(seg.to, mA)
			lo2, hi2 = max64(seg.from, mB), seg.to
		}
		if hi1 > lo1 && hi1 > st && lo1 < st+dur {
			st = hi1 // jump past the conflict and rescan this segment window
		}
		if hi2 > lo2 && hi2 > st && lo2 < st+dur {
			st = hi2
		}
	}
	return st
}

// latestFit returns the largest start <= from at which the task's window
// fits on the profile; the result may fall below the task's start window,
// which the caller detects through setStartMax failing.
func (c *cumulative) latestFit(m *Model, t *Interval, from int64, withOwn bool) int64 {
	dur, dem := c.durOf(t), c.demandOf(t)
	var mA, mB int64
	if withOwn {
		mA, mB = m.StartMax(t), m.StartMin(t)+dur
	}
	st := from
	last := sort.Search(len(c.segs), func(i int) bool { return c.segs[i].from >= st+dur }) - 1
	for i := last; i >= 0; i-- {
		seg := c.segs[i]
		if seg.from >= st+dur {
			continue
		}
		if seg.to <= st {
			break
		}
		if seg.load+dem <= c.capacity {
			continue
		}
		// Mirror of earliestFit's inline subtraction, spans visited in
		// decreasing order for the backward scan.
		lo1, hi1 := seg.from, seg.to
		var lo2, hi2 int64
		if mA < mB && mA < seg.to && mB > seg.from {
			hi1 = min64(seg.to, mA)
			lo2, hi2 = max64(seg.from, mB), seg.to
		}
		if hi2 > lo2 && hi2 > st && lo2 < st+dur {
			st = lo2 - dur // pull the window fully before the conflict
		}
		if hi1 > lo1 && hi1 > st && lo1 < st+dur {
			st = lo1 - dur
		}
	}
	return st
}

type span struct{ from, to int64 }

// subtract returns [a,b) minus [mA,mB) as up to two spans in increasing
// order.
func subtract(a, b, mA, mB int64) []span {
	if mB <= a || mA >= b || mA >= mB {
		return []span{{a, b}}
	}
	var out []span
	if a < mA {
		out = append(out, span{a, mA})
	}
	if mB < b {
		out = append(out, span{mB, b})
	}
	return out
}

// subtractRev is subtract with the spans in decreasing order, for the
// backward scan.
func subtractRev(a, b, mA, mB int64) []span {
	s := subtract(a, b, mA, mB)
	if len(s) == 2 {
		s[0], s[1] = s[1], s[0]
	}
	return s
}

func overlaps(aLo, aHi, bLo, bHi int64) bool {
	return aLo < bHi && bLo < aHi
}

// filterTask prunes one task against the current profile. It reports
// whether any domain changed. withMin selects whether the earliest-fit
// bound is tightened too: a full pass maintains both bounds, while the
// incremental passes skip the min side — the search computes each task's
// true earliest fit lazily at placement time instead, which keeps the cost
// of a decision independent of the number of pending tasks.
func (c *cumulative) filterTask(e *engine, t *Interval, withMin bool) (bool, error) {
	m := e.m
	progressed := false
	switch c.onRes(m, t) {
	case onResYes:
		if m.Fixed(t) {
			return false, nil
		}
		if withMin {
			if st := c.earliestFit(m, t, m.StartMin(t), true); st > m.StartMin(t) {
				if err := e.setStartMin(t, st); err != nil {
					return true, err
				}
				progressed = true
			}
		}
		if st := c.latestFit(m, t, m.StartMax(t), true); st < m.StartMax(t) {
			if err := e.setStartMax(t, st); err != nil {
				return true, err
			}
			progressed = true
		}
	case onResMaybe:
		// If the task can no longer fit anywhere on this resource, remove
		// the resource from its matchmaking domain.
		if st := c.earliestFit(m, t, m.StartMin(t), false); st > m.StartMax(t) {
			if err := e.removeRes(t.resVar, c.resIndex); err != nil {
				return true, err
			}
			progressed = true
		}
	}
	return progressed, nil
}

func (c *cumulative) propagate(e *engine) error {
	m := e.m
	for {
		if err := c.refresh(m); err != nil {
			return err
		}
		fullPass := c.fullDirty
		c.fullDirty = false
		if fullPass {
			// Energetic overload check (see energy.go): runs on root
			// propagation and after backtracks, where deadline windows
			// carry the information timetabling cannot see.
			if err := c.energyCheck(m); err != nil {
				return err
			}
		}
		dLo, dHi := c.saturatedDirty()
		dirty := dLo < dHi
		if !fullPass && !dirty && len(c.self) == 0 {
			return nil
		}
		progressed := false
		if fullPass {
			// After a (re)build: one bound-consistent sweep over all tasks.
			for _, t := range c.tasks {
				p, err := c.filterTask(e, t, true)
				progressed = progressed || p
				if err != nil {
					return err
				}
			}
		} else {
			// Refilter self-pending tasks (their own variables changed).
			for _, pos := range c.self {
				c.selfFl[pos] = false
				p, err := c.filterTask(e, c.tasks[pos], false)
				progressed = progressed || p
				if err != nil {
					return err
				}
			}
			c.self = c.self[:0]
			if dirty {
				// The profile gained a blocking region: prune deadline-side
				// windows that touch it, and matchmaking domains of tasks
				// that may lose their only spot on this resource.
				for _, t := range c.tasks {
					if m.Fixed(t) && t.resVar == nil {
						continue
					}
					var need bool
					if t.resVar != nil && c.resIndex >= 0 && c.onRes(m, t) == onResMaybe {
						need = overlaps(m.StartMin(t), m.EndMax(t), dLo, dHi)
					} else {
						need = overlaps(m.StartMax(t), m.EndMax(t), dLo, dHi)
					}
					if !need {
						continue
					}
					p, err := c.filterTask(e, t, false)
					progressed = progressed || p
					if err != nil {
						return err
					}
				}
			}
		}
		if !progressed && len(c.changed) == 0 {
			return nil
		}
	}
}

// EarliestFit exposes the timetable earliest-fit computation for the search
// heuristic that picks the most promising resource for a task.
func (c *Cumulative) EarliestFit(m *Model, t *Interval) int64 {
	if err := c.c.refresh(m); err != nil {
		return m.Horizon()
	}
	return c.c.earliestFit(m, t, m.StartMin(t), false)
}
