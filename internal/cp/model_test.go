package cp

import "testing"

func TestModelIntervalDefaults(t *testing.T) {
	m := NewModel(1000)
	iv := m.NewInterval("t1", 100)
	if m.StartMin(iv) != 0 || m.StartMax(iv) != 900 {
		t.Fatalf("default bounds [%d,%d], want [0,900]", m.StartMin(iv), m.StartMax(iv))
	}
	if m.EndMin(iv) != 100 || m.EndMax(iv) != 1000 {
		t.Fatalf("end bounds [%d,%d]", m.EndMin(iv), m.EndMax(iv))
	}
	if m.Fixed(iv) {
		t.Fatal("fresh interval should not be fixed")
	}
}

func TestModelSetStartBoundsAndFix(t *testing.T) {
	m := NewModel(1000)
	iv := m.NewInterval("t1", 10)
	m.SetStartBounds(iv, 50, 60)
	if m.StartMin(iv) != 50 || m.StartMax(iv) != 60 {
		t.Fatal("SetStartBounds failed")
	}
	m.FixStart(iv, 55)
	if !m.Fixed(iv) || m.StartMin(iv) != 55 {
		t.Fatal("FixStart failed")
	}
}

func TestModelInvalidIntervalPanics(t *testing.T) {
	m := NewModel(100)
	mustPanic(t, "zero duration", func() { m.NewInterval("z", 0) })
	mustPanic(t, "duration beyond horizon", func() { m.NewInterval("big", 101) })
	iv := m.NewInterval("ok", 10)
	mustPanic(t, "empty bounds", func() { m.SetStartBounds(iv, 5, 4) })
	mustPanic(t, "bounds beyond horizon", func() { m.SetStartBounds(iv, 0, 95) })
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	f()
}

func TestResVarDomainOps(t *testing.T) {
	m := NewModel(100)
	iv := m.NewInterval("t", 5)
	rv := m.NewResVar(iv, 70) // spans two bitset words
	if m.ResDomainSize(rv) != 70 {
		t.Fatalf("initial domain size %d", m.ResDomainSize(rv))
	}
	if !m.ResAllowed(rv, 0) || !m.ResAllowed(rv, 69) || m.ResAllowed(rv, 70) {
		t.Fatal("ResAllowed wrong at edges")
	}
	if m.ResFixedValue(rv) != -1 {
		t.Fatal("unfixed domain reported a fixed value")
	}
	m.FixRes(rv, 65)
	if m.ResFixedValue(rv) != 65 || m.ResDomainSize(rv) != 1 {
		t.Fatal("FixRes failed")
	}
	if d := m.ResDomain(rv); len(d) != 1 || d[0] != 65 {
		t.Fatalf("domain %v", d)
	}
}

func TestResVarEngineOps(t *testing.T) {
	m := NewModel(100)
	iv := m.NewInterval("t", 5)
	rv := m.NewResVar(iv, 3)
	e := newEngine(m)
	if err := e.removeRes(rv, 1); err != nil {
		t.Fatal(err)
	}
	if m.ResDomainSize(rv) != 2 || m.ResAllowed(rv, 1) {
		t.Fatal("removeRes failed")
	}
	if err := e.removeRes(rv, 0); err != nil {
		t.Fatal(err)
	}
	if m.ResFixedValue(rv) != 2 {
		t.Fatal("domain should be {2}")
	}
	if err := e.removeRes(rv, 2); err != errFail {
		t.Fatal("emptying domain should fail")
	}
	if err := e.fixRes(rv, 1); err != errFail {
		t.Fatal("fixing to removed value should fail")
	}
}

func TestEngineStartBoundOps(t *testing.T) {
	m := NewModel(1000)
	iv := m.NewInterval("t", 10)
	e := newEngine(m)
	if err := e.setStartMin(iv, 100); err != nil {
		t.Fatal(err)
	}
	if err := e.setStartMax(iv, 200); err != nil {
		t.Fatal(err)
	}
	if m.StartMin(iv) != 100 || m.StartMax(iv) != 200 {
		t.Fatal("bound ops failed")
	}
	// Weakening writes are no-ops.
	if err := e.setStartMin(iv, 50); err != nil || m.StartMin(iv) != 100 {
		t.Fatal("weakening setStartMin changed bound")
	}
	if err := e.setStartMin(iv, 201); err != errFail {
		t.Fatal("crossing bounds should fail")
	}
	if err := e.setStartMax(iv, 99); err != errFail {
		t.Fatal("crossing bounds should fail")
	}
}

func TestEnginePostponeClearedOnBoundChange(t *testing.T) {
	m := NewModel(1000)
	iv := m.NewInterval("t", 10)
	e := newEngine(m)
	e.postpone(iv)
	if !m.postponed(iv) {
		t.Fatal("postpone failed")
	}
	if err := e.setStartMin(iv, 5); err != nil {
		t.Fatal(err)
	}
	if m.postponed(iv) {
		t.Fatal("raising startMin must clear postponement")
	}
}

func TestBoolOps(t *testing.T) {
	m := NewModel(100)
	b := m.NewBool("late")
	if m.BoolFixed(b) {
		t.Fatal("fresh bool fixed")
	}
	e := newEngine(m)
	if err := e.setBool(b, 1); err != nil {
		t.Fatal(err)
	}
	if !m.BoolFixed(b) || m.BoolMin(b) != 1 {
		t.Fatal("setBool failed")
	}
	if err := e.setBool(b, 0); err != errFail {
		t.Fatal("contradicting a fixed bool should fail")
	}
	if err := e.setBool(b, 1); err != nil {
		t.Fatal("re-setting same value should be a no-op")
	}
}

func TestDoubleResVarPanics(t *testing.T) {
	m := NewModel(100)
	iv := m.NewInterval("t", 5)
	m.NewResVar(iv, 2)
	mustPanic(t, "second resvar", func() { m.NewResVar(iv, 2) })
}
