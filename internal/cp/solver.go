package cp

import (
	"fmt"
	"math"
	"time"
)

// OrderingStrategy selects the tie-breaking rule used when several tasks
// are schedulable at the same earliest time — the paper's three job
// ordering strategies (Section VI.B).
type OrderingStrategy int

const (
	// OrderEDF prefers tasks of the job with the earliest deadline. This is
	// the strategy the paper reports results for.
	OrderEDF OrderingStrategy = iota
	// OrderJobID prefers tasks of the job with the smallest id.
	OrderJobID
	// OrderLeastLaxity prefers tasks with the least slack to their job's
	// deadline.
	OrderLeastLaxity
)

// Params configures a solve.
type Params struct {
	// TimeLimit bounds wall-clock solve time; zero means no time limit.
	TimeLimit time.Duration
	// NodeLimit bounds the number of search nodes; zero means the default
	// of 200000.
	NodeLimit int64
	// Ordering is the search tie-breaking strategy.
	Ordering OrderingStrategy
	// StrictLimits makes TimeLimit and NodeLimit apply even before a first
	// solution exists, so an exhausted budget yields StatusUnknown instead
	// of completing the initial greedy descent. The default (false)
	// guarantees at least one solution on feasible models; strict mode is
	// for callers with their own fallback path.
	StrictLimits bool
	// Workers is the width of the parallel portfolio search: that many
	// diversified workers race on independent clones of the model, and the
	// best solution wins by an (objective, canonical-solution) tie-break.
	// 0 means DefaultWorkers() (one worker per CPU, capped at 8); 1 runs
	// the classic single-threaded search, bit-identical to earlier
	// releases. Models without an objective, and models below the
	// portfolio size floor, always solve single-threaded. TimeLimit and
	// NodeLimit apply per worker.
	Workers int
	// Opportunistic lets portfolio workers share their incumbent objective
	// through a lock-free bound so every branch-and-bound round prunes
	// against the global best. Sharing can only improve pruning, but the
	// race makes node counts — and therefore limit-bounded results —
	// nondeterministic across runs. The default (false) keeps parallel
	// solves deterministic: fixed worker seeds, isolated searches, and the
	// canonical merge make seeded node-limited runs byte-identical.
	Opportunistic bool
	// Hint warm-starts the solve from a prior assignment (see Hint). Nil
	// (the default) leaves every search path bit-identical to a
	// hint-unaware solver. A hint that does not cover the model's
	// intervals is ignored.
	Hint *Hint
	// ResRank optionally overrides the resource tie-break order used when
	// two resources offer the same earliest completion: lower rank wins.
	// Resources beyond len(ResRank), and a nil slice, rank by index — the
	// historical behaviour. Ranks only break exact completion ties, so a
	// uniform model solves identically for any permutation-free ranking.
	ResRank []int
}

// Status reports how a solve ended.
type Status int

const (
	// StatusOptimal: a solution with zero late jobs was found, or the
	// branch-and-bound proved no better solution exists within the
	// set-times search space.
	StatusOptimal Status = iota
	// StatusFeasible: a solution was found but a limit stopped the
	// improvement loop.
	StatusFeasible
	// StatusInfeasible: the search space contains no solution (for models
	// with the lateness objective this cannot normally happen, since being
	// late is always allowed unless a SumLE bound forbids it).
	StatusInfeasible
	// StatusUnknown: a limit was hit before any solution was found.
	StatusUnknown
)

func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusFeasible:
		return "feasible"
	case StatusInfeasible:
		return "infeasible"
	default:
		return "unknown"
	}
}

// Result is the outcome of a solve.
type Result struct {
	Status    Status
	Objective int
	// Starts[i] is the assigned start of interval with ID i.
	Starts []int64
	// Res[i] is the assigned resource of interval i, or -1 when the
	// interval has no matchmaking variable.
	Res []int
	// Lates[j] is the value of bool j (by Bool ID).
	Lates []bool
	// Nodes is the number of search nodes explored, Rounds the number of
	// branch-and-bound rounds, and SolveTime the wall-clock duration.
	// (Mirrored in Search for callers that want the full statistics.)
	Nodes     int64
	Rounds    int
	SolveTime time.Duration
	// Search carries the detailed search statistics of this solve.
	Search SearchStats
}

// HasSolution reports whether the result carries an assignment.
func (r *Result) HasSolution() bool {
	return r.Status == StatusOptimal || r.Status == StatusFeasible
}

// ObjectiveStep is one improvement of the incumbent: after Nodes search
// nodes, in round Round, a solution with the given Objective was accepted
// Wall after the solve began. Wall is the only wall-clock-derived field.
type ObjectiveStep struct {
	Round     int
	Nodes     int64
	Objective int
	Wall      time.Duration
}

// SearchStats are the per-solve search counters. All fields except the
// durations (and the Wall component of Timeline entries) are deterministic
// functions of the model and parameters when no wall-clock time limit is
// set.
type SearchStats struct {
	// Nodes counts search nodes expanded; Backtracks counts decision
	// undo operations after a failed subtree; Propagations counts
	// propagator executions.
	Nodes        int64
	Backtracks   int64
	Propagations int64
	// Rounds counts search descents: the first greedy descent, each
	// squeaky-wheel improvement pass, and each branch-and-bound round.
	Rounds int
	// ImprovePasses counts Phase B squeaky-wheel re-descents attempted;
	// ImproveAccepts counts those that improved the incumbent (the solver's
	// LNS-style neighborhood iterations and acceptances).
	ImprovePasses  int
	ImproveAccepts int
	// Solutions counts accepted incumbents (equals len(Timeline)).
	Solutions int
	// FirstObjective is the objective of the first solution (-1 when the
	// search found none); TimeToFirst is the wall-clock time it took.
	FirstObjective int
	TimeToFirst    time.Duration
	// NodeLimitHit / TimeLimitHit report which budget stopped the search.
	NodeLimitHit bool
	TimeLimitHit bool
	// Timeline is the full objective-improvement history. For portfolio
	// solves it is the winning worker's history; the counters above are
	// summed across workers (so Solutions may exceed len(Timeline)).
	Timeline []ObjectiveStep
	// Workers is the number of portfolio workers behind this result (1 for
	// the single-threaded search); Winner is the index of the worker whose
	// solution was selected; BoundImports counts cross-worker incumbent
	// bound imports (opportunistic parallel mode only).
	Workers      int
	Winner       int
	BoundImports int64
	// HintSeeded reports that a warm-start hint descent produced the first
	// incumbent (for portfolio solves: on the winning worker);
	// HintObjective is that incumbent's objective, -1 when no hint seeded.
	HintSeeded    bool
	HintObjective int
}

// LimitHit reports whether any search budget fired.
func (st *SearchStats) LimitHit() bool { return st.NodeLimitHit || st.TimeLimitHit }

func (st *SearchStats) String() string {
	limits := "none"
	switch {
	case st.NodeLimitHit && st.TimeLimitHit:
		limits = "node+time"
	case st.NodeLimitHit:
		limits = "node"
	case st.TimeLimitHit:
		limits = "time"
	}
	first := "-"
	if st.FirstObjective >= 0 {
		first = fmt.Sprintf("%d @%.1fms", st.FirstObjective,
			float64(st.TimeToFirst.Nanoseconds())/1e6)
	}
	out := fmt.Sprintf(
		"%d nodes, %d backtracks, %d propagations, %d rounds, improve %d/%d, %d solutions (first %s), limit %s",
		st.Nodes, st.Backtracks, st.Propagations, st.Rounds,
		st.ImproveAccepts, st.ImprovePasses, st.Solutions, first, limits)
	if st.Workers > 1 {
		out += fmt.Sprintf(", %d workers (winner w%d, %d bound imports)",
			st.Workers, st.Winner, st.BoundImports)
	}
	return out
}

// String summarizes the result's status, objective, and search statistics
// in one line.
func (r *Result) String() string {
	return fmt.Sprintf("%s obj=%d in %v: %s",
		r.Status, r.Objective, r.SolveTime.Round(10*time.Microsecond), r.Search.String())
}

// Minimize declares the objective min Σ bools; the solver runs
// branch-and-bound over it.
func (m *Model) Minimize(bools []*Bool) {
	m.objBools = bools
}

// Solver runs the set-times branch-and-bound search over a model. A solver
// (and its model) is single-use: build, solve once, discard — mirroring the
// paper's regeneration of the OPL model on every MRCP-RM invocation.
type Solver struct {
	m      *Model
	e      *engine
	params Params

	// resCum lists the cumulatives of each resource index — one for the
	// slot dimension, plus one per extra dimension (memory) on
	// multi-dimensional models. taskCums lists the cumulatives containing
	// each interval, by ID.
	resCum   map[int][]*cumulative
	taskCums [][]*cumulative

	deadline  time.Time
	hasDL     bool
	nodeLimit int64
	nodes     int64
	limitHit  bool

	// Search statistics beyond the node count.
	started        time.Time
	curRound       int
	backtracks     int64
	improvePasses  int
	improveAccepts int
	timeline       []ObjectiveStep
	nodeLimitHit   bool
	timeLimitHit   bool
	// ignoreLimits lets one guaranteed improvement descent run even after
	// the limits fired; descents without a branch-and-bound cut are
	// backtrack-free, so this stays bounded.
	ignoreLimits bool

	// hintActive marks the warm-start repair descent: pick targets, the
	// placement lower bound, and the resource choice then follow
	// params.Hint. hintSeeded records that the repair produced the first
	// incumbent, with hintObjective its objective.
	hintActive    bool
	hintSeeded    bool
	hintObjective int

	// boost marks jobs whose tasks are scheduled ahead of others at equal
	// earliest starts — the "squeaky wheel" improvement loop re-descends
	// with the incumbent's late jobs boosted.
	boost map[int]bool

	// Portfolio worker state. seed 0 is the canonical worker, bit-identical
	// to the single-threaded search; nonzero seeds perturb pick tie-breaks
	// and the improvement neighborhoods. shared, when non-nil, is the
	// portfolio's incumbent board (opportunistic mode only); handle,
	// curBound, and inBB let branch-and-bound rounds import a foreign bound
	// mid-search. provedLE is the largest value V for which this worker
	// proved "no solution with objective <= V" (provedNothing when none),
	// the soundness basis for the merged StatusOptimal.
	seed         uint64
	shared       *sharedBound
	handle       *SumLEHandle
	inBB         bool
	curBound     int
	boundImports int64
	provedLE     int

	// resBuf is the scratch slice for pickResource's domain iteration.
	resBuf []int

	incumbent *Result
}

// NewSolver prepares a solver for the model.
func NewSolver(m *Model, params Params) *Solver {
	if params.NodeLimit == 0 {
		params.NodeLimit = 200000
	}
	s := &Solver{m: m, params: params, nodeLimit: params.NodeLimit,
		provedLE: provedNothing, hintObjective: -1}
	s.resCum = make(map[int][]*cumulative)
	s.taskCums = make([][]*cumulative, len(m.intervals))
	for _, c := range m.cumuls {
		if c.resIndex >= 0 {
			s.resCum[c.resIndex] = append(s.resCum[c.resIndex], c)
		}
		for _, t := range c.tasks {
			s.taskCums[t.id] = append(s.taskCums[t.id], c)
		}
	}
	return s
}

// Solve runs the search and returns the best solution found. With an
// effective worker count above one (see Params.Workers) the solve runs as a
// parallel portfolio; otherwise it is the classic single-threaded search.
func (s *Solver) Solve() Result {
	if k := s.effectiveWorkers(); k > 1 {
		return s.solvePortfolio(k)
	}
	return s.solve()
}

// effectiveWorkers resolves Params.Workers against the model: feasibility
// solves (no objective) and models below the portfolio size floor stay
// single-threaded, where cloning and goroutine overhead would dominate.
func (s *Solver) effectiveWorkers() int {
	k := s.params.Workers
	if k == 0 {
		k = DefaultWorkers()
	}
	if k < 1 {
		k = 1
	}
	if len(s.m.objBools) == 0 || len(s.m.intervals) < portfolioMinIntervals {
		return 1
	}
	return k
}

// solve is the single-threaded search; portfolio workers each run one.
func (s *Solver) solve() Result {
	start := time.Now()
	s.started = start
	if s.params.TimeLimit > 0 {
		s.deadline = start.Add(s.params.TimeLimit)
		s.hasDL = true
	}
	m := s.m
	var handle *SumLEHandle
	if len(m.objBools) > 0 && m.sumLE == nil {
		handle = m.AddSumLE(m.objBools, len(m.objBools))
	} else if m.sumLE != nil {
		handle = &SumLEHandle{p: m.sumLE}
	}
	s.handle = handle
	s.e = newEngine(m)
	s.e.scheduleAll()
	if s.e.propagate() != nil {
		return Result{Status: StatusInfeasible, SolveTime: time.Since(start),
			Search: s.searchStats(0, start)}
	}
	// Jobs already proven late at the root cannot be rescued; boosting
	// them would only let their tasks crowd out salvageable jobs.
	rootForced := make(map[int]bool)
	for _, b := range m.objBools {
		if m.BoolMin(b) == 1 {
			rootForced[m.lateJobKey[b.id]] = true
		}
	}

	// Phase A: first descent — a greedy, backtrack-free schedule. With a
	// warm-start hint the descent instead repairs the hinted assignment
	// (see Hint); when that fails (e.g. a hint a root cut rejects), the
	// canonical cold descent runs as if no hint was given.
	rounds := 1
	s.curRound = rounds
	var found, exhausted bool
	if s.params.Hint.covers(len(m.intervals)) {
		s.hintActive = true
		found, _ = s.dfs()
		s.e.store.PopAll()
		s.hintActive = false
		if found {
			s.hintSeeded = true
			s.hintObjective = s.incumbent.Objective
		} else {
			rounds++
			s.curRound = rounds
			found, exhausted = s.dfs()
			s.e.store.PopAll()
		}
	} else {
		found, exhausted = s.dfs()
		s.e.store.PopAll()
	}
	if !found {
		st := StatusUnknown
		if exhausted {
			st = StatusInfeasible
		}
		return Result{Status: st, Nodes: s.nodes, Rounds: rounds,
			SolveTime: time.Since(start), Search: s.searchStats(rounds, start)}
	}
	if s.incumbent.Objective == 0 || len(m.objBools) == 0 || handle == nil {
		if s.incumbent.Objective == 0 {
			s.provedLE = -1 // vacuous: nothing can be below zero
		}
		return s.finish(StatusOptimal, rounds, start)
	}
	if s.hintSeeded {
		// Incremental contract: a hint-seeded solve is pure repair — one
		// descent that re-validates the prior timetable around the delta.
		// The incumbent already embodies a prior cold round's improvement
		// and proof work; every extra pass here is a full O(n) descent
		// over a model sized by the backlog, which is exactly the cost
		// incremental solving exists to avoid. Improvement (Phase B) and
		// the optimality proof (Phase C) stay with the interleaved cold
		// solves.
		return s.finish(StatusFeasible, rounds, start)
	}

	// Phase B: squeaky-wheel improvement — re-descend with the incumbent's
	// late jobs boosted to the front of the ordering. Each pass is one
	// cheap greedy descent, which makes this effective even on models far
	// too large for exact search.
	s.boost = make(map[int]bool)
	noImprove := 0
	for pass := 0; noImprove < 2 && s.incumbent.Objective > 0; pass++ {
		if pass == 0 {
			// The first squeaky pass always runs in full, like the first
			// descent: on models so large that Phase A alone consumes the
			// time budget, one improvement attempt is still worth its cost.
			s.ignoreLimits = true
		} else if s.checkLimit() {
			break
		}
		rounds++
		s.curRound = rounds
		s.improvePasses++
		prev := s.incumbent.Objective
		if s.seed != 0 {
			// Seeded workers rebuild the relaxation neighborhood every pass
			// instead of accumulating it, so each pass explores a different
			// re-descent around the current incumbent.
			clear(s.boost)
		}
		for _, b := range m.objBools {
			if s.incumbent.Lates[b.id] && !rootForced[m.lateJobKey[b.id]] {
				s.boost[m.lateJobKey[b.id]] = true
			}
		}
		if s.seed != 0 {
			// LNS diversification: boost a seed- and pass-dependent quarter
			// of the remaining jobs alongside the late ones.
			for _, b := range m.objBools {
				jk := m.lateJobKey[b.id]
				if !s.boost[jk] && !rootForced[jk] && s.lnsPick(pass, jk) {
					s.boost[jk] = true
				}
			}
		}
		found, _ := s.dfs()
		s.e.store.PopAll()
		s.ignoreLimits = false
		if !found || s.incumbent.Objective >= prev {
			noImprove++
		} else {
			s.improveAccepts++
			noImprove = 0
		}
	}
	s.boost = nil
	if s.incumbent.Objective == 0 {
		return s.finish(StatusOptimal, rounds, start)
	}
	// Phase C: branch and bound on Σ N_j, exact within the set-times
	// search space, bounded by the node and time limits.
	for {
		rounds++
		s.curRound = rounds
		bound := s.incumbent.Objective - 1
		if g := s.sharedBest(); g >= 0 && g-1 < bound {
			// Another worker already holds something better: chase its
			// objective instead of our own incumbent's.
			bound = g - 1
			s.boundImports++
		}
		s.curBound = bound
		handle.SetBound(bound)
		s.e.scheduleAll()
		if s.e.propagate() != nil {
			s.provedLE = s.curBound
			return s.finish(StatusOptimal, rounds, start)
		}
		s.inBB = true
		found, exhausted := s.dfs()
		s.inBB = false
		s.e.store.PopAll()
		if found {
			if s.incumbent.Objective == 0 {
				s.provedLE = -1
				return s.finish(StatusOptimal, rounds, start)
			}
			continue
		}
		if exhausted {
			// The whole subtree under the final (possibly imported) bound
			// was explored: no solution with objective <= curBound exists.
			s.provedLE = s.curBound
			return s.finish(StatusOptimal, rounds, start)
		}
		return s.finish(StatusFeasible, rounds, start)
	}
}

// sharedBest returns the portfolio's best published objective, or -1 when
// there is no incumbent board or nothing was published yet.
func (s *Solver) sharedBest() int {
	if s.shared == nil {
		return -1
	}
	if g := s.shared.best.Load(); g < int64(math.MaxInt64) {
		return int(g)
	}
	return -1
}

func (s *Solver) finish(st Status, rounds int, start time.Time) Result {
	r := *s.incumbent
	r.Status = st
	r.Nodes = s.nodes
	r.Rounds = rounds
	r.SolveTime = time.Since(start)
	r.Search = s.searchStats(rounds, start)
	return r
}

// searchStats snapshots the detailed counters of the search so far.
func (s *Solver) searchStats(rounds int, start time.Time) SearchStats {
	st := SearchStats{
		Nodes:          s.nodes,
		Backtracks:     s.backtracks,
		Rounds:         rounds,
		ImprovePasses:  s.improvePasses,
		ImproveAccepts: s.improveAccepts,
		Solutions:      len(s.timeline),
		FirstObjective: -1,
		NodeLimitHit:   s.nodeLimitHit,
		TimeLimitHit:   s.timeLimitHit,
		Timeline:       s.timeline,
		Workers:        1,
		Winner:         0,
		BoundImports:   s.boundImports,
		HintSeeded:     s.hintSeeded,
		HintObjective:  s.hintObjective,
	}
	if s.e != nil {
		st.Propagations = s.e.propagations
	}
	if len(s.timeline) > 0 {
		st.FirstObjective = s.timeline[0].Objective
		st.TimeToFirst = s.timeline[0].Wall
	}
	return st
}

// checkLimit reports whether search must stop now. Limits apply only to the
// improvement phase: until a first incumbent exists the search runs to its
// first solution (the set-times first descent is backtrack-free on these
// models, so this terminates after one decision per task), mirroring a CP
// engine that always emits at least its greedy solution under a time limit.
func (s *Solver) checkLimit() bool {
	if (s.incumbent == nil && !s.params.StrictLimits) || s.ignoreLimits {
		return false
	}
	if s.limitHit {
		return true
	}
	if s.nodes >= s.nodeLimit {
		s.limitHit = true
		s.nodeLimitHit = true
		return true
	}
	if s.hasDL && s.nodes%256 == 0 && time.Now().After(s.deadline) {
		s.limitHit = true
		s.timeLimitHit = true
		return true
	}
	if s.shared != nil && s.inBB && s.nodes%64 == 0 {
		// Opportunistic mode: tighten the running branch-and-bound cut when
		// another worker published a better incumbent. The sumLE propagator
		// picks the new bound up on its next wake; subtrees explored before
		// the import were covered by the looser (still valid) cut.
		if g := s.sharedBest(); g >= 0 && g-1 < s.curBound {
			s.curBound = g - 1
			s.handle.SetBound(s.curBound)
			s.boundImports++
		}
	}
	return false
}

type pickStatus int

const (
	pickFound pickStatus = iota
	pickAllDone
	pickDeadEnd
)

type decision struct {
	iv  *Interval
	res int // >= 0: resource decision; -1: time decision
}

// pick selects the next decision following the set-times rule: among
// non-postponed undecided tasks, take the one with the smallest earliest
// start, breaking ties with the configured ordering strategy.
func (s *Solver) pick() (decision, pickStatus) {
	m := s.m
	var best *Interval
	var bestKey [5]int64
	undecided := false
	for _, iv := range m.intervals {
		needRes := iv.resVar != nil && m.ResFixedValue(iv.resVar) < 0
		needTime := !m.Fixed(iv)
		if !needRes && !needTime {
			continue
		}
		undecided = true
		if m.postponed(iv) {
			continue
		}
		var boosted int64 = 1
		if s.boost[iv.JobKey] {
			boosted = 0
		}
		// Seeded portfolio workers shuffle ordering ties with a per-task
		// jitter; the canonical worker (seed 0) leaves it at zero, keeping
		// the key ordering identical to the classic 4-component key.
		var jitter int64
		if s.seed != 0 {
			jitter = int64(splitmix64(s.seed^uint64(iv.id)*0x9e3779b97f4a7c15) & 0xff)
		}
		// The final tie-break is creation order, NOT a duration-derived
		// quantity: breaking ties by startMax would start a job's longest
		// tasks first (smaller startMax), leaving every slot busy with
		// long work at random arrival instants and killing the system's
		// responsiveness to tight new jobs.
		key := [5]int64{s.targetStart(iv), boosted, s.orderKey(iv), jitter, int64(iv.id)}
		if best == nil || lessKey(key, bestKey) {
			best, bestKey = iv, key
		}
	}
	if best == nil {
		if undecided {
			return decision{}, pickDeadEnd
		}
		return decision{}, pickAllDone
	}
	if best.resVar != nil && m.ResFixedValue(best.resVar) < 0 {
		if s.hintActive {
			if r := s.params.Hint.res(best.id); r >= 0 && m.ResAllowed(best.resVar, r) {
				return decision{iv: best, res: r}, pickFound
			}
		}
		return decision{iv: best, res: s.pickResource(best)}, pickFound
	}
	return decision{iv: best, res: -1}, pickFound
}

// targetStart is the earliest start the descent aims at for iv: its
// current StartMin or, during a warm-start repair descent, the hinted
// start clamped into the interval's current bounds — so surviving tasks
// stay where the previous round put them while remaining feasible.
func (s *Solver) targetStart(iv *Interval) int64 {
	m := s.m
	st := m.StartMin(iv)
	if s.hintActive {
		if h := s.params.Hint.start(iv.id); h > st {
			if mx := m.StartMax(iv); h > mx {
				h = mx
			}
			if h > st {
				st = h
			}
		}
	}
	return st
}

// orderKey computes the tie-breaking rank of a schedulable task.
func (s *Solver) orderKey(iv *Interval) int64 {
	switch s.params.Ordering {
	case OrderJobID:
		return int64(iv.JobKey)
	case OrderLeastLaxity:
		if iv.Due == math.MaxInt64 {
			return math.MaxInt64
		}
		return iv.Due - s.m.EndMin(iv)
	default:
		return iv.Due
	}
}

func lessKey(a, b [5]int64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// pickResource chooses the domain value where the task can COMPLETE
// earliest on the current timetables (earliest fit plus the task's
// duration on that resource), preferring lower indices on ties. On uniform
// models the duration term is constant, so the choice reduces to the
// classic earliest-start rule bit for bit; on heterogeneous models it is
// what makes the descent speed-aware — a later slot on a fast machine
// beats an earlier slot on a slow one when it finishes sooner. A non-nil
// Params.ResRank overrides the index tie-break with a preference order
// (locality weights).
func (s *Solver) pickResource(iv *Interval) int {
	m := s.m
	bestRes := -1
	bestComp := int64(math.MaxInt64)
	var bestRank int64
	target := s.targetStart(iv)
	s.resBuf = m.AppendResDomain(iv.resVar, s.resBuf[:0])
	for _, r := range s.resBuf {
		fit := target
		for _, c := range s.resCum[r] {
			if err := c.refresh(m); err != nil {
				fit = math.MaxInt64
				break
			}
			if f := c.earliestFit(m, iv, fit, false); f > fit {
				fit = f
			}
		}
		comp := int64(math.MaxInt64)
		if dur := iv.DurOn(r); fit < math.MaxInt64-dur {
			comp = fit + dur
		}
		rank := s.resRank(r)
		if comp < bestComp || (comp == bestComp && bestRes >= 0 && rank < bestRank) {
			bestComp, bestRes, bestRank = comp, r, rank
		}
	}
	if bestRes < 0 {
		bestRes = s.resBuf[0]
	}
	return bestRes
}

// resRank returns the preference rank of resource r: its position in
// Params.ResRank when set (lower is preferred), its index otherwise.
func (s *Solver) resRank(r int) int64 {
	if rk := s.params.ResRank; r < len(rk) {
		return int64(rk[r])
	}
	return int64(r)
}

// dfs explores the subtree below the current store state. It returns
// (true, _) as soon as a solution satisfying the current bound is found
// (captured into s.incumbent), or (false, exhausted) otherwise, where
// exhausted means the subtree was fully explored rather than cut by a
// limit.
func (s *Solver) dfs() (bool, bool) {
	if s.checkLimit() {
		return false, false
	}
	dec, st := s.pick()
	switch st {
	case pickAllDone:
		s.capture()
		return true, true
	case pickDeadEnd:
		return false, true
	}
	s.nodes++

	// Left branch.
	s.e.store.Push()
	if s.applyLeft(dec) == nil && s.e.propagate() == nil {
		if found, _ := s.dfs(); found {
			return true, true
		}
	}
	s.backtracks++
	s.e.store.Pop()
	if s.limitHit {
		return false, false
	}

	// Right branch.
	s.e.store.Push()
	if s.applyRight(dec) == nil && s.e.propagate() == nil {
		if found, _ := s.dfs(); found {
			return true, true
		}
	}
	s.backtracks++
	s.e.store.Pop()
	return false, !s.limitHit
}

func (s *Solver) applyLeft(d decision) error {
	if d.res >= 0 {
		return s.e.fixRes(d.iv.resVar, d.res)
	}
	return s.e.fixStart(d.iv, s.placementStart(d.iv))
}

// placementStart computes the task's true earliest feasible start on the
// current timetables. StartMin is a valid but possibly stale lower bound
// (the incremental cumulative passes skip min-side tightening); placing at
// the computed fit keeps the set-times descent equivalent to eager
// filtering at a fraction of the cost. The result is validated by the
// overload check after fixing, so an optimistic value can only cause a
// backtrack, never an invalid solution.
func (s *Solver) placementStart(iv *Interval) int64 {
	m := s.m
	st := s.targetStart(iv)
	cums := s.taskCums[iv.id]
	// Two rounds reach a fixpoint when the task sits on several timetables
	// (it never does in the models built by this repository, but the
	// general case is cheap to honor).
	for range [2]struct{}{} {
		for _, c := range cums {
			if c.onRes(m, iv) != onResYes {
				continue
			}
			if err := c.refresh(m); err != nil {
				return st
			}
			st = c.earliestFit(m, iv, st, true)
		}
		if len(cums) < 2 {
			break
		}
	}
	return st
}

func (s *Solver) applyRight(d decision) error {
	if d.res >= 0 {
		return s.e.removeRes(d.iv.resVar, d.res)
	}
	s.e.postpone(d.iv)
	return nil
}

// capture snapshots the current (fully decided) state as the incumbent if
// it improves on (or first establishes) the best objective.
func (s *Solver) capture() {
	m := s.m
	r := &Result{
		Starts: make([]int64, len(m.intervals)),
		Res:    make([]int, len(m.intervals)),
		Lates:  make([]bool, len(m.bools)),
	}
	for i, iv := range m.intervals {
		r.Starts[i] = m.StartMin(iv)
		r.Res[i] = -1
		if iv.resVar != nil {
			r.Res[i] = m.ResFixedValue(iv.resVar)
		}
	}
	for i, b := range m.bools {
		r.Lates[i] = m.BoolMin(b) == 1
	}
	obj := 0
	for _, b := range m.objBools {
		if m.BoolMin(b) == 1 {
			obj++
		}
	}
	r.Objective = obj
	if s.incumbent == nil || obj < s.incumbent.Objective {
		s.incumbent = r
		s.timeline = append(s.timeline, ObjectiveStep{
			Round:     s.curRound,
			Nodes:     s.nodes,
			Objective: obj,
			Wall:      time.Since(s.started),
		})
		if s.shared != nil {
			s.shared.publish(int64(obj))
		}
	}
}
