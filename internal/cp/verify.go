package cp

import (
	"fmt"
	"sort"
)

// VerifySolution is an independent checker used by tests and by the
// resource manager to validate a solver result against the model's
// constraints. It does not share code with the propagators: capacity is
// checked with a fresh sweep, precedence and lateness by direct evaluation.
// It returns nil when the assignment satisfies every posted constraint.
func (m *Model) VerifySolution(r *Result) error {
	if !r.HasSolution() {
		return fmt.Errorf("cp: result status %v carries no solution", r.Status)
	}
	if len(r.Starts) != len(m.intervals) {
		return fmt.Errorf("cp: solution has %d starts for %d intervals", len(r.Starts), len(m.intervals))
	}
	// Bounds and matchmaking domains (against the original build-time
	// bounds, which include frozen-task pins).
	for i, iv := range m.intervals {
		st := r.Starts[i]
		if st < iv.origMin || st > iv.origMax {
			return fmt.Errorf("cp: interval %q start %d outside original bounds [%d,%d]",
				iv.Name, st, iv.origMin, iv.origMax)
		}
		if iv.resVar != nil {
			res := r.Res[i]
			if res < 0 || res >= iv.resVar.NumRes {
				return fmt.Errorf("cp: interval %q assigned invalid resource %d", iv.Name, res)
			}
		}
	}
	// Every posted constraint.
	for _, p := range m.props {
		if err := m.verifyProp(p, r); err != nil {
			return err
		}
	}
	return nil
}

func (m *Model) verifyProp(p propagator, r *Result) error {
	switch c := p.(type) {
	case *phaseBarrier:
		var lastEnd int64
		for _, pr := range c.preds {
			if end := r.Starts[pr.id] + m.resultDur(pr, r); end > lastEnd {
				lastEnd = end
			}
		}
		for _, su := range c.succs {
			if st := r.Starts[su.id]; st < lastEnd {
				return fmt.Errorf("cp: %q starts at %d before its predecessors end at %d",
					su.Name, st, lastEnd)
			}
		}
	case *lateness:
		var complete int64
		for _, t := range c.terminals {
			if end := r.Starts[t.id] + m.resultDur(t, r); end > complete {
				complete = end
			}
		}
		late := r.Lates[c.late.id]
		if complete > c.deadline && !late {
			return fmt.Errorf("cp: job completing at %d after deadline %d not marked late",
				complete, c.deadline)
		}
	case *sumLE:
		// The SumLE bound is a branch-and-bound cut that the solver
		// tightens below the incumbent's objective between rounds; the
		// incumbent intentionally predates the final bound, so there is
		// nothing to verify here.
	case *cumulative:
		if err := m.verifyCumulative(c, r); err != nil {
			return err
		}
	}
	return nil
}

func (m *Model) verifyCumulative(c *cumulative, r *Result) error {
	type ev struct {
		at    int64
		delta int64
	}
	var evs []ev
	for pos, t := range c.tasks {
		onThis := t.resVar == nil || c.resIndex < 0 || r.Res[t.id] == c.resIndex
		if !onThis {
			continue
		}
		st := r.Starts[t.id]
		dur, dem := m.resultDur(t, r), c.demandAt(pos)
		evs = append(evs, ev{st, dem}, ev{st + dur, -dem})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].at != evs[j].at {
			return evs[i].at < evs[j].at
		}
		return evs[i].delta < evs[j].delta // releases before acquisitions at ties
	})
	var load int64
	i := 0
	for i < len(evs) {
		at := evs[i].at
		for i < len(evs) && evs[i].at == at {
			load += evs[i].delta
			i++
		}
		if load > c.capacity {
			return fmt.Errorf("cp: resource %q overloaded (%d > %d) at time %d",
				c.name, load, c.capacity, at)
		}
	}
	return nil
}

// resultDur is the duration iv actually runs for under the assignment in r:
// its mode duration on the chosen resource, or the uniform duration when no
// per-resource table was posted.
func (m *Model) resultDur(iv *Interval, r *Result) int64 {
	if iv.durs == nil {
		return iv.Dur
	}
	return iv.DurOn(r.Res[iv.id])
}
