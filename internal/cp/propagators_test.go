package cp

import "testing"

// Direct unit tests of the three scalar propagators; the cumulative has
// its own file.

func propagateAll(t *testing.T, m *Model) *engine {
	t.Helper()
	e := newEngine(m)
	e.scheduleAll()
	if err := e.propagate(); err != nil {
		t.Fatalf("root propagation failed: %v", err)
	}
	return e
}

func TestPhaseBarrierForwardBound(t *testing.T) {
	m := NewModel(10_000)
	m1 := m.NewInterval("m1", 100)
	m.SetStartBounds(m1, 50, 50)
	m2 := m.NewInterval("m2", 300)
	m.SetStartBounds(m2, 0, 1000)
	r1 := m.NewInterval("r1", 10)
	r2 := m.NewInterval("r2", 20)
	m.AddPhaseBarrier([]*Interval{m1, m2}, []*Interval{r1, r2})
	propagateAll(t, m)
	// LFMT lower bound: max(50+100, 0+300) = 300.
	if got := m.StartMin(r1); got != 300 {
		t.Fatalf("r1 startMin %d, want 300", got)
	}
	if got := m.StartMin(r2); got != 300 {
		t.Fatalf("r2 startMin %d, want 300", got)
	}
}

func TestPhaseBarrierBackwardBound(t *testing.T) {
	m := NewModel(10_000)
	mp := m.NewInterval("m", 100)
	r := m.NewInterval("r", 10)
	m.SetStartBounds(r, 0, 500) // reduce must start by 500
	m.AddPhaseBarrier([]*Interval{mp}, []*Interval{r})
	propagateAll(t, m)
	// The map must end by the reduce's latest start: startMax <= 400.
	if got := m.StartMax(mp); got != 400 {
		t.Fatalf("map startMax %d, want 400", got)
	}
}

func TestPhaseBarrierInfeasible(t *testing.T) {
	m := NewModel(10_000)
	mp := m.NewInterval("m", 600)
	m.SetStartBounds(mp, 100, 100) // ends at 700
	r := m.NewInterval("r", 10)
	m.SetStartBounds(r, 0, 500) // must start by 500 < 700
	m.AddPhaseBarrier([]*Interval{mp}, []*Interval{r})
	e := newEngine(m)
	e.scheduleAll()
	if err := e.propagate(); err != errFail {
		t.Fatalf("expected failure, got %v", err)
	}
}

func TestLatenessForcedLate(t *testing.T) {
	m := NewModel(10_000)
	iv := m.NewInterval("t", 100)
	m.SetStartBounds(iv, 950, 2000) // earliest completion 1050
	late := m.NewBool("late")
	m.AddLateness([]*Interval{iv}, 1000, late)
	propagateAll(t, m)
	if m.BoolMin(late) != 1 {
		t.Fatal("late should be forced to 1")
	}
}

func TestLatenessForcedOnTime(t *testing.T) {
	m := NewModel(10_000)
	iv := m.NewInterval("t", 100)
	m.SetStartBounds(iv, 0, 400) // latest completion 500 <= 1000
	late := m.NewBool("late")
	m.AddLateness([]*Interval{iv}, 1000, late)
	propagateAll(t, m)
	if m.BoolMax(late) != 0 {
		t.Fatal("late should be fixed to 0 (provably on time)")
	}
}

func TestLatenessZeroEnforcesDeadlineWindows(t *testing.T) {
	m := NewModel(10_000)
	iv := m.NewInterval("t", 100)
	late := m.NewBool("late")
	m.AddLateness([]*Interval{iv}, 1000, late)
	e := propagateAll(t, m)
	if err := e.setBool(late, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.propagate(); err != nil {
		t.Fatal(err)
	}
	if got := m.StartMax(iv); got != 900 {
		t.Fatalf("startMax %d, want 900 (deadline window)", got)
	}
}

func TestLatenessConflict(t *testing.T) {
	m := NewModel(10_000)
	iv := m.NewInterval("t", 100)
	m.SetStartBounds(iv, 950, 2000)
	late := m.NewBool("late")
	m.AddLateness([]*Interval{iv}, 1000, late)
	e := newEngine(m)
	// Pre-decide late = 0, then propagate: contradiction.
	if err := e.setBool(late, 0); err != nil {
		t.Fatal(err)
	}
	e.scheduleAll()
	if err := e.propagate(); err != errFail {
		t.Fatalf("expected failure, got %v", err)
	}
}

func TestSumLEForcesRemainingOnTime(t *testing.T) {
	m := NewModel(10_000)
	var bools []*Bool
	for i := 0; i < 3; i++ {
		bools = append(bools, m.NewBool("b"))
	}
	m.AddSumLE(bools, 1)
	e := newEngine(m)
	if err := e.setBool(bools[0], 1); err != nil {
		t.Fatal(err)
	}
	e.scheduleAll()
	if err := e.propagate(); err != nil {
		t.Fatal(err)
	}
	// Bound reached: the other two must be 0.
	if m.BoolMax(bools[1]) != 0 || m.BoolMax(bools[2]) != 0 {
		t.Fatal("remaining bools should be forced to 0")
	}
}

func TestSumLEOverflowFails(t *testing.T) {
	m := NewModel(10_000)
	var bools []*Bool
	for i := 0; i < 3; i++ {
		bools = append(bools, m.NewBool("b"))
	}
	m.AddSumLE(bools, 1)
	e := newEngine(m)
	if err := e.setBool(bools[0], 1); err != nil {
		t.Fatal(err)
	}
	if err := e.setBool(bools[1], 1); err != nil {
		t.Fatal(err)
	}
	e.scheduleAll()
	if err := e.propagate(); err != errFail {
		t.Fatalf("expected failure with 2 > bound 1, got %v", err)
	}
}

func TestSumLEHandleUpdatesBound(t *testing.T) {
	m := NewModel(10_000)
	b := m.NewBool("b")
	h := m.AddSumLE([]*Bool{b}, 1)
	if h.Bound() != 1 {
		t.Fatal("initial bound")
	}
	h.SetBound(0)
	e := newEngine(m)
	e.scheduleAll()
	if err := e.propagate(); err != nil {
		t.Fatal(err)
	}
	if m.BoolMax(b) != 0 {
		t.Fatal("bound 0 should force the bool to 0")
	}
}

func TestDoubleSumLEPanics(t *testing.T) {
	m := NewModel(100)
	b := m.NewBool("b")
	m.AddSumLE([]*Bool{b}, 1)
	mustPanic(t, "second SumLE", func() { m.AddSumLE([]*Bool{b}, 1) })
}

func TestEmptyBarrierIsNoop(t *testing.T) {
	m := NewModel(100)
	iv := m.NewInterval("t", 10)
	m.AddPhaseBarrier(nil, []*Interval{iv})
	m.AddPhaseBarrier([]*Interval{iv}, nil)
	if len(m.props) != 0 {
		t.Fatal("empty barriers should post nothing")
	}
}

func TestLatenessNeedsTerminals(t *testing.T) {
	m := NewModel(100)
	late := m.NewBool("late")
	mustPanic(t, "empty terminals", func() { m.AddLateness(nil, 50, late) })
}
