package cp

import "errors"

// errFail signals an inconsistent state; the search backtracks on it.
var errFail = errors.New("cp: inconsistent")

// propagator is a filtering algorithm over the variables it watches.
type propagator interface {
	// propagate prunes domains through the engine; it returns errFail on
	// wipe-out and nil when a local fixpoint is reached.
	propagate(e *engine) error
}

// engine owns the propagation queue and performs all domain mutations so
// that watchers are woken consistently.
type engine struct {
	m     *Model
	store *Store
	// queue is a reusable ring: qhead indexes the next propagator to pop,
	// and the backing array is recycled across propagate calls (and thus
	// across all search rounds) instead of being re-sliced away.
	queue   []int
	qhead   int
	inQueue []bool
	running int // index of the propagator currently executing, or -1
	// propagations counts propagator executions (queue pops), the search's
	// basic unit of filtering work; surfaced in cp.SearchStats.
	propagations int64
}

func newEngine(m *Model) *engine {
	return &engine{m: m, store: m.store, inQueue: make([]bool, len(m.props)), running: -1}
}

// schedule enqueues a propagator unless it is already queued or currently
// running (self-wakes within a run are handled by the propagator's own
// internal fixpoint loops).
func (e *engine) schedule(idx int) {
	if idx == e.running || e.inQueue[idx] {
		return
	}
	e.inQueue[idx] = true
	e.queue = append(e.queue, idx)
}

func (e *engine) scheduleAll() {
	for i := range e.m.props {
		e.schedule(i)
	}
}

// propagate runs queued propagators to a fixpoint. On failure the queue is
// drained and errFail returned.
func (e *engine) propagate() error {
	for e.qhead < len(e.queue) {
		idx := e.queue[e.qhead]
		e.qhead++
		e.inQueue[idx] = false
		e.running = idx
		e.propagations++
		err := e.m.props[idx].propagate(e)
		e.running = -1
		if err != nil {
			for _, q := range e.queue[e.qhead:] {
				e.inQueue[q] = false
			}
			e.queue = e.queue[:0]
			e.qhead = 0
			return err
		}
	}
	e.queue = e.queue[:0]
	e.qhead = 0
	return nil
}

func (e *engine) wakeInterval(iv *Interval) {
	for _, p := range e.m.ivWatch[iv.id] {
		if c, ok := e.m.props[p].(*cumulative); ok {
			c.noteChange(iv)
		}
		e.schedule(p)
	}
}

func (e *engine) wakeBool(b *Bool) {
	for _, p := range e.m.boolWatch[b.id] {
		e.schedule(p)
	}
}

func (e *engine) wakeResVar(rv *ResVar) {
	for _, p := range e.m.rvWatch[rv.id] {
		if c, ok := e.m.props[p].(*cumulative); ok {
			c.noteChange(rv.iv)
		}
		e.schedule(p)
	}
}

// setStartMin raises an interval's start lower bound. Raising the bound
// also clears the set-times postponement flag, since the task's situation
// has changed (classic set-times rule).
func (e *engine) setStartMin(iv *Interval, v int64) error {
	cur := e.store.get(iv.base + 0)
	if v <= cur {
		return nil
	}
	if v > e.store.get(iv.base+1) {
		return errFail
	}
	e.store.set(iv.base+0, v)
	e.store.set(iv.base+2, 0)
	e.wakeInterval(iv)
	return nil
}

// setStartMax lowers an interval's start upper bound.
func (e *engine) setStartMax(iv *Interval, v int64) error {
	cur := e.store.get(iv.base + 1)
	if v >= cur {
		return nil
	}
	if v < e.store.get(iv.base+0) {
		return errFail
	}
	e.store.set(iv.base+1, v)
	e.wakeInterval(iv)
	return nil
}

// fixStart decides an interval's start time.
func (e *engine) fixStart(iv *Interval, v int64) error {
	if err := e.setStartMin(iv, v); err != nil {
		return err
	}
	return e.setStartMax(iv, v)
}

// postpone marks an interval postponed for the set-times search; the flag
// is trailed, so backtracking clears it.
func (e *engine) postpone(iv *Interval) {
	e.store.set(iv.base+2, 1)
}

// setBool decides a boolean variable.
func (e *engine) setBool(b *Bool, v int64) error {
	min, max := e.store.get(b.base+0), e.store.get(b.base+1)
	if min == max {
		if min != v {
			return errFail
		}
		return nil
	}
	e.store.set(b.base+0, v)
	e.store.set(b.base+1, v)
	e.wakeBool(b)
	return nil
}

// removeRes removes resource r from a resvar's domain.
func (e *engine) removeRes(rv *ResVar, r int) error {
	w := rv.base + int32(r/64)
	word := e.store.get(w)
	bit := int64(1) << (r % 64)
	if word&bit == 0 {
		return nil
	}
	e.store.set(w, word&^bit)
	if e.m.ResDomainSize(rv) == 0 {
		return errFail
	}
	e.wakeResVar(rv)
	return nil
}

// fixRes reduces a resvar's domain to the single resource r.
func (e *engine) fixRes(rv *ResVar, r int) error {
	if !e.m.ResAllowed(rv, r) {
		return errFail
	}
	changed := false
	for w := 0; w < rv.words; w++ {
		var word int64
		if w == r/64 {
			word = 1 << (r % 64)
		}
		if e.store.get(rv.base+int32(w)) != word {
			e.store.set(rv.base+int32(w), word)
			changed = true
		}
	}
	if changed {
		e.wakeResVar(rv)
	}
	return nil
}
