package cp

import (
	"testing"
	"testing/quick"

	"mrcprm/internal/stats"
)

// Property-based tests: random MapReduce-shaped models must always produce
// solutions that the independent verifier accepts, and the solver's
// incremental caches must never diverge from a from-scratch evaluation.

// randomInstance describes a generated test model.
type randomInstance struct {
	m     *Model
	lates []*Bool
}

// buildRandomInstance creates a model with nJobs jobs on one combined
// map/reduce resource pair, mimicking the structure MRCP-RM generates.
func buildRandomInstance(rng *stats.Stream, nJobs, maxTasks int, mapCap, redCap int64, tight bool) *randomInstance {
	horizon := int64(1_000_000)
	m := NewModel(horizon)
	var mapAll, redAll []*Interval
	var lates []*Bool
	for j := 0; j < nJobs; j++ {
		est := int64(rng.IntN(1000))
		nm := 1 + rng.IntN(maxTasks)
		nr := rng.IntN(maxTasks)
		var maps, reds []*Interval
		var work int64
		for i := 0; i < nm; i++ {
			iv := m.NewInterval("m", int64(1+rng.IntN(100)))
			iv.JobKey = j
			m.SetStartBounds(iv, est, horizon-iv.Dur)
			maps = append(maps, iv)
			work += iv.Dur
		}
		for i := 0; i < nr; i++ {
			iv := m.NewInterval("r", int64(1+rng.IntN(100)))
			iv.JobKey = j
			m.SetStartBounds(iv, est, horizon-iv.Dur)
			reds = append(reds, iv)
			work += iv.Dur
		}
		slack := int64(4)
		if tight {
			slack = 1
		}
		deadline := est + work*slack/2 + int64(rng.IntN(200)) + 1
		for _, iv := range maps {
			iv.Due = deadline
		}
		for _, iv := range reds {
			iv.Due = deadline
		}
		m.AddPhaseBarrier(maps, reds)
		terms := reds
		if len(terms) == 0 {
			terms = maps
		}
		late := m.NewBool("late")
		m.AddLateness(terms, deadline, late)
		lates = append(lates, late)
		mapAll = append(mapAll, maps...)
		redAll = append(redAll, reds...)
	}
	m.AddCumulative("map", -1, mapCap, mapAll)
	if len(redAll) > 0 {
		m.AddCumulative("reduce", -1, redCap, redAll)
	}
	m.Minimize(lates)
	return &randomInstance{m: m, lates: lates}
}

func TestQuickRandomInstancesVerify(t *testing.T) {
	rng := stats.NewStream(1001, 7)
	f := func(seed uint16) bool {
		local := rng.Derive(uint64(seed))
		inst := buildRandomInstance(local, 1+local.IntN(6), 4, int64(1+local.IntN(3)), int64(1+local.IntN(3)), seed%2 == 0)
		r := NewSolver(inst.m, Params{NodeLimit: 3000}).Solve()
		if !r.HasSolution() {
			return false
		}
		return inst.m.VerifySolution(&r) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRandomDirectModeVerify(t *testing.T) {
	rng := stats.NewStream(2002, 9)
	f := func(seed uint16) bool {
		local := rng.Derive(uint64(seed))
		horizon := int64(100_000)
		m := NewModel(horizon)
		numRes := 2 + local.IntN(3)
		var all []*Interval
		var lates []*Bool
		nJobs := 1 + local.IntN(4)
		for j := 0; j < nJobs; j++ {
			n := 1 + local.IntN(4)
			var ivs []*Interval
			for i := 0; i < n; i++ {
				iv := m.NewInterval("t", int64(1+local.IntN(50)))
				iv.JobKey = j
				iv.Due = int64(100 + local.IntN(400))
				m.NewResVar(iv, numRes)
				ivs = append(ivs, iv)
				all = append(all, iv)
			}
			late := m.NewBool("late")
			m.AddLateness(ivs, ivs[0].Due, late)
			lates = append(lates, late)
		}
		for r := 0; r < numRes; r++ {
			m.AddCumulative("res", r, 1, all)
		}
		m.Minimize(lates)
		res := NewSolver(m, Params{NodeLimit: 3000}).Solve()
		if !res.HasSolution() {
			return false
		}
		if m.VerifySolution(&res) != nil {
			return false
		}
		// Every task must have a concrete resource.
		for _, iv := range all {
			if res.Res[iv.ID()] < 0 || res.Res[iv.ID()] >= numRes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: the solver is deterministic — equal inputs give equal outputs,
// including node counts, when no wall-clock limit is set.
func TestQuickSolverDeterminism(t *testing.T) {
	f := func(seed uint16) bool {
		build := func() *randomInstance {
			local := stats.NewStream(31, uint64(seed))
			return buildRandomInstance(local, 3, 3, 2, 2, true)
		}
		r1 := NewSolver(build().m, Params{NodeLimit: 2000}).Solve()
		r2 := NewSolver(build().m, Params{NodeLimit: 2000}).Solve()
		if r1.Status != r2.Status || r1.Objective != r2.Objective || r1.Nodes != r2.Nodes {
			return false
		}
		for i := range r1.Starts {
			if r1.Starts[i] != r2.Starts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding slack to every deadline never increases the optimal
// number of late jobs (monotonicity of the objective in deadlines).
func TestQuickDeadlineMonotonicity(t *testing.T) {
	f := func(seed uint16) bool {
		solveWith := func(extra int64) int {
			local := stats.NewStream(77, uint64(seed))
			horizon := int64(1_000_000)
			m := NewModel(horizon)
			var all []*Interval
			var lates []*Bool
			for j := 0; j < 3; j++ {
				n := 1 + local.IntN(3)
				var ivs []*Interval
				var work int64
				est := int64(local.IntN(100))
				for i := 0; i < n; i++ {
					iv := m.NewInterval("t", int64(1+local.IntN(60)))
					iv.JobKey = j
					m.SetStartBounds(iv, est, horizon-iv.Dur)
					ivs = append(ivs, iv)
					all = append(all, iv)
					work += iv.Dur
				}
				deadline := est + work/2 + int64(local.IntN(100)) + 1 + extra
				for _, iv := range ivs {
					iv.Due = deadline
				}
				late := m.NewBool("late")
				m.AddLateness(ivs, deadline, late)
				lates = append(lates, late)
			}
			m.AddCumulative("r", -1, 2, all)
			m.Minimize(lates)
			r := NewSolver(m, Params{NodeLimit: 20000}).Solve()
			if r.Status != StatusOptimal {
				return -1 // skip non-proven cases
			}
			return r.Objective
		}
		base := solveWith(0)
		loose := solveWith(500)
		if base < 0 || loose < 0 {
			return true
		}
		return loose <= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: frozen (fixed) intervals are never moved by the solver.
func TestQuickFrozenTasksImmutable(t *testing.T) {
	rng := stats.NewStream(909, 11)
	f := func(seed uint16) bool {
		local := rng.Derive(uint64(seed))
		m := NewModel(100_000)
		frozenStart := int64(local.IntN(500))
		frozen := m.NewInterval("frozen", int64(1+local.IntN(200)))
		m.FixStart(frozen, frozenStart)
		var all []*Interval
		all = append(all, frozen)
		for i := 0; i < 1+local.IntN(5); i++ {
			iv := m.NewInterval("t", int64(1+local.IntN(100)))
			all = append(all, iv)
		}
		m.AddCumulative("r", -1, 1, all)
		r := NewSolver(m, Params{NodeLimit: 2000}).Solve()
		if !r.HasSolution() {
			return false
		}
		return r.Starts[frozen.ID()] == frozenStart && m.VerifySolution(&r) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
