package cp

import (
	"testing"

	"mrcprm/internal/stats"
)

// resultsEqual compares the deterministic parts of two results (everything
// except wall-clock durations).
func resultsEqual(t *testing.T, a, b Result) {
	t.Helper()
	if a.Status != b.Status || a.Objective != b.Objective || a.Nodes != b.Nodes || a.Rounds != b.Rounds {
		t.Fatalf("results differ: %v obj=%d nodes=%d rounds=%d vs %v obj=%d nodes=%d rounds=%d",
			a.Status, a.Objective, a.Nodes, a.Rounds, b.Status, b.Objective, b.Nodes, b.Rounds)
	}
	for i := range a.Starts {
		if a.Starts[i] != b.Starts[i] {
			t.Fatalf("Starts[%d] = %d vs %d", i, a.Starts[i], b.Starts[i])
		}
	}
	for i := range a.Res {
		if a.Res[i] != b.Res[i] {
			t.Fatalf("Res[%d] = %d vs %d", i, a.Res[i], b.Res[i])
		}
	}
	for i := range a.Lates {
		if a.Lates[i] != b.Lates[i] {
			t.Fatalf("Lates[%d] = %v vs %v", i, a.Lates[i], b.Lates[i])
		}
	}
}

// A clone must solve exactly like its original: same status, objective,
// node count, and assignment.
func TestCloneSolvesIdentically(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		rng := stats.NewStream(4242, seed)
		inst := buildRandomInstance(rng, 4, 4, 2, 2, seed%2 == 0)
		clone := inst.m.Clone()
		p := Params{NodeLimit: 3000, Workers: 1}
		orig := NewSolver(inst.m, p).Solve()
		copied := NewSolver(clone, p).Solve()
		resultsEqual(t, orig, copied)
		if orig.HasSolution() {
			// The clone's solution must verify against the original model too:
			// IDs and store layout are preserved.
			if err := inst.m.VerifySolution(&copied); err != nil {
				t.Fatalf("clone solution rejected by original model: %v", err)
			}
		}
	}
}

// Direct-mode models carry matchmaking variables; cloning must remap them.
func TestCloneDirectModeSolvesIdentically(t *testing.T) {
	m := NewModel(100_000)
	const numRes = 3
	var all []*Interval
	var lates []*Bool
	for j := 0; j < 5; j++ {
		var ivs []*Interval
		for i := 0; i < 4; i++ {
			iv := m.NewInterval("t", int64(10+7*i+j))
			iv.JobKey = j
			iv.Due = int64(60 + 10*j)
			m.NewResVar(iv, numRes)
			ivs = append(ivs, iv)
			all = append(all, iv)
		}
		late := m.NewBool("late")
		m.AddLateness(ivs, ivs[0].Due, late)
		lates = append(lates, late)
	}
	for r := 0; r < numRes; r++ {
		m.AddCumulative("res", r, 1, all)
	}
	m.Minimize(lates)

	clone := m.Clone()
	p := Params{NodeLimit: 5000, Workers: 1}
	orig := NewSolver(m, p).Solve()
	copied := NewSolver(clone, p).Solve()
	resultsEqual(t, orig, copied)
}

// Solving a clone must not disturb the original (and vice versa): the two
// models share no mutable state.
func TestCloneIndependence(t *testing.T) {
	rng := stats.NewStream(777, 3)
	inst := buildRandomInstance(rng, 3, 3, 2, 2, true)
	clone := inst.m.Clone()
	p := Params{NodeLimit: 2000, Workers: 1}

	// Solve the clone first (mutating its store through a full search), then
	// the original: the original must behave as if the clone never existed.
	fromClone := NewSolver(clone, p).Solve()
	orig := NewSolver(inst.m, p).Solve()
	rebuilt := NewSolver(buildRandomInstance(stats.NewStream(777, 3), 3, 3, 2, 2, true).m, p).Solve()
	resultsEqual(t, orig, rebuilt)
	resultsEqual(t, orig, fromClone)
}

func TestCloneRequiresRootLevel(t *testing.T) {
	m := NewModel(1000)
	m.NewInterval("t", 10)
	m.store.Push()
	defer func() {
		if recover() == nil {
			t.Fatal("Clone at a non-root level must panic")
		}
	}()
	m.Clone()
}
