package cp

import "testing"

func TestStoreSetGet(t *testing.T) {
	s := NewStore()
	a := s.alloc(10, 20)
	if s.get(a) != 10 || s.get(a+1) != 20 {
		t.Fatal("alloc/get broken")
	}
	s.set(a, 15)
	if s.get(a) != 15 {
		t.Fatal("set at root level failed")
	}
	if len(s.trail) != 0 {
		t.Fatal("root-level set must not trail")
	}
}

func TestStorePushPop(t *testing.T) {
	s := NewStore()
	a := s.alloc(1)
	s.Push()
	s.set(a, 2)
	s.Push()
	s.set(a, 3)
	if s.get(a) != 3 {
		t.Fatal("nested set failed")
	}
	s.Pop()
	if s.get(a) != 2 {
		t.Fatalf("pop restored %d, want 2", s.get(a))
	}
	s.Pop()
	if s.get(a) != 1 {
		t.Fatalf("pop restored %d, want 1", s.get(a))
	}
	if s.Level() != 0 {
		t.Fatal("level not back to 0")
	}
}

func TestStorePopAll(t *testing.T) {
	s := NewStore()
	a := s.alloc(7)
	for i := 0; i < 5; i++ {
		s.Push()
		s.set(a, int64(100+i))
	}
	s.PopAll()
	if s.get(a) != 7 || s.Level() != 0 {
		t.Fatalf("PopAll left value %d level %d", s.get(a), s.Level())
	}
}

func TestStoreMultipleWritesSameLevel(t *testing.T) {
	s := NewStore()
	a := s.alloc(1)
	s.Push()
	s.set(a, 2)
	s.set(a, 3)
	s.set(a, 3) // no-op write must not corrupt the trail
	s.Pop()
	if s.get(a) != 1 {
		t.Fatalf("got %d, want 1", s.get(a))
	}
}

func TestStorePopAtRootPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pop at root did not panic")
		}
	}()
	NewStore().Pop()
}
