package cp

import "testing"

// Three 10-unit tasks confined to a 25-unit window on one slot: no
// mandatory parts (timetabling is blind), but 30 > 25 energy.
func TestEnergyCheckCatchesOverloadedWindow(t *testing.T) {
	m := NewModel(1000)
	var ivs []*Interval
	for i := 0; i < 3; i++ {
		iv := m.NewInterval("t", 10)
		m.SetStartBounds(iv, 0, 15) // endMax 25
		ivs = append(ivs, iv)
	}
	cum := m.AddCumulative("r", -1, 1, ivs)
	// Timetabling alone sees nothing: no mandatory parts.
	if err := cum.c.refresh(m); err != nil {
		t.Fatalf("timetable should not fail: %v", err)
	}
	if len(cum.c.segs) != 0 {
		t.Fatal("unexpected mandatory parts")
	}
	// The energetic check must.
	if err := cum.c.energyCheck(m); err != errFail {
		t.Fatalf("energy check missed the overload: %v", err)
	}
	// And root propagation must therefore fail.
	e := newEngine(m)
	e.scheduleAll()
	if err := e.propagate(); err != errFail {
		t.Fatalf("propagation missed the overload: %v", err)
	}
}

func TestEnergyCheckAcceptsFeasibleWindow(t *testing.T) {
	m := NewModel(1000)
	var ivs []*Interval
	for i := 0; i < 3; i++ {
		iv := m.NewInterval("t", 10)
		m.SetStartBounds(iv, 0, 20) // endMax 30: exactly enough energy
		ivs = append(ivs, iv)
	}
	cum := m.AddCumulative("r", -1, 1, ivs)
	if err := cum.c.energyCheck(m); err != nil {
		t.Fatalf("feasible window rejected: %v", err)
	}
}

func TestEnergyCheckRespectsCapacity(t *testing.T) {
	m := NewModel(1000)
	var ivs []*Interval
	for i := 0; i < 4; i++ {
		iv := m.NewInterval("t", 10)
		m.SetStartBounds(iv, 0, 10) // endMax 20
		ivs = append(ivs, iv)
	}
	// 40 energy in a 20 window needs capacity 2.
	cum2 := m.AddCumulative("r2", -1, 2, ivs)
	if err := cum2.c.energyCheck(m); err != nil {
		t.Fatalf("capacity-2 window rejected: %v", err)
	}

	m2 := NewModel(1000)
	var ivs2 []*Interval
	for i := 0; i < 5; i++ {
		iv := m2.NewInterval("t", 10)
		m2.SetStartBounds(iv, 0, 10)
		ivs2 = append(ivs2, iv)
	}
	cum1 := m2.AddCumulative("r1", -1, 2, ivs2)
	if err := cum1.c.energyCheck(m2); err != errFail {
		t.Fatalf("50 > 40 energy accepted: %v", err)
	}
}

func TestEnergyCheckMixedWindows(t *testing.T) {
	// A nested tight window among loose tasks must still be detected.
	m := NewModel(10_000)
	loose := m.NewInterval("loose", 50) // whole horizon
	var tight []*Interval
	for i := 0; i < 2; i++ {
		iv := m.NewInterval("tight", 30)
		m.SetStartBounds(iv, 100, 120) // window [100,150): 60 > 50 energy
		tight = append(tight, iv)
	}
	cum := m.AddCumulative("r", -1, 1, append(tight, loose))
	if err := cum.c.energyCheck(m); err != errFail {
		t.Fatalf("nested overload missed: %v", err)
	}
}

// The check must strengthen branch-and-bound: a two-job instance where
// meeting both deadlines is energetically impossible should be proven
// 1-late without exhausting the node budget.
func TestEnergyCheckProvesBnBBoundInfeasible(t *testing.T) {
	m := NewModel(100_000)
	var lates []*Bool
	var ivs []*Interval
	for j := 0; j < 2; j++ {
		iv := m.NewInterval("t", 60)
		iv.JobKey = j
		iv.Due = 100
		ivs = append(ivs, iv)
		late := m.NewBool("late")
		m.AddLateness([]*Interval{iv}, 100, late)
		lates = append(lates, late)
	}
	m.AddCumulative("r", -1, 1, ivs)
	m.Minimize(lates)
	r := NewSolver(m, Params{NodeLimit: 100_000}).Solve()
	if r.Objective != 1 || r.Status != StatusOptimal {
		t.Fatalf("objective %d status %v, want 1/optimal", r.Objective, r.Status)
	}
	if err := m.VerifySolution(&r); err != nil {
		t.Fatal(err)
	}
	// 120 energy in a 100 window: the bound-0 round dies at the root, so
	// the node count stays tiny.
	if r.Nodes > 20 {
		t.Fatalf("%d nodes — energetic check did not prune the bound-0 round", r.Nodes)
	}
}

func TestEnergyCheckSkipsHugeTaskSets(t *testing.T) {
	m := NewModel(10_000_000)
	var ivs []*Interval
	for i := 0; i < energyCheckMaxTasks+1; i++ {
		iv := m.NewInterval("t", 10)
		m.SetStartBounds(iv, 0, 5) // wildly overloaded
		ivs = append(ivs, iv)
	}
	cum := m.AddCumulative("r", -1, 1, ivs)
	if err := cum.c.energyCheck(m); err != nil {
		t.Fatal("check should be skipped above the size cap")
	}
}
