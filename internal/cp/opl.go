package cp

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// WriteOPL renders the model in OPL-like syntax, the language the paper
// uses to express its formulation (Section IV). The output is meant for
// inspection and debugging — seeing exactly which intervals, precedences,
// capacities, and lateness reifications a given MRCP-RM invocation posted
// — and mirrors the paper's own snippets (dvar interval declarations,
// alternative(...) for matchmaking variables, pulse-based capacity sums).
func (m *Model) WriteOPL(w io.Writer) error {
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("// model: %d intervals, %d bools, %d resvars, %d constraints, horizon %d\n\n",
		len(m.intervals), len(m.bools), len(m.resvars), len(m.props), m.horizon); err != nil {
		return err
	}
	for _, iv := range m.intervals {
		line := fmt.Sprintf("dvar interval %s size %d in %d..%d;",
			oplName(iv.Name, iv.id), iv.Dur, m.StartMin(iv), m.EndMax(iv))
		if iv.Due != math.MaxInt64 {
			line += fmt.Sprintf(" // job %d, due %d", iv.JobKey, iv.Due)
		}
		if err := p("%s\n", line); err != nil {
			return err
		}
		// Heterogeneous tasks carry one optional mode per resource; emit the
		// alternative modes with their per-resource sizes (OPL's multi-mode
		// interval idiom) so the export preserves the machine-dependent
		// durations the in-memory model schedules with.
		if durs := iv.Durations(); durs != nil {
			for r, d := range durs {
				if err := p("dvar interval %s_mode%d optional size %d; // mode of %s on resource %d\n",
					oplName(iv.Name, iv.id), r, d, oplName(iv.Name, iv.id), r); err != nil {
					return err
				}
			}
		}
	}
	for _, b := range m.bools {
		if err := p("dvar boolean %s;\n", oplName(b.Name, b.id)); err != nil {
			return err
		}
	}
	if len(m.objBools) > 0 {
		names := make([]string, len(m.objBools))
		for i, b := range m.objBools {
			names[i] = oplName(b.Name, b.id)
		}
		if err := p("\nminimize %s;\n", joinPlus(names)); err != nil {
			return err
		}
	}
	if err := p("\nsubject to {\n"); err != nil {
		return err
	}
	for _, rv := range m.resvars {
		if err := p("  alternative(%s, resources 0..%d); // x_tr, domain %v\n",
			oplName(rv.iv.Name, rv.iv.id), rv.NumRes-1, m.ResDomain(rv)); err != nil {
			return err
		}
	}
	for _, prop := range m.props {
		var err error
		switch c := prop.(type) {
		case *phaseBarrier:
			err = p("  forall r in {%s}: startOf(r) >= max over {%s} of endOf(m); // constraint 3\n",
				ivNames(m, c.succs), ivNames(m, c.preds))
		case *lateness:
			err = p("  (max over {%s} of endOf(t)) > %d => %s == 1; // constraint 4\n",
				ivNames(m, c.terminals), c.deadline, oplName(c.late.Name, c.late.id))
		case *sumLE:
			names := make([]string, len(c.bools))
			for i, b := range c.bools {
				names[i] = oplName(b.Name, b.id)
			}
			err = p("  %s <= %d; // branch-and-bound cut\n", joinPlus(names), c.bound)
		case *cumulative:
			if c.demands != nil {
				err = p("  sum over {%s} of pulse(t, demand[t] in %v) <= %d; // cumulative %q, per-task demands\n",
					ivNames(m, c.tasks), c.demands, c.capacity, c.name)
			} else {
				err = p("  sum over {%s} of pulse(t, demand) <= %d; // cumulative %q\n",
					ivNames(m, c.tasks), c.capacity, c.name)
			}
		}
		if err != nil {
			return err
		}
	}
	return p("}\n")
}

// oplName builds a stable, unique identifier from a (possibly duplicated)
// model name and the element's index.
func oplName(name string, id int) string {
	if name == "" {
		return fmt.Sprintf("v%d", id)
	}
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return fmt.Sprintf("%s_%d", string(out), id)
}

func ivNames(m *Model, ivs []*Interval) string {
	names := make([]string, len(ivs))
	for i, iv := range ivs {
		names[i] = oplName(iv.Name, iv.id)
	}
	sort.Strings(names)
	const maxShown = 8
	if len(names) > maxShown {
		return fmt.Sprintf("%s, ... (%d total)", joinComma(names[:maxShown]), len(names))
	}
	return joinComma(names)
}

func joinComma(names []string) string { return join(names, ", ") }

func joinPlus(names []string) string { return join(names, " + ") }

func join(names []string, sep string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += sep
		}
		out += n
	}
	return out
}
