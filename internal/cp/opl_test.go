package cp

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteOPLRendersAllConstraintKinds(t *testing.T) {
	m := NewModel(10_000)
	mp := m.NewInterval("t0_m1", 100)
	mp.JobKey = 0
	mp.Due = 5000
	rd := m.NewInterval("t0_r1", 50)
	rd.JobKey = 0
	rd.Due = 5000
	m.NewResVar(mp, 3)
	m.AddPhaseBarrier([]*Interval{mp}, []*Interval{rd})
	late := m.NewBool("late_0")
	m.AddLateness([]*Interval{rd}, 5000, late)
	m.AddCumulative("map", 0, 2, []*Interval{mp})
	m.AddSumLE([]*Bool{late}, 1)
	m.Minimize([]*Bool{late})

	var buf bytes.Buffer
	if err := m.WriteOPL(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"dvar interval t0_m1_0 size 100",
		"dvar interval t0_r1_1 size 50",
		"dvar boolean late_0_0;",
		"minimize late_0_0;",
		"alternative(t0_m1_0, resources 0..2)",
		"constraint 3",
		"constraint 4",
		"branch-and-bound cut",
		"cumulative \"map\"",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("OPL output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteOPLTruncatesLongLists(t *testing.T) {
	m := NewModel(1_000_000)
	var ivs []*Interval
	for i := 0; i < 20; i++ {
		ivs = append(ivs, m.NewInterval("t", 10))
	}
	m.AddCumulative("r", -1, 4, ivs)
	var buf bytes.Buffer
	if err := m.WriteOPL(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(20 total)") {
		t.Fatalf("long task list not truncated:\n%s", buf.String())
	}
}

func TestOplNameSanitizes(t *testing.T) {
	if got := oplName("t3_m1", 7); got != "t3_m1_7" {
		t.Fatalf("got %q", got)
	}
	if got := oplName("weird name-x", 1); got != "weird_name_x_1" {
		t.Fatalf("got %q", got)
	}
	if got := oplName("", 4); got != "v4" {
		t.Fatalf("got %q", got)
	}
}

// The heterogeneous export, golden: per-resource optional mode intervals
// for duration-table tasks and per-task demand annotations on vector
// cumulatives, byte for byte.
func TestWriteOPLHeteroGolden(t *testing.T) {
	m := NewModel(100)
	iv := m.NewInterval("t0_m1", 8)
	iv.JobKey = 0
	iv.Due = 40
	m.NewResVar(iv, 2)
	m.SetResDurations(iv, []int64{4, 8})
	m.AddCumulative("slot_r0", 0, 1, []*Interval{iv})
	m.AddCumulativeDemands("mem_r0", 0, 16, []*Interval{iv}, []int64{3})
	late := m.NewBool("late_0")
	m.AddLateness([]*Interval{iv}, 40, late)
	m.Minimize([]*Bool{late})

	var buf bytes.Buffer
	if err := m.WriteOPL(&buf); err != nil {
		t.Fatal(err)
	}
	const golden = `// model: 1 intervals, 1 bools, 1 resvars, 3 constraints, horizon 100

dvar interval t0_m1_0 size 8 in 0..100; // job 0, due 40
dvar interval t0_m1_0_mode0 optional size 4; // mode of t0_m1_0 on resource 0
dvar interval t0_m1_0_mode1 optional size 8; // mode of t0_m1_0 on resource 1
dvar boolean late_0_0;

minimize late_0_0;

subject to {
  alternative(t0_m1_0, resources 0..1); // x_tr, domain [0 1]
  sum over {t0_m1_0} of pulse(t, demand) <= 1; // cumulative "slot_r0"
  sum over {t0_m1_0} of pulse(t, demand[t] in [3]) <= 16; // cumulative "mem_r0", per-task demands
  (max over {t0_m1_0} of endOf(t)) > 40 => late_0_0 == 1; // constraint 4
}
`
	if got := buf.String(); got != golden {
		t.Fatalf("hetero OPL output differs from golden:\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}
}
