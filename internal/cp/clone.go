package cp

import "fmt"

// Clone returns a deep copy of the model that shares no mutable state with
// the original: the copy has its own store, variables, propagators, and
// watch lists, so it can be solved concurrently with (or independently of)
// the original. Variable IDs, store layout, and propagator order are
// preserved, which makes a Result produced from a clone directly
// interpretable against the original model (and vice versa) — the portfolio
// search relies on this to merge worker solutions.
//
// Clone must be called at the root level (no open decision levels); it
// panics otherwise, since trailed search state cannot be meaningfully
// copied mid-search.
func (m *Model) Clone() *Model {
	if m.store.Level() != 0 {
		panic("cp: Model.Clone requires the store at root level")
	}
	c := &Model{
		store:     &Store{cells: append([]int64(nil), m.store.cells...)},
		horizon:   m.horizon,
		ivWatch:   cloneWatch(m.ivWatch),
		boolWatch: cloneWatch(m.boolWatch),
		rvWatch:   cloneWatch(m.rvWatch),
	}

	c.intervals = make([]*Interval, len(m.intervals))
	for i, iv := range m.intervals {
		cp := *iv
		cp.resVar = nil // re-linked below
		c.intervals[i] = &cp
	}
	c.bools = make([]*Bool, len(m.bools))
	for i, b := range m.bools {
		cp := *b
		c.bools[i] = &cp
	}
	c.resvars = make([]*ResVar, len(m.resvars))
	for i, rv := range m.resvars {
		cp := *rv
		cp.iv = c.intervals[rv.iv.id]
		cp.iv.resVar = &cp
		c.resvars[i] = &cp
	}

	mapIvs := func(ivs []*Interval) []*Interval {
		out := make([]*Interval, len(ivs))
		for i, iv := range ivs {
			out[i] = c.intervals[iv.id]
		}
		return out
	}
	mapBools := func(bs []*Bool) []*Bool {
		out := make([]*Bool, len(bs))
		for i, b := range bs {
			out[i] = c.bools[b.id]
		}
		return out
	}

	// Rebuild propagators in registration order so the watch-list indices
	// copied above stay valid.
	c.props = make([]propagator, 0, len(m.props))
	for _, p := range m.props {
		switch p := p.(type) {
		case *phaseBarrier:
			c.props = append(c.props, &phaseBarrier{preds: mapIvs(p.preds), succs: mapIvs(p.succs)})
		case *lateness:
			c.props = append(c.props, &lateness{
				terminals: mapIvs(p.terminals), deadline: p.deadline, late: c.bools[p.late.id]})
		case *sumLE:
			sl := &sumLE{bools: mapBools(p.bools), bound: p.bound}
			c.props = append(c.props, sl)
			c.sumLE = sl
		case *cumulative:
			cc := newCumulative(p.name, p.resIndex, p.capacity, mapIvs(p.tasks), p.demands)
			c.props = append(c.props, cc)
			c.cumuls = append(c.cumuls, cc)
		default:
			panic(fmt.Sprintf("cp: Model.Clone: unknown propagator type %T", p))
		}
	}

	if len(m.objBools) > 0 {
		c.objBools = mapBools(m.objBools)
	}
	if m.lateJobKey != nil {
		c.lateJobKey = make(map[int]int, len(m.lateJobKey))
		for id, jk := range m.lateJobKey {
			c.lateJobKey[id] = jk
		}
	}
	return c
}

func cloneWatch(w [][]int) [][]int {
	out := make([][]int, len(w))
	for i, lst := range w {
		if len(lst) > 0 {
			out[i] = append([]int(nil), lst...)
		}
	}
	return out
}
