package cp

import (
	"testing"

	"mrcprm/internal/stats"
)

// benchInstance builds one moderately hard combined-mode instance (the
// shape MRCP-RM generates) for the solver micro-benchmarks.
func benchInstance() *Model {
	rng := stats.NewStream(99, 1)
	return buildRandomInstance(rng, 12, 6, 3, 2, true).m
}

// benchDirectInstance builds a direct-mode instance with matchmaking
// variables, exercising pickResource and the per-resource cumulatives.
func benchDirectInstance() *Model {
	m := NewModel(200_000)
	const numRes = 4
	var all []*Interval
	var lates []*Bool
	for j := 0; j < 10; j++ {
		var ivs []*Interval
		for i := 0; i < 5; i++ {
			iv := m.NewInterval("t", int64(10+3*i+2*j))
			iv.JobKey = j
			iv.Due = int64(80 + 15*j)
			m.NewResVar(iv, numRes)
			ivs = append(ivs, iv)
			all = append(all, iv)
		}
		late := m.NewBool("late")
		m.AddLateness(ivs, ivs[0].Due, late)
		lates = append(lates, late)
	}
	for r := 0; r < numRes; r++ {
		m.AddCumulative("res", r, 1, all)
	}
	m.Minimize(lates)
	return m
}

// benchSolve measures one full solve per iteration (clone + search); the
// clone isolates iterations, and its cost is part of the portfolio's
// per-worker setup anyway.
func benchSolve(b *testing.B, base *Model, p Params) {
	b.ReportAllocs()
	b.ResetTimer()
	var nodes int64
	for i := 0; i < b.N; i++ {
		r := NewSolver(base.Clone(), p).Solve()
		nodes += r.Nodes
	}
	b.ReportMetric(float64(nodes)/float64(b.N), "nodes/op")
}

func BenchmarkSolveCombined(b *testing.B) {
	benchSolve(b, benchInstance(), Params{NodeLimit: 4000, Workers: 1})
}

func BenchmarkSolveDirect(b *testing.B) {
	benchSolve(b, benchDirectInstance(), Params{NodeLimit: 4000, Workers: 1})
}

func BenchmarkSolvePortfolio4(b *testing.B) {
	benchSolve(b, benchInstance(), Params{NodeLimit: 4000, Workers: 4})
}
