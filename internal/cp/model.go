package cp

import (
	"fmt"
	"math"
	"math/bits"
)

// Interval is a task activity with a fixed duration whose start time is a
// decision variable — the a_t variable of the paper's CP formulation. The
// solver prunes the inclusive start-time window [StartMin, StartMax].
type Interval struct {
	Name   string
	Dur    int64 // execution time e_t, in model time units (ms)
	Demand int64 // resource capacity requirement q_t (1 in the paper)

	// Due is the deadline of the owning job, used by the EDF and
	// least-laxity search orderings. Not a constraint by itself.
	Due int64
	// JobKey identifies the owning job for the job-id search ordering.
	JobKey int

	id      int
	base    int32 // store cells: +0 startMin, +1 startMax, +2 postponed
	origMin int64
	origMax int64
	resVar  *ResVar // non-nil when matchmaking is part of the model

	// durs, when non-nil, is the per-resource duration table of a
	// heterogeneous model: running on resource r takes durs[r] time units.
	// nil keeps the uniform fast path where Dur holds for every resource.
	// durLo/durHi cache min/max over the table.
	durs  []int64
	durLo int64
	durHi int64
}

// Durations returns the per-resource duration table, or nil for a uniform
// interval.
func (iv *Interval) Durations() []int64 { return iv.durs }

// ID returns the interval's dense model index.
func (iv *Interval) ID() int { return iv.id }

// ResVar returns the matchmaking variable attached to this interval, or nil
// when the interval is pre-assigned (combined-resource mode or frozen task).
func (iv *Interval) ResVar() *ResVar { return iv.resVar }

// Bool is a 0/1 decision variable; the paper's N_j lateness indicators.
type Bool struct {
	Name string
	id   int
	base int32 // +0 min, +1 max
}

// ID returns the bool's dense model index.
func (b *Bool) ID() int { return b.id }

// ResVar is a finite-domain variable ranging over resource indices
// [0, NumRes) — the x_tr matchmaking variables, represented as a bitset.
type ResVar struct {
	Name   string
	NumRes int
	id     int
	base   int32 // bitset words
	words  int
	iv     *Interval
}

// ID returns the resvar's dense model index.
func (rv *ResVar) ID() int { return rv.id }

// Model is a constraint program under construction. Build it at the root
// level (variables, bounds, constraints), then hand it to a Solver. A model
// is intended for a single Solve call, matching the paper's regeneration of
// the OPL model on every MRCP-RM invocation.
type Model struct {
	store     *Store
	horizon   int64
	intervals []*Interval
	bools     []*Bool
	resvars   []*ResVar
	props     []propagator
	cumuls    []*cumulative

	// watchers[kind][varID] lists the propagators to wake on a change.
	ivWatch   [][]int
	boolWatch [][]int
	rvWatch   [][]int

	sumLE    *sumLE
	objBools []*Bool
	// lateJobKey maps a lateness Bool's ID to the owning job's key, for
	// the solver's squeaky-wheel boost.
	lateJobKey map[int]int
}

// NewModel creates an empty model. horizon is the exclusive upper bound on
// any task end time; every interval's start window defaults to
// [0, horizon-dur].
func NewModel(horizon int64) *Model {
	if horizon <= 0 {
		panic("cp: model horizon must be positive")
	}
	return &Model{store: NewStore(), horizon: horizon}
}

// Horizon returns the model horizon.
func (m *Model) Horizon() int64 { return m.horizon }

// Intervals returns all intervals in creation order.
func (m *Model) Intervals() []*Interval { return m.intervals }

// Bools returns all boolean variables in creation order.
func (m *Model) Bools() []*Bool { return m.bools }

// NewInterval adds a task interval with the given duration and demand 1.
// Its start window is [0, horizon-dur].
func (m *Model) NewInterval(name string, dur int64) *Interval {
	if dur <= 0 {
		panic(fmt.Sprintf("cp: interval %q duration %d must be positive", name, dur))
	}
	if dur > m.horizon {
		panic(fmt.Sprintf("cp: interval %q duration %d exceeds horizon %d", name, dur, m.horizon))
	}
	iv := &Interval{
		Name:    name,
		Dur:     dur,
		Demand:  1,
		Due:     math.MaxInt64,
		id:      len(m.intervals),
		origMin: 0,
		origMax: m.horizon - dur,
	}
	iv.base = m.store.alloc(iv.origMin, iv.origMax, 0)
	m.intervals = append(m.intervals, iv)
	m.ivWatch = append(m.ivWatch, nil)
	return iv
}

// SetResDurations attaches a per-resource duration table to an interval
// with a resvar: running on resource r takes durs[r] time units. Call it
// after NewResVar and before posting constraints over the interval. Every
// entry must be positive and no larger than the duration the interval was
// created with (create heterogeneous intervals with their slowest-resource
// duration so the horizon bound stays valid for every mode).
func (m *Model) SetResDurations(iv *Interval, durs []int64) {
	if iv.resVar == nil {
		panic(fmt.Sprintf("cp: interval %q needs a resvar before durations", iv.Name))
	}
	if len(durs) != iv.resVar.NumRes {
		panic(fmt.Sprintf("cp: interval %q duration table has %d entries for %d resources",
			iv.Name, len(durs), iv.resVar.NumRes))
	}
	lo, hi := durs[0], durs[0]
	for _, d := range durs {
		if d <= 0 {
			panic(fmt.Sprintf("cp: interval %q has non-positive mode duration %d", iv.Name, d))
		}
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	if hi > iv.Dur {
		panic(fmt.Sprintf("cp: interval %q mode duration %d exceeds nominal duration %d",
			iv.Name, hi, iv.Dur))
	}
	if lo == hi && hi == iv.Dur {
		return // a constant table is the uniform case; keep the fast path
	}
	iv.durs = append([]int64(nil), durs...)
	iv.durLo, iv.durHi = lo, hi
}

// SetStartBounds narrows an interval's start window at build time.
func (m *Model) SetStartBounds(iv *Interval, min, max int64) {
	if min > max {
		panic(fmt.Sprintf("cp: interval %q start bounds [%d,%d] empty", iv.Name, min, max))
	}
	if min < 0 || max > m.horizon-iv.Dur {
		panic(fmt.Sprintf("cp: interval %q start bounds [%d,%d] outside [0,%d]",
			iv.Name, min, max, m.horizon-iv.Dur))
	}
	iv.origMin, iv.origMax = min, max
	m.store.set(iv.base+0, min)
	m.store.set(iv.base+1, max)
}

// FixStart pins an interval's start at build time; used for tasks that have
// already started executing (Table 2, line 11).
func (m *Model) FixStart(iv *Interval, start int64) {
	m.SetStartBounds(iv, start, start)
}

// StartMin returns the current lower bound of the interval's start.
func (m *Model) StartMin(iv *Interval) int64 { return m.store.get(iv.base + 0) }

// StartMax returns the current upper bound of the interval's start.
func (m *Model) StartMax(iv *Interval) int64 { return m.store.get(iv.base + 1) }

// DurMin returns the smallest duration the interval can still take: its
// uniform duration, or the minimum of the duration table over the resvar's
// remaining domain.
func (m *Model) DurMin(iv *Interval) int64 {
	if iv.durs == nil {
		return iv.Dur
	}
	rv := iv.resVar
	lo := int64(math.MaxInt64)
	for w := 0; w < rv.words; w++ {
		word := uint64(m.store.get(rv.base + int32(w)))
		for word != 0 {
			if d := iv.durs[w*64+bits.TrailingZeros64(word)]; d < lo {
				lo = d
			}
			word &= word - 1
		}
	}
	if lo == math.MaxInt64 {
		return iv.durLo // empty domain; the search is about to fail anyway
	}
	return lo
}

// DurMax returns the largest duration the interval can still take.
func (m *Model) DurMax(iv *Interval) int64 {
	if iv.durs == nil {
		return iv.Dur
	}
	rv := iv.resVar
	hi := int64(-1)
	for w := 0; w < rv.words; w++ {
		word := uint64(m.store.get(rv.base + int32(w)))
		for word != 0 {
			if d := iv.durs[w*64+bits.TrailingZeros64(word)]; d > hi {
				hi = d
			}
			word &= word - 1
		}
	}
	if hi < 0 {
		return iv.durHi
	}
	return hi
}

// DurOn returns the interval's duration on resource r.
func (iv *Interval) DurOn(r int) int64 {
	if iv.durs == nil || r < 0 || r >= len(iv.durs) {
		return iv.Dur
	}
	return iv.durs[r]
}

// EndMin returns the current lower bound of the interval's end.
func (m *Model) EndMin(iv *Interval) int64 { return m.StartMin(iv) + m.DurMin(iv) }

// EndMax returns the current upper bound of the interval's end.
func (m *Model) EndMax(iv *Interval) int64 { return m.StartMax(iv) + m.DurMax(iv) }

// Fixed reports whether the interval's start is decided.
func (m *Model) Fixed(iv *Interval) bool { return m.StartMin(iv) == m.StartMax(iv) }

func (m *Model) postponed(iv *Interval) bool { return m.store.get(iv.base+2) != 0 }

// NewBool adds a 0/1 variable.
func (m *Model) NewBool(name string) *Bool {
	b := &Bool{Name: name, id: len(m.bools)}
	b.base = m.store.alloc(0, 1)
	m.bools = append(m.bools, b)
	m.boolWatch = append(m.boolWatch, nil)
	return b
}

// BoolMin returns the current lower bound of the bool (1 means fixed true).
func (m *Model) BoolMin(b *Bool) int64 { return m.store.get(b.base + 0) }

// BoolMax returns the current upper bound of the bool (0 means fixed false).
func (m *Model) BoolMax(b *Bool) int64 { return m.store.get(b.base + 1) }

// BoolFixed reports whether the bool is decided.
func (m *Model) BoolFixed(b *Bool) bool { return m.BoolMin(b) == m.BoolMax(b) }

// NewResVar attaches a matchmaking variable over numRes resources to the
// interval. Initially every resource is allowed.
func (m *Model) NewResVar(iv *Interval, numRes int) *ResVar {
	if numRes <= 0 {
		panic("cp: resvar needs at least one resource")
	}
	if iv.resVar != nil {
		panic(fmt.Sprintf("cp: interval %q already has a resvar", iv.Name))
	}
	words := (numRes + 63) / 64
	rv := &ResVar{Name: iv.Name + ".res", NumRes: numRes, id: len(m.resvars), words: words, iv: iv}
	vals := make([]int64, words)
	for r := 0; r < numRes; r++ {
		vals[r/64] |= 1 << (r % 64)
	}
	rv.base = m.store.alloc(vals...)
	m.resvars = append(m.resvars, rv)
	m.rvWatch = append(m.rvWatch, nil)
	iv.resVar = rv
	return rv
}

// ResAllowed reports whether resource r is still in the domain.
func (m *Model) ResAllowed(rv *ResVar, r int) bool {
	if r < 0 || r >= rv.NumRes {
		return false
	}
	return m.store.get(rv.base+int32(r/64))&(1<<(r%64)) != 0
}

// ResDomainSize returns the number of resources still allowed.
func (m *Model) ResDomainSize(rv *ResVar) int {
	n := 0
	for w := 0; w < rv.words; w++ {
		n += bits.OnesCount64(uint64(m.store.get(rv.base + int32(w))))
	}
	return n
}

// ResFixedValue returns the assigned resource if the domain is a singleton,
// else -1.
func (m *Model) ResFixedValue(rv *ResVar) int {
	found := -1
	for w := 0; w < rv.words; w++ {
		word := uint64(m.store.get(rv.base + int32(w)))
		for word != 0 {
			r := w*64 + bits.TrailingZeros64(word)
			if found >= 0 {
				return -1
			}
			found = r
			word &= word - 1
		}
	}
	return found
}

// ResDomain returns the allowed resources in increasing order.
func (m *Model) ResDomain(rv *ResVar) []int {
	return m.AppendResDomain(rv, nil)
}

// AppendResDomain appends the allowed resources in increasing order to buf
// and returns it, reusing buf's backing storage — the allocation-free
// domain iteration for the search hot path.
func (m *Model) AppendResDomain(rv *ResVar, buf []int) []int {
	for w := 0; w < rv.words; w++ {
		word := uint64(m.store.get(rv.base + int32(w)))
		for word != 0 {
			buf = append(buf, w*64+bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
	return buf
}

// FixRes pins a resvar at build time (frozen tasks keep their resource).
func (m *Model) FixRes(rv *ResVar, r int) {
	if r < 0 || r >= rv.NumRes {
		panic(fmt.Sprintf("cp: resource %d out of range for %q", r, rv.Name))
	}
	for w := 0; w < rv.words; w++ {
		var word int64
		if w == r/64 {
			word = 1 << (r % 64)
		}
		m.store.set(rv.base+int32(w), word)
	}
}

// ForbidRes removes one resource from a resvar's domain at build time
// (tasks must avoid resources that are down). Emptying the domain is
// allowed here; the root propagation pass reports it as infeasible.
func (m *Model) ForbidRes(rv *ResVar, r int) {
	if r < 0 || r >= rv.NumRes {
		panic(fmt.Sprintf("cp: resource %d out of range for %q", r, rv.Name))
	}
	w := rv.base + int32(r/64)
	m.store.set(w, m.store.get(w)&^(1<<(r%64)))
}

// addProp registers a propagator and returns its index.
func (m *Model) addProp(p propagator) int {
	m.props = append(m.props, p)
	return len(m.props) - 1
}

func (m *Model) watchInterval(iv *Interval, prop int) {
	m.ivWatch[iv.id] = append(m.ivWatch[iv.id], prop)
}

func (m *Model) watchBool(b *Bool, prop int) {
	m.boolWatch[b.id] = append(m.boolWatch[b.id], prop)
}

func (m *Model) watchResVar(rv *ResVar, prop int) {
	m.rvWatch[rv.id] = append(m.rvWatch[rv.id], prop)
}

// AddPhaseBarrier posts Constraint 3 of the formulation for one job: every
// succ (reduce task) may start only after every pred (map task) has ended.
func (m *Model) AddPhaseBarrier(preds, succs []*Interval) {
	if len(preds) == 0 || len(succs) == 0 {
		return
	}
	p := &phaseBarrier{preds: preds, succs: succs}
	idx := m.addProp(p)
	for _, pr := range preds {
		m.watchInterval(pr, idx)
		// A duration-table pred's EndMin moves when its resvar narrows.
		if pr.durs != nil {
			m.watchResVar(pr.resVar, idx)
		}
	}
	for _, su := range succs {
		m.watchInterval(su, idx)
	}
}

// AddMaxEndBeforeStart posts Constraint 3 for a single successor; it is a
// convenience wrapper over AddPhaseBarrier.
func (m *Model) AddMaxEndBeforeStart(preds []*Interval, succ *Interval) {
	m.AddPhaseBarrier(preds, []*Interval{succ})
}

// AddLateness posts Constraint 4: late is forced to 1 when the job's last
// terminal task must finish after the deadline; conversely, deciding
// late = 0 enforces the deadline on every terminal task.
func (m *Model) AddLateness(terminals []*Interval, deadline int64, late *Bool) {
	if len(terminals) == 0 {
		panic("cp: lateness constraint needs at least one terminal task")
	}
	p := &lateness{terminals: terminals, deadline: deadline, late: late}
	if m.lateJobKey == nil {
		m.lateJobKey = make(map[int]int)
	}
	m.lateJobKey[late.id] = terminals[0].JobKey
	idx := m.addProp(p)
	for _, t := range terminals {
		m.watchInterval(t, idx)
		// A duration-table terminal's end bounds move when its resvar narrows.
		if t.durs != nil {
			m.watchResVar(t.resVar, idx)
		}
	}
	m.watchBool(late, idx)
}

// AddSumLE posts Σ bools <= bound, the branch-and-bound cut on the number of
// late jobs. At most one such constraint may be posted per model; the solver
// tightens the bound between branch-and-bound rounds.
func (m *Model) AddSumLE(bools []*Bool, bound int) *SumLEHandle {
	if m.sumLE != nil {
		panic("cp: model already has a SumLE constraint")
	}
	p := &sumLE{bools: bools, bound: bound}
	idx := m.addProp(p)
	for _, b := range bools {
		m.watchBool(b, idx)
	}
	m.sumLE = p
	return &SumLEHandle{p: p}
}

// SumLEHandle lets the solver tighten the late-job bound between rounds.
type SumLEHandle struct{ p *sumLE }

// SetBound replaces the bound. Valid at the root level; mid-search the
// bound may only be tightened (the solver's opportunistic portfolio mode
// does this when importing a better incumbent from another worker —
// subtrees already explored were covered by the looser, still valid cut).
func (h *SumLEHandle) SetBound(b int) { h.p.bound = b }

// Bound returns the current bound.
func (h *SumLEHandle) Bound() int { return h.p.bound }

// AddCumulative posts Constraints 5/6 for one resource: at every instant the
// total demand of tasks executing on it is at most capacity. Tasks whose
// resvar is nil (or which have no resvar) are always on this resource;
// tasks with a resvar contribute only while this resource index remains in
// their domain. resIndex identifies this resource in the resvar domains;
// pass -1 for a combined resource that no resvar refers to.
func (m *Model) AddCumulative(name string, resIndex int, capacity int64, tasks []*Interval) *Cumulative {
	return m.AddCumulativeDemands(name, resIndex, capacity, tasks, nil)
}

// AddCumulativeDemands is AddCumulative with an explicit per-task demand
// vector: task tasks[i] consumes demands[i] units of this dimension while
// executing. It is how parallel resource dimensions (e.g. memory next to
// cpu slots) are posted — one cumulative per (resource, dimension), each
// with its own demand vector. A nil demands falls back to each task's
// Demand field.
func (m *Model) AddCumulativeDemands(name string, resIndex int, capacity int64, tasks []*Interval, demands []int64) *Cumulative {
	if capacity <= 0 {
		panic(fmt.Sprintf("cp: cumulative %q capacity %d must be positive", name, capacity))
	}
	if demands != nil && len(demands) != len(tasks) {
		panic(fmt.Sprintf("cp: cumulative %q has %d demands for %d tasks", name, len(demands), len(tasks)))
	}
	c := newCumulative(name, resIndex, capacity, tasks, demands)
	idx := m.addProp(c)
	for _, t := range tasks {
		m.watchInterval(t, idx)
		if t.resVar != nil && (resIndex >= 0 || t.durs != nil) {
			m.watchResVar(t.resVar, idx)
		}
	}
	m.cumuls = append(m.cumuls, c)
	return &Cumulative{c: c}
}

// Cumulative is a public handle over a posted cumulative constraint.
type Cumulative struct{ c *cumulative }

// Name returns the constraint's resource name.
func (c *Cumulative) Name() string { return c.c.name }
