package cp

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// The parallel portfolio search: K diversified workers race on independent
// clones of the model. Worker 0 is the canonical single-threaded search
// (bit-identical to Params.Workers == 1); workers 1..K-1 perturb ordering
// tie-breaks with a seeded jitter and rebuild a seeded relaxation
// neighborhood on every improvement pass, so each explores a different part
// of the set-times space. In opportunistic mode the workers additionally
// share their best incumbent objective through a lock-free bound, letting
// every branch-and-bound round prune against the global best.
//
// Determinism contract (default mode): with fixed Params and no wall-clock
// time limit, every worker is a deterministic function of (model, params,
// seed), and the winner is chosen by the (objective, canonical-solution
// lexicographic, worker id) tie-break — so repeated seeded node-limited
// runs are byte-identical, and the merged objective is never worse than a
// Workers == 1 run on the same budget (worker 0 IS that run).

// portfolioMinIntervals is the model size floor below which a portfolio is
// not worth its cloning and goroutine overhead: tiny solves finish in
// microseconds and stay on the classic single-threaded path.
const portfolioMinIntervals = 16

// provedNothing marks a worker that has proved no lower bound on the
// objective (see Solver.provedLE).
const provedNothing = math.MinInt32

// DefaultWorkers is the portfolio width used when Params.Workers is 0: one
// worker per available CPU, capped at 8 — diversification returns diminish
// beyond that on the paper's models.
func DefaultWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	if w < 1 {
		w = 1
	}
	return w
}

// sharedBound is the portfolio's incumbent board: the best objective
// published by any worker, or math.MaxInt64 when none exists yet. Only used
// in opportunistic mode; deterministic portfolios keep workers isolated.
type sharedBound struct {
	best atomic.Int64
}

func newSharedBound() *sharedBound {
	sb := &sharedBound{}
	sb.best.Store(math.MaxInt64)
	return sb
}

// publish lowers the board to obj if it improves it (monotone, lock-free).
func (sb *sharedBound) publish(obj int64) {
	for {
		cur := sb.best.Load()
		if obj >= cur {
			return
		}
		if sb.best.CompareAndSwap(cur, obj) {
			return
		}
	}
}

// splitmix64 is the SplitMix64 mixer — the seed/jitter hash used for worker
// diversification (no dependency on math/rand, fully deterministic).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// lnsPick decides whether job jk joins this worker's relaxation
// neighborhood on the given improvement pass (about one job in four).
func (s *Solver) lnsPick(pass, jk int) bool {
	return splitmix64(s.seed^splitmix64(uint64(pass))^uint64(jk)*0x9e3779b97f4a7c15)%4 == 0
}

// solvePortfolio runs k workers and merges their results. Worker 0 reuses
// this solver and the original model; the others solve clones.
func (s *Solver) solvePortfolio(k int) Result {
	start := time.Now()
	if s.params.Opportunistic {
		s.shared = newSharedBound()
	}
	solvers := make([]*Solver, k)
	solvers[0] = s
	for w := 1; w < k; w++ {
		ws := NewSolver(s.m.Clone(), s.params)
		ws.seed = uint64(w)
		ws.shared = s.shared
		solvers[w] = ws
	}
	results := make([]Result, k)
	panics := make([]any, k)
	var wg sync.WaitGroup
	wg.Add(k)
	for w := 0; w < k; w++ {
		go func(w int) {
			defer wg.Done()
			defer func() { panics[w] = recover() }()
			results[w] = solvers[w].solve()
		}(w)
	}
	wg.Wait()
	for _, p := range panics {
		// Re-raise a worker panic on the calling goroutine so existing
		// recovery paths (the manager's solve wrapper) still catch it.
		if p != nil {
			panic(p)
		}
	}
	return mergePortfolio(solvers, results, start)
}

// betterResult reports whether a strictly beats b under the portfolio's
// deterministic ranking: having a solution, then objective, then the
// canonical solution lexicographic order (Starts, Res, Lates). Equal
// results rank by worker index through the caller's scan order.
func betterResult(a, b *Result) bool {
	if a.HasSolution() != b.HasSolution() {
		return a.HasSolution()
	}
	if !a.HasSolution() {
		return false
	}
	if a.Objective != b.Objective {
		return a.Objective < b.Objective
	}
	for i := range a.Starts {
		if a.Starts[i] != b.Starts[i] {
			return a.Starts[i] < b.Starts[i]
		}
	}
	for i := range a.Res {
		if a.Res[i] != b.Res[i] {
			return a.Res[i] < b.Res[i]
		}
	}
	for i := range a.Lates {
		if a.Lates[i] != b.Lates[i] {
			return !a.Lates[i]
		}
	}
	return false
}

// mergePortfolio selects the winning result and folds every worker's search
// statistics into it. Counters are summed; the timeline (and the first
// solution it implies) is the winner's own history.
func mergePortfolio(solvers []*Solver, results []Result, start time.Time) Result {
	win := 0
	for w := 1; w < len(results); w++ {
		if betterResult(&results[w], &results[win]) {
			win = w
		}
	}
	merged := results[win]
	st := merged.Search
	st.Workers = len(results)
	st.Winner = win
	st.Nodes, st.Backtracks, st.Propagations = 0, 0, 0
	st.Rounds, st.ImprovePasses, st.ImproveAccepts, st.Solutions = 0, 0, 0, 0
	st.NodeLimitHit, st.TimeLimitHit = false, false
	st.BoundImports = 0
	for w := range results {
		ws := &results[w].Search
		st.Nodes += ws.Nodes
		st.Backtracks += ws.Backtracks
		st.Propagations += ws.Propagations
		st.Rounds += ws.Rounds
		st.ImprovePasses += ws.ImprovePasses
		st.ImproveAccepts += ws.ImproveAccepts
		st.Solutions += ws.Solutions
		st.NodeLimitHit = st.NodeLimitHit || ws.NodeLimitHit
		st.TimeLimitHit = st.TimeLimitHit || ws.TimeLimitHit
		st.BoundImports += ws.BoundImports
	}
	merged.Nodes = st.Nodes
	merged.Rounds = st.Rounds

	// Status soundness: optimality claims stay anchored to the canonical
	// worker's proof ("no solution with objective <= provedLE in the
	// canonical set-times space"), exactly the claim a Workers == 1 solve
	// makes — a perturbed worker's exhaustion proof covers a differently
	// ordered space and is not used to label the merged result.
	if merged.HasSolution() {
		if merged.Objective == 0 || solvers[0].provedLE >= merged.Objective-1 {
			merged.Status = StatusOptimal
		} else {
			merged.Status = StatusFeasible
		}
	} else {
		merged.Status = StatusUnknown
		for w := range results {
			if results[w].Status == StatusInfeasible {
				merged.Status = StatusInfeasible
				break
			}
		}
	}
	merged.Search = st
	merged.SolveTime = time.Since(start)
	return merged
}
