package cp

import (
	"math"
	"testing"

	"mrcprm/internal/stats"
)

func solveOK(t *testing.T, m *Model, p Params) Result {
	t.Helper()
	r := NewSolver(m, p).Solve()
	if !r.HasSolution() {
		t.Fatalf("no solution: status %v", r.Status)
	}
	if err := m.VerifySolution(&r); err != nil {
		t.Fatalf("solution does not verify: %v", err)
	}
	return r
}

func TestSolveSingleTask(t *testing.T) {
	m := NewModel(1000)
	iv := m.NewInterval("t", 10)
	m.SetStartBounds(iv, 25, 500)
	m.AddCumulative("r", -1, 1, []*Interval{iv})
	r := solveOK(t, m, Params{})
	if r.Starts[iv.ID()] != 25 {
		t.Fatalf("start = %d, want earliest 25", r.Starts[iv.ID()])
	}
	if r.Status != StatusOptimal {
		t.Fatalf("status %v", r.Status)
	}
}

func TestSolveSequencesOnCapacityOne(t *testing.T) {
	m := NewModel(1000)
	var ivs []*Interval
	for i := 0; i < 5; i++ {
		ivs = append(ivs, m.NewInterval("t", 10))
	}
	m.AddCumulative("r", -1, 1, ivs)
	r := solveOK(t, m, Params{})
	// All five tasks must be pairwise disjoint; makespan exactly 50 since
	// set-times packs them greedily.
	var maxEnd int64
	for _, iv := range ivs {
		if end := r.Starts[iv.ID()] + iv.Dur; end > maxEnd {
			maxEnd = end
		}
	}
	if maxEnd != 50 {
		t.Fatalf("makespan %d, want 50", maxEnd)
	}
}

func TestSolvePrecedenceMapReduce(t *testing.T) {
	m := NewModel(10000)
	maps := []*Interval{m.NewInterval("m1", 30), m.NewInterval("m2", 50)}
	red := m.NewInterval("r1", 20)
	m.AddMaxEndBeforeStart(maps, red)
	m.AddCumulative("map", -1, 2, maps)
	m.AddCumulative("red", -1, 1, []*Interval{red})
	r := solveOK(t, m, Params{})
	if st := r.Starts[red.ID()]; st != 50 {
		t.Fatalf("reduce starts at %d, want 50 (after the longest map)", st)
	}
}

func TestSolveLatenessForcedWhenDeadlineImpossible(t *testing.T) {
	m := NewModel(1000)
	iv := m.NewInterval("t", 100)
	m.SetStartBounds(iv, 50, 800)
	late := m.NewBool("late")
	m.AddLateness([]*Interval{iv}, 120, late) // earliest completion 150 > 120
	m.AddCumulative("r", -1, 1, []*Interval{iv})
	m.Minimize([]*Bool{late})
	r := solveOK(t, m, Params{})
	if !r.Lates[late.ID()] || r.Objective != 1 {
		t.Fatal("job should be late")
	}
	if r.Status != StatusOptimal {
		t.Fatalf("status %v (1 late is provably optimal)", r.Status)
	}
}

func TestSolveMeetsDeadlineWhenPossible(t *testing.T) {
	m := NewModel(1000)
	iv := m.NewInterval("t", 100)
	late := m.NewBool("late")
	m.AddLateness([]*Interval{iv}, 500, late)
	m.AddCumulative("r", -1, 1, []*Interval{iv})
	m.Minimize([]*Bool{late})
	r := solveOK(t, m, Params{})
	if r.Objective != 0 || r.Status != StatusOptimal {
		t.Fatalf("objective %d status %v, want 0/optimal", r.Objective, r.Status)
	}
}

// Two unit-capacity jobs where the naive job-id order makes job B late but
// scheduling B first meets both deadlines. Branch-and-bound must find the
// 0-late schedule even under the job-id ordering strategy.
func TestBnBRecoversFromBadFirstOrder(t *testing.T) {
	m := NewModel(1000)
	a := m.NewInterval("a", 10)
	a.JobKey = 0
	a.Due = 100
	b := m.NewInterval("b", 10)
	b.JobKey = 1
	b.Due = 10
	lateA, lateB := m.NewBool("lateA"), m.NewBool("lateB")
	m.AddLateness([]*Interval{a}, 100, lateA)
	m.AddLateness([]*Interval{b}, 10, lateB)
	m.AddCumulative("r", -1, 1, []*Interval{a, b})
	m.Minimize([]*Bool{lateA, lateB})
	r := solveOK(t, m, Params{Ordering: OrderJobID})
	if r.Objective != 0 {
		t.Fatalf("objective %d, want 0 (schedule b first)", r.Objective)
	}
	if r.Starts[b.ID()] != 0 || r.Starts[a.ID()] < 10 {
		t.Fatalf("starts a=%d b=%d", r.Starts[a.ID()], r.Starts[b.ID()])
	}
}

func TestEDFOrderingMeetsBothDeadlinesFirstDescent(t *testing.T) {
	m := NewModel(1000)
	a := m.NewInterval("a", 10)
	a.Due = 100
	b := m.NewInterval("b", 10)
	b.Due = 10
	lateA, lateB := m.NewBool("lateA"), m.NewBool("lateB")
	m.AddLateness([]*Interval{a}, 100, lateA)
	m.AddLateness([]*Interval{b}, 10, lateB)
	m.AddCumulative("r", -1, 1, []*Interval{a, b})
	m.Minimize([]*Bool{lateA, lateB})
	r := solveOK(t, m, Params{Ordering: OrderEDF})
	if r.Objective != 0 {
		t.Fatalf("objective %d, want 0", r.Objective)
	}
}

func TestSolveDirectModeTwoResources(t *testing.T) {
	m := NewModel(1000)
	var ivs []*Interval
	for i := 0; i < 4; i++ {
		iv := m.NewInterval("t", 100)
		m.NewResVar(iv, 2)
		ivs = append(ivs, iv)
	}
	m.AddCumulative("r0", 0, 1, ivs)
	m.AddCumulative("r1", 1, 1, ivs)
	var lates []*Bool
	for i, iv := range ivs {
		l := m.NewBool("late")
		_ = i
		m.AddLateness([]*Interval{iv}, 200, l)
		lates = append(lates, l)
	}
	m.Minimize(lates)
	r := solveOK(t, m, Params{})
	if r.Objective != 0 {
		t.Fatalf("objective %d, want 0 (2 tasks per resource fit in 200)", r.Objective)
	}
	// Check the matchmaking spread them 2+2.
	count := map[int]int{}
	for _, iv := range ivs {
		count[r.Res[iv.ID()]]++
	}
	if count[0] != 2 || count[1] != 2 {
		t.Fatalf("assignment counts %v, want 2 per resource", count)
	}
}

func TestSolveFrozenTaskRespected(t *testing.T) {
	m := NewModel(1000)
	frozen := m.NewInterval("frozen", 50)
	m.FixStart(frozen, 10)
	task := m.NewInterval("new", 30)
	m.AddCumulative("r", -1, 1, []*Interval{frozen, task})
	r := solveOK(t, m, Params{})
	if r.Starts[frozen.ID()] != 10 {
		t.Fatal("frozen task moved")
	}
	st := r.Starts[task.ID()]
	if st < 60 && st+30 > 10 {
		t.Fatalf("new task at %d overlaps the frozen task", st)
	}
}

func TestSolveInfeasibleWindow(t *testing.T) {
	m := NewModel(1000)
	a := m.NewInterval("a", 100)
	m.FixStart(a, 0)
	b := m.NewInterval("b", 100)
	m.SetStartBounds(b, 0, 50) // must overlap a on capacity 1
	m.AddCumulative("r", -1, 1, []*Interval{a, b})
	r := NewSolver(m, Params{}).Solve()
	if r.Status != StatusInfeasible {
		t.Fatalf("status %v, want infeasible", r.Status)
	}
}

func TestSolveNodeLimitReturnsIncumbent(t *testing.T) {
	m := NewModel(100000)
	var ivs []*Interval
	var lates []*Bool
	for i := 0; i < 30; i++ {
		iv := m.NewInterval("t", 10)
		iv.Due = 40 // hopelessly tight for most jobs: B&B will grind
		ivs = append(ivs, iv)
		l := m.NewBool("late")
		m.AddLateness([]*Interval{iv}, 40, l)
		lates = append(lates, l)
	}
	m.AddCumulative("r", -1, 1, ivs)
	m.Minimize(lates)
	r := NewSolver(m, Params{NodeLimit: 200}).Solve()
	if !r.HasSolution() {
		t.Fatalf("expected an incumbent under the node limit, got %v", r.Status)
	}
	if err := m.VerifySolution(&r); err != nil {
		t.Fatal(err)
	}
	// Only 4 tasks can finish by 40 on capacity 1.
	if r.Objective < 26 {
		t.Fatalf("objective %d below the combinatorial floor 26", r.Objective)
	}
}

// bruteForceMinLate enumerates all schedules on a discrete grid for tiny
// single-resource instances and returns the minimum number of late tasks.
func bruteForceMinLate(durs []int64, deadlines []int64, capacity int64, horizon int64) int {
	n := len(durs)
	starts := make([]int64, n)
	best := n + 1
	var rec func(i int)
	feasible := func(upto int) bool {
		for x := int64(0); x < horizon; x++ {
			var load int64
			for j := 0; j <= upto; j++ {
				if starts[j] <= x && x < starts[j]+durs[j] {
					load++
				}
			}
			if load > capacity {
				return false
			}
		}
		return true
	}
	rec = func(i int) {
		if i == n {
			late := 0
			for j := 0; j < n; j++ {
				if starts[j]+durs[j] > deadlines[j] {
					late++
				}
			}
			if late < best {
				best = late
			}
			return
		}
		for st := int64(0); st+durs[i] <= horizon; st++ {
			starts[i] = st
			if feasible(i) {
				rec(i + 1)
			}
		}
	}
	rec(0)
	return best
}

func TestSolverMatchesBruteForceOnTinyInstances(t *testing.T) {
	rng := stats.NewStream(11, 13)
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.IntN(2) // 2..3 tasks
		horizon := int64(12)
		durs := make([]int64, n)
		deadlines := make([]int64, n)
		for i := range durs {
			durs[i] = 1 + int64(rng.IntN(4))
			deadlines[i] = 2 + int64(rng.IntN(10))
		}
		capacity := int64(1 + rng.IntN(2))

		want := bruteForceMinLate(durs, deadlines, capacity, horizon)

		m := NewModel(horizon)
		var ivs []*Interval
		var lates []*Bool
		for i := 0; i < n; i++ {
			iv := m.NewInterval("t", durs[i])
			iv.Due = deadlines[i]
			ivs = append(ivs, iv)
			l := m.NewBool("late")
			m.AddLateness([]*Interval{iv}, deadlines[i], l)
			lates = append(lates, l)
		}
		m.AddCumulative("r", -1, capacity, ivs)
		m.Minimize(lates)
		r := solveOK(t, m, Params{})
		if r.Objective != want {
			t.Fatalf("trial %d (durs=%v deadlines=%v cap=%d): objective %d, brute force %d",
				trial, durs, deadlines, capacity, r.Objective, want)
		}
	}
}

func TestOrderingStrategiesAllProduceValidSchedules(t *testing.T) {
	for _, ord := range []OrderingStrategy{OrderEDF, OrderJobID, OrderLeastLaxity} {
		m := NewModel(10000)
		var ivs []*Interval
		var lates []*Bool
		rng := stats.NewStream(3, uint64(ord))
		for i := 0; i < 10; i++ {
			iv := m.NewInterval("t", 10+int64(rng.IntN(50)))
			iv.JobKey = i
			iv.Due = 100 + int64(rng.IntN(400))
			ivs = append(ivs, iv)
			l := m.NewBool("late")
			m.AddLateness([]*Interval{iv}, iv.Due, l)
			lates = append(lates, l)
		}
		m.AddCumulative("r", -1, 2, ivs)
		m.Minimize(lates)
		solveOK(t, m, Params{Ordering: ord})
	}
}

func TestDueDefaultsDoNotOverflowLaxity(t *testing.T) {
	m := NewModel(1000)
	iv := m.NewInterval("t", 10) // Due stays MaxInt64
	m.AddCumulative("r", -1, 1, []*Interval{iv})
	s := NewSolver(m, Params{Ordering: OrderLeastLaxity})
	if k := s.orderKey(iv); k != math.MaxInt64 {
		t.Fatalf("orderKey for no-deadline task = %d", k)
	}
	solveOK(t, m, Params{Ordering: OrderLeastLaxity})
}

// bruteForceMinLateHetero enumerates resource assignments and start times
// for tiny two-resource instances with per-(task,resource) durations and a
// second (memory) capacity dimension, returning the minimum late count.
func bruteForceMinLateHetero(durs [][]int64, mems, deadlines []int64,
	slotCap, memCap, horizon int64) int {
	n := len(durs)
	starts := make([]int64, n)
	res := make([]int, n)
	best := n + 1
	feasible := func() bool {
		for x := int64(0); x < horizon; x++ {
			for r := 0; r < 2; r++ {
				var load, mem int64
				for j := 0; j < n; j++ {
					if res[j] == r && starts[j] <= x && x < starts[j]+durs[j][r] {
						load++
						mem += mems[j]
					}
				}
				if load > slotCap || mem > memCap {
					return false
				}
			}
		}
		return true
	}
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			if !feasible() {
				return
			}
			late := 0
			for j := 0; j < n; j++ {
				if starts[j]+durs[j][res[j]] > deadlines[j] {
					late++
				}
			}
			if late < best {
				best = late
			}
			return
		}
		for r := 0; r < 2; r++ {
			res[i] = r
			for st := int64(0); st+durs[i][r] <= horizon; st++ {
				starts[i] = st
				rec(i + 1)
			}
		}
	}
	rec(0)
	return best
}

// The heterogeneous cross-check: two speed classes (resource 1 runs every
// task slower) and two capacity dimensions (unit slots plus a memory
// cumulative), solved to optimality and compared against exhaustive
// enumeration.
func TestSolverMatchesBruteForceOnHeteroInstances(t *testing.T) {
	rng := stats.NewStream(17, 19)
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.IntN(2) // 2..3 tasks
		horizon := int64(10)
		slotCap := int64(1 + rng.IntN(2))
		memCap := int64(2)
		durs := make([][]int64, n)
		mems := make([]int64, n)
		deadlines := make([]int64, n)
		for i := range durs {
			base := 1 + int64(rng.IntN(3))
			slow := base + 1 + int64(rng.IntN(2)) // resource 1 is the slow class
			durs[i] = []int64{base, slow}
			mems[i] = 1 + int64(rng.IntN(2))
			deadlines[i] = 2 + int64(rng.IntN(7))
		}

		want := bruteForceMinLateHetero(durs, mems, deadlines, slotCap, memCap, horizon)

		m := NewModel(horizon)
		var ivs []*Interval
		var lates []*Bool
		for i := 0; i < n; i++ {
			iv := m.NewInterval("t", durs[i][1]) // slowest mode, as buildModel does
			iv.Due = deadlines[i]
			m.NewResVar(iv, 2)
			m.SetResDurations(iv, durs[i])
			ivs = append(ivs, iv)
			l := m.NewBool("late")
			m.AddLateness([]*Interval{iv}, deadlines[i], l)
			lates = append(lates, l)
		}
		for r := 0; r < 2; r++ {
			m.AddCumulative("slot", r, slotCap, ivs)
			m.AddCumulativeDemands("mem", r, memCap, ivs, mems)
		}
		m.Minimize(lates)
		r := solveOK(t, m, Params{})
		if want > n {
			t.Fatalf("trial %d: brute force found no feasible schedule but the solver did", trial)
		}
		if r.Objective != want {
			t.Fatalf("trial %d (durs=%v mems=%v deadlines=%v slotCap=%d): objective %d, brute force %d",
				trial, durs, mems, deadlines, slotCap, r.Objective, want)
		}
	}
}
