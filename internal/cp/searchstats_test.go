package cp

import (
	"strings"
	"testing"
)

// tightModel builds an instance with deadline pressure so the search runs
// through improvement and branch-and-bound, populating every counter.
func tightModel(n int) *Model {
	m := NewModel(100000)
	var ivs []*Interval
	var lates []*Bool
	for i := 0; i < n; i++ {
		iv := m.NewInterval("t", 10)
		iv.JobKey = i
		iv.Due = 35
		ivs = append(ivs, iv)
		l := m.NewBool("late")
		m.AddLateness([]*Interval{iv}, 35, l)
		lates = append(lates, l)
	}
	m.AddCumulative("r", -1, 1, ivs)
	m.Minimize(lates)
	return m
}

func TestSearchStatsPopulated(t *testing.T) {
	r := solveOK(t, tightModel(8), Params{})
	st := r.Search
	if st.Nodes != r.Nodes {
		t.Errorf("Search.Nodes = %d, Result.Nodes = %d; must agree", st.Nodes, r.Nodes)
	}
	if st.Propagations == 0 {
		t.Error("Propagations = 0; propagation engine ran, counter must be nonzero")
	}
	if st.Solutions == 0 || len(st.Timeline) == 0 {
		t.Fatalf("Solutions=%d Timeline=%d; a solved instance must record incumbents",
			st.Solutions, len(st.Timeline))
	}
	if st.FirstObjective != st.Timeline[0].Objective {
		t.Errorf("FirstObjective = %d, Timeline[0].Objective = %d",
			st.FirstObjective, st.Timeline[0].Objective)
	}
	for i := 1; i < len(st.Timeline); i++ {
		if st.Timeline[i].Objective >= st.Timeline[i-1].Objective {
			t.Errorf("timeline not strictly improving at step %d: %d -> %d",
				i, st.Timeline[i-1].Objective, st.Timeline[i].Objective)
		}
		if st.Timeline[i].Nodes < st.Timeline[i-1].Nodes {
			t.Errorf("timeline node counts regress at step %d", i)
		}
	}
	if last := st.Timeline[len(st.Timeline)-1].Objective; last != r.Objective {
		t.Errorf("final timeline objective %d != result objective %d", last, r.Objective)
	}
	if st.TimeToFirst <= 0 {
		t.Errorf("TimeToFirst = %v, want > 0", st.TimeToFirst)
	}
}

func TestSearchStatsLimitFlags(t *testing.T) {
	r := NewSolver(tightModel(30), Params{NodeLimit: 200}).Solve()
	if !r.HasSolution() {
		t.Fatalf("expected incumbent, got %v", r.Status)
	}
	if !r.Search.NodeLimitHit {
		t.Error("NodeLimitHit = false after exhausting a 200-node budget")
	}
	if !r.Search.LimitHit() {
		t.Error("LimitHit() = false, want true")
	}
	if r.Search.TimeLimitHit {
		t.Error("TimeLimitHit = true with no time limit set")
	}

	r = solveOK(t, tightModel(4), Params{})
	if r.Search.LimitHit() {
		t.Errorf("LimitHit() = true on an easy optimal solve: %+v", r.Search)
	}
}

func TestSearchStatsString(t *testing.T) {
	r := solveOK(t, tightModel(8), Params{})
	s := r.Search.String()
	for _, want := range []string{"nodes", "backtracks", "propagations", "solutions"} {
		if !strings.Contains(s, want) {
			t.Errorf("SearchStats.String() = %q, missing %q", s, want)
		}
	}
	rs := r.String()
	if !strings.Contains(rs, s) || !strings.Contains(rs, "obj=") {
		t.Errorf("Result.String() = %q, want status/objective plus search stats", rs)
	}
}
