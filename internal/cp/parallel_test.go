package cp

import (
	"reflect"
	"testing"

	"mrcprm/internal/stats"
)

// parallelInstance builds a deterministic, portfolio-sized (>= 16
// intervals) tight instance; calling it twice yields two independent but
// identical models.
func parallelInstance() *randomInstance {
	return buildRandomInstance(stats.NewStream(4242, 17), 12, 5, 3, 2, true)
}

// normalizeWall zeroes every wall-clock-derived field so results can be
// compared byte-for-byte across runs.
func normalizeWall(r *Result) {
	r.SolveTime = 0
	r.Search.TimeToFirst = 0
	for i := range r.Search.Timeline {
		r.Search.Timeline[i].Wall = 0
	}
}

func TestPortfolioDeterministicByteIdentical(t *testing.T) {
	p := Params{NodeLimit: 3000, Workers: 4}
	r1 := NewSolver(parallelInstance().m, p).Solve()
	r2 := NewSolver(parallelInstance().m, p).Solve()
	normalizeWall(&r1)
	normalizeWall(&r2)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("portfolio solve not deterministic:\n  r1=%+v\n  r2=%+v", r1, r2)
	}
	if r1.Search.Workers != 4 {
		t.Fatalf("Search.Workers = %d, want 4", r1.Search.Workers)
	}
}

func TestPortfolioNotWorseThanSequential(t *testing.T) {
	seq := NewSolver(parallelInstance().m, Params{NodeLimit: 2000, Workers: 1}).Solve()
	inst := parallelInstance()
	par := NewSolver(inst.m, Params{NodeLimit: 2000, Workers: 4}).Solve()
	if !seq.HasSolution() || !par.HasSolution() {
		t.Fatalf("expected solutions: seq=%v par=%v", seq.Status, par.Status)
	}
	// Worker 0 IS the sequential run, so the merged result can never be
	// worse on the same per-worker budget.
	if par.Objective > seq.Objective {
		t.Fatalf("portfolio objective %d worse than sequential %d", par.Objective, seq.Objective)
	}
	// Four workers on the same per-worker budget must explore at least
	// twice the nodes of one.
	if par.Search.Nodes < 2*seq.Search.Nodes {
		t.Fatalf("portfolio explored %d nodes, want >= 2x sequential %d", par.Search.Nodes, seq.Search.Nodes)
	}
	if err := inst.m.VerifySolution(&par); err != nil {
		t.Fatalf("portfolio solution failed verification: %v", err)
	}
}

// TestPortfolioOpportunisticRace hammers the shared incumbent board with a
// wide portfolio; run under -race it checks the lock-free bound sharing.
func TestPortfolioOpportunisticRace(t *testing.T) {
	for i := 0; i < 6; i++ {
		inst := parallelInstance()
		r := NewSolver(inst.m, Params{NodeLimit: 1500, Workers: 8, Opportunistic: true}).Solve()
		if !r.HasSolution() {
			t.Fatalf("iteration %d: no solution (%v)", i, r.Status)
		}
		if err := inst.m.VerifySolution(&r); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
}

// TestPortfolioStatusSound checks that a portfolio's optimality claim
// matches what the canonical sequential search proves on the same model.
func TestPortfolioStatusSound(t *testing.T) {
	easy := func() *randomInstance {
		return buildRandomInstance(stats.NewStream(909, 3), 10, 4, 3, 3, false)
	}
	seq := NewSolver(easy().m, Params{NodeLimit: 200_000, Workers: 1}).Solve()
	par := NewSolver(easy().m, Params{NodeLimit: 200_000, Workers: 4}).Solve()
	if seq.Status == StatusOptimal {
		if par.Status != StatusOptimal {
			t.Fatalf("sequential proved optimal but portfolio says %v", par.Status)
		}
		if par.Objective != seq.Objective {
			t.Fatalf("optimal objectives differ: seq=%d par=%d", seq.Objective, par.Objective)
		}
	}
}

// TestSmallModelsStaySequential checks the portfolio floor: tiny models
// solve on the classic single-threaded path regardless of Params.Workers.
func TestSmallModelsStaySequential(t *testing.T) {
	m := tightModel(8)
	r := NewSolver(m, Params{NodeLimit: 5000, Workers: 8}).Solve()
	if r.Search.Workers != 1 {
		t.Fatalf("small model used %d workers, want 1", r.Search.Workers)
	}
}
