package cp

import "testing"

// profileOf builds the cumulative's profile and returns its segments.
func profileOf(t *testing.T, m *Model, c *Cumulative) []ttSeg {
	t.Helper()
	if err := c.c.refresh(m); err != nil {
		t.Fatalf("profile build failed: %v", err)
	}
	return append([]ttSeg(nil), c.c.segs...)
}

func TestProfileMandatoryParts(t *testing.T) {
	m := NewModel(1000)
	a := m.NewInterval("a", 10)
	m.SetStartBounds(a, 5, 5) // mandatory [5,15)
	b := m.NewInterval("b", 10)
	m.SetStartBounds(b, 10, 12) // mandatory [12,20)
	c := m.AddCumulative("r", -1, 2, []*Interval{a, b})
	segs := profileOf(t, m, c)
	// Expect load 1 on [5,12), 2 on [12,15), 1 on [15,20).
	want := []ttSeg{{5, 12, 1}, {12, 15, 2}, {15, 20, 1}}
	if len(segs) != len(want) {
		t.Fatalf("segments %+v, want %+v", segs, want)
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("segment %d = %+v, want %+v", i, segs[i], want[i])
		}
	}
}

func TestProfileNoMandatoryPart(t *testing.T) {
	m := NewModel(1000)
	a := m.NewInterval("a", 10) // window [0,990]: no mandatory part
	c := m.AddCumulative("r", -1, 1, []*Interval{a})
	if segs := profileOf(t, m, c); len(segs) != 0 {
		t.Fatalf("unexpected mandatory segments %+v", segs)
	}
}

func TestProfileOverloadFails(t *testing.T) {
	m := NewModel(1000)
	a := m.NewInterval("a", 10)
	m.FixStart(a, 0)
	b := m.NewInterval("b", 10)
	m.FixStart(b, 5)
	cum := m.AddCumulative("r", -1, 1, []*Interval{a, b})
	if err := cum.c.refresh(m); err != errFail {
		t.Fatalf("overlapping fixed tasks on capacity 1 should fail, got %v", err)
	}
}

func TestEarliestFitJumpsPastConflicts(t *testing.T) {
	m := NewModel(1000)
	a := m.NewInterval("a", 20)
	m.FixStart(a, 10) // occupies [10,30) on capacity 1
	b := m.NewInterval("b", 15)
	cum := m.AddCumulative("r", -1, 1, []*Interval{a, b})
	if err := cum.c.refresh(m); err != nil {
		t.Fatal(err)
	}
	// b cannot start in (0,30): starting at 0 would end at 15 > 10.
	if st := cum.c.earliestFit(m, b, 0, true); st != 30 {
		t.Fatalf("earliestFit = %d, want 30", st)
	}
	// From 40 there is no conflict.
	if st := cum.c.earliestFit(m, b, 40, true); st != 40 {
		t.Fatalf("earliestFit = %d, want 40", st)
	}
}

func TestEarliestFitDiscountsOwnMandatoryPart(t *testing.T) {
	m := NewModel(1000)
	a := m.NewInterval("a", 20)
	m.SetStartBounds(a, 10, 15) // own mandatory part [15,30)
	cum := m.AddCumulative("r", -1, 1, []*Interval{a})
	if err := cum.c.refresh(m); err != nil {
		t.Fatal(err)
	}
	// a itself can still start at 10: the only load is its own.
	if st := cum.c.earliestFit(m, a, 10, true); st != 10 {
		t.Fatalf("earliestFit = %d, want 10", st)
	}
	// A hypothetical other task of the same shape could not.
	b := m.NewInterval("b", 20)
	if st := cum.c.earliestFit(m, b, 10, false); st != 30 {
		t.Fatalf("earliestFit = %d, want 30", st)
	}
}

func TestLatestFitPullsBeforeConflicts(t *testing.T) {
	m := NewModel(1000)
	a := m.NewInterval("a", 20)
	m.FixStart(a, 50) // occupies [50,70) on capacity 1
	b := m.NewInterval("b", 15)
	cum := m.AddCumulative("r", -1, 1, []*Interval{a, b})
	if err := cum.c.refresh(m); err != nil {
		t.Fatal(err)
	}
	// Latest start <= 60 that avoids [50,70) entirely: must end by 50.
	if st := cum.c.latestFit(m, b, 60, true); st != 35 {
		t.Fatalf("latestFit = %d, want 35", st)
	}
	// From 80 there is no conflict.
	if st := cum.c.latestFit(m, b, 80, true); st != 80 {
		t.Fatalf("latestFit = %d, want 80", st)
	}
}

func TestCumulativePropagationSequencesTasks(t *testing.T) {
	m := NewModel(1000)
	a := m.NewInterval("a", 10)
	m.FixStart(a, 0)
	b := m.NewInterval("b", 10)
	m.AddCumulative("r", -1, 1, []*Interval{a, b})
	e := newEngine(m)
	e.scheduleAll()
	if err := e.propagate(); err != nil {
		t.Fatal(err)
	}
	if got := m.StartMin(b); got != 10 {
		t.Fatalf("b startMin = %d, want 10 (pushed past a)", got)
	}
}

func TestCumulativeCapacityTwoAllowsOverlap(t *testing.T) {
	m := NewModel(1000)
	a := m.NewInterval("a", 10)
	m.FixStart(a, 0)
	b := m.NewInterval("b", 10)
	m.AddCumulative("r", -1, 2, []*Interval{a, b})
	e := newEngine(m)
	e.scheduleAll()
	if err := e.propagate(); err != nil {
		t.Fatal(err)
	}
	if got := m.StartMin(b); got != 0 {
		t.Fatalf("b startMin = %d, want 0 (capacity 2 allows overlap)", got)
	}
}

func TestCumulativeRemovesInfeasibleResource(t *testing.T) {
	m := NewModel(100)
	blocker := m.NewInterval("blocker", 90)
	m.FixStart(blocker, 0) // fills resource 0 almost entirely
	task := m.NewInterval("task", 20)
	rv := m.NewResVar(task, 2)
	m.AddCumulative("r0", 0, 1, []*Interval{blocker, task})
	m.AddCumulative("r1", 1, 1, []*Interval{task})
	e := newEngine(m)
	e.scheduleAll()
	if err := e.propagate(); err != nil {
		t.Fatal(err)
	}
	// task (dur 20, window [0,80]) cannot fit on r0: earliest fit is 90 > 80.
	if m.ResAllowed(rv, 0) {
		t.Fatal("resource 0 should have been removed from the domain")
	}
	if m.ResFixedValue(rv) != 1 {
		t.Fatal("task should be forced onto resource 1")
	}
}

func TestSubtractSpans(t *testing.T) {
	cases := []struct {
		a, b, mA, mB int64
		want         []span
	}{
		{0, 10, 20, 30, []span{{0, 10}}},       // disjoint
		{0, 10, 0, 10, nil},                    // fully covered
		{0, 10, 3, 7, []span{{0, 3}, {7, 10}}}, // middle
		{0, 10, 0, 4, []span{{4, 10}}},         // prefix
		{0, 10, 6, 10, []span{{0, 6}}},         // suffix
		{0, 10, 5, 5, []span{{0, 10}}},         // empty mandatory
	}
	for _, c := range cases {
		got := subtract(c.a, c.b, c.mA, c.mB)
		if len(got) != len(c.want) {
			t.Fatalf("subtract(%d,%d,%d,%d) = %v, want %v", c.a, c.b, c.mA, c.mB, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("subtract(%d,%d,%d,%d) = %v, want %v", c.a, c.b, c.mA, c.mB, got, c.want)
			}
		}
	}
}
