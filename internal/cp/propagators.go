package cp

// phaseBarrier implements Constraint 3 for a whole job at once: every
// successor (reduce task) starts at or after the max completion time of
// the predecessors (the job's map tasks). Grouping all successors into one
// propagator keeps the cost per wake at O(|preds| + |succs|) instead of
// O(|preds| * |succs|), which matters for jobs with thousands of tasks.
type phaseBarrier struct {
	preds []*Interval
	succs []*Interval
}

func (p *phaseBarrier) propagate(e *engine) error {
	m := e.m
	// Latest finishing predecessor, by lower bound (the paper's LFMT).
	var lb int64
	for _, pr := range p.preds {
		if end := m.EndMin(pr); end > lb {
			lb = end
		}
	}
	// Earliest latest-start among successors.
	latest := int64(1<<63 - 1)
	for _, su := range p.succs {
		if err := e.setStartMin(su, lb); err != nil {
			return err
		}
		if v := m.StartMax(su); v < latest {
			latest = v
		}
	}
	// Every pred must end by the time the tightest successor can still
	// start. DurMin keeps the deduction sound for heterogeneous preds: only
	// the fastest remaining mode bounds how late the start may be.
	for _, pr := range p.preds {
		if err := e.setStartMax(pr, latest-m.DurMin(pr)); err != nil {
			return err
		}
	}
	return nil
}

// lateness implements Constraint 4 (reified): if the job's last terminal
// task must end after the deadline, late = 1. Conversely, deciding late = 0
// imposes the deadline on every terminal task. When the job provably meets
// its deadline, late is fixed to 0, which is dominance-safe under the
// minimization objective.
type lateness struct {
	terminals []*Interval
	deadline  int64
	late      *Bool
}

func (p *lateness) propagate(e *engine) error {
	m := e.m
	var lbComplete, ubComplete int64
	for _, t := range p.terminals {
		if v := m.EndMin(t); v > lbComplete {
			lbComplete = v
		}
		if v := m.EndMax(t); v > ubComplete {
			ubComplete = v
		}
	}
	if lbComplete > p.deadline {
		// The job cannot meet its deadline any more.
		if err := e.setBool(p.late, 1); err != nil {
			return err
		}
	} else if ubComplete <= p.deadline {
		// The job is guaranteed on time.
		if err := e.setBool(p.late, 0); err != nil {
			return err
		}
	}
	if m.BoolMax(p.late) == 0 {
		// late is decided 0: enforce the deadline on all terminals (via the
		// fastest remaining mode, the sound bound for heterogeneous tasks).
		for _, t := range p.terminals {
			if err := e.setStartMax(t, p.deadline-m.DurMin(t)); err != nil {
				return err
			}
		}
	}
	return nil
}

// sumLE implements the branch-and-bound cut Σ late_j <= bound.
type sumLE struct {
	bools []*Bool
	bound int
}

func (p *sumLE) propagate(e *engine) error {
	m := e.m
	forced := 0
	for _, b := range p.bools {
		if m.BoolMin(b) == 1 {
			forced++
		}
	}
	if forced > p.bound {
		return errFail
	}
	if forced == p.bound {
		// No remaining job may be late.
		for _, b := range p.bools {
			if !m.BoolFixed(b) {
				if err := e.setBool(b, 0); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
