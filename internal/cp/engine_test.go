package cp

import (
	"errors"
	"testing"
)

// countingProp counts its runs and optionally fails or mutates.
type countingProp struct {
	runs   int
	action func(e *engine) error
}

func (p *countingProp) propagate(e *engine) error {
	p.runs++
	if p.action != nil {
		return p.action(e)
	}
	return nil
}

func TestEngineQueueDeduplicates(t *testing.T) {
	m := NewModel(1000)
	iv := m.NewInterval("t", 10)
	p := &countingProp{}
	idx := m.addProp(p)
	m.watchInterval(iv, idx)
	e := newEngine(m)
	e.schedule(idx)
	e.schedule(idx)
	e.schedule(idx)
	if err := e.propagate(); err != nil {
		t.Fatal(err)
	}
	if p.runs != 1 {
		t.Fatalf("propagator ran %d times, want 1 (queue dedup)", p.runs)
	}
}

func TestEngineWakeOnBoundChange(t *testing.T) {
	m := NewModel(1000)
	a := m.NewInterval("a", 10)
	b := m.NewInterval("b", 10)
	watchA := &countingProp{}
	m.watchInterval(a, m.addProp(watchA))
	watchB := &countingProp{}
	m.watchInterval(b, m.addProp(watchB))
	e := newEngine(m)
	if err := e.setStartMin(a, 5); err != nil {
		t.Fatal(err)
	}
	if err := e.propagate(); err != nil {
		t.Fatal(err)
	}
	if watchA.runs != 1 || watchB.runs != 0 {
		t.Fatalf("wakes a=%d b=%d, want 1/0", watchA.runs, watchB.runs)
	}
	// A no-op bound change must not wake anyone.
	if err := e.setStartMin(a, 5); err != nil {
		t.Fatal(err)
	}
	if err := e.propagate(); err != nil {
		t.Fatal(err)
	}
	if watchA.runs != 1 {
		t.Fatal("no-op change woke the propagator")
	}
}

func TestEngineFailureDrainsQueue(t *testing.T) {
	m := NewModel(1000)
	iv := m.NewInterval("t", 10)
	failing := &countingProp{action: func(*engine) error { return errFail }}
	neverRun := &countingProp{}
	fi := m.addProp(failing)
	ni := m.addProp(neverRun)
	m.watchInterval(iv, fi)
	m.watchInterval(iv, ni)
	e := newEngine(m)
	e.schedule(fi)
	e.schedule(ni)
	if err := e.propagate(); !errors.Is(err, errFail) {
		t.Fatalf("expected errFail, got %v", err)
	}
	if neverRun.runs != 0 {
		t.Fatal("queue not drained after failure")
	}
	if len(e.queue) != 0 {
		t.Fatal("queue left non-empty")
	}
	for i, inQ := range e.inQueue {
		if inQ {
			t.Fatalf("inQueue[%d] flag left set", i)
		}
	}
}

func TestEngineSelfWakeSuppressed(t *testing.T) {
	m := NewModel(1000)
	iv := m.NewInterval("t", 10)
	var self *countingProp
	self = &countingProp{action: func(e *engine) error {
		// Mutating a watched variable from inside the watcher must not
		// re-enqueue the watcher (it is expected to reach its own fixpoint).
		if self.runs == 1 {
			return e.setStartMin(iv, 7)
		}
		return nil
	}}
	idx := m.addProp(self)
	m.watchInterval(iv, idx)
	e := newEngine(m)
	e.schedule(idx)
	if err := e.propagate(); err != nil {
		t.Fatal(err)
	}
	if self.runs != 1 {
		t.Fatalf("self-wake ran the propagator %d times", self.runs)
	}
}
