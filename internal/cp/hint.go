package cp

// Hint is a prior assignment used to warm-start a solve: typically the
// timetable the caller installed after the previous solve, re-indexed onto
// the freshly built model. The solver runs its first descent as a *repair*
// of the hint — every hinted interval aims at its hinted start (clamped
// into its current bounds) and prefers its hinted resource, while unhinted
// intervals (new arrivals) pack greedily as usual — so the incumbent opens
// at the prior round's objective instead of a from-scratch greedy one.
//
// A hinted solve is repair-and-improve only: when the hint descent seeds
// the incumbent, the solver skips the mandatory full improvement pass and
// the branch-and-bound proof phase, trusting the proof work done by the
// cold solves it interleaves with. Its result is therefore at most
// StatusFeasible unless the repaired objective is zero. Callers that need
// optimality proofs on every solve should not pass a hint.
//
// Determinism: a nil Hint leaves every search path bit-identical to
// earlier releases. With a hint, the solve is still a deterministic
// function of (model, params, hint) under a node-limit-only budget, so
// warm-started runs are self-consistent run to run.
//
// Interval IDs are dense creation indices and stable across Model.Clone,
// so one Hint serves every portfolio worker.
type Hint struct {
	// Starts[i] is the suggested start of the interval with ID i, or -1
	// when the interval carries no hint. Must cover every interval.
	Starts []int64
	// Res[i] is the suggested resource of the interval with ID i, or -1.
	// May be nil when the model has no matchmaking variables.
	Res []int
}

// covers reports whether the hint is usable for a model with n intervals.
func (h *Hint) covers(n int) bool {
	return h != nil && len(h.Starts) == n && (h.Res == nil || len(h.Res) == n)
}

// start returns the hinted start of interval id, or -1.
func (h *Hint) start(id int) int64 {
	if h == nil || id >= len(h.Starts) {
		return -1
	}
	return h.Starts[id]
}

// res returns the hinted resource of interval id, or -1.
func (h *Hint) res(id int) int {
	if h == nil || h.Res == nil || id >= len(h.Res) {
		return -1
	}
	return h.Res[id]
}
