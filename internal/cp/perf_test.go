package cp

import (
	"testing"
	"time"
)

func TestPerfLargeGreedy(t *testing.T) {
	m := NewModel(100_000_000)
	var ivs []*Interval
	var lates []*Bool
	for i := 0; i < 5000; i++ {
		iv := m.NewInterval("t", int64(1000+i%50000))
		iv.Due = 50_000_000
		ivs = append(ivs, iv)
		l := m.NewBool("late")
		m.AddLateness([]*Interval{iv}, iv.Due, l)
		lates = append(lates, l)
	}
	m.AddCumulative("map", -1, 64, ivs)
	m.Minimize(lates)
	t0 := time.Now()
	r := NewSolver(m, Params{TimeLimit: 200 * time.Millisecond}).Solve()
	t.Logf("status=%v obj=%d nodes=%d elapsed=%v", r.Status, r.Objective, r.Nodes, time.Since(t0))
	if !r.HasSolution() {
		t.Fatal("no solution")
	}
}
