// Package cp implements the constraint programming substrate that replaces
// IBM ILOG CPLEX CP Optimizer in this reproduction. It provides exactly the
// modelling primitives the paper's Table 1 formulation needs:
//
//   - interval variables with fixed durations and pruned start-time bounds
//     (the a_t decision variables),
//   - resource-assignment variables with finite set domains (the x_tr
//     matchmaking variables, in the "alternative" style of OPL),
//   - cumulative resource constraints with timetable propagation
//     (constraints 5 and 6),
//   - max-end precedence between a job's map and reduce phases
//     (constraint 3),
//   - reified lateness indicators (constraint 4) and a sum bound over them
//     used for branch-and-bound on the objective min Σ N_j.
//
// The search is a set-times depth-first search with task postponement and
// EDF-flavoured tie-breaking, wrapped in a branch-and-bound loop on the
// number of late jobs, with node and wall-clock limits. This mirrors how a
// commercial CP engine behaves on the paper's models: a good first solution
// is found greedily and then improved within a time budget.
package cp

// The Store is the backtrackable state shared by all variables: a flat
// array of int64 cells plus a trail recording old values so that the search
// can undo decisions. Variables are views over ranges of cells.

type trailEntry struct {
	idx int32
	old int64
}

// Store holds all trailed solver state.
type Store struct {
	cells []int64
	trail []trailEntry
	marks []int // trail length at the start of each level
	pops  int64 // number of Pop calls, for cache invalidation
}

// NewStore returns an empty store at level 0.
func NewStore() *Store {
	return &Store{}
}

// alloc reserves n cells initialized to the given values and returns the
// index of the first.
func (s *Store) alloc(vals ...int64) int32 {
	idx := int32(len(s.cells))
	s.cells = append(s.cells, vals...)
	return idx
}

// get reads a cell.
func (s *Store) get(idx int32) int64 { return s.cells[idx] }

// set writes a cell, trailing the previous value if the store is inside at
// least one level and the value actually changes.
func (s *Store) set(idx int32, v int64) {
	old := s.cells[idx]
	if old == v {
		return
	}
	if len(s.marks) > 0 {
		s.trail = append(s.trail, trailEntry{idx: idx, old: old})
	}
	s.cells[idx] = v
}

// Level returns the current decision level (0 at the root).
func (s *Store) Level() int { return len(s.marks) }

// Push opens a new decision level.
func (s *Store) Push() {
	s.marks = append(s.marks, len(s.trail))
}

// Pop closes the current decision level, undoing all changes made in it.
// It panics at level 0.
func (s *Store) Pop() {
	if len(s.marks) == 0 {
		panic("cp: Pop at root level")
	}
	mark := s.marks[len(s.marks)-1]
	s.marks = s.marks[:len(s.marks)-1]
	s.pops++
	for i := len(s.trail) - 1; i >= mark; i-- {
		e := s.trail[i]
		s.cells[e.idx] = e.old
	}
	s.trail = s.trail[:mark]
}

// PopAll unwinds every open level, returning the store to its root state.
func (s *Store) PopAll() {
	for len(s.marks) > 0 {
		s.Pop()
	}
}
