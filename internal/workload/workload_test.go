package workload

import (
	"math"
	"testing"
	"testing/quick"

	"mrcprm/internal/stats"
)

func testStream() *stats.Stream { return stats.NewStream(99, 101) }

func TestLPTMakespanSimple(t *testing.T) {
	mk := func(execs ...int64) []*Task {
		var ts []*Task
		for i, e := range execs {
			ts = append(ts, newTask(0, MapTask, i, e))
		}
		return ts
	}
	cases := []struct {
		tasks []*Task
		slots int64
		want  int64
	}{
		{mk(10), 1, 10},
		{mk(10, 20, 30), 1, 60},
		{mk(10, 20, 30), 3, 30},
		{mk(10, 20, 30), 10, 30},   // more slots than tasks: longest task
		{mk(3, 3, 3, 3), 2, 6},     // perfect split
		{mk(5, 4, 3, 3, 3), 2, 10}, // LPT: 5|4 -> 5,3|4 ... -> loads {8,10}
		{nil, 4, 0},                // no tasks
	}
	for i, c := range cases {
		if got := lptMakespan(c.tasks, c.slots); got != c.want {
			t.Errorf("case %d: makespan %d, want %d", i, got, c.want)
		}
	}
}

// Property: the LPT makespan is bounded below by both the longest task and
// the average load, and above by total work.
func TestQuickLPTMakespanBounds(t *testing.T) {
	rng := testStream()
	f := func(nTasks, nSlots uint8) bool {
		n := int(nTasks%40) + 1
		s := int64(nSlots%8) + 1
		var tasks []*Task
		var total, longest int64
		for i := 0; i < n; i++ {
			e := int64(1 + rng.IntN(1000))
			tasks = append(tasks, newTask(0, MapTask, i, e))
			total += e
			if e > longest {
				longest = e
			}
		}
		ms := lptMakespan(tasks, s)
		lower := max64(longest, (total+s-1)/s)
		return ms >= lower && ms <= total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func TestSyntheticDefaults(t *testing.T) {
	c := DefaultSynthetic()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.TotalMapSlots() != 100 || c.TotalReduceSlots() != 100 {
		t.Fatalf("default slots %d/%d, want 100/100", c.TotalMapSlots(), c.TotalReduceSlots())
	}
}

func TestSyntheticGenerateShapes(t *testing.T) {
	c := DefaultSynthetic()
	jobs, err := c.Generate(200, testStream())
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 200 {
		t.Fatalf("generated %d jobs", len(jobs))
	}
	prevArrival := int64(-1)
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Fatal(err)
		}
		if n := int64(len(j.MapTasks)); n < c.NumMapLo || n > c.NumMapHi {
			t.Fatalf("job %d has %d map tasks", j.ID, n)
		}
		if n := int64(len(j.ReduceTasks)); n < c.NumReduceLo || n > c.NumReduceHi {
			t.Fatalf("job %d has %d reduce tasks", j.ID, n)
		}
		for _, mt := range j.MapTasks {
			if mt.Exec < 1000 || mt.Exec > c.EmaxSec*1000 {
				t.Fatalf("map exec %dms outside [1s, %ds]", mt.Exec, c.EmaxSec)
			}
			if mt.Exec%1000 != 0 {
				t.Fatalf("map exec %dms is not whole seconds", mt.Exec)
			}
		}
		if j.Arrival <= prevArrival {
			t.Fatalf("arrivals not strictly increasing at job %d", j.ID)
		}
		prevArrival = j.Arrival
	}
}

// The reduce execution time rule: re = 3*Σme/k_rd + DU[1,10] seconds.
func TestSyntheticReduceRule(t *testing.T) {
	c := DefaultSynthetic()
	jobs, err := c.Generate(50, testStream())
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		var totalMap int64
		for _, mt := range j.MapTasks {
			totalMap += mt.Exec
		}
		base := 3 * totalMap / int64(len(j.ReduceTasks))
		for _, rt := range j.ReduceTasks {
			noise := rt.Exec - base
			if noise < 1000 || noise > 10000 {
				t.Fatalf("job %d reduce noise %dms outside [1s,10s]", j.ID, noise)
			}
		}
	}
}

func TestSyntheticEarliestStartRule(t *testing.T) {
	c := DefaultSynthetic()
	c.P = 0.5
	jobs, err := c.Generate(400, testStream())
	if err != nil {
		t.Fatal(err)
	}
	delayed := 0
	for _, j := range jobs {
		if j.EarliestStart > j.Arrival {
			delayed++
			off := j.EarliestStart - j.Arrival
			if off < 1000 || off > c.SmaxSec*1000 {
				t.Fatalf("job %d start offset %dms outside [1s, smax]", j.ID, off)
			}
		}
	}
	if frac := float64(delayed) / 400; math.Abs(frac-0.5) > 0.12 {
		t.Fatalf("delayed fraction %g far from p=0.5", frac)
	}

	c.P = 0
	jobs, err = c.Generate(50, testStream())
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.EarliestStart != j.Arrival {
			t.Fatal("p=0 must give s_j = v_j")
		}
	}
}

func TestSyntheticDeadlineRule(t *testing.T) {
	c := DefaultSynthetic()
	jobs, err := c.Generate(100, testStream())
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		te := j.MinExecTime(c.TotalMapSlots(), c.TotalReduceSlots())
		rel := j.Deadline - j.EarliestStart
		if rel < te {
			t.Fatalf("job %d deadline slack %d below TE %d (multiplier < 1?)", j.ID, rel, te)
		}
		if float64(rel) > float64(te)*c.DeadlineUL {
			t.Fatalf("job %d deadline slack %d above TE*dUL", j.ID, rel)
		}
	}
}

func TestSyntheticValidation(t *testing.T) {
	bad := DefaultSynthetic()
	bad.Lambda = 0
	if _, err := bad.Generate(1, testStream()); err == nil {
		t.Fatal("zero arrival rate accepted")
	}
	bad = DefaultSynthetic()
	bad.P = 1.5
	if err := bad.Validate(); err == nil {
		t.Fatal("p > 1 accepted")
	}
	bad = DefaultSynthetic()
	bad.DeadlineUL = 0.5
	if err := bad.Validate(); err == nil {
		t.Fatal("dUL < 1 accepted")
	}
}

func TestSyntheticDeterminism(t *testing.T) {
	c := DefaultSynthetic()
	a, err := c.Generate(30, stats.NewStream(5, 6))
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Generate(30, stats.NewStream(5, 6))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Arrival != b[i].Arrival || a[i].Deadline != b[i].Deadline ||
			a[i].NumTasks() != b[i].NumTasks() {
			t.Fatalf("job %d differs between equal-seed generations", i)
		}
	}
}

func TestFacebookTypeMixExact(t *testing.T) {
	counts := typeMix(1000)
	for i, jt := range FacebookTable4 {
		if counts[i] != jt.NumJobs {
			t.Fatalf("type %d count %d, want %d", jt.Type, counts[i], jt.NumJobs)
		}
	}
}

func TestFacebookTypeMixScaled(t *testing.T) {
	for _, n := range []int{10, 100, 250, 999} {
		counts := typeMix(n)
		total := 0
		for _, c := range counts {
			total += c
		}
		if total != n {
			t.Fatalf("typeMix(%d) sums to %d", n, total)
		}
	}
}

func TestFacebookGenerate(t *testing.T) {
	c := FacebookConfig{NumJobs: 100, Lambda: 0.001, DeadlineUL: 2, NumResources: 64}
	jobs, err := c.Generate(testStream())
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 100 {
		t.Fatalf("generated %d jobs", len(jobs))
	}
	shapes := map[[2]int]bool{}
	for _, jt := range FacebookTable4 {
		shapes[[2]int{jt.NumMap, jt.NumRed}] = true
	}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Fatal(err)
		}
		if !shapes[[2]int{len(j.MapTasks), len(j.ReduceTasks)}] {
			t.Fatalf("job %d shape (%d,%d) not in Table 4", j.ID, len(j.MapTasks), len(j.ReduceTasks))
		}
		if j.EarliestStart != j.Arrival {
			t.Fatal("facebook workload must have p=0")
		}
	}
}

func TestFacebookExecDistributions(t *testing.T) {
	// Sample means should approximate the LN means (48.6s map, 1.2e3 s reduce).
	rng := testStream()
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += float64(lnMS(FacebookMapExec, rng))
	}
	mean := sum / n
	want := FacebookMapExec.Mean()
	if math.Abs(mean-want)/want > 0.05 {
		t.Fatalf("map exec sample mean %.0fms, want ~%.0fms", mean, want)
	}
}

func TestJobAccessors(t *testing.T) {
	j := &Job{ID: 3}
	j.MapTasks = []*Task{newTask(3, MapTask, 1, 1000), newTask(3, MapTask, 2, 2000)}
	j.ReduceTasks = []*Task{newTask(3, ReduceTask, 1, 3000)}
	if j.NumTasks() != 3 {
		t.Fatal("NumTasks")
	}
	if j.TotalWork() != 6000 {
		t.Fatal("TotalWork")
	}
	if got := len(j.Tasks()); got != 3 {
		t.Fatal("Tasks")
	}
	if j.Tasks()[0].Type != MapTask || j.Tasks()[2].Type != ReduceTask {
		t.Fatal("Tasks order")
	}
	j.EarliestStart, j.Deadline = 100, 7000
	if j.Laxity(5000) != 1900 {
		t.Fatalf("Laxity = %d", j.Laxity(5000))
	}
	if j.MapTasks[0].ID != "t3_m1" || j.ReduceTasks[0].ID != "t3_r1" {
		t.Fatal("task naming")
	}
}

func TestTaskTypeString(t *testing.T) {
	if MapTask.String() != "map" || ReduceTask.String() != "reduce" {
		t.Fatal("TaskType strings")
	}
}

func TestJobValidateCatchesBadJobs(t *testing.T) {
	j := &Job{ID: 1, Arrival: 100, EarliestStart: 50, Deadline: 500}
	j.MapTasks = []*Task{newTask(1, MapTask, 1, 1000)}
	if err := j.Validate(); err == nil {
		t.Fatal("earliest start before arrival accepted")
	}
	j = &Job{ID: 1, Arrival: 0, EarliestStart: 0, Deadline: 500}
	if err := j.Validate(); err == nil {
		t.Fatal("job without map tasks accepted")
	}
	j.MapTasks = []*Task{newTask(2, MapTask, 1, 1000)}
	if err := j.Validate(); err == nil {
		t.Fatal("wrong parent job accepted")
	}
}
