package workload

import (
	"fmt"

	"mrcprm/internal/stats"
)

// SyntheticConfig parameterizes the Table 3 workload. Time-valued fields
// are in the paper's units (seconds) and converted to milliseconds during
// generation. The zero value is not useful; start from DefaultSynthetic.
type SyntheticConfig struct {
	// NumMapLo/Hi bound k_j^mp ~ DU[lo, hi].
	NumMapLo, NumMapHi int64
	// NumReduceLo/Hi bound k_j^rd ~ DU[lo, hi].
	NumReduceLo, NumReduceHi int64
	// EmaxSec is the upper bound of the map task execution time
	// me ~ DU[1, emax] (seconds). Paper values: {10, 50, 100}, default 50.
	EmaxSec int64
	// ReduceNoiseLo/HiSec bound the additive DU term of the reduce task
	// execution time re = 3*Σme/k_rd + DU[1,10] (seconds).
	ReduceNoiseLoSec, ReduceNoiseHiSec int64
	// P is the Bernoulli probability that a job's earliest start time lies
	// after its arrival. Paper values: {0.1, 0.5, 0.9}, default 0.5.
	P float64
	// SmaxSec is the upper bound of the DU offset added to the arrival
	// time when P fires (seconds). Paper: {10000, 50000, 250000}, default 50000.
	SmaxSec int64
	// DeadlineUL is d_UL, the upper bound of the deadline multiplier
	// U[1, d_UL]. Paper values: {2, 5, 10}, default 5.
	DeadlineUL float64
	// Lambda is the Poisson job arrival rate in jobs/second.
	// Paper values: {0.001, 0.01, 0.015, 0.02}, default 0.01.
	Lambda float64
	// NumResources (m), MapSlotsPerResource (c^mp) and
	// ReduceSlotsPerResource (c^rd) describe the cluster used both for TE
	// computation and for the simulated system. Paper m: {25, 50, 100},
	// default 50, with 2 map and 2 reduce slots per resource (the Section
	// V.D example configuration).
	NumResources           int
	MapSlotsPerResource    int64
	ReduceSlotsPerResource int64
	// TaskMemLo/Hi bound an optional per-task memory demand ~ DU[lo, hi]
	// (arbitrary units, matched against Cluster.MemCapacity). TaskMemHi = 0
	// (the default) disables the draws entirely, leaving the generator's
	// random stream — and therefore every historical workload — unchanged.
	TaskMemLo, TaskMemHi int64
}

// DefaultSynthetic returns Table 3 with every factor at its default value.
func DefaultSynthetic() SyntheticConfig {
	return SyntheticConfig{
		NumMapLo: 1, NumMapHi: 100,
		NumReduceLo: 1, NumReduceHi: 100,
		EmaxSec:          50,
		ReduceNoiseLoSec: 1, ReduceNoiseHiSec: 10,
		P:                      0.5,
		SmaxSec:                50000,
		DeadlineUL:             5,
		Lambda:                 0.01,
		NumResources:           50,
		MapSlotsPerResource:    2,
		ReduceSlotsPerResource: 2,
	}
}

// TotalMapSlots returns m * c^mp.
func (c SyntheticConfig) TotalMapSlots() int64 {
	return int64(c.NumResources) * c.MapSlotsPerResource
}

// TotalReduceSlots returns m * c^rd.
func (c SyntheticConfig) TotalReduceSlots() int64 {
	return int64(c.NumResources) * c.ReduceSlotsPerResource
}

// Validate checks the configuration for inconsistencies.
func (c SyntheticConfig) Validate() error {
	switch {
	case c.NumMapLo < 1 || c.NumMapHi < c.NumMapLo:
		return fmt.Errorf("workload: bad map task count range [%d,%d]", c.NumMapLo, c.NumMapHi)
	case c.NumReduceLo < 0 || c.NumReduceHi < c.NumReduceLo:
		return fmt.Errorf("workload: bad reduce task count range [%d,%d]", c.NumReduceLo, c.NumReduceHi)
	case c.EmaxSec < 1:
		return fmt.Errorf("workload: emax %d must be at least 1s", c.EmaxSec)
	case c.P < 0 || c.P > 1:
		return fmt.Errorf("workload: p %g out of [0,1]", c.P)
	case c.P > 0 && c.SmaxSec < 1:
		return fmt.Errorf("workload: smax %d must be at least 1s when p > 0", c.SmaxSec)
	case c.DeadlineUL < 1:
		return fmt.Errorf("workload: deadline multiplier upper bound %g must be >= 1", c.DeadlineUL)
	case c.Lambda <= 0:
		return fmt.Errorf("workload: arrival rate %g must be positive", c.Lambda)
	case c.NumResources < 1 || c.MapSlotsPerResource < 1 || c.ReduceSlotsPerResource < 1:
		return fmt.Errorf("workload: bad cluster shape m=%d c_mp=%d c_rd=%d",
			c.NumResources, c.MapSlotsPerResource, c.ReduceSlotsPerResource)
	case c.TaskMemHi > 0 && (c.TaskMemLo < 1 || c.TaskMemHi < c.TaskMemLo):
		return fmt.Errorf("workload: bad task memory range [%d,%d]", c.TaskMemLo, c.TaskMemHi)
	case c.TaskMemHi == 0 && c.TaskMemLo != 0:
		return fmt.Errorf("workload: task memory lower bound %d without an upper bound", c.TaskMemLo)
	}
	return nil
}

// Generate produces n jobs with Poisson arrivals per Table 3. Job IDs are
// assigned in arrival order starting from 0.
func (c SyntheticConfig) Generate(n int, rng *stats.Stream) ([]*Job, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	arrivalRng := rng.Derive(1)
	shapeRng := rng.Derive(2)
	slaRng := rng.Derive(3)

	// Memory demands draw from their own derived stream, and only when the
	// knob is on — streams 1..3 see exactly the historical draw sequence
	// either way, so mem-off generation is bit-identical to older versions.
	var memRng *stats.Stream
	if c.TaskMemHi > 0 {
		memRng = rng.Derive(4)
	}

	arrivals := stats.PoissonProcess{Rate: c.Lambda}.Arrivals(n, arrivalRng)
	jobs := make([]*Job, n)
	for i := range jobs {
		j := c.generateJob(i, shapeRng)
		if memRng != nil {
			memDist := stats.DiscreteUniform{Lo: c.TaskMemLo, Hi: c.TaskMemHi}
			for _, t := range j.Tasks() {
				t.Mem = memDist.SampleInt(memRng)
			}
		}
		assignSLA(j, int64(arrivals[i]*1000), c.P, c.SmaxSec*1000, c.DeadlineUL,
			c.TotalMapSlots(), c.TotalReduceSlots(), slaRng)
		if err := j.Validate(); err != nil {
			return nil, err
		}
		jobs[i] = j
	}
	return jobs, nil
}

// generateJob draws the task structure of one job: k_mp map tasks with
// me ~ DU[1, emax] seconds each, and k_rd reduce tasks with
// re = 3*Σme/k_rd + DU[1,10] seconds each.
func (c SyntheticConfig) generateJob(id int, rng *stats.Stream) *Job {
	j := &Job{ID: id}
	km := (stats.DiscreteUniform{Lo: c.NumMapLo, Hi: c.NumMapHi}).SampleInt(rng)
	kr := (stats.DiscreteUniform{Lo: c.NumReduceLo, Hi: c.NumReduceHi}).SampleInt(rng)
	meDist := stats.DiscreteUniform{Lo: 1, Hi: c.EmaxSec}
	var totalMapSec int64
	for i := int64(0); i < km; i++ {
		sec := meDist.SampleInt(rng)
		totalMapSec += sec
		j.MapTasks = append(j.MapTasks, newTask(id, MapTask, int(i)+1, sec*1000))
	}
	if kr > 0 {
		baseMS := 3 * totalMapSec * 1000 / kr
		noise := stats.DiscreteUniform{Lo: c.ReduceNoiseLoSec, Hi: c.ReduceNoiseHiSec}
		for i := int64(0); i < kr; i++ {
			exec := baseMS + noise.SampleInt(rng)*1000
			j.ReduceTasks = append(j.ReduceTasks, newTask(id, ReduceTask, int(i)+1, exec))
		}
	}
	return j
}
