// Package workload defines the MapReduce job model of the paper (Section
// III.A) and the two workload generators of the evaluation: the Table 3
// synthetic workload used for the factor-at-a-time experiments, and the
// Table 4 Facebook-trace-derived workload used for the comparison with
// MinEDF-WC.
//
// All times are int64 milliseconds. The generators are deterministic given
// a stats.Stream.
package workload

import (
	"fmt"
	"sort"

	"mrcprm/internal/stats"
)

// TaskType distinguishes map and reduce tasks.
type TaskType int

const (
	// MapTask is the paper's type 0.
	MapTask TaskType = iota
	// ReduceTask is the paper's type 1.
	ReduceTask
)

func (t TaskType) String() string {
	if t == MapTask {
		return "map"
	}
	return "reduce"
}

// Task is one unit of work of a job: the paper's Task tuple
// <id, parent job, type, execution time, resource capacity requirement>.
type Task struct {
	ID    string
	JobID int
	Type  TaskType
	// Exec is the execution time e_t in milliseconds, inclusive of input
	// reading and map/reduce data exchange (Section III.A).
	Exec int64
	// Req is the resource capacity requirement q_t; the paper sets it to 1.
	Req int64
	// Mem is the task's memory demand in the cluster's memory units. It is
	// only enforced on clusters with a memory dimension (MemCapacity > 0);
	// zero means the task needs no accountable memory.
	Mem int64
	// Preds lists same-job tasks that must complete before this one may
	// start. Only meaningful when the owning job sets TaskPrecedence (the
	// generalized-workflow extension); nil under classic MapReduce
	// semantics, where the reduce-after-all-maps rule applies instead.
	Preds []*Task
}

// Job is a MapReduce job with its SLA: the paper's Job tuple
// <id, earliest start time, deadline> plus the arrival time used by the
// open-system resource manager.
type Job struct {
	ID int
	// Arrival is v_j, the time the job enters the system.
	Arrival int64
	// EarliestStart is s_j: the job may not start before this instant.
	EarliestStart int64
	// Deadline is d_j, the end-to-end SLA deadline.
	Deadline int64

	MapTasks    []*Task
	ReduceTasks []*Task

	// TaskPrecedence switches the job from classic MapReduce semantics
	// (every reduce task waits for every map task) to user-specified
	// task-level precedence via Task.Preds — the paper's future-work
	// workflow generalization. Task Type then only selects which slot pool
	// a task occupies.
	TaskPrecedence bool
}

// NumTasks returns the total number of tasks of the job.
func (j *Job) NumTasks() int { return len(j.MapTasks) + len(j.ReduceTasks) }

// Tasks returns the job's tasks, map tasks first.
func (j *Job) Tasks() []*Task {
	out := make([]*Task, 0, j.NumTasks())
	out = append(out, j.MapTasks...)
	out = append(out, j.ReduceTasks...)
	return out
}

// TotalWork returns the sum of all task execution times.
func (j *Job) TotalWork() int64 {
	var w int64
	for _, t := range j.MapTasks {
		w += t.Exec
	}
	for _, t := range j.ReduceTasks {
		w += t.Exec
	}
	return w
}

// Laxity returns the job's slack L_j = d_j - s_j - TE with respect to the
// given minimum execution time.
func (j *Job) Laxity(te int64) int64 {
	return j.Deadline - j.EarliestStart - te
}

// MinExecTime computes TE, the minimum execution time of the job assuming
// no other jobs are in the system (Table 3, deadline row): the makespan of
// the map phase on mapSlots parallel slots followed by the makespan of the
// reduce phase on reduceSlots slots, both scheduled with the LPT
// (longest-processing-time-first) list rule.
func (j *Job) MinExecTime(mapSlots, reduceSlots int64) int64 {
	return lptMakespan(j.MapTasks, mapSlots) + lptMakespan(j.ReduceTasks, reduceSlots)
}

// lptMakespan returns the list-scheduling makespan of tasks on n identical
// slots, assigning the longest task first to the least loaded slot.
func lptMakespan(tasks []*Task, n int64) int64 {
	if len(tasks) == 0 {
		return 0
	}
	if n <= 0 {
		panic("workload: makespan needs at least one slot")
	}
	if int64(len(tasks)) <= n {
		var m int64
		for _, t := range tasks {
			if t.Exec > m {
				m = t.Exec
			}
		}
		return m
	}
	durs := make([]int64, len(tasks))
	for i, t := range tasks {
		durs[i] = t.Exec
	}
	sort.Slice(durs, func(a, b int) bool { return durs[a] > durs[b] })
	// Min-heap of slot loads.
	loads := make([]int64, n)
	for _, d := range durs {
		// Pop the least loaded slot (linear scan is fine: n is the slot
		// count of a cluster, and this runs once per job).
		mi := 0
		for i := 1; i < len(loads); i++ {
			if loads[i] < loads[mi] {
				mi = i
			}
		}
		loads[mi] += d
	}
	var m int64
	for _, l := range loads {
		if l > m {
			m = l
		}
	}
	return m
}

// Validate performs sanity checks on a generated job.
func (j *Job) Validate() error {
	if j.EarliestStart < j.Arrival {
		return fmt.Errorf("workload: job %d has earliest start %d before arrival %d",
			j.ID, j.EarliestStart, j.Arrival)
	}
	if j.Deadline < j.EarliestStart {
		return fmt.Errorf("workload: job %d has deadline %d before earliest start %d",
			j.ID, j.Deadline, j.EarliestStart)
	}
	if len(j.MapTasks) == 0 {
		return fmt.Errorf("workload: job %d has no map tasks", j.ID)
	}
	for _, t := range j.Tasks() {
		if t.Exec <= 0 {
			return fmt.Errorf("workload: job %d task %s has non-positive execution time %d",
				j.ID, t.ID, t.Exec)
		}
		if t.JobID != j.ID {
			return fmt.Errorf("workload: job %d task %s has parent job %d", j.ID, t.ID, t.JobID)
		}
		if !j.TaskPrecedence && len(t.Preds) > 0 {
			return fmt.Errorf("workload: job %d task %s has preds but the job is not marked TaskPrecedence",
				j.ID, t.ID)
		}
	}
	if j.TaskPrecedence {
		return j.validatePrecedence()
	}
	return nil
}

// validatePrecedence checks that the task dependency graph stays inside
// the job and is acyclic.
func (j *Job) validatePrecedence() error {
	tasks := j.Tasks()
	index := make(map[*Task]int, len(tasks))
	for i, t := range tasks {
		index[t] = i
	}
	indeg := make([]int, len(tasks))
	succs := make([][]int, len(tasks))
	for i, t := range tasks {
		for _, p := range t.Preds {
			pi, ok := index[p]
			if !ok {
				return fmt.Errorf("workload: job %d task %s depends on a task outside the job", j.ID, t.ID)
			}
			indeg[i]++
			succs[pi] = append(succs[pi], i)
		}
	}
	var queue []int
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	seen := 0
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		seen++
		for _, s := range succs[i] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if seen != len(tasks) {
		return fmt.Errorf("workload: job %d has a dependency cycle", j.ID)
	}
	return nil
}

// newTask builds a task with the paper's naming convention tJ_KIND_N.
func newTask(jobID int, typ TaskType, idx int, exec int64) *Task {
	kind := "m"
	if typ == ReduceTask {
		kind = "r"
	}
	return &Task{
		ID:    fmt.Sprintf("t%d_%s%d", jobID, kind, idx),
		JobID: jobID,
		Type:  typ,
		Exec:  exec,
		Req:   1,
	}
}

// assignSLA fills arrival, earliest start, and deadline on the job from the
// shared Table 3 rules: s_j = v_j, or v_j + DU[1,smax] with probability p;
// d_j = s_j + TE * U[1, dUL].
func assignSLA(j *Job, arrivalMS int64, p float64, smaxMS int64, dUL float64,
	mapSlots, reduceSlots int64, rng *stats.Stream) {
	j.Arrival = arrivalMS
	j.EarliestStart = arrivalMS
	if p > 0 && (stats.Bernoulli{P: p}).SampleBool(rng) {
		j.EarliestStart = arrivalMS + (stats.DiscreteUniform{Lo: 1, Hi: smaxMS}).SampleInt(rng)
	}
	te := j.MinExecTime(mapSlots, reduceSlots)
	mult := (stats.Uniform{Lo: 1, Hi: dUL}).Sample(rng)
	j.Deadline = j.EarliestStart + int64(float64(te)*mult)
}
