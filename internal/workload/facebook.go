package workload

import (
	"fmt"

	"mrcprm/internal/stats"
)

// FacebookJobType is one row of Table 4: a (map tasks, reduce tasks) shape
// and the number of jobs with that shape in the 1000-job workload derived
// from the October 2009 Facebook traces.
type FacebookJobType struct {
	Type    int
	NumMap  int
	NumRed  int
	NumJobs int
}

// FacebookTable4 is the job mix of Table 4, verbatim.
var FacebookTable4 = []FacebookJobType{
	{1, 1, 0, 380},
	{2, 2, 0, 160},
	{3, 10, 3, 140},
	{4, 50, 0, 80},
	{5, 100, 0, 60},
	{6, 200, 50, 60},
	{7, 400, 0, 40},
	{8, 800, 180, 40},
	{9, 2400, 360, 20},
	{10, 4800, 0, 20},
}

// Facebook task execution time distributions (Section VI.B.1), in
// milliseconds: LN(mu, sigma^2) on the underlying normal, as identified by
// Verma et al. from the trace CDFs and confirmed by the paper's authors.
var (
	FacebookMapExec    = stats.LogNormal{Mu: 9.9511, Sigma2: 1.6764}
	FacebookReduceExec = stats.LogNormal{Mu: 12.375, Sigma2: 1.6262}
)

// FacebookConfig parameterizes the comparison workload of Section VI.B.1.
type FacebookConfig struct {
	// NumJobs scales the workload; 1000 reproduces the paper exactly (the
	// Table 4 mix is kept proportionally for other sizes).
	NumJobs int
	// Lambda is the Poisson arrival rate in jobs/s. The paper compares
	// rates from 0.0001 to 0.0005.
	Lambda float64
	// DeadlineUL is the deadline multiplier upper bound; the paper uses 2.
	DeadlineUL float64
	// NumResources is the cluster size; the paper uses 64 resources with
	// one map and one reduce slot each.
	NumResources int
}

// DefaultFacebook returns the Section VI.B.1 configuration at the lowest
// compared arrival rate.
func DefaultFacebook() FacebookConfig {
	return FacebookConfig{NumJobs: 1000, Lambda: 0.0001, DeadlineUL: 2, NumResources: 64}
}

// Validate checks the configuration.
func (c FacebookConfig) Validate() error {
	switch {
	case c.NumJobs < 1:
		return fmt.Errorf("workload: facebook job count %d must be positive", c.NumJobs)
	case c.Lambda <= 0:
		return fmt.Errorf("workload: facebook arrival rate %g must be positive", c.Lambda)
	case c.DeadlineUL < 1:
		return fmt.Errorf("workload: facebook deadline multiplier %g must be >= 1", c.DeadlineUL)
	case c.NumResources < 1:
		return fmt.Errorf("workload: facebook cluster size %d must be positive", c.NumResources)
	}
	return nil
}

// typeMix returns the per-type job counts scaled to total n, preserving the
// Table 4 proportions (largest remainders get the leftover jobs).
func typeMix(n int) []int {
	counts := make([]int, len(FacebookTable4))
	rem := make([]float64, len(FacebookTable4))
	total := 0
	for i, jt := range FacebookTable4 {
		exact := float64(jt.NumJobs) * float64(n) / 1000
		counts[i] = int(exact)
		rem[i] = exact - float64(counts[i])
		total += counts[i]
	}
	for total < n {
		best := 0
		for i := range rem {
			if rem[i] > rem[best] {
				best = i
			}
		}
		counts[best]++
		rem[best] = -1
		total++
	}
	return counts
}

// Generate produces the Facebook workload: jobs of the Table 4 shapes in
// random arrival order, log-normal task execution times, earliest start
// equal to arrival (p = 0), and deadlines d_j = s_j + TE * U[1, dUL].
func (c FacebookConfig) Generate(rng *stats.Stream) ([]*Job, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	arrivalRng := rng.Derive(1)
	shapeRng := rng.Derive(2)
	slaRng := rng.Derive(3)

	// Build the type sequence and shuffle it into arrival order.
	var seq []int
	for i, cnt := range typeMix(c.NumJobs) {
		for k := 0; k < cnt; k++ {
			seq = append(seq, i)
		}
	}
	shapeRng.Shuffle(len(seq), func(i, j int) { seq[i], seq[j] = seq[j], seq[i] })

	arrivals := stats.PoissonProcess{Rate: c.Lambda}.Arrivals(len(seq), arrivalRng)
	jobs := make([]*Job, len(seq))
	slots := int64(c.NumResources) // one map and one reduce slot per resource
	for i, ti := range seq {
		jt := FacebookTable4[ti]
		j := &Job{ID: i}
		for k := 0; k < jt.NumMap; k++ {
			j.MapTasks = append(j.MapTasks, newTask(i, MapTask, k+1, lnMS(FacebookMapExec, shapeRng)))
		}
		for k := 0; k < jt.NumRed; k++ {
			j.ReduceTasks = append(j.ReduceTasks, newTask(i, ReduceTask, k+1, lnMS(FacebookReduceExec, shapeRng)))
		}
		assignSLA(j, int64(arrivals[i]*1000), 0, 0, c.DeadlineUL, slots, slots, slaRng)
		if err := j.Validate(); err != nil {
			return nil, err
		}
		jobs[i] = j
	}
	return jobs, nil
}

// lnMS samples a log-normal execution time in milliseconds, clamped to at
// least 1ms so every task has positive duration.
func lnMS(d stats.LogNormal, rng *stats.Stream) int64 {
	v := int64(d.Sample(rng))
	if v < 1 {
		v = 1
	}
	return v
}
