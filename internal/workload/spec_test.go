package workload

import (
	"reflect"
	"testing"

	"mrcprm/internal/stats"
)

// TestSpecRoundTrip: generator output shipped through SpecOf and rebuilt in
// submission order is identical to the original, task IDs included.
func TestSpecRoundTrip(t *testing.T) {
	cfg := DefaultSynthetic()
	cfg.NumMapHi = 8
	cfg.NumReduceHi = 4
	jobs, err := cfg.Generate(10, stats.NewStream(11, 12))
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		rebuilt, err := SpecOf(j).Job(j.ID)
		if err != nil {
			t.Fatal(err)
		}
		if rebuilt.Arrival != j.Arrival || rebuilt.EarliestStart != j.EarliestStart ||
			rebuilt.Deadline != j.Deadline {
			t.Fatalf("SLA changed: %+v vs %+v", rebuilt, j)
		}
		if rebuilt.NumTasks() != j.NumTasks() {
			t.Fatalf("task count changed: %d vs %d", rebuilt.NumTasks(), j.NumTasks())
		}
		for i, orig := range j.Tasks() {
			got := rebuilt.Tasks()[i]
			if got.ID != orig.ID || got.Exec != orig.Exec || got.Type != orig.Type ||
				got.Req != orig.Req || got.JobID != orig.JobID {
				t.Fatalf("task %d changed: %+v vs %+v", i, got, orig)
			}
		}
	}
}

func TestSpecValidation(t *testing.T) {
	if _, err := (JobSpec{DeadlineMS: 10}).Job(0); err == nil {
		t.Fatal("spec without map tasks accepted")
	}
	if _, err := (JobSpec{MapExecMS: []int64{0}, DeadlineMS: 10}).Job(0); err == nil {
		t.Fatal("zero exec time accepted")
	}
	// Earliest start before arrival clamps instead of failing.
	s := JobSpec{ArrivalMS: 100, EarliestStartMS: 50, DeadlineMS: 10_000, MapExecMS: []int64{100}}
	j, err := s.Job(1)
	if err != nil {
		t.Fatal(err)
	}
	if j.EarliestStart != 100 {
		t.Fatalf("earliest start %d, want clamped to 100", j.EarliestStart)
	}
	if !reflect.DeepEqual(SpecOf(j).MapExecMS, []int64{100}) {
		t.Fatal("round trip lost the map task")
	}
}
