package core

import (
	"fmt"
	"math"

	"mrcprm/internal/sim"
	"mrcprm/internal/workload"
)

// This file implements the service layer's admission control: a fast,
// solver-free lower bound on a job's completion time. A job whose SLA fails
// the bound is *provably* infeasible — no schedule, on an otherwise empty
// cluster, can meet its deadline — so an online service can reject (or flag)
// it before spending a CP solve on it.

// SLALowerBound returns a lower bound (ms) on the job's execution time on
// the cluster, assuming nothing else is running. Unlike
// workload.Job.MinExecTime (an LPT list-scheduling makespan, which may
// exceed the optimum), this is a true bound: each phase needs at least its
// longest task and at least its total work spread across every slot of the
// cluster, and classic MapReduce semantics force the reduce phase to start
// after the map phase ends. On heterogeneous clusters the longest-task term
// assumes the fastest machine and the spread term the aggregate
// speed-weighted slot capacity — both still true bounds, and both reduce
// exactly to the uniform integer arithmetic when every speed is 1.0.
func SLALowerBound(cluster sim.Cluster, j *workload.Job) int64 {
	if cluster.Heterogeneous() {
		lb := phaseLowerBoundHetero(j.MapTasks, cluster.MapSlots, cluster)
		if len(j.ReduceTasks) > 0 {
			lb += phaseLowerBoundHetero(j.ReduceTasks, cluster.ReduceSlots, cluster)
		}
		return lb
	}
	lb := phaseLowerBound(j.MapTasks, cluster.TotalMapSlots())
	if len(j.ReduceTasks) > 0 {
		lb += phaseLowerBound(j.ReduceTasks, cluster.TotalReduceSlots())
	}
	return lb
}

// phaseLowerBound bounds one phase: max(longest task, ceil(area / slots)).
func phaseLowerBound(tasks []*workload.Task, slots int64) int64 {
	if slots <= 0 {
		return 0
	}
	var longest, area int64
	for _, t := range tasks {
		if t.Exec > longest {
			longest = t.Exec
		}
		area += t.Exec * t.Req
	}
	if spread := (area + slots - 1) / slots; spread > longest {
		return spread
	}
	return longest
}

// phaseLowerBoundHetero bounds one phase of a heterogeneous cluster:
// max(longest task on the fastest machine, total nominal work over the
// aggregate speed-weighted slot rate). Every slot of resource r retires
// nominal work at rate SpeedOf(r), so slotsPer * Σ_r speed_r nominal
// milliseconds of the phase drain per wall millisecond at best.
func phaseLowerBoundHetero(tasks []*workload.Task, slotsPer int64, cluster sim.Cluster) int64 {
	if slotsPer <= 0 || len(tasks) == 0 {
		return 0
	}
	var rate float64
	for r := 0; r < cluster.NumResources; r++ {
		rate += cluster.SpeedOf(r)
	}
	rate *= float64(slotsPer)
	if rate <= 0 {
		return 0
	}
	maxSpeed := cluster.MaxSpeed()
	var longest, area int64
	for _, t := range tasks {
		if e := sim.ScaledExec(t.Exec, maxSpeed); e > longest {
			longest = e
		}
		area += t.Exec * t.Req
	}
	if spread := int64(math.Ceil(float64(area) / rate)); spread > longest {
		return spread
	}
	return longest
}

// AdmissionError reports a provably infeasible SLA; the service returns it
// to the submitter (or attaches it as a flag when configured to admit
// anyway).
type AdmissionError struct {
	JobID int
	// EarliestFinish is the soonest the job could possibly complete
	// (max(now, earliest start) + lower bound); Deadline is what the SLA
	// asked for.
	EarliestFinish int64
	Deadline       int64
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("core: job %d SLA is infeasible: earliest possible finish %dms exceeds deadline %dms",
		e.JobID, e.EarliestFinish, e.Deadline)
}

// CheckAdmission returns an *AdmissionError when the job's SLA is provably
// infeasible at time now on an otherwise empty cluster, and nil otherwise.
// Passing the check does not guarantee the deadline will be met under load;
// failing it guarantees it will not.
func CheckAdmission(cluster sim.Cluster, j *workload.Job, now int64) error {
	start := j.EarliestStart
	if now > start {
		start = now
	}
	if cluster.MemCapacity > 0 {
		for _, t := range j.Tasks() {
			if t.Mem > cluster.MemCapacity {
				// No machine can ever host the task: infeasible regardless
				// of the deadline.
				return &AdmissionError{JobID: j.ID, EarliestFinish: math.MaxInt64, Deadline: j.Deadline}
			}
		}
	}
	if fin := start + SLALowerBound(cluster, j); fin > j.Deadline {
		return &AdmissionError{JobID: j.ID, EarliestFinish: fin, Deadline: j.Deadline}
	}
	return nil
}
