package core

import (
	"fmt"

	"mrcprm/internal/sim"
	"mrcprm/internal/workload"
)

// This file implements the service layer's admission control: a fast,
// solver-free lower bound on a job's completion time. A job whose SLA fails
// the bound is *provably* infeasible — no schedule, on an otherwise empty
// cluster, can meet its deadline — so an online service can reject (or flag)
// it before spending a CP solve on it.

// SLALowerBound returns a lower bound (ms) on the job's execution time on
// the cluster, assuming nothing else is running. Unlike
// workload.Job.MinExecTime (an LPT list-scheduling makespan, which may
// exceed the optimum), this is a true bound: each phase needs at least its
// longest task and at least its total work spread across every slot of the
// cluster, and classic MapReduce semantics force the reduce phase to start
// after the map phase ends.
func SLALowerBound(cluster sim.Cluster, j *workload.Job) int64 {
	lb := phaseLowerBound(j.MapTasks, cluster.TotalMapSlots())
	if len(j.ReduceTasks) > 0 {
		lb += phaseLowerBound(j.ReduceTasks, cluster.TotalReduceSlots())
	}
	return lb
}

// phaseLowerBound bounds one phase: max(longest task, ceil(area / slots)).
func phaseLowerBound(tasks []*workload.Task, slots int64) int64 {
	if slots <= 0 {
		return 0
	}
	var longest, area int64
	for _, t := range tasks {
		if t.Exec > longest {
			longest = t.Exec
		}
		area += t.Exec * t.Req
	}
	if spread := (area + slots - 1) / slots; spread > longest {
		return spread
	}
	return longest
}

// AdmissionError reports a provably infeasible SLA; the service returns it
// to the submitter (or attaches it as a flag when configured to admit
// anyway).
type AdmissionError struct {
	JobID int
	// EarliestFinish is the soonest the job could possibly complete
	// (max(now, earliest start) + lower bound); Deadline is what the SLA
	// asked for.
	EarliestFinish int64
	Deadline       int64
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("core: job %d SLA is infeasible: earliest possible finish %dms exceeds deadline %dms",
		e.JobID, e.EarliestFinish, e.Deadline)
}

// CheckAdmission returns an *AdmissionError when the job's SLA is provably
// infeasible at time now on an otherwise empty cluster, and nil otherwise.
// Passing the check does not guarantee the deadline will be met under load;
// failing it guarantees it will not.
func CheckAdmission(cluster sim.Cluster, j *workload.Job, now int64) error {
	start := j.EarliestStart
	if now > start {
		start = now
	}
	if fin := start + SLALowerBound(cluster, j); fin > j.Deadline {
		return &AdmissionError{JobID: j.ID, EarliestFinish: fin, Deadline: j.Deadline}
	}
	return nil
}
