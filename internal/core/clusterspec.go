package core

import (
	"fmt"
	"sort"

	"mrcprm/internal/sim"
)

// ClusterSpec is the declarative description of a (possibly heterogeneous)
// cluster: one ResourceSpec per machine plus the per-resource slot counts
// shared by all of them. It is the configuration-facing builder for
// sim.Cluster — command-line flags and service configs construct a spec,
// validate it once, and hand the resulting Cluster to everything else.
type ClusterSpec struct {
	// Resources lists the machines. Order is the resource index order.
	Resources []ResourceSpec
	// MapSlots and ReduceSlots are the per-resource slot capacities (c^mp
	// and c^rd), identical across machines as in the paper.
	MapSlots    int64
	ReduceSlots int64
	// MemCapacity is the optional per-resource memory capacity; 0 disables
	// the memory dimension.
	MemCapacity int64
}

// ResourceSpec describes one machine of a ClusterSpec.
type ResourceSpec struct {
	// SpeedFactor is the machine's relative speed; 1.0 is the reference.
	// A task with nominal execution time e runs for sim.ScaledExec(e,
	// SpeedFactor) milliseconds here. Must be > 0.
	SpeedFactor float64
	// Locality is an optional placement-preference weight (higher
	// preferred); it only breaks exact completion-time ties in the CP
	// search. Zero everywhere means no preference.
	Locality float64
}

// Cluster materializes the spec as a sim.Cluster, normalizing an all-1.0
// speed profile to the nil (uniform) representation so that a spec of
// identical machines is indistinguishable — bit for bit — from a cluster
// that never heard of heterogeneity.
func (s ClusterSpec) Cluster() (sim.Cluster, error) {
	if len(s.Resources) == 0 {
		return sim.Cluster{}, fmt.Errorf("core: cluster spec has no resources")
	}
	c := sim.Cluster{
		NumResources: len(s.Resources),
		MapSlots:     s.MapSlots,
		ReduceSlots:  s.ReduceSlots,
		MemCapacity:  s.MemCapacity,
	}
	uniform := true
	speeds := make([]float64, len(s.Resources))
	for i, r := range s.Resources {
		if !(r.SpeedFactor > 0) {
			return sim.Cluster{}, fmt.Errorf("core: resource %d has invalid speed factor %v", i, r.SpeedFactor)
		}
		speeds[i] = r.SpeedFactor
		if r.SpeedFactor != 1.0 {
			uniform = false
		}
	}
	if !uniform {
		c.Speed = speeds
	}
	if err := c.Validate(); err != nil {
		return sim.Cluster{}, err
	}
	return c, nil
}

// LocalityWeights returns the per-resource locality weights, or nil when no
// resource declares a preference.
func (s ClusterSpec) LocalityWeights() []float64 {
	any := false
	w := make([]float64, len(s.Resources))
	for i, r := range s.Resources {
		w[i] = r.Locality
		any = any || r.Locality != 0
	}
	if !any {
		return nil
	}
	return w
}

// TwoClassSpec builds the canonical heterogeneity experiment cluster: m
// resources where the first half run at speed 1.0 and the second half at
// 1/spread (spread >= 1; 1.0 yields a uniform cluster). Slot counts follow
// the paper's per-resource shape.
func TwoClassSpec(m int, mapSlots, reduceSlots int64, spread float64) ClusterSpec {
	s := ClusterSpec{
		Resources:   make([]ResourceSpec, m),
		MapSlots:    mapSlots,
		ReduceSlots: reduceSlots,
	}
	for i := range s.Resources {
		speed := 1.0
		if spread > 1 && i >= m/2 {
			speed = 1 / spread
		}
		s.Resources[i] = ResourceSpec{SpeedFactor: speed}
	}
	return s
}

// localityRank converts locality weights into the cp.Params.ResRank
// preference order: resources sorted by descending weight, index breaking
// ties, so rank[r] is r's position in that order. Nil weights rank nil.
func localityRank(weights []float64) []int {
	if len(weights) == 0 {
		return nil
	}
	idx := make([]int, len(weights))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return weights[idx[a]] > weights[idx[b]] })
	rank := make([]int, len(weights))
	for pos, r := range idx {
		rank[r] = pos
	}
	return rank
}
