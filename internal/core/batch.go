package core

import (
	"fmt"
	"io"
	"sort"
	"time"

	"mrcprm/internal/cp"
	"mrcprm/internal/sim"
	"mrcprm/internal/workload"
)

// Assignment is one task's place in a batch schedule.
type Assignment struct {
	Task     *workload.Task
	Job      *workload.Job
	Resource int
	Start    int64 // ms
}

// End returns the task's completion time.
func (a Assignment) End() int64 { return a.Start + a.Task.Exec }

// Schedule is the result of a closed-system batch solve: the scenario of
// the authors' preliminary work, where a fixed set of jobs is known ahead
// of time and mapped in one shot.
type Schedule struct {
	Assignments []Assignment
	// LateJobs lists the IDs of jobs whose schedule misses their deadline.
	LateJobs []int
	// Objective is the CP objective value (number of late jobs).
	Objective int
	// Optimal reports whether the solver proved the objective optimal
	// within its search space.
	Optimal   bool
	SolveTime time.Duration
	Nodes     int64
	// Search carries the solver's detailed search statistics.
	Search cp.SearchStats
}

// SolveBatch maps and schedules a fixed batch of jobs on the cluster,
// minimizing the number of late jobs. Arrival times are ignored; earliest
// start times and deadlines are honored. The returned assignments are
// sorted by start time.
func SolveBatch(cluster sim.Cluster, jobs []*workload.Job, cfg Config) (*Schedule, error) {
	if err := cluster.Validate(); err != nil {
		return nil, err
	}
	work := make([]*jobWork, 0, len(jobs))
	for _, j := range jobs {
		if len(j.MapTasks) == 0 {
			return nil, fmt.Errorf("core: job %d has no map tasks", j.ID)
		}
		work = append(work, &jobWork{
			job:         j,
			pendingMaps: j.MapTasks,
			pendingReds: j.ReduceTasks,
		})
	}
	bm, err := buildModel(cfg.Mode, 0, cluster, work, nil)
	if err != nil {
		return nil, err
	}
	res := cp.NewSolver(bm.model, cp.Params{
		TimeLimit:     cfg.SolveTimeLimit,
		NodeLimit:     cfg.NodeLimit,
		Ordering:      cfg.Ordering,
		Workers:       cfg.Workers,
		Opportunistic: cfg.OpportunisticSolve,
	}).Solve()
	if !res.HasSolution() {
		return nil, fmt.Errorf("core: batch solve failed with status %v", res.Status)
	}
	if err := bm.model.VerifySolution(&res); err != nil {
		return nil, err
	}

	sched := &Schedule{
		Objective: res.Objective,
		Optimal:   res.Status == cp.StatusOptimal,
		SolveTime: res.SolveTime,
		Nodes:     res.Nodes,
		Search:    res.Search,
	}
	jobByID := make(map[int]*workload.Job, len(jobs))
	for _, j := range jobs {
		jobByID[j.ID] = j
	}

	switch cfg.Mode {
	case ModeCombined:
		var st Stats
		mk := newMatchmaker(cluster.NumResources, cluster.MapSlots, cluster.ReduceSlots, &st)
		type item struct {
			task  *workload.Task
			start int64
		}
		var items []item
		for t, iv := range bm.byTask {
			items = append(items, item{t, res.Starts[iv.ID()]})
		}
		sort.Slice(items, func(a, b int) bool {
			if items[a].start != items[b].start {
				return items[a].start < items[b].start
			}
			if items[a].task.Type != items[b].task.Type {
				return items[a].task.Type == workload.MapTask
			}
			return items[a].task.ID < items[b].task.ID
		})
		for _, it := range items {
			a := mk.place(it.task, it.start)
			sched.Assignments = append(sched.Assignments, Assignment{
				Task: it.task, Job: jobByID[it.task.JobID], Resource: a.res, Start: a.start,
			})
		}
	case ModeDirect:
		for t, iv := range bm.byTask {
			sched.Assignments = append(sched.Assignments, Assignment{
				Task: t, Job: jobByID[t.JobID], Resource: res.Res[iv.ID()], Start: res.Starts[iv.ID()],
			})
		}
	}
	sort.Slice(sched.Assignments, func(a, b int) bool {
		if sched.Assignments[a].Start != sched.Assignments[b].Start {
			return sched.Assignments[a].Start < sched.Assignments[b].Start
		}
		return sched.Assignments[a].Task.ID < sched.Assignments[b].Task.ID
	})

	// Recompute lateness from the final (possibly matchmaking-adjusted)
	// assignments rather than trusting the CP objective.
	complete := map[int]int64{}
	for _, a := range sched.Assignments {
		if a.End() > complete[a.Task.JobID] {
			complete[a.Task.JobID] = a.End()
		}
	}
	for _, j := range jobs {
		if complete[j.ID] > j.Deadline {
			sched.LateJobs = append(sched.LateJobs, j.ID)
		}
	}
	sort.Ints(sched.LateJobs)
	return sched, nil
}

// WriteBatchModelOPL builds the CP model a batch solve would use and
// renders it in OPL-like syntax (the notation of the paper's Section IV)
// for inspection, without solving it.
func WriteBatchModelOPL(cluster sim.Cluster, jobs []*workload.Job, cfg Config, w io.Writer) error {
	if err := cluster.Validate(); err != nil {
		return err
	}
	work := make([]*jobWork, 0, len(jobs))
	for _, j := range jobs {
		work = append(work, &jobWork{job: j, pendingMaps: j.MapTasks, pendingReds: j.ReduceTasks})
	}
	bm, err := buildModel(cfg.Mode, 0, cluster, work, nil)
	if err != nil {
		return err
	}
	return bm.model.WriteOPL(w)
}

// Validate checks a schedule against the problem rules: capacities,
// earliest starts, and reduce-after-map precedence. Useful for tests and
// for callers that post-process schedules.
func (s *Schedule) Validate(cluster sim.Cluster) error {
	type ev struct {
		at    int64
		delta int64
	}
	mapEvs := make(map[int][]ev)
	redEvs := make(map[int][]ev)
	mapEnd := map[int]int64{}
	for _, a := range s.Assignments {
		if a.Start < a.Job.EarliestStart {
			return fmt.Errorf("core: task %s starts before its job's earliest start", a.Task.ID)
		}
		if a.Task.Type == workload.MapTask {
			mapEvs[a.Resource] = append(mapEvs[a.Resource],
				ev{a.Start, a.Task.Req}, ev{a.End(), -a.Task.Req})
			if a.End() > mapEnd[a.Task.JobID] {
				mapEnd[a.Task.JobID] = a.End()
			}
		} else {
			redEvs[a.Resource] = append(redEvs[a.Resource],
				ev{a.Start, a.Task.Req}, ev{a.End(), -a.Task.Req})
		}
	}
	for _, a := range s.Assignments {
		if a.Task.Type == workload.ReduceTask && a.Start < mapEnd[a.Task.JobID] {
			return fmt.Errorf("core: reduce task %s starts before its job's maps end", a.Task.ID)
		}
	}
	check := func(evsByRes map[int][]ev, capacity int64, kind string) error {
		for r, evs := range evsByRes {
			sort.Slice(evs, func(i, j int) bool {
				if evs[i].at != evs[j].at {
					return evs[i].at < evs[j].at
				}
				return evs[i].delta < evs[j].delta
			})
			var load int64
			for _, e := range evs {
				load += e.delta
				if load > capacity {
					return fmt.Errorf("core: %s capacity of resource %d exceeded", kind, r)
				}
			}
		}
		return nil
	}
	if err := check(mapEvs, cluster.MapSlots, "map"); err != nil {
		return err
	}
	return check(redEvs, cluster.ReduceSlots, "reduce")
}
