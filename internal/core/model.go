package core

import (
	"fmt"

	"mrcprm/internal/cp"
	"mrcprm/internal/sim"
	"mrcprm/internal/workload"
)

// builtModel couples a cp.Model with the bookkeeping needed to read the
// solution back out.
type builtModel struct {
	model *cp.Model
	// byTask maps each incomplete task to its interval.
	byTask map[*workload.Task]*cp.Interval
	// frozen marks tasks that have started executing: their start (and, in
	// direct mode, resource) is pinned and they are not re-installed.
	frozen map[*workload.Task]bool
	// lates maps each job to its N_j indicator.
	lates map[*workload.Job]*cp.Bool
}

// jobWork is the schedulable remainder of one job.
type jobWork struct {
	job *workload.Job
	// pendingMaps/pendingReds are not started; frozenMaps/frozenReds have
	// started but not completed (with their current placement).
	pendingMaps []*workload.Task
	pendingReds []*workload.Task
	frozenMaps  []frozenTask
	frozenReds  []frozenTask
	// completedMaps counts map tasks already finished (they no longer
	// constrain anything: new work starts at or after now anyway).
	completedMaps int
	// ghost marks an abandoned job: its running tasks still hold capacity
	// (and must stay in the model so nothing is placed on top of them), but
	// it has no pending work and no lateness indicator.
	ghost bool
}

type frozenTask struct {
	task  *workload.Task
	res   int
	start int64
	// exec is the attempt's effective execution time (straggler slowdowns
	// make it exceed task.Exec).
	exec int64
}

// buildModel constructs the Table 1 CP formulation over the given work.
// now is the invocation time; cluster describes the system component;
// down flags resources currently in an outage, which must receive no new
// work (nil means all up).
func buildModel(mode SolveMode, now int64, cluster sim.Cluster, work []*jobWork, down []bool) (*builtModel, error) {
	hetero := cluster.Heterogeneous()
	memOn := cluster.MemCapacity > 0
	if mode == ModeCombined && (hetero || memOn) {
		// The combined single-resource relaxation assumes interchangeable
		// unit slots; machine speeds and a second capacity dimension need
		// the per-resource formulation (the manager upgrades the mode
		// before ever getting here).
		return nil, fmt.Errorf("core: combined mode cannot model a heterogeneous or memory-constrained cluster")
	}
	horizon := horizonFor(now, cluster, work)
	m := cp.NewModel(horizon)
	bm := &builtModel{
		model:  m,
		byTask: make(map[*workload.Task]*cp.Interval),
		frozen: make(map[*workload.Task]bool),
		lates:  make(map[*workload.Job]*cp.Bool),
	}

	numRes := cluster.NumResources
	var mapTasks, redTasks []*cp.Interval // combined-mode cumulative members
	perResMap := make([][]*cp.Interval, numRes)
	perResRed := make([][]*cp.Interval, numRes)
	// Memory cumulative members: map and reduce tasks share one node-wide
	// memory pool per resource, so there is a single member list (and a
	// parallel demand vector) per resource.
	var perResMem [][]*cp.Interval
	var perResMemDem [][]int64
	if memOn {
		perResMem = make([][]*cp.Interval, numRes)
		perResMemDem = make([][]int64, numRes)
	}

	var lates []*cp.Bool
	for _, w := range work {
		j := w.job
		est := w.job.EarliestStart
		if est < now {
			est = now // Table 2 lines 1-4: outdated earliest start times advance to now
		}
		var mapIvs, redIvs []*cp.Interval
		type taskIv struct {
			task *workload.Task
			iv   *cp.Interval
		}
		var jobTasks []taskIv // creation order, for deterministic constraint posting

		addTask := func(t *workload.Task, fz *frozenTask) (*cp.Interval, error) {
			if mode == ModeCombined && t.Req != 1 {
				// The gap-based matchmaking pass places each task on
				// exactly one unit slot; tasks demanding several slots
				// need the direct formulation.
				return nil, fmt.Errorf("core: task %s has demand %d; combined mode requires unit demands",
					t.ID, t.Req)
			}
			dur := t.Exec
			// Pending tasks on a heterogeneous cluster carry one candidate
			// duration per resource; the interval is created at the slowest
			// mode (the table's upper bound) so every start-bound derived
			// from it stays conservative, and the per-resource table below
			// refines it. Frozen attempts already run at their machine's
			// (and straggler-adjusted) effective duration, so they stay
			// plain fixed-length intervals.
			var durs []int64
			if hetero && fz == nil {
				durs = make([]int64, numRes)
				for r := range durs {
					durs[r] = sim.ScaledExec(t.Exec, cluster.SpeedOf(r))
					if durs[r] > dur {
						dur = durs[r]
					}
				}
			}
			if fz != nil && fz.exec > 0 {
				dur = fz.exec
			}
			iv := m.NewInterval(t.ID, dur)
			iv.Demand = t.Req
			iv.Due = j.Deadline
			iv.JobKey = j.ID
			if fz != nil {
				// Table 2 line 11: pin started tasks to their placement.
				if fz.start > horizon-dur {
					return nil, fmt.Errorf("core: frozen task %s at %d beyond horizon", t.ID, fz.start)
				}
				m.FixStart(iv, fz.start)
				bm.frozen[t] = true
			} else {
				m.SetStartBounds(iv, est, horizon-dur)
			}
			bm.byTask[t] = iv
			jobTasks = append(jobTasks, taskIv{t, iv})
			switch mode {
			case ModeCombined:
				if t.Type == workload.MapTask {
					mapTasks = append(mapTasks, iv)
				} else {
					redTasks = append(redTasks, iv)
				}
			case ModeDirect:
				rv := m.NewResVar(iv, numRes)
				if fz != nil {
					m.FixRes(rv, fz.res)
				} else {
					for r := 0; r < numRes; r++ {
						if r < len(down) && down[r] {
							m.ForbidRes(rv, r)
						}
					}
					if durs != nil {
						m.SetResDurations(iv, durs)
					}
				}
				for r := 0; r < numRes; r++ {
					if t.Type == workload.MapTask {
						perResMap[r] = append(perResMap[r], iv)
					} else {
						perResRed[r] = append(perResRed[r], iv)
					}
					if memOn && t.Mem > 0 {
						perResMem[r] = append(perResMem[r], iv)
						perResMemDem[r] = append(perResMemDem[r], t.Mem)
					}
				}
			}
			return iv, nil
		}

		for _, t := range w.pendingMaps {
			iv, err := addTask(t, nil)
			if err != nil {
				return nil, err
			}
			mapIvs = append(mapIvs, iv)
		}
		for i := range w.frozenMaps {
			iv, err := addTask(w.frozenMaps[i].task, &w.frozenMaps[i])
			if err != nil {
				return nil, err
			}
			mapIvs = append(mapIvs, iv)
		}
		for _, t := range w.pendingReds {
			iv, err := addTask(t, nil)
			if err != nil {
				return nil, err
			}
			redIvs = append(redIvs, iv)
		}
		for i := range w.frozenReds {
			iv, err := addTask(w.frozenReds[i].task, &w.frozenReds[i])
			if err != nil {
				return nil, err
			}
			redIvs = append(redIvs, iv)
		}

		var terminals []*cp.Interval
		if j.TaskPrecedence {
			// Workflow generalization: user-specified task precedence
			// instead of the two-phase barrier. Completed predecessors
			// ended at or before now, which every new start respects, so
			// only incomplete predecessors constrain.
			incompleteSucc := make(map[*workload.Task]bool)
			for _, ti := range jobTasks {
				for _, p := range ti.task.Preds {
					incompleteSucc[p] = true
				}
			}
			for _, ti := range jobTasks {
				var preds []*cp.Interval
				for _, p := range ti.task.Preds {
					if piv, ok := bm.byTask[p]; ok {
						preds = append(preds, piv)
					}
				}
				if len(preds) > 0 {
					m.AddMaxEndBeforeStart(preds, ti.iv)
				}
				if !incompleteSucc[ti.task] {
					terminals = append(terminals, ti.iv)
				}
			}
		} else {
			// Constraint 3: reduces start after the last map. Completed
			// maps ended at or before now, which every new start already
			// respects.
			m.AddPhaseBarrier(mapIvs, redIvs)

			// Constraint 4: N_j reification on the job's terminal phase.
			terminals = redIvs
			if len(terminals) == 0 {
				terminals = mapIvs
			}
		}
		if len(terminals) > 0 && !w.ghost {
			late := m.NewBool(fmt.Sprintf("late_%d", j.ID))
			m.AddLateness(terminals, j.Deadline, late)
			bm.lates[j] = late
			lates = append(lates, late)
		}
	}

	// Constraints 5/6: capacities. In combined mode a down resource shrinks
	// the combined capacity (its unit slots are also blocked during the
	// matchmaking pass); frozen tasks never sit on down resources because
	// an outage kills everything running on it.
	upRes := int64(0)
	for r := 0; r < numRes; r++ {
		if r >= len(down) || !down[r] {
			upRes++
		}
	}
	switch mode {
	case ModeCombined:
		if len(mapTasks) > 0 {
			m.AddCumulative("map", -1, upRes*cluster.MapSlots, mapTasks)
		}
		if len(redTasks) > 0 {
			m.AddCumulative("reduce", -1, upRes*cluster.ReduceSlots, redTasks)
		}
	case ModeDirect:
		for r := 0; r < numRes; r++ {
			if len(perResMap[r]) > 0 {
				m.AddCumulative(fmt.Sprintf("map_r%d", r), r, cluster.MapSlots, perResMap[r])
			}
			if len(perResRed[r]) > 0 {
				m.AddCumulative(fmt.Sprintf("red_r%d", r), r, cluster.ReduceSlots, perResRed[r])
			}
			if memOn && len(perResMem[r]) > 0 {
				m.AddCumulativeDemands(fmt.Sprintf("mem_r%d", r), r, cluster.MemCapacity, perResMem[r], perResMemDem[r])
			}
		}
	}

	// Objective: minimize Σ N_j.
	m.Minimize(lates)
	return bm, nil
}

// horizonFor returns a safe scheduling horizon: everything can run
// serially after the latest release. On heterogeneous clusters every task
// is budgeted at its slowest-machine duration, so the horizon covers even
// an all-slow serial schedule; with uniform speeds the arithmetic is the
// historical integer path.
func horizonFor(now int64, cluster sim.Cluster, work []*jobWork) int64 {
	minSpeed := cluster.MinSpeed()
	h := now + 1
	var total, maxDur int64
	for _, w := range work {
		if w.job.EarliestStart > h {
			h = w.job.EarliestStart + 1
		}
		for _, t := range w.job.Tasks() {
			e := sim.ScaledExec(t.Exec, minSpeed)
			total += e
			if e > maxDur {
				maxDur = e
			}
		}
		// Straggler-slowed frozen attempts can end past their nominal
		// windows; the horizon must cover their true ends.
		for _, f := range w.frozenMaps {
			if end := f.start + f.exec; end > h {
				h = end + 1
			}
		}
		for _, f := range w.frozenReds {
			if end := f.start + f.exec; end > h {
				h = end + 1
			}
		}
	}
	return h + total + maxDur + 1
}
