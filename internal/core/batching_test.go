package core

import (
	"testing"
	"time"

	"mrcprm/internal/sim"
	"mrcprm/internal/stats"
	"mrcprm/internal/workload"
)

func TestBatchingReducesSolverRounds(t *testing.T) {
	gen := func() []*workload.Job {
		cfg := workload.DefaultSynthetic()
		cfg.NumResources = 10
		cfg.NumMapHi = 10
		cfg.NumReduceHi = 5
		cfg.Lambda = 0.1 // dense arrivals so batching has something to merge
		cfg.P = 0
		jobs, err := cfg.Generate(30, stats.NewStream(55, 56))
		if err != nil {
			t.Fatal(err)
		}
		return jobs
	}
	cluster := sim.Cluster{NumResources: 10, MapSlots: 2, ReduceSlots: 2}

	perArrival := deterministicConfig()
	_, mgrA := runJobs(t, cluster, perArrival, gen())

	batched := deterministicConfig()
	batched.BatchWindow = 30 * time.Second
	_, mgrB := runJobs(t, cluster, batched, gen())

	if mgrB.Stats().Rounds >= mgrA.Stats().Rounds {
		t.Fatalf("batching did not reduce rounds: %d vs %d",
			mgrB.Stats().Rounds, mgrA.Stats().Rounds)
	}
}

func TestBatchingStillMeetsLooseDeadlines(t *testing.T) {
	cluster := sim.Cluster{NumResources: 2, MapSlots: 1, ReduceSlots: 1}
	cfg := deterministicConfig()
	cfg.BatchWindow = 5 * time.Second
	jobs := []*workload.Job{
		mkJob(0, 0, 0, 300_000, []int64{10_000}, nil),
		mkJob(1, 1000, 1000, 300_000, []int64{10_000}, nil),
		mkJob(2, 2000, 2000, 300_000, []int64{10_000}, nil),
	}
	m, mgr := runJobs(t, cluster, cfg, jobs)
	if m.LateJobs != 0 {
		t.Fatalf("%d late jobs with generous deadlines", m.LateJobs)
	}
	// All three arrivals fall inside one 5s window: exactly one solve.
	if mgr.Stats().Rounds != 1 {
		t.Fatalf("rounds = %d, want 1 (single batch)", mgr.Stats().Rounds)
	}
	// The batch flush delays starts to the window boundary.
	if m.Records[0].Completion < 15_000 {
		t.Fatalf("first completion %d: batch should flush at 5s", m.Records[0].Completion)
	}
}

func TestBatchingComposesWithDeferral(t *testing.T) {
	cluster := sim.Cluster{NumResources: 1, MapSlots: 1, ReduceSlots: 1}
	cfg := deterministicConfig()
	cfg.BatchWindow = 5 * time.Second
	cfg.DeferralLead = 10 * time.Second
	jobs := []*workload.Job{
		mkJob(0, 0, 0, 300_000, []int64{3000}, nil),          // batched
		mkJob(1, 1000, 120_000, 400_000, []int64{3000}, nil), // deferred AR
	}
	m, mgr := runJobs(t, cluster, cfg, jobs)
	if m.LateJobs != 0 {
		t.Fatal("late jobs")
	}
	if mgr.Stats().Deferred != 1 {
		t.Fatalf("deferred = %d", mgr.Stats().Deferred)
	}
	// The AR job still starts exactly at its reserved time.
	for _, r := range m.Records {
		if r.Job.ID == 1 && r.Completion != 123_000 {
			t.Fatalf("AR job completed at %d, want 123000", r.Completion)
		}
	}
}
