package core

import (
	"testing"
	"time"

	"mrcprm/internal/sim"
	"mrcprm/internal/stats"
	"mrcprm/internal/workload"
)

func TestBatchingReducesSolverRounds(t *testing.T) {
	gen := func() []*workload.Job {
		cfg := workload.DefaultSynthetic()
		cfg.NumResources = 10
		cfg.NumMapHi = 10
		cfg.NumReduceHi = 5
		cfg.Lambda = 0.1 // dense arrivals so batching has something to merge
		cfg.P = 0
		jobs, err := cfg.Generate(30, stats.NewStream(55, 56))
		if err != nil {
			t.Fatal(err)
		}
		return jobs
	}
	cluster := sim.Cluster{NumResources: 10, MapSlots: 2, ReduceSlots: 2}

	perArrival := deterministicConfig()
	_, mgrA := runJobs(t, cluster, perArrival, gen())

	batched := deterministicConfig()
	batched.BatchWindow = 30 * time.Second
	_, mgrB := runJobs(t, cluster, batched, gen())

	if mgrB.Stats().Rounds >= mgrA.Stats().Rounds {
		t.Fatalf("batching did not reduce rounds: %d vs %d",
			mgrB.Stats().Rounds, mgrA.Stats().Rounds)
	}
}

func TestBatchingStillMeetsLooseDeadlines(t *testing.T) {
	cluster := sim.Cluster{NumResources: 2, MapSlots: 1, ReduceSlots: 1}
	cfg := deterministicConfig()
	cfg.BatchWindow = 5 * time.Second
	jobs := []*workload.Job{
		mkJob(0, 0, 0, 300_000, []int64{10_000}, nil),
		mkJob(1, 1000, 1000, 300_000, []int64{10_000}, nil),
		mkJob(2, 2000, 2000, 300_000, []int64{10_000}, nil),
	}
	m, mgr := runJobs(t, cluster, cfg, jobs)
	if m.LateJobs != 0 {
		t.Fatalf("%d late jobs with generous deadlines", m.LateJobs)
	}
	// All three arrivals fall inside one 5s window: exactly one solve.
	if mgr.Stats().Rounds != 1 {
		t.Fatalf("rounds = %d, want 1 (single batch)", mgr.Stats().Rounds)
	}
	// The batch flush delays starts to the window boundary.
	if m.Records[0].Completion < 15_000 {
		t.Fatalf("first completion %d: batch should flush at 5s", m.Records[0].Completion)
	}
}

// TestBatchMaxPendingFlush: hitting the pending cap flushes the batch
// before its window expires.
func TestBatchMaxPendingFlush(t *testing.T) {
	cluster := sim.Cluster{NumResources: 2, MapSlots: 1, ReduceSlots: 1}
	cfg := deterministicConfig()
	cfg.BatchWindow = 60 * time.Second
	cfg.BatchMaxPending = 2
	jobs := []*workload.Job{
		mkJob(0, 0, 0, 300_000, []int64{10_000}, nil),
		mkJob(1, 1000, 1000, 300_000, []int64{10_000}, nil),
	}
	m, mgr := runJobs(t, cluster, cfg, jobs)
	if mgr.Stats().Rounds != 1 || mgr.Stats().EarlyFlushes != 1 {
		t.Fatalf("rounds=%d earlyFlushes=%d, want 1/1",
			mgr.Stats().Rounds, mgr.Stats().EarlyFlushes)
	}
	// Flushed at the second arrival (1s), not at the window boundary (60s).
	if m.Records[0].Completion >= 60_000 {
		t.Fatalf("completion %d: batch waited for the window", m.Records[0].Completion)
	}
}

// TestBatchUrgencyFlush: an arriving job with no slack to spare flushes the
// batch immediately.
func TestBatchUrgencyFlush(t *testing.T) {
	cluster := sim.Cluster{NumResources: 2, MapSlots: 1, ReduceSlots: 1}
	cfg := deterministicConfig()
	cfg.BatchWindow = 60 * time.Second
	cfg.BatchUrgencyLead = 5 * time.Second
	jobs := []*workload.Job{
		mkJob(0, 0, 0, 300_000, []int64{10_000}, nil),
		// 10s of work, deadline at 13s: latest feasible start is 3s away,
		// inside the 5s urgency lead.
		mkJob(1, 1000, 1000, 13_000, []int64{10_000}, nil),
	}
	m, mgr := runJobs(t, cluster, cfg, jobs)
	if mgr.Stats().EarlyFlushes != 1 {
		t.Fatalf("earlyFlushes=%d, want 1", mgr.Stats().EarlyFlushes)
	}
	if m.LateJobs != 0 {
		t.Fatalf("%d late jobs: urgency flush came too late", m.LateJobs)
	}
}

// TestBatchEmptyWindowFlush: after an early flush the window timer still
// fires, finds an empty batch, and must be a no-op (no extra solver round).
func TestBatchEmptyWindowFlush(t *testing.T) {
	cluster := sim.Cluster{NumResources: 2, MapSlots: 1, ReduceSlots: 1}
	cfg := deterministicConfig()
	cfg.BatchWindow = 5 * time.Second
	cfg.BatchMaxPending = 2
	jobs := []*workload.Job{
		mkJob(0, 0, 0, 300_000, []int64{20_000}, nil),
		mkJob(1, 1000, 1000, 300_000, []int64{20_000}, nil),
	}
	m, mgr := runJobs(t, cluster, cfg, jobs)
	// One early flush at t=1s; the stale timer at t=5s fires on an empty
	// batch while both tasks are still running and must not add a round.
	if mgr.Stats().Rounds != 1 {
		t.Fatalf("rounds=%d, want 1 (stale window timer re-solved)", mgr.Stats().Rounds)
	}
	if m.JobsCompleted != 2 {
		t.Fatalf("completed %d", m.JobsCompleted)
	}
}

// TestDrainWithRunningTasks: Drain force-admits deferred and batched jobs
// while other tasks are mid-execution, and the run then completes without
// waiting for parked timers.
func TestDrainWithRunningTasks(t *testing.T) {
	cluster := sim.Cluster{NumResources: 2, MapSlots: 1, ReduceSlots: 1}
	cfg := deterministicConfig()
	cfg.BatchWindow = 50 * time.Second
	cfg.BatchUrgencyLead = 5 * time.Second // job 0 is urgent: flushes instantly, starts running
	cfg.DeferralLead = 10 * time.Second
	jobs := []*workload.Job{
		mkJob(0, 0, 0, 32_000, []int64{30_000}, nil),
		mkJob(1, 1000, 100_000, 400_000, []int64{5_000}, nil), // deferred (far-future start)
	}
	// Job 2 arrives at t=2s into a fresh batch window and would sit there
	// until t=52s.
	j2 := mkJob(2, 2000, 2000, 300_000, []int64{5_000}, nil)

	mgr := New(cluster, cfg)
	s, err := sim.New(cluster, mgr, append(jobs, j2))
	if err != nil {
		t.Fatal(err)
	}
	// Step until job 2's arrival has been processed and job 0 is running.
	for {
		more, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !more {
			t.Fatal("run ended before drain point")
		}
		if s.Now() >= 2000 {
			break
		}
	}
	if !s.Started(jobs[0].MapTasks[0]) {
		t.Fatal("job 0 should be running at drain time")
	}
	if mgr.Stats().Deferred != 1 {
		t.Fatalf("deferred=%d, want 1", mgr.Stats().Deferred)
	}
	if mgr.Outstanding() != 3 {
		t.Fatalf("outstanding=%d, want 3", mgr.Outstanding())
	}

	if err := mgr.Drain(s); err != nil {
		t.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.JobsCompleted != 3 {
		t.Fatalf("completed %d, want 3", m.JobsCompleted)
	}
	if mgr.Outstanding() != 0 {
		t.Fatalf("outstanding=%d after drain+run", mgr.Outstanding())
	}
	// The batched job must not have waited for its 50s window...
	for _, r := range m.Records {
		if r.Job.ID == 2 && r.Completion >= 52_000 {
			t.Fatalf("batched job completed at %d: drain did not flush it", r.Completion)
		}
		// ...and the deferred job still honors its earliest start time.
		if r.Job.ID == 1 && r.Completion < 105_000 {
			t.Fatalf("deferred job completed at %d, before earliest start + exec", r.Completion)
		}
	}
}

func TestBatchingComposesWithDeferral(t *testing.T) {
	cluster := sim.Cluster{NumResources: 1, MapSlots: 1, ReduceSlots: 1}
	cfg := deterministicConfig()
	cfg.BatchWindow = 5 * time.Second
	cfg.DeferralLead = 10 * time.Second
	jobs := []*workload.Job{
		mkJob(0, 0, 0, 300_000, []int64{3000}, nil),          // batched
		mkJob(1, 1000, 120_000, 400_000, []int64{3000}, nil), // deferred AR
	}
	m, mgr := runJobs(t, cluster, cfg, jobs)
	if m.LateJobs != 0 {
		t.Fatal("late jobs")
	}
	if mgr.Stats().Deferred != 1 {
		t.Fatalf("deferred = %d", mgr.Stats().Deferred)
	}
	// The AR job still starts exactly at its reserved time.
	for _, r := range m.Records {
		if r.Job.ID == 1 && r.Completion != 123_000 {
			t.Fatalf("AR job completed at %d, want 123000", r.Completion)
		}
	}
}
