package core

import (
	"strings"
	"testing"

	"mrcprm/internal/sim"
	"mrcprm/internal/workload"
)

func TestCombinedModeRejectsNonUnitDemand(t *testing.T) {
	cluster := sim.Cluster{NumResources: 2, MapSlots: 2, ReduceSlots: 2}
	j := mkJob(0, 0, 0, 100_000, []int64{5000}, nil)
	j.MapTasks[0].Req = 2
	w := &jobWork{job: j, pendingMaps: j.MapTasks}
	_, err := buildModel(ModeCombined, 0, cluster, []*jobWork{w}, nil)
	if err == nil || !strings.Contains(err.Error(), "unit demands") {
		t.Fatalf("expected unit-demand error, got %v", err)
	}
}

func TestDirectModeAcceptsWideDemand(t *testing.T) {
	cluster := sim.Cluster{NumResources: 2, MapSlots: 3, ReduceSlots: 1}
	j := mkJob(0, 0, 0, 1_000_000, []int64{5000, 5000}, nil)
	j.MapTasks[0].Req = 2 // takes 2 of 3 map slots on its resource
	cfg := deterministicConfig()
	cfg.Mode = ModeDirect
	sched, err := SolveBatch(cluster, []*workload.Job{j}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(cluster); err != nil {
		t.Fatal(err)
	}
}

func TestBuildModelFrozenBeyondNominalHorizonAccepted(t *testing.T) {
	// A straggler-slowed frozen attempt can end far past the fault-free
	// horizon; the model must extend the horizon rather than reject it.
	cluster := sim.Cluster{NumResources: 1, MapSlots: 1, ReduceSlots: 1}
	j := mkJob(0, 0, 0, 1_000, []int64{5000}, nil)
	far := int64(1) << 50
	w := &jobWork{job: j, frozenMaps: []frozenTask{
		{task: j.MapTasks[0], res: 0, start: far, exec: 15_000},
	}}
	bm, err := buildModel(ModeCombined, 0, cluster, []*jobWork{w}, nil)
	if err != nil {
		t.Fatalf("frozen task beyond nominal horizon rejected: %v", err)
	}
	iv := bm.byTask[j.MapTasks[0]]
	if got := bm.model.StartMin(iv); got != far {
		t.Fatalf("frozen start %d, want pinned at %d", got, far)
	}
}

func TestBuildModelTerminalsWithoutReduces(t *testing.T) {
	cluster := sim.Cluster{NumResources: 1, MapSlots: 1, ReduceSlots: 1}
	j := mkJob(0, 0, 0, 4_000, []int64{5000}, nil) // impossible deadline
	w := &jobWork{job: j, pendingMaps: j.MapTasks}
	bm, err := buildModel(ModeCombined, 0, cluster, []*jobWork{w}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bm.lates[j] == nil {
		t.Fatal("map-only job should still get a lateness indicator")
	}
}

func TestBuildModelAdvancesStaleEarliestStarts(t *testing.T) {
	// Table 2 lines 1-4: a job whose s_j has passed is schedulable from now.
	cluster := sim.Cluster{NumResources: 1, MapSlots: 1, ReduceSlots: 1}
	j := mkJob(0, 0, 1_000, 1_000_000, []int64{5000}, nil)
	w := &jobWork{job: j, pendingMaps: j.MapTasks}
	now := int64(50_000)
	bm, err := buildModel(ModeCombined, now, cluster, []*jobWork{w}, nil)
	if err != nil {
		t.Fatal(err)
	}
	iv := bm.byTask[j.MapTasks[0]]
	if got := bm.model.StartMin(iv); got != now {
		t.Fatalf("startMin %d, want now=%d", got, now)
	}
}
