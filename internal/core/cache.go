package core

import (
	"encoding/binary"
	"hash/fnv"
	"math"

	"mrcprm/internal/cp"
	"mrcprm/internal/sim"
	"mrcprm/internal/workload"
)

// The solve-result cache memoizes one reschedule's installed timetable
// under a fingerprint of *everything* the solve depends on: the solver
// parameters, the invocation time (start bounds and the model horizon are
// now-relative), the down mask, the frozen-task and pending-job sets, and
// the warm-start hint. A repeat trigger with an identical key — e.g. a
// resource-up event that changes nothing about the pending frontier —
// reinstalls the cached placements in their original order instead of
// solving. Under DeterministicConfig a solve is a pure function of the key
// contents, so a hit is bit-identical to the re-solve it replaces and run
// fingerprints do not change with the cache on or off.

// solveCacheCap bounds the cache; entries beyond it evict FIFO. Repeat
// triggers arrive close to their original solve, so a small window is
// enough and keeps retained task pointers bounded.
const solveCacheCap = 128

// cachedPlacement is one installed placement, in install order so a replay
// issues the exact same ctx.Schedule sequence as the original round.
type cachedPlacement struct {
	task  *workload.Task
	res   int
	start int64
	slot  int // combined-mode unit slot; -1 in direct mode
}

// cacheEntry is one memoized install: the placements of every schedulable
// task and the solver's reported objective.
type cacheEntry struct {
	placements []cachedPlacement
	objective  int
}

type solveCache struct {
	entries map[uint64]*cacheEntry
	order   []uint64 // insertion order, for FIFO eviction
}

func newSolveCache() *solveCache {
	return &solveCache{entries: make(map[uint64]*cacheEntry)}
}

func (c *solveCache) get(key uint64) (*cacheEntry, bool) {
	e, ok := c.entries[key]
	return e, ok
}

func (c *solveCache) put(key uint64, e *cacheEntry) {
	if _, ok := c.entries[key]; ok {
		c.entries[key] = e
		return
	}
	if len(c.order) >= solveCacheCap {
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
	}
	c.entries[key] = e
	c.order = append(c.order, key)
}

// hintPlacements snapshots the installed placement of every still-pending
// task so the next solve can warm-start from it. Tasks without an
// installed placement (fresh arrivals, failed attempts) carry no hint.
func hintPlacements(ctx sim.Context, work []*jobWork) map[*workload.Task]cachedPlacement {
	h := make(map[*workload.Task]cachedPlacement)
	add := func(ts []*workload.Task) {
		for _, t := range ts {
			if res, start, ok := ctx.Placement(t); ok {
				h[t] = cachedPlacement{task: t, res: res, start: start}
			}
		}
	}
	for _, w := range work {
		add(w.pendingMaps)
		add(w.pendingReds)
	}
	return h
}

// buildHint re-indexes the installed-timetable snapshot onto the freshly
// built model. Returns nil when nothing survives to hint from (a fully
// fresh frontier warm-starts nothing).
func buildHint(bm *builtModel, hints map[*workload.Task]cachedPlacement) *cp.Hint {
	if len(hints) == 0 {
		return nil
	}
	n := len(bm.model.Intervals())
	h := &cp.Hint{Starts: make([]int64, n), Res: make([]int, n)}
	for i := range h.Starts {
		h.Starts[i] = -1
		h.Res[i] = -1
	}
	found := false
	for t, iv := range bm.byTask {
		if bm.frozen[t] {
			continue
		}
		if p, ok := hints[t]; ok {
			h.Starts[iv.ID()] = p.start
			h.Res[iv.ID()] = p.res
			found = true
		}
	}
	if !found {
		return nil
	}
	return h
}

// cacheKey fingerprints one reschedule's full solve input. Iteration is in
// deterministic work order (arrival-ordered jobs, task-list order within a
// job), so equal states hash equally.
func (m *Manager) cacheKey(now int64, work []*jobWork, down []bool,
	hints map[*workload.Task]cachedPlacement) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	i64 := func(v int64) { u64(uint64(v)) }
	str := func(s string) {
		u64(uint64(len(s)))
		h.Write([]byte(s))
	}
	b := func(v bool) {
		if v {
			u64(1)
		} else {
			u64(0)
		}
	}

	// Solver parameters that shape the model or the search.
	i64(int64(m.cfg.Mode))
	i64(int64(m.cfg.Ordering))
	i64(m.cfg.NodeLimit)
	i64(int64(m.cfg.SolveTimeLimit))
	i64(int64(m.cfg.Workers))
	b(m.cfg.StrictSolveLimits)
	b(m.cfg.OpportunisticSolve)
	b(m.cfg.WarmStart)
	b(m.cfg.SpeedBlind)
	for _, r := range m.resRank {
		i64(int64(r))
	}

	// The planning cluster's heterogeneous shape (speeds, memory) changes
	// model durations and capacities; a per-manager cache never sees it
	// vary, but hashing it keeps the key an honest fingerprint of every
	// solve input.
	i64(int64(m.cluster.NumResources))
	i64(m.cluster.MemCapacity)
	for r := 0; r < len(m.cluster.Speed); r++ {
		u64(math.Float64bits(m.cluster.Speed[r]))
	}

	i64(now)
	for _, d := range down {
		b(d)
	}

	frozen := func(fz frozenTask) {
		str(fz.task.ID)
		i64(int64(fz.res))
		i64(fz.start)
		i64(fz.exec)
		i64(int64(m.unitSlot[fz.task])) // pins the matchmaking replay
	}
	pending := func(t *workload.Task) {
		str(t.ID)
		i64(t.Exec)
		i64(t.Req)
		i64(t.Mem)
		if p, ok := hints[t]; ok {
			i64(int64(p.res))
			i64(p.start)
		} else {
			i64(-1)
			i64(-1)
		}
	}
	for _, w := range work {
		i64(int64(w.job.ID))
		i64(w.job.EarliestStart)
		i64(w.job.Deadline)
		b(w.ghost)
		i64(int64(w.completedMaps))
		u64(0xa1) // section tags keep set boundaries unambiguous
		for _, t := range w.pendingMaps {
			pending(t)
		}
		u64(0xa2)
		for i := range w.frozenMaps {
			frozen(w.frozenMaps[i])
		}
		u64(0xa3)
		for _, t := range w.pendingReds {
			pending(t)
		}
		u64(0xa4)
		for i := range w.frozenReds {
			frozen(w.frozenReds[i])
		}
	}
	return h.Sum64()
}
