package core

import (
	"testing"
	"testing/quick"

	"mrcprm/internal/workload"
)

// The paper's Section V.D example: 100 reduce slots over nr=30 resources
// gives 20 resources with 3 slots and 10 with 4.
func TestRegroupSlotsPaperExample(t *testing.T) {
	got := RegroupSlots(100, 30)
	if len(got) != 30 {
		t.Fatalf("%d resources", len(got))
	}
	threes, fours := 0, 0
	var total int64
	for _, c := range got {
		total += c
		switch c {
		case 3:
			threes++
		case 4:
			fours++
		default:
			t.Fatalf("unexpected capacity %d", c)
		}
	}
	if threes != 20 || fours != 10 || total != 100 {
		t.Fatalf("threes=%d fours=%d total=%d", threes, fours, total)
	}
}

func TestRegroupSlotsEdges(t *testing.T) {
	if got := RegroupSlots(10, 0); got != nil {
		t.Fatal("n=0 should return nil")
	}
	if got := RegroupSlots(-1, 3); got != nil {
		t.Fatal("negative slots should return nil")
	}
	got := RegroupSlots(7, 7)
	for _, c := range got {
		if c != 1 {
			t.Fatalf("even split broken: %v", got)
		}
	}
	// More resources than slots: some get zero.
	got = RegroupSlots(2, 4)
	var total int64
	for _, c := range got {
		total += c
	}
	if total != 2 {
		t.Fatalf("total %d", total)
	}
}

// Property: regrouping conserves slots and capacities differ by at most 1.
func TestQuickRegroupSlotsInvariants(t *testing.T) {
	f := func(totalSeed, nSeed uint8) bool {
		total := int64(totalSeed)
		n := int(nSeed%32) + 1
		got := RegroupSlots(total, n)
		if len(got) != n {
			return false
		}
		var sum, min, max int64
		min = 1 << 62
		for _, c := range got {
			sum += c
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		return sum == total && max-min <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSlotTimelineOps(t *testing.T) {
	var tl slotTimeline
	tl.insert(10, 20)
	tl.insert(30, 40)
	if !tl.fits(20, 30) {
		t.Fatal("exact gap should fit")
	}
	if tl.fits(15, 25) || tl.fits(5, 11) || tl.fits(39, 41) {
		t.Fatal("overlaps should not fit")
	}
	if g := tl.gapBefore(30); g != 10 {
		t.Fatalf("gapBefore(30) = %d, want 10", g)
	}
	if g := tl.gapBefore(5); g != 5 {
		t.Fatalf("gapBefore(5) = %d, want 5 (empty prefix)", g)
	}
	if at := tl.earliestFitAfter(0, 10); at != 0 {
		t.Fatalf("earliestFitAfter(0,10) = %d, want 0 ([0,10) touches nothing)", at)
	}
	if at := tl.earliestFitAfter(5, 10); at != 20 {
		t.Fatalf("earliestFitAfter(5,10) = %d, want 20 (jump past [10,20))", at)
	}
	if at := tl.earliestFitAfter(0, 5); at != 0 {
		t.Fatalf("earliestFitAfter(0,5) = %d, want 0", at)
	}
	if at := tl.earliestFitAfter(35, 10); at != 40 {
		t.Fatalf("earliestFitAfter(35,10) = %d, want 40", at)
	}
}

func TestMatchmakerBestGapChoice(t *testing.T) {
	var st Stats
	mk := newMatchmaker(2, 1, 1, &st) // 2 resources, 1 map slot each
	// Slot 0 busy [2,10), slot 1 busy [5,8): placing at 11 leaves gap 1 on
	// slot 0 and gap 3 on slot 1 — the paper's example prefers slot 0.
	mk.mapSlots[0].insert(2, 10)
	mk.mapSlots[1].insert(5, 8)
	task := &workload.Task{ID: "t", JobID: 0, Type: workload.MapTask, Exec: 4, Req: 1}
	a := mk.place(task, 11)
	if a.slot != 0 || a.start != 11 {
		t.Fatalf("placed on slot %d at %d, want slot 0 at 11", a.slot, a.start)
	}
	if st.Slips != 0 {
		t.Fatal("no slip expected")
	}
}

func TestMatchmakerSlipFallback(t *testing.T) {
	var st Stats
	mk := newMatchmaker(1, 1, 1, &st)
	mk.mapSlots[0].insert(0, 100)
	task := &workload.Task{ID: "t", JobID: 0, Type: workload.MapTask, Exec: 10, Req: 1}
	a := mk.place(task, 50) // no room until 100
	if a.start != 100 {
		t.Fatalf("slipped start %d, want 100", a.start)
	}
	if st.Slips != 1 || st.SlipMS != 50 {
		t.Fatalf("slip stats %+v", st)
	}
}

func TestMatchmakerReduceWaitsForSlippedMaps(t *testing.T) {
	var st Stats
	mk := newMatchmaker(1, 1, 1, &st)
	mk.mapSlots[0].insert(0, 100) // pinned blocker
	mapTask := &workload.Task{ID: "m", JobID: 7, Type: workload.MapTask, Exec: 10, Req: 1}
	redTask := &workload.Task{ID: "r", JobID: 7, Type: workload.ReduceTask, Exec: 5, Req: 1}
	am := mk.place(mapTask, 50) // slips to 100, ends 110
	if am.start != 100 {
		t.Fatalf("map start %d", am.start)
	}
	ar := mk.place(redTask, 60) // CP said 60, but the map now ends at 110
	if ar.start != 110 {
		t.Fatalf("reduce start %d, want 110 (after slipped map)", ar.start)
	}
}

func TestMatchmakerPinnedTasksBlockSlots(t *testing.T) {
	var st Stats
	mk := newMatchmaker(1, 2, 1, &st) // one resource, two map slots
	running := &workload.Task{ID: "run", JobID: 1, Type: workload.MapTask, Exec: 100, Req: 1}
	mk.pin(running, 0, 0, running.Exec) // unit slot 0 busy [0,100)
	task := &workload.Task{ID: "new", JobID: 2, Type: workload.MapTask, Exec: 50, Req: 1}
	a := mk.place(task, 0)
	if a.slot != 1 || a.start != 0 {
		t.Fatalf("placed slot %d at %d, want free slot 1 at 0", a.slot, a.start)
	}
	// Both unit slots belong to resource 0.
	if a.res != 0 {
		t.Fatalf("resource %d", a.res)
	}
}
