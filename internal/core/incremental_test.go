package core

import (
	"testing"
	"time"

	"mrcprm/internal/sim"
	"mrcprm/internal/workload"
)

// --- rolling horizon ---

// A slack-rich job (latest feasible start far beyond now+window) must be
// window-parked at arrival, admitted by the timer with a full window of
// SLA slack left, and still complete on time.
func TestHorizonWindowParksSlackRichJob(t *testing.T) {
	cluster := sim.Cluster{NumResources: 2, MapSlots: 1, ReduceSlots: 1}
	cfg := deterministicConfig()
	cfg.DeferralLead = 0
	cfg.HorizonWindow = 60 * time.Second

	// Min exec 9s, deadline at 600s: lfs ≈ 591_000 >> 0 + 60_000.
	j := mkJob(0, 1000, 1000, 600_000, []int64{4000, 4000}, []int64{5000})
	lfs := j.Deadline - SLALowerBound(cluster, j)

	mgr := New(cluster, cfg)
	s, err := sim.New(cluster, mgr, []*workload.Job{j})
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := mgr.Stats().WindowParked; got != 1 {
		t.Fatalf("WindowParked = %d, want 1", got)
	}
	if mgr.Stats().Deferred != 0 {
		t.Fatalf("Deferred = %d, want 0 (lead disabled)", mgr.Stats().Deferred)
	}
	done, ok := s.JobDone(j)
	if !ok || done > j.Deadline {
		t.Fatalf("job done at %d (ok=%v), deadline %d", done, ok, j.Deadline)
	}
	if m.LateJobs != 0 {
		t.Fatalf("late jobs = %d, want 0", m.LateJobs)
	}
	// The job cannot have started before its window admission: its first
	// task start is at or after lfs - window.
	if start := done - 9000; start < lfs-cfg.HorizonWindow.Milliseconds() {
		t.Fatalf("job finished at %d — ran before the horizon admitted it (admit at %d)",
			done, lfs-cfg.HorizonWindow.Milliseconds())
	}
}

// Deferral and horizon compose: when both would park a job, the later
// release wins, and a job parked only by one mechanism is counted there.
func TestHorizonAndDeferralInteraction(t *testing.T) {
	cluster := sim.Cluster{NumResources: 2, MapSlots: 1, ReduceSlots: 1}
	cfg := deterministicConfig()
	cfg.DeferralLead = 10 * time.Second
	cfg.HorizonWindow = 30 * time.Second

	// Far-future earliest start AND slack-rich deadline. Deferral release
	// = ES - lead = 190s; horizon release = lfs - window ≈ 561s. The
	// horizon release is later and must win.
	j := mkJob(0, 0, 200_000, 600_000, []int64{4000, 4000}, []int64{5000})
	mgr := New(cluster, cfg)
	lfs := j.Deadline - SLALowerBound(cluster, j)
	if until := mgr.parkedUntil(0, j); until != lfs-cfg.HorizonWindow.Milliseconds() {
		t.Fatalf("parkedUntil = %d, want horizon release %d", until, lfs-30_000)
	}

	// Tight deadline, far-future start: only deferral parks it.
	j2 := mkJob(1, 0, 200_000, 215_000, []int64{4000, 4000}, []int64{5000})
	if until := mgr.parkedUntil(0, j2); until != 190_000 {
		t.Fatalf("parkedUntil = %d, want deferral release 190000", until)
	}

	// Imminent job: parked by neither.
	j3 := mkJob(2, 0, 1000, 30_000, []int64{4000, 4000}, []int64{5000})
	if until := mgr.parkedUntil(0, j3); until != 0 {
		t.Fatalf("parkedUntil = %d, want 0", until)
	}
}

// Drain must force-admit window-parked jobs, not just deferral-parked
// ones: a draining engine cannot wait hours for a horizon timer.
func TestDrainForceAdmitsWindowParked(t *testing.T) {
	cluster := sim.Cluster{NumResources: 2, MapSlots: 1, ReduceSlots: 1}
	cfg := deterministicConfig()
	cfg.DeferralLead = 0
	cfg.HorizonWindow = 60 * time.Second

	j := mkJob(0, 1000, 1000, 600_000, []int64{4000, 4000}, []int64{5000})
	mgr := New(cluster, cfg)
	s, err := sim.New(cluster, mgr, []*workload.Job{j})
	if err != nil {
		t.Fatal(err)
	}
	// Step the arrival event only: the job is now parked.
	if _, err := s.Step(); err != nil {
		t.Fatal(err)
	}
	if mgr.Stats().WindowParked != 1 || mgr.Outstanding() != 1 {
		t.Fatalf("after arrival: WindowParked=%d Outstanding=%d, want 1/1",
			mgr.Stats().WindowParked, mgr.Outstanding())
	}
	if err := mgr.Drain(s); err != nil {
		t.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	done, ok := s.JobDone(j)
	if !ok {
		t.Fatal("job did not complete after drain")
	}
	// Drained work starts immediately instead of waiting for the horizon.
	if done > 60_000 {
		t.Fatalf("job done at %d — drain did not force-admit it", done)
	}
	if m.JobsCompleted != 1 {
		t.Fatalf("completed %d, want 1", m.JobsCompleted)
	}
}

// --- determinism fingerprints ---

// incrementalWorkload is a contested stream: enough load that schedules
// are nontrivial, with staggered deadlines and a mid-stream burst.
func incrementalWorkload() []*workload.Job {
	var jobs []*workload.Job
	for i := 0; i < 12; i++ {
		arrival := int64(i * 3000)
		deadline := arrival + 40_000 + int64(i%4)*20_000
		jobs = append(jobs, mkJob(i, arrival, arrival, deadline,
			[]int64{4000 + int64(i%3)*2000, 6000}, []int64{5000}))
	}
	return jobs
}

func fingerprintWith(t *testing.T, mutate func(*Config)) uint64 {
	t.Helper()
	cluster := sim.Cluster{NumResources: 3, MapSlots: 2, ReduceSlots: 2}
	cfg := DeterministicConfig()
	mutate(&cfg)
	mgr := New(cluster, cfg)
	s, err := sim.New(cluster, mgr, incrementalWorkload())
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return m.Fingerprint()
}

// The solve cache must be invisible to run outcomes: under deterministic
// solver settings a cache hit replays exactly the schedule a re-solve
// would have produced, so run fingerprints are bit-identical with the
// cache on and off — with and without warm-starting underneath.
func TestSolveCacheFingerprintInvariant(t *testing.T) {
	base := fingerprintWith(t, func(c *Config) {})
	cached := fingerprintWith(t, func(c *Config) { c.SolveCache = true })
	if base != cached {
		t.Fatalf("cache changed the fingerprint: %x vs %x", base, cached)
	}

	warm := fingerprintWith(t, func(c *Config) { c.WarmStart = true })
	warmCached := fingerprintWith(t, func(c *Config) { c.WarmStart = true; c.SolveCache = true })
	if warm != warmCached {
		t.Fatalf("cache changed the warm-start fingerprint: %x vs %x", warm, warmCached)
	}
}

// Warm-starting is a policy change (it may pick different, equally valid
// schedules than cold solving) but must be self-consistent: two warm runs
// over the same stream produce identical fingerprints.
func TestWarmStartSelfConsistent(t *testing.T) {
	a := fingerprintWith(t, func(c *Config) { c.WarmStart = true })
	b := fingerprintWith(t, func(c *Config) { c.WarmStart = true })
	if a != b {
		t.Fatalf("warm-start fingerprint unstable: %x vs %x", a, b)
	}
}

// A repeat trigger over an unchanged frontier must hit the cache: firing
// OnResourceUp twice at the same instant re-solves once and replays once.
func TestSolveCacheHitOnRepeatTrigger(t *testing.T) {
	cluster := sim.Cluster{NumResources: 2, MapSlots: 1, ReduceSlots: 1}
	cfg := DeterministicConfig()
	cfg.SolveCache = true

	jobs := []*workload.Job{
		mkJob(0, 1000, 1000, 60_000, []int64{4000, 4000}, []int64{5000}),
		mkJob(1, 1000, 1000, 80_000, []int64{3000}, []int64{2000}),
	}
	mgr := New(cluster, cfg)
	s, err := sim.New(cluster, mgr, jobs)
	if err != nil {
		t.Fatal(err)
	}
	// Process both arrivals (two solves, two misses).
	for i := 0; i < 2; i++ {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if st := mgr.Stats(); st.CacheHits != 0 || st.CacheMisses != 2 {
		t.Fatalf("after arrivals: hits=%d misses=%d, want 0/2", st.CacheHits, st.CacheMisses)
	}
	// Same instant, unchanged frontier: identical solve input.
	if err := mgr.OnResourceUp(s, 0); err != nil {
		t.Fatal(err)
	}
	st := mgr.Stats()
	if st.CacheHits != 1 {
		t.Fatalf("repeat trigger: hits=%d misses=%d, want a cache hit", st.CacheHits, st.CacheMisses)
	}
	// The replayed schedule must still run to a clean completion.
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.JobsCompleted != 2 || m.LateJobs != 0 {
		t.Fatalf("completed=%d late=%d after cache replay", m.JobsCompleted, m.LateJobs)
	}
}

// Warm-start bookkeeping: a second reschedule over installed placements
// must be hinted and seeded.
func TestWarmStartSeedsSecondReschedule(t *testing.T) {
	cluster := sim.Cluster{NumResources: 2, MapSlots: 1, ReduceSlots: 1}
	cfg := DeterministicConfig()
	cfg.WarmStart = true

	jobs := []*workload.Job{
		mkJob(0, 1000, 1000, 60_000, []int64{4000, 4000}, []int64{5000}),
		mkJob(1, 2000, 2000, 80_000, []int64{3000}, []int64{2000}),
	}
	mgr := New(cluster, cfg)
	s, err := sim.New(cluster, mgr, jobs)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	st := mgr.Stats()
	// First arrival has no installed placements to hint from; the second
	// reschedule does.
	if st.WarmStartRounds == 0 || st.WarmStartSeeded == 0 {
		t.Fatalf("warm-start never engaged: hinted=%d seeded=%d", st.WarmStartRounds, st.WarmStartSeeded)
	}
	if m.JobsCompleted != 2 {
		t.Fatalf("completed %d, want 2", m.JobsCompleted)
	}
}
