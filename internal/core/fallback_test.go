package core

import (
	"testing"

	"mrcprm/internal/sim"
	"mrcprm/internal/workload"
)

// A CP solver failure must never terminate a run: the manager falls back to
// the greedy EDF placer and the simulation completes every job. StrictLimits
// plus a one-node budget guarantees every solve returns no solution.
func TestSolverFailureFallsBackToGreedy(t *testing.T) {
	cluster := sim.Cluster{NumResources: 2, MapSlots: 2, ReduceSlots: 2}
	cfg := deterministicConfig()
	cfg.StrictSolveLimits = true
	cfg.NodeLimit = 1
	var jobs []*workload.Job
	for i := 0; i < 6; i++ {
		jobs = append(jobs, mkJob(i, int64(i)*1000, int64(i)*1000, 400_000,
			[]int64{4000, 3000}, []int64{5000}))
	}
	m, mgr := runJobs(t, cluster, cfg, jobs)
	st := mgr.Stats()
	if st.FallbackRounds == 0 {
		t.Fatal("expected greedy fallback rounds, solver succeeded under a 1-node strict budget")
	}
	if m.JobsCompleted != len(jobs) {
		t.Fatalf("completed %d of %d jobs under fallback", m.JobsCompleted, len(jobs))
	}
}

// Same property for the direct formulation, whose fallback path places on
// per-resource demand profiles rather than the unit-slot matchmaker.
func TestSolverFailureFallbackDirectMode(t *testing.T) {
	cluster := sim.Cluster{NumResources: 2, MapSlots: 2, ReduceSlots: 2}
	cfg := deterministicConfig()
	cfg.Mode = ModeDirect
	cfg.StrictSolveLimits = true
	cfg.NodeLimit = 1
	var jobs []*workload.Job
	for i := 0; i < 4; i++ {
		jobs = append(jobs, mkJob(i, int64(i)*2000, int64(i)*2000, 400_000,
			[]int64{4000}, []int64{3000}))
	}
	m, mgr := runJobs(t, cluster, cfg, jobs)
	if mgr.Stats().FallbackRounds == 0 {
		t.Fatal("expected greedy fallback rounds in direct mode")
	}
	if m.JobsCompleted != len(jobs) {
		t.Fatalf("completed %d of %d jobs", m.JobsCompleted, len(jobs))
	}
}
