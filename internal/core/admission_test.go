package core

import (
	"errors"
	"testing"

	"mrcprm/internal/sim"
)

func TestSLALowerBound(t *testing.T) {
	cluster := sim.Cluster{NumResources: 2, MapSlots: 1, ReduceSlots: 1}
	// 4 maps of 10s on 2 total map slots: area bound 20s beats longest 10s.
	j := mkJob(0, 0, 0, 1, []int64{10_000, 10_000, 10_000, 10_000}, []int64{5_000})
	if lb := SLALowerBound(cluster, j); lb != 25_000 {
		t.Fatalf("lower bound = %d, want 25000", lb)
	}
	// One long map dominates the area spread.
	j2 := mkJob(1, 0, 0, 1, []int64{30_000, 1_000}, nil)
	if lb := SLALowerBound(cluster, j2); lb != 30_000 {
		t.Fatalf("lower bound = %d, want 30000", lb)
	}
}

func TestCheckAdmission(t *testing.T) {
	cluster := sim.Cluster{NumResources: 1, MapSlots: 1, ReduceSlots: 1}
	// Needs 10s of map work; deadline leaves exactly 10s: feasible.
	ok := mkJob(0, 0, 0, 10_000, []int64{10_000}, nil)
	if err := CheckAdmission(cluster, ok, 0); err != nil {
		t.Fatalf("tight-but-feasible job rejected: %v", err)
	}
	// One ms short: provably infeasible.
	bad := mkJob(1, 0, 0, 9_999, []int64{10_000}, nil)
	err := CheckAdmission(cluster, bad, 0)
	var ae *AdmissionError
	if !errors.As(err, &ae) {
		t.Fatalf("want *AdmissionError, got %v", err)
	}
	if ae.EarliestFinish != 10_000 || ae.Deadline != 9_999 {
		t.Fatalf("bad error detail: %+v", ae)
	}
	// The clock advancing past the earliest start tightens the check.
	if err := CheckAdmission(cluster, ok, 1); err == nil {
		t.Fatal("job feasible only at t=0 admitted at t=1")
	}
	// A far-future earliest start keeps it feasible regardless of now.
	ar := mkJob(2, 0, 50_000, 70_000, []int64{10_000}, nil)
	if err := CheckAdmission(cluster, ar, 20_000); err != nil {
		t.Fatalf("advance-reservation job rejected: %v", err)
	}
}
