package core

import (
	"errors"
	"testing"

	"mrcprm/internal/sim"
)

func TestSLALowerBound(t *testing.T) {
	cluster := sim.Cluster{NumResources: 2, MapSlots: 1, ReduceSlots: 1}
	// 4 maps of 10s on 2 total map slots: area bound 20s beats longest 10s.
	j := mkJob(0, 0, 0, 1, []int64{10_000, 10_000, 10_000, 10_000}, []int64{5_000})
	if lb := SLALowerBound(cluster, j); lb != 25_000 {
		t.Fatalf("lower bound = %d, want 25000", lb)
	}
	// One long map dominates the area spread.
	j2 := mkJob(1, 0, 0, 1, []int64{30_000, 1_000}, nil)
	if lb := SLALowerBound(cluster, j2); lb != 30_000 {
		t.Fatalf("lower bound = %d, want 30000", lb)
	}
}

func TestSLALowerBoundHetero(t *testing.T) {
	cluster := sim.Cluster{NumResources: 2, MapSlots: 1, ReduceSlots: 1,
		Speed: []float64{1.0, 0.5}}
	// Aggregate drain rate is 1.5 nominal ms per wall ms: the area term
	// ceil(20000/1.5) = 13334 beats the longest task (10s on the fast
	// machine).
	j := mkJob(0, 0, 0, 1, []int64{10_000, 10_000}, nil)
	if lb := SLALowerBound(cluster, j); lb != 13_334 {
		t.Fatalf("hetero area bound = %d, want 13334", lb)
	}
	// One dominant task: even the fastest machine needs its full 30s.
	j2 := mkJob(1, 0, 0, 1, []int64{30_000}, nil)
	if lb := SLALowerBound(cluster, j2); lb != 30_000 {
		t.Fatalf("hetero longest bound = %d, want 30000", lb)
	}
	// An explicit all-1.0 vector must take the uniform integer path and
	// agree exactly with the nil representation.
	uniform := sim.Cluster{NumResources: 2, MapSlots: 1, ReduceSlots: 1}
	explicit := uniform
	explicit.Speed = []float64{1, 1}
	j3 := mkJob(2, 0, 0, 1, []int64{10_000, 10_000, 10_000, 10_000}, []int64{5_000})
	if a, b := SLALowerBound(uniform, j3), SLALowerBound(explicit, j3); a != b {
		t.Fatalf("uniform bound %d != explicit all-1.0 bound %d", a, b)
	}
}

func TestCheckAdmissionMemory(t *testing.T) {
	cluster := sim.Cluster{NumResources: 1, MapSlots: 1, ReduceSlots: 1, MemCapacity: 4}
	j := mkJob(0, 0, 0, 100_000, []int64{1_000}, nil)
	j.MapTasks[0].Mem = 5
	var ae *AdmissionError
	if err := CheckAdmission(cluster, j, 0); !errors.As(err, &ae) {
		t.Fatalf("task with Mem 5 on capacity-4 cluster admitted: %v", err)
	}
	j.MapTasks[0].Mem = 4
	if err := CheckAdmission(cluster, j, 0); err != nil {
		t.Fatalf("exactly-fitting task rejected: %v", err)
	}
}

func TestCheckAdmission(t *testing.T) {
	cluster := sim.Cluster{NumResources: 1, MapSlots: 1, ReduceSlots: 1}
	// Needs 10s of map work; deadline leaves exactly 10s: feasible.
	ok := mkJob(0, 0, 0, 10_000, []int64{10_000}, nil)
	if err := CheckAdmission(cluster, ok, 0); err != nil {
		t.Fatalf("tight-but-feasible job rejected: %v", err)
	}
	// One ms short: provably infeasible.
	bad := mkJob(1, 0, 0, 9_999, []int64{10_000}, nil)
	err := CheckAdmission(cluster, bad, 0)
	var ae *AdmissionError
	if !errors.As(err, &ae) {
		t.Fatalf("want *AdmissionError, got %v", err)
	}
	if ae.EarliestFinish != 10_000 || ae.Deadline != 9_999 {
		t.Fatalf("bad error detail: %+v", ae)
	}
	// The clock advancing past the earliest start tightens the check.
	if err := CheckAdmission(cluster, ok, 1); err == nil {
		t.Fatal("job feasible only at t=0 admitted at t=1")
	}
	// A far-future earliest start keeps it feasible regardless of now.
	ar := mkJob(2, 0, 50_000, 70_000, []int64{10_000}, nil)
	if err := CheckAdmission(cluster, ar, 20_000); err != nil {
		t.Fatalf("advance-reservation job rejected: %v", err)
	}
}
