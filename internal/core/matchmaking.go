package core

import (
	"sort"

	"mrcprm/internal/workload"
)

// The Section V.D matchmaking algorithm: the combined-resource schedule is
// mapped onto unit-capacity slots (m * c^mp map slots and m * c^rd reduce
// slots), choosing for each task the slot that leaves the smallest gap
// behind it. Unit slots are grouped into resources with the configured
// per-resource capacities. Tasks that have already started stay pinned on
// the unit slot they were given in an earlier round.
//
// The paper's two-phase scheme is a relaxation (see DESIGN.md): with
// pinned tasks pre-colored, a task occasionally fits the combined capacity
// profile but no single unit slot. When that happens the task slips to the
// earliest instant a slot can take it, and dependent reduce starts are
// pushed along; slips are counted in Stats and reflected in the metrics.

// RegroupSlots implements the second step of the Section V.D matchmaking
// algorithm in its general, heterogeneous form: totalSlots unit-capacity
// slots are divided "evenly" among n resources, meaning every resource
// gets floor(total/n) slots and the remainder get one more. The paper's
// example: 100 reduce slots over nr=30 resources gives 20 resources with 3
// slots and 10 with 4.
//
// The simulation harness uses homogeneous clusters (as all of the paper's
// experiments do), so this regrouping is exposed for library users
// building heterogeneous layouts on top of the matchmaker.
func RegroupSlots(totalSlots int64, n int) []int64 {
	if n <= 0 || totalSlots < 0 {
		return nil
	}
	base := totalSlots / int64(n)
	rem := totalSlots % int64(n)
	out := make([]int64, n)
	for i := range out {
		out[i] = base
		// The paper assigns the extra slots to the tail of the list
		// ("20 of the 30 resources will have c=3, and the remaining 10
		// will have c=4").
		if int64(i) >= int64(n)-rem {
			out[i]++
		}
	}
	return out
}

// slotTimeline is one unit-capacity slot's committed busy intervals,
// kept sorted by start.
type slotTimeline struct {
	busy []busySpan
}

type busySpan struct{ from, to int64 }

// fits reports whether [from, to) is free on the slot.
func (s *slotTimeline) fits(from, to int64) bool {
	i := sort.Search(len(s.busy), func(i int) bool { return s.busy[i].to > from })
	return i == len(s.busy) || s.busy[i].from >= to
}

// gapBefore returns from minus the end of the latest busy span ending at or
// before from (or from itself on an empty prefix) — the matchmaking
// "remaining gap" criterion.
func (s *slotTimeline) gapBefore(from int64) int64 {
	i := sort.Search(len(s.busy), func(i int) bool { return s.busy[i].to > from })
	if i == 0 {
		return from
	}
	return from - s.busy[i-1].to
}

// earliestFitAfter returns the smallest start >= from such that a window of
// length dur is free.
func (s *slotTimeline) earliestFitAfter(from, dur int64) int64 {
	st := from
	i := sort.Search(len(s.busy), func(i int) bool { return s.busy[i].to > st })
	for ; i < len(s.busy); i++ {
		if s.busy[i].from >= st+dur {
			break
		}
		st = s.busy[i].to
	}
	return st
}

// insert commits [from, to) on the slot.
func (s *slotTimeline) insert(from, to int64) {
	i := sort.Search(len(s.busy), func(i int) bool { return s.busy[i].from >= from })
	s.busy = append(s.busy, busySpan{})
	copy(s.busy[i+1:], s.busy[i:])
	s.busy[i] = busySpan{from, to}
}

// assignment is the matchmaking output for one task.
type assignment struct {
	task  *workload.Task
	res   int   // resource index for the simulator
	slot  int   // unit slot index (persisted for pinning after start)
	start int64 // possibly slipped
}

// matchmaker runs one round of the two-phase mapping.
type matchmaker struct {
	mapSlots  []slotTimeline
	redSlots  []slotTimeline
	mapPerRes int64
	redPerRes int64
	stats     *Stats
	jobMapEnd map[int]int64 // per job: latest (possibly slipped) map end this round
	frozenEnd map[int]int64 // per job: latest frozen/running map end
	// taskEnd records per-task placed/pinned ends for jobs using
	// task-level precedence (the workflow generalization).
	taskEnd map[*workload.Task]int64
}

func newMatchmaker(numRes int, mapPerRes, redPerRes int64, stats *Stats) *matchmaker {
	return &matchmaker{
		mapSlots:  make([]slotTimeline, int64(numRes)*mapPerRes),
		redSlots:  make([]slotTimeline, int64(numRes)*redPerRes),
		mapPerRes: mapPerRes,
		redPerRes: redPerRes,
		stats:     stats,
		jobMapEnd: make(map[int]int64),
		frozenEnd: make(map[int]int64),
		taskEnd:   make(map[*workload.Task]int64),
	}
}

// pin commits an already-started task to its remembered unit slot. exec is
// the attempt's effective execution time (straggler slowdowns make it
// exceed t.Exec).
func (mk *matchmaker) pin(t *workload.Task, slot int, start, exec int64) {
	tl := mk.timeline(t.Type, slot)
	tl.insert(start, start+exec)
	mk.taskEnd[t] = start + exec
	if t.Type == workload.MapTask {
		if end := start + exec; end > mk.frozenEnd[t.JobID] {
			mk.frozenEnd[t.JobID] = end
		}
	}
}

// blockResource marks every unit slot of a down resource busy from now on,
// so neither the best-gap pass nor the slip path can place work there.
func (mk *matchmaker) blockResource(res int, from int64) {
	const forever = int64(1) << 62
	for s := res * int(mk.mapPerRes); s < (res+1)*int(mk.mapPerRes); s++ {
		mk.mapSlots[s].insert(from, forever)
	}
	for s := res * int(mk.redPerRes); s < (res+1)*int(mk.redPerRes); s++ {
		mk.redSlots[s].insert(from, forever)
	}
}

func (mk *matchmaker) timeline(tt workload.TaskType, slot int) *slotTimeline {
	if tt == workload.MapTask {
		return &mk.mapSlots[slot]
	}
	return &mk.redSlots[slot]
}

// resourceOf converts a unit slot index to its owning resource.
func (mk *matchmaker) resourceOf(tt workload.TaskType, slot int) int {
	if tt == workload.MapTask {
		return int(int64(slot) / mk.mapPerRes)
	}
	return int(int64(slot) / mk.redPerRes)
}

// place maps one task (in non-decreasing start order across calls) onto a
// unit slot, preferring the best-gap slot at the task's assigned start and
// slipping forward only when no slot is free.
func (mk *matchmaker) place(t *workload.Task, start int64) assignment {
	if len(t.Preds) > 0 {
		// Task-level precedence (workflow jobs): wait for the possibly
		// slipped ends of the predecessors placed this round or pinned.
		// Completed predecessors are absent from taskEnd and ended at or
		// before now <= start.
		for _, p := range t.Preds {
			if end := mk.taskEnd[p]; end > start {
				start = end
			}
		}
	} else if t.Type == workload.ReduceTask {
		// Classic jobs: reduces must not start before the job's (possibly
		// slipped) maps.
		if end := mk.jobEnd(t.JobID); end > start {
			start = end
		}
	}
	slots := mk.mapSlots
	if t.Type == workload.ReduceTask {
		slots = mk.redSlots
	}
	best := -1
	var bestGap int64
	for i := range slots {
		if !slots[i].fits(start, start+t.Exec) {
			continue
		}
		gap := slots[i].gapBefore(start)
		if best < 0 || gap < bestGap {
			best, bestGap = i, gap
		}
	}
	actual := start
	if best < 0 {
		// Relaxation edge case: slip to the earliest feasible instant.
		bestAt := int64(1<<63 - 1)
		for i := range slots {
			at := slots[i].earliestFitAfter(start, t.Exec)
			if at < bestAt {
				bestAt, best = at, i
			}
		}
		actual = bestAt
		mk.stats.Slips++
		mk.stats.SlipMS += actual - start
	}
	slots[best].insert(actual, actual+t.Exec)
	mk.taskEnd[t] = actual + t.Exec
	if t.Type == workload.MapTask {
		if end := actual + t.Exec; end > mk.jobMapEnd[t.JobID] {
			mk.jobMapEnd[t.JobID] = end
		}
	}
	return assignment{task: t, res: mk.resourceOf(t.Type, best), slot: best, start: actual}
}

// jobEnd returns the job's latest known map completion this round.
func (mk *matchmaker) jobEnd(jobID int) int64 {
	end := mk.frozenEnd[jobID]
	if e := mk.jobMapEnd[jobID]; e > end {
		end = e
	}
	return end
}
