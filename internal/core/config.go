// Package core implements MRCP-RM, the paper's contribution: a constraint
// programming based resource manager that performs matchmaking and
// scheduling of an open stream of MapReduce jobs with SLAs (earliest start
// time, execution time, end-to-end deadline), minimizing the number of
// late jobs.
//
// On every invocation (job arrival or deferred-job release) the manager
// regenerates a CP model of all incomplete work — freezing tasks that have
// already started, exactly as Table 2 of the paper prescribes — solves it
// with the internal/cp engine, and installs the resulting schedule into the
// simulation. By default it uses the paper's Section V.D optimization:
// scheduling is solved on a single combined resource and a gap-based
// matchmaking pass maps tasks onto the real resources; Section V.E's
// deferral of far-future jobs is also implemented.
package core

import (
	"time"

	"mrcprm/internal/cp"
	"mrcprm/internal/rmkit"
	"mrcprm/internal/sim"
)

func init() {
	rmkit.Register("mrcp", func(cluster sim.Cluster, opts rmkit.Options) (sim.ResourceManager, error) {
		cfg, ok := opts.Extra.(Config)
		if !ok {
			cfg = DefaultConfig()
		}
		if opts.Retry != nil {
			cfg.Retry = *opts.Retry
		}
		return New(cluster, cfg), nil
	})
}

// SolveMode selects how matchmaking is handled.
type SolveMode int

const (
	// ModeCombined is the paper's optimized two-phase approach (Section
	// V.D): solve scheduling on one combined resource whose capacity is the
	// sum of all resources, then run the gap-based matchmaking algorithm.
	ModeCombined SolveMode = iota
	// ModeDirect models matchmaking inside the CP program with one
	// alternative (resource variable) per task — the unoptimized
	// formulation of Table 1. Exponentially more expensive; used for small
	// systems and the ablation benchmark.
	ModeDirect
)

func (m SolveMode) String() string {
	if m == ModeDirect {
		return "direct"
	}
	return "combined"
}

// Config tunes MRCP-RM.
type Config struct {
	// Mode selects combined (default) or direct matchmaking.
	Mode SolveMode
	// SolveTimeLimit bounds each CP solve's improvement phase. The first
	// greedy solution is always completed. Zero means no time limit.
	SolveTimeLimit time.Duration
	// NodeLimit bounds each CP solve's search nodes (0 = solver default).
	NodeLimit int64
	// Ordering is the job ordering strategy of Section VI.B; EDF is the
	// paper's reported configuration.
	Ordering cp.OrderingStrategy
	// DeferralLead implements Section V.E: a job whose earliest start time
	// is more than this far in the future is parked and only enters
	// matchmaking when s_j is at most DeferralLead away. Zero disables
	// deferral (every job is scheduled on arrival).
	DeferralLead time.Duration
	// BatchWindow implements the paper's future-work direction of reducing
	// matchmaking and scheduling times at high arrival rates: instead of
	// solving on every arrival, arrivals are accumulated for this long (in
	// simulated time) and scheduled in one solve. Zero (the default)
	// solves on every arrival, as the paper's evaluation does.
	BatchWindow time.Duration
	// BatchMaxPending caps the number of arrivals a batch may accumulate:
	// reaching it flushes the batch immediately instead of waiting for the
	// window to expire, bounding scheduling latency under load. Zero means
	// no cap. Only meaningful with BatchWindow > 0.
	BatchMaxPending int
	// BatchUrgencyLead flushes the batch immediately when an arriving job's
	// latest feasible start (deadline minus its execution-time lower bound)
	// is at most this far away — an urgent job must not sit out the rest of
	// the window. Zero disables the trigger. Only meaningful with
	// BatchWindow > 0.
	BatchUrgencyLead time.Duration
	// Retry is the canonical fault-recovery budget (per-task retry cap,
	// per-job retry budget) shared with every other policy via rmkit.
	Retry rmkit.RetryPolicy
	// StrictSolveLimits forwards cp.Params.StrictLimits: the solver may
	// then return no solution when its budget expires before the first
	// descent completes, exercising the greedy fallback path. The default
	// (false) lets every solve finish its first greedy solution.
	StrictSolveLimits bool
	// Workers forwards cp.Params.Workers: the CP portfolio width. 0 (the
	// default) uses one worker per available CPU capped at 8; 1 forces the
	// classic single-threaded search. Solve limits apply per worker.
	Workers int
	// OpportunisticSolve forwards cp.Params.Opportunistic: when true,
	// portfolio workers share incumbent bounds for extra pruning at the
	// cost of run-to-run reproducibility. The default (false) keeps every
	// seeded solve deterministic.
	OpportunisticSolve bool
	// WarmStart seeds every CP solve's incumbent from the currently
	// installed timetable (cp.Params.Hint): surviving tasks aim at their
	// previous starts, so the solver opens near the prior objective and
	// skips its branch-and-bound proof phase (see cp.Hint). Warm-started
	// runs remain self-consistent (same stream ⇒ same fingerprint) but
	// install different — not bit-identical — schedules than cold runs.
	// The default (false) keeps every solve bit-identical to earlier
	// releases.
	WarmStart bool
	// HorizonWindow bounds the modeled future: a job whose latest feasible
	// start (deadline minus its SLALowerBound execution bound) lies beyond
	// now + window is parked in the deferral queue instead of entering the
	// model, and a timer admits it at latestFeasibleStart - window — i.e.
	// while a full window of SLA slack still remains. Model size then
	// scales with the window, not the backlog. Zero (the default)
	// disables the window.
	HorizonWindow time.Duration
	// SpeedBlind makes the planner ignore the cluster's per-resource speed
	// factors: models, admission bounds, and the greedy fallback all assume
	// nominal (speed 1.0) durations even on a heterogeneous cluster, while
	// the simulation still runs tasks at their true machine-scaled
	// durations. This is the ablation baseline for the heterogeneity
	// experiment — the manager only learns about slow machines reactively,
	// through slowdown replans. No effect on uniform clusters.
	SpeedBlind bool
	// Locality optionally weights resources by placement preference (one
	// weight per resource, higher preferred). It is forwarded to the CP
	// search as a tie-break rank: when two resources offer the same
	// earliest completion for a task, the higher-weighted one wins instead
	// of the lower-indexed one. Nil (the default) keeps the historical
	// index tie-break. Preferences never override completion times, so
	// they cannot make schedules worse.
	Locality []float64
	// SolveCache caches each successful CP install keyed by a fingerprint
	// of everything the solve depends on (frozen-task set, pending-job
	// set, down mask, now, solver params, warm-start hint); a repeat
	// trigger with an identical key reinstalls the cached timetable
	// without solving. Because the key covers every solve input, a cache
	// hit is bit-identical to the deterministic re-solve it replaces, so
	// fingerprints do not change with the cache on or off. Default false.
	SolveCache bool
}

// DefaultConfig returns the configuration used by the experiments: combined
// mode, EDF ordering, a 200ms solve budget, and a 30s deferral lead.
func DefaultConfig() Config {
	return Config{
		Mode:           ModeCombined,
		SolveTimeLimit: 200 * time.Millisecond,
		NodeLimit:      100_000,
		Ordering:       cp.OrderEDF,
		DeferralLead:   30 * time.Second,
		Retry:          rmkit.DefaultRetryPolicy(),
	}
}

// DeterministicConfig returns DefaultConfig with every wall-clock-dependent
// solver knob pinned: no solve time limit (a deterministic node budget
// bounds the search instead) and a single portfolio worker. Two runs over
// the same job stream then produce byte-identical schedules — the setting
// required for journal replay recovery and fingerprint verification.
func DeterministicConfig() Config {
	cfg := DefaultConfig()
	cfg.SolveTimeLimit = 0
	cfg.NodeLimit = 50_000
	cfg.Workers = 1
	return cfg
}

// Stats exposes counters accumulated by the manager across a run; useful
// for the experiment harness and for tests.
type Stats struct {
	// Rounds counts scheduling invocations that ran the solver.
	Rounds int
	// SolverNodes sums search nodes over all solves.
	SolverNodes int64
	// Slips counts tasks the matchmaking pass could not place at their
	// CP-assigned start and had to delay; SlipMS accumulates the total
	// delay. The paper's two-phase optimization admits this rarely
	// (see DESIGN.md); both numbers should stay near zero.
	Slips  int
	SlipMS int64
	// Deferred counts jobs parked by the Section V.E optimization.
	Deferred int
	// EarlyFlushes counts batch flushes forced before the window expired
	// (max-pending cap or deadline urgency).
	EarlyFlushes int
	// LateBound sums the solver's reported objective (expected late jobs)
	// over rounds; a diagnostic only.
	LateBound int
	// FallbackRounds counts scheduling invocations in which the CP solver
	// produced no usable solution (timeout, exhausted node budget, panic)
	// and the greedy earliest-deadline-first fallback installed the
	// schedule instead.
	FallbackRounds int
	// TaskRetries counts failed task attempts charged against retry
	// budgets; JobsAbandoned counts jobs given up after exhausting theirs.
	TaskRetries   int
	JobsAbandoned int
	// WindowParked counts jobs parked by the rolling horizon window
	// (Config.HorizonWindow) rather than the Section V.E deferral.
	WindowParked int
	// CacheHits counts reschedules satisfied by the solve-result cache;
	// CacheMisses counts rounds that had to solve with the cache enabled.
	CacheHits   int
	CacheMisses int
	// WarmStartRounds counts solves that entered the solver with a
	// warm-start hint; WarmStartSeeded counts those whose hint repair
	// produced the first incumbent.
	WarmStartRounds int
	WarmStartSeeded int
}
