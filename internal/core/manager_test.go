package core

import (
	"testing"
	"time"

	"mrcprm/internal/cp"
	"mrcprm/internal/sim"
	"mrcprm/internal/stats"
	"mrcprm/internal/workload"
)

func mkJob(id int, arrival, earliest, deadline int64, mapExec, redExec []int64) *workload.Job {
	j := &workload.Job{ID: id, Arrival: arrival, EarliestStart: earliest, Deadline: deadline}
	for i, e := range mapExec {
		j.MapTasks = append(j.MapTasks, &workload.Task{
			ID: taskID(id, "m", i), JobID: id, Type: workload.MapTask, Exec: e, Req: 1})
	}
	for i, e := range redExec {
		j.ReduceTasks = append(j.ReduceTasks, &workload.Task{
			ID: taskID(id, "r", i), JobID: id, Type: workload.ReduceTask, Exec: e, Req: 1})
	}
	return j
}

func taskID(job int, kind string, i int) string {
	return "t" + string(rune('0'+job)) + "_" + kind + string(rune('1'+i))
}

// deterministicConfig disables the wall-clock limit so tests are exactly
// reproducible.
func deterministicConfig() Config {
	cfg := DefaultConfig()
	cfg.SolveTimeLimit = 0
	cfg.NodeLimit = 50_000
	return cfg
}

func runJobs(t *testing.T, cluster sim.Cluster, cfg Config, jobs []*workload.Job) (*sim.Metrics, *Manager) {
	t.Helper()
	mgr := New(cluster, cfg)
	s, err := sim.New(cluster, mgr, jobs)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.JobsCompleted != len(jobs) {
		t.Fatalf("completed %d of %d jobs", m.JobsCompleted, len(jobs))
	}
	return m, mgr
}

func TestSingleJobOptimalSchedule(t *testing.T) {
	cluster := sim.Cluster{NumResources: 2, MapSlots: 1, ReduceSlots: 1}
	j := mkJob(0, 1000, 1000, 60_000, []int64{4000, 4000}, []int64{5000})
	m, _ := runJobs(t, cluster, deterministicConfig(), []*workload.Job{j})
	// Maps in parallel [1000,5000), reduce [5000,10000).
	if m.MakespanMS != 10_000 {
		t.Fatalf("makespan %d, want 10000", m.MakespanMS)
	}
	if m.LateJobs != 0 {
		t.Fatal("job should meet its deadline")
	}
}

func TestAdvanceReservationWaitsForEarliestStart(t *testing.T) {
	cluster := sim.Cluster{NumResources: 1, MapSlots: 1, ReduceSlots: 1}
	j := mkJob(0, 0, 50_000, 200_000, []int64{3000}, nil) // AR: s_j 50s after arrival
	cfg := deterministicConfig()
	cfg.DeferralLead = 10 * time.Second
	m, mgr := runJobs(t, cluster, cfg, []*workload.Job{j})
	if m.MakespanMS != 53_000 {
		t.Fatalf("makespan %d, want 53000 (start exactly at s_j)", m.MakespanMS)
	}
	if mgr.Stats().Deferred != 1 {
		t.Fatalf("deferred %d jobs, want 1", mgr.Stats().Deferred)
	}
}

func TestDeferralDisabledStillRespectsEarliestStart(t *testing.T) {
	cluster := sim.Cluster{NumResources: 1, MapSlots: 1, ReduceSlots: 1}
	j := mkJob(0, 0, 50_000, 200_000, []int64{3000}, nil)
	cfg := deterministicConfig()
	cfg.DeferralLead = 0
	m, mgr := runJobs(t, cluster, cfg, []*workload.Job{j})
	if m.MakespanMS != 53_000 {
		t.Fatalf("makespan %d, want 53000", m.MakespanMS)
	}
	if mgr.Stats().Deferred != 0 {
		t.Fatal("deferral should be disabled")
	}
}

func TestIncrementalReschedulingFreezesStartedTasks(t *testing.T) {
	// Job 0 starts its long map immediately; job 1 arrives mid-flight with
	// a tighter deadline. The running task must not move, and both jobs
	// complete validly (the simulator enforces every rule).
	cluster := sim.Cluster{NumResources: 1, MapSlots: 1, ReduceSlots: 1}
	j0 := mkJob(0, 0, 0, 300_000, []int64{20_000, 20_000}, nil)
	j1 := mkJob(1, 5_000, 5_000, 40_000, []int64{10_000}, nil)
	m, _ := runJobs(t, cluster, deterministicConfig(), []*workload.Job{j0, j1})
	var rec0, rec1 sim.JobRecord
	for _, r := range m.Records {
		if r.Job.ID == 0 {
			rec0 = r
		} else {
			rec1 = r
		}
	}
	// j0's first map [0,20000) is frozen at j1's arrival; EDF should slot
	// j1's map [20000,30000) before j0's second map.
	if rec1.Completion != 30_000 {
		t.Fatalf("tight job completed at %d, want 30000", rec1.Completion)
	}
	if rec1.Late() || rec0.Late() {
		t.Fatal("no job should be late")
	}
	if rec0.Completion != 50_000 {
		t.Fatalf("loose job completed at %d, want 50000", rec0.Completion)
	}
}

func TestBnBAvoidsUnnecessaryLateJob(t *testing.T) {
	// Two jobs arrive together; scheduling job 0 first makes job 1 late,
	// the other order meets both deadlines. The CP objective must find it
	// even with the job-id ordering heuristic.
	cluster := sim.Cluster{NumResources: 1, MapSlots: 1, ReduceSlots: 1}
	j0 := mkJob(0, 0, 0, 100_000, []int64{10_000}, nil)
	j1 := mkJob(1, 0, 0, 10_000, []int64{10_000}, nil)
	cfg := deterministicConfig()
	cfg.Ordering = cp.OrderJobID
	m, _ := runJobs(t, cluster, cfg, []*workload.Job{j0, j1})
	if m.LateJobs != 0 {
		t.Fatalf("%d late jobs, want 0 (B&B should reorder)", m.LateJobs)
	}
}

func TestDirectModeSmallCluster(t *testing.T) {
	cluster := sim.Cluster{NumResources: 3, MapSlots: 1, ReduceSlots: 1}
	cfg := deterministicConfig()
	cfg.Mode = ModeDirect
	jobs := []*workload.Job{
		mkJob(0, 0, 0, 100_000, []int64{5000, 5000, 5000}, []int64{4000}),
		mkJob(1, 1000, 1000, 100_000, []int64{6000, 6000}, nil),
	}
	m, _ := runJobs(t, cluster, cfg, jobs)
	if m.LateJobs != 0 {
		t.Fatalf("%d late jobs", m.LateJobs)
	}
}

func TestCombinedMatchesDirectOnSmallInstance(t *testing.T) {
	cluster := sim.Cluster{NumResources: 2, MapSlots: 1, ReduceSlots: 1}
	jobs := func() []*workload.Job {
		return []*workload.Job{
			mkJob(0, 0, 0, 40_000, []int64{8000, 8000}, []int64{6000}),
			mkJob(1, 2000, 2000, 60_000, []int64{7000}, []int64{5000}),
		}
	}
	cfgC := deterministicConfig()
	mC, _ := runJobs(t, cluster, cfgC, jobs())
	cfgD := deterministicConfig()
	cfgD.Mode = ModeDirect
	mD, _ := runJobs(t, cluster, cfgD, jobs())
	if mC.LateJobs != mD.LateJobs {
		t.Fatalf("late jobs differ: combined %d vs direct %d", mC.LateJobs, mD.LateJobs)
	}
}

func TestSyntheticWorkloadEndToEnd(t *testing.T) {
	cfg := workload.DefaultSynthetic()
	cfg.NumResources = 10
	cfg.NumMapHi = 20
	cfg.NumReduceHi = 10
	cfg.Lambda = 0.02
	jobs, err := cfg.Generate(30, stats.NewStream(21, 22))
	if err != nil {
		t.Fatal(err)
	}
	cluster := sim.Cluster{NumResources: cfg.NumResources,
		MapSlots: cfg.MapSlotsPerResource, ReduceSlots: cfg.ReduceSlotsPerResource}
	m, mgr := runJobs(t, cluster, deterministicConfig(), jobs)
	// Generous Table 3 deadlines at low utilization: lateness should be rare.
	if m.P() > 0.2 {
		t.Fatalf("P = %.2f implausibly high", m.P())
	}
	st := mgr.Stats()
	if st.Rounds == 0 {
		t.Fatal("solver never ran")
	}
	if st.Slips > len(jobs)/2 {
		t.Fatalf("matchmaking slipped %d times — relaxation edge case should be rare", st.Slips)
	}
}

func TestFacebookWorkloadSmallEndToEnd(t *testing.T) {
	fb := workload.FacebookConfig{NumJobs: 30, Lambda: 0.001, DeadlineUL: 2, NumResources: 16}
	jobs, err := fb.Generate(stats.NewStream(31, 32))
	if err != nil {
		t.Fatal(err)
	}
	// Drop the two largest types to keep the test fast.
	var trimmed []*workload.Job
	for _, j := range jobs {
		if len(j.MapTasks) <= 800 {
			trimmed = append(trimmed, j)
		}
	}
	cluster := sim.Cluster{NumResources: 16, MapSlots: 1, ReduceSlots: 1}
	cfg := deterministicConfig()
	cfg.NodeLimit = 2000 // keep the B&B improvement cheap; this test checks validity, not quality
	m, _ := runJobs(t, cluster, cfg, trimmed)
	if m.JobsCompleted != len(trimmed) {
		t.Fatal("jobs lost")
	}
}

func TestDeterminism(t *testing.T) {
	gen := func() []*workload.Job {
		cfg := workload.DefaultSynthetic()
		cfg.NumResources = 5
		cfg.NumMapHi = 10
		cfg.NumReduceHi = 5
		cfg.Lambda = 0.05
		jobs, err := cfg.Generate(15, stats.NewStream(77, 78))
		if err != nil {
			t.Fatal(err)
		}
		return jobs
	}
	cluster := sim.Cluster{NumResources: 5, MapSlots: 2, ReduceSlots: 2}
	m1, _ := runJobs(t, cluster, deterministicConfig(), gen())
	m2, _ := runJobs(t, cluster, deterministicConfig(), gen())
	if m1.MakespanMS != m2.MakespanMS || m1.LateJobs != m2.LateJobs || m1.T() != m2.T() {
		t.Fatalf("nondeterministic run: %v/%d vs %v/%d",
			m1.MakespanMS, m1.LateJobs, m2.MakespanMS, m2.LateJobs)
	}
}

func TestStatsAccounting(t *testing.T) {
	cluster := sim.Cluster{NumResources: 1, MapSlots: 1, ReduceSlots: 1}
	j := mkJob(0, 0, 0, 100_000, []int64{1000}, nil)
	_, mgr := runJobs(t, cluster, deterministicConfig(), []*workload.Job{j})
	st := mgr.Stats()
	if st.Rounds != 1 || st.SolverNodes == 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestHorizonFor(t *testing.T) {
	j := mkJob(0, 0, 5000, 100_000, []int64{2000, 3000}, []int64{1000})
	w := &jobWork{job: j, pendingMaps: j.MapTasks, pendingReds: j.ReduceTasks}
	cluster := sim.Cluster{NumResources: 2, MapSlots: 1, ReduceSlots: 1}
	h := horizonFor(1000, cluster, []*jobWork{w})
	// 5000 (release) + 1 + 6000 (total) + 3000 (max) + 1.
	if h != 5001+6000+3000+1 {
		t.Fatalf("horizon %d", h)
	}
	// A half-speed machine doubles the worst-case serial budget.
	cluster.Speed = []float64{1.0, 0.5}
	h = horizonFor(1000, cluster, []*jobWork{w})
	if h != 5001+12000+6000+1 {
		t.Fatalf("hetero horizon %d", h)
	}
}

func TestModeStrings(t *testing.T) {
	if ModeCombined.String() != "combined" || ModeDirect.String() != "direct" {
		t.Fatal("mode strings")
	}
}
