package core

import (
	"fmt"
	"sort"

	"mrcprm/internal/sim"
	"mrcprm/internal/workload"
)

// The greedy degradation path: when the CP solver produces no usable
// solution (budget expired under strict limits, or a recovered panic), the
// manager must still install a valid schedule so the simulation makes
// progress. Jobs are taken in earliest-deadline-first order and their
// tasks placed at the earliest feasible instants, honoring frozen
// (running) attempts, reduce-after-map precedence, and down resources.
// The result is typically worse than the CP schedule — that is the point:
// degraded, not dead.

// greedyFallback installs an EDF schedule for all pending work.
func (m *Manager) greedyFallback(ctx sim.Context, now int64, work []*jobWork, down []bool) error {
	ordered := append([]*jobWork(nil), work...)
	sort.SliceStable(ordered, func(a, b int) bool {
		if ordered[a].job.Deadline != ordered[b].job.Deadline {
			return ordered[a].job.Deadline < ordered[b].job.Deadline
		}
		return ordered[a].job.ID < ordered[b].job.ID
	})
	if m.cfg.Mode == ModeCombined {
		return m.greedyCombined(ctx, now, ordered, down)
	}
	return m.greedyDirect(ctx, now, ordered, down)
}

// greedyCombined reuses the matchmaking slot timelines: frozen tasks stay
// pinned on their remembered unit slots, then pending tasks go wherever
// they fit first.
func (m *Manager) greedyCombined(ctx sim.Context, now int64, ordered []*jobWork, down []bool) error {
	mk := newMatchmaker(m.cluster.NumResources, m.cluster.MapSlots, m.cluster.ReduceSlots, &m.stats)
	for r, d := range down {
		if d {
			mk.blockResource(r, now)
		}
	}
	for _, w := range ordered {
		for _, f := range append(append([]frozenTask(nil), w.frozenMaps...), w.frozenReds...) {
			slot, ok := m.unitSlot[f.task]
			if !ok {
				return fmt.Errorf("core: started task %s has no remembered unit slot", f.task.ID)
			}
			mk.pin(f.task, slot, f.start, f.exec)
		}
	}
	for _, w := range ordered {
		est := w.job.EarliestStart
		if est < now {
			est = now
		}
		for _, t := range append(append([]*workload.Task(nil), w.pendingMaps...), w.pendingReds...) {
			a := mk.place(t, est)
			m.unitSlot[t] = a.slot
			if err := ctx.Schedule(t, a.res, a.start); err != nil {
				return err
			}
		}
	}
	return nil
}

// capProfile is one resource's committed demand over time for one slot
// kind; queries are linear scans — acceptable for the rarely-taken
// fallback path.
type capProfile struct {
	spans []capSpan
}

type capSpan struct {
	from, to int64
	req      int64
}

func (p *capProfile) add(from, to, req int64) {
	p.spans = append(p.spans, capSpan{from, to, req})
}

func (p *capProfile) useAt(t int64) int64 {
	var u int64
	for _, s := range p.spans {
		if s.from <= t && t < s.to {
			u += s.req
		}
	}
	return u
}

// maxUse returns the peak committed demand over [start, end).
func (p *capProfile) maxUse(start, end int64) int64 {
	peak := p.useAt(start)
	for _, s := range p.spans {
		if s.from > start && s.from < end {
			if u := p.useAt(s.from); u > peak {
				peak = u
			}
		}
	}
	return peak
}

// earliestFit returns the smallest start >= from where req units fit under
// cap for dur; candidate starts are from and every span end after it.
func (p *capProfile) earliestFit(from, dur, req, cap int64) int64 {
	cands := []int64{from}
	for _, s := range p.spans {
		if s.to > from {
			cands = append(cands, s.to)
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	for _, c := range cands {
		if p.maxUse(c, c+dur)+req <= cap {
			return c
		}
	}
	// Unreachable: past the last span end the profile is empty and the
	// simulator guarantees req <= cap.
	return cands[len(cands)-1]
}

// greedyDirect places tasks on per-resource capacity profiles (direct mode
// allows multi-slot demands, which the unit-slot matchmaker cannot model).
// It is speed- and memory-aware: each resource is probed with the task's
// machine-scaled duration (and, when the cluster has a memory dimension,
// a joint slot+memory fit), and the resource finishing the task earliest
// wins. On uniform clusters the duration term is constant and there is no
// memory profile, so the choice degenerates to the historical
// earliest-start, lowest-index rule bit for bit.
func (m *Manager) greedyDirect(ctx sim.Context, now int64, ordered []*jobWork, down []bool) error {
	n := m.cluster.NumResources
	mapProf := make([]capProfile, n)
	redProf := make([]capProfile, n)
	var memProf []capProfile
	if m.cluster.MemCapacity > 0 {
		memProf = make([]capProfile, n)
	}
	taskEnd := make(map[*workload.Task]int64)
	mapEnd := make(map[int]int64) // per job: latest placed/frozen map end

	profile := func(t *workload.Task, r int) *capProfile {
		if t.Type == workload.MapTask {
			return &mapProf[r]
		}
		return &redProf[r]
	}
	// jointFit finds the earliest start >= lb where both the slot profile
	// and (when present) the memory profile of resource r admit the task
	// for dur: the two earliestFit passes alternate until they agree, which
	// terminates because candidate starts only move forward through a
	// finite set of span boundaries.
	jointFit := func(t *workload.Task, r int, lb, dur, cap int64) int64 {
		at := profile(t, r).earliestFit(lb, dur, t.Req, cap)
		if memProf == nil || t.Mem == 0 {
			return at
		}
		for {
			memAt := memProf[r].earliestFit(at, dur, t.Mem, m.cluster.MemCapacity)
			if memAt == at {
				return at
			}
			at = profile(t, r).earliestFit(memAt, dur, t.Req, cap)
			if at == memAt {
				return at
			}
		}
	}
	for _, w := range ordered {
		for _, f := range append(append([]frozenTask(nil), w.frozenMaps...), w.frozenReds...) {
			profile(f.task, f.res).add(f.start, f.start+f.exec, f.task.Req)
			if memProf != nil && f.task.Mem > 0 {
				memProf[f.res].add(f.start, f.start+f.exec, f.task.Mem)
			}
			taskEnd[f.task] = f.start + f.exec
			if f.task.Type == workload.MapTask {
				if end := f.start + f.exec; end > mapEnd[w.job.ID] {
					mapEnd[w.job.ID] = end
				}
			}
		}
	}
	for _, w := range ordered {
		est := w.job.EarliestStart
		if est < now {
			est = now
		}
		for _, t := range append(append([]*workload.Task(nil), w.pendingMaps...), w.pendingReds...) {
			lb := est
			if len(t.Preds) > 0 {
				for _, p := range t.Preds {
					if end := taskEnd[p]; end > lb {
						lb = end
					}
				}
			} else if t.Type == workload.ReduceTask {
				if end := mapEnd[w.job.ID]; end > lb {
					lb = end
				}
			}
			cap := m.cluster.MapSlots
			if t.Type == workload.ReduceTask {
				cap = m.cluster.ReduceSlots
			}
			bestRes, bestAt, bestEnd := -1, int64(0), int64(0)
			for r := 0; r < n; r++ {
				if r < len(down) && down[r] {
					continue
				}
				dur := sim.ScaledExec(t.Exec, m.cluster.SpeedOf(r))
				at := jointFit(t, r, lb, dur, cap)
				if bestRes < 0 || at+dur < bestEnd {
					bestRes, bestAt, bestEnd = r, at, at+dur
				}
			}
			if bestRes < 0 {
				return fmt.Errorf("core: greedy fallback found no up resource for task %s", t.ID)
			}
			profile(t, bestRes).add(bestAt, bestEnd, t.Req)
			if memProf != nil && t.Mem > 0 {
				memProf[bestRes].add(bestAt, bestEnd, t.Mem)
			}
			taskEnd[t] = bestEnd
			if t.Type == workload.MapTask && bestEnd > mapEnd[w.job.ID] {
				mapEnd[w.job.ID] = bestEnd
			}
			if err := ctx.Schedule(t, bestRes, bestAt); err != nil {
				return err
			}
		}
	}
	return nil
}
