package core

import (
	"fmt"
	"sort"
	"time"

	"mrcprm/internal/cp"
	"mrcprm/internal/obs"
	"mrcprm/internal/rmkit"
	"mrcprm/internal/sim"
	"mrcprm/internal/workload"
)

// Manager is MRCP-RM; it implements sim.ResourceManager. Create one per
// simulation run with New.
type Manager struct {
	cfg Config
	// cluster is the PLANNING view of the system: the true cluster, except
	// that SpeedBlind strips the speed factors. Models, admission bounds,
	// and the greedy fallback all read this; the simulation's own cluster
	// (ctx.Cluster()) keeps the true speeds.
	cluster sim.Cluster
	// resRank is the locality tie-break order forwarded to the CP search
	// (nil without Config.Locality).
	resRank []int

	// jobs owns per-job lifecycle state (retries, abandonment) in arrival
	// order for deterministic iteration; the kernel's pending queues stay
	// unused because every round re-derives its work set from the simulator.
	jobs     *rmkit.Tracker
	deferred []*workload.Job // Section V.E parking lot
	batch    []*workload.Job // arrivals awaiting the batch-window flush
	batchAt  int64           // when the pending batch flushes; 0 = none

	// unitSlot remembers each scheduled task's unit slot so that, once the
	// task starts, later rounds pin it to the same slot.
	unitSlot map[*workload.Task]int

	// cache is the solve-result cache (nil unless Config.SolveCache).
	// capturing/captured record the install order of one round's
	// placements so a cache hit can replay the identical sequence.
	cache     *solveCache
	capturing bool
	captured  []cachedPlacement

	stats Stats
	// tel receives per-invocation spans and solver search events; nil (the
	// default) disables all instrumentation at the cost of one branch.
	tel *obs.Telemetry
	// onReschedule, when set, fires after every reschedule round with its
	// trigger and whether the CP solve degraded to the greedy fallback.
	// Unlike telemetry it works without a sink; the SLA attribution
	// monitor uses it to mark solver-degradation windows.
	onReschedule func(now int64, reason string, fallback bool)
}

// New creates an MRCP-RM manager for the cluster. Two normalizations
// happen here so the rest of the manager never special-cases them: a
// SpeedBlind manager plans against a uniform view of the cluster (the
// simulation still runs true machine speeds), and combined mode — whose
// single-resource relaxation assumes interchangeable unit slots — upgrades
// itself to the direct formulation when the planning cluster is
// heterogeneous or memory-constrained.
func New(cluster sim.Cluster, cfg Config) *Manager {
	plan := cluster
	if cfg.SpeedBlind {
		plan.Speed = nil
	}
	if cfg.Mode == ModeCombined && (plan.Heterogeneous() || plan.MemCapacity > 0) {
		cfg.Mode = ModeDirect
	}
	m := &Manager{
		cfg:      cfg,
		cluster:  plan,
		resRank:  localityRank(cfg.Locality),
		jobs:     rmkit.NewTracker(nil),
		unitSlot: make(map[*workload.Task]int),
	}
	if cfg.SolveCache {
		m.cache = newSolveCache()
	}
	return m
}

// Name implements sim.ResourceManager.
func (m *Manager) Name() string { return "MRCP-RM" }

// Stats returns the accumulated counters.
func (m *Manager) Stats() Stats { return m.stats }

// SetTelemetry attaches a telemetry core; a nil argument detaches it. Call
// before the simulation starts.
func (m *Manager) SetTelemetry(tel *obs.Telemetry) { m.tel = tel }

// SetRescheduleObserver installs a callback fired after every reschedule
// round (reason is the trigger; fallback reports greedy-EDF degradation).
// Call before the simulation starts; a nil callback detaches.
func (m *Manager) SetRescheduleObserver(fn func(now int64, reason string, fallback bool)) {
	m.onReschedule = fn
}

// OnJobArrival implements sim.ResourceManager: Section V.E defers jobs
// whose earliest start time is far in the future, the rolling horizon
// window parks jobs with more than a window of SLA slack; everything else
// triggers a full matchmaking-and-scheduling round.
func (m *Manager) OnJobArrival(ctx sim.Context, j *workload.Job) error {
	started := time.Now()
	if until := m.parkedUntil(ctx.Now(), j); until > 0 {
		m.deferred = append(m.deferred, j)
		lead := m.cfg.DeferralLead.Milliseconds()
		if lead > 0 && j.EarliestStart > ctx.Now()+lead {
			m.stats.Deferred++
			if m.tel.Enabled() {
				m.tel.Emit(ctx.Now(), obs.LayerManager, "job_deferred",
					obs.Int("job", j.ID), obs.I64("earliest_start_ms", j.EarliestStart))
			}
		} else {
			m.stats.WindowParked++
			if m.tel.Enabled() {
				m.tel.Emit(ctx.Now(), obs.LayerManager, "job_window_parked",
					obs.Int("job", j.ID), obs.I64("admit_at_ms", until))
			}
		}
		ctx.SetTimer(until)
		ctx.AddOverhead(time.Since(started))
		return nil
	}
	if w := m.cfg.BatchWindow.Milliseconds(); w > 0 {
		// Future-work batching: accumulate arrivals and solve once per
		// window instead of once per arrival.
		m.batch = append(m.batch, j)
		if m.batchAt == 0 {
			m.batchAt = ctx.Now() + w
			ctx.SetTimer(m.batchAt)
		}
		var err error
		if reason, ok := m.flushTrigger(ctx, j); ok {
			m.stats.EarlyFlushes++
			err = m.flushBatch(ctx, reason)
		}
		ctx.AddOverhead(time.Since(started))
		return err
	}
	m.admit(j)
	err := m.reschedule(ctx, "arrival")
	ctx.AddOverhead(time.Since(started))
	return err
}

// flushTrigger decides whether the arrival of j must flush the pending
// batch before its window expires: the batch hit its max-pending cap, or j
// is urgent (its latest feasible start is at most BatchUrgencyLead away).
func (m *Manager) flushTrigger(ctx sim.Context, j *workload.Job) (string, bool) {
	if m.cfg.BatchMaxPending > 0 && len(m.batch) >= m.cfg.BatchMaxPending {
		return "batch_full", true
	}
	if lead := m.cfg.BatchUrgencyLead.Milliseconds(); lead > 0 {
		lb := SLALowerBound(m.cluster, j)
		if j.Deadline-lb-ctx.Now() <= lead {
			return "batch_urgent", true
		}
	}
	return "", false
}

// flushBatch admits every batched job and runs one reschedule. It resets the
// window so the stale timer (still queued in the simulator) fires on an
// empty batch and becomes a no-op.
func (m *Manager) flushBatch(ctx sim.Context, reason string) error {
	m.batchAt = 0
	if len(m.batch) == 0 {
		return nil
	}
	for _, j := range m.batch {
		m.admit(j)
	}
	m.batch = m.batch[:0]
	return m.reschedule(ctx, reason)
}

// Drain force-admits every parked job — deferred (Section V.E) and batched
// arrivals alike — and replans, so that an engine shutting down can finish
// all outstanding work without waiting for parked timers. The ctx is the
// same simulation the manager runs against; callers invoke Drain between
// events, never from inside a manager callback.
func (m *Manager) Drain(ctx sim.Context) error {
	started := time.Now()
	n := len(m.deferred) + len(m.batch)
	for _, j := range m.deferred {
		m.admit(j)
	}
	m.deferred = m.deferred[:0]
	for _, j := range m.batch {
		m.admit(j)
	}
	m.batch = m.batch[:0]
	m.batchAt = 0
	var err error
	if n > 0 {
		err = m.reschedule(ctx, "drain")
	}
	ctx.AddOverhead(time.Since(started))
	return err
}

// Outstanding counts the jobs the manager is still responsible for: active
// (scheduled or running, including abandoned jobs with draining attempts),
// deferred, and batched.
func (m *Manager) Outstanding() int {
	return m.jobs.Len() + len(m.deferred) + len(m.batch)
}

// parkedUntil returns the simulated time until which job j must stay
// parked, or 0 when it should be admitted now. Two independent mechanisms
// park jobs in the deferral queue: the Section V.E deferral of far-future
// earliest starts (release at EarliestStart - lead), and the rolling
// horizon window, which keeps a job out of the model while its latest
// feasible start lfs = deadline - SLALowerBound lies beyond now + window
// (release at lfs - window, i.e. with a full window of SLA slack left).
// Both release times are static per job, so the single timer armed at
// arrival suffices; a job parked by both waits for the later one.
func (m *Manager) parkedUntil(now int64, j *workload.Job) int64 {
	var until int64
	if lead := m.cfg.DeferralLead.Milliseconds(); lead > 0 && j.EarliestStart > now+lead {
		until = j.EarliestStart - lead
	}
	if w := m.cfg.HorizonWindow.Milliseconds(); w > 0 {
		if lfs := j.Deadline - SLALowerBound(m.cluster, j); lfs > now+w && lfs-w > until {
			until = lfs - w
		}
	}
	return until
}

// OnTimer implements sim.ResourceManager: it releases deferred jobs whose
// earliest start time is now close and window-parked jobs the advancing
// horizon has reached.
func (m *Manager) OnTimer(ctx sim.Context) error {
	started := time.Now()
	released := false
	rest := m.deferred[:0]
	for _, j := range m.deferred {
		if m.parkedUntil(ctx.Now(), j) == 0 {
			m.admit(j)
			released = true
		} else {
			rest = append(rest, j)
		}
	}
	m.deferred = rest
	if m.batchAt > 0 && ctx.Now() >= m.batchAt {
		for _, j := range m.batch {
			m.admit(j)
			released = true
		}
		m.batch = m.batch[:0]
		m.batchAt = 0
	}
	var err error
	if released {
		err = m.reschedule(ctx, "timer")
	}
	ctx.AddOverhead(time.Since(started))
	return err
}

// OnTaskComplete implements sim.ResourceManager. MRCP-RM does not re-solve
// on completions (the installed timetable already accounts for them); it
// only maintains its bookkeeping.
func (m *Manager) OnTaskComplete(ctx sim.Context, t *workload.Task) error {
	delete(m.unitSlot, t)
	js, ok := m.jobs.ByID(t.JobID)
	if !ok {
		return fmt.Errorf("core: completion for unknown task %s", t.ID)
	}
	if js.Abandoned {
		// Discarded output of a draining attempt; retire the ghost once
		// nothing of the job remains on the cluster.
		if !rmkit.AnyRunning(ctx, js.Job) {
			m.jobs.Retire(js)
		}
		return nil
	}
	js.TasksLeft--
	if js.TasksLeft == 0 {
		m.jobs.Retire(js)
	}
	return nil
}

// OnTaskFailed implements sim.FaultHooks: the failed task is schedulable
// again and re-enters the next Table-2 reschedule, unless its job has
// exhausted its retry budget and is abandoned.
func (m *Manager) OnTaskFailed(ctx sim.Context, t *workload.Task, _ int) error {
	started := time.Now()
	js, ok := m.jobs.ByID(t.JobID)
	if !ok {
		return fmt.Errorf("core: failure for unknown task %s", t.ID)
	}
	if err := m.chargeRetry(ctx, js, t); err != nil {
		return err
	}
	err := m.reschedule(ctx, "task_failed")
	ctx.AddOverhead(time.Since(started))
	return err
}

// OnResourceDown implements sim.FaultHooks: killed attempts are charged
// against retry budgets, then one reschedule replans everything away from
// the down resource.
func (m *Manager) OnResourceDown(ctx sim.Context, _ int, killed, _ []*workload.Task) error {
	started := time.Now()
	for _, t := range killed {
		js, ok := m.jobs.ByID(t.JobID)
		if !ok {
			return fmt.Errorf("core: outage kill for unknown task %s", t.ID)
		}
		if err := m.chargeRetry(ctx, js, t); err != nil {
			return err
		}
	}
	err := m.reschedule(ctx, "resource_down")
	ctx.AddOverhead(time.Since(started))
	return err
}

// OnResourceUp implements sim.FaultHooks: replan to expand back onto the
// repaired resource.
func (m *Manager) OnResourceUp(ctx sim.Context, _ int) error {
	started := time.Now()
	err := m.reschedule(ctx, "resource_up")
	ctx.AddOverhead(time.Since(started))
	return err
}

// OnTaskSlowdown implements sim.FaultHooks: an attempt that will overrun
// its planned window forces a replan with its true duration (the
// reschedule freezes it at ctx.RunningExec) before later starts collide.
// The hook also fires for ordinary slow-machine starts; when the planning
// cluster already budgeted the attempt's machine-scaled duration the plan
// is intact and no replan is needed — only genuinely unplanned overruns
// (stragglers, or any slow-machine start under a speed-blind plan) pay for
// a reschedule.
func (m *Manager) OnTaskSlowdown(ctx sim.Context, t *workload.Task) error {
	started := time.Now()
	if res, _, ok := ctx.Placement(t); ok {
		planned := sim.ScaledExec(t.Exec, m.cluster.SpeedOf(res))
		if ctx.RunningExec(t) <= planned {
			ctx.AddOverhead(time.Since(started))
			return nil
		}
	}
	err := m.reschedule(ctx, "slowdown")
	ctx.AddOverhead(time.Since(started))
	return err
}

// chargeRetry books one failed attempt and abandons the job when it
// exhausts the per-task retry cap or the per-job budget.
func (m *Manager) chargeRetry(ctx sim.Context, js *rmkit.JobState, t *workload.Task) error {
	if js.Abandoned {
		return nil
	}
	m.stats.TaskRetries++
	if !js.ChargeRetry(m.cfg.Retry, ctx.Attempts(t)) {
		return nil
	}
	if err := ctx.AbandonJob(js.Job); err != nil {
		return err
	}
	js.Abandoned = true
	m.stats.JobsAbandoned++
	for _, jt := range js.Job.Tasks() {
		// Keep the unit slots of still-draining attempts (combined-mode
		// rounds pin them until they finish); drop the rest.
		if !ctx.Started(jt) || ctx.Completed(jt) {
			delete(m.unitSlot, jt)
		}
	}
	if !rmkit.AnyRunning(ctx, js.Job) {
		m.jobs.Retire(js)
	}
	return nil
}

func (m *Manager) admit(j *workload.Job) {
	m.jobs.Admit(j)
}

// reschedule is the Table 2 algorithm: classify every incomplete task of
// every active job as frozen (started) or schedulable, regenerate the CP
// model, solve, and install the new timetable. When the solver yields no
// usable solution (expired budget under strict limits, or a panic) the
// greedy earliest-deadline-first fallback installs a schedule instead, so
// a solve failure never terminates the run.
func (m *Manager) reschedule(ctx sim.Context, reason string) error {
	now := ctx.Now()
	down := make([]bool, m.cluster.NumResources)
	allDown := true
	for r := range down {
		down[r] = ctx.ResourceDown(r)
		if !down[r] {
			allDown = false
		}
	}
	if allDown {
		// Nothing can be placed anywhere; OnResourceUp replans.
		return nil
	}
	work := m.collectWork(ctx)
	if len(work) == 0 {
		return nil
	}
	var frozenN, pendingN int
	for _, w := range work {
		frozenN += len(w.frozenMaps) + len(w.frozenReds)
		pendingN += len(w.pendingMaps) + len(w.pendingReds)
	}
	telOn := m.tel.Enabled()
	var sp *obs.Span
	var wallStart time.Time
	if telOn {
		wallStart = time.Now()
		sp = m.tel.StartSpan(now, obs.LayerManager, "reschedule",
			obs.Str("reason", reason),
			obs.Str("mode", m.cfg.Mode.String()),
			obs.Int("jobs", len(work)),
			obs.Int("frozen_tasks", frozenN),
			obs.Int("pending_tasks", pendingN))
		m.tel.Observe(obs.HistSolveModelTasks, float64(frozenN+pendingN))
	}

	// Warm-start hint: the timetable installed by the previous round, also
	// part of the cache key (the solve result depends on it).
	var hints map[*workload.Task]cachedPlacement
	if m.cfg.WarmStart {
		hints = hintPlacements(ctx, work)
	}

	var key uint64
	if m.cache != nil {
		key = m.cacheKey(now, work, down, hints)
		if ent, ok := m.cache.get(key); ok {
			err := m.reinstall(ctx, ent)
			m.stats.CacheHits++
			m.stats.LateBound += ent.objective
			if telOn {
				m.tel.Add(obs.CounterSolveCacheHits, 1)
				sp.End(obs.Str("status", "cache_hit"), obs.Bool("fallback", false),
					obs.Int("objective", ent.objective),
					obs.Int("predicted_late", predictedLateAfter(ctx, work, err)))
				m.tel.Observe(obs.HistWallReschedule, float64(time.Since(wallStart).Nanoseconds())/1e6)
			}
			if m.onReschedule != nil {
				m.onReschedule(now, reason, false)
			}
			return err
		}
		m.stats.CacheMisses++
		if telOn {
			m.tel.Add(obs.CounterSolveCacheMisses, 1)
		}
	}

	bm, err := buildModel(m.cfg.Mode, now, m.cluster, work, down)
	if err != nil {
		if telOn {
			sp.End(obs.Str("status", "model_error"), obs.Bool("fallback", false),
				obs.Int("objective", -1), obs.Int("predicted_late", -1))
		}
		return err
	}
	var hint *cp.Hint
	if m.cfg.WarmStart {
		if hint = buildHint(bm, hints); hint != nil {
			m.stats.WarmStartRounds++
			if telOn {
				m.tel.Add(obs.CounterWarmStartHinted, 1)
			}
		}
	}
	res, solveErr := m.solve(bm, hint)
	m.stats.Rounds++
	m.stats.SolverNodes += res.Nodes
	if res.Search.HintSeeded {
		m.stats.WarmStartSeeded++
	}
	if telOn {
		m.emitSolve(now, &res, solveErr, frozenN+pendingN, hint != nil)
		m.tel.Add("manager_rounds", 1)
	}
	if solveErr != nil || !res.HasSolution() {
		// Table 2 line 24 would reject the job; a production manager must
		// keep placing work instead, so degrade to the greedy fallback.
		// Fallback installs are never cached.
		m.stats.FallbackRounds++
		err := m.greedyFallback(ctx, now, work, down)
		if telOn {
			m.tel.Add("manager_fallbacks", 1)
			sp.End(obs.Str("status", "fallback"), obs.Bool("fallback", true),
				obs.Int("objective", -1),
				obs.Int("predicted_late", predictedLateAfter(ctx, work, err)))
			m.tel.Observe(obs.HistWallReschedule, float64(time.Since(wallStart).Nanoseconds())/1e6)
		}
		if m.onReschedule != nil {
			m.onReschedule(now, reason, true)
		}
		return err
	}
	m.stats.LateBound += res.Objective

	if m.cache != nil {
		m.capturing = true
		m.captured = m.captured[:0]
	}
	switch m.cfg.Mode {
	case ModeCombined:
		err = m.installCombined(ctx, bm, &res, work)
	default:
		err = m.installDirect(ctx, bm, &res)
	}
	if m.cache != nil {
		if err == nil {
			m.cache.put(key, &cacheEntry{
				placements: append([]cachedPlacement(nil), m.captured...),
				objective:  res.Objective,
			})
		}
		m.capturing = false
		m.captured = m.captured[:0]
	}
	if telOn {
		sp.End(obs.Str("status", res.Status.String()), obs.Bool("fallback", false),
			obs.Bool("limit_hit", res.Search.LimitHit()),
			obs.Int("objective", res.Objective),
			obs.Int("predicted_late", predictedLateAfter(ctx, work, err)))
		m.tel.Observe(obs.HistWallReschedule, float64(time.Since(wallStart).Nanoseconds())/1e6)
	}
	if m.onReschedule != nil {
		m.onReschedule(now, reason, false)
	}
	return err
}

// reinstall replays a cached round: the identical ctx.Schedule sequence
// (and unit-slot bookkeeping) the original install performed.
func (m *Manager) reinstall(ctx sim.Context, ent *cacheEntry) error {
	for _, p := range ent.placements {
		if p.slot >= 0 {
			m.unitSlot[p.task] = p.slot
		}
		if err := ctx.Schedule(p.task, p.res, p.start); err != nil {
			return err
		}
	}
	return nil
}

// emitSolve streams one solve's search statistics: the full
// objective-improvement timeline, then the summary event.
func (m *Manager) emitSolve(now int64, res *cp.Result, solveErr error, modelTasks int, hinted bool) {
	for _, stp := range res.Search.Timeline {
		m.tel.Emit(now, obs.LayerSolver, "objective",
			obs.Int("round", stp.Round),
			obs.I64("nodes", stp.Nodes),
			obs.Int("objective", stp.Objective),
			obs.Wall("offset", stp.Wall))
	}
	st := &res.Search
	status := res.Status.String()
	if solveErr != nil {
		status = "panic"
	}
	m.tel.Emit(now, obs.LayerSolver, "solve",
		obs.Str("status", status),
		obs.Int("objective", res.Objective),
		obs.I64("nodes", st.Nodes),
		obs.I64("backtracks", st.Backtracks),
		obs.I64("propagations", st.Propagations),
		obs.Int("rounds", st.Rounds),
		obs.Int("improve_passes", st.ImprovePasses),
		obs.Int("improve_accepts", st.ImproveAccepts),
		obs.Int("solutions", st.Solutions),
		obs.Int("first_objective", st.FirstObjective),
		obs.Bool("node_limit_hit", st.NodeLimitHit),
		obs.Bool("time_limit_hit", st.TimeLimitHit),
		obs.Int("workers", st.Workers),
		obs.Int("winner", st.Winner),
		obs.I64("bound_imports", st.BoundImports),
		obs.Int("model_tasks", modelTasks),
		obs.Bool("warmstart", hinted),
		obs.Bool("hint_seeded", st.HintSeeded),
		obs.Int("hint_objective", st.HintObjective),
		obs.Wall("solve", res.SolveTime),
		obs.Wall("first_solution", st.TimeToFirst))
	m.tel.Add("solver_solves", 1)
	m.tel.Add("solver_nodes", st.Nodes)
	if st.HintSeeded {
		m.tel.Add(obs.CounterWarmStartSeeded, 1)
	}
	m.tel.Observe(obs.HistWallSolve, float64(res.SolveTime.Nanoseconds())/1e6)
}

// predictedLateAfter counts non-ghost jobs whose just-installed timetable
// completes after their deadline, by querying the placements the install
// pass wrote into the simulation. Returns -1 when the install failed.
func predictedLateAfter(ctx sim.Context, work []*jobWork, installErr error) int {
	if installErr != nil {
		return -1
	}
	n := 0
	for _, w := range work {
		if w.ghost {
			continue
		}
		var end int64
		for _, f := range w.frozenMaps {
			if e := f.start + f.exec; e > end {
				end = e
			}
		}
		for _, f := range w.frozenReds {
			if e := f.start + f.exec; e > end {
				end = e
			}
		}
		cluster := ctx.Cluster()
		pend := func(ts []*workload.Task) {
			for _, t := range ts {
				if res, start, ok := ctx.Placement(t); ok {
					// True machine-scaled duration, so the prediction
					// reflects what will actually happen — including the
					// overruns a speed-blind plan is about to suffer.
					if e := start + sim.ScaledExec(t.Exec, cluster.SpeedOf(res)); e > end {
						end = e
					}
				}
			}
		}
		pend(w.pendingMaps)
		pend(w.pendingReds)
		if end > w.job.Deadline {
			n++
		}
	}
	return n
}

// solve runs the CP search, converting a solver panic into an error so the
// caller can degrade gracefully.
func (m *Manager) solve(bm *builtModel, hint *cp.Hint) (res cp.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: CP solver panicked: %v", r)
		}
	}()
	solver := cp.NewSolver(bm.model, cp.Params{
		TimeLimit:     m.cfg.SolveTimeLimit,
		NodeLimit:     m.cfg.NodeLimit,
		Ordering:      m.cfg.Ordering,
		StrictLimits:  m.cfg.StrictSolveLimits,
		Workers:       m.cfg.Workers,
		Opportunistic: m.cfg.OpportunisticSolve,
		Hint:          hint,
		ResRank:       m.resRank,
	})
	return solver.Solve(), nil
}

// collectWork snapshots the incomplete tasks of all active jobs. Abandoned
// jobs contribute only their still-draining attempts (as capacity-holding
// ghosts); ones with nothing left on the cluster are retired here.
func (m *Manager) collectWork(ctx sim.Context) []*jobWork {
	var gone []*rmkit.JobState
	for _, js := range m.jobs.Active() {
		if js.Abandoned && !rmkit.AnyRunning(ctx, js.Job) {
			gone = append(gone, js)
		}
	}
	for _, js := range gone {
		m.jobs.Retire(js)
	}

	var work []*jobWork
	for _, js := range m.jobs.Active() {
		j, ghost := js.Job, js.Abandoned
		w := &jobWork{job: j, ghost: ghost}
		for _, t := range j.MapTasks {
			switch {
			case ctx.Completed(t):
				w.completedMaps++
			case ctx.Started(t):
				res, start, _ := ctx.Placement(t)
				w.frozenMaps = append(w.frozenMaps, frozenTask{task: t, res: res, start: start, exec: ctx.RunningExec(t)})
			case ghost:
				// dead work: never scheduled again
			default:
				w.pendingMaps = append(w.pendingMaps, t)
			}
		}
		for _, t := range j.ReduceTasks {
			switch {
			case ctx.Completed(t):
			case ctx.Started(t):
				res, start, _ := ctx.Placement(t)
				w.frozenReds = append(w.frozenReds, frozenTask{task: t, res: res, start: start, exec: ctx.RunningExec(t)})
			case ghost:
			default:
				w.pendingReds = append(w.pendingReds, t)
			}
		}
		if len(w.pendingMaps)+len(w.pendingReds)+len(w.frozenMaps)+len(w.frozenReds) > 0 {
			work = append(work, w)
		}
	}
	return work
}

// installCombined runs the Section V.D matchmaking over the combined
// schedule and installs placements into the simulator.
func (m *Manager) installCombined(ctx sim.Context, bm *builtModel, res *cp.Result, work []*jobWork) error {
	mk := newMatchmaker(m.cluster.NumResources, m.cluster.MapSlots, m.cluster.ReduceSlots, &m.stats)
	for r := 0; r < m.cluster.NumResources; r++ {
		if ctx.ResourceDown(r) {
			mk.blockResource(r, ctx.Now())
		}
	}

	// Pin running tasks to the unit slots they were given earlier.
	for _, w := range work {
		for _, f := range append(append([]frozenTask(nil), w.frozenMaps...), w.frozenReds...) {
			slot, ok := m.unitSlot[f.task]
			if !ok {
				return fmt.Errorf("core: started task %s has no remembered unit slot", f.task.ID)
			}
			mk.pin(f.task, slot, f.start, f.exec)
		}
	}

	// Place schedulable tasks in start order (maps break ties before
	// reduces so same-job precedence survives slips).
	type placed struct {
		task  *workload.Task
		start int64
	}
	var toPlace []placed
	for t, iv := range bm.byTask {
		if bm.frozen[t] {
			continue
		}
		toPlace = append(toPlace, placed{task: t, start: res.Starts[iv.ID()]})
	}
	sort.Slice(toPlace, func(a, b int) bool {
		if toPlace[a].start != toPlace[b].start {
			return toPlace[a].start < toPlace[b].start
		}
		if toPlace[a].task.Type != toPlace[b].task.Type {
			return toPlace[a].task.Type == workload.MapTask
		}
		return toPlace[a].task.ID < toPlace[b].task.ID
	})
	for _, p := range toPlace {
		a := mk.place(p.task, p.start)
		m.unitSlot[p.task] = a.slot
		if err := ctx.Schedule(p.task, a.res, a.start); err != nil {
			return err
		}
		if m.capturing {
			m.captured = append(m.captured, cachedPlacement{task: p.task, res: a.res, start: a.start, slot: a.slot})
		}
	}
	return nil
}

// installDirect reads resource assignments straight off the CP solution.
func (m *Manager) installDirect(ctx sim.Context, bm *builtModel, res *cp.Result) error {
	// Deterministic install order.
	type item struct {
		task *workload.Task
		iv   *cp.Interval
	}
	var items []item
	for t, iv := range bm.byTask {
		if !bm.frozen[t] {
			items = append(items, item{t, iv})
		}
	}
	sort.Slice(items, func(a, b int) bool { return items[a].task.ID < items[b].task.ID })
	for _, it := range items {
		r := res.Res[it.iv.ID()]
		if r < 0 {
			return fmt.Errorf("core: task %s has no resource in direct solution", it.task.ID)
		}
		if err := ctx.Schedule(it.task, r, res.Starts[it.iv.ID()]); err != nil {
			return err
		}
		if m.capturing {
			m.captured = append(m.captured, cachedPlacement{task: it.task, res: r, start: res.Starts[it.iv.ID()], slot: -1})
		}
	}
	return nil
}
