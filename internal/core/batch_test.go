package core

import (
	"testing"

	"mrcprm/internal/sim"
	"mrcprm/internal/stats"
	"mrcprm/internal/workload"
)

func TestSolveBatchSimple(t *testing.T) {
	cluster := sim.Cluster{NumResources: 2, MapSlots: 1, ReduceSlots: 1}
	jobs := []*workload.Job{
		mkJob(0, 0, 0, 100_000, []int64{5000, 5000}, []int64{4000}),
		mkJob(1, 0, 0, 100_000, []int64{6000}, nil),
	}
	sched, err := SolveBatch(cluster, jobs, deterministicConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Assignments) != 4 {
		t.Fatalf("%d assignments, want 4", len(sched.Assignments))
	}
	if len(sched.LateJobs) != 0 || sched.Objective != 0 {
		t.Fatalf("late jobs %v objective %d", sched.LateJobs, sched.Objective)
	}
	if err := sched.Validate(cluster); err != nil {
		t.Fatal(err)
	}
	if !sched.Optimal {
		t.Fatal("zero-late schedule should be optimal")
	}
}

func TestSolveBatchRespectsEarliestStart(t *testing.T) {
	cluster := sim.Cluster{NumResources: 1, MapSlots: 1, ReduceSlots: 1}
	jobs := []*workload.Job{mkJob(0, 0, 30_000, 200_000, []int64{5000}, nil)}
	sched, err := SolveBatch(cluster, jobs, deterministicConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sched.Assignments[0].Start != 30_000 {
		t.Fatalf("start %d, want 30000", sched.Assignments[0].Start)
	}
}

func TestSolveBatchDetectsLateJobs(t *testing.T) {
	cluster := sim.Cluster{NumResources: 1, MapSlots: 1, ReduceSlots: 1}
	jobs := []*workload.Job{
		mkJob(0, 0, 0, 8_000, []int64{5000}, nil),
		mkJob(1, 0, 0, 8_000, []int64{5000}, nil), // only one can make it
	}
	sched, err := SolveBatch(cluster, jobs, deterministicConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.LateJobs) != 1 {
		t.Fatalf("late jobs %v, want exactly one", sched.LateJobs)
	}
	if err := sched.Validate(cluster); err != nil {
		t.Fatal(err)
	}
}

func TestSolveBatchDirectMode(t *testing.T) {
	cluster := sim.Cluster{NumResources: 2, MapSlots: 1, ReduceSlots: 1}
	cfg := deterministicConfig()
	cfg.Mode = ModeDirect
	jobs := []*workload.Job{
		mkJob(0, 0, 0, 100_000, []int64{5000, 5000}, []int64{4000}),
	}
	sched, err := SolveBatch(cluster, jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(cluster); err != nil {
		t.Fatal(err)
	}
}

func TestSolveBatchSyntheticRoundTrip(t *testing.T) {
	cfg := workload.DefaultSynthetic()
	cfg.NumResources = 5
	cfg.NumMapHi = 15
	cfg.NumReduceHi = 8
	jobs, err := cfg.Generate(10, stats.NewStream(41, 42))
	if err != nil {
		t.Fatal(err)
	}
	cluster := sim.Cluster{NumResources: 5, MapSlots: 2, ReduceSlots: 2}
	sched, err := SolveBatch(cluster, jobs, deterministicConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(cluster); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, j := range jobs {
		total += j.NumTasks()
	}
	if len(sched.Assignments) != total {
		t.Fatalf("%d assignments for %d tasks", len(sched.Assignments), total)
	}
}

func TestSolveBatchRejectsBadInput(t *testing.T) {
	cluster := sim.Cluster{NumResources: 1, MapSlots: 1, ReduceSlots: 1}
	if _, err := SolveBatch(sim.Cluster{}, nil, deterministicConfig()); err == nil {
		t.Fatal("bad cluster accepted")
	}
	j := &workload.Job{ID: 0, Deadline: 100}
	if _, err := SolveBatch(cluster, []*workload.Job{j}, deterministicConfig()); err == nil {
		t.Fatal("job without map tasks accepted")
	}
}
