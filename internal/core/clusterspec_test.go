package core

import (
	"reflect"
	"testing"

	"mrcprm/internal/sim"
)

func TestClusterSpecUniformNormalizes(t *testing.T) {
	spec := ClusterSpec{
		Resources: []ResourceSpec{
			{SpeedFactor: 1.0}, {SpeedFactor: 1.0}, {SpeedFactor: 1.0},
		},
		MapSlots: 2, ReduceSlots: 1, MemCapacity: 8,
	}
	c, err := spec.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	if c.Speed != nil {
		t.Fatalf("all-1.0 spec produced explicit speeds %v, want nil", c.Speed)
	}
	if c.NumResources != 3 || c.MapSlots != 2 || c.ReduceSlots != 1 || c.MemCapacity != 8 {
		t.Fatalf("cluster shape %+v does not match spec", c)
	}
}

func TestClusterSpecHetero(t *testing.T) {
	spec := ClusterSpec{
		Resources: []ResourceSpec{{SpeedFactor: 1.0}, {SpeedFactor: 0.5}},
		MapSlots:  2, ReduceSlots: 1,
	}
	c, err := spec.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c.Speed, []float64{1.0, 0.5}) {
		t.Fatalf("speeds %v, want [1 0.5]", c.Speed)
	}
	if !c.Heterogeneous() {
		t.Fatal("two-speed cluster must report heterogeneous")
	}
}

func TestClusterSpecRejectsInvalid(t *testing.T) {
	if _, err := (ClusterSpec{MapSlots: 1, ReduceSlots: 1}).Cluster(); err == nil {
		t.Fatal("empty resource list must be rejected")
	}
	bad := ClusterSpec{
		Resources: []ResourceSpec{{SpeedFactor: 1}, {SpeedFactor: 0}},
		MapSlots:  1, ReduceSlots: 1,
	}
	if _, err := bad.Cluster(); err == nil {
		t.Fatal("zero speed factor must be rejected")
	}
	bad.Resources[1].SpeedFactor = -2
	if _, err := bad.Cluster(); err == nil {
		t.Fatal("negative speed factor must be rejected")
	}
}

func TestTwoClassSpec(t *testing.T) {
	spec := TwoClassSpec(4, 2, 1, 2)
	want := []float64{1, 1, 0.5, 0.5}
	for i, r := range spec.Resources {
		if r.SpeedFactor != want[i] {
			t.Fatalf("resource %d speed %g, want %g", i, r.SpeedFactor, want[i])
		}
	}
	if spec.MapSlots != 2 || spec.ReduceSlots != 1 {
		t.Fatalf("slot shape %+v not preserved", spec)
	}
	// spread 1 is the uniform cluster, normalized to the nil representation.
	c, err := TwoClassSpec(4, 2, 1, 1).Cluster()
	if err != nil {
		t.Fatal(err)
	}
	if c.Speed != nil {
		t.Fatalf("spread-1 spec produced speeds %v, want nil", c.Speed)
	}
	if !c.Equal(sim.Cluster{NumResources: 4, MapSlots: 2, ReduceSlots: 1}) {
		t.Fatal("spread-1 spec must build the plain uniform cluster")
	}
}

func TestLocalityWeightsAndRank(t *testing.T) {
	spec := ClusterSpec{
		Resources: []ResourceSpec{{SpeedFactor: 1}, {SpeedFactor: 1}},
		MapSlots:  1, ReduceSlots: 1,
	}
	if w := spec.LocalityWeights(); w != nil {
		t.Fatalf("all-zero locality must return nil, got %v", w)
	}
	spec.Resources[1].Locality = 2
	if w := spec.LocalityWeights(); !reflect.DeepEqual(w, []float64{0, 2}) {
		t.Fatalf("locality weights %v, want [0 2]", w)
	}
	if r := localityRank(nil); r != nil {
		t.Fatalf("nil weights must rank nil, got %v", r)
	}
	// Highest weight ranks first; equal weights keep index order.
	if r := localityRank([]float64{0, 2, 1}); !reflect.DeepEqual(r, []int{2, 0, 1}) {
		t.Fatalf("rank %v, want [2 0 1]", r)
	}
	if r := localityRank([]float64{1, 1}); !reflect.DeepEqual(r, []int{0, 1}) {
		t.Fatalf("tied rank %v, want [0 1]", r)
	}
}
