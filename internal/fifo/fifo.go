// Package fifo implements a best-effort FIFO resource manager: the
// deadline-blind dispatcher the paper's introduction contrasts SLA-aware
// resource management against ("on-demand requests that are to be executed
// on a best-effort basis"). Jobs are served strictly in arrival order,
// work-conservingly, with the standard MapReduce rules (reduce tasks only
// after all of the job's maps, earliest start times respected).
//
// It exists as a second baseline: comparing MRCP-RM or MinEDF-WC against
// FIFO shows how much of their SLA performance comes from deadline
// awareness rather than from mere work conservation.
//
// All job-lifecycle machinery (deferral, retry budgets, abandonment, slot
// mirrors) comes from the shared rmkit kernel; this package only supplies
// the queue discipline (arrival order) and the dispatch pass.
package fifo

import (
	"mrcprm/internal/rmkit"
	"mrcprm/internal/sim"
)

func init() {
	rmkit.Register("fifo", func(cluster sim.Cluster, opts rmkit.Options) (sim.ResourceManager, error) {
		m := New(cluster)
		if opts.Retry != nil {
			m.Retry = *opts.Retry
		}
		return m, nil
	})
}

// Manager is the FIFO best-effort scheduler; it implements
// sim.ResourceManager. Tune the embedded Retry policy before the
// simulation starts.
type Manager struct {
	*rmkit.ListScheduler
}

// New creates a FIFO manager for the cluster.
func New(cluster sim.Cluster) *Manager {
	// Admissions from the deferred queue slot in by arrival time for
	// determinism.
	m := &Manager{rmkit.NewListScheduler("fifo", cluster, func(a, b *rmkit.JobState) bool {
		return a.Job.Arrival < b.Job.Arrival
	})}
	m.Dispatch = m.dispatch
	return m
}

// Name implements sim.ResourceManager.
func (m *Manager) Name() string { return "FIFO" }

// dispatch fills free slots in strict arrival order.
func (m *Manager) dispatch(ctx sim.Context) error {
	for _, js := range m.Tracker.Active() {
		if err := m.DispatchJob(ctx, js, -1, -1); err != nil {
			return err
		}
	}
	return nil
}
