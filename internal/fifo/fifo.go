// Package fifo implements a best-effort FIFO resource manager: the
// deadline-blind dispatcher the paper's introduction contrasts SLA-aware
// resource management against ("on-demand requests that are to be executed
// on a best-effort basis"). Jobs are served strictly in arrival order,
// work-conservingly, with the standard MapReduce rules (reduce tasks only
// after all of the job's maps, earliest start times respected).
//
// It exists as a second baseline: comparing MRCP-RM or MinEDF-WC against
// FIFO shows how much of their SLA performance comes from deadline
// awareness rather than from mere work conservation.
package fifo

import (
	"sort"
	"time"

	"mrcprm/internal/sim"
	"mrcprm/internal/workload"
)

type jobState struct {
	job         *workload.Job
	pendingMaps []*workload.Task
	pendingReds []*workload.Task
	mapsLeft    int
	tasksLeft   int
}

// Manager is the FIFO best-effort scheduler; it implements
// sim.ResourceManager.
type Manager struct {
	cluster  sim.Cluster
	active   []*jobState // arrival order
	byTask   map[*workload.Task]*jobState
	deferred []*workload.Job

	freeMap []int64
	freeRed []int64
}

// New creates a FIFO manager for the cluster.
func New(cluster sim.Cluster) *Manager {
	m := &Manager{
		cluster: cluster,
		byTask:  make(map[*workload.Task]*jobState),
		freeMap: make([]int64, cluster.NumResources),
		freeRed: make([]int64, cluster.NumResources),
	}
	for r := 0; r < cluster.NumResources; r++ {
		m.freeMap[r] = cluster.MapSlots
		m.freeRed[r] = cluster.ReduceSlots
	}
	return m
}

// Name implements sim.ResourceManager.
func (m *Manager) Name() string { return "FIFO" }

// OnJobArrival implements sim.ResourceManager.
func (m *Manager) OnJobArrival(ctx sim.Context, j *workload.Job) error {
	started := time.Now()
	if j.EarliestStart > ctx.Now() {
		m.deferred = append(m.deferred, j)
		ctx.SetTimer(j.EarliestStart)
	} else {
		m.admit(j)
	}
	err := m.dispatch(ctx)
	ctx.AddOverhead(time.Since(started))
	return err
}

// OnTimer implements sim.ResourceManager.
func (m *Manager) OnTimer(ctx sim.Context) error {
	started := time.Now()
	rest := m.deferred[:0]
	for _, j := range m.deferred {
		if j.EarliestStart <= ctx.Now() {
			m.admit(j)
		} else {
			rest = append(rest, j)
		}
	}
	m.deferred = rest
	err := m.dispatch(ctx)
	ctx.AddOverhead(time.Since(started))
	return err
}

// OnTaskComplete implements sim.ResourceManager.
func (m *Manager) OnTaskComplete(ctx sim.Context, t *workload.Task) error {
	started := time.Now()
	js := m.byTask[t]
	res, _, _ := ctx.Placement(t)
	if t.Type == workload.MapTask {
		js.mapsLeft--
		m.freeMap[res]++
	} else {
		m.freeRed[res]++
	}
	js.tasksLeft--
	if js.tasksLeft == 0 {
		m.remove(js)
	}
	err := m.dispatch(ctx)
	ctx.AddOverhead(time.Since(started))
	return err
}

func (m *Manager) admit(j *workload.Job) {
	js := &jobState{
		job:         j,
		pendingMaps: append([]*workload.Task(nil), j.MapTasks...),
		pendingReds: append([]*workload.Task(nil), j.ReduceTasks...),
		mapsLeft:    len(j.MapTasks),
		tasksLeft:   j.NumTasks(),
	}
	for _, t := range j.Tasks() {
		m.byTask[t] = js
	}
	// Arrival order; admissions from the deferred queue slot in by
	// arrival time for determinism.
	pos := sort.Search(len(m.active), func(i int) bool {
		return m.active[i].job.Arrival > j.Arrival
	})
	m.active = append(m.active, nil)
	copy(m.active[pos+1:], m.active[pos:])
	m.active[pos] = js
}

func (m *Manager) remove(js *jobState) {
	for i, other := range m.active {
		if other == js {
			m.active = append(m.active[:i], m.active[i+1:]...)
			break
		}
	}
	for _, t := range js.job.Tasks() {
		delete(m.byTask, t)
	}
}

// dispatch fills free slots in strict arrival order.
func (m *Manager) dispatch(ctx sim.Context) error {
	for _, js := range m.active {
		for len(js.pendingMaps) > 0 {
			r := firstFree(m.freeMap)
			if r < 0 {
				break
			}
			t := js.pendingMaps[0]
			js.pendingMaps = js.pendingMaps[1:]
			m.freeMap[r]--
			if err := ctx.Schedule(t, r, ctx.Now()); err != nil {
				return err
			}
		}
		if js.mapsLeft == 0 {
			for len(js.pendingReds) > 0 {
				r := firstFree(m.freeRed)
				if r < 0 {
					break
				}
				t := js.pendingReds[0]
				js.pendingReds = js.pendingReds[1:]
				m.freeRed[r]--
				if err := ctx.Schedule(t, r, ctx.Now()); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func firstFree(free []int64) int {
	for r, f := range free {
		if f > 0 {
			return r
		}
	}
	return -1
}
