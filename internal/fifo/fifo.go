// Package fifo implements a best-effort FIFO resource manager: the
// deadline-blind dispatcher the paper's introduction contrasts SLA-aware
// resource management against ("on-demand requests that are to be executed
// on a best-effort basis"). Jobs are served strictly in arrival order,
// work-conservingly, with the standard MapReduce rules (reduce tasks only
// after all of the job's maps, earliest start times respected).
//
// It exists as a second baseline: comparing MRCP-RM or MinEDF-WC against
// FIFO shows how much of their SLA performance comes from deadline
// awareness rather than from mere work conservation.
package fifo

import (
	"fmt"
	"sort"
	"time"

	"mrcprm/internal/sim"
	"mrcprm/internal/workload"
)

// DefaultMaxTaskRetries is the per-task retry cap installed by New.
const DefaultMaxTaskRetries = 4

type jobState struct {
	job         *workload.Job
	pendingMaps []*workload.Task
	pendingReds []*workload.Task
	mapsLeft    int
	tasksLeft   int
	retries     int
	abandoned   bool
}

// Manager is the FIFO best-effort scheduler; it implements
// sim.ResourceManager.
type Manager struct {
	cluster  sim.Cluster
	active   []*jobState // arrival order
	byTask   map[*workload.Task]*jobState
	deferred []*workload.Job

	// Slot mirrors; a down resource's mirrors are zeroed so dispatch
	// skips it.
	freeMap []int64
	freeRed []int64

	// MaxTaskRetries and JobRetryBudget cap failed attempts per task and
	// per job; exceeding either abandons the job. Zero means unlimited.
	MaxTaskRetries int
	JobRetryBudget int
}

// New creates a FIFO manager for the cluster.
func New(cluster sim.Cluster) *Manager {
	m := &Manager{
		cluster:        cluster,
		byTask:         make(map[*workload.Task]*jobState),
		freeMap:        make([]int64, cluster.NumResources),
		freeRed:        make([]int64, cluster.NumResources),
		MaxTaskRetries: DefaultMaxTaskRetries,
	}
	for r := 0; r < cluster.NumResources; r++ {
		m.freeMap[r] = cluster.MapSlots
		m.freeRed[r] = cluster.ReduceSlots
	}
	return m
}

// Name implements sim.ResourceManager.
func (m *Manager) Name() string { return "FIFO" }

// OnJobArrival implements sim.ResourceManager.
func (m *Manager) OnJobArrival(ctx sim.Context, j *workload.Job) error {
	started := time.Now()
	if j.EarliestStart > ctx.Now() {
		m.deferred = append(m.deferred, j)
		ctx.SetTimer(j.EarliestStart)
	} else {
		m.admit(j)
	}
	err := m.dispatch(ctx)
	ctx.AddOverhead(time.Since(started))
	return err
}

// OnTimer implements sim.ResourceManager.
func (m *Manager) OnTimer(ctx sim.Context) error {
	started := time.Now()
	rest := m.deferred[:0]
	for _, j := range m.deferred {
		if j.EarliestStart <= ctx.Now() {
			m.admit(j)
		} else {
			rest = append(rest, j)
		}
	}
	m.deferred = rest
	err := m.dispatch(ctx)
	ctx.AddOverhead(time.Since(started))
	return err
}

// OnTaskComplete implements sim.ResourceManager.
func (m *Manager) OnTaskComplete(ctx sim.Context, t *workload.Task) error {
	started := time.Now()
	js, ok := m.byTask[t]
	if !ok {
		return fmt.Errorf("fifo: completion for unknown task %s", t.ID)
	}
	res, _, _ := ctx.Placement(t)
	if t.Type == workload.MapTask {
		js.mapsLeft--
		m.freeMap[res]++
	} else {
		m.freeRed[res]++
	}
	if !js.abandoned {
		js.tasksLeft--
		if js.tasksLeft == 0 {
			m.remove(js)
		}
	}
	err := m.dispatch(ctx)
	ctx.AddOverhead(time.Since(started))
	return err
}

// OnTaskFailed implements sim.FaultHooks: free the mirrored slot and
// re-queue the task, abandoning the job when a retry budget is exhausted.
func (m *Manager) OnTaskFailed(ctx sim.Context, t *workload.Task, res int) error {
	started := time.Now()
	js, ok := m.byTask[t]
	if !ok {
		return fmt.Errorf("fifo: failure for unknown task %s", t.ID)
	}
	if t.Type == workload.MapTask {
		m.freeMap[res]++
	} else {
		m.freeRed[res]++
	}
	if !js.abandoned {
		if err := m.chargeRetry(ctx, js, t); err != nil {
			return err
		}
	}
	err := m.dispatch(ctx)
	ctx.AddOverhead(time.Since(started))
	return err
}

// OnResourceDown implements sim.FaultHooks: re-queue killed and evacuated
// tasks and zero the down resource's mirrors so dispatch skips it.
func (m *Manager) OnResourceDown(ctx sim.Context, res int, killed, evacuated []*workload.Task) error {
	started := time.Now()
	for _, t := range killed {
		js, ok := m.byTask[t]
		if !ok {
			return fmt.Errorf("fifo: outage kill for unknown task %s", t.ID)
		}
		if js.abandoned {
			continue
		}
		if err := m.chargeRetry(ctx, js, t); err != nil {
			return err
		}
	}
	for _, t := range evacuated {
		js, ok := m.byTask[t]
		if !ok {
			return fmt.Errorf("fifo: evacuation of unknown task %s", t.ID)
		}
		if !js.abandoned {
			m.requeue(js, t)
		}
	}
	m.freeMap[res], m.freeRed[res] = 0, 0
	err := m.dispatch(ctx)
	ctx.AddOverhead(time.Since(started))
	return err
}

// OnResourceUp implements sim.FaultHooks: restore the repaired resource's
// capacity (nothing survives an outage on it).
func (m *Manager) OnResourceUp(ctx sim.Context, res int) error {
	started := time.Now()
	m.freeMap[res] = m.cluster.MapSlots
	m.freeRed[res] = m.cluster.ReduceSlots
	err := m.dispatch(ctx)
	ctx.AddOverhead(time.Since(started))
	return err
}

// OnTaskSlowdown implements sim.FaultHooks as a no-op: FIFO dispatches
// reactively at the current instant, so overruns cannot collide with
// pre-planned starts.
func (m *Manager) OnTaskSlowdown(sim.Context, *workload.Task) error { return nil }

func (m *Manager) chargeRetry(ctx sim.Context, js *jobState, t *workload.Task) error {
	js.retries++
	over := (m.MaxTaskRetries > 0 && ctx.Attempts(t) > m.MaxTaskRetries) ||
		(m.JobRetryBudget > 0 && js.retries > m.JobRetryBudget)
	if !over {
		m.requeue(js, t)
		return nil
	}
	return m.abandon(ctx, js)
}

func (m *Manager) requeue(js *jobState, t *workload.Task) {
	if t.Type == workload.MapTask {
		js.pendingMaps = append(js.pendingMaps, t)
	} else {
		js.pendingReds = append(js.pendingReds, t)
	}
}

// abandon gives up on a job: dispatched-but-not-started placements return
// to the mirrors, the simulator drops its pending work, and the job leaves
// the queue while its last attempts drain.
func (m *Manager) abandon(ctx sim.Context, js *jobState) error {
	for _, t := range js.job.Tasks() {
		if ctx.Started(t) || ctx.Completed(t) {
			continue
		}
		if res, _, ok := ctx.Placement(t); ok {
			if t.Type == workload.MapTask {
				m.freeMap[res]++
			} else {
				m.freeRed[res]++
			}
		}
	}
	if err := ctx.AbandonJob(js.job); err != nil {
		return err
	}
	js.abandoned = true
	js.pendingMaps, js.pendingReds = nil, nil
	for i, other := range m.active {
		if other == js {
			m.active = append(m.active[:i], m.active[i+1:]...)
			break
		}
	}
	return nil
}

func (m *Manager) admit(j *workload.Job) {
	js := &jobState{
		job:         j,
		pendingMaps: append([]*workload.Task(nil), j.MapTasks...),
		pendingReds: append([]*workload.Task(nil), j.ReduceTasks...),
		mapsLeft:    len(j.MapTasks),
		tasksLeft:   j.NumTasks(),
	}
	for _, t := range j.Tasks() {
		m.byTask[t] = js
	}
	// Arrival order; admissions from the deferred queue slot in by
	// arrival time for determinism.
	pos := sort.Search(len(m.active), func(i int) bool {
		return m.active[i].job.Arrival > j.Arrival
	})
	m.active = append(m.active, nil)
	copy(m.active[pos+1:], m.active[pos:])
	m.active[pos] = js
}

func (m *Manager) remove(js *jobState) {
	for i, other := range m.active {
		if other == js {
			m.active = append(m.active[:i], m.active[i+1:]...)
			break
		}
	}
	for _, t := range js.job.Tasks() {
		delete(m.byTask, t)
	}
}

// dispatch fills free slots in strict arrival order.
func (m *Manager) dispatch(ctx sim.Context) error {
	for _, js := range m.active {
		for len(js.pendingMaps) > 0 {
			r := firstFree(m.freeMap)
			if r < 0 {
				break
			}
			t := js.pendingMaps[0]
			js.pendingMaps = js.pendingMaps[1:]
			m.freeMap[r]--
			if err := ctx.Schedule(t, r, ctx.Now()); err != nil {
				return err
			}
		}
		if js.mapsLeft == 0 {
			for len(js.pendingReds) > 0 {
				r := firstFree(m.freeRed)
				if r < 0 {
					break
				}
				t := js.pendingReds[0]
				js.pendingReds = js.pendingReds[1:]
				m.freeRed[r]--
				if err := ctx.Schedule(t, r, ctx.Now()); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func firstFree(free []int64) int {
	for r, f := range free {
		if f > 0 {
			return r
		}
	}
	return -1
}
