package fifo

import (
	"testing"

	"mrcprm/internal/minedf"
	"mrcprm/internal/sim"
	"mrcprm/internal/stats"
	"mrcprm/internal/workload"
)

func mkJob(id int, arrival, earliest, deadline int64, mapExec, redExec []int64) *workload.Job {
	j := &workload.Job{ID: id, Arrival: arrival, EarliestStart: earliest, Deadline: deadline}
	for _, e := range mapExec {
		j.MapTasks = append(j.MapTasks, &workload.Task{
			ID: "m", JobID: id, Type: workload.MapTask, Exec: e, Req: 1})
	}
	for _, e := range redExec {
		j.ReduceTasks = append(j.ReduceTasks, &workload.Task{
			ID: "r", JobID: id, Type: workload.ReduceTask, Exec: e, Req: 1})
	}
	return j
}

func run(t *testing.T, cluster sim.Cluster, jobs []*workload.Job) *sim.Metrics {
	t.Helper()
	s, err := sim.New(cluster, New(cluster), jobs)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.JobsCompleted != len(jobs) {
		t.Fatalf("completed %d of %d", m.JobsCompleted, len(jobs))
	}
	return m
}

func TestFIFOServesInArrivalOrder(t *testing.T) {
	cluster := sim.Cluster{NumResources: 1, MapSlots: 1, ReduceSlots: 1}
	first := mkJob(0, 0, 0, 1e9, []int64{5000}, nil)
	// The second job has a much tighter deadline, but FIFO ignores it.
	tight := mkJob(1, 100, 100, 5200, []int64{1000}, nil)
	m := run(t, cluster, []*workload.Job{first, tight})
	for _, r := range m.Records {
		if r.Job.ID == 1 {
			if !r.Late() {
				t.Fatal("FIFO should have made the tight job late (deadline-blind)")
			}
			if r.Completion != 6000 {
				t.Fatalf("tight job completed at %d, want 6000 (after the first job)", r.Completion)
			}
		}
	}
}

func TestFIFOWorkConserving(t *testing.T) {
	cluster := sim.Cluster{NumResources: 4, MapSlots: 1, ReduceSlots: 1}
	j := mkJob(0, 0, 0, 1e9, []int64{3000, 3000, 3000, 3000}, nil)
	m := run(t, cluster, []*workload.Job{j})
	if m.MakespanMS != 3000 {
		t.Fatalf("makespan %d, want 3000 (all maps in parallel)", m.MakespanMS)
	}
}

func TestFIFOReduceAfterMaps(t *testing.T) {
	cluster := sim.Cluster{NumResources: 2, MapSlots: 1, ReduceSlots: 1}
	j := mkJob(0, 0, 0, 1e9, []int64{1000, 8000}, []int64{2000})
	m := run(t, cluster, []*workload.Job{j})
	if m.MakespanMS != 10_000 {
		t.Fatalf("makespan %d, want 10000", m.MakespanMS)
	}
}

func TestFIFORespectsEarliestStart(t *testing.T) {
	cluster := sim.Cluster{NumResources: 1, MapSlots: 1, ReduceSlots: 1}
	j := mkJob(0, 0, 4000, 1e9, []int64{1000}, nil)
	m := run(t, cluster, []*workload.Job{j})
	if m.MakespanMS != 5000 {
		t.Fatalf("makespan %d, want 5000", m.MakespanMS)
	}
}

// The constructed scenario where deadline awareness provably matters: a
// loose job's queue blocks a tight later arrival under FIFO, while
// MinEDF-WC reorders and meets both deadlines. (Aggregate comparisons on
// random streams are deliberately not asserted: above saturation EDF's
// domino effect can make it lose to FCFS on the *count* of late jobs —
// a classic scheduling result, visible in this repository too.)
func TestDeadlineAwarenessBeatsFIFOWhereItMatters(t *testing.T) {
	cluster := sim.Cluster{NumResources: 1, MapSlots: 1, ReduceSlots: 1}
	mk := func() []*workload.Job {
		return []*workload.Job{
			mkJob(0, 0, 0, 100_000, []int64{5000, 5000}, nil), // loose
			mkJob(1, 100, 100, 7000, []int64{1000}, nil),      // tight, arrives second
		}
	}
	mFIFO := run(t, cluster, mk())
	s, err := sim.New(cluster, minedf.New(cluster), mk())
	if err != nil {
		t.Fatal(err)
	}
	mEDF, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if mFIFO.N() != 1 {
		t.Fatalf("FIFO late %d, want 1 (blind to the tight job)", mFIFO.N())
	}
	if mEDF.N() != 0 {
		t.Fatalf("MinEDF-WC late %d, want 0 (reorders for the tight job)", mEDF.N())
	}
}

func TestFIFOHandlesSyntheticStream(t *testing.T) {
	cfg := workload.DefaultSynthetic()
	cfg.NumResources = 8
	cfg.NumMapHi = 15
	cfg.NumReduceHi = 8
	cfg.Lambda = 0.015
	cluster := sim.Cluster{NumResources: 8, MapSlots: 2, ReduceSlots: 2}
	jobs, err := cfg.Generate(40, stats.NewStream(91, 3))
	if err != nil {
		t.Fatal(err)
	}
	m := run(t, cluster, jobs)
	if m.Invocations == 0 {
		t.Fatal("overhead accounting broken")
	}
}
