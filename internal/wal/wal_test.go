package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func mustOpen(t *testing.T, path string, opts Options) (*Journal, [][]byte) {
	t.Helper()
	j, recs, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	return j, recs
}

func payloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf(`{"kind":"test","seq":%d,"pad":"%0*d"}`, i, 10+i*7, i))
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	want := payloads(25)
	j, recs := mustOpen(t, path, Options{Sync: SyncNever})
	if len(recs) != 0 || j.Torn() != 0 {
		t.Fatalf("fresh journal recovered %d records, torn %d", len(recs), j.Torn())
	}
	for _, p := range want {
		if err := j.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if j.Records() != len(want) {
		t.Fatalf("records %d, want %d", j.Records(), len(want))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := j.Append([]byte("x")); err == nil {
		t.Fatal("append after close succeeded")
	}

	j2, recs := mustOpen(t, path, Options{})
	defer j2.Close()
	if len(recs) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(recs), len(want))
	}
	for i, p := range want {
		if !bytes.Equal(recs[i], p) {
			t.Fatalf("record %d: got %q want %q", i, recs[i], p)
		}
	}
	if j2.Torn() != 0 {
		t.Fatalf("clean reopen reported %d torn bytes", j2.Torn())
	}
}

func TestReopenAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	want := payloads(6)
	j, _ := mustOpen(t, path, Options{Sync: SyncBatch, BatchEvery: 2})
	for _, p := range want[:3] {
		if err := j.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j, recs := mustOpen(t, path, Options{Sync: SyncNever})
	if len(recs) != 3 {
		t.Fatalf("recovered %d records, want 3", len(recs))
	}
	for _, p := range want[3:] {
		if err := j.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs = mustOpen(t, path, Options{})
	if len(recs) != len(want) {
		t.Fatalf("recovered %d records after reopen-append, want %d", len(recs), len(want))
	}
	for i, p := range want {
		if !bytes.Equal(recs[i], p) {
			t.Fatalf("record %d mismatch after reopen-append", i)
		}
	}
}

// write returns the journal file size after appending n records.
func write(t *testing.T, path string, n int) int64 {
	t.Helper()
	j, _ := mustOpen(t, path, Options{Sync: SyncNever})
	for _, p := range payloads(n) {
		if err := j.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

func TestTornTailMidRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	write(t, path, 5)
	// Truncate into the middle of the last record's payload.
	fi, _ := os.Stat(path)
	if err := os.Truncate(path, fi.Size()-7); err != nil {
		t.Fatal(err)
	}
	j, recs := mustOpen(t, path, Options{Sync: SyncNever})
	if len(recs) != 4 {
		t.Fatalf("recovered %d records, want 4", len(recs))
	}
	if j.Torn() == 0 {
		t.Fatal("torn bytes not reported")
	}
	// The tail must have been truncated: appending and reopening yields a
	// clean journal of 5 records again.
	if err := j.Append([]byte(`{"kind":"after-torn"}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, recs := mustOpen(t, path, Options{})
	defer j2.Close()
	if len(recs) != 5 || j2.Torn() != 0 {
		t.Fatalf("post-repair journal has %d records, torn %d", len(recs), j2.Torn())
	}
	if string(recs[4]) != `{"kind":"after-torn"}` {
		t.Fatalf("appended record %q", recs[4])
	}
}

func TestTornTailHeaderBoundary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	size := write(t, path, 3)
	// Leave 3 bytes of a 4th record's header: a torn write that stopped at
	// (almost exactly) a record boundary.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x10, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	j, recs := mustOpen(t, path, Options{Sync: SyncNever})
	defer j.Close()
	if len(recs) != 3 {
		t.Fatalf("recovered %d records, want 3", len(recs))
	}
	if j.Torn() != 3 {
		t.Fatalf("torn %d bytes, want 3", j.Torn())
	}
	fi, _ := os.Stat(path)
	if fi.Size() != size {
		t.Fatalf("file size %d after repair, want %d", fi.Size(), size)
	}
}

func TestCRCCorruptionDropsSuffix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	write(t, path, 6)
	// Flip one payload byte inside the third record.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Walk two frames to find the third record's payload.
	off := 0
	for i := 0; i < 2; i++ {
		n := int(uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
		off += headerSize + n
	}
	data[off+headerSize+2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	j, recs := mustOpen(t, path, Options{Sync: SyncNever})
	defer j.Close()
	if len(recs) != 2 {
		t.Fatalf("recovered %d records past a CRC mismatch, want 2", len(recs))
	}
	if j.Torn() == 0 {
		t.Fatal("corruption not reported as torn bytes")
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{
		"": SyncAlways, "always": SyncAlways, "batch": SyncBatch,
		"none": SyncNever, "never": SyncNever,
	} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
	if SyncAlways.String() != "always" || SyncBatch.String() != "batch" || SyncNever.String() != "none" {
		t.Fatal("SyncPolicy.String mismatch")
	}
}

func TestAppendLimits(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, _ := mustOpen(t, path, Options{Sync: SyncNever})
	defer j.Close()
	if err := j.Append(nil); err == nil {
		t.Fatal("empty record accepted")
	}
	if err := j.Append(make([]byte, MaxRecord+1)); err == nil {
		t.Fatal("oversized record accepted")
	}
}
