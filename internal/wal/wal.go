// Package wal implements the append-only write-ahead journal behind the
// online scheduling service's durability guarantee: every record a caller
// Appends before a crash is either fully recovered on the next Open or
// provably absent (a torn tail), never silently corrupted.
//
// On-disk format. A journal is a flat file of framed records:
//
//	+--------------------+--------------------+-----------------+
//	| length  uint32 LE  | CRC-32 (IEEE) LE   | payload (JSONL) |
//	+--------------------+--------------------+-----------------+
//
// The payload is opaque to this package; by convention callers store one
// JSON object per record (the service layer's journalRecord), which keeps
// journals greppable with `cut`/`jq` after stripping the 8-byte headers.
//
// Torn-tail tolerance. Open scans the file record by record and stops at
// the first anomaly — a short header, a short payload, a zero or oversized
// length, or a CRC mismatch. Everything before the anomaly is returned as
// the recovered prefix; the anomaly and everything after it are truncated
// so the journal is again well-formed for appending. A crash mid-write
// therefore loses at most the record being written, and a flipped bit
// anywhere in a record drops that record and its suffix rather than
// feeding garbage to replay.
//
// Sync policy. SyncAlways fsyncs after every append (the durable default:
// an acknowledged submission survives power loss), SyncBatch fsyncs every
// Options.BatchEvery appends (bounded loss, much cheaper), SyncNever
// leaves flushing to the OS (tests and throwaway runs).
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// MaxRecord bounds one record's payload; an on-disk length above it is
// treated as corruption rather than allocated.
const MaxRecord = 16 << 20

const headerSize = 8

// SyncPolicy selects when appends are fsynced to stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append.
	SyncAlways SyncPolicy = iota
	// SyncBatch fsyncs every Options.BatchEvery appends (and on Close).
	SyncBatch
	// SyncNever never fsyncs explicitly; the OS flushes when it pleases.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncBatch:
		return "batch"
	case SyncNever:
		return "none"
	}
	return "always"
}

// ParseSyncPolicy maps the flag spellings to a policy: "" or "always",
// "batch", and "none" (or "never").
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "", "always":
		return SyncAlways, nil
	case "batch":
		return SyncBatch, nil
	case "none", "never":
		return SyncNever, nil
	}
	return SyncAlways, fmt.Errorf("wal: unknown sync policy %q (want always, batch, or none)", s)
}

// Options tunes a journal.
type Options struct {
	// Sync is the fsync policy; the zero value is SyncAlways.
	Sync SyncPolicy
	// BatchEvery is the append count between fsyncs under SyncBatch;
	// <= 0 means 64.
	BatchEvery int
}

// Journal is an open append-only journal. All methods are safe for
// concurrent use.
type Journal struct {
	mu        sync.Mutex
	f         *os.File
	path      string
	opts      Options
	records   int
	torn      int64
	sinceSync int
	scratch   []byte
	closed    bool
}

// Open opens (creating if absent) the journal at path, recovers every
// intact record, truncates any torn tail, and returns the journal
// positioned for appending plus the recovered payloads in append order.
func Open(path string, opts Options) (*Journal, [][]byte, error) {
	if opts.BatchEvery <= 0 {
		opts.BatchEvery = 64
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	recs, good, err := scan(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: scan %s: %w", path, err)
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: seek %s: %w", path, err)
	}
	var torn int64
	if size > good {
		torn = size - good
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
		}
		if _, err := f.Seek(good, io.SeekStart); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: seek %s: %w", path, err)
		}
	}
	return &Journal{f: f, path: path, opts: opts, records: len(recs), torn: torn}, recs, nil
}

// scan reads intact records from the start of f and returns them along
// with the offset just past the last good one. I/O errors other than a
// clean or torn EOF are returned; corruption is not an error, it just ends
// the scan.
func scan(f *os.File) ([][]byte, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	var (
		recs []([]byte)
		good int64
		hdr  [headerSize]byte
	)
	r := &countingReader{r: f}
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				break // clean end or torn header
			}
			return nil, 0, err
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > MaxRecord {
			break // corrupt length
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				break // torn payload
			}
			return nil, 0, err
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break // corrupt record
		}
		recs = append(recs, payload)
		good = r.n
	}
	return recs, good, nil
}

// countingReader tracks how many bytes have been consumed so scan knows
// the offset of the last intact record without a second pass.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// Append frames the payload and writes it, fsyncing per the sync policy.
// The payload must be non-empty and at most MaxRecord bytes.
func (j *Journal) Append(payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("wal: empty record")
	}
	if len(payload) > MaxRecord {
		return fmt.Errorf("wal: record of %d bytes exceeds MaxRecord", len(payload))
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("wal: append to closed journal %s", j.path)
	}
	need := headerSize + len(payload)
	if cap(j.scratch) < need {
		j.scratch = make([]byte, 0, need+need/2)
	}
	buf := j.scratch[:headerSize]
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, payload...)
	if _, err := j.f.Write(buf); err != nil {
		return fmt.Errorf("wal: append to %s: %w", j.path, err)
	}
	j.records++
	switch j.opts.Sync {
	case SyncAlways:
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync %s: %w", j.path, err)
		}
	case SyncBatch:
		j.sinceSync++
		if j.sinceSync >= j.opts.BatchEvery {
			j.sinceSync = 0
			if err := j.f.Sync(); err != nil {
				return fmt.Errorf("wal: sync %s: %w", j.path, err)
			}
		}
	}
	return nil
}

// Sync forces an fsync regardless of policy.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.sinceSync = 0
	return j.f.Sync()
}

// Close syncs and closes the journal; further Appends fail. Safe to call
// twice.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	syncErr := j.f.Sync()
	closeErr := j.f.Close()
	if syncErr != nil {
		return fmt.Errorf("wal: sync %s on close: %w", j.path, syncErr)
	}
	return closeErr
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Records returns the number of records in the journal: those recovered at
// Open plus those appended since.
func (j *Journal) Records() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.records
}

// Torn returns how many trailing bytes Open discarded as a torn or corrupt
// tail (0 for a clean open).
func (j *Journal) Torn() int64 { return j.torn }
